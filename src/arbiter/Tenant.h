//===- arbiter/Tenant.h - Tenant identity, goals, telemetry ----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What a tenant declares to the arbiter (TenantSpec) and what it
/// reports back each epoch (TenantSample). A tenant is one DoPE region —
/// one executive with its own mechanism and goal — sharing the platform
/// with others. The arbiter never inspects tenant internals; everything
/// it knows arrives through these two structs.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ARBITER_TENANT_H
#define DOPE_ARBITER_TENANT_H

#include <string>

namespace dope {

/// The per-tenant performance goal the arbiter optimizes toward. This is
/// the platform-level projection of the executive's own goal hierarchy:
/// a Throughput tenant wants its offered load served, a ResponseTime
/// tenant additionally wants p95 response under its SLO.
enum class TenantGoal {
  Throughput,
  ResponseTime,
};

/// Immutable declaration a tenant makes when it joins the platform.
struct TenantSpec {
  /// Stable display name; also the Name field on lease trace records.
  std::string Name;

  TenantGoal Goal = TenantGoal::Throughput;

  /// Relative share weight for weighted max-min arbitration (> 0).
  /// A weight-2 tenant outbids a weight-1 tenant at equal marginal
  /// utility.
  double Weight = 1.0;

  /// Floor the arbiter never revokes below (>= 1): the tenant must keep
  /// making progress even when outbid everywhere.
  unsigned MinThreads = 1;

  /// Per-tenant ceiling; 0 means "platform cap".
  unsigned MaxThreads = 0;

  /// p95 response-time SLO in seconds; only meaningful for
  /// ResponseTime tenants (0 disables SLO urgency).
  double SloSeconds = 0.0;
};

/// One epoch of tenant telemetry, reported before a rebalance. Rates are
/// measured over the reporting window, not cumulative.
struct TenantSample {
  /// Virtual time the window closed, in seconds.
  double Time = 0.0;

  /// Threads the tenant held while the window was measured.
  unsigned GrantedThreads = 0;

  /// Completions per second achieved over the window.
  double Throughput = 0.0;

  /// Arrivals per second offered over the window. Lets the arbiter
  /// distinguish "saturated" from "idle": extra threads are worthless to
  /// a tenant already serving everything offered.
  double OfferedRate = 0.0;

  /// p95 response time over the window, seconds (0 when no completions).
  double P95ResponseSeconds = 0.0;

  /// Items queued at window close — backlog pressure.
  double QueueDepth = 0.0;
};

} // namespace dope

#endif // DOPE_ARBITER_TENANT_H

// LK002 fixture: blocking while a mutex is held — once directly (a
// sleep inside the guard scope) and once transitively (a call chain
// that reaches the sleep with the guard still live).
// Never compiled — scanned by dope_lint in the lint test suite.
#include <chrono>
#include <mutex>
#include <thread>

struct Worker {
  std::mutex Mutex;
  int Jobs = 0;

  void backoff() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Direct: parks the thread with Mutex held.
  void tick() {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++Jobs;
  }

  // Transitive: backoff() blocks, and the guard is still live here.
  void drain() {
    std::lock_guard<std::mutex> Lock(Mutex);
    backoff();
    Jobs = 0;
  }
};

//===- workload/Arrivals.cpp - Request arrival processes -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workload/Arrivals.h"

using namespace dope;

PoissonProcess::PoissonProcess(double RatePerSecond, uint64_t Seed)
    : Rate(RatePerSecond), Gen(Seed) {
  assert(Rate > 0.0 && "arrival rate must be positive");
}

double PoissonProcess::nextArrival() {
  Last += Gen.exponential(Rate);
  return Last;
}

void PoissonProcess::setRate(double RatePerSecond) {
  assert(RatePerSecond > 0.0 && "arrival rate must be positive");
  Rate = RatePerSecond;
}

void LoadTrace::addPhase(double LoadFactor, double DurationSeconds) {
  assert(LoadFactor >= 0.0 && "negative load factor");
  assert(DurationSeconds > 0.0 && "phase needs a duration");
  Phases.push_back({LoadFactor, DurationSeconds});
}

double LoadTrace::loadFactorAt(double T) const {
  if (Phases.empty())
    return 0.0;
  double Start = 0.0;
  for (const Phase &P : Phases) {
    if (T < Start + P.Duration)
      return P.LoadFactor;
    Start += P.Duration;
  }
  return Phases.back().LoadFactor;
}

double LoadTrace::totalDuration() const {
  double Total = 0.0;
  for (const Phase &P : Phases)
    Total += P.Duration;
  return Total;
}

LoadTrace LoadTrace::makeStepPattern(double LightLoad, double HeavyLoad,
                                     double PhaseSeconds, unsigned Cycles) {
  LoadTrace Trace;
  for (unsigned I = 0; I != Cycles; ++I) {
    Trace.addPhase(LightLoad, PhaseSeconds);
    Trace.addPhase(HeavyLoad, PhaseSeconds);
  }
  return Trace;
}

LoadTrace LoadTrace::makeBurstPattern(double BaseLoad, double BurstLoad,
                                      double BaseSeconds,
                                      double BurstSeconds) {
  LoadTrace Trace;
  Trace.addPhase(BaseLoad, BaseSeconds);
  Trace.addPhase(BurstLoad, BurstSeconds);
  Trace.addPhase(BaseLoad, BaseSeconds);
  return Trace;
}

//===- core/ThreadPool.h - Growable cached thread pool --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executive's thread pool. Reconfiguration respawns task loops every
/// epoch and inner regions respawn per outer-loop iteration, so threads
/// are cached and reused rather than created per job: the paper attributes
/// parallel inefficiency partly to "overheads such as thread creation".
///
/// The pool grows on demand and never rejects work — the executive bounds
/// concurrency through configuration validation (total threads <= N), and
/// a pool that could refuse work would deadlock nested regions.
///
/// Workers are a failure domain: a job whose exception escapes must not
/// take the process down with std::terminate. Escaping exceptions are
/// routed to a pool-level error hook (DoPE's own jobs never let one
/// escape — the executive's task loop is the exception boundary — so the
/// hook firing indicates a bug in code submitted around the executive).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_THREADPOOL_H
#define DOPE_CORE_THREADPOOL_H

#include "support/Compiler.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dope {

/// Growable cached thread pool with fire-and-forget submission.
class ThreadPool {
public:
  /// Called with a description of an exception that escaped a job.
  using ErrorHookFn = std::function<void(const std::string &)>;

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Job. An idle cached worker picks it up; if none is idle a
  /// new worker thread is created.
  void submit(std::function<void()> Job);

  /// Installs the handler invoked (on the worker's thread) when a job's
  /// exception escapes. Without a hook the pool logs the error and keeps
  /// the worker; it never terminates the process.
  void setErrorHook(ErrorHookFn Hook);

  /// Number of job exceptions the pool has captured (monitoring/test
  /// hook). Lock-free: monitoring must not contend with submission.
  DOPE_HOT uint64_t escapedExceptions() const {
    return EscapedCount.load(std::memory_order_relaxed);
  }

  /// Number of worker threads ever created (monitoring/test hook).
  /// Lock-free.
  DOPE_HOT size_t threadsCreated() const {
    return SpawnedCount.load(std::memory_order_relaxed);
  }

  /// Number of currently idle workers (monitoring/test hook). Lock-free.
  DOPE_HOT size_t idleThreads() const {
    return IdleSnapshot.load(std::memory_order_relaxed);
  }

private:
  void workerMain();
  void reportEscaped(const std::string &Description);

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<std::function<void()>> Jobs DOPE_GUARDED_BY(Mutex);
  std::vector<std::thread> Workers DOPE_GUARDED_BY(Mutex);
  ErrorHookFn ErrorHook DOPE_GUARDED_BY(Mutex);
  // Spawn decision reads IdleCount under the lock.
  size_t IdleCount DOPE_GUARDED_BY(Mutex) = 0;
  bool ShuttingDown DOPE_GUARDED_BY(Mutex) = false;
  // Relaxed mirrors of the guarded state for lock-free monitoring reads.
  std::atomic<uint64_t> EscapedCount{0};
  std::atomic<size_t> SpawnedCount{0};
  std::atomic<size_t> IdleSnapshot{0};
};

} // namespace dope

#endif // DOPE_CORE_THREADPOOL_H

//===- metrics/ResponseStats.cpp - Transaction statistics ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "metrics/ResponseStats.h"

#include <cassert>

using namespace dope;

void ResponseStats::recordTransaction(double ArrivalTime, double StartTime,
                                      double CompletionTime) {
  assert(ArrivalTime <= StartTime && StartTime <= CompletionTime &&
         "transaction times out of order");
  Response.addSample(CompletionTime - ArrivalTime);
  Exec.addSample(CompletionTime - StartTime);
  Wait.addSample(StartTime - ArrivalTime);
  ResponsePct.addSample(CompletionTime - ArrivalTime);
  if (FirstArrival < 0.0 || ArrivalTime < FirstArrival)
    FirstArrival = ArrivalTime;
  if (CompletionTime > LastCompletion)
    LastCompletion = CompletionTime;
}

double ResponseStats::throughput() const {
  if (Response.count() == 0 || LastCompletion <= FirstArrival)
    return 0.0;
  return static_cast<double>(Response.count()) /
         (LastCompletion - FirstArrival);
}

void ResponseStats::reset() { *this = ResponseStats(); }

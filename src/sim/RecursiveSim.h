//===- sim/RecursiveSim.h - Recursive task-tree workload model -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded analytic model of a recursive divide-and-conquer region run by
/// the work-stealing runtime: N leaves of uniform cost are chopped into
/// tasks of Grain leaves each and executed by W workers in rounds. The
/// model reproduces both grain faults the GrainAdapt mechanism walks out
/// of, making throughput unimodal in the grain:
///
///   * too fine  — every task pays TaskOverheadSeconds (deque traffic,
///     steal churn), so total cost grows as N/g while the steal rate and
///     per-task cost signals read "thrash";
///   * too coarse — fewer tasks than workers leaves contexts idle
///     (round quantization) and per-task jitter no longer averages out
///     (the imbalance tail), while outstanding work reads "starved".
///
/// Epochs of LeavesPerEpoch leaves advance a virtual clock; after each
/// epoch the simulator snapshots the region (per-task cost, outstanding
/// load), publishes StealRate / MeanTaskSeconds through a feature
/// registry — the same signals the native TreeEngine exports — and
/// consults a real Mechanism through the standard interface, charging a
/// pause for every applied reconfiguration. Runs are deterministic given
/// the seed: identical decision logs and bit-identical throughput.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_RECURSIVESIM_H
#define DOPE_SIM_RECURSIVESIM_H

#include "core/Mechanism.h"
#include "core/Task.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dope {

/// Cost model of the recursive work.
struct RecursiveWorkModel {
  std::string Name = "descend";
  /// Work in one leaf, in seconds.
  double LeafSeconds = 2e-6;
  /// Fixed cost charged per task: spawn, deque traffic, the odd steal.
  double TaskOverheadSeconds = 30e-6;
  /// Fraction of tasks executed by a worker other than their spawner
  /// (randomized stealing keeps this roughly grain-independent).
  double StealFraction = 0.5;
  /// Per-epoch coefficient of variation of the leaf cost (input noise
  /// the adaptation must ride out).
  double JitterCv = 0.1;
  /// Weight of the imbalance tail: with T tasks on W workers the epoch
  /// stretches by (1 + ImbalanceWeight * W / T) because coarse tasks'
  /// jitter does not average out.
  double ImbalanceWeight = 0.5;
};

/// Simulation options.
struct RecursiveSimOptions {
  /// Worker contexts of the simulated platform.
  unsigned Workers = 8;
  /// Total leaves of the run.
  uint64_t Leaves = 1u << 20;
  /// Leaves processed between two mechanism consults.
  uint64_t LeavesPerEpoch = 1u << 16;
  /// Seed for the per-epoch service jitter.
  uint64_t Seed = 42;
  /// Pause charged when a reconfiguration is applied (drain + respawn).
  double ReconfigPauseSeconds = 1e-3;
};

/// Results of one simulated run.
struct RecursiveSimResult {
  /// Virtual seconds of the whole run, pauses included.
  double TotalSeconds = 0.0;
  /// Leaves per virtual second.
  double Throughput = 0.0;
  uint64_t Reconfigurations = 0;
  unsigned FinalGrain = 0;
  unsigned FinalExtent = 0;
  /// Rendered configuration of every applied decision, prefixed with
  /// the epoch index ("3: <(8, TREE, g=128)>") — the replay-identity
  /// tests compare these byte for byte.
  std::vector<std::string> DecisionLog;
  /// Proposals rejected by validateConfig (a mechanism bug).
  uint64_t InvalidProposals = 0;
};

/// The simulator. One instance can run many experiments; each run is
/// deterministic given the options' seed.
class RecursiveSim {
public:
  RecursiveSim(RecursiveWorkModel Model, RecursiveSimOptions Opts);

  /// Runs the workload under \p Mech (nullptr = keep the initial
  /// <grain, extent> fixed forever — the baseline for convergence
  /// comparisons).
  RecursiveSimResult run(Mechanism *Mech, unsigned InitialGrain,
                         unsigned InitialExtent);

  /// Analytic epoch makespan for a fixed grain/extent at nominal leaf
  /// cost (jitter factor 1): exposes the unimodal shape to tests.
  double epochSeconds(unsigned Grain, unsigned Extent) const;

  const RecursiveWorkModel &model() const { return Model; }
  const ParDescriptor *rootRegion() const { return Root; }

private:
  RecursiveWorkModel Model;
  RecursiveSimOptions Opts;

  TaskGraph Graph;
  ParDescriptor *Root = nullptr;
  Task *TreeTask = nullptr;
};

} // namespace dope

#endif // DOPE_SIM_RECURSIVESIM_H

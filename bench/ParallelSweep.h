//===- bench/ParallelSweep.h - Parallel figure-point runner ----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans independent configuration points of a figure sweep across real
/// threads. Every simulated run is deterministic given its options'
/// seed and simulators share no mutable state across instances, so
/// running the load points of a figure concurrently produces bytes
/// identical to the sequential sweep — results are collected into input
/// order and the caller prints them exactly as before.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_BENCH_PARALLELSWEEP_H
#define DOPE_BENCH_PARALLELSWEEP_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dope {
namespace bench {

/// Resolves a --jobs style option: 0 means "one worker per hardware
/// context", anything else is taken literally (minimum 1).
inline unsigned resolveSweepWorkers(int Requested) {
  if (Requested > 0)
    return static_cast<unsigned>(Requested);
  const unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

/// Runs Work(I) for I in [0, Count) on up to \p Workers threads and
/// returns the results in input order. Work must be safe to call
/// concurrently for distinct indices (each call should own its
/// simulator instance). The first exception thrown by any point is
/// rethrown on the caller's thread after the sweep drains.
template <typename Result, typename WorkFn>
std::vector<Result> parallelSweep(size_t Count, unsigned Workers,
                                  WorkFn Work) {
  std::vector<Result> Results(Count);
  if (Count == 0)
    return Results;
  if (Workers <= 1 || Count == 1) {
    for (size_t I = 0; I != Count; ++I)
      Results[I] = Work(I);
    return Results;
  }

  std::atomic<size_t> NextIndex{0};
  std::mutex ErrorMutex;
  std::exception_ptr FirstError;

  auto WorkerMain = [&] {
    for (;;) {
      const size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      try {
        Results[I] = Work(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> Pool;
  const size_t Spawn = std::min<size_t>(Workers, Count);
  Pool.reserve(Spawn);
  for (size_t T = 0; T != Spawn; ++T)
    Pool.emplace_back(WorkerMain);
  for (std::thread &T : Pool)
    T.join();

  if (FirstError)
    std::rethrow_exception(FirstError);
  return Results;
}

} // namespace bench
} // namespace dope

#endif // DOPE_BENCH_PARALLELSWEEP_H

//===- sim/NestServerSim.cpp - Two-level nest server simulation ------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/NestServerSim.h"

#include "mechanisms/ServerNest.h"

#include "support/RingDeque.h"

#include <cassert>
#include <cmath>
#include <functional>

using namespace dope;

NestServerSim::NestServerSim(NestAppModel App, NestSimOptions Opts)
    : App(std::move(App)), Opts(Opts) {
  assert(this->App.SeqServiceSeconds > 0.0 && "transaction needs work");
  assert(Opts.Contexts >= 1 && "platform needs contexts");
  assert(Opts.LoadFactor > 0.0 && "load factor must be positive");
  buildGraph();
}

void NestServerSim::buildGraph() {
  // The model graph only carries structure; its functors never run.
  TaskFn Dummy = [](TaskRuntime &) { return TaskStatus::Finished; };
  InnerTask = Graph.createTask(App.Name + ".work", Dummy, LoadFn(),
                               Graph.parDescriptor());
  ParDescriptor *InnerRegion = Graph.createRegion({InnerTask});
  OuterTask = Graph.createTask(
      App.Name, Dummy, LoadFn(),
      Graph.createDescriptor(TaskKind::Parallel, {InnerRegion}));
  Root = Graph.createRegion({OuterTask});
}

double NestServerSim::maxThroughput() const {
  return static_cast<double>(Opts.Contexts) / App.SeqServiceSeconds;
}

double NestServerSim::arrivalRate() const {
  return Opts.LoadFactor * maxThroughput();
}

NestSimResult NestServerSim::run(Mechanism *Mech, unsigned InitialOuter,
                                 unsigned InitialInner) {
  assert(InitialOuter >= 1 && InitialInner >= 1 && "extents must be >= 1");
  if (Mech)
    Mech->reset();

  EventQueue Events;
  Rng ArrivalRng(Opts.Seed);
  Rng ServiceRng(Opts.Seed ^ 0x5eedf00dULL);

  NestSimResult Result;

  // Retarget the tracer's clock to virtual time for the duration of the
  // run, and make it the process-wide sink for mirrored log lines.
  Tracer *Sink = Opts.TraceSink;
  Tracer *PrevActive = nullptr;
  if (Sink) {
    PrevActive = Tracer::active();
    Sink->setClock([&Events] { return Events.now(); });
    Tracer::setActive(Sink);
  }

  // Mutable simulation state.
  RegionConfig Config =
      makeServerConfig(*Root, InitialOuter, InitialInner, /*AltIndex=*/0);
  unsigned OuterK = serverOuterExtent(Config);
  unsigned InnerM = serverInnerExtent(Config);

  RingDeque<Job> Queue;
  unsigned ActiveJobs = 0;
  unsigned BusyContexts = 0;
  uint64_t Arrived = 0;
  uint64_t Completed = 0;
  double PausedUntil = 0.0;
  Ema ExecTimeEma(0.25);
  Ema LoadEma(0.25);
  double LastQueueSample = 0.0;

  // Forward declaration pattern for mutually recursive lambdas.
  std::function<void()> TryStart;

  auto ServiceTime = [&](unsigned M) {
    const double Base = App.SeqServiceSeconds / App.Curve.speedup(M);
    const double Jittered = ServiceRng.logNormal(Base, App.ServiceCv);
    // Oversubscription slowdown, based on actually busy contexts
    // (statics may violate k*m <= C; adaptive configs never do).
    const double Ratio = static_cast<double>(BusyContexts) /
                         static_cast<double>(Opts.Contexts);
    if (Ratio <= 1.0)
      return Jittered;
    return Jittered *
           std::pow(Ratio, 1.0 + Opts.OversubscribePenalty);
  };

  auto CompleteJob = [&](const Job &J, double CompletionTime) {
    ++Completed;
    if (Sink && Opts.TraceTaskInstances)
      Sink->recordAt(CompletionTime, TraceKind::TaskEnd, OuterTask->name(),
                     static_cast<double>(J.Id),
                     CompletionTime - J.StartTime);
    if (Completed > Opts.WarmupTransactions)
      Result.Stats.recordTransaction(J.ArrivalTime, J.StartTime,
                                     CompletionTime);
    ExecTimeEma.addSample(CompletionTime - J.StartTime);
    assert(ActiveJobs > 0 && "completion without active job");
    --ActiveJobs;
    BusyContexts -= std::min(BusyContexts, J.InnerExtent);
    TryStart();
  };

  TryStart = [&]() {
    const double Now = Events.now();
    if (Now < PausedUntil)
      return;
    // Admission is context-based: a transaction starts as soon as its
    // inner extent fits in the free hardware contexts. This matches the
    // executive's thread-budget semantics and makes mode transitions
    // gradual: in-flight transactions finish under their old extent
    // while new ones already start under the new one. Deliberately
    // oversubscribed static configurations (k*m > C) fall back to
    // job-slot admission and pay the contention penalty in ServiceTime.
    const bool Oversubscribed =
        static_cast<uint64_t>(OuterK) * InnerM > Opts.Contexts;
    for (;;) {
      if (Queue.empty())
        break;
      if (Oversubscribed) {
        if (ActiveJobs >= OuterK)
          break;
      } else if (BusyContexts + InnerM > Opts.Contexts) {
        break;
      }
      Job J = Queue.front();
      Queue.pop_front();
      J.StartTime = Now;
      J.InnerExtent = InnerM;
      if (Sink && Opts.TraceTaskInstances)
        Sink->recordAt(Now, TraceKind::TaskBegin, OuterTask->name(),
                       static_cast<double>(J.Id));
      ++ActiveJobs;
      BusyContexts += InnerM;
      const double Duration = ServiceTime(InnerM);
      Events.scheduleAfter(Duration,
                           [&, J, Now, Duration] {
                             CompleteJob(J, Now + Duration);
                           });
    }
  };

  // Poisson arrival process; with a LoadTrace the instantaneous rate
  // follows the schedule.
  const bool HasTrace = Opts.Trace.phaseCount() > 0;
  std::function<void()> ScheduleArrival = [&]() {
    if (Arrived >= Opts.NumTransactions)
      return;
    double Rate = arrivalRate();
    if (HasTrace) {
      const double Factor = Opts.Trace.loadFactorAt(Events.now());
      Rate = std::max(1e-9, Factor * maxThroughput());
    }
    const double Gap = ArrivalRng.exponential(Rate);
    Events.scheduleAfter(Gap, [&] {
      ++Arrived;
      Queue.push_back({Events.now(), 0.0, 0, Arrived - 1});
      TryStart();
      ScheduleArrival();
    });
  };
  ScheduleArrival();

  // Mechanism decision ticks.
  std::function<void()> DecisionTick = [&]() {
    if (Completed >= Opts.NumTransactions)
      return;
    const double Now = Events.now();
    LastQueueSample = static_cast<double>(Queue.size());
    LoadEma.addSample(LastQueueSample);
    if (Sink)
      Sink->recordAt(Now, TraceKind::QueueDepth, OuterTask->name(),
                     LastQueueSample, static_cast<double>(ActiveJobs));

    if (Mech) {
      RegionSnapshot Snap;
      TaskSnapshot Outer;
      Outer.TaskId = OuterTask->id();
      Outer.Name = OuterTask->name();
      Outer.Kind = TaskKind::Parallel;
      Outer.ExecTime = ExecTimeEma.value();
      Outer.Load = LoadEma.value();
      Outer.LastLoad = LastQueueSample;
      Outer.Invocations = Completed;
      Outer.CurrentExtent = OuterK;
      Outer.ActiveAlt = InnerM > 1 ? 0 : -1;
      if (Outer.ExecTime > 0.0)
        Outer.Throughput = OuterK / Outer.ExecTime;

      RegionSnapshot InnerSnap;
      TaskSnapshot InnerTs;
      InnerTs.TaskId = InnerTask->id();
      InnerTs.Name = InnerTask->name();
      InnerTs.Kind = TaskKind::Parallel;
      InnerTs.ExecTime =
          InnerM > 0 ? ExecTimeEma.value() / static_cast<double>(InnerM)
                     : 0.0;
      InnerTs.Invocations = Completed;
      InnerTs.CurrentExtent = InnerM;
      InnerSnap.Tasks.push_back(std::move(InnerTs));
      Outer.InnerAlternatives.push_back(std::move(InnerSnap));
      Snap.Tasks.push_back(std::move(Outer));

      MechanismContext Ctx;
      Ctx.MaxThreads = Opts.Contexts;
      Ctx.NowSeconds = Now;
      Ctx.Trace = Sink;

      std::optional<RegionConfig> Next =
          Mech->reconfigure(*Root, Snap, Config, Ctx);
      const bool Changed = Next && !(*Next == Config);
      if (Sink) {
        const RegionConfig &Chosen = Changed ? *Next : Config;
        Sink->recordAt(Now, TraceKind::Decision, Mech->name(),
                       totalThreads(*Root, Chosen), Changed ? 1.0 : 0.0,
                       toString(*Root, Chosen));
      }
      if (Changed) {
        Config = *Next;
        OuterK = serverOuterExtent(Config);
        InnerM = serverInnerExtent(Config);
        ++Result.Reconfigurations;
        PausedUntil = Now + Opts.ReconfigPauseSeconds;
        if (Sink)
          Sink->recordAt(Now, TraceKind::Reconfig, "sim", OuterK, InnerM,
                         toString(*Root, Config));
        Events.scheduleAfter(Opts.ReconfigPauseSeconds, [&] { TryStart(); });
      }
    }
    Result.InnerExtentTrace.addPoint(Now, static_cast<double>(InnerM));
    Events.scheduleAfter(Opts.DecisionIntervalSeconds, DecisionTick);
  };
  Events.scheduleAfter(Opts.DecisionIntervalSeconds, DecisionTick);

  // Run to completion: all transactions done or the safety horizon hit.
  while (Completed < Opts.NumTransactions &&
         Events.now() < Opts.MaxSimSeconds) {
    if (!Events.step(Opts.MaxSimSeconds))
      break;
  }

  if (Sink) {
    Sink->setClock({});
    if (Tracer::active() == Sink)
      Tracer::setActive(PrevActive);
  }

  Result.TotalSeconds = Events.now();
  Result.Throughput = Result.TotalSeconds > 0.0
                          ? static_cast<double>(Completed) /
                                Result.TotalSeconds
                          : 0.0;
  return Result;
}

//===- tests/IntegrationTest.cpp - Cross-module shape tests -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end checks that the paper's qualitative results hold on small
/// workloads (the benchmark harnesses in bench/ run the full-size
/// versions). Each test corresponds to one claim in Sec. 8 of the paper.
///
//===----------------------------------------------------------------------===//

#include "apps/NestApps.h"
#include "apps/PipelineApps.h"
#include "mechanisms/Edp.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/Seda.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/Tpc.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"
#include "mechanisms/ServerNest.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "support/Statistics.h"
#include "workload/Arrivals.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

std::vector<unsigned> evenFerret() { return {1, 6, 6, 5, 5, 1}; }

TEST(Integration, Figure2LatencyThroughputTradeoff) {
  NestAppBundle App = makeX264App();
  NestSimOptions Opts;
  Opts.Contexts = 24;
  Opts.NumTransactions = 400;
  Opts.Seed = 3;

  // Light load: inner parallelism wins on response time.
  Opts.LoadFactor = 0.3;
  NestServerSim Light(App.Model, Opts);
  EXPECT_LT(Light.run(nullptr, 3, 8).Stats.meanResponseTime(),
            Light.run(nullptr, 24, 1).Stats.meanResponseTime());

  // Heavy load: sequential transactions win.
  Opts.LoadFactor = 1.0;
  Opts.NumTransactions = 600;
  NestServerSim Heavy(App.Model, Opts);
  EXPECT_GT(Heavy.run(nullptr, 3, 8).Stats.meanResponseTime(),
            Heavy.run(nullptr, 24, 1).Stats.meanResponseTime());
}

TEST(Integration, Figure11AdaptiveDominatesAtCrossover) {
  // At the crossover load, neither static wins — the adaptive
  // configuration produces "an average DoP somewhere in between".
  NestAppBundle App = makeX264App();
  NestSimOptions Opts;
  Opts.Contexts = 24;
  Opts.LoadFactor = 0.8;
  Opts.NumTransactions = 600;
  Opts.Seed = 11;
  NestServerSim Sim(App.Model, Opts);

  const double Seq = Sim.run(nullptr, 24, 1).Stats.meanResponseTime();
  const double Par = Sim.run(nullptr, 3, 8).Stats.meanResponseTime();
  WqtHMechanism WqtH(App.WqtH);
  const double Adaptive =
      Sim.run(&WqtH, 24, 1).Stats.meanResponseTime();
  EXPECT_LT(Adaptive, std::max(Seq, Par));
  EXPECT_LT(Adaptive, std::min(Seq, Par) * 1.25);
}

TEST(Integration, Table15OrderingOnSmallRuns) {
  std::vector<double> TbfGains;
  for (const PipelineAppModel &App : allPipelineApps()) {
    PipelineSimOptions Opts;
    Opts.Contexts = 24;
    Opts.Seed = 21;
    Opts.NumItems = 700;
    PipelineSim Sim(App, Opts);

    std::vector<unsigned> Even;
    for (const PipelineStageSpec &S : App.Stages)
      Even.push_back(S.Parallel ? 7 : 1);
    const double Baseline = Sim.run(nullptr, Even).Throughput;
    ASSERT_GT(Baseline, 0.0);

    TbfMechanism Tbf;
    const double WithTbf = Sim.run(&Tbf, Even).Throughput;
    TbfGains.push_back(WithTbf / Baseline);

    SedaMechanism Seda;
    const double WithSeda = Sim.run(&Seda, Even).Throughput;
    EXPECT_GE(WithTbf, WithSeda * 0.98) << App.Name;
  }
  // Geomean improvement in the ballpark of the paper's 2.36x.
  EXPECT_GT(geomean(TbfGains), 1.6);
}

TEST(Integration, FdpAndTbfAgreeOnTheBottleneck) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 5;
  Opts.NumItems = 1500;
  PipelineSim Sim(App, Opts);

  TbfMechanism Tb({0.5, /*EnableFusion=*/false});
  PipelineSimResult RTb = Sim.run(&Tb, {});
  FdpMechanism Fdp;
  PipelineSimResult RFdp = Sim.run(&Fdp, {});

  // Both allocate the most threads to the extract stage (index 2).
  auto ArgMax = [](const std::vector<unsigned> &V) {
    size_t Best = 0;
    for (size_t I = 1; I != V.size(); ++I)
      if (V[I] > V[Best])
        Best = I;
    return Best;
  };
  EXPECT_EQ(ArgMax(RTb.FinalExtents), 2u);
  EXPECT_EQ(ArgMax(RFdp.FinalExtents), 2u);
}

TEST(Integration, TpcHoldsBudgetWhileSedaWouldNot) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 9;
  Opts.NumItems = 1500;
  Opts.PowerBudgetWatts = 540.0;
  Opts.DecisionIntervalSeconds = 1.0;
  PipelineSim Sim(App, Opts);

  TpcMechanism Tpc;
  PipelineSimResult R = Sim.run(&Tpc, {});
  EXPECT_EQ(R.ItemsCompleted, 1500u);
  // Power must settle at/below the budget for the trailing half.
  double LateMax = 0.0;
  for (size_t I = 0; I != R.PowerSeries.size(); ++I)
    if (R.PowerSeries.point(I).Time > R.TotalSeconds * 0.6)
      LateMax = std::max(LateMax, R.PowerSeries.point(I).Value);
  EXPECT_LE(LateMax, 540.0 + 2 * 6.25);
}

TEST(Integration, StepLoadTraceDrivesModeSwitches) {
  NestAppBundle App = makeX264App();
  NestSimOptions Opts;
  Opts.Contexts = 24;
  Opts.NumTransactions = 500;
  Opts.Seed = 17;
  Opts.Trace = LoadTrace::makeStepPattern(0.2, 0.95, 150.0, 20);
  NestServerSim Sim(App.Model, Opts);

  WqtHMechanism WqtH(App.WqtH);
  NestSimResult R = Sim.run(&WqtH, 24, 1);
  EXPECT_EQ(R.Stats.count(), 500u);
  // The mechanism must visit both modes: the extent trace contains both
  // sequential (1) and parallel (Mmax) decisions.
  bool SawSeq = false, SawPar = false;
  for (size_t I = 0; I != R.InnerExtentTrace.size(); ++I) {
    const double V = R.InnerExtentTrace.point(I).Value;
    SawSeq |= V <= 1.5;
    SawPar |= V >= App.MMax - 0.5;
  }
  EXPECT_TRUE(SawSeq);
  EXPECT_TRUE(SawPar);
  EXPECT_GE(R.Reconfigurations, 2u);
}

TEST(Integration, DeterministicAcrossWholeStack) {
  // A full adaptive pipeline run is bit-reproducible for a fixed seed.
  PipelineAppModel App = makeDedupApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 99;
  Opts.NumItems = 600;
  PipelineSim A(App, Opts), B(App, Opts);
  TbfMechanism TbfA, TbfB;
  PipelineSimResult RA = A.run(&TbfA, {});
  PipelineSimResult RB = B.run(&TbfB, {});
  EXPECT_DOUBLE_EQ(RA.Throughput, RB.Throughput);
  EXPECT_EQ(RA.Reconfigurations, RB.Reconfigurations);
  EXPECT_EQ(RA.FinalExtents, RB.FinalExtents);
  EXPECT_DOUBLE_EQ(RA.TotalSeconds, RB.TotalSeconds);
}

TEST(Integration, EdpMechanismStableUnderRisingLoad) {
  NestAppBundle App = makeSwaptionsApp();
  NestSimOptions Opts;
  Opts.Contexts = 24;
  Opts.NumTransactions = 500;
  Opts.Seed = 31;
  LoadTrace Trace;
  Trace.addPhase(0.2, 200.0);
  Trace.addPhase(0.9, 200.0);
  Opts.Trace = Trace;
  NestServerSim Sim(App.Model, Opts);
  EdpMechanism Edp({App.Model.Curve, 8, 1.15, 0});
  NestSimResult R = Sim.run(&Edp, 24, 1);
  EXPECT_EQ(R.Stats.count(), 500u);
  // EDP must not melt down when the load rises: p95 stays bounded.
  EXPECT_LT(R.Stats.responsePercentile(0.95),
            App.Model.SeqServiceSeconds * 5.0);
}

} // namespace

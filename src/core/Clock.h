//===- core/Clock.h - Monotonic time helpers ------------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock helpers for the native run-time system. (The
/// paper's implementation uses per-thread clock_gettime timers; steady
/// clock seconds serve the same role here.)
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_CLOCK_H
#define DOPE_CORE_CLOCK_H

#include <chrono>
#include <thread>

namespace dope {

/// Seconds since an arbitrary fixed epoch, monotonic.
inline double monotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - Origin).count();
}

/// Sleeps the calling thread for the given number of seconds.
inline void sleepSeconds(double Seconds) {
  if (Seconds <= 0)
    return;
  std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
}

} // namespace dope

#endif // DOPE_CORE_CLOCK_H

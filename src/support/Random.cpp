//===- support/Random.cpp - Deterministic random number generation -------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dope;

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  SplitMix64 SM(Seed);
  for (uint64_t &Word : State)
    Word = SM.next();
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // Use the high 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t Rng::uniformInt(uint64_t N) {
  assert(N > 0 && "uniformInt requires a nonempty range");
  // Debiased modulo via rejection sampling.
  const uint64_t Threshold = -N % N;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % N;
  }
}

double Rng::exponential(double Rate) {
  assert(Rate > 0 && "exponential rate must be positive");
  // Avoid log(0) by nudging the uniform sample away from zero.
  double U = uniform();
  if (U <= 0.0)
    U = 0x1.0p-53;
  return -std::log(U) / Rate;
}

double Rng::normal(double Mean, double Stddev) {
  // Box-Muller; draw until the radius is usable.
  double U1 = uniform();
  if (U1 <= 0.0)
    U1 = 0x1.0p-53;
  const double U2 = uniform();
  const double R = std::sqrt(-2.0 * std::log(U1));
  return Mean + Stddev * R * std::cos(2.0 * M_PI * U2);
}

double Rng::logNormal(double Mean, double Cv) {
  assert(Mean > 0 && "logNormal mean must be positive");
  assert(Cv >= 0 && "coefficient of variation must be nonnegative");
  if (Cv == 0.0)
    return Mean;
  // Convert (mean, cv) of the log-normal into (mu, sigma) of the
  // underlying normal.
  const double Sigma2 = std::log(1.0 + Cv * Cv);
  const double Mu = std::log(Mean) - 0.5 * Sigma2;
  return std::exp(normal(Mu, std::sqrt(Sigma2)));
}

uint64_t Rng::poisson(double Mean) {
  assert(Mean >= 0 && "poisson mean must be nonnegative");
  if (Mean == 0.0)
    return 0;
  if (Mean > 64.0) {
    // Normal approximation with continuity correction.
    const double Sample = normal(Mean, std::sqrt(Mean));
    return Sample <= 0.0 ? 0 : static_cast<uint64_t>(Sample + 0.5);
  }
  // Knuth's product-of-uniforms method.
  const double Limit = std::exp(-Mean);
  uint64_t Count = 0;
  double Product = uniform();
  while (Product > Limit) {
    ++Count;
    Product *= uniform();
  }
  return Count;
}

Rng Rng::split() { return Rng(next()); }

uint64_t dope::loggedTestSeed(uint64_t Default) {
  uint64_t Seed = Default;
  if (const char *Env = std::getenv("DOPE_TEST_SEED"))
    Seed = std::strtoull(Env, nullptr, 0);
  std::printf("[   SEED   ] %llu (override with DOPE_TEST_SEED)\n",
              static_cast<unsigned long long>(Seed));
  std::fflush(stdout);
  return Seed;
}

// DL001 fixture: raw std::chrono clock reads outside support/Clock.h.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <chrono>

double wallSeconds() {
  auto Now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(Now.time_since_epoch()).count();
}

double monoSeconds() {
  auto Now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(Now.time_since_epoch()).count();
}

//===- arbiter/Arbiter.cpp - Platform parallelism arbiter ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arbiter/Arbiter.h"

#include "support/Logging.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dope;

Arbiter::Arbiter(ArbiterOptions Opts) : Opts(std::move(Opts)) {
  assert(this->Opts.TotalThreads >= 1 && "platform needs at least a thread");
  assert(this->Opts.EpochSeconds > 0.0 && "epoch must be positive");
}

unsigned Arbiter::grantableThreads() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return grantableThreadsLocked();
}

unsigned Arbiter::grantableThreadsLocked() const {
  unsigned Pool = Opts.TotalThreads;
  if (Opts.PowerBudgetWatts > 0.0 && Opts.WattsPerThread > 0.0) {
    const double Avail =
        (Opts.PowerBudgetWatts - Opts.IdlePowerWatts) / Opts.WattsPerThread;
    const unsigned Capped =
        Avail <= 0.0 ? 0u : static_cast<unsigned>(std::floor(Avail));
    Pool = std::min(Pool, Capped);
  }
  // Liveness beats the power cap: every seated tenant keeps its floor
  // even when the budget would starve it (the cap then only squeezes
  // discretionary grants).
  unsigned Floors = 0;
  for (const TenantState &T : Tenants)
    Floors += std::max(1u, T.Spec.MinThreads);
  return std::max(Pool, Floors);
}

const Arbiter::TenantState &Arbiter::stateOf(TenantId Id) const {
  auto It = std::lower_bound(
      Tenants.begin(), Tenants.end(), Id,
      [](const TenantState &T, TenantId Id) { return T.Id < Id; });
  assert(It != Tenants.end() && It->Id == Id && "unknown tenant id");
  return *It;
}

Lease Arbiter::leaseOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const TenantState &T = stateOf(Id);
  return {T.Granted, T.Granted * Opts.WattsPerThread};
}

const TenantSpec &Arbiter::specOf(TenantId Id) const {
  // Specs are immutable after addTenant normalizes them, so handing the
  // reference out after dropping the lock is safe; the lock only
  // protects the lookup against concurrent add/remove.
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).Spec;
}

size_t Arbiter::tenantCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Tenants.size();
}

double Arbiter::lastBidOf(TenantId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return stateOf(Id).LastBid;
}

/// Absolute bid a latency tenant uses to defend held threads: above the
/// normalized marginal bid of any well-scaling tenant (<= ~1 x weight
/// for typical weights) but far below an SLO-urgency bid, so held
/// threads move only toward an emergency.
static constexpr double DefendBid = 2.0;

bool Arbiter::sloBurning(const TenantState &T) const {
  return T.Spec.Goal == TenantGoal::ResponseTime && T.Spec.SloSeconds > 0.0 &&
         T.HasSample && T.LastSample.P95ResponseSeconds > T.Spec.SloSeconds;
}

double Arbiter::bid(const TenantState &T, unsigned Have) const {
  // Base utility: normalized marginal speedup of thread Have+1 when the
  // estimator has a curve; harmonic equal-share bidding otherwise (the
  // 1/(k+1) schedule makes weighted water-filling converge to weighted
  // proportional shares among history-less tenants).
  double Utility;
  const SpeedupCurveFit &Fit = T.Estimator.fit();
  if (T.Estimator.hasHistory() && Fit.BaseRate > 0.0)
    Utility = T.Estimator.marginalRate(Have) / Fit.BaseRate;
  else
    Utility = 1.0 / static_cast<double>(Have + 1);

  // Demand: a tenant predicted to already serve its offered load (or
  // observed fully idle) bids for spare capacity at a deep discount.
  // Threads beyond covered demand have no utility to their holder no
  // matter how well the app would scale — without this, a learned
  // near-linear curve bids ~1 x weight for every thread on the machine.
  // A backlogged tenant needs drain headroom before its demand counts
  // as covered.
  if (T.HasSample) {
    const double Headroom = T.LastSample.QueueDepth >= 1.0 ? 1.5 : 1.0;
    const bool Saturating =
        T.LastSample.OfferedRate > 0.0 && T.Estimator.hasHistory() &&
        Fit.BaseRate > 0.0 &&
        T.Estimator.predictRate(std::max(1u, Have)) >=
            Headroom * T.LastSample.OfferedRate;
    const bool Idle =
        T.LastSample.OfferedRate <= 0.0 && T.LastSample.QueueDepth < 1.0;
    if (Saturating || Idle)
      Utility *= Opts.IdleBidDiscount;
  }

  // A backlogged tenant's held threads are all productive, even where
  // the one-more-thread marginal collapses (real capacity curves
  // quantize into plateaus — e.g. a pipeline whose bottleneck stage
  // needs two more replicas before throughput moves). Floor the bid
  // for held threads at the tenant's average normalized utility so a
  // backlog never reads as "these threads help nobody" and invites
  // another tenant to sweep the pool with an idle-grade bid.
  if (T.HasSample && T.LastSample.QueueDepth >= 1.0 && Have < T.Granted &&
      T.Granted > 0 && T.Estimator.hasHistory() && Fit.BaseRate > 0.0) {
    const double AvgUtil =
        T.LastSample.Throughput / (Fit.BaseRate * T.Granted);
    Utility = std::max(Utility, AvgUtil);
  }

  // SLO pressure for latency tenants: burning SLOs outbid everyone;
  // within-SLO tenants defend what they hold; comfortable ones cede —
  // but gracefully, two threads per epoch, so a quiet tenant drains to
  // its equilibrium instead of free-falling to its floor and paying a
  // multi-epoch recovery cliff when its load returns. The defend bid is
  // absolute (applied after the weight) and sits above any non-urgent
  // marginal bid, so only an SLO emergency elsewhere preempts held
  // threads.
  double Defend = -1.0;
  if (T.Spec.Goal == TenantGoal::ResponseTime && T.Spec.SloSeconds > 0.0 &&
      T.HasSample && T.LastSample.P95ResponseSeconds > 0.0) {
    const double Ratio =
        T.LastSample.P95ResponseSeconds / T.Spec.SloSeconds;
    if (Ratio > 1.0) {
      // A breached SLO is direct evidence of insufficient capacity and
      // overrides a (possibly demand-polluted) curve that claims more
      // threads would not help: bid at least the equal-share schedule,
      // boosted by the violation ratio. But grab with a target, not
      // greed: once the curve predicts capacity covering the offered
      // load with 50% drain headroom, further threads are overshoot
      // that would be ceded back two per epoch while other tenants
      // starve — bid those at the deep discount instead.
      const bool CoversDemand =
          T.Estimator.hasHistory() && Fit.BaseRate > 0.0 &&
          T.LastSample.OfferedRate > 0.0 &&
          T.Estimator.predictRate(std::max(1u, Have)) >=
              1.5 * T.LastSample.OfferedRate;
      if (CoversDemand) {
        Utility *= Opts.IdleBidDiscount;
      } else {
        Utility = std::max(Utility, 1.0 / static_cast<double>(Have + 1));
        Utility *= Opts.SloUrgencyBoost * Ratio;
      }
    } else if (Ratio < Opts.SloComfortFraction &&
               T.LastSample.QueueDepth < 1.0) {
      // bid(T, Have) prices thread number Have + 1, so defending
      // threads 1..Granted-2 means Have + 3 <= Granted. Ceding exactly
      // two per epoch also stays above HysteresisThreads = 1 — a
      // one-thread cede would be suppressed as drift and the tenant
      // would never drain.
      if (Have + 3 <= T.Granted)
        Defend = DefendBid;
      else
        Utility *= 0.25;
    } else if (Have < T.Granted) {
      Defend = DefendBid; // inside the SLO but not comfortable: hold
    }
  }

  Utility *= T.Spec.Weight;
  if (Defend > 0.0)
    Utility = std::max(Utility, Defend);

  // Tiny weighted floor: the water-fill always places the whole pool
  // (idle threads help nobody), and ties between all-idle tenants still
  // resolve toward weighted shares.
  const double Floor =
      1e-6 * T.Spec.Weight / static_cast<double>(Have + 1);
  return std::max(Utility, Floor);
}

std::vector<unsigned> Arbiter::waterFill() const {
  const unsigned Pool = grantableThreadsLocked();
  std::vector<unsigned> Alloc(Tenants.size(), 0);
  std::vector<unsigned> Cap(Tenants.size(), 0);
  unsigned Placed = 0;
  for (size_t I = 0; I != Tenants.size(); ++I) {
    const TenantSpec &S = Tenants[I].Spec;
    Cap[I] = S.MaxThreads == 0 ? Opts.TotalThreads
                               : std::min(S.MaxThreads, Opts.TotalThreads);
    Alloc[I] = std::min(std::max(1u, S.MinThreads), Cap[I]);
    Placed += Alloc[I];
  }

  // Discretionary threads go one at a time to the highest bidder; ties
  // break toward the lowest tenant id for determinism.
  while (Placed < Pool) {
    size_t Best = Tenants.size();
    double BestBid = -1.0;
    for (size_t I = 0; I != Tenants.size(); ++I) {
      if (Alloc[I] >= Cap[I])
        continue;
      const double B = bid(Tenants[I], Alloc[I]);
      if (B > BestBid) {
        BestBid = B;
        Best = I;
      }
    }
    if (Best == Tenants.size())
      break; // everyone at their cap; leave the rest idle
    ++Alloc[Best];
    ++Placed;
  }
  return Alloc;
}

std::vector<LeaseChange>
Arbiter::apply(const std::vector<unsigned> &Target, double Now,
               const char *Reason) {
  assert(Target.size() == Tenants.size());
  std::vector<LeaseChange> Changes;

  for (size_t I = 0; I != Tenants.size(); ++I) {
    TenantState &T = Tenants[I];
    T.LastBid = bid(T, Target[I]);
    if (Opts.Trace)
      Opts.Trace->recordAt(Now, TraceKind::TenantUtility, T.Spec.Name,
                           T.LastBid, static_cast<double>(T.Granted));
  }

  // Revocations first so a host applying changes in order never holds
  // more threads than the platform owns.
  for (int Pass = 0; Pass != 2; ++Pass) {
    for (size_t I = 0; I != Tenants.size(); ++I) {
      TenantState &T = Tenants[I];
      const unsigned New = Target[I], Old = T.Granted;
      const bool Shrink = New < Old;
      if (New == Old || (Pass == 0) != Shrink)
        continue;
      if (Opts.Trace)
        Opts.Trace->recordAt(Now,
                             Shrink ? TraceKind::LeaseRevoke
                                    : TraceKind::LeaseGrant,
                             T.Spec.Name, static_cast<double>(New),
                             static_cast<double>(Old), Reason);
      DOPE_LOG_DEBUG("arbiter: %s lease %s %u -> %u (%s)",
                     T.Spec.Name.c_str(), Shrink ? "revoke" : "grant", Old,
                     New, Reason);
      Changes.push_back({T.Spec.Name, Now, Old, New, Reason});
      T.Granted = New;
    }
  }
  return Changes;
}

TenantId Arbiter::addTenant(TenantSpec Spec, double NowSeconds,
                            std::vector<LeaseChange> *Changes) {
  assert(Spec.Weight > 0.0 && "tenant weight must be positive");
  std::lock_guard<std::mutex> Lock(Mutex);
  TenantState T;
  T.Id = NextId++;
  T.Spec = std::move(Spec);
  if (T.Spec.MinThreads == 0)
    T.Spec.MinThreads = 1;
  Tenants.push_back(std::move(T));

  // A join re-splits immediately: the newcomer cannot wait an epoch for
  // its first thread, and sitting tenants shrink to make room.
  std::vector<LeaseChange> Applied =
      apply(waterFill(), NowSeconds, "join");
  LastRebalance = NowSeconds;
  EverRebalanced = true;
  if (Changes)
    Changes->insert(Changes->end(), Applied.begin(), Applied.end());
  return Tenants.back().Id;
}

void Arbiter::removeTenant(TenantId Id, double NowSeconds,
                           std::vector<LeaseChange> *Changes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = std::lower_bound(
      Tenants.begin(), Tenants.end(), Id,
      [](const TenantState &T, TenantId Id) { return T.Id < Id; });
  assert(It != Tenants.end() && It->Id == Id && "unknown tenant id");
  if (Opts.Trace && It->Granted > 0)
    Opts.Trace->recordAt(NowSeconds, TraceKind::LeaseRevoke, It->Spec.Name,
                         0.0, static_cast<double>(It->Granted), "leave");
  if (Changes)
    Changes->push_back({It->Spec.Name, NowSeconds, It->Granted, 0, "leave"});
  DOPE_LOG_DEBUG("arbiter: tenant %s leaves, returning %u threads",
                 It->Spec.Name.c_str(), It->Granted);
  Tenants.erase(It);
  // The freed threads are re-offered at the next epoch; a leave never
  // interrupts the survivors mid-epoch.
}

void Arbiter::reportSample(TenantId Id, const TenantSample &Sample) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = std::lower_bound(
      Tenants.begin(), Tenants.end(), Id,
      [](const TenantState &T, TenantId Id) { return T.Id < Id; });
  assert(It != Tenants.end() && It->Id == Id && "unknown tenant id");
  It->LastSample = Sample;
  It->HasSample = true;
  // Only saturated windows teach the estimator: an underloaded window's
  // throughput equals the offered load, which says capacity(k) >= rate,
  // not capacity(k) == rate — feeding it as an equality would teach the
  // curve that threads don't help.
  if (Sample.QueueDepth >= 1.0)
    It->Estimator.observe(Sample.GrantedThreads, Sample.Throughput);
}

std::vector<LeaseChange> Arbiter::rebalance(double NowSeconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Tenants.empty())
    return {};
  if (EverRebalanced && NowSeconds < LastRebalance + Opts.EpochSeconds)
    return {};

  const std::vector<unsigned> Target = waterFill();

  unsigned MaxDelta = 0;
  bool Urgent = false;
  for (size_t I = 0; I != Tenants.size(); ++I) {
    const unsigned Old = Tenants[I].Granted, New = Target[I];
    MaxDelta = std::max(MaxDelta, Old > New ? Old - New : New - Old);
    if (New > Old && sloBurning(Tenants[I]))
      Urgent = true;
  }

  LastRebalance = NowSeconds;
  EverRebalanced = true;

  // Hysteresis: drifting by a thread or two is noise, not signal —
  // unless a latency tenant is past its SLO, in which case even one
  // thread moves now.
  if (MaxDelta == 0 || (MaxDelta <= Opts.HysteresisThreads && !Urgent)) {
    if (Opts.Trace)
      for (TenantState &T : Tenants) {
        T.LastBid = bid(T, T.Granted);
        Opts.Trace->recordAt(NowSeconds, TraceKind::TenantUtility,
                             T.Spec.Name, T.LastBid,
                             static_cast<double>(T.Granted));
      }
    return {};
  }

  return apply(Target, NowSeconds, Urgent ? "slo-urgent" : "rebalance");
}

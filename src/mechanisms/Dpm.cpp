//===- mechanisms/Dpm.cpp - Dynamic Pipeline Mapping -------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Dpm.h"

#include "mechanisms/PipelineView.h"

#include <cassert>

using namespace dope;

DpmMechanism::DpmMechanism(DpmParams Params) : Params(Params) {
  assert(Params.Deadband >= 0.0 && "negative deadband");
}

std::optional<RegionConfig>
DpmMechanism::reconfigure(const ParDescriptor &Region,
                          const RegionSnapshot &Root,
                          const RegionConfig &Current,
                          const MechanismContext &Ctx) {
  std::optional<PipelineView> View =
      PipelineView::resolve(Region, Root, Current);
  if (!View || !View->fullyMeasured())
    return std::nullopt;

  const std::vector<StageView> &Stages = View->stages();
  const size_t N = Stages.size();
  const double SystemThroughput = View->systemThroughput();
  if (SystemThroughput <= 0.0)
    return std::nullopt;

  // Utilization of stage i: the fraction of its threads the current
  // item flow keeps busy, t * s_i / n_i.
  std::vector<double> Utilization(N, 0.0);
  std::vector<unsigned> Extents(N);
  for (size_t I = 0; I != N; ++I) {
    Extents[I] = Stages[I].Extent;
    Utilization[I] =
        SystemThroughput * Stages[I].ExecTime / Stages[I].Extent;
  }

  // Pick the busiest parallel stage as the receiver.
  size_t To = PipelineView::npos;
  for (size_t I = 0; I != N; ++I)
    if (Stages[I].IsParallel &&
        (To == PipelineView::npos || Utilization[I] > Utilization[To]))
      To = I;
  if (To == PipelineView::npos)
    return std::nullopt;

  unsigned Used = 0;
  for (unsigned E : Extents)
    Used += E;

  if (Used < Ctx.effectiveThreads()) {
    // Spare budget: grow the busiest stage while it is saturated.
    if (Utilization[To] < 1.0 - Params.Deadband)
      return std::nullopt;
    ++Extents[To];
    return View->makeConfig(Extents);
  }

  // Budget exhausted: steal from the least-utilized shrinkable stage.
  size_t From = PipelineView::npos;
  for (size_t I = 0; I != N; ++I) {
    if (!Stages[I].IsParallel || Extents[I] <= 1 || I == To)
      continue;
    if (From == PipelineView::npos ||
        Utilization[I] < Utilization[From])
      From = I;
  }
  if (From == PipelineView::npos)
    return std::nullopt;
  if (Utilization[To] - Utilization[From] <= Params.Deadband)
    return std::nullopt; // balanced: stop churning
  --Extents[From];
  ++Extents[To];
  return View->makeConfig(Extents);
}

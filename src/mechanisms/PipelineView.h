//===- mechanisms/PipelineView.h - Locating the active pipeline -*- C++ -*-==//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput mechanisms (TBF, FDP, SEDA, TPC) reason about a flat
/// pipeline of stages. Applications express that pipeline either directly
/// (the root region has several tasks) or under a driver task whose
/// TaskDescriptor carries the pipeline — and possibly a fused variant — as
/// inner alternatives. PipelineView abstracts over both shapes and maps
/// stage extents back into a full RegionConfig.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_PIPELINEVIEW_H
#define DOPE_MECHANISMS_PIPELINEVIEW_H

#include "core/Config.h"
#include "core/Mechanism.h"
#include "core/Monitor.h"
#include "core/Task.h"

#include <optional>
#include <vector>

namespace dope {

/// One stage of the active pipeline, pairing structure with metrics.
struct StageView {
  const Task *Stage = nullptr;
  bool IsParallel = false;
  /// Smoothed seconds per item (0 while unmeasured).
  double ExecTime = 0.0;
  /// Smoothed input load (queue occupancy).
  double Load = 0.0;
  double LastLoad = 0.0;
  uint64_t Invocations = 0;
  unsigned Extent = 1;

  /// Items per second this stage sustains at its current extent; infinity
  /// is represented as 0 when unmeasured.
  double capacity() const {
    return ExecTime > 0.0 ? static_cast<double>(Extent) / ExecTime : 0.0;
  }
};

/// A resolved view of the active pipeline within a region.
class PipelineView {
public:
  /// Resolves the active pipeline of \p Region given its snapshot and the
  /// running configuration. Returns std::nullopt when the region has no
  /// pipeline shape.
  static std::optional<PipelineView> resolve(const ParDescriptor &Region,
                                             const RegionSnapshot &Snap,
                                             const RegionConfig &Config);

  const std::vector<StageView> &stages() const { return Stages; }
  size_t size() const { return Stages.size(); }

  /// True when every stage has at least one measured invocation.
  bool fullyMeasured() const;

  /// Number of sequential stages.
  unsigned sequentialCount() const;

  /// Index of the stage with the lowest capacity (the throughput
  /// limiter); measured stages only. Returns npos when unmeasured.
  size_t bottleneckStage() const;

  /// System throughput estimate: the capacity of the bottleneck stage.
  double systemThroughput() const;

  /// True when the pipeline lives under a driver task that offers more
  /// than one alternative (e.g. a registered fused task).
  bool hasAlternatives() const;

  /// Number of alternatives of the driver task (0 for direct pipelines).
  size_t alternativeCount() const;

  /// The active alternative index (-1 for direct pipelines).
  int activeAlternative() const { return AltIndex; }

  /// Index of the driver alternative with the fewest tasks — the fused
  /// variant by convention. Returns the active index when no smaller
  /// alternative exists.
  int smallestAlternative() const;

  /// Builds a RegionConfig assigning \p Extents to the pipeline stages
  /// (arity must match). Sequential stages are forced to extent 1.
  RegionConfig makeConfig(const std::vector<unsigned> &Extents) const;

  /// Builds a RegionConfig that activates driver alternative \p NewAlt
  /// and distributes \p MaxThreads across its stages: one thread per
  /// sequential task, even split across parallel tasks. Only valid when
  /// hasAlternatives().
  RegionConfig makeAlternativeConfig(int NewAlt, unsigned MaxThreads) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

private:
  PipelineView() = default;

  const ParDescriptor *Root = nullptr;     // root region
  const ParDescriptor *Pipeline = nullptr; // the stage region
  const Task *Driver = nullptr;            // null for direct pipelines
  int AltIndex = -1;                       // active alternative
  unsigned DriverExtent = 1;
  std::vector<StageView> Stages;
};

} // namespace dope

#endif // DOPE_MECHANISMS_PIPELINEVIEW_H

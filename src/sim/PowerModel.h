//===- sim/PowerModel.h - Platform power model -----------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear full-system power model of the simulated platform:
///
///   P(active) = Idle + PerCore * min(active, Cores)
///
/// Defaults are calibrated against the note in Sec. 8.2.3 of the paper:
/// "90% of peak total power corresponds to 60% of peak power in the
/// dynamic CPU range (all cores idle to all cores active)". With C = 24:
/// 0.9 * (Idle + 24p) = Idle + 0.6 * 24p  =>  Idle = 72p. Choosing a
/// 600 W peak (the Sec. 4 example constraint "24 threads, 600 Watts")
/// gives PerCore = 6.25 W and Idle = 450 W.
///
/// Real power measurement is slow — the paper's AP7892 PDU supports 13
/// samples per minute — so consumers should register the model through a
/// FeatureRegistry with a matching MinSampleInterval to reproduce the
/// controller lag of Fig. 14.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_POWERMODEL_H
#define DOPE_SIM_POWERMODEL_H

namespace dope {

/// Linear idle+active-core power model.
class PowerModel {
public:
  PowerModel() = default;
  PowerModel(unsigned Cores, double IdleWatts, double PerCoreWatts);

  /// Instantaneous power with \p ActiveCores busy (clamped to the core
  /// count — oversubscribed threads do not add power).
  double watts(double ActiveCores) const;

  double idleWatts() const { return IdleWatts; }
  double peakWatts() const;
  unsigned cores() const { return Cores; }

  /// The number of active cores a power level corresponds to (inverse of
  /// watts(), clamped to [0, Cores]).
  double coresForWatts(double Watts) const;

private:
  unsigned Cores = 24;
  double IdleWatts = 450.0;
  double PerCoreWatts = 6.25;
};

} // namespace dope

#endif // DOPE_SIM_POWERMODEL_H

//===- sim/ColocationSim.h - Multi-tenant platform simulator ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Co-scheduling simulator: several DoPE-style tenants (pipeline batch
/// jobs and nested-parallel servers) share one platform's hardware
/// contexts under a pluggable division policy:
///
///  - Arbiter: the platform arbiter re-divides threads each epoch from
///    observed per-tenant telemetry (the tentpole under test).
///  - StaticSplit: a fixed partition (the "provisioned silos" baseline).
///  - Oversubscribed: every tenant spawns as if it owned the machine
///    and the OS time-slices — the paper's Pthreads-OS baseline lifted
///    to multi-tenancy.
///
/// Unlike PipelineSim/NestServerSim (event-driven, single tenant), this
/// is a fixed-step fluid simulation: each tenant is reduced to a
/// capacity curve capacity(k) derived from its app model, and real
/// per-item FIFO queues preserve genuine wait-time distributions so p95
/// response and SLO attainment are meaningful. Deterministic under a
/// seed: arrivals are the only randomness.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_COLOCATIONSIM_H
#define DOPE_SIM_COLOCATIONSIM_H

#include "arbiter/Arbiter.h"
#include "metrics/TenantStats.h"
#include "sim/FaultInjector.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "support/Trace.h"
#include "workload/Arrivals.h"

#include <cstdint>
#include <vector>

namespace dope {

enum class ColocationPolicy {
  Arbiter,
  StaticSplit,
  Oversubscribed,
};

const char *toString(ColocationPolicy Policy);

/// How one tenant deviates from the honest lease protocol. All fields
/// default off; the chaos harness (bench/ext_chaos) drives them to test
/// the arbiter's liveness and containment machinery.
struct TenantMisbehavior {
  /// The tenant process dies at this time: it stops serving and stops
  /// reporting, and never comes back. Its lease must expire by TTL.
  /// Negative disables.
  double CrashSeconds = -1.0;

  /// Heartbeat-loss window [SilentFromSeconds, SilentUntilSeconds): the
  /// tenant keeps serving but its reports never reach the arbiter (a
  /// control-plane partition). Disabled when the window is empty.
  double SilentFromSeconds = 0.0;
  double SilentUntilSeconds = 0.0;

  /// Byzantine sampler from this time on: reported throughput and
  /// offered rate are inflated by ReportedRateFactor. Negative disables.
  double ByzantineFromSeconds = -1.0;
  double ReportedRateFactor = 3.0;

  /// Byzantine clock: once byzantine, every other sample carries a
  /// rewound timestamp (non-monotone).
  bool NonMonotoneClock = false;

  /// Envelope violator: the tenant runs this many threads above its
  /// granted lease, stealing capacity from the others.
  unsigned EnvelopeViolationThreads = 0;

  bool any() const {
    return CrashSeconds >= 0.0 || SilentUntilSeconds > SilentFromSeconds ||
           ByzantineFromSeconds >= 0.0 || EnvelopeViolationThreads > 0;
  }
  bool silentAt(double T) const {
    return SilentUntilSeconds > SilentFromSeconds && T >= SilentFromSeconds &&
           T < SilentUntilSeconds;
  }
  bool byzantineAt(double T) const {
    return ByzantineFromSeconds >= 0.0 && T >= ByzantineFromSeconds;
  }
};

/// One tenant of the shared platform: an arbitration contract plus an
/// application model the simulator reduces to capacity/latency curves.
struct ColocationTenantSpec {
  TenantSpec Tenant;

  /// Protocol deviations for chaos runs (defaults: honest tenant).
  TenantMisbehavior Misbehavior;

  enum class AppKind { Pipeline, NestServer };
  AppKind Kind = AppKind::Pipeline;

  /// Kind == Pipeline: capacity(k) via greedy stage replication.
  PipelineAppModel Pipeline;

  /// Kind == NestServer: capacity(k) via the best inner extent.
  NestAppModel Nest;

  /// Base offered load, items/second.
  double ArrivalRate = 1.0;

  /// Load-factor schedule modulating ArrivalRate (empty = constant).
  LoadTrace ArrivalSchedule;

  /// Arrivals finding this many queued items are shed; 0 disables.
  size_t AdmissionLimit = 0;
};

/// Arbiter kill/restart schedule for chaos runs.
struct ArbiterOutage {
  /// The arbiter process dies at this epoch boundary (negative: never).
  /// Leases freeze while it is down; tenants keep serving what they
  /// hold and their reports are journaled by the host but land nowhere.
  double KillSeconds = -1.0;

  /// The arbiter restarts at this epoch boundary (negative: never).
  double RestartSeconds = -1.0;

  enum class RestartMode {
    /// Fresh arbiter; live tenants re-register and re-learn from
    /// scratch (the slow path warm restarts are measured against).
    Cold,
    /// Restore from the JSON snapshot taken at kill time.
    Snapshot,
    /// Re-register live tenants, then reconstruct utility curves and
    /// actual holdings from the host's protocol journal (Arbiter::
    /// warmStart over recorded Heartbeat/lease records).
    WarmTrace,
  };
  RestartMode Mode = RestartMode::Snapshot;

  bool enabled() const { return KillSeconds >= 0.0; }
};

struct ColocationSimOptions {
  unsigned Contexts = 24;
  uint64_t Seed = 42;
  double DurationSeconds = 300.0;

  /// Simulation shards: tenants are partitioned round-robin across this
  /// many shards, each advanced by its own worker thread between
  /// conservative epoch barriers (lookahead = one arbiter epoch; see
  /// sim/ShardedSim.h and DESIGN.md §14). Results are bit-identical for
  /// every value — the per-tenant RNG streams, the coordinator's serial
  /// decision order, and the mailbox protocol are all independent of the
  /// partition — so > 1 buys wall-clock parallelism only. 1 (default)
  /// runs inline on the calling thread with no synchronization.
  unsigned Shards = 1;

  /// Worker threads driving the shards (ShardedSimOptions::Threads):
  /// 0 = auto-size to the host, so wide shard sweeps stay fast on
  /// few-core machines. Results are independent of this value.
  unsigned ShardThreads = 0;

  /// Fluid-step quantum.
  double StepSeconds = 0.05;

  /// Statistics ignore completions before this time.
  double WarmupSeconds = 0.0;

  ColocationPolicy Policy = ColocationPolicy::Arbiter;

  /// Arbiter policy configuration (Trace is wired by the sim;
  /// TotalThreads is overridden with Contexts).
  ArbiterOptions Arbiter;

  /// Capacity lost by a tenant while it quiesces into a changed lease.
  double ReconfigPauseSeconds = 0.1;

  /// StaticSplit: per-tenant thread shares; empty = equal split.
  std::vector<unsigned> StaticShares;

  /// Oversubscribed: contention penalty per unit of oversubscription.
  double OversubPenalty = 0.15;

  /// Optional trace sink (lease decisions, per-epoch counters). The sim
  /// stamps records with virtual time.
  Tracer *TraceSink = nullptr;

  /// Arbiter kill/restart schedule (chaos runs; disabled by default).
  ArbiterOutage Outage;

  /// Optional fault injector consulted once per tenant-epoch for
  /// heartbeat loss (FaultPlan::HeartbeatDropProbability). The caller
  /// keeps ownership; null disables.
  FaultInjector *Faults = nullptr;
};

/// The arbiter-side allocation at one epoch boundary, in tenant spec
/// order — what recovery metrics diff against an uninterrupted run.
struct AllocationSample {
  double Time = 0.0;
  std::vector<unsigned> Granted;
};

struct ColocationSimResult {
  std::vector<TenantStats> Tenants;
  FairnessSummary Fairness;
  uint64_t LeaseChanges = 0;
  double DurationSeconds = 0.0;

  /// Work-proportional simulated-event count: one per tenant-step
  /// update plus one per arrival and per completion. Invariant across
  /// shard counts (the differential tests assert it), so events/s =
  /// SimulatedEvents / wall time is the shard-scaling metric
  /// bench/ext_scale and the perf suite report.
  uint64_t SimulatedEvents = 0;

  /// Per-epoch granted threads (Arbiter policy only).
  std::vector<AllocationSample> AllocationTimeline;

  /// The host's durable protocol log: every heartbeat a tenant sent
  /// (even while the arbiter was down) and every lease change applied,
  /// as trace records. This is the journal a WarmTrace restart replays,
  /// and what ChaosInvariants checks.
  std::vector<TraceRecord> ProtocolJournal;
};

class ColocationSim {
public:
  ColocationSim(std::vector<ColocationTenantSpec> Tenants,
                ColocationSimOptions Options);

  ColocationSimResult run();

  /// Sustainable completions/second of \p Spec's app given \p Threads —
  /// exposed for tests and for sizing scenarios.
  static double capacity(const ColocationTenantSpec &Spec, unsigned Threads);

  /// Intrinsic (no-queueing) per-item latency at \p Threads.
  static double serviceLatency(const ColocationTenantSpec &Spec,
                               unsigned Threads);

private:
  std::vector<ColocationTenantSpec> Specs;
  ColocationSimOptions Opts;
};

} // namespace dope

#endif // DOPE_SIM_COLOCATIONSIM_H

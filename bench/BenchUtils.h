//===- bench/BenchUtils.h - Shared benchmark harness helpers ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conventions shared by the experiment harnesses in bench/: every binary
/// regenerates one table or figure of the paper, prints an aligned text
/// table (or CSV with --csv) plus a short "shape check" summarizing
/// whether the qualitative result of the paper holds in this run.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_BENCH_BENCHUTILS_H
#define DOPE_BENCH_BENCHUTILS_H

#include "support/OptionParser.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

namespace dope {
namespace bench {

/// Standard options every experiment harness accepts.
inline void addCommonOptions(OptionParser &Options) {
  Options.addFlag("csv", "emit CSV instead of an aligned table");
  Options.addInt("seed", 42, "random seed for workloads and service jitter");
  Options.addInt("contexts", 24,
                 "hardware contexts of the simulated platform");
  Options.addFlag("quick", "smaller workloads for smoke runs");
}

/// Parses argv; on --help or error prints and exits.
inline void parseOrExit(OptionParser &Options, int Argc,
                        const char *const *Argv) {
  if (!Options.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n%s", Options.error().c_str(),
                 Options.helpText().c_str());
    std::exit(1);
  }
  if (Options.helpRequested()) {
    std::printf("%s", Options.helpText().c_str());
    std::exit(0);
  }
}

/// Prints a titled table in the selected format.
inline void emitTable(const std::string &Title, const Table &T, bool Csv) {
  if (Csv) {
    std::printf("# %s\n%s\n", Title.c_str(), T.renderCsv().c_str());
    return;
  }
  std::printf("== %s ==\n%s\n", Title.c_str(), T.renderText().c_str());
}

/// Prints one qualitative check line: these are the "shape" criteria the
/// reproduction is judged by (who wins, where crossovers fall).
inline bool checkShape(bool Holds, const std::string &Description) {
  std::printf("[shape %s] %s\n", Holds ? "OK  " : "MISS", Description.c_str());
  return Holds;
}

} // namespace bench
} // namespace dope

#endif // DOPE_BENCH_BENCHUTILS_H


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/ResponseStats.cpp" "src/metrics/CMakeFiles/dope_metrics.dir/ResponseStats.cpp.o" "gcc" "src/metrics/CMakeFiles/dope_metrics.dir/ResponseStats.cpp.o.d"
  "/root/repo/src/metrics/TimeSeries.cpp" "src/metrics/CMakeFiles/dope_metrics.dir/TimeSeries.cpp.o" "gcc" "src/metrics/CMakeFiles/dope_metrics.dir/TimeSeries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

//===- sim/ShardedPipeline.h - Pipeline replica fleet ----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fleet of independent PipelineSim replicas spread across the
/// conservative sharded engine: shard i owns replica i, the offered
/// load (open-loop arrival rate or batch item count) is split across
/// the fleet, and each replica runs to completion inside a single
/// engine epoch — replicas never interact, so the lookahead window is
/// the whole run and one barrier suffices.
///
/// This is the embarrassingly-parallel end of the sharding spectrum
/// (the colocation simulator is the coupled end): it scales the
/// paper's single-app pipeline experiments to fleet-sized request
/// volumes while keeping per-replica results bit-identical to a plain
/// PipelineSim run with the same derived seed. A fleet of one is
/// byte-for-byte the underlying simulator.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_SHARDEDPIPELINE_H
#define DOPE_SIM_SHARDEDPIPELINE_H

#include "core/Mechanism.h"
#include "sim/PipelineSim.h"

#include <functional>
#include <memory>
#include <vector>

namespace dope {

struct PipelineFleetOptions {
  /// Replica count; one engine shard (and, above 1, one worker thread)
  /// per replica.
  unsigned Shards = 1;

  /// The application every replica runs.
  PipelineAppModel App;

  /// Per-replica simulation options, before fleet adjustments: replica
  /// s runs with Seed + 0x9e37 * s (replica 0 keeps the base seed, so a
  /// fleet of one reproduces a plain PipelineSim run exactly), an equal
  /// split of ArrivalRate (open loop) or NumItems (batch), and — above
  /// one shard — no trace sink (PipelineSim retargets the tracer clock,
  /// which cannot be shared across concurrent replicas).
  PipelineSimOptions Base;

  /// Builds replica s's mechanism; null runs every replica static
  /// (Mechanism* == nullptr). The mechanism is constructed and consumed
  /// on the owning shard's worker thread.
  std::function<std::unique_ptr<Mechanism>(unsigned Replica)> MakeMechanism;

  /// Starting per-stage extents handed to every replica (empty = ones).
  std::vector<unsigned> InitialExtents;
};

struct PipelineFleetResult {
  /// Per-replica results, in shard order.
  std::vector<PipelineSimResult> Replicas;

  /// Fleet aggregates: total completions, summed throughput, and the
  /// worst replica's p95 response (the fleet-level tail).
  uint64_t ItemsCompleted = 0;
  double Throughput = 0.0;
  double P95ResponseSeconds = 0.0;
};

/// Runs the fleet; deterministic per (Base.Seed, Shards) regardless of
/// worker interleaving. Throws std::invalid_argument on zero shards.
PipelineFleetResult runPipelineFleet(const PipelineFleetOptions &Opts);

} // namespace dope

#endif // DOPE_SIM_SHARDEDPIPELINE_H

//===- tests/ConfigTest.cpp - Configuration tree tests ----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Config.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

TEST(Types, ToStringRoundTrip) {
  EXPECT_EQ(toString(TaskStatus::Executing), "EXECUTING");
  EXPECT_EQ(toString(TaskStatus::Suspended), "SUSPENDED");
  EXPECT_EQ(toString(TaskStatus::Finished), "FINISHED");
  EXPECT_EQ(toString(TaskKind::Sequential), "SEQ");
  EXPECT_EQ(toString(TaskKind::Parallel), "PAR");
  EXPECT_EQ(toString(ParKind::DoAll), "DOALL");
  EXPECT_EQ(toString(ParKind::Pipe), "PIPE");
  EXPECT_EQ(toString(Dop{8, ParKind::Pipe}), "(8, PIPE)");
}

TEST(TaskGraph, BuildsServerNest) {
  ServerNestGraph G = makeServerNestGraph();
  EXPECT_EQ(G.Root->size(), 1u);
  EXPECT_EQ(G.Root->masterTask(), G.Outer);
  EXPECT_TRUE(G.Outer->hasInner());
  EXPECT_EQ(G.Outer->descriptor()->alternativeCount(), 1u);
  EXPECT_EQ(G.Outer->descriptor()->alternative(0)->masterTask(),
            G.InnerWork);
  EXPECT_EQ(G.Graph->taskCount(), 2u);
  EXPECT_EQ(G.Graph->taskById(G.Outer->id()), G.Outer);
}

TEST(TaskGraph, ParKindClassification) {
  PipelineGraph G = makePipelineGraph(
      {{"a", false}, {"b", true}, {"c", false}});
  const ParDescriptor *Pipe = G.Driver->descriptor()->alternative(0);
  EXPECT_EQ(Pipe->parKind(), ParKind::Pipe);

  ServerNestGraph S = makeServerNestGraph();
  EXPECT_EQ(S.Outer->descriptor()->alternative(0)->parKind(),
            ParKind::DoAll);
}

TEST(Config, DefaultConfigAllOnes) {
  ServerNestGraph G = makeServerNestGraph();
  const RegionConfig Config = defaultConfig(*G.Root);
  ASSERT_EQ(Config.Tasks.size(), 1u);
  EXPECT_EQ(Config.Tasks[0].Extent, 1u);
  EXPECT_EQ(Config.Tasks[0].AltIndex, 0);
  ASSERT_EQ(Config.Tasks[0].Inner.size(), 1u);
  EXPECT_EQ(Config.Tasks[0].Inner[0].Extent, 1u);
}

TEST(Config, ValidateAcceptsDefault) {
  ServerNestGraph G = makeServerNestGraph();
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, defaultConfig(*G.Root), &Error))
      << Error;
}

TEST(Config, ValidateRejectsZeroExtent) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].Extent = 0;
  std::string Error;
  EXPECT_FALSE(validateConfig(*G.Root, Config, &Error));
  EXPECT_NE(Error.find("extent"), std::string::npos);
}

TEST(Config, ValidateRejectsParallelSequentialTask) {
  PipelineGraph G = makePipelineGraph({{"seq", false}, {"par", true}});
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].Inner[0].Extent = 2; // the sequential stage
  std::string Error;
  EXPECT_FALSE(validateConfig(*G.Root, Config, &Error));
  EXPECT_NE(Error.find("sequential"), std::string::npos);
}

TEST(Config, ValidateRejectsBadAlternative) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].AltIndex = 3;
  EXPECT_FALSE(validateConfig(*G.Root, Config));
}

TEST(Config, ValidateRejectsArityMismatch) {
  PipelineGraph G = makePipelineGraph({{"a", true}, {"b", true}});
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].Inner.pop_back();
  EXPECT_FALSE(validateConfig(*G.Root, Config));
}

TEST(Config, ValidateRejectsInnerWithoutAlternative) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].AltIndex = -1; // keep Inner populated — inconsistent
  EXPECT_FALSE(validateConfig(*G.Root, Config));
}

TEST(Config, TotalThreadsCountsNestCorrectly) {
  ServerNestGraph G = makeServerNestGraph();
  // <(3, DOALL), (8, DOALL)>: 3 outer replicas, each hosting the inner
  // master plus 7 extra inner threads: 3 * 8 = 24.
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].Extent = 3;
  Config.Tasks[0].Inner[0].Extent = 8;
  EXPECT_EQ(totalThreads(*G.Root, Config), 24u);
}

TEST(Config, TotalThreadsWithoutInner) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Config;
  TaskConfig TC;
  TC.Extent = 24;
  Config.Tasks.push_back(TC);
  EXPECT_EQ(totalThreads(*G.Root, Config), 24u);
}

TEST(Config, TotalThreadsPipeline) {
  PipelineGraph G = makePipelineGraph(
      {{"load", false}, {"work", true}, {"out", false}});
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].Inner[1].Extent = 6;
  // Driver replica hosts the pipeline master (load); work 6 + out 1 add.
  EXPECT_EQ(totalThreads(*G.Root, Config), 8u);
}

TEST(Config, ToStringNestNotation) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Config = defaultConfig(*G.Root);
  Config.Tasks[0].Extent = 3;
  Config.Tasks[0].Inner[0].Extent = 8;
  const std::string Str = toString(*G.Root, Config);
  EXPECT_NE(Str.find("(3, DOALL"), std::string::npos);
  EXPECT_NE(Str.find("(8, PAR)"), std::string::npos);
}

TEST(Config, EqualityIsStructural) {
  ServerNestGraph G = makeServerNestGraph();
  const RegionConfig A = defaultConfig(*G.Root);
  RegionConfig B = defaultConfig(*G.Root);
  EXPECT_TRUE(A == B);
  B.Tasks[0].Inner[0].Extent = 2;
  EXPECT_FALSE(A == B);
}

} // namespace

//===- tests/TestHelpers.h - Shared test fixtures --------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders shared by the unit tests: canonical task graphs (server nest,
/// driver-wrapped pipeline) with dummy functors, and snapshot fabricators
/// so mechanism tests can exercise decision logic without a run-time.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TESTS_TESTHELPERS_H
#define DOPE_TESTS_TESTHELPERS_H

#include "core/Config.h"
#include "core/Monitor.h"
#include "core/Task.h"
#include "support/Random.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dope {
namespace testing_helpers {

/// Seed for a randomized test. The DOPE_TEST_SEED environment variable
/// overrides \p Default, and the chosen seed is always printed, so a
/// failure seen anywhere reproduces exactly with
/// DOPE_TEST_SEED=<seed> ctest -R <test>. (The implementation lives in
/// support/Random.h so non-test harnesses can use the same convention.)
inline uint64_t loggedSeed(uint64_t Default) {
  return loggedTestSeed(Default);
}

inline TaskFn dummyFn() {
  return [](TaskRuntime &) { return TaskStatus::Finished; };
}

/// A server nest: root{ outer(PAR, alt0 = { work(PAR) }) }.
struct ServerNestGraph {
  std::unique_ptr<TaskGraph> Graph;
  ParDescriptor *Root = nullptr;
  Task *Outer = nullptr;
  Task *InnerWork = nullptr;
};

inline ServerNestGraph makeServerNestGraph() {
  ServerNestGraph G;
  G.Graph = std::make_unique<TaskGraph>();
  G.InnerWork = G.Graph->createTask("work", dummyFn(), LoadFn(),
                                    G.Graph->parDescriptor());
  ParDescriptor *Inner = G.Graph->createRegion({G.InnerWork});
  G.Outer = G.Graph->createTask(
      "outer", dummyFn(), LoadFn(),
      G.Graph->createDescriptor(TaskKind::Parallel, {Inner}));
  G.Root = G.Graph->createRegion({G.Outer});
  return G;
}

/// A driver-wrapped pipeline: root{ driver(SEQ, alt0 = stages,
/// alt1 = fused stages when FusedSpecs nonempty) }.
struct PipelineGraph {
  std::unique_ptr<TaskGraph> Graph;
  ParDescriptor *Root = nullptr;
  Task *Driver = nullptr;
  std::vector<Task *> Stages;
  std::vector<Task *> FusedStages;
};

struct StageSpec {
  std::string Name;
  bool Parallel = true;
};

inline PipelineGraph
makePipelineGraph(const std::vector<StageSpec> &Specs,
                  const std::vector<StageSpec> &FusedSpecs = {}) {
  PipelineGraph G;
  G.Graph = std::make_unique<TaskGraph>();
  auto MakeRegion = [&](const std::vector<StageSpec> &S,
                        std::vector<Task *> &Out) {
    for (const StageSpec &Spec : S)
      Out.push_back(G.Graph->createTask(Spec.Name, dummyFn(), LoadFn(),
                                        Spec.Parallel
                                            ? G.Graph->parDescriptor()
                                            : G.Graph->seqDescriptor()));
    return G.Graph->createRegion(Out);
  };
  std::vector<ParDescriptor *> Alts;
  Alts.push_back(MakeRegion(Specs, G.Stages));
  if (!FusedSpecs.empty())
    Alts.push_back(MakeRegion(FusedSpecs, G.FusedStages));
  G.Driver = G.Graph->createTask(
      "driver", dummyFn(), LoadFn(),
      G.Graph->createDescriptor(TaskKind::Sequential, Alts));
  G.Root = G.Graph->createRegion({G.Driver});
  return G;
}

/// Builds a snapshot for a driver-wrapped pipeline with the given
/// per-stage (ExecTime, Load) metrics on the active alternative.
struct StageMetricsSpec {
  double ExecTime = 0.1;
  double Load = 0.0;
  uint64_t Invocations = 10;
};

inline RegionSnapshot
makePipelineSnapshot(const PipelineGraph &G, const RegionConfig &Config,
                     const std::vector<StageMetricsSpec> &Metrics) {
  RegionSnapshot Snap;
  TaskSnapshot DriverTs;
  DriverTs.TaskId = G.Driver->id();
  DriverTs.Name = G.Driver->name();
  DriverTs.Kind = TaskKind::Sequential;
  DriverTs.CurrentExtent = 1;
  const TaskConfig &DriverConfig = Config.Tasks.front();
  DriverTs.ActiveAlt = DriverConfig.AltIndex;

  const size_t AltCount = G.Driver->descriptor()->alternativeCount();
  for (size_t A = 0; A != AltCount; ++A) {
    RegionSnapshot AltSnap;
    const ParDescriptor *Alt = G.Driver->descriptor()->alternative(A);
    for (size_t S = 0; S != Alt->size(); ++S) {
      TaskSnapshot TS;
      const Task *T = Alt->tasks()[S];
      TS.TaskId = T->id();
      TS.Name = T->name();
      TS.Kind = T->kind();
      if (static_cast<int>(A) == DriverConfig.AltIndex &&
          S < Metrics.size()) {
        TS.ExecTime = Metrics[S].ExecTime;
        TS.Load = Metrics[S].Load;
        TS.LastLoad = Metrics[S].Load;
        TS.Invocations = Metrics[S].Invocations;
        TS.CurrentExtent = DriverConfig.Inner[S].Extent;
        if (TS.ExecTime > 0.0)
          TS.Throughput = TS.CurrentExtent / TS.ExecTime;
      }
      AltSnap.Tasks.push_back(std::move(TS));
    }
    DriverTs.InnerAlternatives.push_back(std::move(AltSnap));
  }
  Snap.Tasks.push_back(std::move(DriverTs));
  return Snap;
}

/// Builds a snapshot for a server nest with the given queue occupancy.
inline RegionSnapshot makeServerSnapshot(const ServerNestGraph &G,
                                         double QueueOccupancy,
                                         unsigned OuterExtent = 24,
                                         unsigned InnerExtent = 1) {
  RegionSnapshot Snap;
  TaskSnapshot Outer;
  Outer.TaskId = G.Outer->id();
  Outer.Name = G.Outer->name();
  Outer.Kind = TaskKind::Parallel;
  Outer.ExecTime = 1.0;
  Outer.Load = QueueOccupancy;
  Outer.LastLoad = QueueOccupancy;
  Outer.Invocations = 100;
  Outer.CurrentExtent = OuterExtent;
  Outer.ActiveAlt = InnerExtent > 1 ? 0 : -1;

  RegionSnapshot InnerSnap;
  TaskSnapshot Work;
  Work.TaskId = G.InnerWork->id();
  Work.Name = G.InnerWork->name();
  Work.Kind = TaskKind::Parallel;
  Work.CurrentExtent = InnerExtent;
  InnerSnap.Tasks.push_back(std::move(Work));
  Outer.InnerAlternatives.push_back(std::move(InnerSnap));
  Snap.Tasks.push_back(std::move(Outer));
  return Snap;
}

} // namespace testing_helpers
} // namespace dope

#endif // DOPE_TESTS_TESTHELPERS_H

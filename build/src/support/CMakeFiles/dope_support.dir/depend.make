# Empty dependencies file for dope_support.
# This may be replaced when dependencies are built.

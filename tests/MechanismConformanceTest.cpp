//===- tests/MechanismConformanceTest.cpp - Golden-trace conformance -------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden-trace conformance suite: every mechanism replays its
/// committed feature stream (tests/golden/<stream>.stream.jsonl) and the
/// resulting decision sequence must match the committed golden sequence
/// (tests/golden/<mechanism>.decisions.jsonl) exactly. A mismatch fails
/// with a report naming the first divergent decision.
///
/// These tests freeze the *decision behaviour* of the seven mechanisms:
/// an intentional change regenerates the goldens via the `trace-regen`
/// target (`dope_trace regen --dir tests/golden`) and the decision diff
/// is reviewed like any other code change; an accidental change is caught
/// here before it silently shifts every downstream experiment.
///
//===----------------------------------------------------------------------===//

#include "core/Replay.h"
#include "mechanisms/Factory.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace dope;

#ifndef DOPE_GOLDEN_DIR
#error "DOPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

FeatureStream loadStream(const std::string &Name) {
  const std::string Path =
      std::string(DOPE_GOLDEN_DIR) + "/" + Name + ".stream.jsonl";
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "missing golden stream: " << Path
                         << " (run the trace-regen target)";
  std::string Error;
  std::optional<FeatureStream> Stream = readFeatureStream(IS, &Error);
  EXPECT_TRUE(Stream.has_value()) << Path << ": " << Error;
  return Stream ? std::move(*Stream) : FeatureStream{};
}

std::vector<ReplayDecision> loadGoldenDecisions(const std::string &Name) {
  const std::string Path =
      std::string(DOPE_GOLDEN_DIR) + "/" + Name + ".decisions.jsonl";
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "missing golden decisions: " << Path
                         << " (run the trace-regen target)";
  std::string Error;
  std::optional<std::vector<ReplayDecision>> Decisions =
      readDecisions(IS, &Error);
  EXPECT_TRUE(Decisions.has_value()) << Path << ": " << Error;
  return Decisions ? std::move(*Decisions) : std::vector<ReplayDecision>{};
}

class MechanismConformance
    : public ::testing::TestWithParam<ConformanceCase> {};

} // namespace

TEST_P(MechanismConformance, ReplayMatchesGolden) {
  const ConformanceCase &Case = GetParam();
  FeatureStream Stream = loadStream(Case.StreamName);
  ASSERT_FALSE(Stream.Steps.empty());
  const std::vector<ReplayDecision> Golden =
      loadGoldenDecisions(Case.decisionsFile());

  std::unique_ptr<Mechanism> Mech = createMechanismByName(Case.MechanismName);
  ASSERT_NE(Mech, nullptr);

  ReplayMechanismHarness Harness(std::move(Stream));
  const ReplayResult Result = Harness.run(*Mech);
  EXPECT_EQ(Result.InvalidProposals, 0u)
      << Case.MechanismName << " proposed structurally invalid configs";

  // Budget discipline: no accepted decision may exceed the thread
  // envelope in force when it was made (the harness does not clamp —
  // this is the mechanisms' own responsibility, and what makes lease
  // revocation safe to apply through them).
  for (const ReplayDecision &D : Result.Decisions)
    EXPECT_LE(D.TotalThreads, D.Budget)
        << Case.MechanismName << " overran its envelope at step " << D.Step;

  if (std::optional<std::string> Report =
          diffDecisions(Golden, Result.Decisions))
    FAIL() << Case.MechanismName << " on " << Case.StreamName << ":\n"
           << *Report
           << "\n(intentional change? regenerate with the trace-regen "
              "target and review the diff)";

  // The golden suite only means something if the stream actually drives
  // the mechanism through decisions.
  EXPECT_FALSE(Golden.empty())
      << Case.StreamName << " never made " << Case.MechanismName
      << " change configuration";
}

TEST_P(MechanismConformance, ReplayIsDeterministic) {
  const ConformanceCase &Case = GetParam();
  FeatureStream Stream = loadStream(Case.StreamName);
  ASSERT_FALSE(Stream.Steps.empty());

  // Two independent harnesses and mechanism instances: identical decision
  // sequences, byte-identical serialization.
  auto RunOnce = [&] {
    std::unique_ptr<Mechanism> Mech =
        createMechanismByName(Case.MechanismName);
    ReplayMechanismHarness Harness(Stream);
    return Harness.run(*Mech);
  };
  const ReplayResult First = RunOnce();
  const ReplayResult Second = RunOnce();
  EXPECT_FALSE(diffDecisions(First.Decisions, Second.Decisions).has_value());

  std::ostringstream A, B;
  writeDecisions(First.Decisions, A);
  writeDecisions(Second.Decisions, B);
  EXPECT_EQ(A.str(), B.str());
}

TEST_P(MechanismConformance, TracedReplayRecordsEveryConsult) {
  const ConformanceCase &Case = GetParam();
  FeatureStream Stream = loadStream(Case.StreamName);
  ASSERT_FALSE(Stream.Steps.empty());
  const size_t Steps = Stream.Steps.size();

  std::unique_ptr<Mechanism> Mech = createMechanismByName(Case.MechanismName);
  Tracer Trace(1 << 14);
  ReplayMechanismHarness Harness(std::move(Stream));
  const ReplayResult Result = Harness.run(*Mech, &Trace);

  size_t DecisionRecords = 0, AcceptedRecords = 0;
  for (const TraceRecord &R : Trace.drain()) {
    if (R.Kind != TraceKind::Decision)
      continue;
    ++DecisionRecords;
    AcceptedRecords += R.B == 1.0;
    EXPECT_EQ(R.Name, Mech->name());
  }
  // One Decision record per stream step (every consult), of which exactly
  // the accepted changes carry B = 1.
  EXPECT_EQ(DecisionRecords, Steps);
  EXPECT_EQ(AcceptedRecords, Result.Decisions.size());
}

static std::string caseName(
    const ::testing::TestParamInfo<ConformanceCase> &Info) {
  std::string Name = Info.param.decisionsFile();
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Golden, MechanismConformance,
                         ::testing::ValuesIn(conformanceCases()),
                         caseName);

//===- apps/AppRegistry.cpp - Table 4 application inventory ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"

using namespace dope;

const std::vector<AppInfo> &dope::appRegistry() {
  // Values transcribed from Table 4 of the paper.
  static const std::vector<AppInfo> Registry = {
      {"x264", "Transcoding of yuv4mpeg videos", 72, 10, 8, 0, 39617, 2, 2},
      {"swaptions", "Option pricing via Monte Carlo simulations", 85, 11, 8,
       0, 1428, 2, 2},
      {"bzip", "Data compression of SPEC ref input", 63, 10, 8, 0, 4652, 2,
       4},
      {"gimp", "Image editing using oilify plugin", 35, 12, 4, 0, 1989, 2,
       2},
      {"ferret", "Image search engine", 97, 15, 22, 59, 14781, 1, 0},
      {"dedup", "Deduplication of PARSEC native input", 124, 10, 16, 113,
       7546, 1, 0},
  };
  return Registry;
}

const AppInfo *dope::findApp(const std::string &Name) {
  for (const AppInfo &Info : appRegistry())
    if (Info.Name == Name)
      return &Info;
  return nullptr;
}

//===- mechanisms/Seda.h - Staged Event-Driven Architecture ----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SEDA controller [Welsh et al., SOSP 2001] as a DoPE throughput
/// mechanism (paper Sec. 7.2): each stage resizes its thread pool
/// *locally*, growing when its input queue is backed up and shrinking
/// when idle — a DoP extent "proportional to load on a task". Crucially
/// (and this is the paper's criticism), stages do not coordinate their
/// allocations globally, so the sum of extents can exceed the hardware
/// thread count; the oversubscription cost shows up in the Table 15
/// reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_SEDA_H
#define DOPE_MECHANISMS_SEDA_H

#include "core/Mechanism.h"

namespace dope {

/// Tuning parameters of the SEDA per-stage controller.
struct SedaParams {
  /// Queue occupancy above which a stage adds a thread.
  double HighWatermark = 8.0;
  /// Queue occupancy below which a stage removes a thread.
  double LowWatermark = 1.0;
  /// Per-stage thread cap; 0 means "the machine's thread count" (no
  /// global coordination — each stage may individually reach the cap).
  unsigned PerStageCap = 0;
  /// When true the total allocation is clamped to the machine budget, a
  /// "coordinated SEDA" variant used by the ablation bench. The faithful
  /// SEDA controller leaves this off.
  bool ClampTotal = false;
};

/// SEDA per-stage thread-pool controller.
class SedaMechanism : public Mechanism {
public:
  explicit SedaMechanism(SedaParams Params = SedaParams());

  std::string name() const override { return "SEDA"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

private:
  SedaParams Params;
};

} // namespace dope

#endif // DOPE_MECHANISMS_SEDA_H

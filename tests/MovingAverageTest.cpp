//===- tests/MovingAverageTest.cpp - Smoothing filter tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MovingAverage.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TEST(Ema, FirstSampleInitializesDirectly) {
  Ema E(0.1);
  E.addSample(10.0);
  EXPECT_DOUBLE_EQ(E.value(), 10.0);
  EXPECT_EQ(E.sampleCount(), 1u);
}

TEST(Ema, EmptyIsZero) {
  Ema E;
  EXPECT_TRUE(E.empty());
  EXPECT_DOUBLE_EQ(E.value(), 0.0);
}

TEST(Ema, ConvergesToConstant) {
  Ema E(0.25);
  E.addSample(0.0);
  for (int I = 0; I != 100; ++I)
    E.addSample(8.0);
  EXPECT_NEAR(E.value(), 8.0, 1e-6);
}

TEST(Ema, StepResponse) {
  Ema E(0.5);
  E.addSample(0.0);
  E.addSample(10.0); // 0 + 0.5 * 10 = 5
  EXPECT_DOUBLE_EQ(E.value(), 5.0);
  E.addSample(10.0); // 5 + 0.5 * 5 = 7.5
  EXPECT_DOUBLE_EQ(E.value(), 7.5);
}

TEST(Ema, AlphaOneTracksExactly) {
  Ema E(1.0);
  E.addSample(3.0);
  E.addSample(-7.0);
  EXPECT_DOUBLE_EQ(E.value(), -7.0);
}

TEST(Ema, ResetClearsState) {
  Ema E(0.3);
  E.addSample(4.0);
  E.reset();
  EXPECT_TRUE(E.empty());
  E.addSample(2.0);
  EXPECT_DOUBLE_EQ(E.value(), 2.0);
}

TEST(WindowedAverage, MeanOfWindow) {
  WindowedAverage W(3);
  W.addSample(1.0);
  W.addSample(2.0);
  W.addSample(3.0);
  EXPECT_DOUBLE_EQ(W.value(), 2.0);
  EXPECT_TRUE(W.full());
}

TEST(WindowedAverage, OldSamplesEvicted) {
  WindowedAverage W(2);
  W.addSample(100.0);
  W.addSample(1.0);
  W.addSample(3.0);
  EXPECT_DOUBLE_EQ(W.value(), 2.0);
  EXPECT_EQ(W.sampleCount(), 2u);
}

TEST(WindowedAverage, PartialWindow) {
  WindowedAverage W(10);
  W.addSample(4.0);
  EXPECT_DOUBLE_EQ(W.value(), 4.0);
  EXPECT_FALSE(W.full());
}

TEST(WindowedAverage, EmptyIsZero) {
  WindowedAverage W(4);
  EXPECT_TRUE(W.empty());
  EXPECT_DOUBLE_EQ(W.value(), 0.0);
}

TEST(WindowedAverage, ResetClears) {
  WindowedAverage W(2);
  W.addSample(1.0);
  W.reset();
  EXPECT_TRUE(W.empty());
}

} // namespace

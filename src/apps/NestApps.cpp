//===- apps/NestApps.cpp - Two-level nest application models ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/NestApps.h"

using namespace dope;

NestAppBundle dope::makeX264App() {
  NestAppBundle Bundle;
  Bundle.Model.Name = "x264";
  // Transcoding one video sequentially takes ~48 s on the model platform.
  Bundle.Model.SeqServiceSeconds = 48.0;
  // Calibration: raw S(8) = 8 / (1 + 7 * 0.033) = 6.5, capped at 6.3 so
  // the maximum observed speedup is 6.3x and the best extent is 8
  // (Sec. 2: "Texec is improved up to a maximum of 6.3x ... when 8
  // threads are used to transcode each video").
  Bundle.Model.Curve = SpeedupCurve(/*Alpha=*/0.033, /*FixedCost=*/0.0,
                                    /*Cap=*/6.3);
  Bundle.Model.ServiceCv = 0.18;
  Bundle.MMax = 8;
  Bundle.WqtH = {/*QueueThreshold=*/4.0, /*NOff=*/3, /*NOn=*/3,
                 /*MMax=*/8, /*AltIndex=*/0};
  Bundle.WqLinear = {/*MMin=*/1, /*MMax=*/8, /*QMax=*/20.0,
                     /*HysteresisBand=*/0, /*AltIndex=*/0};
  return Bundle;
}

NestAppBundle dope::makeSwaptionsApp() {
  NestAppBundle Bundle;
  Bundle.Model.Name = "swaptions";
  Bundle.Model.SeqServiceSeconds = 6.0;
  // Monte Carlo DOALL: near-linear, DoPmin = 2 (Table 4).
  Bundle.Model.Curve = SpeedupCurve(/*Alpha=*/0.02, /*FixedCost=*/0.0,
                                    /*Cap=*/18.0);
  Bundle.Model.ServiceCv = 0.1;
  Bundle.MMax = 8;
  Bundle.WqtH = {/*QueueThreshold=*/4.0, /*NOff=*/3, /*NOn=*/3,
                 /*MMax=*/8, /*AltIndex=*/0};
  Bundle.WqLinear = {/*MMin=*/1, /*MMax=*/8, /*QMax=*/20.0,
                     /*HysteresisBand=*/0, /*AltIndex=*/0};
  return Bundle;
}

NestAppBundle dope::makeBzipApp() {
  NestAppBundle Bundle;
  Bundle.Model.Name = "bzip";
  Bundle.Model.SeqServiceSeconds = 15.0;
  // Heavy one-time parallelization cost: S(2) = 0.74, S(3) = 1.0,
  // S(4) = 1.21 — no speedup below extent 4 (Table 4, DoPmin = 4), which
  // leaves WQ-Linear with unhelpful intermediate configurations like
  // <(8, DOALL), (3, PIPE)> (Sec. 8.2.1).
  Bundle.Model.Curve = SpeedupCurve(/*Alpha=*/0.3, /*FixedCost=*/1.4,
                                    /*Cap=*/8.0);
  Bundle.Model.ServiceCv = 0.12;
  Bundle.MMax = 8;
  Bundle.WqtH = {/*QueueThreshold=*/4.0, /*NOff=*/3, /*NOn=*/3,
                 /*MMax=*/8, /*AltIndex=*/0};
  Bundle.WqLinear = {/*MMin=*/1, /*MMax=*/8, /*QMax=*/20.0,
                     /*HysteresisBand=*/0, /*AltIndex=*/0};
  return Bundle;
}

NestAppBundle dope::makeGimpApp() {
  NestAppBundle Bundle;
  Bundle.Model.Name = "gimp";
  Bundle.Model.SeqServiceSeconds = 8.0;
  // Oilify over image tiles: scalable DOALL with moderate tile-merge
  // overhead.
  Bundle.Model.Curve = SpeedupCurve(/*Alpha=*/0.09, /*FixedCost=*/0.0,
                                    /*Cap=*/10.0);
  Bundle.Model.ServiceCv = 0.15;
  Bundle.MMax = 6;
  Bundle.WqtH = {/*QueueThreshold=*/4.0, /*NOff=*/3, /*NOn=*/3,
                 /*MMax=*/6, /*AltIndex=*/0};
  Bundle.WqLinear = {/*MMin=*/1, /*MMax=*/6, /*QMax=*/20.0,
                     /*HysteresisBand=*/0, /*AltIndex=*/0};
  return Bundle;
}

std::vector<NestAppBundle> dope::allNestApps() {
  return {makeX264App(), makeSwaptionsApp(), makeBzipApp(), makeGimpApp()};
}

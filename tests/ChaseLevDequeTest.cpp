//===- tests/ChaseLevDequeTest.cpp - Work-stealing deque tests -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The ChaseLevDeque correctness suite: a differential test against a
// sequential std::deque oracle, exactly-once accounting under
// multi-thief contention (the linearizability property the runtime
// actually relies on), and growth races with a deliberately tiny
// initial ring. The stress tests are the tsan targets for the deque's
// fence-based memory orders — CI runs this binary under `-L unit` in
// the tsan job.
//
//===----------------------------------------------------------------------===//

#include "queue/ChaseLevDeque.h"
#include "queue/StealScheduler.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

using namespace dope;
using testing_helpers::loggedSeed;

namespace {

//===----------------------------------------------------------------------===//
// Sequential differential: owner-only push/pop must behave exactly like
// a std::deque used as a LIFO stack.
//===----------------------------------------------------------------------===//

TEST(ChaseLevDeque, OwnerOnlyMatchesSequentialOracle) {
  SplitMix64 Rng(loggedSeed(0xC4A5E1Eu));
  ChaseLevDeque<uint64_t> D(2); // tiny: forces repeated growth
  std::deque<uint64_t> Oracle;
  uint64_t Next = 0;
  for (int Step = 0; Step != 100000; ++Step) {
    const bool Push = Oracle.empty() || (Rng.next() & 3) != 0;
    if (Push) {
      D.push(Next);
      Oracle.push_back(Next);
      ++Next;
    } else {
      uint64_t Got = ~0ull;
      ASSERT_TRUE(D.pop(Got));
      ASSERT_EQ(Got, Oracle.back());
      Oracle.pop_back();
    }
    ASSERT_EQ(D.size(), Oracle.size());
    ASSERT_EQ(D.empty(), Oracle.empty());
  }
  uint64_t Got;
  while (!Oracle.empty()) {
    ASSERT_TRUE(D.pop(Got));
    ASSERT_EQ(Got, Oracle.back());
    Oracle.pop_back();
  }
  ASSERT_FALSE(D.pop(Got));
}

TEST(ChaseLevDeque, StealTakesFifoOrderWhenUncontended) {
  ChaseLevDeque<uint64_t> D;
  for (uint64_t I = 0; I != 16; ++I)
    D.push(I);
  // Thieves take the oldest (bottom of the recursion tree = biggest
  // subtree); the owner pops the newest.
  uint64_t Got = ~0ull;
  ASSERT_EQ(D.steal(Got), StealOutcome::Success);
  EXPECT_EQ(Got, 0u);
  ASSERT_EQ(D.steal(Got), StealOutcome::Success);
  EXPECT_EQ(Got, 1u);
  ASSERT_TRUE(D.pop(Got));
  EXPECT_EQ(Got, 15u);
  EXPECT_EQ(D.size(), 13u);
}

TEST(ChaseLevDeque, StealOnEmptyReportsEmpty) {
  ChaseLevDeque<uint64_t> D;
  uint64_t Got;
  EXPECT_EQ(D.steal(Got), StealOutcome::Empty);
  D.push(7);
  ASSERT_TRUE(D.pop(Got));
  EXPECT_EQ(D.steal(Got), StealOutcome::Empty);
}

//===----------------------------------------------------------------------===//
// Concurrent exactly-once: every pushed item is consumed exactly once
// across the owner and N thieves, regardless of interleaving.
//===----------------------------------------------------------------------===//

void runExactlyOnceStress(unsigned Thieves, size_t InitialCapacity,
                          uint64_t Items) {
  ChaseLevDeque<uint64_t> D(InitialCapacity);
  std::vector<std::atomic<uint32_t>> Seen(Items);
  for (auto &S : Seen)
    S.store(0, std::memory_order_relaxed);
  std::atomic<bool> Open{true};
  std::atomic<uint64_t> Consumed{0};

  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Thieves; ++T)
    Pool.emplace_back([&] {
      uint64_t Got;
      while (Open.load(std::memory_order_acquire) ||
             Consumed.load(std::memory_order_acquire) < Items) {
        if (D.steal(Got) == StealOutcome::Success) {
          Seen[Got].fetch_add(1, std::memory_order_relaxed);
          Consumed.fetch_add(1, std::memory_order_release);
        }
      }
    });

  // Owner: interleave pushes with occasional pops, like a worker
  // spawning subtasks while executing its own.
  uint64_t Got;
  for (uint64_t I = 0; I != Items; ++I) {
    D.push(I);
    if ((I & 7) == 0 && D.pop(Got)) {
      Seen[Got].fetch_add(1, std::memory_order_relaxed);
      Consumed.fetch_add(1, std::memory_order_release);
    }
  }
  while (D.pop(Got)) {
    Seen[Got].fetch_add(1, std::memory_order_relaxed);
    Consumed.fetch_add(1, std::memory_order_release);
  }
  Open.store(false, std::memory_order_release);
  for (auto &Th : Pool)
    Th.join();

  ASSERT_EQ(Consumed.load(), Items);
  for (uint64_t I = 0; I != Items; ++I)
    ASSERT_EQ(Seen[I].load(), 1u) << "item " << I;
  EXPECT_TRUE(D.empty());
  ASSERT_FALSE(D.pop(Got));
}

TEST(ChaseLevDequeStress, SingleThiefExactlyOnce) {
  runExactlyOnceStress(1, 64, 200000);
}

TEST(ChaseLevDequeStress, ManyThievesExactlyOnce) {
  runExactlyOnceStress(4, 64, 200000);
}

TEST(ChaseLevDequeStress, GrowUnderStealExactlyOnce) {
  // Initial capacity 2: the ring doubles many times while thieves race
  // the copies, exercising the grow/steal interaction.
  runExactlyOnceStress(3, 2, 100000);
}

//===----------------------------------------------------------------------===//
// StealScheduler: victim sweep, stranded-deque draining, counters.
//===----------------------------------------------------------------------===//

TEST(StealScheduler, AcquirePrefersOwnDequeThenSteals) {
  StealScheduler<uint64_t> S(4, loggedSeed(0x5EEDu));
  S.spawn(0, 10);
  S.spawn(0, 11);
  S.spawn(2, 30);
  uint64_t Got = ~0ull;
  unsigned From = ~0u;
  // Own deque pops LIFO.
  ASSERT_TRUE(S.tryAcquire(0, Got, &From));
  EXPECT_EQ(Got, 11u);
  EXPECT_EQ(From, 0u);
  // Worker 1 owns nothing; it must steal worker 2's item.
  ASSERT_TRUE(S.tryAcquire(1, Got, &From));
  EXPECT_EQ(Got, 30u);
  EXPECT_EQ(From, 2u);
  EXPECT_GE(S.stealsSucceeded(), 1u);
  EXPECT_GE(S.stealsAttempted(), S.stealsSucceeded());
}

TEST(StealScheduler, StrandedWorkDrainsThroughSteals) {
  // Work left in deques whose owner never runs again (a shrunken
  // extent) must still be reachable by the remaining workers.
  StealScheduler<uint64_t> S(8, loggedSeed(0xABCDu));
  for (uint64_t I = 0; I != 64; ++I)
    S.spawn(1 + (I % 7), I); // workers 1..7 own work; worker 0 drives
  uint64_t Got;
  size_t Drained = 0;
  while (S.tryAcquire(0, Got))
    ++Drained;
  EXPECT_EQ(Drained, 64u);
  EXPECT_FALSE(S.anyQueued());
}

TEST(StealScheduler, ParkedWorkerWakesOnSpawn) {
  StealScheduler<uint64_t> S(2, loggedSeed(0x77u));
  std::atomic<bool> GotItem{false};
  std::thread Worker([&] {
    uint64_t Item;
    for (int Spin = 0; Spin != 20000 && !GotItem.load(); ++Spin) {
      if (S.tryAcquire(1, Item)) {
        GotItem.store(true);
        break;
      }
      S.parkUntilWork([&] { return false; },
                      std::chrono::microseconds(500));
    }
  });
  S.spawn(0, 42);
  Worker.join();
  EXPECT_TRUE(GotItem.load());
}

} // namespace

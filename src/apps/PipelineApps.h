//===- apps/PipelineApps.h - Pipeline application models -------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calibrated models of the paper's batch pipeline applications
/// (Table 4, one loop nesting level): ferret, the content-based image
/// search engine, and dedup, the PARSEC deduplication kernel. Both expose
/// a fused task variant (Table 4 lists 59 and 113 lines of fused-task
/// code respectively) registered as a second descriptor alternative.
///
/// Calibration targets (Sec. 8.2.2 / Table 15):
///   * ferret: static even distribution is far off the bottleneck-aware
///     optimum (the rank/extract stages dominate), so Pthreads-OS
///     oversubscription recovers ~2.1x and DoPE-TBF more;
///   * dedup: memory-bound — thread footprint is expensive, so
///     Pthreads-OS lands at ~0.89x of the baseline while TBF's balanced
///     + fused configuration wins;
///   * geomean DoPE-TBF improvement across both ~2.36x ("136%").
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_APPS_PIPELINEAPPS_H
#define DOPE_APPS_PIPELINEAPPS_H

#include "sim/PipelineSim.h"

#include <vector>

namespace dope {

/// ferret: load -> segment -> extract -> vector -> rank -> out
/// (6 stages; load and out are sequential).
PipelineAppModel makeFerretApp();

/// dedup: fragment -> refine -> deduplicate -> compress -> write
/// (5 stages; fragment and write are sequential).
PipelineAppModel makeDedupApp();

/// Both batch applications, in the paper's Table 15 order.
std::vector<PipelineAppModel> allPipelineApps();

} // namespace dope

#endif // DOPE_APPS_PIPELINEAPPS_H

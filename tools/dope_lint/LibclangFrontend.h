//===- tools/dope_lint/LibclangFrontend.h - libclang tokenizer -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional libclang (clang C API) frontend. When the build found
/// clang-c/Index.h and libclang (DOPE_LINT_HAVE_LIBCLANG), files are
/// tokenized through a real clang translation unit driven by the
/// compile_commands.json flags; otherwise the built-in lexer (Lexer.h)
/// produces an equivalent stream and this frontend reports itself
/// unavailable. The checks are frontend-agnostic either way.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TOOLS_LINT_LIBCLANG_FRONTEND_H
#define DOPE_TOOLS_LINT_LIBCLANG_FRONTEND_H

#include "Lexer.h"

#include <string>
#include <vector>

namespace dopelint {

/// True when this binary was built against libclang.
bool libclangAvailable();

/// Tokenizes \p Path through libclang using \p Args (the compile
/// command's argv; may be empty). Returns false with \p Error set when
/// libclang is unavailable or the parse fails — callers fall back to
/// the built-in lexer.
bool lexWithLibclang(const std::string &Path,
                     const std::vector<std::string> &Args, LexOutput &Out,
                     std::string &Error);

} // namespace dopelint

#endif // DOPE_TOOLS_LINT_LIBCLANG_FRONTEND_H

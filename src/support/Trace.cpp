//===- support/Trace.cpp - Structured decision tracing ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Clock.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <ostream>

using namespace dope;

//===----------------------------------------------------------------------===//
// Kind names
//===----------------------------------------------------------------------===//

static constexpr const char *KindNames[] = {
    "feature",  "feature-read", "decision",    "queue",
    "begin",    "end",          "wait",        "reconfig",
    "fault",    "log",          "counter",     "lease-grant",
    "lease-revoke", "tenant-utility", "lease-expire", "heartbeat",
    "compliance", "steal"};

const char *dope::toString(TraceKind Kind) {
  return KindNames[static_cast<size_t>(Kind)];
}

std::optional<TraceKind> dope::traceKindFromString(std::string_view Name) {
  for (size_t I = 0; I != std::size(KindNames); ++I)
    if (Name == KindNames[I])
      return static_cast<TraceKind>(I);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

/// One thread's ring. The writing thread and drain() synchronize on the
/// per-buffer mutex; writers of different threads never share a buffer,
/// so the lock is uncontended outside drains.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(uint32_t Tid) : Tid(Tid) {}

  std::mutex Mutex;
  const uint32_t Tid;
  std::vector<TraceRecord> Ring DOPE_GUARDED_BY(Mutex);
  // Oldest record once the ring wrapped.
  size_t Head DOPE_GUARDED_BY(Mutex) = 0;
  uint64_t Written DOPE_GUARDED_BY(Mutex) = 0;
  uint64_t Dropped DOPE_GUARDED_BY(Mutex) = 0;
};

namespace {

/// Thread-local association of tracer id -> buffer. Ids are process
/// unique and never reused, so a stale slot of a destroyed tracer can
/// never be mistaken for a live one. The buffer is stored untyped
/// because ThreadBuffer is private to Tracer.
struct TlsSlot {
  uint64_t TracerId;
  void *Buf;
};

thread_local std::vector<TlsSlot> TlsSlots;

std::atomic<uint64_t> NextTracerId{1};
std::atomic<Tracer *> ActiveTracer{nullptr};

} // namespace

Tracer::Tracer(size_t CapacityPerThread)
    : Capacity(std::max<size_t>(16, CapacityPerThread)),
      Id(NextTracerId.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  Tracer *Self = this;
  ActiveTracer.compare_exchange_strong(Self, nullptr,
                                       std::memory_order_acq_rel);
}

Tracer *Tracer::active() {
  return ActiveTracer.load(std::memory_order_acquire);
}

void Tracer::setActive(Tracer *T) {
  ActiveTracer.store(T, std::memory_order_release);
}

void Tracer::setClock(std::function<double()> NewClock) {
  std::lock_guard<std::mutex> Lock(ClockMutex);
  Clock = std::move(NewClock);
}

double Tracer::now() const {
  {
    std::lock_guard<std::mutex> Lock(ClockMutex);
    if (Clock)
      return Clock();
  }
  // Default clock domain: the process-wide monotonic origin every other
  // native component stamps with (support/Clock.h) — not a raw
  // steady_clock read, which the determinism lint (DL001) forbids
  // outside the Clock abstraction.
  return monotonicSeconds();
}

Tracer::ThreadBuffer &Tracer::buffer() {
  for (const TlsSlot &Slot : TlsSlots)
    if (Slot.TracerId == Id)
      return *static_cast<ThreadBuffer *>(Slot.Buf);
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Buffers.push_back(
      std::make_unique<ThreadBuffer>(static_cast<uint32_t>(Buffers.size())));
  ThreadBuffer *Buf = Buffers.back().get();
  TlsSlots.push_back({Id, Buf});
  return *Buf;
}

void Tracer::append(ThreadBuffer &Buf, TraceRecord R) {
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  R.Tid = Buf.Tid;
  ++Buf.Written;
  if (Buf.Ring.size() < Capacity) {
    Buf.Ring.push_back(std::move(R));
    return;
  }
  Buf.Ring[Buf.Head] = std::move(R);
  Buf.Head = (Buf.Head + 1) % Capacity;
  ++Buf.Dropped;
}

DOPE_HOT void Tracer::record(TraceKind Kind, std::string_view Name, double A,
                             double B, std::string Detail) {
  // Tracing is a diagnostic facility, not a control path: the clock mutex
  // below is uncontended except while a test swaps the clock in.
  // dope-lint: allow(HP004)
  recordAt(now(), Kind, Name, A, B, std::move(Detail));
}

DOPE_HOT void Tracer::recordAt(double Time, TraceKind Kind,
                               std::string_view Name, double A, double B,
                               std::string Detail) {
  TraceRecord R;
  R.Time = Time;
  R.Kind = Kind;
  R.Name.assign(Name);
  R.A = A;
  R.B = B;
  R.Detail = std::move(Detail);
  // The buffer mutex is per-thread (never contended in steady state) and
  // the registry mutex is only taken on a thread's first record; keeping
  // them is the tracer's documented bounded-overhead trade-off.
  // dope-lint: allow(HP004)
  append(buffer(), std::move(R));
}

std::vector<TraceRecord> Tracer::drain() {
  std::vector<TraceRecord> Out;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const std::unique_ptr<ThreadBuffer> &Buf : Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    // Chronological ring order: from the oldest (Head) around.
    for (size_t I = 0; I != Buf->Ring.size(); ++I)
      Out.push_back(
          std::move(Buf->Ring[(Buf->Head + I) % Buf->Ring.size()]));
    Buf->Ring.clear();
    Buf->Head = 0;
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceRecord &L, const TraceRecord &R) {
                     return L.Time < R.Time;
                   });
  return Out;
}

void dope::canonicalizeTrace(std::vector<TraceRecord> &Records) {
  std::sort(Records.begin(), Records.end(),
            [](const TraceRecord &L, const TraceRecord &R) {
              if (L.Time != R.Time)
                return L.Time < R.Time;
              if (L.Kind != R.Kind)
                return static_cast<int>(L.Kind) < static_cast<int>(R.Kind);
              if (int C = L.Name.compare(R.Name))
                return C < 0;
              if (L.A != R.A)
                return L.A < R.A;
              if (L.B != R.B)
                return L.B < R.B;
              return L.Detail < R.Detail;
            });
}

uint64_t Tracer::droppedRecords() const {
  auto *Self = const_cast<Tracer *>(this);
  std::lock_guard<std::mutex> Lock(Self->RegistryMutex);
  uint64_t Total = 0;
  for (const std::unique_ptr<ThreadBuffer> &Buf : Self->Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    Total += Buf->Dropped;
  }
  return Total;
}

uint64_t Tracer::recordedTotal() const {
  auto *Self = const_cast<Tracer *>(this);
  std::lock_guard<std::mutex> Lock(Self->RegistryMutex);
  uint64_t Total = 0;
  for (const std::unique_ptr<ThreadBuffer> &Buf : Self->Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    Total += Buf->Written;
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

/// Exporters append into one buffer and hand it to the stream in large
/// chunks: per-record ostream << calls dominated export time at trace
/// sizes the figure harnesses produce. The JSON bytes are built with
/// JsonValue::appendNumber / escapeTo, so output is identical to the
/// JsonValue-based writer the goldens were recorded with.
static constexpr size_t FlushChunkBytes = 1 << 16;

static void flushBuffer(std::string &Buf, std::ostream &OS, bool Force) {
  if (Buf.empty() || (!Force && Buf.size() < FlushChunkBytes))
    return;
  OS.write(Buf.data(), static_cast<std::streamsize>(Buf.size()));
  Buf.clear();
}

void dope::writeTraceJsonl(const std::vector<TraceRecord> &Records,
                           std::ostream &OS) {
  std::string Buf;
  Buf.reserve(FlushChunkBytes + 1024);
  for (const TraceRecord &R : Records) {
    Buf += "{\"t\":";
    JsonValue::appendNumber(Buf, R.Time);
    Buf += ",\"kind\":\"";
    Buf += toString(R.Kind);
    Buf += "\",\"tid\":";
    JsonValue::appendNumber(Buf, static_cast<double>(R.Tid));
    Buf += ",\"name\":\"";
    JsonValue::escapeTo(Buf, R.Name);
    Buf += '"';
    if (R.A != 0.0) {
      Buf += ",\"a\":";
      JsonValue::appendNumber(Buf, R.A);
    }
    if (R.B != 0.0) {
      Buf += ",\"b\":";
      JsonValue::appendNumber(Buf, R.B);
    }
    if (!R.Detail.empty()) {
      Buf += ",\"detail\":\"";
      JsonValue::escapeTo(Buf, R.Detail);
      Buf += '"';
    }
    Buf += "}\n";
    flushBuffer(Buf, OS, /*Force=*/false);
  }
  flushBuffer(Buf, OS, /*Force=*/true);
}

std::optional<std::vector<TraceRecord>>
dope::readTraceJsonl(std::istream &IS, std::string *Error) {
  std::vector<TraceRecord> Out;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string ParseError;
    std::optional<JsonValue> V = JsonValue::parse(Line, &ParseError);
    if (!V || !V->isObject()) {
      if (Error)
        *Error = "line " + std::to_string(LineNo) + ": " +
                 (ParseError.empty() ? "not an object" : ParseError);
      return std::nullopt;
    }
    std::optional<TraceKind> Kind =
        traceKindFromString(V->getString("kind"));
    if (!Kind) {
      if (Error)
        *Error = "line " + std::to_string(LineNo) + ": unknown kind '" +
                 V->getString("kind") + "'";
      return std::nullopt;
    }
    TraceRecord R;
    R.Time = V->getNumber("t");
    R.Kind = *Kind;
    R.Tid = static_cast<uint32_t>(V->getNumber("tid"));
    R.Name = V->getString("name");
    R.A = V->getNumber("a");
    R.B = V->getNumber("b");
    R.Detail = V->getString("detail");
    Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<TraceRecord> dope::readTraceJsonlLenient(std::istream &IS,
                                                     TraceReadStats *Stats) {
  std::vector<TraceRecord> Out;
  TraceReadStats Local;
  std::string Line;
  uint64_t LineNo = 0;
  auto Skip = [&](std::string Why) {
    if (Local.Skipped == 0) {
      Local.FirstSkippedLine = LineNo;
      Local.FirstError = std::move(Why);
    }
    ++Local.Skipped;
  };
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string ParseError;
    std::optional<JsonValue> V = JsonValue::parse(Line, &ParseError);
    if (!V || !V->isObject()) {
      Skip(ParseError.empty() ? "not an object" : ParseError);
      continue;
    }
    std::optional<TraceKind> Kind = traceKindFromString(V->getString("kind"));
    if (!Kind) {
      Skip("unknown kind '" + V->getString("kind") + "'");
      continue;
    }
    TraceRecord R;
    R.Time = V->getNumber("t");
    R.Kind = *Kind;
    R.Tid = static_cast<uint32_t>(V->getNumber("tid"));
    R.Name = V->getString("name");
    R.A = V->getNumber("a");
    R.B = V->getNumber("b");
    R.Detail = V->getString("detail");
    ++Local.Parsed;
    Out.push_back(std::move(R));
  }
  if (Stats)
    *Stats = std::move(Local);
  return Out;
}

void dope::writeChromeTrace(const std::vector<TraceRecord> &Records,
                            std::ostream &OS) {
  // trace_event JSON array form; timestamps in microseconds. Task
  // begin/end map to duration events on the writer's thread track;
  // features and queue depths map to counter tracks; everything else is
  // an instant event.
  std::string Buf;
  Buf.reserve(FlushChunkBytes + 1024);
  Buf += '[';
  bool First = true;
  for (const TraceRecord &R : Records) {
    if (!First)
      Buf += ",\n";
    First = false;
    Buf += "{\"pid\":1,\"tid\":";
    JsonValue::appendNumber(Buf, static_cast<double>(R.Tid));
    Buf += ",\"ts\":";
    JsonValue::appendNumber(Buf, R.Time * 1e6);
    switch (R.Kind) {
    case TraceKind::TaskBegin:
    case TraceKind::TaskEnd:
      Buf += R.Kind == TraceKind::TaskBegin ? ",\"ph\":\"B\",\"name\":\""
                                            : ",\"ph\":\"E\",\"name\":\"";
      JsonValue::escapeTo(Buf, R.Name);
      Buf += "\"}";
      break;
    case TraceKind::FeatureSample:
    case TraceKind::FeatureRead:
    case TraceKind::QueueDepth:
    case TraceKind::TenantUtility:
    case TraceKind::Heartbeat:
    case TraceKind::Counter:
      Buf += ",\"ph\":\"C\",\"name\":\"";
      JsonValue::escapeTo(Buf, R.Name);
      Buf += "\",\"args\":{\"value\":";
      JsonValue::appendNumber(Buf, R.A);
      Buf += "}}";
      break;
    default: {
      Buf += ",\"ph\":\"i\",\"s\":\"g\",\"name\":\"";
      JsonValue::escapeTo(Buf, toString(R.Kind));
      Buf += ':';
      JsonValue::escapeTo(Buf, R.Name);
      Buf += "\",\"args\":{";
      bool FirstArg = true;
      if (!R.Detail.empty()) {
        Buf += "\"detail\":\"";
        JsonValue::escapeTo(Buf, R.Detail);
        Buf += '"';
        FirstArg = false;
      }
      if (R.A != 0.0) {
        if (!FirstArg)
          Buf += ',';
        Buf += "\"a\":";
        JsonValue::appendNumber(Buf, R.A);
        FirstArg = false;
      }
      if (R.B != 0.0) {
        if (!FirstArg)
          Buf += ',';
        Buf += "\"b\":";
        JsonValue::appendNumber(Buf, R.B);
      }
      Buf += "}}";
      break;
    }
    }
    flushBuffer(Buf, OS, /*Force=*/false);
  }
  Buf += "]\n";
  flushBuffer(Buf, OS, /*Force=*/true);
}

bool dope::writeTraceFile(const std::vector<TraceRecord> &Records,
                          const std::string &Path, std::string *Error) {
  std::ofstream OS(Path);
  if (!OS) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  const bool Chrome =
      Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".json") == 0;
  if (Chrome)
    writeChromeTrace(Records, OS);
  else
    writeTraceJsonl(Records, OS);
  OS.flush();
  if (!OS) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

//===- tests/EdpTest.cpp - Energy-delay-product mechanism tests --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Edp.h"

#include "mechanisms/ServerNest.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

TEST(Edp, ScoreMatchesClosedForm) {
  // Ideal linear speedup: EDP(m) = m / m^2 = 1/m.
  EdpMechanism M({SpeedupCurve(0.0, 0.0), 8, 1.15, 0});
  EXPECT_DOUBLE_EQ(M.edpScore(1), 1.0);
  EXPECT_DOUBLE_EQ(M.edpScore(4), 0.25);
}

TEST(Edp, ScalableCurvePrefersWideExtents) {
  EdpMechanism M({SpeedupCurve(0.02, 0.0, 18.0), 8, 1.15, 0});
  EXPECT_EQ(M.extentForDemand(0.0, 24), 8u);
}

TEST(Edp, OverheadyCurveStaysSequential) {
  // bzip-like: S(4) = 1.21, so EDP(4) = 4 / 1.47 > 1 = EDP(1).
  EdpMechanism M({SpeedupCurve(0.3, 1.4, 8.0), 8, 1.15, 0});
  EXPECT_EQ(M.extentForDemand(0.0, 24), 1u);
}

TEST(Edp, DemandForcesNarrowExtents) {
  EdpMechanism M({SpeedupCurve(0.02, 0.0, 18.0), 8, 1.15, 0});
  // Efficiency at 8 is 0.88: feasible up to demand ~0.76 (0.88 / 1.15).
  EXPECT_EQ(M.extentForDemand(0.5, 24), 8u);
  EXPECT_LT(M.extentForDemand(0.85, 24), 8u);
  EXPECT_EQ(M.extentForDemand(1.0, 24), 1u);
}

TEST(Edp, ReconfigureProducesValidServerConfig) {
  ServerNestGraph G = makeServerNestGraph();
  EdpMechanism M({SpeedupCurve(0.02, 0.0, 18.0), 8, 1.15, 0});
  RegionConfig Current = makeServerConfig(*G.Root, 24, 1);
  RegionSnapshot Snap = makeServerSnapshot(G, /*Occupancy=*/0.0, 24, 1);
  MechanismContext Ctx;
  Ctx.MaxThreads = 24;
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, Current, Ctx);
  ASSERT_TRUE(Next.has_value());
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, *Next, &Error)) << Error;
  EXPECT_EQ(serverInnerExtent(*Next), 8u);
  EXPECT_LE(totalThreads(*G.Root, *Next), 24u);
}

TEST(Edp, QueuePressureNarrowsExtent) {
  ServerNestGraph G = makeServerNestGraph();
  EdpMechanism M({SpeedupCurve(0.02, 0.0, 18.0), 8, 1.15, 0});
  RegionConfig Current = makeServerConfig(*G.Root, 3, 8);
  // A standing backlog of 12 transactions on 24 contexts saturates the
  // demand estimate.
  RegionSnapshot Snap = makeServerSnapshot(G, /*Occupancy=*/12.0, 3, 8);
  MechanismContext Ctx;
  Ctx.MaxThreads = 24;
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, Current, Ctx);
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(serverInnerExtent(*Next), 1u);
  EXPECT_EQ(serverOuterExtent(*Next), 24u);
}

TEST(Edp, IgnoresNonServerShapes) {
  PipelineGraph G = makePipelineGraph({{"a", true}, {"b", true}});
  const ParDescriptor *Stages = G.Driver->descriptor()->alternative(0);
  EdpMechanism M({SpeedupCurve(0.02, 0.0, 18.0), 8, 1.15, 0});
  RegionConfig Config;
  Config.Tasks.resize(2);
  RegionSnapshot Snap;
  Snap.Tasks.resize(2);
  MechanismContext Ctx;
  Ctx.MaxThreads = 24;
  EXPECT_FALSE(M.reconfigure(*Stages, Snap, Config, Ctx).has_value());
}

} // namespace

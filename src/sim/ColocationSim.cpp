//===- sim/ColocationSim.cpp - Multi-tenant platform simulator -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ColocationSim.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include "support/RingDeque.h"

using namespace dope;

const char *dope::toString(ColocationPolicy Policy) {
  switch (Policy) {
  case ColocationPolicy::Arbiter:
    return "arbiter";
  case ColocationPolicy::StaticSplit:
    return "static-split";
  case ColocationPolicy::Oversubscribed:
    return "oversubscribed";
  }
  return "?";
}

namespace {

/// Pipeline throughput at \p K threads: greedy replication — grow the
/// bottleneck parallel stage until threads run out; below one thread
/// per stage the pipeline time-multiplexes and throughput is
/// CPU-bound at K / sum(s_i).
double pipelineCapacity(const PipelineAppModel &M, unsigned K) {
  if (K == 0 || M.Stages.empty())
    return 0.0;
  double TotalService = 0.0;
  for (const PipelineStageSpec &S : M.Stages)
    TotalService += S.ServiceSeconds;
  if (TotalService <= 0.0)
    return 0.0;
  const unsigned NumStages = static_cast<unsigned>(M.Stages.size());
  if (K < NumStages) {
    // Time-multiplexed: CPU-bound at K / sum(s_i), but never above what
    // the one-replica-per-stage pipeline sustains — keeps capacity
    // monotone across the K == NumStages boundary.
    double MinStageRate = std::numeric_limits<double>::infinity();
    for (const PipelineStageSpec &S : M.Stages)
      MinStageRate = std::min(MinStageRate, 1.0 / S.ServiceSeconds);
    return std::min(static_cast<double>(K) / TotalService, MinStageRate);
  }

  std::vector<unsigned> Extent(M.Stages.size(), 1);
  for (unsigned Spare = K - NumStages; Spare != 0; --Spare) {
    size_t Bottleneck = M.Stages.size();
    double WorstRate = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I != M.Stages.size(); ++I) {
      if (!M.Stages[I].Parallel)
        continue;
      const double Rate = Extent[I] / M.Stages[I].ServiceSeconds;
      if (Rate < WorstRate) {
        WorstRate = Rate;
        Bottleneck = I;
      }
    }
    if (Bottleneck == M.Stages.size())
      break; // all stages sequential; extra threads are useless
    ++Extent[Bottleneck];
  }
  double Rate = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I != M.Stages.size(); ++I)
    Rate = std::min(Rate, Extent[I] / M.Stages[I].ServiceSeconds);
  return Rate;
}

/// Nested-parallel server throughput at \p K threads: pick the inner
/// extent m maximizing (K / m) * S(m) concurrent streams of 1/T1 each.
double nestCapacity(const NestAppModel &M, unsigned K, unsigned *BestM) {
  if (K == 0 || M.SeqServiceSeconds <= 0.0)
    return 0.0;
  double Best = 0.0;
  unsigned BestExtent = 1;
  for (unsigned Mi = 1; Mi <= K; ++Mi) {
    const double Streams = static_cast<double>(K) / Mi;
    const double Rate =
        Streams * M.Curve.speedup(Mi) / M.SeqServiceSeconds;
    if (Rate > Best) {
      Best = Rate;
      BestExtent = Mi;
    }
  }
  if (BestM)
    *BestM = BestExtent;
  return Best;
}

struct TenantRuntime {
  const ColocationTenantSpec *Spec = nullptr;
  TenantId Id = 0;
  unsigned Granted = 0;
  double ServiceCredit = 0.0;
  double PausedUntil = 0.0;
  RingDeque<double> Queue; // arrival timestamps
  Rng Arrivals{1};

  // Per-epoch telemetry window.
  uint64_t WindowArrived = 0;
  uint64_t WindowCompleted = 0;
  std::vector<double> WindowResponses;

  // Chaos state.
  bool Crashed = false;   // process died; never comes back
  bool Evicted = false;   // containment killed it; never comes back
  bool SelfFloor = false; // lease expired while alive: serving at floor
  uint64_t EpochIndex = 0;

  TenantStats Stats;

  // Cached per-(policy, lease) capacity/latency.
  double Capacity = 0.0;
  double Latency = 0.0;
};

double percentileOf(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const double Pos = Q * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(Pos);
  const size_t Hi = std::min(Lo + 1, Values.size() - 1);
  const double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

} // namespace

double ColocationSim::capacity(const ColocationTenantSpec &Spec,
                               unsigned Threads) {
  if (Spec.Kind == ColocationTenantSpec::AppKind::Pipeline)
    return pipelineCapacity(Spec.Pipeline, Threads);
  return nestCapacity(Spec.Nest, Threads, nullptr);
}

double ColocationSim::serviceLatency(const ColocationTenantSpec &Spec,
                                     unsigned Threads) {
  if (Spec.Kind == ColocationTenantSpec::AppKind::Pipeline) {
    double Total = 0.0;
    for (const PipelineStageSpec &S : Spec.Pipeline.Stages)
      Total += S.ServiceSeconds;
    return Total;
  }
  unsigned BestM = 1;
  nestCapacity(Spec.Nest, std::max(1u, Threads), &BestM);
  return Spec.Nest.SeqServiceSeconds / Spec.Nest.Curve.speedup(BestM);
}

ColocationSim::ColocationSim(std::vector<ColocationTenantSpec> Tenants,
                             ColocationSimOptions Options)
    : Specs(std::move(Tenants)), Opts(std::move(Options)) {
  assert(!Specs.empty() && "colocation needs at least one tenant");
  assert(Opts.Contexts >= Specs.size() && "a thread per tenant, minimum");
  assert(Opts.StepSeconds > 0.0 && Opts.DurationSeconds > 0.0);
}

ColocationSimResult ColocationSim::run() {
  const size_t N = Specs.size();
  Tracer *Trace = Opts.TraceSink;

  ArbiterOptions ArbOpts = Opts.Arbiter;
  ArbOpts.TotalThreads = Opts.Contexts;
  ArbOpts.Trace = Trace;
  // Behind a pointer so chaos runs can kill and restart it mid-run.
  std::unique_ptr<Arbiter> Arb;
  if (Opts.Policy == ColocationPolicy::Arbiter)
    Arb = std::make_unique<Arbiter>(ArbOpts);

  // Contention model for the oversubscribed baseline: every tenant
  // spawns for the whole machine, so N * Contexts runnable threads
  // compete for Contexts.
  const double OversubFactor =
      1.0 + Opts.OversubPenalty * (static_cast<double>(N) - 1.0);

  ColocationSimResult Result;
  std::vector<TraceRecord> &Journal = Result.ProtocolJournal;
  auto JournalRecord = [&Journal](double Time, TraceKind Kind,
                                  const std::string &Name, double A, double B,
                                  std::string Detail) {
    TraceRecord R;
    R.Time = Time;
    R.Kind = Kind;
    R.Name = Name;
    R.A = A;
    R.B = B;
    R.Detail = std::move(Detail);
    Journal.push_back(std::move(R));
  };

  std::vector<TenantRuntime> Run(N);

  // Threads the tenant actually occupies right now: zero once dead or
  // evicted; the self-preservation floor while its lease is expired but
  // the process lives; its violation surplus on top of any live lease.
  auto usedThreads = [](const TenantRuntime &T) -> unsigned {
    if (T.Crashed || T.Evicted)
      return 0;
    unsigned Base = T.Granted;
    if (Base == 0 && T.SelfFloor)
      Base = std::max(1u, T.Spec->Tenant.MinThreads);
    if (Base > 0)
      Base += T.Spec->Misbehavior.EnvelopeViolationThreads;
    return Base;
  };

  auto refreshCurves = [&](TenantRuntime &T) {
    const unsigned Used = usedThreads(T);
    T.Capacity = Used == 0 ? 0.0 : capacity(*T.Spec, Used);
    T.Latency = serviceLatency(*T.Spec, std::max(1u, Used));
    if (Opts.Policy == ColocationPolicy::Oversubscribed) {
      T.Capacity /= OversubFactor;
      T.Latency *= static_cast<double>(N) * OversubFactor;
    }
  };

  for (size_t I = 0; I != N; ++I) {
    TenantRuntime &T = Run[I];
    T.Spec = &Specs[I];
    T.Arrivals = Rng(Opts.Seed + 0x9e37 * (I + 1));
    T.Stats.Name = Specs[I].Tenant.Name;
    T.Stats.LatencySensitive =
        Specs[I].Tenant.Goal == TenantGoal::ResponseTime;
    T.Stats.Weight = Specs[I].Tenant.Weight;
    T.Stats.SloSeconds = Specs[I].Tenant.SloSeconds;

    switch (Opts.Policy) {
    case ColocationPolicy::Arbiter:
      T.Id = Arb->addTenant(Specs[I].Tenant, 0.0);
      break;
    case ColocationPolicy::StaticSplit: {
      const unsigned Equal =
          std::max(1u, Opts.Contexts / static_cast<unsigned>(N));
      T.Granted = I < Opts.StaticShares.size() && Opts.StaticShares[I] > 0
                      ? Opts.StaticShares[I]
                      : Equal;
      break;
    }
    case ColocationPolicy::Oversubscribed:
      // Fair-share slice of the thrashing machine.
      T.Granted = std::max(1u, Opts.Contexts / static_cast<unsigned>(N));
      break;
    }
  }
  // Read seats only after every tenant has joined — each join re-splits
  // the pool, so earlier reads would hold stale (overcommitted) grants.
  if (Opts.Policy == ColocationPolicy::Arbiter) {
    for (TenantRuntime &T : Run) {
      T.Granted = Arb->leaseOf(T.Id).Threads;
      JournalRecord(0.0, TraceKind::LeaseGrant, T.Stats.Name,
                    static_cast<double>(T.Granted), 0.0, "join");
    }
  }
  for (TenantRuntime &T : Run)
    refreshCurves(T);
  if (Opts.Policy == ColocationPolicy::Arbiter) {
    AllocationSample Seat;
    Seat.Time = 0.0;
    for (const TenantRuntime &T : Run)
      Seat.Granted.push_back(T.Granted);
    Result.AllocationTimeline.push_back(std::move(Seat));
  }

  const double Dt = Opts.StepSeconds;
  const double Epoch = ArbOpts.EpochSeconds;
  double NextEpoch = Epoch;
  uint64_t TotalLeaseChanges = 0;

  // Outage bookkeeping.
  bool ArbKilled = false;
  bool ArbRestarted = false;
  std::string SnapshotJson; // taken at kill time for Snapshot restarts

  auto applyChanges = [&](const std::vector<LeaseChange> &Changes,
                          double Now) {
    TotalLeaseChanges += Changes.size();
    for (const LeaseChange &C : Changes) {
      for (TenantRuntime &T : Run) {
        if (T.Stats.Name != C.Tenant)
          continue;
        T.Granted = C.NewThreads;
        if (C.Reason == "evict") {
          // Containment: the platform kills the tenant's workers.
          T.Evicted = true;
          T.SelfFloor = false;
        } else if (C.Reason == "expire") {
          // A live tenant whose lease expired (heartbeats lost in
          // transit) shrinks itself to its floor, like a Dope executive
          // whose envelope TTL lapsed; a dead one is simply gone.
          T.SelfFloor = !T.Crashed;
        } else if (C.NewThreads > 0) {
          T.SelfFloor = false;
        }
        if (!T.Crashed && !T.Evicted)
          T.PausedUntil = Now + Opts.ReconfigPauseSeconds;
        ++T.Stats.LeaseChanges;
        refreshCurves(T);
        JournalRecord(Now,
                      C.Reason == "expire" ? TraceKind::LeaseExpire
                      : C.isGrant()        ? TraceKind::LeaseGrant
                                           : TraceKind::LeaseRevoke,
                      C.Tenant, static_cast<double>(C.NewThreads),
                      static_cast<double>(C.OldThreads), C.Reason);
      }
    }
  };

  auto restartArbiter = [&](double Now) {
    Arb = std::make_unique<Arbiter>(ArbOpts);
    bool Restored = false;
    if (Opts.Outage.Mode == ArbiterOutage::RestartMode::Snapshot) {
      std::string Err;
      const std::optional<JsonValue> Snap =
          JsonValue::parse(SnapshotJson, &Err);
      Restored = Snap.has_value() && Arb->restore(*Snap);
    }
    if (!Restored) {
      // Cold and WarmTrace paths: live tenants re-register. WarmTrace
      // then replays the host journal so the arbiter re-learns utility
      // curves and the actual holdings instead of starting from an
      // equal split; Cold really does start from the naive re-split
      // (that is the slow path warm restarts are measured against).
      const bool Warm =
          Opts.Outage.Mode == ArbiterOutage::RestartMode::WarmTrace;
      // Tenants that died during the outage are gone for good: the
      // reborn arbiter never hears of them, so release their journaled
      // leases before the survivors are seated.
      for (TenantRuntime &T : Run) {
        if ((T.Crashed || T.Evicted) && T.Granted > 0) {
          JournalRecord(Now, TraceKind::LeaseExpire, T.Stats.Name, 0.0,
                        static_cast<double>(T.Granted), "restart-gc");
          T.Granted = 0;
          refreshCurves(T);
        }
      }
      for (TenantRuntime &T : Run) {
        if (T.Crashed || T.Evicted)
          continue;
        T.Id = Arb->addTenant(T.Spec->Tenant, Now, nullptr);
        if (Warm)
          // Re-registering is itself proof of liveness; journal it so a
          // (later) warm restart and the invariant checker see it.
          JournalRecord(Now, TraceKind::Heartbeat, T.Stats.Name,
                        static_cast<double>(T.Granted), 0.0, "re-register");
      }
      if (Warm)
        Arb->warmStart(Journal);
      // Transition runtime holdings to the reborn arbiter's seats as
      // one batch, revocations first, so the hand-over never
      // overcommits the platform. Under WarmTrace the seats were
      // re-aligned with the journal and the batch is usually empty.
      std::vector<LeaseChange> Shrink, Grow;
      for (TenantRuntime &T : Run) {
        if (T.Crashed || T.Evicted)
          continue;
        const unsigned New = Arb->leaseOf(T.Id).Threads;
        if (New == T.Granted)
          continue;
        LeaseChange C;
        C.Tenant = T.Stats.Name;
        C.Time = Now;
        C.OldThreads = T.Granted;
        C.NewThreads = New;
        C.Reason = "restart";
        (New < T.Granted ? Shrink : Grow).push_back(std::move(C));
      }
      applyChanges(Shrink, Now);
      applyChanges(Grow, Now);
    }
    JournalRecord(Now, TraceKind::Fault, "arbiter", 0.0, 0.0,
                  Restored ? "restart:snapshot"
                  : Opts.Outage.Mode == ArbiterOutage::RestartMode::WarmTrace
                      ? "restart:warm-trace"
                      : "restart:cold");
    if (Trace)
      Trace->recordAt(Now, TraceKind::Fault, "arbiter-restart");
  };

  for (double Now = 0.0; Now < Opts.DurationSeconds - 1e-12; Now += Dt) {
    const double StepEnd = Now + Dt;
    const bool Measured = StepEnd > Opts.WarmupSeconds;

    // Tenant crash transitions, then the step's contention scale: when
    // misbehaving tenants occupy more contexts than exist, everyone's
    // capacity shrinks pro rata.
    unsigned TotalUsed = 0;
    for (TenantRuntime &T : Run) {
      const TenantMisbehavior &M = T.Spec->Misbehavior;
      if (!T.Crashed && M.CrashSeconds >= 0.0 && StepEnd > M.CrashSeconds) {
        T.Crashed = true;
        refreshCurves(T);
        JournalRecord(M.CrashSeconds, TraceKind::Fault, T.Stats.Name, 0.0,
                      0.0, "tenant-crash");
        if (Trace)
          Trace->recordAt(M.CrashSeconds, TraceKind::Fault,
                          "crash:" + T.Stats.Name);
      }
      TotalUsed += usedThreads(T);
    }
    const double Contention =
        TotalUsed > Opts.Contexts
            ? static_cast<double>(Opts.Contexts) / TotalUsed
            : 1.0;

    for (TenantRuntime &T : Run) {
      const ColocationTenantSpec &S = *T.Spec;

      // Arrivals over this step (users keep sending to dead tenants).
      const double Load = S.ArrivalSchedule.phaseCount() == 0
                              ? 1.0
                              : S.ArrivalSchedule.loadFactorAt(Now);
      const double Rate = S.ArrivalRate * Load;
      const uint64_t Arrived =
          Rate > 0.0 ? T.Arrivals.poisson(Rate * Dt) : 0;
      for (uint64_t A = 0; A != Arrived; ++A) {
        ++T.WindowArrived;
        if (Measured)
          ++T.Stats.Arrived;
        if (S.AdmissionLimit != 0 && T.Queue.size() >= S.AdmissionLimit) {
          if (Measured)
            ++T.Stats.Shed;
          continue;
        }
        T.Queue.push_back(Now);
      }

      // Service: fluid capacity accrues credit; whole items complete.
      const double Cap =
          (StepEnd <= T.PausedUntil ? 0.0 : T.Capacity) * Contention;
      T.ServiceCredit += Cap * Dt;
      while (T.ServiceCredit >= 1.0 && !T.Queue.empty()) {
        T.ServiceCredit -= 1.0;
        const double Arrival = T.Queue.front();
        T.Queue.pop_front();
        const double Completion = StepEnd + T.Latency;
        const double Response = Completion - Arrival;
        ++T.WindowCompleted;
        T.WindowResponses.push_back(Response);
        if (Measured) {
          ++T.Stats.Completed;
          T.Stats.Responses.recordTransaction(Arrival, StepEnd, Completion);
          if (T.Stats.SloSeconds > 0.0 && Response <= T.Stats.SloSeconds)
            ++T.Stats.SloHits;
          else if (T.Stats.SloSeconds <= 0.0)
            ++T.Stats.SloHits; // no SLO: every completion counts
        }
      }
      if (T.Queue.empty())
        T.ServiceCredit = std::min(T.ServiceCredit, 1.0);

      T.Stats.ThreadSeconds += usedThreads(T) * Dt;
    }

    // Epoch boundary: telemetry in, leases out.
    if (StepEnd + 1e-12 >= NextEpoch) {
      // Arbiter outage transitions happen on the boundary, before any
      // reporting: a killed arbiter hears nothing this epoch.
      if (Opts.Policy == ColocationPolicy::Arbiter &&
          Opts.Outage.enabled()) {
        if (!ArbKilled && NextEpoch + 1e-12 >= Opts.Outage.KillSeconds) {
          SnapshotJson = Arb->snapshot().dump();
          Arb.reset();
          ArbKilled = true;
          JournalRecord(NextEpoch, TraceKind::Fault, "arbiter", 0.0, 0.0,
                        "kill");
          if (Trace)
            Trace->recordAt(NextEpoch, TraceKind::Fault, "arbiter-kill");
        }
        if (ArbKilled && !ArbRestarted && Opts.Outage.RestartSeconds >= 0.0 &&
            NextEpoch + 1e-12 >= Opts.Outage.RestartSeconds) {
          restartArbiter(NextEpoch);
          ArbRestarted = true;
        }
      }
      const bool ArbUp =
          Opts.Policy == ColocationPolicy::Arbiter && Arb != nullptr;

      for (TenantRuntime &T : Run) {
        const TenantMisbehavior &M = T.Spec->Misbehavior;
        if (Opts.Policy == ColocationPolicy::Arbiter) {
          TenantSample Sample;
          Sample.Time = NextEpoch;
          Sample.GrantedThreads = usedThreads(T);
          Sample.Throughput =
              static_cast<double>(T.WindowCompleted) / Epoch;
          Sample.OfferedRate = static_cast<double>(T.WindowArrived) / Epoch;
          Sample.P95ResponseSeconds = percentileOf(T.WindowResponses, 0.95);
          Sample.QueueDepth = static_cast<double>(T.Queue.size());
          if (M.byzantineAt(NextEpoch)) {
            Sample.Throughput *= M.ReportedRateFactor;
            Sample.OfferedRate *= M.ReportedRateFactor;
            if (M.NonMonotoneClock && (T.EpochIndex & 1))
              Sample.Time = NextEpoch - 1.5 * Epoch;
          }
          bool Sent = !T.Crashed && !T.Evicted && !M.silentAt(NextEpoch);
          if (Sent && Opts.Faults && Opts.Faults->dropHeartbeat())
            Sent = false;
          if (Sent)
            // The host journals every report the tenant emits, even
            // while the arbiter is down — this is what a WarmTrace
            // restart replays.
            JournalRecord(Sample.Time, TraceKind::Heartbeat, T.Stats.Name,
                          static_cast<double>(Sample.GrantedThreads),
                          Sample.Throughput,
                          Sample.OfferedRate > Sample.Throughput ||
                                  Sample.QueueDepth > 0.0
                              ? "saturated"
                              : "");
          if (Sent && ArbUp)
            Arb->reportSample(T.Id, Sample);
        }
        if (Trace) {
          Trace->recordAt(NextEpoch, TraceKind::Counter,
                          "threads:" + T.Stats.Name,
                          static_cast<double>(T.Granted));
          Trace->recordAt(NextEpoch, TraceKind::Counter,
                          "queue:" + T.Stats.Name,
                          static_cast<double>(T.Queue.size()));
        }
        T.WindowArrived = 0;
        T.WindowCompleted = 0;
        T.WindowResponses.clear();
        ++T.EpochIndex;
      }

      if (ArbUp)
        applyChanges(Arb->rebalance(NextEpoch), NextEpoch);

      if (Opts.Policy == ColocationPolicy::Arbiter) {
        AllocationSample Alloc;
        Alloc.Time = NextEpoch;
        for (const TenantRuntime &T : Run)
          Alloc.Granted.push_back(T.Granted);
        Result.AllocationTimeline.push_back(std::move(Alloc));
      }
      NextEpoch += Epoch;
    }
  }

  Result.DurationSeconds = Opts.DurationSeconds;
  Result.LeaseChanges = TotalLeaseChanges;
  for (TenantRuntime &T : Run)
    Result.Tenants.push_back(std::move(T.Stats));
  Result.Fairness = summarizeTenants(Result.Tenants);
  return Result;
}

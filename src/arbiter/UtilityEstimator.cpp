//===- arbiter/UtilityEstimator.cpp - Marginal utility of threads --------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arbiter/UtilityEstimator.h"

#include <algorithm>

using namespace dope;

void UtilityEstimator::observe(unsigned Threads, double Rate) {
  if (Threads == 0 || Rate <= 0.0)
    return;
  auto It = Observed.find(Threads);
  if (It == Observed.end())
    Observed.emplace(Threads, Rate);
  else
    It->second = (1.0 - Smoothing) * It->second + Smoothing * Rate;
  Dirty = true;
}

void UtilityEstimator::setObservation(unsigned Threads, double Rate) {
  if (Threads == 0 || Rate <= 0.0)
    return;
  Observed[Threads] = Rate;
  Dirty = true;
}

const SpeedupCurveFit &UtilityEstimator::fit() const {
  if (Dirty) {
    std::vector<SpeedupSample> Samples;
    Samples.reserve(Observed.size());
    for (const auto &[Extent, Rate] : Observed)
      Samples.push_back({Extent, Rate});
    Fit = fitSpeedupCurve(Samples);
    Dirty = false;
  }
  return Fit;
}

double UtilityEstimator::predictRate(unsigned Threads) const {
  if (Threads == 0)
    return 0.0;
  return fit().predictRate(Threads);
}

double UtilityEstimator::marginalRate(unsigned Threads) const {
  const double Gain = predictRate(Threads + 1) - predictRate(Threads);
  return std::max(0.0, Gain);
}

void UtilityEstimator::reset() {
  Observed.clear();
  Fit = SpeedupCurveFit();
  Dirty = true;
}

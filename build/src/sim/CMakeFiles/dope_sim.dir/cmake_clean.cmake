file(REMOVE_RECURSE
  "CMakeFiles/dope_sim.dir/EventQueue.cpp.o"
  "CMakeFiles/dope_sim.dir/EventQueue.cpp.o.d"
  "CMakeFiles/dope_sim.dir/NestServerSim.cpp.o"
  "CMakeFiles/dope_sim.dir/NestServerSim.cpp.o.d"
  "CMakeFiles/dope_sim.dir/PipelineSim.cpp.o"
  "CMakeFiles/dope_sim.dir/PipelineSim.cpp.o.d"
  "CMakeFiles/dope_sim.dir/PowerModel.cpp.o"
  "CMakeFiles/dope_sim.dir/PowerModel.cpp.o.d"
  "libdope_sim.a"
  "libdope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dope_explore.dir/dope_explore.cpp.o"
  "CMakeFiles/dope_explore.dir/dope_explore.cpp.o.d"
  "dope_explore"
  "dope_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- sim/NestServerSim.h - Two-level nest server simulation --*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discrete-event simulation of the paper's motivating server scenario
/// (Sec. 2, Fig. 1): user transactions arrive in a Poisson stream into a
/// work queue; the outer loop processes up to DoP_outer transactions
/// concurrently; each transaction is served with inner DoP extent m,
/// taking T1 / S(m) seconds on the simulated C-context platform.
///
/// The simulation drives real Mechanism objects (WQT-H, WQ-Linear,
/// statics) through the standard snapshot interface at a fixed decision
/// cadence, charges a pause for every applied reconfiguration, and
/// reports the Fig. 2 metrics: per-transaction execution time,
/// system throughput, and end-user response time
/// (T_response = wait-in-queue + T_exec, Eqn. 1).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_NESTSERVERSIM_H
#define DOPE_SIM_NESTSERVERSIM_H

#include "core/Mechanism.h"
#include "core/Task.h"
#include "metrics/ResponseStats.h"
#include "metrics/TimeSeries.h"
#include "sim/EventQueue.h"
#include "support/SpeedupCurve.h"
#include "support/MovingAverage.h"
#include "support/Random.h"
#include "support/Trace.h"
#include "workload/Arrivals.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

namespace dope {

/// Scalability model of one application's transaction (inner loop).
struct NestAppModel {
  std::string Name = "app";
  /// T1: sequential service time of one transaction, in seconds.
  double SeqServiceSeconds = 1.0;
  /// S(m): inner-parallelization speedup curve.
  SpeedupCurve Curve;
  /// Coefficient of variation of per-transaction service time.
  double ServiceCv = 0.2;
};

/// Simulation options.
struct NestSimOptions {
  /// Hardware contexts of the simulated platform (paper: 24).
  unsigned Contexts = 24;
  /// Offered load as a fraction of the platform's maximum sustainable
  /// throughput C / T1 (the paper's "average system load factor").
  double LoadFactor = 0.5;
  /// Optional time-varying load schedule. When non-empty it overrides
  /// LoadFactor: the instantaneous arrival rate follows
  /// Trace.loadFactorAt(now) * maxThroughput(). This drives the
  /// light/heavy swings ("periods of heavier and lighter load",
  /// Sec. 8.2.1) that the hysteresis mechanisms are designed to ride.
  LoadTrace Trace;
  /// Transactions to simulate (the paper used N = 500).
  uint64_t NumTransactions = 500;
  /// Seed for arrivals and service jitter.
  uint64_t Seed = 42;
  /// Cadence of mechanism decisions.
  double DecisionIntervalSeconds = 0.25;
  /// Pause charged when a reconfiguration is applied (suspend + drain +
  /// respawn).
  double ReconfigPauseSeconds = 0.02;
  /// Slowdown exponent applied when the configuration oversubscribes the
  /// platform (k * m > C): service inflates by (k*m/C)^(1+Penalty).
  double OversubscribePenalty = 0.25;
  /// Transactions excluded from statistics at the start (warm-up).
  uint64_t WarmupTransactions = 0;
  /// Safety bound on virtual time.
  double MaxSimSeconds = 1e6;
  /// Structured tracer recording work-queue depth, mechanism decisions,
  /// and reconfigurations in virtual time; null disables tracing. During
  /// run() the tracer's clock is retargeted to the simulator's virtual
  /// clock (and restored afterwards). Named TraceSink because Trace above
  /// is the load schedule.
  Tracer *TraceSink = nullptr;
  /// Also emit TaskBegin/TaskEnd records for every transaction service
  /// (Name = app task, A = transaction id). Off by default: instance
  /// records are per-transaction and dominate trace volume; the what-if
  /// profiler turns them on to reconstruct the spawn DAG.
  bool TraceTaskInstances = false;
};

/// Results of one simulated run.
struct NestSimResult {
  ResponseStats Stats;
  uint64_t Reconfigurations = 0;
  /// Inner-extent decisions over time, for traces.
  TimeSeries InnerExtentTrace{"inner-extent"};
  /// Total virtual time of the run.
  double TotalSeconds = 0.0;
  /// Completed transactions per second over the whole run.
  double Throughput = 0.0;
};

/// The simulator. One instance can run many experiments; each run is
/// deterministic given the options' seed.
class NestServerSim {
public:
  NestServerSim(NestAppModel App, NestSimOptions Opts);

  /// Runs the workload under \p Mech (nullptr = keep the initial static
  /// configuration <InitialOuter, InitialInner> forever).
  NestSimResult run(Mechanism *Mech, unsigned InitialOuter,
                    unsigned InitialInner);

  /// The arrival rate implied by the options (transactions/second).
  double arrivalRate() const;

  /// Maximum sustainable throughput per the paper's definition: all
  /// contexts serving sequential transactions, C / T1.
  double maxThroughput() const;

  const NestAppModel &app() const { return App; }
  const ParDescriptor *rootRegion() const { return Root; }

private:
  struct Job {
    double ArrivalTime = 0.0;
    double StartTime = 0.0;
    unsigned InnerExtent = 1;
    /// Arrival-order transaction id, stamped into TaskBegin/TaskEnd
    /// instance records.
    uint64_t Id = 0;
  };

  /// Builds the model task graph the mechanisms navigate.
  void buildGraph();

  NestAppModel App;
  NestSimOptions Opts;

  TaskGraph Graph;
  ParDescriptor *Root = nullptr;
  Task *OuterTask = nullptr;
  Task *InnerTask = nullptr;
};

} // namespace dope

#endif // DOPE_SIM_NESTSERVERSIM_H

//===- core/Types.h - Fundamental DoPE types ------------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental enumerations of the DoPE API, mirroring Figure 3 of the
/// paper: task status (EXECUTING | SUSPENDED | FINISHED), task type
/// (SEQ | PAR), and the kinds of parallelism a configuration can select
/// (sequential, DOALL, pipeline).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_TYPES_H
#define DOPE_CORE_TYPES_H

#include <string>

namespace dope {

/// Status returned by task functors and by Task::begin/end/wait
/// (paper: TaskStatus = EXECUTING | SUSPENDED | FINISHED). FAILED is this
/// reproduction's extension of the paper's enum: the executive converts a
/// throwing functor into a recorded failure that propagates out of
/// Task::wait / Dope::wait instead of terminating the process.
enum class TaskStatus {
  /// The loop continues; the functor will be invoked again.
  Executing,
  /// DoPE intends to reconfigure; the task should reach a globally
  /// consistent state and stop.
  Suspended,
  /// The loop exit branch was taken; the task is done.
  Finished,
  /// The task failed permanently (functor threw and exhausted its retry
  /// policy, or reported failure explicitly); the run winds down and the
  /// cause is available from Dope::failure().
  Failed,
};

/// Task type (paper: TaskType = SEQ | PAR). A sequential task's functor is
/// executed by exactly one thread; a parallel task's functor may be
/// invoked concurrently by several threads.
enum class TaskKind {
  Sequential,
  Parallel,
};

/// The type of parallelism a loop parallelization exploits. Used in
/// configuration descriptions, e.g. <(24, DOALL), (1, SEQ)> from Sec. 2.
/// Tree is this reproduction's extension beyond the paper's stage-graph
/// kinds: a recursive divide-and-conquer task region executed over
/// work-stealing deques, whose configuration carries a grain size next
/// to the extent.
enum class ParKind {
  Seq,
  DoAll,
  Pipe,
  Tree,
};

/// Returns a short printable name ("EXECUTING", "SEQ", "PIPE", ...).
std::string toString(TaskStatus Status);
std::string toString(TaskKind Kind);
std::string toString(ParKind Kind);

/// A degree of parallelism: type and extent, e.g. (8, PIPE).
struct Dop {
  unsigned Extent = 1;
  ParKind Kind = ParKind::Seq;

  bool operator==(const Dop &Other) const = default;
};

/// Renders "(8, PIPE)".
std::string toString(const Dop &D);

} // namespace dope

#endif // DOPE_CORE_TYPES_H

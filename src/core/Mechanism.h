//===- core/Mechanism.h - Parallelism adaptation mechanisms ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mechanism-developer face of DoPE (Sec. 5 of the paper). A mechanism
/// is an optimization routine that takes an objective (encoded by which
/// mechanism the administrator selects), a set of constraints (threads,
/// power), and monitored application/platform features, and determines the
/// optimal parallelism configuration:
///
///   ParDescriptor *Mechanism::reconfigureParallelism(ParDescriptor *pd,
///                                                    int nthreads);
///
/// Here the signature is value-oriented: mechanisms receive a read-only
/// RegionSnapshot (metrics + structure) and the currently running
/// RegionConfig, and return the configuration to switch to. Returning the
/// current configuration (or std::nullopt) means "no change"; the
/// executive only triggers the suspend/quiesce protocol on a change.
///
/// Both the native executive (core/Dope.h) and the discrete-event platform
/// simulator (sim/) drive mechanisms through this one interface, so the
/// same mechanism code is exercised in unit tests, native runs, and the
/// paper-scale simulated experiments.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_MECHANISM_H
#define DOPE_CORE_MECHANISM_H

#include "core/Config.h"
#include "core/FeatureRegistry.h"
#include "core/Monitor.h"
#include "core/WarmStart.h"
#include "support/Trace.h"

#include <optional>
#include <string>

namespace dope {

/// Constraint and environment information passed to a mechanism at every
/// reconfiguration opportunity.
struct MechanismContext {
  /// Maximum number of hardware threads available (administrator
  /// constraint "with N threads").
  unsigned MaxThreads = 1;

  /// Power budget in watts; <= 0 means unconstrained.
  double PowerBudgetWatts = 0.0;

  /// Platform features (power, temperature, ...), may be null.
  const FeatureRegistry *Features = nullptr;

  /// Current time in seconds (monotonic native clock or virtual simulator
  /// clock).
  double NowSeconds = 0.0;

  /// Tracer recording decision inputs, may be null. When set, every
  /// feature() read is recorded as a FeatureRead so a trace shows exactly
  /// which features a mechanism consulted for each decision.
  Tracer *Trace = nullptr;

  /// Convenience: reads a platform feature, with \p Fallback when absent.
  double feature(const std::string &Name, double Fallback = 0.0) const {
    double Result = Fallback;
    if (Features) {
      if (std::optional<double> Value = Features->getValue(Name, NowSeconds))
        Result = *Value;
    }
    if (Trace)
      Trace->recordAt(NowSeconds, TraceKind::FeatureRead, Name, Result);
    return Result;
  }

  /// The thread budget mechanisms should plan against: the administrator
  /// constraint MaxThreads shrunk by contexts the platform reports lost
  /// (the "LiveContexts" feature, registered by the executive and by the
  /// simulator's fault injector). Falls back to MaxThreads when the
  /// feature is absent; always in [1, MaxThreads]. Mechanisms that size
  /// configurations with effectiveThreads() re-plan around core loss with
  /// no other fault-specific logic.
  unsigned effectiveThreads() const {
    const double Live = feature("LiveContexts", static_cast<double>(MaxThreads));
    if (!(Live >= 1.0))
      return 1;
    if (Live >= static_cast<double>(MaxThreads))
      return MaxThreads;
    return static_cast<unsigned>(Live);
  }
};

/// Base class for all parallelism adaptation mechanisms.
class Mechanism {
public:
  virtual ~Mechanism();

  /// Short identifier, e.g. "WQT-H", "TBF".
  virtual std::string name() const = 0;

  /// Computes the configuration to run next.
  ///
  /// \p Root is the monitored snapshot of the root parallel region,
  /// \p Current the configuration currently executing, and \p Ctx the
  /// constraints. Returns std::nullopt or a configuration equal to
  /// \p Current to keep running unchanged.
  virtual std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx) = 0;

  /// Clears adaptation state (hysteresis counters, hill-climbing history).
  /// A mechanism holding a warm-start hint re-applies it here: restarts
  /// begin at the hinted configuration, not the cold default.
  virtual void reset() {}

  /// Installs an offline-derived starting configuration (see
  /// core/WarmStart.h). Supporting mechanisms jump to the hinted
  /// configuration at the next (re)start and fall back to normal
  /// adaptation from there; a hint that names a different mechanism or is
  /// structurally infeasible is ignored. Default: ignore all hints.
  virtual void seedWarmStart(const WarmStartHint &Hint) { (void)Hint; }

protected:
  Mechanism() = default;
};

} // namespace dope

#endif // DOPE_CORE_MECHANISM_H

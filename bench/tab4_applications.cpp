//===- bench/tab4_applications.cpp - Table 4 reproduction ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 4: the applications enhanced using DoPE, the port
/// effort, the exposed loop nesting levels, and the inner DoPmin. The
/// effort numbers are transcribed from the paper (they describe the
/// original Pthreads codes); the DoPmin and nesting columns are verified
/// against this repository's calibrated application models.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/AppRegistry.h"
#include "apps/NestApps.h"
#include "apps/PipelineApps.h"

#include <cstdio>

using namespace dope;
using namespace dope::bench;

int main(int Argc, char **Argv) {
  OptionParser Options("Table 4: applications enhanced using DoPE");
  addCommonOptions(Options);
  parseOrExit(Options, Argc, Argv);
  const bool Csv = Options.getFlag("csv");

  Table T({"application", "description", "added", "modified", "deleted",
           "fused", "total", "nesting", "DoPmin"});
  for (const AppInfo &Info : appRegistry()) {
    T.addRow({Info.Name, Info.Description, Table::formatInt(Info.LocAdded),
              Table::formatInt(Info.LocModified),
              Table::formatInt(Info.LocDeleted),
              Info.LocFused ? Table::formatInt(Info.LocFused) : "-",
              Table::formatInt(Info.LocTotal),
              Table::formatInt(Info.NestingLevels),
              Info.InnerDopMin ? Table::formatInt(Info.InnerDopMin) : "-"});
  }
  emitTable("Table 4: applications enhanced using DoPE", T, Csv);

  bool Ok = true;

  // Cross-check DoPmin of the calibrated models against the registry.
  for (const NestAppBundle &App : allNestApps()) {
    const AppInfo *Info = findApp(App.Model.Name);
    if (!Info)
      continue;
    const unsigned ModelDopMin = App.Model.Curve.dopMin();
    Ok &= checkShape(ModelDopMin == Info->InnerDopMin,
                     App.Model.Name + ": model DoPmin (" +
                         Table::formatInt(ModelDopMin) +
                         ") matches Table 4 (" +
                         Table::formatInt(Info->InnerDopMin) + ")");
  }

  // The batch pipelines are one-level nests with fused variants.
  for (const PipelineAppModel &App : allPipelineApps()) {
    const AppInfo *Info = findApp(App.Name);
    Ok &= checkShape(Info && Info->NestingLevels == 1 &&
                         Info->LocFused > 0 && !App.FusedStages.empty(),
                     App.Name + ": one nesting level with a registered "
                                "fused task variant");
  }
  return Ok ? 0 : 1;
}

//===- support/Random.h - Deterministic random number generation -*- C++ -*-==//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used by the workload
/// generators and the discrete-event simulator. We avoid std::mt19937 so
/// that streams are reproducible across standard library implementations.
///
/// The generator is xoshiro256**, seeded through splitmix64, following the
/// reference implementations by Blackman and Vigna (public domain).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_RANDOM_H
#define DOPE_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace dope {

/// Expands a 64-bit seed into a well-distributed stream; used for seeding.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** 1.0 — the project-wide PRNG.
///
/// All stochastic behaviour in the repository (arrival processes, service
/// time jitter, mechanism exploration tie-breaking) flows through this
/// class so experiments are reproducible given a seed.
class Rng {
public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [0, N). \p N must be > 0.
  uint64_t uniformInt(uint64_t N);

  /// Samples an exponential distribution with the given rate (1/mean).
  /// Used for Poisson inter-arrival times. \p Rate must be > 0.
  double exponential(double Rate);

  /// Samples a normal distribution via Box-Muller.
  double normal(double Mean, double Stddev);

  /// Samples a log-normal distribution parameterized by the mean and
  /// coefficient of variation of the *resulting* distribution. Service
  /// times in the simulator use this shape.
  double logNormal(double Mean, double Cv);

  /// Samples a Poisson-distributed count with the given mean (Knuth for
  /// small means, normal approximation for large ones).
  uint64_t poisson(double Mean);

  /// Creates an independent generator stream derived from this one.
  Rng split();

private:
  uint64_t State[4];
};

/// The one logged-seed helper shared by every randomized test and
/// harness: returns \p Default unless the DOPE_TEST_SEED environment
/// variable overrides it, and prints the seed in gtest style
/// ("[   SEED   ] <seed> (override with DOPE_TEST_SEED)") so a failing
/// randomized run can always be reproduced.
uint64_t loggedTestSeed(uint64_t Default);

} // namespace dope

#endif // DOPE_SUPPORT_RANDOM_H

//===- core/Monitor.h - Application feature monitoring --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-task metric accumulation and the snapshot structures handed to
/// mechanisms. The executive records the time between Task::begin and
/// Task::end for every instance of every task ("even for monitoring each
/// and every instance of all the parallel tasks" the paper measures < 1%
/// overhead) and samples LoadCB callbacks.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_MONITOR_H
#define DOPE_CORE_MONITOR_H

#include "core/Task.h"
#include "core/Types.h"
#include "support/MovingAverage.h"
#include "support/ThreadAnnotations.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dope {

/// Thread-safe accumulator of one task's monitored features.
class TaskMetrics {
public:
  explicit TaskMetrics(double EmaAlpha = 0.25)
      : ExecTimeEma(EmaAlpha), LoadEma(EmaAlpha) {}

  /// Records one begin..end interval in seconds.
  void recordExecTime(double Seconds) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ExecTimeEma.addSample(Seconds);
    ++InvocationCount;
    TotalBusySeconds += Seconds;
  }

  /// Records a window of \p Count begin..end intervals totalling
  /// \p TotalSeconds in one lock acquisition. Replica threads accumulate
  /// locally and flush here on epoch boundaries, so the shared mutex is
  /// taken once per window instead of once per task instance.
  void recordExecTimeBatch(uint64_t Count, double TotalSeconds) {
    if (Count == 0)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    ExecTimeEma.addBatch(Count, TotalSeconds / static_cast<double>(Count));
    InvocationCount += Count;
    TotalBusySeconds += TotalSeconds;
  }

  /// Records a load sample (LoadCB value).
  void recordLoad(double Load) {
    std::lock_guard<std::mutex> Lock(Mutex);
    LoadEma.addSample(Load);
    LastLoad = Load;
  }

  /// Smoothed per-instance execution time in seconds (0 before any data).
  double execTime() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return ExecTimeEma.value();
  }

  /// Smoothed load.
  double load() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return LoadEma.value();
  }

  /// Most recent raw load sample.
  double lastLoad() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return LastLoad;
  }

  uint64_t invocations() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return InvocationCount;
  }

  double totalBusySeconds() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return TotalBusySeconds;
  }

  void reset() {
    std::lock_guard<std::mutex> Lock(Mutex);
    ExecTimeEma.reset();
    LoadEma.reset();
    InvocationCount = 0;
    TotalBusySeconds = 0.0;
    LastLoad = 0.0;
  }

private:
  mutable std::mutex Mutex;
  Ema ExecTimeEma DOPE_GUARDED_BY(Mutex);
  Ema LoadEma DOPE_GUARDED_BY(Mutex);
  uint64_t InvocationCount DOPE_GUARDED_BY(Mutex) = 0;
  double TotalBusySeconds DOPE_GUARDED_BY(Mutex) = 0.0;
  double LastLoad DOPE_GUARDED_BY(Mutex) = 0.0;
};

struct RegionSnapshot;

/// A task's monitored features plus its descriptor structure, as seen by a
/// mechanism at reconfiguration time.
struct TaskSnapshot {
  unsigned TaskId = 0;
  std::string Name;
  TaskKind Kind = TaskKind::Sequential;

  /// Smoothed per-instance execution time (seconds). For simulated tasks,
  /// the simulator fills the same field, so mechanisms are agnostic.
  double ExecTime = 0.0;
  /// Smoothed load (e.g. in-queue occupancy).
  double Load = 0.0;
  /// Raw most-recent load sample.
  double LastLoad = 0.0;
  /// Instances completed since the last reset.
  uint64_t Invocations = 0;
  /// Items per second currently flowing through the task, aggregated over
  /// its replicas (Extent / ExecTime when ExecTime > 0).
  double Throughput = 0.0;
  /// The extent the task is currently running at.
  unsigned CurrentExtent = 1;
  /// Index of the currently active inner alternative, -1 when none.
  int ActiveAlt = -1;

  /// Structure (and metrics, where the alternative has executed) of every
  /// inner alternative, mirroring TaskDescriptor::alternatives().
  std::vector<RegionSnapshot> InnerAlternatives;
};

/// Snapshot of a parallel region: one TaskSnapshot per task, in descriptor
/// order (index 0 is the master task).
struct RegionSnapshot {
  std::vector<TaskSnapshot> Tasks;
};

} // namespace dope

#endif // DOPE_CORE_MONITOR_H

# Empty compiler generated dependencies file for fig2_transcode.
# This may be replaced when dependencies are built.

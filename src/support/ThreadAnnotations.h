//===- support/ThreadAnnotations.h - Clang thread-safety macros -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wrappers over clang's thread-safety analysis attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under clang
/// the macros expand to the capability attributes and the analysis is
/// enabled with -Wthread-safety (the CMake option DOPE_THREAD_SAFETY=ON
/// turns it into an error; full analysis of std::mutex / std::lock_guard
/// requires libc++ with _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS, which
/// the option defines). Under every other compiler the macros expand to
/// nothing, so the annotations double as checked documentation: the
/// GUARDED_BY / REQUIRES contract is visible at the declaration even
/// where the analysis cannot run.
///
/// Convention in this codebase:
///  - every mutex-guarded member carries DOPE_GUARDED_BY(TheMutex);
///  - private helpers called with a lock already held carry
///    DOPE_REQUIRES(TheMutex) instead of re-locking;
///  - relaxed-atomic mirrors of guarded state (the lock-free monitoring
///    pattern, DESIGN.md §11) are deliberately *not* guarded — they are
///    safe to read without the lock by construction.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_THREADANNOTATIONS_H
#define DOPE_SUPPORT_THREADANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define DOPE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DOPE_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/// Marks a type as a capability (a mutex-like object).
#define DOPE_CAPABILITY(x) DOPE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability for its lifetime.
#define DOPE_SCOPED_CAPABILITY DOPE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define DOPE_GUARDED_BY(x) DOPE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define DOPE_PT_GUARDED_BY(x) DOPE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held (and does not
/// release it).
#define DOPE_REQUIRES(...) \
  DOPE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capability held in shared mode.
#define DOPE_REQUIRES_SHARED(...) \
  DOPE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define DOPE_ACQUIRE(...) \
  DOPE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define DOPE_RELEASE(...) \
  DOPE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns the given value.
#define DOPE_TRY_ACQUIRE(...) \
  DOPE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the capability
/// (deadlock prevention).
#define DOPE_EXCLUDES(...) DOPE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define DOPE_RETURN_CAPABILITY(x) DOPE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use with a
/// comment explaining why the access pattern is safe.
#define DOPE_NO_THREAD_SAFETY_ANALYSIS \
  DOPE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // DOPE_SUPPORT_THREADANNOTATIONS_H

//===- apps/RecursiveApps.cpp - Native recursive-tree examples -------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/RecursiveApps.h"

#include "core/TaskTree.h"
#include "support/Random.h"

#include <algorithm>
#include <memory>
#include <thread>

using namespace dope;

namespace {

/// Drives \p Engine to completion with \p Workers raw threads (worker 0
/// runs on the calling thread).
void driveToCompletion(TreeEngine &Engine, unsigned Workers, unsigned Grain) {
  std::vector<std::thread> Threads;
  Threads.reserve(Workers > 0 ? Workers - 1 : 0);
  for (unsigned W = 1; W < Workers; ++W)
    Threads.emplace_back([&Engine, W, Grain] { Engine.runWorker(W, Grain); });
  Engine.runWorker(0, Grain);
  for (std::thread &T : Threads)
    T.join();
}

/// Hoare partition of A[Lo, Hi) around a median-of-three pivot. Returns
/// a split S in (Lo, Hi): every element of [Lo, S) is <= every element
/// of [S, Hi), and both sides are non-empty, so recursion always makes
/// progress. Requires Hi - Lo >= 2.
uint64_t hoarePartition(std::vector<uint32_t> &A, uint64_t Lo, uint64_t Hi) {
  const uint32_t X = A[Lo];
  const uint32_t Y = A[Lo + (Hi - Lo) / 2];
  const uint32_t Z = A[Hi - 1];
  const uint32_t Pivot =
      std::max(std::min(X, Y), std::min(std::max(X, Y), Z));
  int64_t I = static_cast<int64_t>(Lo) - 1;
  int64_t J = static_cast<int64_t>(Hi);
  for (;;) {
    do
      ++I;
    while (A[static_cast<uint64_t>(I)] < Pivot);
    do
      --J;
    while (A[static_cast<uint64_t>(J)] > Pivot);
    if (I >= J)
      break;
    std::swap(A[static_cast<uint64_t>(I)], A[static_cast<uint64_t>(J)]);
  }
  uint64_t S = static_cast<uint64_t>(J) + 1;
  // S == Hi only when A[Hi-1] is the unique maximum (== pivot): peel it
  // off as its own right side to keep both partitions non-empty.
  if (S >= Hi)
    S = Hi - 1;
  return S;
}

uint64_t mixScore(uint64_t Seed, uint64_t Node) {
  uint64_t Z = Seed ^ (Node * 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

constexpr uint64_t MatchMask = 0x3f; // score & mask == 0 ~ 1/64 of nodes

/// Per-worker accumulator, cache-line separated: the reductions are
/// commutative, so lock-free per-worker accumulation stays exact.
struct alignas(64) SearchCell {
  uint64_t Matches = 0;
  uint64_t BestScore = ~0ull;
  uint64_t BestNode = 0;

  void visit(uint64_t Node, uint64_t Score) {
    if ((Score & MatchMask) == 0)
      ++Matches;
    if (Score < BestScore || (Score == BestScore && Node < BestNode)) {
      BestScore = Score;
      BestNode = Node;
    }
  }
};

/// Number of nodes in the subtree rooted at \p Node of a complete
/// binary tree whose node ids are < 2^Depth.
uint64_t subtreeNodes(uint64_t Node, unsigned Depth) {
  unsigned Level = 0;
  while ((Node >> (Level + 1)) != 0)
    ++Level;
  return (uint64_t(1) << (Depth - Level)) - 1;
}

/// Sequential DFS over the subtree at \p Node.
void searchSubtree(uint64_t Node, unsigned Depth, uint64_t Seed,
                   SearchCell &Cell) {
  const uint64_t Limit = uint64_t(1) << Depth;
  if (Node >= Limit)
    return;
  Cell.visit(Node, mixScore(Seed, Node));
  searchSubtree(2 * Node, Depth, Seed, Cell);
  searchSubtree(2 * Node + 1, Depth, Seed, Cell);
}

} // namespace

std::vector<uint32_t> dope::makeSortInput(size_t N, uint64_t Seed) {
  std::vector<uint32_t> Data(N);
  SplitMix64 Rng(Seed);
  for (size_t I = 0; I != N; ++I)
    Data[I] = static_cast<uint32_t>(Rng.next());
  return Data;
}

void dope::parallelQuicksort(std::vector<uint32_t> &Data, unsigned Workers,
                             unsigned Grain, uint64_t Seed) {
  if (Data.size() < 2)
    return;
  TreeEngine::Options Opts;
  Opts.MaxWorkers = std::max(1u, Workers);
  Opts.Seed = Seed;
  Opts.AutoSplit = false; // split points are data-dependent
  Opts.Name = "quicksort";
  TreeEngine Engine(Opts);
  std::vector<uint32_t> *A = &Data;
  Engine.setBody([A](TreeContext &Ctx, uint64_t Lo, uint64_t Hi) {
    const uint64_t G = std::max(1u, Ctx.grain());
    while (Hi - Lo > G) {
      const uint64_t S = hoarePartition(*A, Lo, Hi);
      // Fork the larger partition (the biggest subtree, which is what
      // thieves want) and keep refining the smaller one here.
      if (S - Lo >= Hi - S) {
        Ctx.spawn(Lo, S);
        Lo = S;
      } else {
        Ctx.spawn(S, Hi);
        Hi = S;
      }
    }
    std::sort(A->begin() + static_cast<ptrdiff_t>(Lo),
              A->begin() + static_cast<ptrdiff_t>(Hi));
  });
  Engine.submit(0, Data.size());
  Engine.close();
  driveToCompletion(Engine, Opts.MaxWorkers, std::max(1u, Grain));
}

TreeSearchResult dope::parallelTreeSearch(unsigned Depth, uint64_t Seed,
                                          unsigned Workers, unsigned Grain) {
  TreeSearchResult Result;
  if (Depth == 0 || Depth > 31)
    return Result;
  TreeEngine::Options Opts;
  Opts.MaxWorkers = std::max(1u, Workers);
  Opts.Seed = Seed ^ 0x5851f42d4c957f2dull;
  Opts.AutoSplit = false; // descend-and-fork recursion
  Opts.Name = "tree-search";
  TreeEngine Engine(Opts);
  std::vector<SearchCell> Cells(Opts.MaxWorkers);
  SearchCell *CellData = Cells.data();
  Engine.setBody([CellData, Depth, Seed](TreeContext &Ctx, uint64_t Lo,
                                         uint64_t /*Hi*/) {
    // The item is a subtree root (packed as [Node, Node+1)). Descend the
    // right spine, forking each left child's subtree, until the
    // remaining subtree fits the grain and runs sequentially.
    SearchCell &Cell = CellData[Ctx.worker()];
    const uint64_t G = std::max(1u, Ctx.grain());
    uint64_t Node = Lo;
    while (subtreeNodes(Node, Depth) > G) {
      Cell.visit(Node, mixScore(Seed, Node));
      Ctx.spawn(2 * Node, 2 * Node + 1);
      Node = 2 * Node + 1;
    }
    searchSubtree(Node, Depth, Seed, Cell);
  });
  Engine.submit(1, 2); // the root node
  Engine.close();
  driveToCompletion(Engine, Opts.MaxWorkers, std::max(1u, Grain));

  for (const SearchCell &Cell : Cells) {
    if (Cell.BestNode == 0)
      continue; // worker never ran a task
    Result.Matches += Cell.Matches;
    if (Cell.BestScore < Result.BestScore ||
        (Cell.BestScore == Result.BestScore &&
         Cell.BestNode < Result.BestNode)) {
      Result.BestScore = Cell.BestScore;
      Result.BestNode = Cell.BestNode;
    }
  }
  return Result;
}

TreeSearchResult dope::sequentialTreeSearch(unsigned Depth, uint64_t Seed) {
  TreeSearchResult Result;
  if (Depth == 0 || Depth > 31)
    return Result;
  SearchCell Cell;
  searchSubtree(1, Depth, Seed, Cell);
  Result.Matches = Cell.Matches;
  Result.BestScore = Cell.BestScore;
  Result.BestNode = Cell.BestNode;
  return Result;
}

//===- bench/fig12_ferret_response.cpp - Figure 12 reproduction ------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 12: ferret response time vs. load under
///
///   * a static even distribution (<1, 6, 6, 5, 5, 1>, PIPE) of the 24
///     hardware threads,
///   * static oversubscription ((<1, 24, 24, 24, 24, 1>, PIPE) — 24
///     threads for every parallel task, OS-balanced),
///   * DoPE (thread allocation proportional to stage load/exec time).
///
/// Expected shape: oversubscribing improves on the even static; DoPE's
/// balanced allocation achieves a much better characteristic than both.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/PipelineApps.h"
#include "mechanisms/Tbf.h"
#include "sim/PipelineSim.h"

#include <cstdio>
#include <vector>

using namespace dope;
using namespace dope::bench;

int main(int Argc, char **Argv) {
  OptionParser Options("Figure 12: ferret response time vs load under "
                       "static even, static oversubscribed, and DoPE "
                       "thread distributions");
  addCommonOptions(Options);
  Options.addInt("queries", 1200, "queries per run");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  uint64_t Queries = static_cast<uint64_t>(Options.getInt("queries"));
  if (Options.getFlag("quick"))
    Queries = 400;

  PipelineAppModel App = makeFerretApp();

  // Static configurations per the paper's notation. The "even"
  // distribution splits the 24 threads across the parallel stages after
  // assigning one thread to each sequential stage (common practice).
  const std::vector<unsigned> Even = {1, 6, 6, 5, 5, 1};
  std::vector<unsigned> Oversub(App.Stages.size(), Contexts);
  for (size_t I = 0; I != App.Stages.size(); ++I)
    if (!App.Stages[I].Parallel)
      Oversub[I] = 1;

  // Load normalization: the best static's capacity anchors load 1.0.
  PipelineSimOptions Probe;
  Probe.Contexts = Contexts;
  PipelineSim ProbeSim(App, Probe);
  const double Capacity = ProbeSim.analyticThroughput(Even);

  const std::vector<double> Loads = {0.2, 0.4, 0.6, 0.8, 1.0,
                                     1.2, 1.5, 2.0};
  Table T({"load", "even <1,6,6,5,5,1>", "oversub <1,24,24,24,24,1>",
           "DoPE"});

  double SumEven = 0.0, SumOversub = 0.0, SumDope = 0.0;
  for (double Load : Loads) {
    PipelineSimOptions SimOpts;
    SimOpts.Contexts = Contexts;
    SimOpts.Seed = Seed;
    SimOpts.OpenLoop = true;
    SimOpts.ArrivalRate = Load * Capacity;
    SimOpts.NumItems = Queries;
    SimOpts.WarmupItems = Queries / 10;
    PipelineSim Sim(App, SimOpts);

    const double EvenResp =
        Sim.run(nullptr, Even).Stats.meanResponseTime();
    const double OversubResp =
        Sim.run(nullptr, Oversub).Stats.meanResponseTime();
    TbfMechanism Dope({0.5, /*EnableFusion=*/false});
    const double DopeResp = Sim.run(&Dope, Even).Stats.meanResponseTime();

    T.addRow({Table::formatDouble(Load, 1),
              Table::formatDouble(EvenResp, 2),
              Table::formatDouble(OversubResp, 2),
              Table::formatDouble(DopeResp, 2)});
    SumEven += EvenResp;
    SumOversub += OversubResp;
    SumDope += DopeResp;
  }

  emitTable("Fig. 12 ferret mean response time (s) vs load "
            "(load 1.0 = even-static capacity)",
            T, Csv);

  std::printf("\n");
  bool Ok = true;
  Ok &= checkShape(SumOversub < SumEven,
                   "oversubscribing beats the even static distribution");
  Ok &= checkShape(SumDope < SumOversub,
                   "DoPE achieves a better characteristic than both "
                   "statics");
  return Ok ? 0 : 1;
}

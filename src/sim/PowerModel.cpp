//===- sim/PowerModel.cpp - Platform power model ---------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/PowerModel.h"

#include <algorithm>
#include <cassert>

using namespace dope;

PowerModel::PowerModel(unsigned Cores, double IdleWatts, double PerCoreWatts)
    : Cores(Cores), IdleWatts(IdleWatts), PerCoreWatts(PerCoreWatts) {
  assert(Cores >= 1 && "platform needs cores");
  assert(IdleWatts >= 0.0 && PerCoreWatts >= 0.0 && "negative power");
}

double PowerModel::watts(double ActiveCores) const {
  const double Active =
      std::clamp(ActiveCores, 0.0, static_cast<double>(Cores));
  return IdleWatts + PerCoreWatts * Active;
}

double PowerModel::peakWatts() const {
  return IdleWatts + PerCoreWatts * static_cast<double>(Cores);
}

double PowerModel::coresForWatts(double Watts) const {
  if (PerCoreWatts <= 0.0)
    return 0.0;
  return std::clamp((Watts - IdleWatts) / PerCoreWatts, 0.0,
                    static_cast<double>(Cores));
}

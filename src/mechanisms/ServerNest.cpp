//===- mechanisms/ServerNest.cpp - Two-level server nest helpers -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/ServerNest.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace dope;

bool dope::isServerNest(const ParDescriptor &Root) {
  if (Root.size() != 1)
    return false;
  return Root.masterTask()->hasInner();
}

RegionConfig dope::makeServerConfig(const ParDescriptor &Root,
                                    unsigned OuterExtent,
                                    unsigned InnerExtent, int AltIndex) {
  assert(isServerNest(Root) && "not a server nest");
  assert(OuterExtent >= 1 && "outer extent must be positive");

  const Task *Outer = Root.masterTask();
  TaskConfig OuterConfig;
  OuterConfig.Extent =
      Outer->kind() == TaskKind::Sequential ? 1 : OuterExtent;

  if (InnerExtent > 1) {
    assert(AltIndex >= 0 && static_cast<size_t>(AltIndex) <
                                Outer->descriptor()->alternativeCount() &&
           "alternative index out of range");
    const ParDescriptor *Inner =
        Outer->descriptor()->alternative(static_cast<size_t>(AltIndex));
    OuterConfig.AltIndex = AltIndex;

    // Sequential tasks take one thread each; parallel tasks split the
    // remaining budget evenly.
    unsigned SeqCount = 0;
    std::vector<double> Weights;
    for (const Task *T : Inner->tasks()) {
      const bool IsSeq = T->kind() == TaskKind::Sequential;
      SeqCount += IsSeq ? 1 : 0;
      Weights.push_back(IsSeq ? 0.0 : 1.0);
    }
    const unsigned Budget =
        InnerExtent > SeqCount ? InnerExtent - SeqCount : 0;
    // Every parallel task needs at least one replica even under a tiny
    // budget, hence MinEach below (handled by treating seq weight 0).
    std::vector<unsigned> Split;
    if (SeqCount == Inner->size()) {
      Split.assign(Inner->size(), 0);
    } else {
      Split = proportionalSplit(Budget, Weights, 0);
    }
    for (size_t I = 0; I != Inner->size(); ++I) {
      TaskConfig Child;
      const bool IsSeq = Inner->tasks()[I]->kind() == TaskKind::Sequential;
      Child.Extent = IsSeq ? 1 : std::max(1u, Split[I]);
      OuterConfig.Inner.push_back(Child);
    }
  }

  RegionConfig Config;
  Config.Tasks.push_back(std::move(OuterConfig));
  return Config;
}

unsigned dope::serverInnerExtent(const RegionConfig &Config) {
  assert(Config.Tasks.size() == 1 && "not a server-nest config");
  const TaskConfig &Outer = Config.Tasks.front();
  if (Outer.AltIndex < 0)
    return 1;
  unsigned Total = 0;
  for (const TaskConfig &Child : Outer.Inner)
    Total += Child.Extent;
  return Total == 0 ? 1 : Total;
}

unsigned dope::serverOuterExtent(const RegionConfig &Config) {
  assert(Config.Tasks.size() == 1 && "not a server-nest config");
  return Config.Tasks.front().Extent;
}

unsigned dope::outerExtentFor(unsigned MaxThreads, unsigned InnerExtent) {
  assert(InnerExtent >= 1 && "inner extent must be positive");
  const unsigned Outer = MaxThreads / InnerExtent;
  return Outer == 0 ? 1 : Outer;
}

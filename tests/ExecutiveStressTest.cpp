//===- tests/ExecutiveStressTest.cpp - Randomized executive stress -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized robustness tests of the native executive: random pipeline
/// shapes, random configuration churn, and random workload sizes, all
/// checked against exact item-conservation invariants. Seeds are fixed
/// per test instantiation so failures reproduce.
///
//===----------------------------------------------------------------------===//

#include "core/Builders.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace dope;

namespace {

/// Returns a random valid configuration for a builder pipeline whose
/// middle stages are all parallel.
RegionConfig randomConfig(const ParDescriptor &Pipe, Rng &R,
                          unsigned MaxThreads) {
  RegionConfig Config = defaultConfig(Pipe);
  unsigned Budget = MaxThreads;
  for (TaskConfig &TC : Config.Tasks)
    Budget -= 1; // every task keeps one thread
  for (size_t I = 0; I != Config.Tasks.size(); ++I) {
    if (Pipe.tasks()[I]->kind() != TaskKind::Parallel || Budget == 0)
      continue;
    const unsigned Extra =
        static_cast<unsigned>(R.uniformInt(Budget + 1));
    Config.Tasks[I].Extent = 1 + Extra;
    Budget -= Extra;
  }
  return Config;
}

/// Mechanism that jumps to a fresh random configuration every decision.
class RandomWalkMechanism : public Mechanism {
public:
  RandomWalkMechanism(const ParDescriptor &Pipe, uint64_t Seed,
                      unsigned MaxThreads)
      : Pipe(Pipe), Gen(Seed), MaxThreads(MaxThreads) {}
  std::string name() const override { return "RandomWalk"; }
  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &, const RegionSnapshot &,
              const RegionConfig &, const MechanismContext &) override {
    return randomConfig(Pipe, Gen, MaxThreads);
  }

private:
  const ParDescriptor &Pipe;
  Rng Gen;
  unsigned MaxThreads;
};

class ExecutiveStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutiveStress, RandomPipelineUnderRandomChurnConservesItems) {
  Rng R(GetParam());
  const int Items = 500 + static_cast<int>(R.uniformInt(1500));
  const unsigned MiddleStages = 1 + static_cast<unsigned>(R.uniformInt(3));
  const unsigned SourceSpin = 500 + static_cast<unsigned>(R.uniformInt(2000));
  const unsigned StageSpin = 500 + static_cast<unsigned>(R.uniformInt(2000));

  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};

  PipelineBuilder B(Graph);
  B.queueCapacity(1 + R.uniformInt(64));
  B.source<int>("gen", [&, SourceSpin]() -> std::optional<int> {
    const int I = Next.load();
    if (I >= Items)
      return std::nullopt;
    for (volatile unsigned Spin = 0; Spin < SourceSpin; ++Spin) {
    }
    Next.store(I + 1);
    return I;
  });
  for (unsigned S = 0; S != MiddleStages; ++S)
    B.stage<int, int>("work" + std::to_string(S), [StageSpin](int X) {
      for (volatile unsigned Spin = 0; Spin < StageSpin; ++Spin) {
      }
      return X;
    });
  B.sink<int>("add", [&](int X) { Sum.fetch_add(X); });
  ParDescriptor *Pipe = B.build();

  const unsigned MaxThreads =
      static_cast<unsigned>(Pipe->size()) + 1 +
      static_cast<unsigned>(R.uniformInt(4));

  DopeOptions Opts;
  Opts.MaxThreads = MaxThreads;
  Opts.MonitorIntervalSeconds = 0.001;
  Opts.MinReconfigIntervalSeconds = 0.001;
  Opts.Mech = std::make_unique<RandomWalkMechanism>(*Pipe, GetParam() ^ 1,
                                                    MaxThreads);
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));
  D->wait();

  EXPECT_EQ(Sum.load(),
            static_cast<long long>(Items - 1) * Items / 2)
      << "seed " << GetParam() << " items " << Items << " stages "
      << MiddleStages << " threads " << MaxThreads;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutiveStress,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace

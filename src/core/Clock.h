//===- core/Clock.h - Monotonic time helpers (forwarder) ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility forwarder: the clock helpers moved to support/Clock.h,
/// the whitelisted home of raw wall-clock reads (see the determinism
/// contract in DESIGN.md §12). Include that header directly in new code.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_CLOCK_H
#define DOPE_CORE_CLOCK_H

#include "support/Clock.h"

#endif // DOPE_CORE_CLOCK_H

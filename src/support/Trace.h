//===- support/Trace.h - Structured decision tracing -----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate: a low-overhead structured tracer that
/// records the executive's *decision dynamics* — feature samples,
/// reconfiguration decisions, queue depths, task suspension points, and
/// fault events — rather than just end-of-run aggregates.
///
/// Writers append fixed-capacity per-thread ring buffers (one uncontended
/// mutex per thread; the oldest records are overwritten under pressure
/// and counted as dropped), so tracing a hot Task::begin/end path costs
/// an allocation-free append in the common case. A drain merges all
/// buffers into one time-sorted record vector.
///
/// Exporters serialize drained records as Chrome trace_event JSON (load
/// into chrome://tracing / Perfetto) or as compact JSONL — the decision
/// log format that `tools/dope_trace` dumps, diffs, and summarizes and
/// that the golden-trace conformance suite asserts on.
///
/// Clock domain: every record is stamped by the tracer's clock, which
/// defaults to native monotonic seconds and is retargeted to virtual
/// time by the simulators; the Logging sink (support/Logging.cpp) stamps
/// log lines with the same clock while a tracer is active, so logs and
/// trace records interleave consistently.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_TRACE_H
#define DOPE_SUPPORT_TRACE_H

#include "support/Compiler.h"
#include "support/ThreadAnnotations.h"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dope {

/// What one trace record describes.
enum class TraceKind : uint8_t {
  /// A fresh platform-feature sample through FeatureRegistry::getValue
  /// (Name = feature, A = value).
  FeatureSample,
  /// A mechanism reading a feature at decision time through
  /// MechanismContext::feature (Name = feature, A = value).
  FeatureRead,
  /// One reconfigureParallelism consult (Name = mechanism, Detail = the
  /// chosen configuration rendered by toString, A = total threads of the
  /// choice, B = 1 when the decision changed the running configuration).
  Decision,
  /// A queue-occupancy / load sample (Name = task or queue, A = depth).
  QueueDepth,
  /// Task::begin of one instance (Name = task, A = instance id — the
  /// replica index for native regions, the item/transaction id for
  /// simulators). Parentage, when known, rides in B = spawner instance
  /// id and Detail = spawner task name; an empty Detail marks a root
  /// instance. The (Detail, B) pair keys the spawning TaskBegin, which
  /// is what analysis/TaskDag uses to reconstruct the spawn DAG.
  TaskBegin,
  /// Task::end of one instance (Name = task, A = instance id matching
  /// the TaskBegin, B = instance seconds).
  TaskEnd,
  /// Task::wait — entering the task's inner region (Name = task,
  /// A = replica index).
  TaskWait,
  /// A configuration change applied by the executive or simulator
  /// (Name = source, Detail = new configuration).
  Reconfig,
  /// A failure-domain event: retry, permanent failure, watchdog incident,
  /// injected fault (Name = event class, Detail = description).
  Fault,
  /// A log line routed from support/Logging (Name = level,
  /// Detail = message).
  Log,
  /// A generic counter sample (Name = series, A = value).
  Counter,
  /// The platform arbiter granted (or re-granted) a tenant's lease
  /// (Name = tenant, A = threads granted, B = previous threads,
  /// Detail = reason: "join", "rebalance", "equal-share", ...).
  LeaseGrant,
  /// The platform arbiter revoked part or all of a tenant's lease
  /// (Name = tenant, A = threads after revocation, B = previous
  /// threads, Detail = reason).
  LeaseRevoke,
  /// A tenant's marginal-utility sample at arbitration time
  /// (Name = tenant, A = marginal utility of the next thread,
  /// B = threads held when sampled).
  TenantUtility,
  /// A lease expired because its holder stopped heartbeating within the
  /// TTL — the arbiter reclaims the threads; on the executive side, an
  /// unrenewed envelope shrinking through quiesce (Name = tenant or
  /// "envelope", A = threads after expiry, B = previous threads,
  /// Detail = reason: "ttl").
  LeaseExpire,
  /// A tenant liveness proof attached to a sample report (Name = tenant,
  /// A = threads the tenant reports holding, B = measured throughput,
  /// Detail = "saturated" when the window had backlog — these windows
  /// double as the utility-curve reconstruction stream for warm
  /// restarts).
  Heartbeat,
  /// A compliance verdict against a tenant (Name = tenant,
  /// A = accumulated misbehavior score, B = penalty rung
  /// (0 none, 1 bid discount, 2 lease clamp, 3 evicted),
  /// Detail = the violation class that triggered the verdict).
  ComplianceVerdict,
  /// A successful steal in the work-stealing task runtime (Name = the
  /// tree task or engine, A = thief worker index, B = victim worker
  /// index). Failed attempts are not traced — they aggregate into the
  /// StealRate feature instead.
  Steal,
};

/// Canonical lower-case name of a record kind ("decision", "fault", ...).
const char *toString(TraceKind Kind);

/// Inverse of toString; std::nullopt for unknown names.
std::optional<TraceKind> traceKindFromString(std::string_view Name);

/// One trace record. Fixed shape: two scalar payloads plus two strings
/// (Name interned by the caller's context; Detail usually empty outside
/// decisions and faults).
struct TraceRecord {
  double Time = 0.0;
  TraceKind Kind = TraceKind::Counter;
  /// Stable per-tracer writer index (0 = first thread that recorded).
  uint32_t Tid = 0;
  std::string Name;
  double A = 0.0;
  double B = 0.0;
  std::string Detail;
};

/// The tracer: a set of per-thread ring buffers behind one handle.
class Tracer {
public:
  /// \p CapacityPerThread bounds each thread's ring; the oldest records
  /// are overwritten (and counted) beyond it.
  explicit Tracer(size_t CapacityPerThread = 65536);
  ~Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Retargets the timestamp domain (e.g. to a simulator's virtual
  /// clock). An empty function restores native monotonic seconds.
  void setClock(std::function<double()> Clock);

  /// Current time under the tracer's clock.
  double now() const;

  /// Appends a record stamped with now().
  DOPE_HOT void record(TraceKind Kind, std::string_view Name, double A = 0.0,
                       double B = 0.0, std::string Detail = std::string());

  /// Appends a record with an explicit timestamp (simulators pass
  /// virtual time directly).
  DOPE_HOT void recordAt(double Time, TraceKind Kind, std::string_view Name,
                         double A = 0.0, double B = 0.0,
                         std::string Detail = std::string());

  /// Merges and clears all per-thread buffers; records are sorted by
  /// time (stable, so same-timestamp records keep per-thread order).
  std::vector<TraceRecord> drain();

  /// Records overwritten because a ring was full.
  uint64_t droppedRecords() const;

  /// Total records ever appended (including later-overwritten ones).
  uint64_t recordedTotal() const;

  /// Process-wide active tracer, used by the Logging sink to mirror log
  /// lines into the trace with a consistent clock. Set by whoever owns
  /// the tracer (executive, simulator, harness); cleared on destruction.
  static Tracer *active();
  static void setActive(Tracer *T);

private:
  struct ThreadBuffer;

  ThreadBuffer &buffer();
  void append(ThreadBuffer &Buf, TraceRecord R);

  const size_t Capacity;
  const uint64_t Id; // process-unique, guards thread-local lookups
  mutable std::mutex ClockMutex;
  std::function<double()> Clock DOPE_GUARDED_BY(ClockMutex);

  std::mutex RegistryMutex;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers
      DOPE_GUARDED_BY(RegistryMutex);
};

/// Sorts \p Records into a canonical total order independent of which
/// thread recorded them: by (Time, Kind, Name, A, B, Detail), ignoring
/// Tid. Two drains of the same logical run — e.g. a sharded simulation
/// at different shard counts, where records land in different
/// per-thread rings — canonicalize to equal sequences iff they carry
/// the same multiset of records; the differential tests compare traces
/// through this. The sort is plain (not stable): ties beyond Detail are
/// exact duplicates up to Tid, which the order ignores by design.
void canonicalizeTrace(std::vector<TraceRecord> &Records);

//===----------------------------------------------------------------------===//
// Exporters / import
//===----------------------------------------------------------------------===//

/// Writes records as a Chrome trace_event JSON document: begin/end pairs
/// for task instances, instant events for decisions/reconfigs/faults/
/// logs, counter tracks for features and queue depths.
void writeChromeTrace(const std::vector<TraceRecord> &Records,
                      std::ostream &OS);

/// Writes the compact JSONL form: one record object per line.
void writeTraceJsonl(const std::vector<TraceRecord> &Records,
                     std::ostream &OS);

/// Reads the JSONL form back. Unknown kinds and malformed lines abort
/// the read with an error. Returns std::nullopt on failure.
std::optional<std::vector<TraceRecord>>
readTraceJsonl(std::istream &IS, std::string *Error = nullptr);

/// What a lenient JSONL read skipped. A crash mid-write leaves a torn
/// final record (and a foreign tool may leave corrupt lines anywhere);
/// recovery readers want the surviving records plus an honest count of
/// what was dropped, not an abort.
struct TraceReadStats {
  /// Records successfully parsed.
  uint64_t Parsed = 0;
  /// Lines skipped (malformed JSON, non-objects, unknown kinds).
  uint64_t Skipped = 0;
  /// 1-based line number and message of the first skipped line.
  uint64_t FirstSkippedLine = 0;
  std::string FirstError;
};

/// Reads the JSONL form, skipping malformed or unknown-kind lines
/// instead of aborting; \p Stats (when non-null) reports how many lines
/// were parsed and skipped. Blank lines are neither parsed nor skipped.
std::vector<TraceRecord> readTraceJsonlLenient(std::istream &IS,
                                               TraceReadStats *Stats = nullptr);

/// Writes \p Records to \p Path, choosing the format by extension:
/// ".json" gets Chrome trace_event JSON, anything else JSONL. Returns
/// false (with \p Error filled) when the file cannot be written.
bool writeTraceFile(const std::vector<TraceRecord> &Records,
                    const std::string &Path, std::string *Error = nullptr);

} // namespace dope

#endif // DOPE_SUPPORT_TRACE_H

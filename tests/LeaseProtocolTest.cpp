//===- tests/LeaseProtocolTest.cpp - Hardened lease protocol tests ---------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The liveness and containment half of the arbiter: lease TTLs and the
// heartbeat that renews them, the compliance escalation ladder, and the
// warm-restart paths (snapshot/restore and trace-journal warmStart).
// Edge cases pinned here are protocol contracts, not implementation
// accidents: a lease is dead at *exactly* the TTL, a heartbeat landing
// just before the deadline keeps it alive, equal sample timestamps are
// legitimate batching, and eviction latches.
//
//===----------------------------------------------------------------------===//

#include "arbiter/Arbiter.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dope;

namespace {

ArbiterOptions baseOptions() {
  ArbiterOptions Opts;
  Opts.TotalThreads = 8;
  Opts.EpochSeconds = 2.0;
  Opts.LeaseTtlSeconds = 5.0;
  Opts.HysteresisThreads = 0;
  return Opts;
}

TenantSpec spec(const std::string &Name, double Weight = 1.0,
                unsigned MinThreads = 1) {
  TenantSpec S;
  S.Name = Name;
  S.Weight = Weight;
  S.MinThreads = MinThreads;
  return S;
}

/// An honest saturated sample: throughput earned at exactly the granted
/// thread count, with backlog so the window teaches the estimator.
TenantSample sample(double Time, unsigned Granted, double Throughput) {
  TenantSample S;
  S.Time = Time;
  S.GrantedThreads = Granted;
  S.Throughput = Throughput;
  S.OfferedRate = Throughput * 1.5;
  S.QueueDepth = 4.0;
  return S;
}

//===----------------------------------------------------------------------===//
// Liveness: TTL expiry and heartbeat revival
//===----------------------------------------------------------------------===//

TEST(LeaseProtocol, LeaseIsDeadExactlyAtTtl) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const TenantId B = Arb.addTenant(spec("b"), 0.0);

  // Keep B alive; A never reports after admission (heartbeat t=0).
  Arb.reportSample(B, sample(2.0, Arb.leaseOf(B).Threads, 40.0));
  Arb.rebalance(2.0);
  EXPECT_FALSE(Arb.isExpired(A));

  // Just inside the TTL the lease is still valid...
  Arb.reportSample(B, sample(4.9, Arb.leaseOf(B).Threads, 40.0));
  Arb.rebalance(4.9);
  EXPECT_FALSE(Arb.isExpired(A));

  // ...and at exactly LastHeartbeat + TTL it is already dead: the
  // boundary is deterministic, not a race.
  Arb.reportSample(B, sample(5.0, Arb.leaseOf(B).Threads, 40.0));
  std::vector<LeaseChange> Changes = Arb.rebalance(5.0);
  EXPECT_TRUE(Arb.isExpired(A));
  EXPECT_EQ(Arb.leaseOf(A).Threads, 0u);

  bool SawExpire = false;
  for (const LeaseChange &C : Changes)
    if (C.Tenant == "a" && C.Reason == "expire" && C.NewThreads == 0)
      SawExpire = true;
  EXPECT_TRUE(SawExpire) << "expiry must surface as an explicit change";
}

TEST(LeaseProtocol, ExpiredThreadsReturnToThePool) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const TenantId B = Arb.addTenant(spec("b"), 0.0);
  EXPECT_EQ(Arb.leaseOf(A).Threads + Arb.leaseOf(B).Threads, 8u);

  Arb.reportSample(B, sample(5.0, Arb.leaseOf(B).Threads, 40.0));
  Arb.rebalance(5.0);
  EXPECT_TRUE(Arb.isExpired(A));
  // The survivor absorbs the dead tenant's share immediately — expiry
  // forces a re-split past the epoch gate.
  EXPECT_EQ(Arb.leaseOf(B).Threads, 8u);
}

TEST(LeaseProtocol, FreshHeartbeatRevivesPastTheEpochGate) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const TenantId B = Arb.addTenant(spec("b"), 0.0);
  Arb.reportSample(B, sample(5.0, Arb.leaseOf(B).Threads, 40.0));
  Arb.rebalance(5.0);
  ASSERT_TRUE(Arb.isExpired(A));

  // The heartbeat itself revives; the next rebalance re-seats A even
  // though a full epoch has not elapsed since the last re-split.
  Arb.reportSample(A, sample(5.5, 0, 0.0));
  EXPECT_FALSE(Arb.isExpired(A));
  Arb.rebalance(5.5);
  EXPECT_GE(Arb.leaseOf(A).Threads, 1u);
  EXPECT_LE(Arb.leaseOf(A).Threads + Arb.leaseOf(B).Threads, 8u);
}

TEST(LeaseProtocol, HeartbeatRacingTheDeadlineKeepsTheLease) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const TenantId B = Arb.addTenant(spec("b"), 0.0);

  // A's renewal lands a hair before the expiry sweep at t=5.
  Arb.reportSample(A, sample(4.99, Arb.leaseOf(A).Threads, 40.0));
  Arb.reportSample(B, sample(5.0, Arb.leaseOf(B).Threads, 40.0));
  Arb.rebalance(5.0);
  EXPECT_FALSE(Arb.isExpired(A));
  EXPECT_GE(Arb.leaseOf(A).Threads, 1u);

  // A stale heartbeat (timestamp not newer than the last) renews
  // nothing: the TTL clock never runs backwards.
  Arb.reportSample(A, sample(4.99, Arb.leaseOf(A).Threads, 40.0));
  EXPECT_DOUBLE_EQ(Arb.lastHeartbeatOf(A), 4.99);
  Arb.reportSample(B, sample(9.99, Arb.leaseOf(B).Threads, 40.0));
  Arb.rebalance(9.99);
  EXPECT_TRUE(Arb.isExpired(A));
}

//===----------------------------------------------------------------------===//
// Containment: the compliance escalation ladder
//===----------------------------------------------------------------------===//

TEST(LeaseProtocol, HonestTenantIsNeverPenalized) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const TenantId B = Arb.addTenant(spec("b"), 0.0);
  for (int Epoch = 1; Epoch <= 20; ++Epoch) {
    const double Now = 2.0 * Epoch;
    Arb.reportSample(A, sample(Now, Arb.leaseOf(A).Threads, 30.0));
    Arb.reportSample(B, sample(Now, Arb.leaseOf(B).Threads, 30.0));
    Arb.rebalance(Now);
  }
  EXPECT_EQ(Arb.penaltyOf(A), CompliancePenalty::None);
  EXPECT_EQ(Arb.penaltyOf(B), CompliancePenalty::None);
  EXPECT_DOUBLE_EQ(Arb.complianceScoreOf(A), 0.0);
}

TEST(LeaseProtocol, EqualSampleTimestampsAreLegitimateBatching) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  // Hosts may flush several windows onto one epoch tick; equal
  // timestamps must not read as a rewound clock.
  Arb.reportSample(A, sample(2.0, Arb.leaseOf(A).Threads, 30.0));
  Arb.reportSample(A, sample(2.0, Arb.leaseOf(A).Threads, 31.0));
  EXPECT_DOUBLE_EQ(Arb.complianceScoreOf(A), 0.0);

  // A strictly rewound clock is a violation.
  Arb.reportSample(A, sample(1.0, Arb.leaseOf(A).Threads, 30.0));
  EXPECT_GT(Arb.complianceScoreOf(A), 0.0);
}

TEST(LeaseProtocol, FutureClockIsClampedAndFlagged) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  // A heartbeat from the far future would fake liveness forever.
  Arb.reportSample(A, sample(100.0, Arb.leaseOf(A).Threads, 30.0));
  Arb.rebalance(2.0);
  EXPECT_GT(Arb.complianceScoreOf(A), 0.0);
  EXPECT_LE(Arb.lastHeartbeatOf(A), 2.0);
}

TEST(LeaseProtocol, LadderEscalatesThroughClampToLatchedEviction) {
  ArbiterOptions Opts = baseOptions();
  Opts.LeaseTtlSeconds = 0.0; // isolate containment from liveness
  Arbiter Arb(Opts);
  const TenantId Greedy = Arb.addTenant(spec("greedy", 1.0, 2), 0.0);
  const TenantId Honest = Arb.addTenant(spec("honest"), 0.0);

  // First window is never checked against the lease (no previous
  // sample); establish history honestly.
  Arb.reportSample(Greedy, sample(2.0, Arb.leaseOf(Greedy).Threads, 30.0));
  Arb.reportSample(Honest, sample(2.0, Arb.leaseOf(Honest).Threads, 30.0));
  Arb.rebalance(2.0);

  bool SawDiscount = false, SawClamp = false;
  int Epoch = 2;
  for (; Epoch <= 30 && !Arb.isEvicted(Greedy); ++Epoch) {
    const double Now = 2.0 * Epoch;
    // Reports holding far more threads than any lease could grant.
    Arb.reportSample(Greedy, sample(Now, 16, 120.0));
    Arb.reportSample(Honest, sample(Now, Arb.leaseOf(Honest).Threads, 30.0));
    Arb.rebalance(Now);
    const CompliancePenalty P = Arb.penaltyOf(Greedy);
    SawDiscount |= P == CompliancePenalty::BidDiscount;
    SawClamp |= P == CompliancePenalty::LeaseClamp;
  }

  EXPECT_TRUE(SawDiscount) << "ladder must pass through the discount rung";
  EXPECT_TRUE(SawClamp) << "ladder must pass through the clamp rung";
  ASSERT_TRUE(Arb.isEvicted(Greedy));
  EXPECT_EQ(Arb.leaseOf(Greedy).Threads, 0u);
  EXPECT_EQ(Arb.leaseOf(Honest).Threads, 8u);
  EXPECT_EQ(Arb.penaltyOf(Honest), CompliancePenalty::None);

  // Eviction latches: even a flood of clean reports never re-seats.
  for (int I = 0; I != 10; ++I)
    Arb.reportSample(Greedy,
                     sample(2.0 * (Epoch + I), 2, 10.0));
  Arb.rebalance(2.0 * (Epoch + 10));
  EXPECT_TRUE(Arb.isEvicted(Greedy));
  EXPECT_EQ(Arb.leaseOf(Greedy).Threads, 0u);
}

//===----------------------------------------------------------------------===//
// Warm restart: snapshot/restore and journal warmStart
//===----------------------------------------------------------------------===//

/// Drives \p Arb through several honest epochs so it has history worth
/// snapshotting; returns the time of the last rebalance.
double warmUp(Arbiter &Arb, TenantId A, TenantId B) {
  double Now = 0.0;
  for (int Epoch = 1; Epoch <= 6; ++Epoch) {
    Now = 2.0 * Epoch;
    Arb.reportSample(A, sample(Now, Arb.leaseOf(A).Threads,
                               8.0 * Arb.leaseOf(A).Threads));
    Arb.reportSample(B, sample(Now, Arb.leaseOf(B).Threads,
                               3.0 + 0.5 * Arb.leaseOf(B).Threads));
    Arb.rebalance(Now);
  }
  return Now;
}

TEST(LeaseProtocol, SnapshotRestoreRoundTripsDecisions) {
  ArbiterOptions Opts = baseOptions();
  Arbiter Original(Opts);
  const TenantId A = Original.addTenant(spec("scalable", 1.0), 0.0);
  const TenantId B = Original.addTenant(spec("flat", 1.0), 0.0);
  const double Now = warmUp(Original, A, B);

  Arbiter Restored(Opts);
  ASSERT_TRUE(Restored.restore(Original.snapshot()));
  ASSERT_EQ(Restored.tenantCount(), 2u);
  EXPECT_EQ(Restored.leaseOf(A).Threads, Original.leaseOf(A).Threads);
  EXPECT_EQ(Restored.leaseOf(B).Threads, Original.leaseOf(B).Threads);
  EXPECT_DOUBLE_EQ(Restored.lastHeartbeatOf(A),
                   Original.lastHeartbeatOf(A));

  // The restored arbiter must make the decisions the dead one would
  // have: identical telemetry from here on yields identical changes.
  for (int Epoch = 1; Epoch <= 4; ++Epoch) {
    const double T = Now + 2.0 * Epoch;
    for (Arbiter *Arb : {&Original, &Restored}) {
      Arb->reportSample(A, sample(T, Arb->leaseOf(A).Threads,
                                  8.0 * Arb->leaseOf(A).Threads));
      Arb->reportSample(B, sample(T, Arb->leaseOf(B).Threads,
                                  3.0 + 0.5 * Arb->leaseOf(B).Threads));
    }
    const std::vector<LeaseChange> Want = Original.rebalance(T);
    const std::vector<LeaseChange> Got = Restored.rebalance(T);
    ASSERT_EQ(Got.size(), Want.size()) << "epoch " << Epoch;
    for (size_t I = 0; I != Want.size(); ++I) {
      EXPECT_EQ(Got[I].Tenant, Want[I].Tenant);
      EXPECT_EQ(Got[I].NewThreads, Want[I].NewThreads);
    }
  }
}

TEST(LeaseProtocol, RestoreRejectsForeignDocumentsUntouched) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const unsigned Before = Arb.leaseOf(A).Threads;

  JsonValue Wrong = JsonValue::makeObject();
  Wrong.set("schema", JsonValue("not-an-arbiter-snapshot"));
  EXPECT_FALSE(Arb.restore(Wrong));
  EXPECT_FALSE(Arb.restore(JsonValue(42.0)));
  EXPECT_EQ(Arb.tenantCount(), 1u);
  EXPECT_EQ(Arb.leaseOf(A).Threads, Before);
}

TEST(LeaseProtocol, WarmStartRealignsHoldingsAndSkipsStrangers) {
  Arbiter Arb(baseOptions());
  const TenantId A = Arb.addTenant(spec("a"), 0.0);
  const TenantId B = Arb.addTenant(spec("b"), 0.0);

  // A host journal: saturated heartbeats that re-teach the curve, then
  // the lease positions the tenants actually hold. Records naming no
  // seated tenant (an executive's "envelope" events) must be ignored.
  std::vector<TraceRecord> Journal;
  auto Rec = [&](TraceKind K, const char *Name, double T, double A0,
                 double B0, const char *Detail) {
    TraceRecord R;
    R.Kind = K;
    R.Name = Name;
    R.Time = T;
    R.A = A0;
    R.B = B0;
    R.Detail = Detail;
    Journal.push_back(R);
  };
  Rec(TraceKind::Heartbeat, "a", 2.0, 2.0, 16.0, "saturated");
  Rec(TraceKind::Heartbeat, "a", 4.0, 4.0, 30.0, "saturated");
  Rec(TraceKind::Heartbeat, "b", 4.0, 4.0, 5.0, "saturated");
  Rec(TraceKind::LeaseGrant, "a", 6.0, 6.0, 2.0, "rebalance");
  Rec(TraceKind::LeaseRevoke, "b", 6.0, 2.0, 6.0, "rebalance");
  Rec(TraceKind::LeaseExpire, "envelope", 6.0, 1.0, 4.0, "ttl");

  const size_t Applied = Arb.warmStart(Journal);
  EXPECT_EQ(Applied, 5u) << "the stranger record must be skipped";
  EXPECT_EQ(Arb.leaseOf(A).Threads, 6u);
  EXPECT_EQ(Arb.leaseOf(B).Threads, 2u);
}

} // namespace

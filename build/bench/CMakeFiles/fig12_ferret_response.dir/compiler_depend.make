# Empty compiler generated dependencies file for fig12_ferret_response.
# This may be replaced when dependencies are built.

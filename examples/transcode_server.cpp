//===- examples/transcode_server.cpp - The paper's running example ---------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The video-transcoding server of Secs. 2-3 on the real DoPE run-time:
/// a two-level loop nest where the outer loop iterates over submitted
/// videos (DOALL across transactions) and the inner loop transcodes one
/// video as a read -> transform -> write pipeline.
///
/// The parallelism is described once; WQT-H then toggles between
/// latency mode  <(1, DOALL), (3, PIPE)>   (parallel inner pipeline) and
/// throughput mode <(N, DOALL), (1, SEQ)>  (sequential transcode)
/// as the work-queue occupancy swings between a burst phase and a light
/// phase. Output checksums verify that no reconfiguration ever corrupts
/// a transcoded video; videos interrupted mid-flight by a suspension are
/// re-submitted and re-transcoded from scratch (transactions are
/// idempotent).
///
//===----------------------------------------------------------------------===//

#include "apps/NativeKernels.h"
#include "core/Clock.h"
#include "core/Dope.h"
#include "mechanisms/WqtH.h"
#include "queue/WorkQueue.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

using namespace dope;

namespace {

constexpr unsigned FramesPerVideo = 16;
constexpr size_t FrameBytes = 4096;
constexpr unsigned TransformPasses = 40;
constexpr int NumVideos = 40;

struct VideoRequest {
  int Id = 0;
  double SubmitTime = 0.0;
};

/// Per-transaction pipeline state, reached by the shared inner functors
/// through TaskRuntime::context().
struct TranscodeJob {
  int VideoId = 0;
  WorkQueue<Frame> Q1; // read -> transform
  WorkQueue<Frame> Q2; // transform -> write
  std::atomic<uint32_t> NextFrame{0};
  std::atomic<uint64_t> Checksum{0};
  std::atomic<bool> Aborted{false};
};

uint64_t transcodeFrameChecksum(int VideoId, uint32_t FrameIndex) {
  const Frame In = makeFrame(FrameIndex, FrameBytes,
                             static_cast<uint64_t>(VideoId));
  return frameChecksum(transformFrame(In, TransformPasses));
}

/// Reference result computed sequentially, for verification.
uint64_t referenceChecksum(int VideoId) {
  uint64_t Sum = 0;
  for (uint32_t F = 0; F != FramesPerVideo; ++F)
    Sum += transcodeFrameChecksum(VideoId, F);
  return Sum;
}

} // namespace

int main() {
  WorkQueue<VideoRequest> Requests;
  std::mutex ResultsMutex;
  std::map<int, uint64_t> Results;
  std::map<int, double> ResponseTimes;
  std::atomic<uint64_t> Retranscodes{0};

  TaskGraph Graph;

  // --- Inner pipeline: read -> transform -> write ------------------------
  TaskFn ReadFn = [](TaskRuntime &RT) {
    auto *Job = static_cast<TranscodeJob *>(RT.context());
    if (RT.begin() == TaskStatus::Suspended) {
      // FiniCB role: steer downstream to a consistent state.
      Job->Aborted.store(true);
      Job->Q1.close();
      return TaskStatus::Suspended;
    }
    const uint32_t F = Job->NextFrame.fetch_add(1);
    if (F >= FramesPerVideo) {
      Job->Q1.close();
      return TaskStatus::Finished;
    }
    Job->Q1.push(makeFrame(F, FrameBytes,
                           static_cast<uint64_t>(Job->VideoId)));
    (void)RT.end();
    return TaskStatus::Executing;
  };
  TaskFn TransformFn = [](TaskRuntime &RT) {
    auto *Job = static_cast<TranscodeJob *>(RT.context());
    // Like the paper's Transform, this stage ignores suspension and
    // drains to the sentinel (queue closure).
    std::optional<Frame> In = Job->Q1.waitAndPop();
    if (!In) {
      Job->Q2.close();
      return TaskStatus::Finished;
    }
    Job->Q2.push(transformFrame(*In, TransformPasses));
    return TaskStatus::Executing;
  };
  TaskFn WriteFn = [](TaskRuntime &RT) {
    auto *Job = static_cast<TranscodeJob *>(RT.context());
    std::optional<Frame> Out = Job->Q2.waitAndPop();
    if (!Out)
      return TaskStatus::Finished;
    Job->Checksum.fetch_add(frameChecksum(*Out));
    return TaskStatus::Executing;
  };

  Task *Read = Graph.createTask("read", ReadFn, LoadFn(),
                                Graph.seqDescriptor());
  Task *Transform = Graph.createTask("transform", TransformFn, LoadFn(),
                                     Graph.parDescriptor());
  Task *Write = Graph.createTask("write", WriteFn, LoadFn(),
                                 Graph.seqDescriptor());
  ParDescriptor *InnerPipe = Graph.createRegion({Read, Transform, Write});

  // --- Outer loop over submitted videos ---------------------------------
  TaskFn TranscodeFn = [&](TaskRuntime &RT) {
    if (RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    std::optional<VideoRequest> Request = Requests.waitAndPop();
    if (!Request)
      return TaskStatus::Finished;

    uint64_t Checksum = 0;
    bool Completed = false;
    if (RT.innerActive()) {
      TranscodeJob Job;
      Job.VideoId = Request->Id;
      const TaskStatus Inner = RT.wait(&Job);
      if (Inner == TaskStatus::Finished && !Job.Aborted.load()) {
        Checksum = Job.Checksum.load();
        Completed = true;
      }
    } else {
      // Throughput mode: transcode inline, sequentially.
      for (uint32_t F = 0; F != FramesPerVideo; ++F)
        Checksum += transcodeFrameChecksum(Request->Id, F);
      Completed = true;
    }

    if (!Completed) {
      // Interrupted mid-video: resubmit the transaction and quiesce.
      Retranscodes.fetch_add(1);
      Requests.push(*Request);
      return TaskStatus::Suspended;
    }
    {
      std::lock_guard<std::mutex> Lock(ResultsMutex);
      Results[Request->Id] = Checksum;
      ResponseTimes[Request->Id] =
          monotonicSeconds() - Request->SubmitTime;
      // The last completed transaction ends the service: closing the
      // request queue releases any replicas blocked on it. (Interrupted
      // transactions are re-submitted before this point, so the count
      // is exact.)
      if (Results.size() == static_cast<size_t>(NumVideos))
        Requests.close();
    }
    if (RT.end() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    return TaskStatus::Executing;
  };
  Task *Transcode = Graph.createTask(
      "transcode", TranscodeFn,
      [&] { return static_cast<double>(Requests.size()); },
      Graph.createDescriptor(TaskKind::Parallel, {InnerPipe}));
  ParDescriptor *Root = Graph.createRegion({Transcode});

  // --- Launch under WQT-H ------------------------------------------------
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.MonitorIntervalSeconds = 0.002;
  Opts.MinReconfigIntervalSeconds = 0.01;
  WqtHParams Params;
  Params.QueueThreshold = 3.0;
  Params.NOff = 3;
  Params.NOn = 3;
  Params.MMax = 3; // read + transform + write
  Opts.Mech = std::make_unique<WqtHMechanism>(Params);
  std::unique_ptr<Dope> Executive = Dope::create(Root, std::move(Opts));

  // --- Simulated users: a burst phase, then a light phase ----------------
  std::thread Feeder([&] {
    int Id = 0;
    for (; Id != NumVideos / 2; ++Id) {
      Requests.push({Id, monotonicSeconds()});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (; Id != NumVideos; ++Id) {
      Requests.push({Id, monotonicSeconds()});
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    // The queue is closed by the worker that completes the last video,
    // not here: interrupted transactions may still need re-submission.
  });
  Feeder.join();
  Executive->wait();

  // --- Verify ------------------------------------------------------------
  int Verified = 0;
  for (const auto &[VideoId, Checksum] : Results)
    if (Checksum == referenceChecksum(VideoId))
      ++Verified;

  double MeanResponse = 0.0;
  for (const auto &[VideoId, Response] : ResponseTimes)
    MeanResponse += Response;
  MeanResponse /= ResponseTimes.empty() ? 1.0 : ResponseTimes.size();

  std::printf("transcode_server: %d/%d videos verified, mean response "
              "%.3f s\n",
              Verified, NumVideos, MeanResponse);
  std::printf("  reconfigurations: %llu, interrupted-and-retranscoded: "
              "%llu\n",
              static_cast<unsigned long long>(
                  Executive->reconfigurationCount()),
              static_cast<unsigned long long>(Retranscodes.load()));
  std::printf("  final configuration: %s\n",
              toString(*Root, Executive->currentConfig()).c_str());
  return Verified == NumVideos ? 0 : 1;
}

//===- tests/AppsTest.cpp - Application model tests --------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "apps/NestApps.h"
#include "apps/PipelineApps.h"

#include "sim/PipelineSim.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TEST(AppRegistry, HasAllSixTableFourRows) {
  const std::vector<AppInfo> &Registry = appRegistry();
  ASSERT_EQ(Registry.size(), 6u);
  EXPECT_EQ(Registry[0].Name, "x264");
  EXPECT_EQ(Registry[5].Name, "dedup");
}

TEST(AppRegistry, TableFourValuesTranscribed) {
  const AppInfo *X264 = findApp("x264");
  ASSERT_NE(X264, nullptr);
  EXPECT_EQ(X264->LocAdded, 72u);
  EXPECT_EQ(X264->LocTotal, 39617u);
  EXPECT_EQ(X264->NestingLevels, 2u);
  EXPECT_EQ(X264->InnerDopMin, 2u);

  const AppInfo *Dedup = findApp("dedup");
  ASSERT_NE(Dedup, nullptr);
  EXPECT_EQ(Dedup->LocFused, 113u);
  EXPECT_EQ(Dedup->NestingLevels, 1u);

  const AppInfo *Ferret = findApp("ferret");
  ASSERT_NE(Ferret, nullptr);
  EXPECT_EQ(Ferret->LocFused, 59u);
}

TEST(AppRegistry, UnknownAppIsNull) {
  EXPECT_EQ(findApp("doom"), nullptr);
}

TEST(NestApps, X264CalibrationMatchesPaper) {
  NestAppBundle App = makeX264App();
  // Sec. 2: 6.3x at 8 threads, best extent 8.
  EXPECT_NEAR(App.Model.Curve.speedup(8), 6.3, 0.05);
  EXPECT_EQ(App.Model.Curve.bestExtent(), 8u);
  EXPECT_EQ(App.MMax, 8u);
  EXPECT_GT(App.Model.SeqServiceSeconds, 0.0);
}

TEST(NestApps, BzipHasDopMinFour) {
  NestAppBundle App = makeBzipApp();
  EXPECT_EQ(App.Model.Curve.dopMin(), 4u);
  EXPECT_LT(App.Model.Curve.speedup(2), 1.0);
  EXPECT_GT(App.Model.Curve.speedup(8), 1.5);
}

TEST(NestApps, AllFourAppsPresentInOrder) {
  const std::vector<NestAppBundle> Apps = allNestApps();
  ASSERT_EQ(Apps.size(), 4u);
  EXPECT_EQ(Apps[0].Model.Name, "x264");
  EXPECT_EQ(Apps[1].Model.Name, "swaptions");
  EXPECT_EQ(Apps[2].Model.Name, "bzip");
  EXPECT_EQ(Apps[3].Model.Name, "gimp");
}

TEST(NestApps, WqParamsConsistentWithMMax) {
  for (const NestAppBundle &App : allNestApps()) {
    EXPECT_EQ(App.WqtH.MMax, App.MMax) << App.Model.Name;
    EXPECT_EQ(App.WqLinear.MMax, App.MMax) << App.Model.Name;
    EXPECT_GE(App.WqLinear.MMin, 1u);
  }
}

TEST(PipelineApps, FerretStructure) {
  PipelineAppModel App = makeFerretApp();
  ASSERT_EQ(App.Stages.size(), 6u);
  EXPECT_FALSE(App.Stages.front().Parallel); // load
  EXPECT_FALSE(App.Stages.back().Parallel);  // out
  for (size_t I = 1; I + 1 < App.Stages.size(); ++I)
    EXPECT_TRUE(App.Stages[I].Parallel);
  ASSERT_EQ(App.FusedStages.size(), 3u);
  EXPECT_TRUE(App.FusedStages[1].Parallel);
}

TEST(PipelineApps, DedupStructure) {
  PipelineAppModel App = makeDedupApp();
  ASSERT_EQ(App.Stages.size(), 5u);
  EXPECT_FALSE(App.Stages.front().Parallel);
  EXPECT_FALSE(App.Stages.back().Parallel);
  EXPECT_FALSE(App.FusedStages.empty());
  // Memory-bound: dedup pays far more for thread footprint than ferret.
  EXPECT_GT(App.ThreadOverheadPenalty,
            makeFerretApp().ThreadOverheadPenalty * 3.0);
}

TEST(PipelineApps, FusionSavesWork) {
  // The fused stage's service time must undercut the sum of the stages
  // it replaces (that saving is the benefit of stack communication).
  for (const PipelineAppModel &App : allPipelineApps()) {
    double ParallelSum = 0.0;
    for (const PipelineStageSpec &S : App.Stages)
      if (S.Parallel)
        ParallelSum += S.ServiceSeconds;
    double FusedParallel = 0.0;
    for (const PipelineStageSpec &S : App.FusedStages)
      if (S.Parallel)
        FusedParallel += S.ServiceSeconds;
    EXPECT_LT(FusedParallel, ParallelSum) << App.Name;
    EXPECT_GT(FusedParallel, 0.8 * ParallelSum) << App.Name;
  }
}

TEST(PipelineApps, AnalyticTableFifteenAnchors) {
  // The analytic capacity model already predicts the Table 15 shape
  // before any simulation: even-static starves the ferret bottleneck;
  // oversubscription pays dedup's footprint penalty.
  PipelineAppModel Ferret = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  PipelineSim FerretSim(Ferret, Opts);
  const double FerretEven =
      FerretSim.analyticThroughput({1, 6, 6, 5, 5, 1});
  const double FerretOversub =
      FerretSim.analyticThroughput({1, 24, 24, 24, 24, 1});
  EXPECT_GT(FerretOversub / FerretEven, 1.5);
  EXPECT_LT(FerretOversub / FerretEven, 3.2);

  PipelineAppModel Dedup = makeDedupApp();
  PipelineSim DedupSim(Dedup, Opts);
  const double DedupEven = DedupSim.analyticThroughput({1, 8, 7, 7, 1});
  const double DedupOversub =
      DedupSim.analyticThroughput({1, 24, 24, 24, 1});
  EXPECT_GT(DedupOversub / DedupEven, 0.6);
  EXPECT_LT(DedupOversub / DedupEven, 1.15);
}

} // namespace

//===- tests/TaskTreeTest.cpp - Recursive task-tree runtime tests --------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// TreeEngine and the tree-region integration with the executive:
// exactly-once leaf coverage under raw multi-threaded work stealing
// (auto-split and app-split), the grain/extent configuration contract
// (validation, defaults, rendering), degenerate grains degrading
// gracefully, no lost tasks across reconfiguration epochs, and the
// Steal trace + StealRate/MeanTaskSeconds feature wiring.
//
//===----------------------------------------------------------------------===//

#include "core/Builders.h"
#include "core/TaskTree.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

using namespace dope;
using testing_helpers::loggedSeed;

namespace {

//===----------------------------------------------------------------------===//
// Range packing
//===----------------------------------------------------------------------===//

TEST(TreeEngine, PackRoundTripsBounds) {
  const uint64_t Item = TreeEngine::pack(123, TreeEngine::MaxIndex);
  EXPECT_EQ(TreeEngine::unpackLo(Item), 123u);
  EXPECT_EQ(TreeEngine::unpackHi(Item), TreeEngine::MaxIndex);
  EXPECT_EQ(TreeEngine::unpackLo(TreeEngine::pack(0, 0)), 0u);
}

//===----------------------------------------------------------------------===//
// Raw-thread engine runs: every leaf index covered exactly once.
//===----------------------------------------------------------------------===//

void runAutoSplitCoverage(unsigned Workers, unsigned Grain, uint64_t N) {
  TreeEngine::Options Opts;
  Opts.MaxWorkers = Workers;
  Opts.Seed = loggedSeed(0x7EE5u);
  auto Engine = std::make_shared<TreeEngine>(Opts);
  std::vector<std::atomic<uint32_t>> Hits(N);
  for (auto &H : Hits)
    H.store(0, std::memory_order_relaxed);
  Engine->setBody([&](TreeContext &, uint64_t Lo, uint64_t Hi) {
    ASSERT_LE(Hi - Lo, static_cast<uint64_t>(Grain == 0 ? 1 : Grain));
    for (uint64_t I = Lo; I != Hi; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(Engine->submit(0, N));
  Engine->close();
  std::vector<std::thread> Pool;
  for (unsigned W = 0; W != Workers; ++W)
    Pool.emplace_back([Engine, W, Grain] { Engine->runWorker(W, Grain); });
  for (auto &T : Pool)
    T.join();
  ASSERT_TRUE(Engine->done());
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "leaf " << I;
  EXPECT_EQ(Engine->outstandingTasks(), 0u);
  EXPECT_GE(Engine->tasksExecuted(), (N + Grain - 1) / Grain);
}

TEST(TreeEngine, AutoSplitCoversRangeSingleWorker) {
  runAutoSplitCoverage(1, 16, 10000);
}

TEST(TreeEngine, AutoSplitCoversRangeManyWorkers) {
  runAutoSplitCoverage(4, 16, 100000);
}

TEST(TreeEngine, GrainOneDegradesGracefully) {
  // The most infeasible grain: one task per leaf. Must still complete
  // with no lost tasks, just slowly.
  runAutoSplitCoverage(2, 1, 5000);
}

TEST(TreeEngine, GrainLargerThanRangeRunsOneTask) {
  TreeEngine::Options Opts;
  Opts.MaxWorkers = 2;
  auto Engine = std::make_shared<TreeEngine>(Opts);
  std::atomic<uint64_t> Bodies{0}, Sum{0};
  Engine->setBody([&](TreeContext &, uint64_t Lo, uint64_t Hi) {
    Bodies.fetch_add(1);
    Sum.fetch_add(Hi - Lo);
  });
  ASSERT_TRUE(Engine->submit(0, 100));
  Engine->close();
  Engine->runWorker(0, 1000000);
  EXPECT_EQ(Bodies.load(), 1u);
  EXPECT_EQ(Sum.load(), 100u);
}

TEST(TreeEngine, AppSplitRecursionCoversRange) {
  // AutoSplit off: the body forks explicitly, consulting the grain as
  // its own threshold — the quicksort shape.
  TreeEngine::Options Opts;
  Opts.MaxWorkers = 4;
  Opts.AutoSplit = false;
  Opts.Seed = loggedSeed(0xA55u);
  auto Engine = std::make_shared<TreeEngine>(Opts);
  const uint64_t N = 50000;
  std::vector<std::atomic<uint32_t>> Hits(N);
  for (auto &H : Hits)
    H.store(0, std::memory_order_relaxed);
  Engine->setBody([&](TreeContext &Ctx, uint64_t Lo, uint64_t Hi) {
    while (Hi - Lo > Ctx.grain()) {
      const uint64_t Mid = Lo + (Hi - Lo) / 2;
      Ctx.spawn(Mid, Hi);
      Hi = Mid;
    }
    for (uint64_t I = Lo; I != Hi; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(Engine->submit(0, N));
  Engine->close();
  std::vector<std::thread> Pool;
  for (unsigned W = 0; W != 4; ++W)
    Pool.emplace_back([Engine, W] { Engine->runWorker(W, 32); });
  for (auto &T : Pool)
    T.join();
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "leaf " << I;
}

TEST(TreeEngine, SubmitAfterCloseIsRejected) {
  TreeEngine::Options Opts;
  Opts.MaxWorkers = 1;
  TreeEngine Engine(Opts);
  Engine.setBody([](TreeContext &, uint64_t, uint64_t) {});
  Engine.close();
  EXPECT_FALSE(Engine.submit(0, 10));
  EXPECT_TRUE(Engine.done());
  EXPECT_EQ(Engine.outstandingTasks(), 0u);
}

TEST(TreeEngine, StealsAreTracedWithThiefAndVictim) {
  TreeEngine::Options Opts;
  Opts.MaxWorkers = 2;
  Opts.Name = "traced-tree";
  auto Engine = std::make_shared<TreeEngine>(Opts);
  Tracer Trace;
  Engine->setTracer(&Trace);
  std::atomic<uint64_t> Sum{0};
  Engine->setBody([&](TreeContext &, uint64_t Lo, uint64_t Hi) {
    Sum.fetch_add(Hi - Lo);
  });
  ASSERT_TRUE(Engine->submit(0, 4096));
  Engine->close();
  // Drive both workers from one thread so the interleaving is
  // deterministic: worker 0 takes the root from injection and splits it
  // across its own deque; worker 1 owns nothing, so its first task can
  // only come from a steal.
  EXPECT_EQ(Engine->runOne(0, 8), TreeStep::Ran);
  EXPECT_EQ(Engine->runOne(1, 8), TreeStep::Ran);
  Engine->runWorker(0, 8);
  Engine->runWorker(1, 8);
  EXPECT_EQ(Sum.load(), 4096u);
  unsigned StealRecords = 0;
  for (const TraceRecord &R : Trace.drain())
    if (R.Kind == TraceKind::Steal) {
      ++StealRecords;
      EXPECT_EQ(R.Name, "traced-tree");
      EXPECT_NE(R.A, R.B) << "thief must differ from victim";
      EXPECT_LT(R.A, 2.0);
      EXPECT_LT(R.B, 2.0);
    }
  EXPECT_EQ(StealRecords, Engine->stealsSucceeded());
  EXPECT_GE(StealRecords, 1u);
}

TEST(TreeEngine, StealRateSampleWindowsSuccesses) {
  TreeEngine::Options Opts;
  Opts.MaxWorkers = 2;
  TreeEngine Engine(Opts);
  // First sample primes the window and reports 0.
  EXPECT_EQ(Engine.stealRateSample(), 0.0);
  EXPECT_GE(Engine.stealRateSample(), 0.0);
}

//===----------------------------------------------------------------------===//
// Configuration contract: grain validated like the extent.
//===----------------------------------------------------------------------===//

TEST(TreeConfig, TreeRegionDefaultsValidateAndRender) {
  TaskGraph G;
  Task *T = G.createTask("descend", testing_helpers::dummyFn(), LoadFn(),
                         G.parDescriptor());
  ParDescriptor *Region = G.createTreeRegion(T, 64);
  EXPECT_TRUE(Region->isTree());
  EXPECT_EQ(Region->parKind(), ParKind::Tree);
  EXPECT_EQ(Region->defaultGrain(), 64u);

  RegionConfig Config = defaultConfig(*Region);
  ASSERT_EQ(Config.Tasks.size(), 1u);
  EXPECT_EQ(Config.Tasks[0].Grain, 64u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*Region, Config, &Error)) << Error;
  Config.Tasks[0].Extent = 8;
  EXPECT_EQ(toString(*Region, Config), "<(8, TREE, g=64)>");

  // Grain 0 on a tree task is malformed, exactly like extent 0.
  Config.Tasks[0].Grain = 0;
  EXPECT_FALSE(validateConfig(*Region, Config, &Error));
  EXPECT_NE(Error.find("grain"), std::string::npos);
}

TEST(TreeConfig, GrainOnNonTreeTaskIsRejected) {
  TaskGraph G;
  Task *T = G.createTask("stage", testing_helpers::dummyFn(), LoadFn(),
                         G.parDescriptor());
  ParDescriptor *Region = G.createRegion({T});
  RegionConfig Config = defaultConfig(*Region);
  EXPECT_TRUE(validateConfig(*Region, Config));
  Config.Tasks[0].Grain = 16;
  std::string Error;
  EXPECT_FALSE(validateConfig(*Region, Config, &Error));
  EXPECT_NE(Error.find("non-tree"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Executive integration: DoPE replicas drive the engine.
//===----------------------------------------------------------------------===//

TEST(TaskTreeExecutive, StaticRunCoversRange) {
  TaskGraph G;
  const uint64_t N = 200000;
  std::vector<std::atomic<uint32_t>> Hits(N);
  for (auto &H : Hits)
    H.store(0, std::memory_order_relaxed);
  TreeRegionHandle Tree = buildTaskTree(
      G, "cover",
      [&](TreeContext &, uint64_t Lo, uint64_t Hi) {
        for (uint64_t I = Lo; I != Hi; ++I)
          Hits[I].fetch_add(1, std::memory_order_relaxed);
      },
      /*MaxWorkers=*/4, /*DefaultGrain=*/128);

  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.InitialConfig = defaultConfig(*Tree.Region);
  Opts.InitialConfig.Tasks[0].Extent = 4;
  std::unique_ptr<Dope> D = Dope::create(Tree.Region, std::move(Opts));
  Tree.registerFeatures(*D);
  ASSERT_TRUE(Tree.submit(0, N));
  Tree.close();
  EXPECT_EQ(D->wait(), TaskStatus::Finished);
  // StealRate and MeanTaskSeconds are live platform features.
  EXPECT_TRUE(D->getValue("StealRate").has_value());
  EXPECT_TRUE(D->getValue("MeanTaskSeconds").has_value());
  Dope::destroy(std::move(D));
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "leaf " << I;
}

/// Flips the grain (and extent) every consult, forcing repeated
/// suspend/quiesce cycles mid-computation.
class GrainFlipMechanism : public Mechanism {
public:
  std::string name() const override { return "grain-flip"; }
  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &, const RegionSnapshot &,
              const RegionConfig &Current, const MechanismContext &) override {
    RegionConfig Next = Current;
    ++Consults;
    Next.Tasks[0].Grain = (Consults % 2) ? 32u : 512u;
    Next.Tasks[0].Extent = (Consults % 2) ? 2u : 4u;
    return Next;
  }

private:
  unsigned Consults = 0;
};

TEST(TaskTreeExecutive, NoTaskLostAcrossReconfigurations) {
  TaskGraph G;
  const uint64_t N = 400000;
  std::vector<std::atomic<uint32_t>> Hits(N);
  for (auto &H : Hits)
    H.store(0, std::memory_order_relaxed);
  TreeRegionHandle Tree = buildTaskTree(
      G, "churn",
      [&](TreeContext &, uint64_t Lo, uint64_t Hi) {
        for (uint64_t I = Lo; I != Hi; ++I)
          Hits[I].fetch_add(1, std::memory_order_relaxed);
      },
      /*MaxWorkers=*/4, /*DefaultGrain=*/64);

  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.Mech = std::make_unique<GrainFlipMechanism>();
  Opts.MonitorIntervalSeconds = 0.002;
  Opts.MinReconfigIntervalSeconds = 0.002;
  Opts.InitialConfig = defaultConfig(*Tree.Region);
  Opts.InitialConfig.Tasks[0].Extent = 2;
  std::unique_ptr<Dope> D = Dope::create(Tree.Region, std::move(Opts));
  Tree.registerFeatures(*D);
  // Trickle roots in while reconfigurations churn underneath.
  for (uint64_t Chunk = 0; Chunk != 8; ++Chunk)
    ASSERT_TRUE(
        Tree.submit(Chunk * (N / 8), (Chunk + 1) * (N / 8)));
  Tree.close();
  EXPECT_EQ(D->wait(), TaskStatus::Finished);
  const uint64_t Reconfigs = D->reconfigurationCount();
  Dope::destroy(std::move(D));
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "leaf " << I << " after " << Reconfigs
                                  << " reconfigurations";
}

} // namespace

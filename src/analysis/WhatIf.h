//===- analysis/WhatIf.h - What-if projection and recommendation -*- C++ -*-==//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The projection half of the causal what-if profiler. A WhatIfModel is
/// a trace-calibrated analytic pipeline model — per-stage service times
/// measured by CriticalPath, platform penalties from the app model — and
/// answers "what would throughput be if stage S ran at DoP N" without
/// re-running anything. Its fixed-point solver mirrors
/// PipelineSim::analyticThroughput exactly, which is what makes the
/// validation contract enforceable: a recommendation's predicted
/// throughput must agree with the re-simulated actual within a bound, or
/// the recommendation is rejected.
///
/// Two recommendation surfaces:
///  - recommendExtents: ranked per-stage DoP assignments for one
///    pipeline under a thread budget (greedy marginal-gain frontier,
///    deterministic tie-breaks).
///  - recommendShares: a static per-tenant thread split for a colocated
///    platform, from the tenants' capacity curves and offered loads.
///
/// Recommendations convert to WarmStartHint JSON (core/WarmStart.h) so
/// the mechanisms can start where the profile says the optimum is.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ANALYSIS_WHATIF_H
#define DOPE_ANALYSIS_WHATIF_H

#include "analysis/CriticalPath.h"
#include "core/WarmStart.h"
#include "sim/ColocationSim.h"
#include "sim/PipelineSim.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace dope {

/// Trace-calibrated analytic model of one pipeline on the C-context
/// platform.
struct WhatIfModel {
  /// Stage names, pipeline order.
  std::vector<std::string> Stages;
  /// Mean per-item service seconds per stage (measured or from spec).
  std::vector<double> ServiceSeconds;
  /// Sequential stages are pinned at extent 1.
  std::vector<bool> Parallel;
  /// Extents the trace ran under (profile: rounded achieved
  /// parallelism), the reference point of what-if deltas.
  std::vector<unsigned> BaselineExtents;
  unsigned Contexts = 24;
  /// Platform penalties, meanings as in PipelineAppModel.
  double OversubPenalty = 0.1;
  double ThreadOverheadPenalty = 0.02;

  /// Calibrates a model from a causal profile: stage order and service
  /// times are the profile's, a stage counts as parallelizable only if
  /// the trace ever shows two of its instances open at once (the
  /// profile cannot distinguish "sequential" from "ran at DoP 1", so it
  /// refuses to project speedup from stages with no overlap evidence),
  /// and baseline extents are the observed peak concurrency.
  static WhatIfModel fromProfile(const CriticalPathProfile &Profile,
                                 unsigned Contexts,
                                 double OversubPenalty = 0.1,
                                 double ThreadOverheadPenalty = 0.02);

  /// Builds a model directly from an app spec (no trace): service times
  /// and parallel flags from the spec. Empty \p BaselineExtents means
  /// all ones.
  static WhatIfModel fromApp(const PipelineAppModel &App, unsigned Contexts,
                             std::vector<unsigned> BaselineExtents = {});

  /// Projected steady-state throughput of \p Extents: the damped
  /// fixed-point of PipelineSim::analyticThroughput over this model's
  /// measured service times.
  double projectThroughput(const std::vector<unsigned> &Extents) const;

  /// projectThroughput(BaselineExtents).
  double baselineThroughput() const;
};

/// One ranked what-if recommendation.
struct Recommendation {
  std::vector<unsigned> Extents;
  double PredictedThroughput = 0.0;
  double BaselineThroughput = 0.0;
  /// Predicted / Baseline.
  double PredictedSpeedup = 1.0;
  /// Human-readable summary of the change ("grow compress 2->5, ...").
  std::string Rationale;
};

/// Ranked DoP recommendations for \p Model under \p Budget total
/// threads. Deterministic: the greedy frontier adds one thread at a time
/// to the stage with the largest projected gain (ties to the lowest
/// stage index), and candidates are ranked by projected throughput with
/// smaller footprints winning ties. Returns at most \p TopK entries,
/// best first; the baseline itself is never returned.
std::vector<Recommendation> recommendExtents(const WhatIfModel &Model,
                                             unsigned Budget, size_t TopK);

/// Converts a recommendation into a warm-start hint addressed to
/// \p Mechanism (empty = any mechanism).
WarmStartHint makeWarmStartHint(std::string Mechanism,
                                const Recommendation &Rec);

/// Outcome of re-simulating a recommendation.
struct ValidationReport {
  double Predicted = 0.0;
  double Actual = 0.0;
  /// |Predicted - Actual| / Actual.
  double RelError = 0.0;
  /// True when RelError is within the bound.
  bool Ok = false;
};

/// Re-runs \p Sim statically under the recommended extents and compares
/// the measured throughput against the prediction. \p Bound is the
/// relative error above which the recommendation fails validation.
ValidationReport validateRecommendation(PipelineSim &Sim,
                                        const Recommendation &Rec,
                                        double Bound);

/// A static thread split for a colocated platform.
struct ShareRecommendation {
  /// Threads per tenant, tenant spec order; sums to the platform size.
  std::vector<unsigned> Shares;
  /// Predicted total completions/second: sum over tenants of
  /// min(capacity(share), offered rate).
  double PredictedCompletions = 0.0;
  std::string Rationale;
};

/// Greedy marginal-gain split of \p Contexts threads across \p Tenants:
/// each next thread goes to the tenant whose served rate
/// min(capacity, offered) gains most (ties to the lowest tenant index);
/// every tenant gets at least one thread. Deterministic.
ShareRecommendation
recommendShares(const std::vector<ColocationTenantSpec> &Tenants,
                unsigned Contexts);

/// Re-runs the colocation under StaticSplit with the recommended shares
/// and compares measured total completions/second with the prediction.
ValidationReport
validateShares(std::vector<ColocationTenantSpec> Tenants,
               ColocationSimOptions Opts, const ShareRecommendation &Rec,
               double Bound);

/// JSON renderings shared by the CLI and the golden tests (stable:
/// insertion-ordered objects, dump() formatting).
JsonValue toJson(const StageProfile &SP);
JsonValue toJson(const CriticalPathProfile &Profile);
JsonValue toJson(const Recommendation &Rec);
JsonValue toJson(const std::vector<Recommendation> &Recs);
JsonValue toJson(const ValidationReport &Report);
JsonValue toJson(const ShareRecommendation &Rec);

} // namespace dope

#endif // DOPE_ANALYSIS_WHATIF_H

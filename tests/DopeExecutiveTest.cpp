//===- tests/DopeExecutiveTest.cpp - Native executive tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Dope.h"

#include "queue/WorkQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

using namespace dope;

namespace {

/// A DOALL loop over a closed work queue: every functor invocation pops
/// one item; FINISHED once the queue drains.
struct DoAllApp {
  TaskGraph Graph;
  WorkQueue<int> Queue;
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Count{0};
  ParDescriptor *Root = nullptr;
  Task *Work = nullptr;

  explicit DoAllApp(int NumItems, bool UseBeginEnd = true) {
    for (int I = 0; I != NumItems; ++I)
      Queue.push(I);
    Queue.close();

    TaskFn Fn = [this, UseBeginEnd](TaskRuntime &RT) {
      if (UseBeginEnd && RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      std::optional<int> Item = Queue.waitAndPop();
      if (!Item)
        return TaskStatus::Finished;
      Sum.fetch_add(static_cast<uint64_t>(*Item));
      Count.fetch_add(1);
      if (UseBeginEnd && RT.end() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      return TaskStatus::Executing;
    };
    LoadFn Load = [this] { return static_cast<double>(Queue.size()); };
    Work = Graph.createTask("doall", Fn, Load, Graph.parDescriptor());
    Root = Graph.createRegion({Work});
  }
};

TEST(DopeExecutive, DoAllCompletesSequentially) {
  DoAllApp App(100);
  DopeOptions Opts;
  Opts.MaxThreads = 1;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->wait();
  EXPECT_TRUE(D->finished());
  EXPECT_EQ(App.Count.load(), 100u);
  EXPECT_EQ(App.Sum.load(), 4950u);
}

TEST(DopeExecutive, DoAllCompletesWithParallelExtent) {
  DoAllApp App(500);
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  RegionConfig Config;
  TaskConfig TC;
  TC.Extent = 4;
  Config.Tasks.push_back(TC);
  Opts.InitialConfig = Config;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->wait();
  EXPECT_EQ(App.Count.load(), 500u);
  EXPECT_EQ(App.Sum.load(), 500u * 499u / 2);
}

TEST(DopeExecutive, DestroyWaitsForTasks) {
  auto App = std::make_unique<DoAllApp>(50);
  DopeOptions Opts;
  Opts.MaxThreads = 2;
  std::unique_ptr<Dope> D = Dope::create(App->Root, std::move(Opts));
  Dope::destroy(std::move(D));
  EXPECT_EQ(App->Count.load(), 50u);
}

TEST(DopeExecutive, RecordsExecutionTimeAndLoad) {
  DoAllApp App(200);
  DopeOptions Opts;
  Opts.MaxThreads = 2;
  Opts.MonitorIntervalSeconds = 0.001;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->wait();
  // Each instance is cheap but timing is recorded for every begin/end
  // pair.
  EXPECT_GE(D->getExecTime(App.Work), 0.0);
  // The queue drained, so the smoothed load is small but was sampled.
  EXPECT_GE(D->getLoad(App.Work), 0.0);
}

TEST(DopeExecutive, RequestStopEndsEarly) {
  // An infinite loop that only exits via the SUSPENDED signal.
  TaskGraph Graph;
  std::atomic<uint64_t> Iterations{0};
  TaskFn Fn = [&](TaskRuntime &RT) {
    if (RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Finished; // treat stop as end-of-input
    Iterations.fetch_add(1);
    if (RT.end() == TaskStatus::Suspended)
      return TaskStatus::Finished;
    return TaskStatus::Executing;
  };
  Task *Loop = Graph.createTask("spin", Fn, LoadFn(),
                                Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({Loop});

  DopeOptions Opts;
  Opts.MaxThreads = 1;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  while (Iterations.load() < 10)
    std::this_thread::yield();
  D->requestStop();
  D->wait();
  EXPECT_TRUE(D->finished());
  EXPECT_GE(Iterations.load(), 10u);
}

/// A two-stage pipeline (producer -> consumer) communicating through a
/// WorkQueue; the producer's FiniCB closes the queue so the consumer
/// drains — the paper's sentinel protocol with queue-closure semantics.
struct PipelineApp {
  TaskGraph Graph;
  WorkQueue<int> Q;
  std::atomic<int> Produced{0};
  std::atomic<uint64_t> Consumed{0};
  std::mutex SeenMutex;
  std::set<int> Seen;
  std::atomic<int> Burn{0};
  int Limit;
  ParDescriptor *Root = nullptr;
  Task *Producer = nullptr;
  Task *Consumer = nullptr;

  /// When \p HoldOpen is non-null the producer keeps the loop alive
  /// (without producing) until it becomes true — used to guarantee a
  /// reconfiguration lands before the stream ends.
  explicit PipelineApp(int Limit, std::atomic<bool> *HoldOpen = nullptr)
      : Limit(Limit) {
    TaskFn ProduceFn = [this, HoldOpen](TaskRuntime &RT) {
      if (RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      const int Item = Produced.load();
      if (Item >= this->Limit) {
        if (HoldOpen && !HoldOpen->load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          return RT.end() == TaskStatus::Suspended ? TaskStatus::Suspended
                                                   : TaskStatus::Executing;
        }
        return TaskStatus::Finished;
      }
      Produced.store(Item + 1); // single sequential producer
      Q.push(Item);
      if (RT.end() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      return TaskStatus::Executing;
    };
    // The consumer ignores suspension entirely and drains to the
    // sentinel (closure), like Transform/Write in the paper's Fig. 7.
    TaskFn ConsumeFn = [this](TaskRuntime &) {
      std::optional<int> Item = Q.waitAndPop();
      if (!Item)
        return TaskStatus::Finished;
      // Burn a little CPU per item so runs span many monitor intervals.
      Burn += static_cast<int>(*Item == 0);
      for (volatile int Spin = 0; Spin < 2000; ++Spin) {
      }
      Consumed.fetch_add(1);
      {
        std::lock_guard<std::mutex> Lock(SeenMutex);
        Seen.insert(*Item);
      }
      return TaskStatus::Executing;
    };
    HookFn ProducerFini = [this] { Q.close(); };
    HookFn ProducerInit = [this] { Q.reopen(); };

    Producer = Graph.createTask("produce", ProduceFn, LoadFn(),
                                Graph.seqDescriptor(), ProducerInit,
                                ProducerFini);
    Consumer = Graph.createTask(
        "consume", ConsumeFn,
        [this] { return static_cast<double>(Q.size()); },
        Graph.parDescriptor());
    Root = Graph.createRegion({Producer, Consumer});
  }
};

TEST(DopeExecutive, PipelineDeliversEveryItemOnce) {
  PipelineApp App(300);
  DopeOptions Opts;
  Opts.MaxThreads = 3;
  RegionConfig Config;
  TaskConfig ProducerC, ConsumerC;
  ConsumerC.Extent = 2;
  Config.Tasks = {ProducerC, ConsumerC};
  Opts.InitialConfig = Config;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->wait();
  EXPECT_EQ(App.Consumed.load(), 300u);
  EXPECT_EQ(App.Seen.size(), 300u);
  EXPECT_EQ(*App.Seen.begin(), 0);
  EXPECT_EQ(*App.Seen.rbegin(), 299);
}

/// Mechanism that switches the configuration once, exercising the full
/// suspend / quiesce / reconfigure path, and reports (via \p Applied)
/// when the executive confirms the target is running.
class SwitchOnceMechanism : public Mechanism {
public:
  SwitchOnceMechanism(RegionConfig Target, std::atomic<bool> &Applied)
      : Target(std::move(Target)), Applied(Applied) {}
  std::string name() const override { return "SwitchOnce"; }
  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &, const RegionSnapshot &,
              const RegionConfig &Current, const MechanismContext &)
      override {
    if (Current == Target) {
      Applied.store(true);
      return std::nullopt;
    }
    return Target;
  }

private:
  RegionConfig Target;
  std::atomic<bool> &Applied;
};

TEST(DopeExecutive, ReconfigurationPreservesPipelineOutput) {
  std::atomic<bool> Applied{false};
  PipelineApp App(2000, &Applied);
  DopeOptions Opts;
  Opts.MaxThreads = 4;
  Opts.MonitorIntervalSeconds = 0.001;
  Opts.MinReconfigIntervalSeconds = 0.001;

  RegionConfig Initial;
  TaskConfig ProducerC, ConsumerC;
  ConsumerC.Extent = 1;
  Initial.Tasks = {ProducerC, ConsumerC};
  Opts.InitialConfig = Initial;

  RegionConfig Target = Initial;
  Target.Tasks[1].Extent = 3;
  Opts.Mech = std::make_unique<SwitchOnceMechanism>(Target, Applied);

  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->wait();
  // Reconfiguration must not lose or duplicate items. Items produced
  // before a suspension land in the queue and are re-read after the
  // restart; the producer counter never rolls back, so every index in
  // [0, 2000) arrives exactly once.
  EXPECT_EQ(App.Seen.size(), App.Consumed.load());
  EXPECT_EQ(App.Consumed.load(), 2000u);
  EXPECT_GE(D->reconfigurationCount(), 1u);
  EXPECT_EQ(D->currentConfig().Tasks[1].Extent, 3u);
}

/// Nested parallelism: an outer loop over jobs where each job runs an
/// inner DOALL region via TaskRuntime::wait().
struct NestedApp {
  TaskGraph Graph;
  std::atomic<int> NextJob{0};
  std::atomic<uint64_t> InnerWorkDone{0};
  std::atomic<int> SharedCounter{0};
  int Jobs;
  int ChunksPerJob;
  ParDescriptor *Root = nullptr;
  Task *Outer = nullptr;
  Task *Inner = nullptr;

  NestedApp(int Jobs, int ChunksPerJob)
      : Jobs(Jobs), ChunksPerJob(ChunksPerJob) {
    TaskFn InnerFn = [this](TaskRuntime &) {
      const int Chunk = SharedCounter.fetch_add(1);
      if (Chunk >= this->ChunksPerJob)
        return TaskStatus::Finished;
      InnerWorkDone.fetch_add(1);
      return TaskStatus::Executing;
    };
    Inner = Graph.createTask("chunk", InnerFn, LoadFn(),
                             Graph.parDescriptor());
    ParDescriptor *InnerRegion = Graph.createRegion({Inner});

    TaskFn OuterFn = [this](TaskRuntime &RT) {
      if (RT.begin() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      const int Job = NextJob.fetch_add(1);
      if (Job >= this->Jobs)
        return TaskStatus::Finished;
      SharedCounter.store(0);
      const TaskStatus Inner = RT.wait();
      if (Inner == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      if (RT.end() == TaskStatus::Suspended)
        return TaskStatus::Suspended;
      return TaskStatus::Executing;
    };
    Outer = Graph.createTask(
        "job", OuterFn, LoadFn(),
        Graph.createDescriptor(TaskKind::Parallel, {InnerRegion}));
    Root = Graph.createRegion({Outer});
  }
};

TEST(DopeExecutive, NestedWaitRunsInnerRegion) {
  // One outer job at a time so the shared chunk counter is unambiguous.
  NestedApp App(10, 8);
  DopeOptions Opts;
  Opts.MaxThreads = 3;
  RegionConfig Config;
  TaskConfig OuterC;
  OuterC.Extent = 1;
  OuterC.AltIndex = 0;
  TaskConfig InnerC;
  InnerC.Extent = 3;
  OuterC.Inner.push_back(InnerC);
  Config.Tasks.push_back(OuterC);
  Opts.InitialConfig = Config;

  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->wait();
  EXPECT_EQ(App.InnerWorkDone.load(), 10u * 8u);
}

/// Three-level nesting: an outer loop over batches, a middle loop over
/// jobs within a batch, and an inner DOALL over chunks within a job —
/// arbitrary depth is part of the descriptor design even though the
/// paper's applications expose at most two levels.
TEST(DopeExecutive, ThreeLevelNestExecutes) {
  TaskGraph Graph;
  std::atomic<int> ChunkCursor{0};
  std::atomic<uint64_t> ChunksDone{0};
  std::atomic<int> JobCursor{0};
  std::atomic<int> BatchCursor{0};
  constexpr int Batches = 4, JobsPerBatch = 3, ChunksPerJob = 5;

  TaskFn ChunkFn = [&](TaskRuntime &) {
    if (ChunkCursor.fetch_add(1) >= ChunksPerJob)
      return TaskStatus::Finished;
    ChunksDone.fetch_add(1);
    return TaskStatus::Executing;
  };
  Task *Chunk =
      Graph.createTask("chunk", ChunkFn, LoadFn(), Graph.parDescriptor());
  ParDescriptor *ChunkRegion = Graph.createRegion({Chunk});

  TaskFn JobFn = [&](TaskRuntime &RT) {
    if (JobCursor.fetch_add(1) >= JobsPerBatch)
      return TaskStatus::Finished;
    ChunkCursor.store(0);
    return RT.wait() == TaskStatus::Suspended ? TaskStatus::Suspended
                                              : TaskStatus::Executing;
  };
  Task *Job = Graph.createTask(
      "job", JobFn, LoadFn(),
      Graph.createDescriptor(TaskKind::Parallel, {ChunkRegion}));
  ParDescriptor *JobRegion = Graph.createRegion({Job});

  TaskFn BatchFn = [&](TaskRuntime &RT) {
    if (RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    if (BatchCursor.fetch_add(1) >= Batches)
      return TaskStatus::Finished;
    JobCursor.store(0);
    const TaskStatus Inner = RT.wait();
    if (Inner == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    return RT.end() == TaskStatus::Suspended ? TaskStatus::Suspended
                                             : TaskStatus::Executing;
  };
  Task *Batch = Graph.createTask(
      "batch", BatchFn, LoadFn(),
      Graph.createDescriptor(TaskKind::Parallel, {JobRegion}));
  ParDescriptor *Root = Graph.createRegion({Batch});

  // <1 batch, 1 job, 2 chunks> — 1 * (1 * 2) = 2 threads.
  RegionConfig Config = defaultConfig(*Root);
  Config.Tasks[0].Inner[0].Inner[0].Extent = 2;
  std::string Error;
  ASSERT_TRUE(validateConfig(*Root, Config, &Error)) << Error;
  EXPECT_EQ(totalThreads(*Root, Config), 2u);

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  Opts.InitialConfig = Config;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  D->wait();
  EXPECT_EQ(ChunksDone.load(),
            static_cast<uint64_t>(Batches * JobsPerBatch * ChunksPerJob));
}

TEST(DopeExecutive, NoInnerAlternativeMakesWaitFinish) {
  TaskGraph Graph;
  std::atomic<int> Count{0};
  TaskFn Fn = [&](TaskRuntime &RT) {
    EXPECT_EQ(RT.wait(), TaskStatus::Finished);
    return ++Count >= 3 ? TaskStatus::Finished : TaskStatus::Executing;
  };
  Task *T = Graph.createTask("leaf", Fn, LoadFn(), Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({T});
  DopeOptions Opts;
  Opts.MaxThreads = 1;
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  D->wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(DopeExecutive, PlatformFeatureRegistration) {
  DoAllApp App(10);
  DopeOptions Opts;
  Opts.MaxThreads = 1;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  D->registerCB("SystemPower", [] { return 540.0; });
  EXPECT_TRUE(D->getValue("SystemPower").has_value());
  EXPECT_DOUBLE_EQ(*D->getValue("SystemPower"), 540.0);
  EXPECT_FALSE(D->getValue("Temperature").has_value());
  D->wait();
}

TEST(DopeExecutive, SnapshotReflectsConfiguration) {
  DoAllApp App(50);
  DopeOptions Opts;
  Opts.MaxThreads = 2;
  RegionConfig Config;
  TaskConfig TC;
  TC.Extent = 2;
  Config.Tasks.push_back(TC);
  Opts.InitialConfig = Config;
  std::unique_ptr<Dope> D = Dope::create(App.Root, std::move(Opts));
  RegionSnapshot Snap = D->snapshot();
  ASSERT_EQ(Snap.Tasks.size(), 1u);
  EXPECT_EQ(Snap.Tasks[0].Name, "doall");
  EXPECT_EQ(Snap.Tasks[0].CurrentExtent, 2u);
  D->wait();
}

} // namespace

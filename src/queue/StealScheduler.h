//===- queue/StealScheduler.h - Work-stealing task scheduler --*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing scheduler over per-worker ChaseLevDeques. The
/// scheduler owns no threads: the executive's pool replicas (or a
/// benchmark's raw threads) *attach* as workers by index and drive it
/// through spawn/tryAcquire. The central WorkQueue stays the injection
/// queue for external submissions — the scheduler only distributes work
/// that workers spawn from inside tasks.
///
///   * spawn(W, Item): W pushes onto its own deque — lock-free,
///     allocation-free (DOPE_HOT). If any worker is parked, a wake is
///     posted through the parking lot's cold path.
///   * tryAcquire(W, Out): pop own deque (LIFO: depth-first, cache-warm),
///     else sweep victims in a per-worker seeded random order and steal
///     (FIFO: breadth-first, the biggest subtrees first — the Cilk
///     argument).
///   * parkUntilWork: after repeated failed sweeps a worker parks on a
///     condvar with a bounded timeout, so schedulers embedded in DoPE
///     replicas re-observe suspend flags even if a wake is lost.
///
/// The deque array is sized once (MaxWorkers) and never reallocated:
/// shrinking the active worker set during a reconfiguration epoch simply
/// leaves some deques unowned — thieves keep sweeping *all* deques, so
/// work stranded in a retired worker's deque drains through steals and no
/// task is ever lost across extent changes.
///
/// Steal and execution counters aggregate into the StealRate and
/// MeanTaskSeconds features the grain-adaptation mechanism consumes.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_QUEUE_STEALSCHEDULER_H
#define DOPE_QUEUE_STEALSCHEDULER_H

#include "queue/ChaseLevDeque.h"
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace dope {

/// Work-stealing scheduler; T must satisfy ChaseLevDeque's constraints
/// (trivially copyable, <= 8 bytes).
template <typename T> class StealScheduler {
public:
  /// \p MaxWorkers deques are allocated up front; worker indices are
  /// [0, MaxWorkers). \p Seed drives every worker's victim-selection RNG
  /// deterministically.
  explicit StealScheduler(unsigned MaxWorkers, uint64_t Seed = 0x9e3779b9ull,
                          size_t InitialDequeCapacity = 64)
      : WorkerCount(MaxWorkers == 0 ? 1 : MaxWorkers) {
    Workers.reserve(WorkerCount);
    for (unsigned W = 0; W != WorkerCount; ++W) {
      auto State = std::make_unique<WorkerState>(InitialDequeCapacity);
      // SplitMix64 per worker: distinct, reproducible victim sequences.
      uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (W + 1);
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      State->Rng = Z ^ (Z >> 31);
      if (State->Rng == 0)
        State->Rng = 0x2545f4914f6cdd1dull;
      Workers.push_back(std::move(State));
    }
  }

  StealScheduler(const StealScheduler &) = delete;
  StealScheduler &operator=(const StealScheduler &) = delete;

  unsigned maxWorkers() const { return WorkerCount; }

  /// Worker \p W publishes \p Item for later execution. Owner-side fast
  /// path: lock-free push plus one relaxed parked-count test; waking a
  /// parked worker diverts to the cold notify path.
  DOPE_HOT void spawn(unsigned W, T Item) {
    Workers[W]->Deque.push(Item);
    // seq_cst pairs with the parking worker's seq_cst increment of
    // Parked before its final empty-check: either we observe the parker
    // (and post a wake), or the parker's check observes our push. A
    // residual miss only costs the parker's bounded timeout.
    if (Parked.load(std::memory_order_seq_cst) > 0)
      notifyOne();
  }

  /// Worker \p W takes its next task: own deque first, then a randomized
  /// sweep of every other deque. Returns false when nothing was found
  /// (the caller may poll an injection queue, park, or exit). Steal
  /// attempts and successes are counted for the StealRate feature.
  /// \p StolenFrom (when non-null) receives the deque index the task came
  /// from: W itself for an own-pop, the victim for a steal — the engine's
  /// TraceKind::Steal records key off it.
  DOPE_HOT bool tryAcquire(unsigned W, T &Out,
                           unsigned *StolenFrom = nullptr) {
    WorkerState &Me = *Workers[W];
    if (Me.Deque.pop(Out)) {
      if (StolenFrom)
        *StolenFrom = W;
      return true;
    }
    return stealSweep(W, Out, StolenFrom);
  }

  /// One randomized pass over the other workers' deques (plus retries on
  /// CAS aborts). Exposed for tests; tryAcquire is the normal entry.
  bool stealSweep(unsigned W, T &Out, unsigned *StolenFrom = nullptr) {
    if (WorkerCount == 1)
      return false;
    WorkerState &Me = *Workers[W];
    // Two sweeps: an Abort on the last live victim should not report
    // starvation while work is demonstrably present.
    for (unsigned Round = 0; Round != 2; ++Round) {
      bool SawAbort = false;
      for (unsigned I = 1; I != WorkerCount; ++I) {
        const unsigned Victim = victimFor(Me, W);
        Me.StealsAttempted.fetch_add(1, std::memory_order_relaxed);
        switch (Workers[Victim]->Deque.steal(Out)) {
        case StealOutcome::Success:
          Me.StealsSucceeded.fetch_add(1, std::memory_order_relaxed);
          if (StolenFrom)
            *StolenFrom = Victim;
          return true;
        case StealOutcome::Abort:
          SawAbort = true;
          break;
        case StealOutcome::Empty:
          break;
        }
      }
      if (!SawAbort)
        break;
    }
    return false;
  }

  /// Records one executed task for worker \p W (MeanTaskSeconds pairs
  /// this count with the executive's exec-time metric).
  DOPE_HOT void noteTaskRun(unsigned W) {
    Workers[W]->TasksRun.fetch_add(1, std::memory_order_relaxed);
  }

  /// Parks the calling worker until new work is spawned, \p Predicate
  /// turns true, or \p MaxWait elapses — whichever comes first. The
  /// bounded wait keeps embedded workers responsive to executive suspend
  /// flags even when a wake is missed.
  template <typename Pred>
  void parkUntilWork(Pred Predicate, std::chrono::microseconds MaxWait) {
    Parked.fetch_add(1, std::memory_order_seq_cst);
    const uint64_t Epoch = WakeEpoch.load(std::memory_order_acquire);
    if (Predicate() || anyQueued()) {
      Parked.fetch_sub(1, std::memory_order_relaxed); // dope-lint: mo-proof(design-16-parking)
      return;
    }
    std::unique_lock<std::mutex> Lock(ParkMutex);
    ParkCond.wait_for(Lock, MaxWait, [&] {
      return WakeEpoch.load(std::memory_order_relaxed) != Epoch || // dope-lint: mo-proof(design-16-parking)
             Predicate();
    });
    Parked.fetch_sub(1, std::memory_order_relaxed); // dope-lint: mo-proof(design-16-parking)
  }

  /// Wakes every parked worker (termination, suspension, injection).
  DOPE_COLD void wakeAll() {
    WakeEpoch.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> Lock(ParkMutex);
    }
    ParkCond.notify_all();
  }

  /// True when any deque holds at least one element. Approximate under
  /// concurrency (like WorkQueue::size).
  DOPE_HOT bool anyQueued() const {
    for (const auto &W : Workers)
      if (!W->Deque.empty())
        return true;
    return false;
  }

  /// Sum of per-deque sizes; exact only when quiesced.
  size_t queuedTasks() const {
    size_t Total = 0;
    for (const auto &W : Workers)
      Total += W->Deque.size();
    return Total;
  }

  /// Owner-side drain of every deque (quiesced callers only): pops all
  /// remaining tasks into \p Out. Used by harnesses that dismantle a
  /// scheduler mid-computation.
  void drainAll(std::vector<T> &Out) {
    T Item;
    for (auto &W : Workers)
      while (W->Deque.pop(Item))
        Out.push_back(Item);
  }

  //===------------------------------------------------------------------===//
  // Aggregated statistics (monitoring features, benchmarks, tests)
  //===------------------------------------------------------------------===//

  uint64_t stealsAttempted() const {
    uint64_t N = 0;
    for (const auto &W : Workers)
      N += W->StealsAttempted.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t stealsSucceeded() const {
    uint64_t N = 0;
    for (const auto &W : Workers)
      N += W->StealsSucceeded.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t tasksRun() const {
    uint64_t N = 0;
    for (const auto &W : Workers)
      N += W->TasksRun.load(std::memory_order_relaxed);
    return N;
  }
  unsigned parkedWorkers() const {
    return static_cast<unsigned>(Parked.load(std::memory_order_relaxed)); // dope-lint: mo-proof(design-16-parking)
  }

private:
  /// Per-worker state, cache-line separated so one worker's counters and
  /// RNG never false-share with a neighbour's.
  struct alignas(64) WorkerState {
    explicit WorkerState(size_t DequeCapacity) : Deque(DequeCapacity) {}
    ChaseLevDeque<T> Deque;
    uint64_t Rng = 1; // owner-only
    std::atomic<uint64_t> StealsAttempted{0};
    std::atomic<uint64_t> StealsSucceeded{0};
    std::atomic<uint64_t> TasksRun{0};
  };

  /// xorshift64* step over the worker-private RNG; maps to [0, N) skipping
  /// the worker itself.
  unsigned victimFor(WorkerState &Me, unsigned W) {
    uint64_t X = Me.Rng;
    X ^= X >> 12;
    X ^= X << 25;
    X ^= X >> 27;
    Me.Rng = X;
    const uint64_t Mixed = X * 0x2545f4914f6cdd1dull;
    unsigned Victim =
        static_cast<unsigned>(Mixed % (WorkerCount - 1));
    if (Victim >= W)
      ++Victim;
    return Victim;
  }

  /// Cold path of spawn(): one worker is parked, hand it the wake. The
  /// epoch bump inside the lock covers a worker that passed its checks
  /// but has not reached wait_for yet.
  DOPE_COLD void notifyOne() {
    {
      std::lock_guard<std::mutex> Lock(ParkMutex);
      WakeEpoch.fetch_add(1, std::memory_order_release);
    }
    ParkCond.notify_one();
  }

  const unsigned WorkerCount;
  std::vector<std::unique_ptr<WorkerState>> Workers;

  /// Parking lot. WakeEpoch increments on every spawn/wakeAll; a worker
  /// only sleeps if the epoch it sampled before its final empty-check is
  /// still current inside the lock, which closes the lost-wakeup window.
  std::mutex ParkMutex;
  std::condition_variable ParkCond;
  std::atomic<int> Parked{0};
  std::atomic<uint64_t> WakeEpoch{0};
};

} // namespace dope

#endif // DOPE_QUEUE_STEALSCHEDULER_H

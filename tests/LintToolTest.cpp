//===- tests/LintToolTest.cpp - dope_lint conformance suite ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Drives the dope_lint binary end to end (ctest label: lint):
//  - every check ID reproduces its golden diagnostic on a known-bad
//    fixture (tests/lint/fixtures -> tests/lint/expected),
//  - the clean and suppression fixtures stay silent,
//  - the tool reports zero findings over the repository's own src/
//    (via the exported compile_commands.json),
//  - a seeded regression — re-introducing a raw system_clock read into
//    a mechanism — is caught,
//  - JSON output parses and the check table lists every ID.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

/// Runs the lint binary with \p Args, capturing stdout.
RunResult runLint(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(DOPE_LINT_BIN) + " " + Args + " 2>/dev/null";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P) {
    R.Output = "<popen failed>";
    return R;
  }
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string readFile(const fs::path &Path) {
  std::ifstream IS(Path);
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

std::string fixture(const std::string &Name) {
  return std::string(DOPE_LINT_FIXTURES) + "/" + Name + ".cpp";
}

std::string expected(const std::string &Name) {
  return std::string(DOPE_LINT_FIXTURES) + "/../expected/" + Name + ".txt";
}

/// Golden comparison for one fixture: exact diagnostics, exact exit
/// code (1 when the golden lists findings, 0 when it is empty).
void checkGolden(const std::string &Name) {
  RunResult R = runLint("--basenames --quiet " + fixture(Name));
  std::string Want = readFile(expected(Name));
  EXPECT_EQ(R.Output, Want) << "fixture " << Name
                            << " diverged from its golden diagnostics";
  EXPECT_EQ(R.ExitCode, Want.empty() ? 0 : 1) << "fixture " << Name;
}

} // namespace

TEST(LintGolden, DeterminismClock) { checkGolden("bad_clock"); }
TEST(LintGolden, DeterminismRandom) { checkGolden("bad_random"); }
TEST(LintGolden, HotPathLock) { checkGolden("bad_hot_lock"); }
TEST(LintGolden, HotPathAlloc) { checkGolden("bad_hot_alloc"); }
TEST(LintGolden, HotPathVirtual) { checkGolden("bad_hot_virtual"); }
TEST(LintGolden, HotPathStealRuntime) { checkGolden("bad_hot_steal"); }
TEST(LintGolden, BeginEndPairing) { checkGolden("bad_pairing"); }
TEST(LintGolden, WaitBeforeDestroy) { checkGolden("bad_create_nowait"); }
TEST(LintGolden, FiniOnce) { checkGolden("bad_fini_twice"); }
TEST(LintGolden, TraceKindNames) { checkGolden("bad_trace_names"); }
TEST(LintGolden, TraceKindSwitch) { checkGolden("bad_trace_switch"); }
TEST(LintGolden, CleanFixtureSilent) { checkGolden("good_clean"); }
TEST(LintGolden, SuppressionsHonored) { checkGolden("suppressed"); }
TEST(LintGolden, HotPathTransitive) { checkGolden("bad_hot_transitive"); }
TEST(LintGolden, LockOrderCycle) { checkGolden("bad_lock_cycle"); }
TEST(LintGolden, LockAcrossBlocking) { checkGolden("bad_lock_blocking"); }
TEST(LintGolden, AtomicOrderMix) { checkGolden("bad_atomic_mixed"); }
TEST(LintGolden, CasOrderSplit) { checkGolden("bad_cas_mixed"); }
TEST(LintGolden, MemoryOrderProofsHonored) { checkGolden("mo_proofed"); }

/// The transitive fixture is exactly the case the per-body HP checks
/// cannot see: the hot body is pure, so HP001 must stay silent while
/// HP004 reports the chain through the intermediate callee.
TEST(LintTool, TransitiveImpurityNeedsHp004) {
  RunResult R = runLint("--basenames --quiet " +
                        fixture("bad_hot_transitive"));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_EQ(R.Output.find("HP001"), std::string::npos)
      << "HP001 fired on a pure hot body:\n"
      << R.Output;
  EXPECT_NE(R.Output.find("HP004"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("step -> settle -> awaitResult"),
            std::string::npos)
      << "chain mis-reported:\n"
      << R.Output;
}

/// --explain appends one indented note per chain frame under the
/// finding, so a reader can walk the call path without opening --json.
TEST(LintTool, ExplainPrintsChainFrames) {
  RunResult R = runLint("--basenames --quiet --explain " +
                        fixture("bad_hot_transitive"));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("note: #1 step"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("note: #2 settle"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("note: #3 awaitResult"), std::string::npos)
      << R.Output;
}

/// The JSON form of an interprocedural finding carries the full chain as
/// structured frames, so CI consumers can render the path.
TEST(LintTool, JsonCarriesHp004Chain) {
  RunResult R = runLint("--json --basenames " +
                        fixture("bad_hot_transitive"));
  EXPECT_EQ(R.ExitCode, 1);
  std::string Error;
  std::optional<dope::JsonValue> Doc =
      dope::JsonValue::parse(R.Output, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const dope::JsonValue *Findings = Doc->get("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_EQ(Findings->size(), 1u);
  const dope::JsonValue &F = Findings->at(0);
  EXPECT_EQ(F.getString("check"), "HP004");
  const dope::JsonValue *Chain = F.get("chain");
  ASSERT_NE(Chain, nullptr);
  ASSERT_TRUE(Chain->isArray());
  ASSERT_EQ(Chain->size(), 3u);
  const char *Symbols[] = {"step", "settle", "awaitResult"};
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_EQ(Chain->at(I).getString("symbol"), Symbols[I]);
    EXPECT_EQ(Chain->at(I).getString("file"), "bad_hot_transitive.cpp");
    EXPECT_GT(Chain->at(I).getNumber("line"), 0.0);
  }
}

/// Every check ID the goldens exercise must appear in --list-checks, so
/// the fixture suite and the check table cannot drift apart.
TEST(LintTool, ListChecksCoversAllIds) {
  RunResult R = runLint("--list-checks");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Id :
       {"DL001", "DL002", "HP001", "HP002", "HP003", "HP004", "AP001",
        "AP002", "AP003", "TS001", "TS002", "LK001", "LK002", "MO001",
        "MO002"})
    EXPECT_NE(R.Output.find(Id), std::string::npos) << Id;
}

//===----------------------------------------------------------------------===//
// Exit-code contract: 0 = clean, 1 = findings, 2 = usage or I/O error.
// One regression test per code so the CI gate semantics cannot drift.
//===----------------------------------------------------------------------===//

TEST(LintExitCode, CleanScanReturnsZero) {
  RunResult R = runLint("--quiet " + fixture("good_clean"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

TEST(LintExitCode, FindingsReturnOne) {
  RunResult R = runLint("--quiet " + fixture("bad_clock"));
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(LintExitCode, UnknownFlagReturnsTwo) {
  RunResult R = runLint("--no-such-flag " + fixture("good_clean"));
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(LintExitCode, MissingFileReturnsTwo) {
  RunResult R = runLint("/nonexistent/dope_lint_input.cpp");
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(LintExitCode, UnknownAllowIdReturnsTwo) {
  RunResult R = runLint("--allow XX999 " + fixture("good_clean"));
  EXPECT_EQ(R.ExitCode, 2);
}

//===----------------------------------------------------------------------===//
// Frontend parity: when this build carries the libclang frontend, every
// fixture must produce byte-identical diagnostics under both frontends.
// Builds without libclang must refuse an explicit --frontend libclang
// with a usage error rather than silently degrading.
//===----------------------------------------------------------------------===//

TEST(LintFrontend, LibclangParityOnEveryFixture) {
  RunResult Probe =
      runLint("--frontend libclang --quiet " + fixture("good_clean"));
  if (Probe.ExitCode == 2)
    GTEST_SKIP() << "this build has no libclang frontend";
  for (const fs::directory_entry &E :
       fs::directory_iterator(DOPE_LINT_FIXTURES)) {
    if (E.path().extension() != ".cpp")
      continue;
    const std::string Name = E.path().stem().string();
    RunResult Builtin =
        runLint("--frontend builtin --basenames --quiet " + fixture(Name));
    RunResult Libclang =
        runLint("--frontend libclang --basenames --quiet " + fixture(Name));
    EXPECT_EQ(Builtin.Output, Libclang.Output)
        << "frontends diverged on " << Name;
    EXPECT_EQ(Builtin.ExitCode, Libclang.ExitCode) << Name;
  }
}

TEST(LintFrontend, ExplicitLibclangNeverDegrades) {
  RunResult R =
      runLint("--frontend libclang --quiet " + fixture("good_clean"));
  // Either the frontend exists (clean fixture: exit 0) or the request is
  // a hard usage error — never a silent builtin fallback with success.
  EXPECT_TRUE(R.ExitCode == 0 || R.ExitCode == 2) << R.ExitCode;
}

/// The repository's own sources must satisfy every contract: scan the
/// TUs of the exported compilation database plus the headers under
/// src/ and require zero findings.
TEST(LintTool, SrcTreeIsClean) {
  ASSERT_TRUE(fs::exists(DOPE_COMPDB))
      << "compile_commands.json missing — configure exports it";
  RunResult R = runLint(std::string("--compdb ") + DOPE_COMPDB + " --root " +
                        DOPE_SOURCE_ROOT + "/src --quiet");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "") << "src/ must stay lint-clean";
}

/// The concurrency kernels get their own clean-scan assertions: the
/// queue subsystem is where the memory-order audit and lock checks bite
/// hardest, and the analysis subsystem hosts the what-if machinery the
/// interprocedural traversal walks through.
TEST(LintTool, QueueSubtreeIsClean) {
  ASSERT_TRUE(fs::exists(DOPE_COMPDB));
  RunResult R = runLint(std::string("--compdb ") + DOPE_COMPDB + " --root " +
                        DOPE_SOURCE_ROOT + "/src/queue --quiet");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "") << "src/queue must stay lint-clean";
}

TEST(LintTool, AnalysisSubtreeIsClean) {
  ASSERT_TRUE(fs::exists(DOPE_COMPDB));
  RunResult R = runLint(std::string("--compdb ") + DOPE_COMPDB + " --root " +
                        DOPE_SOURCE_ROOT + "/src/analysis --quiet");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "") << "src/analysis must stay lint-clean";
}

/// Seeded regression: re-introduce a raw wall-clock read into a copy of
/// a mechanism translation unit and require DL001 to fire on the
/// injected line. This is the drift the determinism contract exists to
/// catch — a mechanism that reads the wall clock diverges under replay.
TEST(LintTool, SeededClockRegressionCaught) {
  fs::path Mechanism;
  for (const fs::directory_entry &E :
       fs::directory_iterator(std::string(DOPE_SOURCE_ROOT) +
                              "/src/mechanisms")) {
    if (E.path().extension() == ".cpp") {
      Mechanism = E.path();
      break;
    }
  }
  ASSERT_FALSE(Mechanism.empty()) << "no mechanism sources found";

  fs::path Tmp = fs::temp_directory_path() / "dope_lint_seeded.cpp";
  std::string Source = readFile(Mechanism);
  unsigned LineCount =
      static_cast<unsigned>(std::count(Source.begin(), Source.end(), '\n'));
  Source += "\nstatic double dopeLintSeededDrift() {\n"
            "  return std::chrono::duration<double>(\n"
            "             std::chrono::system_clock::now()"
            ".time_since_epoch())\n"
            "      .count();\n"
            "}\n";
  {
    std::ofstream OS(Tmp);
    OS << Source;
  }
  const unsigned InjectedLine = LineCount + 4; // system_clock's line

  RunResult R = runLint(Tmp.string());
  fs::remove(Tmp);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("DL001"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find(":" + std::to_string(InjectedLine) + ":"),
            std::string::npos)
      << "finding not on the injected line\n"
      << R.Output;
}

/// --json output must parse and carry the same findings as the text
/// form, so CI consumers can rely on the schema.
TEST(LintTool, JsonOutputParses) {
  RunResult R = runLint("--json --basenames " + fixture("bad_clock"));
  EXPECT_EQ(R.ExitCode, 1);
  std::string Error;
  std::optional<dope::JsonValue> Doc = dope::JsonValue::parse(R.Output,
                                                              &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const dope::JsonValue *Findings = Doc->get("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_TRUE(Findings->isArray());
  ASSERT_EQ(Findings->size(), 2u);
  for (size_t I = 0; I != Findings->size(); ++I) {
    const dope::JsonValue &F = Findings->at(I);
    EXPECT_EQ(F.getString("check"), "DL001");
    EXPECT_EQ(F.getString("severity"), "error");
    EXPECT_EQ(F.getString("file"), "bad_clock.cpp");
    EXPECT_GT(F.getNumber("line"), 0.0);
    EXPECT_FALSE(F.getString("message").empty());
  }
}

/// --allow disables a check wholesale.
TEST(LintTool, AllowDisablesCheck) {
  RunResult R = runLint("--quiet --allow DL001 " + fixture("bad_clock"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, "");
}

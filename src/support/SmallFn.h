//===- support/SmallFn.h - Small-buffer-optimized callable -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A move-only `void()` callable with inline storage sized for the
/// simulator's event closures. `std::function` heap-allocates any capture
/// list larger than ~16 bytes, which made every scheduled event an
/// allocation on the hottest path in the repository; SmallFn keeps
/// captures up to 48 bytes inline (the largest closure in the sims today)
/// and only falls back to the heap beyond that.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_SMALLFN_H
#define DOPE_SUPPORT_SMALLFN_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dope {

class SmallFn {
public:
  static constexpr size_t InlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F> &>>>
  SmallFn(F &&Fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void *>(Storage)) D(std::forward<F>(Fn));
      VT = inlineVTable<D>();
    } else {
      *reinterpret_cast<D **>(Storage) = new D(std::forward<F>(Fn));
      VT = heapVTable<D>();
    }
  }

  SmallFn(SmallFn &&Other) noexcept {
    if (Other.VT) {
      VT = Other.VT;
      VT->Relocate(Other.Storage, Storage);
      Other.VT = nullptr;
    }
  }

  SmallFn &operator=(SmallFn &&Other) noexcept {
    if (this != &Other) {
      reset();
      if (Other.VT) {
        VT = Other.VT;
        VT->Relocate(Other.Storage, Storage);
        Other.VT = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn &) = delete;
  SmallFn &operator=(const SmallFn &) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (VT) {
      VT->Destroy(Storage);
      VT = nullptr;
    }
  }

  explicit operator bool() const { return VT != nullptr; }

  void operator()() { VT->Invoke(Storage); }

private:
  struct VTable {
    void (*Invoke)(void *);
    /// Move-constructs into Dst and leaves Src destroyed.
    void (*Relocate)(void *Src, void *Dst);
    void (*Destroy)(void *);
  };

  template <typename D> static const VTable *inlineVTable() {
    static constexpr VTable Table = {
        [](void *S) { (*static_cast<D *>(S))(); },
        [](void *Src, void *Dst) {
          D *From = static_cast<D *>(Src);
          ::new (Dst) D(std::move(*From));
          From->~D();
        },
        [](void *S) { static_cast<D *>(S)->~D(); }};
    return &Table;
  }

  template <typename D> static const VTable *heapVTable() {
    static constexpr VTable Table = {
        [](void *S) { (**static_cast<D **>(S))(); },
        [](void *Src, void *Dst) {
          *static_cast<D **>(Dst) = *static_cast<D **>(Src);
        },
        [](void *S) { delete *static_cast<D **>(S); }};
    return &Table;
  }

  alignas(std::max_align_t) unsigned char Storage[InlineBytes];
  const VTable *VT = nullptr;
};

} // namespace dope

#endif // DOPE_SUPPORT_SMALLFN_H

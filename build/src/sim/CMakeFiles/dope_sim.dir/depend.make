# Empty dependencies file for dope_sim.
# This may be replaced when dependencies are built.

// TS001 fixture: TraceKind enumerators vs KindNames serializer drift.
// Never compiled — scanned by dope_lint in the lint test suite.

enum class TraceKind : unsigned char {
  FeatureSample,
  Decision,
  Reconfig,
  Fault,
};

static constexpr const char *KindNames[] = {"feature", "decision",
                                            "reconfig"};

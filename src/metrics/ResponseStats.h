//===- metrics/ResponseStats.h - Transaction statistics --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-transaction statistics for the server experiments: response time
/// (submission to completion, paper Eqn. 1), execution time (service
/// only), and wait time. Used by the Fig. 2 / Fig. 11 / Fig. 12 harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_METRICS_RESPONSESTATS_H
#define DOPE_METRICS_RESPONSESTATS_H

#include "support/Statistics.h"

#include <cstddef>

namespace dope {

/// Accumulates response/execution/wait times of completed transactions.
class ResponseStats {
public:
  /// Records one completed transaction. Times in seconds;
  /// \p ArrivalTime <= \p StartTime <= \p CompletionTime.
  void recordTransaction(double ArrivalTime, double StartTime,
                         double CompletionTime);

  size_t count() const { return Response.count(); }
  double meanResponseTime() const { return Response.mean(); }
  double meanExecTime() const { return Exec.mean(); }
  double meanWaitTime() const { return Wait.mean(); }
  double responsePercentile(double Q) const {
    return ResponsePct.percentile(Q);
  }
  double maxResponseTime() const { return Response.max(); }

  /// Completed transactions per second over [FirstArrival, LastCompletion].
  double throughput() const;

  void reset();

private:
  StreamingStats Response;
  StreamingStats Exec;
  StreamingStats Wait;
  PercentileTracker ResponsePct;
  double FirstArrival = -1.0;
  double LastCompletion = 0.0;
};

} // namespace dope

#endif // DOPE_METRICS_RESPONSESTATS_H

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.transcode_server "/root/repo/build/examples/transcode_server")
set_tests_properties(example.transcode_server PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.batch_search "/root/repo/build/examples/batch_search")
set_tests_properties(example.batch_search PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.power_capped "/root/repo/build/examples/power_capped")
set_tests_properties(example.power_capped PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.builder_pipeline "/root/repo/build/examples/builder_pipeline")
set_tests_properties(example.builder_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")

//===- sim/EventQueue.cpp - Discrete-event simulation core -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"

using namespace dope;

EventId EventQueue::scheduleAt(double Time, std::function<void()> Fn) {
  assert(Fn && "scheduling empty event");
  assert(Time >= Now && "scheduling into the past");
  const EventId Id = NextId++;
  Heap.push({Time, Id, std::move(Fn)});
  ++Live;
  return Id;
}

void EventQueue::cancel(EventId Id) {
  if (Id == 0 || Id >= NextId)
    return;
  // The entry stays in the heap but is skipped on pop.
  if (Cancelled.insert(Id).second && Live > 0)
    --Live;
}

bool EventQueue::step(double EndTime) {
  while (!Heap.empty()) {
    const Entry &Top = Heap.top();
    if (Cancelled.count(Top.Id)) {
      Cancelled.erase(Top.Id);
      Heap.pop();
      continue;
    }
    if (Top.Time > EndTime)
      return false;
    // Copy out before popping; the handler may schedule more events.
    std::function<void()> Fn = std::move(const_cast<Entry &>(Top).Fn);
    Now = Top.Time;
    Heap.pop();
    --Live;
    Fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::runUntil(double EndTime) {
  uint64_t Dispatched = 0;
  while (step(EndTime))
    ++Dispatched;
  if (Now < EndTime && Live == 0)
    Now = EndTime;
  else if (Now < EndTime && !Heap.empty())
    Now = EndTime; // stopped on a future event
  return Dispatched;
}

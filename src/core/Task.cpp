//===- core/Task.cpp - Tasks and parallelism descriptors -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Task.h"

using namespace dope;

ParKind ParDescriptor::parKind() const {
  if (isTree())
    return ParKind::Tree;
  if (Tasks.size() > 1)
    return ParKind::Pipe;
  return Tasks.front()->kind() == TaskKind::Parallel ? ParKind::DoAll
                                                     : ParKind::Seq;
}

Task *TaskGraph::createTask(std::string Name, TaskFn Fn, LoadFn Load,
                            TaskDescriptor *Desc, HookFn Init, HookFn Fini) {
  const unsigned Id = static_cast<unsigned>(Tasks.size());
  Tasks.push_back(std::make_unique<Task>(std::move(Name), std::move(Fn),
                                         std::move(Load), Desc,
                                         std::move(Init), std::move(Fini),
                                         Id));
  return Tasks.back().get();
}

TaskDescriptor *
TaskGraph::createDescriptor(TaskKind Kind,
                            std::vector<ParDescriptor *> Alts) {
  Descriptors.push_back(
      std::make_unique<TaskDescriptor>(Kind, std::move(Alts)));
  return Descriptors.back().get();
}

ParDescriptor *TaskGraph::createRegion(std::vector<Task *> Tasks) {
  Regions.push_back(std::make_unique<ParDescriptor>(std::move(Tasks)));
  return Regions.back().get();
}

ParDescriptor *TaskGraph::createTreeRegion(Task *T, unsigned DefaultGrain) {
  ParDescriptor *Region = createRegion({T});
  Region->markTree(DefaultGrain);
  return Region;
}

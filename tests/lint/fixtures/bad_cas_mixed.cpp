// MO002 fixture: a compare-exchange whose failure order is weaker than
// its success order, with no mo-proof annotation arguing why the
// failure path needs no synchronization.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <atomic>

struct Flag {
  std::atomic<int> State{0};

  bool claim() {
    int Expected = 0;
    return State.compare_exchange_strong(Expected, 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }
};

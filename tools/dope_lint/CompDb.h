//===- tools/dope_lint/CompDb.h - compile_commands.json loader -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads CMake's exported compile_commands.json (CMAKE_EXPORT_COMPILE
/// _COMMANDS) so dope_lint scans exactly the translation units the build
/// compiles. The database lists TUs only, so callers typically add the
/// headers under --root via collectHeadersUnder().
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_TOOLS_LINT_COMPDB_H
#define DOPE_TOOLS_LINT_COMPDB_H

#include <string>
#include <vector>

namespace dopelint {

struct CompileCommand {
  std::string File;      ///< Absolute source path.
  std::string Directory; ///< Working directory of the compile.
  std::vector<std::string> Args; ///< Compiler argv (may be empty).
};

/// Parses \p Path; returns false with \p Error set on malformed input.
bool loadCompDb(const std::string &Path, std::vector<CompileCommand> &Out,
                std::string &Error);

/// Recursively collects *.h / *.hpp under \p Root (sorted, absolute).
std::vector<std::string> collectHeadersUnder(const std::string &Root);

} // namespace dopelint

#endif // DOPE_TOOLS_LINT_COMPDB_H

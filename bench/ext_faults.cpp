//===- bench/ext_faults.cpp - Robustness extension experiments -------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness experiments beyond the paper's figures — the failure-domain
/// analog of Fig. 13. The paper's pitch is that the executive owns the
/// application's parallelism decisions; these experiments show the same
/// separation of concerns pays off when the *platform* fails:
///
///   1. Context loss: 6 of 24 hardware contexts are killed mid-run,
///      wedging the replicas running on them. Adaptive mechanisms
///      observe the shrunken machine through the "LiveContexts" feature
///      (MechanismContext::effectiveThreads) and re-plan the DoP; their
///      throughput recovers to >= 80% of the pre-fault plateau. Static
///      baselines never reconfigure, so the wedged replicas keep their
///      stage slots forever and throughput stays degraded.
///
///   2. Overload burst: arrivals spike to ~4x capacity. Admission
///      control sheds load at the outer queue, keeping occupancy (and
///      response time) bounded; without it the queue and the response
///      tail grow with the burst.
///
///   3. Background noise: transient stage stalls, random stragglers, and
///      dropped hand-offs. The run completes with every item accounted
///      for (done + dropped == fed), deterministically under the seed.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "mechanisms/Fdp.h"
#include "mechanisms/Seda.h"
#include "mechanisms/Tbf.h"
#include "metrics/FaultStats.h"
#include "sim/PipelineSim.h"
#include "workload/Arrivals.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

/// The fault-bench application. Unlike ferret (CPU-bound at 24 contexts,
/// where losing 25% of the machine caps recovery at 75% by arithmetic),
/// this pipeline plateaus on its sequential ingest stage with CPU slack
/// to spare: 18 surviving contexts still exceed the ingest-bound demand,
/// so full recovery is *possible* — reachable only by re-planning the
/// DoP around the dead contexts, which is exactly what distinguishes the
/// adaptive mechanisms from the static baselines.
PipelineAppModel makeFaultBenchApp() {
  PipelineAppModel App;
  App.Name = "webrank";
  App.Stages = {
      {"ingest", /*Parallel=*/false, /*ServiceSeconds=*/0.40, /*Cv=*/0.10},
      {"parse", true, 0.25, 0.15},
      {"index", true, 3.40, 0.20},
      {"publish", false, 0.15, 0.10},
  };
  App.OversubPenalty = 0.08;
  App.ThreadOverheadPenalty = 0.10;
  return App;
}

/// The paper's Pthreads-Baseline analog: the thread budget split evenly
/// across the parallel stages, sequential stages pinned at 1.
std::vector<unsigned> evenExtents(const PipelineAppModel &App,
                                  unsigned Contexts) {
  unsigned ParCount = 0;
  for (const PipelineStageSpec &S : App.Stages)
    ParCount += S.Parallel ? 1 : 0;
  const unsigned Budget =
      Contexts > App.Stages.size() - ParCount
          ? Contexts - static_cast<unsigned>(App.Stages.size() - ParCount)
          : ParCount;
  std::vector<unsigned> Extents;
  for (const PipelineStageSpec &S : App.Stages)
    Extents.push_back(S.Parallel ? std::max(1u, Budget / ParCount) : 1);
  return Extents;
}

struct Scheme {
  std::string Name;
  std::unique_ptr<Mechanism> Mech; // null = static
  std::vector<unsigned> InitialExtents;
  bool Adaptive;
};

struct KillOutcome {
  PipelineSimResult R;
  double PreFault = 0.0;
  double PostFault = 0.0;
  double Ttr = -1.0;
};

KillOutcome runWithKill(const PipelineAppModel &App,
                        const PipelineSimOptions &Base, Scheme &S,
                        double KillTime, unsigned Kills) {
  PipelineSim Sim(App, Base);
  FaultPlan Plan;
  Plan.Kills.push_back({KillTime, Kills});
  Sim.setFaultPlan(Plan);

  KillOutcome Out;
  Out.R = Sim.run(S.Mech.get(), S.InitialExtents);

  const double W = Base.TraceWindowSeconds;
  // Pre-fault plateau: skip the first windows (mechanism search ramp).
  Out.PreFault = Out.R.ThroughputSeries.meanOver(0.25 * KillTime, KillTime);
  // Post-fault level, once any re-planning had a chance to land.
  Out.PostFault =
      Out.R.ThroughputSeries.meanOver(KillTime + 2.0 * W, KillTime + 14.0 * W);
  // Recovery: first window at >= 80% of the pre-fault plateau, sustained
  // for two windows.
  Out.Ttr = timeToRecover(Out.R.ThroughputSeries, KillTime,
                          0.8 * Out.PreFault, 2.0 * W);
  Out.R.Faults.TimeToRecoverSeconds = Out.Ttr;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Robustness extensions: context loss mid-run (the Fig. 13 analog "
      "under failure), overload with admission control, and background "
      "fault noise");
  addCommonOptions(Options);
  Options.addInt("items", 3000, "items per batch run");
  Options.addInt("kills", 6, "contexts killed mid-run (of 24)");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const unsigned Kills = static_cast<unsigned>(Options.getInt("kills"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  uint64_t Items = static_cast<uint64_t>(Options.getInt("items"));
  if (Quick)
    Items = 1000;

  const PipelineAppModel App = makeFaultBenchApp();
  bool Ok = true;

  // --- 1: context loss ---------------------------------------------------
  PipelineSimOptions SimOpts;
  SimOpts.Contexts = Contexts;
  SimOpts.Seed = Seed;
  SimOpts.NumItems = Items;
  SimOpts.DecisionIntervalSeconds = 2.0;
  SimOpts.TraceWindowSeconds = 10.0;

  // Calibrate the kill instant against a fault-free adaptive run, then
  // bound every faulty run (a statically wedged pipeline cannot finish
  // its batch — without the bound it would idle to the 1e6 s default).
  double FaultFree;
  {
    PipelineSim Sim(App, SimOpts);
    TbfMechanism Tbf({0.5, /*EnableFusion=*/false});
    FaultFree = Sim.run(&Tbf, {}).TotalSeconds;
  }
  const double KillTime = 0.45 * FaultFree;
  SimOpts.MaxSimSeconds = 3.0 * FaultFree;

  std::vector<Scheme> Schemes;
  Schemes.push_back({"Static-Ones", nullptr, {}, false});
  Schemes.push_back(
      {"Static-Even", nullptr, evenExtents(App, Contexts), false});
  Schemes.push_back({"SEDA", std::make_unique<SedaMechanism>(),
                     evenExtents(App, Contexts), true});
  Schemes.push_back({"FDP", std::make_unique<FdpMechanism>(),
                     evenExtents(App, Contexts), true});
  Schemes.push_back(
      {"DoPE-TB",
       std::make_unique<TbfMechanism>(TbfParams{0.5, /*EnableFusion=*/false}),
       evenExtents(App, Contexts), true});

  Table T({"scheme", "pre-fault (items/s)", "post-fault (items/s)",
           "post/pre", "recovery (s)", "fault counters"});
  for (Scheme &S : Schemes) {
    KillOutcome Out = runWithKill(App, SimOpts, S, KillTime, Kills);
    const double Ratio =
        Out.PreFault > 0.0 ? Out.PostFault / Out.PreFault : 0.0;
    T.addRow({S.Name, Table::formatDouble(Out.PreFault, 3),
              Table::formatDouble(Out.PostFault, 3),
              Table::formatDouble(Ratio, 2),
              Out.Ttr >= 0.0 ? Table::formatDouble(Out.Ttr, 0) : "never",
              toString(Out.R.Faults)});

    if (S.Adaptive) {
      Ok &= checkShape(Out.Ttr >= 0.0,
                       S.Name + " regains >= 80% of pre-fault throughput "
                               "after losing " +
                           std::to_string(Kills) + "/" +
                           std::to_string(Contexts) + " contexts");
      Ok &= checkShape(Out.R.ItemsCompleted == Items,
                       S.Name + " completes the whole batch (wedged items "
                               "salvaged by reconfiguration)");
    } else {
      Ok &= checkShape(Out.Ttr < 0.0,
                       S.Name + " never recovers (no reconfiguration frees "
                               "the wedged replicas)");
    }
    Ok &= checkShape(Out.R.Faults.ContextsKilled == Kills &&
                         Out.R.LiveContextsAtEnd == Contexts - Kills,
                     S.Name + " live-context accounting matches the plan");
  }
  emitTable("Ext. A: throughput around the loss of " +
                std::to_string(Kills) + " of " + std::to_string(Contexts) +
                " contexts at t=" + Table::formatDouble(KillTime, 0) + "s",
            T, Csv);

  // Determinism: the whole fault path is driven by the run seed.
  {
    Scheme A{"det", std::make_unique<TbfMechanism>(
                        TbfParams{0.5, /*EnableFusion=*/false}),
             evenExtents(App, Contexts), true};
    Scheme B{"det", std::make_unique<TbfMechanism>(
                        TbfParams{0.5, /*EnableFusion=*/false}),
             evenExtents(App, Contexts), true};
    KillOutcome RA = runWithKill(App, SimOpts, A, KillTime, Kills);
    KillOutcome RB = runWithKill(App, SimOpts, B, KillTime, Kills);
    Ok &= checkShape(RA.R.ItemsCompleted == RB.R.ItemsCompleted &&
                         RA.R.Throughput == RB.R.Throughput &&
                         RA.R.Reconfigurations == RB.R.Reconfigurations &&
                         RA.R.Faults.ReplicasWedged ==
                             RB.R.Faults.ReplicasWedged,
                     "fault injection is deterministic under the seed");
  }

  // --- 2: overload burst and admission control ---------------------------
  {
    // Capacity is ingest-bound at 2.5 items/s; cruise at 70% of it and
    // burst to ~4.3x capacity.
    PipelineSimOptions OpenOpts;
    OpenOpts.Contexts = Contexts;
    OpenOpts.Seed = Seed;
    OpenOpts.OpenLoop = true;
    OpenOpts.ArrivalRate = 1.75;
    OpenOpts.NumItems = Quick ? 400 : 700;
    OpenOpts.DecisionIntervalSeconds = 2.0;
    OpenOpts.TraceWindowSeconds = 10.0;
    OpenOpts.ArrivalTrace = LoadTrace::makeBurstPattern(
        /*BaseLoad=*/1.0, /*BurstLoad=*/6.0, /*BaseSeconds=*/80.0,
        /*BurstSeconds=*/40.0);
    OpenOpts.MaxSimSeconds = 4000.0;

    const size_t Limit = 48;
    PipelineSimResult NoAc, Ac;
    {
      PipelineSim Sim(App, OpenOpts);
      TbfMechanism Tbf({0.5, /*EnableFusion=*/false});
      NoAc = Sim.run(&Tbf, evenExtents(App, Contexts));
    }
    {
      OpenOpts.AdmissionLimit = Limit;
      PipelineSim Sim(App, OpenOpts);
      TbfMechanism Tbf({0.5, /*EnableFusion=*/false});
      Ac = Sim.run(&Tbf, evenExtents(App, Contexts));
    }

    Table B({"policy", "peak outer queue", "shed", "completed",
             "p95 response (s)", "mean response (s)"});
    B.addRow({"no admission control",
              std::to_string(NoAc.PeakOuterQueue),
              std::to_string(NoAc.Faults.ItemsShed),
              std::to_string(NoAc.ItemsCompleted),
              Table::formatDouble(NoAc.Stats.responsePercentile(0.95), 1),
              Table::formatDouble(NoAc.Stats.meanResponseTime(), 1)});
    B.addRow({"admission limit " + std::to_string(Limit),
              std::to_string(Ac.PeakOuterQueue),
              std::to_string(Ac.Faults.ItemsShed),
              std::to_string(Ac.ItemsCompleted),
              Table::formatDouble(Ac.Stats.responsePercentile(0.95), 1),
              Table::formatDouble(Ac.Stats.meanResponseTime(), 1)});
    emitTable("Ext. B: overload burst (4x capacity) with and without "
              "admission control",
              B, Csv);

    Ok &= checkShape(Ac.PeakOuterQueue <= Limit,
                     "admission control bounds outer-queue occupancy at "
                     "the limit (" +
                         std::to_string(Ac.PeakOuterQueue) + " <= " +
                         std::to_string(Limit) + ")");
    Ok &= checkShape(NoAc.PeakOuterQueue > 2 * Limit,
                     "without admission control the burst overflows the "
                     "outer queue (peak " +
                         std::to_string(NoAc.PeakOuterQueue) + ")");
    Ok &= checkShape(Ac.Faults.ItemsShed > 0 &&
                         Ac.ItemsCompleted + Ac.Faults.ItemsShed ==
                             OpenOpts.NumItems,
                     "shed requests are counted and every arrival is "
                     "accounted for (completed + shed == fed)");
    Ok &= checkShape(Ac.Stats.responsePercentile(0.95) <
                         0.5 * NoAc.Stats.responsePercentile(0.95),
                     "shedding keeps the p95 response tail bounded under "
                     "overload");
  }

  // --- 3: background fault noise -----------------------------------------
  {
    PipelineSimOptions NoiseOpts;
    NoiseOpts.Contexts = Contexts;
    NoiseOpts.Seed = Seed;
    NoiseOpts.NumItems = Quick ? 600 : 1500;
    NoiseOpts.DecisionIntervalSeconds = 2.0;
    NoiseOpts.TraceWindowSeconds = 10.0;
    NoiseOpts.MaxSimSeconds = 3.0 * FaultFree;

    PipelineSim Sim(App, NoiseOpts);
    FaultPlan Plan;
    // A transient 5x stall of the bottleneck stage...
    Plan.Stalls.push_back({/*Time=*/0.2 * FaultFree, /*Stage=*/2,
                           /*Factor=*/5.0, /*DurationSeconds=*/30.0});
    // ...plus continuous straggler and hand-off-loss noise.
    Plan.StragglerProbability = 0.02;
    Plan.StragglerFactor = 4.0;
    Plan.HandoffDropProbability = 0.01;
    Sim.setFaultPlan(Plan);

    TbfMechanism Tbf({0.5, /*EnableFusion=*/false});
    PipelineSimResult R = Sim.run(&Tbf, evenExtents(App, Contexts));

    Table N({"metric", "value"});
    N.addRow({"items completed", std::to_string(R.ItemsCompleted)});
    N.addRow({"items dropped", std::to_string(R.Faults.ItemsDropped)});
    N.addRow({"incidents", std::to_string(R.Faults.Incidents)});
    N.addRow({"reconfigurations", std::to_string(R.Reconfigurations)});
    N.addRow({"throughput (items/s)", Table::formatDouble(R.Throughput, 3)});
    emitTable("Ext. C: transient stall + stragglers + dropped hand-offs",
              N, Csv);

    Ok &= checkShape(R.ItemsCompleted + R.Faults.ItemsDropped ==
                         NoiseOpts.NumItems,
                     "every item is accounted for: completed + dropped == "
                     "fed");
    Ok &= checkShape(R.Faults.ItemsDropped > 0,
                     "hand-off drops occurred and were counted");
    Ok &= checkShape(R.Faults.Incidents >= 1,
                     "the stall episode was recorded as an incident");
  }

  return Ok ? 0 : 1;
}

//===- sim/CrossShardMailbox.h - Barrier-time cross-shard messages *-C++-*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The only channel between shards of the conservative sharded
/// simulator: a mutex-protected mailbox whose messages carry a
/// (virtual time, source shard, per-source sequence number) key.
///
/// Shards post during an epoch in whatever real-time order their worker
/// threads happen to run; the coordinator collects at the barrier and
/// receives messages sorted by that key. Because sequence numbers are
/// assigned per source in posting order, the key — and therefore the
/// delivery order — is a pure function of what each shard posted, never
/// of how the worker threads interleaved. This is the mechanism that
/// makes sharded runs deterministic per seed regardless of shard count
/// or scheduling (see DESIGN.md §14).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_CROSSSHARDMAILBOX_H
#define DOPE_SIM_CROSSSHARDMAILBOX_H

#include "support/ThreadAnnotations.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <tuple>
#include <vector>

namespace dope {

/// One cross-shard message: the payload plus its canonical ordering key.
template <typename PayloadT> struct ShardEnvelope {
  /// Virtual time the message takes effect (typically the epoch end).
  double Time = 0.0;
  /// Shard (or coordinator) that posted it.
  uint32_t SrcShard = 0;
  /// Per-source posting index; breaks (Time, SrcShard) ties in the
  /// order the source posted, which is deterministic shard-local code.
  uint64_t Seq = 0;
  PayloadT Payload{};
};

/// A many-producer mailbox drained at barriers. post() may be called
/// concurrently from any shard during an epoch; collect() must only run
/// inside the barrier's serial section (or any other point where no
/// producer is active).
template <typename PayloadT> class CrossShardMailbox {
public:
  /// \p Sources is the number of distinct SrcShard values that will
  /// post; each gets its own sequence counter.
  explicit CrossShardMailbox(unsigned Sources = 1) : NextSeq(Sources, 0) {}

  void post(uint32_t SrcShard, double Time, PayloadT Payload) {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(SrcShard < NextSeq.size() && "unknown source shard");
    ShardEnvelope<PayloadT> E;
    E.Time = Time;
    E.SrcShard = SrcShard;
    E.Seq = NextSeq[SrcShard]++;
    E.Payload = std::move(Payload);
    Pending.push_back(std::move(E));
  }

  /// Drains pending messages in canonical (Time, SrcShard, Seq) order.
  /// The key is unique per message, so the sort is a total order and
  /// the result is independent of arrival interleaving.
  std::vector<ShardEnvelope<PayloadT>> collect() {
    std::vector<ShardEnvelope<PayloadT>> Out;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Out.swap(Pending);
    }
    std::sort(Out.begin(), Out.end(),
              [](const ShardEnvelope<PayloadT> &A,
                 const ShardEnvelope<PayloadT> &B) {
                return std::tie(A.Time, A.SrcShard, A.Seq) <
                       std::tie(B.Time, B.SrcShard, B.Seq);
              });
    return Out;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Pending.size();
  }

private:
  mutable std::mutex Mutex;
  std::vector<uint64_t> NextSeq DOPE_GUARDED_BY(Mutex);
  std::vector<ShardEnvelope<PayloadT>> Pending DOPE_GUARDED_BY(Mutex);
};

} // namespace dope

#endif // DOPE_SIM_CROSSSHARDMAILBOX_H

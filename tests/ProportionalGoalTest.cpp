//===- tests/ProportionalGoalTest.cpp - Fig.10 mechanism and goals ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Goal.h"
#include "mechanisms/Proportional.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

TEST(Proportional, AssignsByExecutionTime) {
  // A flat region of two parallel tasks with 3:1 execution times splits
  // 24 threads 18:6 (paper Fig. 10: DoP proportional to exec time).
  TaskGraph Graph;
  TaskFn Dummy = dummyFn();
  Task *A = Graph.createTask("a", Dummy, {}, Graph.parDescriptor());
  Task *B = Graph.createTask("b", Dummy, {}, Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({A, B});

  RegionConfig Current;
  Current.Tasks.resize(2);
  RegionSnapshot Snap;
  Snap.Tasks.resize(2);
  Snap.Tasks[0].ExecTime = 3.0;
  Snap.Tasks[0].Invocations = 10;
  Snap.Tasks[1].ExecTime = 1.0;
  Snap.Tasks[1].Invocations = 10;

  ProportionalMechanism M;
  MechanismContext Ctx;
  Ctx.MaxThreads = 24;
  std::optional<RegionConfig> Next =
      M.reconfigure(*Root, Snap, Current, Ctx);
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks[0].Extent, 18u);
  EXPECT_EQ(Next->Tasks[1].Extent, 6u);
}

TEST(Proportional, SequentialTasksPinned) {
  TaskGraph Graph;
  TaskFn Dummy = dummyFn();
  Task *A = Graph.createTask("seq", Dummy, {}, Graph.seqDescriptor());
  Task *B = Graph.createTask("par", Dummy, {}, Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({A, B});

  RegionConfig Current;
  Current.Tasks.resize(2);
  RegionSnapshot Snap;
  Snap.Tasks.resize(2);
  Snap.Tasks[0].ExecTime = 5.0;
  Snap.Tasks[0].Invocations = 4;
  Snap.Tasks[1].ExecTime = 5.0;
  Snap.Tasks[1].Invocations = 4;

  ProportionalMechanism M;
  MechanismContext Ctx;
  Ctx.MaxThreads = 10;
  RegionConfig Next = *M.reconfigure(*Root, Snap, Current, Ctx);
  EXPECT_EQ(Next.Tasks[0].Extent, 1u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*Root, Next, &Error)) << Error;
}

TEST(Proportional, RecursesIntoActiveInner) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Current = defaultConfig(*G.Root);
  RegionSnapshot Snap = makeServerSnapshot(G, 0.0, 1, 2);
  Snap.Tasks[0].InnerAlternatives[0].Tasks[0].ExecTime = 1.0;
  Snap.Tasks[0].InnerAlternatives[0].Tasks[0].Invocations = 5;

  ProportionalMechanism M;
  MechanismContext Ctx;
  Ctx.MaxThreads = 8;
  RegionConfig Next = *M.reconfigure(*G.Root, Snap, Current, Ctx);
  ASSERT_EQ(Next.Tasks.size(), 1u);
  // The driver's share flows into the inner region.
  EXPECT_EQ(Next.Tasks[0].Extent, 1u);
  ASSERT_EQ(Next.Tasks[0].Inner.size(), 1u);
  EXPECT_EQ(Next.Tasks[0].Inner[0].Extent, 8u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, Next, &Error)) << Error;
}

TEST(Proportional, WaitsForWarmup) {
  ServerNestGraph G = makeServerNestGraph();
  RegionConfig Current = defaultConfig(*G.Root);
  RegionSnapshot Snap = makeServerSnapshot(G, 0.0);
  Snap.Tasks[0].Invocations = 0;
  ProportionalMechanism M;
  MechanismContext Ctx;
  Ctx.MaxThreads = 8;
  EXPECT_FALSE(M.reconfigure(*G.Root, Snap, Current, Ctx).has_value());
}

TEST(Goal, ObjectiveNames) {
  EXPECT_EQ(toString(Objective::MinResponseTime), "MinResponseTime");
  EXPECT_EQ(toString(Objective::MaxThroughput), "MaxThroughput");
  EXPECT_EQ(toString(Objective::MaxThroughputPowerCapped),
            "MaxThroughputPowerCapped");
}

TEST(Goal, DefaultMechanismPerObjective) {
  PerformanceGoal G;
  G.Obj = Objective::MinResponseTime;
  EXPECT_EQ(makeDefaultMechanism(G)->name(), "WQ-Linear");
  G.Obj = Objective::MaxThroughput;
  EXPECT_EQ(makeDefaultMechanism(G)->name(), "TBF");
  G.Obj = Objective::MaxThroughputPowerCapped;
  EXPECT_EQ(makeDefaultMechanism(G)->name(), "TPC");
}

TEST(Goal, ResponseParamsForwarded) {
  PerformanceGoal G;
  G.Obj = Objective::MinResponseTime;
  G.ResponseParams.MMax = 6;
  G.ResponseParams.QMax = 10.0;
  std::unique_ptr<Mechanism> M = makeDefaultMechanism(G);
  auto *Wq = dynamic_cast<WqLinearMechanism *>(M.get());
  ASSERT_NE(Wq, nullptr);
  EXPECT_EQ(Wq->extentForOccupancy(0.0), 6u);
}

} // namespace

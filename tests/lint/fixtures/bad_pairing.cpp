// AP001 fixture: Task::begin without matching Task::end.
// Never compiled — scanned by dope_lint in the lint test suite.

void unbalancedWorker(TaskRuntime &RT) {
  RT.begin();
  process();
  // missing RT.end(): the executive's suspend protocol would hang.
}

void doubleBegin(TaskRuntime &RT) {
  RT.begin();
  RT.begin();
  process();
  RT.end();
}

void balancedWorker(TaskRuntime &RT) {
  RT.begin();
  process();
  RT.end();
}

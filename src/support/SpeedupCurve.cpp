//===- support/SpeedupCurve.cpp - Parallel scalability models ------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/SpeedupCurve.h"

#include <algorithm>
#include <cassert>

using namespace dope;

SpeedupCurve::SpeedupCurve(double Alpha, double FixedCost, double Cap)
    : Alpha(Alpha), FixedCost(FixedCost), Cap(Cap) {
  assert(Alpha >= 0.0 && "negative per-thread overhead");
  assert(FixedCost >= 0.0 && "negative fixed cost");
  assert(Cap > 0.0 && "cap must be positive");
}

double SpeedupCurve::speedup(unsigned M) const {
  assert(M >= 1 && "extent must be positive");
  if (M == 1)
    return 1.0;
  const double Raw = static_cast<double>(M) /
                     (1.0 + FixedCost + Alpha * static_cast<double>(M - 1));
  return std::min(Cap, Raw);
}

double SpeedupCurve::efficiency(unsigned M) const {
  return speedup(M) / static_cast<double>(M);
}

unsigned SpeedupCurve::mmax(double Threshold, unsigned Limit) const {
  assert(Threshold > 0.0 && Threshold <= 1.0 && "threshold is a ratio");
  unsigned Best = 1;
  for (unsigned M = 2; M <= Limit; ++M)
    if (efficiency(M) >= Threshold)
      Best = M;
  return Best;
}

unsigned SpeedupCurve::dopMin(unsigned Limit) const {
  for (unsigned M = 1; M <= Limit; ++M)
    if (speedup(M) > 1.0 && M > 1)
      return M;
  return 0;
}

unsigned SpeedupCurve::bestExtent(unsigned Limit) const {
  unsigned Best = 1;
  double BestSpeedup = 1.0;
  for (unsigned M = 2; M <= Limit; ++M) {
    const double S = speedup(M);
    if (S > BestSpeedup) {
      Best = M;
      BestSpeedup = S;
    }
  }
  return Best;
}

//===- core/Task.h - Tasks and parallelism descriptors --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-developer face of DoPE (Sec. 3 of the paper):
///
///   Task           = {control, function, load, desc, init, fini}
///   TaskDescriptor = {type: SEQ | PAR, pd: ParDescriptor[]}
///   ParDescriptor  = {tasks: Task[]}
///
/// A Task bundles a functor (the task's functionality), a load callback
/// (current workload on the task), optional init/fini callbacks used to
/// reach a globally consistent state around reconfigurations, and a
/// descriptor that describes the task's parallelism structure. A
/// TaskDescriptor may carry *several* ParDescriptor alternatives, exposing
/// a choice (e.g. pipelined vs. fused) that the run-time resolves.
///
/// All tasks and descriptors are owned by a TaskGraph arena; the
/// application wires them with raw pointers exactly as in the paper's
/// examples, and the arena guarantees their lifetime spans the run.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_TASK_H
#define DOPE_CORE_TASK_H

#include "core/Failure.h"
#include "core/Types.h"

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dope {

class Task;
class TaskRuntime;

/// The task's functionality: one loop iteration's worth of work
/// (paper Fig. 4(b)). Returns the task status after the instance.
using TaskFn = std::function<TaskStatus(TaskRuntime &)>;

/// Returns the current load on the task (paper: LoadCB, typically an
/// input-queue occupancy).
using LoadFn = std::function<double()>;

/// Invoked exactly once before (InitCB) / after (FiniCB) the task executes
/// within a parallel region epoch; used to restore global consistency
/// around reconfiguration (paper Sec. 3.1).
using HookFn = std::function<void()>;

/// A parallelism descriptor: an array of one or more tasks that execute in
/// parallel and potentially interact. The first task is the *master* task
/// whose status decides the fate of the region (paper Sec. 3.2, step 4).
class ParDescriptor {
public:
  explicit ParDescriptor(std::vector<Task *> Tasks)
      : Tasks(std::move(Tasks)) {
    assert(!this->Tasks.empty() && "a parallel region needs tasks");
  }

  const std::vector<Task *> &tasks() const { return Tasks; }
  Task *masterTask() const { return Tasks.front(); }
  size_t size() const { return Tasks.size(); }

  /// The kind of parallelism this region expresses: a single PAR task is a
  /// DOALL loop; multiple interacting tasks form a pipeline; a single SEQ
  /// task is sequential execution; a marked single PAR task is a
  /// recursive task tree (markTree).
  ParKind parKind() const;

  /// Marks this region as a recursive task-tree region: its single PAR
  /// task forks subtasks through a work-stealing scheduler, and its
  /// configuration carries a grain size (TaskConfig::Grain, validated
  /// >= 1 like an extent). \p DefaultGrain seeds defaultConfig.
  void markTree(unsigned DefaultGrain) {
    assert(Tasks.size() == 1 && "a tree region is a single recursive task");
    assert(DefaultGrain >= 1 && "grain must be at least 1");
    TreeGrain = DefaultGrain;
  }

  /// True for regions marked by markTree.
  bool isTree() const { return TreeGrain != 0; }

  /// The grain defaultConfig assigns to a tree region's task; 0 for
  /// non-tree regions.
  unsigned defaultGrain() const { return TreeGrain; }

private:
  std::vector<Task *> Tasks;
  unsigned TreeGrain = 0;
};

/// Describes whether a task is sequential or parallel and which inner
/// parallelism alternatives it offers (possibly none).
class TaskDescriptor {
public:
  TaskDescriptor(TaskKind Kind, std::vector<ParDescriptor *> Alternatives)
      : Kind(Kind), Alternatives(std::move(Alternatives)) {}

  TaskKind kind() const { return Kind; }
  bool hasInner() const { return !Alternatives.empty(); }
  size_t alternativeCount() const { return Alternatives.size(); }
  ParDescriptor *alternative(size_t Index) const {
    assert(Index < Alternatives.size() && "alternative index out of range");
    return Alternatives[Index];
  }
  const std::vector<ParDescriptor *> &alternatives() const {
    return Alternatives;
  }

  /// Retry policy applied by the executive when a replica of a task using
  /// this descriptor throws (default: no retry — fail on first throw).
  void setRetryPolicy(RetryPolicy Policy) { Retry = Policy; }
  const RetryPolicy &retryPolicy() const { return Retry; }

private:
  TaskKind Kind;
  std::vector<ParDescriptor *> Alternatives;
  RetryPolicy Retry;
};

/// A DoPE task. Aggregates the functor, callbacks, and descriptor; runtime
/// state lives in the executive, keyed by the task's stable id.
class Task {
public:
  Task(std::string Name, TaskFn Fn, LoadFn Load, TaskDescriptor *Desc,
       HookFn Init, HookFn Fini, unsigned Id)
      : Name(std::move(Name)), Fn(std::move(Fn)), Load(std::move(Load)),
        Desc(Desc), Init(std::move(Init)), Fini(std::move(Fini)), Id(Id) {
    assert(Desc && "task needs a descriptor");
    assert(this->Fn && "task needs a functor");
  }

  const std::string &name() const { return Name; }
  unsigned id() const { return Id; }
  TaskKind kind() const { return Desc->kind(); }
  TaskDescriptor *descriptor() const { return Desc; }
  bool hasInner() const { return Desc->hasInner(); }

  /// Invokes the functor for one instance.
  TaskStatus invoke(TaskRuntime &RT) const { return Fn(RT); }

  /// Samples the load callback; zero when the developer registered none.
  double sampleLoad() const { return Load ? Load() : 0.0; }
  bool hasLoadCallback() const { return static_cast<bool>(Load); }

  void runInit() const {
    if (Init)
      Init();
  }
  void runFini() const {
    if (Fini)
      Fini();
  }

private:
  std::string Name;
  TaskFn Fn;
  LoadFn Load;
  TaskDescriptor *Desc;
  HookFn Init;
  HookFn Fini;
  unsigned Id;
};

/// Arena that owns every Task, TaskDescriptor, and ParDescriptor of an
/// application's parallelism description.
///
/// Typical construction is bottom-up, mirroring Figure 6 of the paper:
/// \code
///   TaskGraph G;
///   Task *Read  = G.createTask("read",  ReadFn,  {}, G.seqDescriptor());
///   Task *Xform = G.createTask("xform", XformFn, LoadQ1, G.parDescriptor());
///   Task *Write = G.createTask("write", WriteFn, LoadQ2, G.seqDescriptor());
///   ParDescriptor *Inner = G.createRegion({Read, Xform, Write});
///   Task *Outer = G.createTask("transcode", OuterFn, LoadWq,
///                              G.createDescriptor(TaskKind::Parallel,
///                                                 {Inner}));
///   ParDescriptor *Root = G.createRegion({Outer});
/// \endcode
class TaskGraph {
public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph &) = delete;
  TaskGraph &operator=(const TaskGraph &) = delete;

  /// Creates a task owned by the graph. \p Desc must come from this graph.
  Task *createTask(std::string Name, TaskFn Fn, LoadFn Load,
                   TaskDescriptor *Desc, HookFn Init = {}, HookFn Fini = {});

  /// Creates a descriptor with the given kind and inner alternatives.
  TaskDescriptor *createDescriptor(TaskKind Kind,
                                   std::vector<ParDescriptor *> Alts = {});

  /// Shorthand for a sequential leaf descriptor (SEQ, no inner).
  TaskDescriptor *seqDescriptor() {
    return createDescriptor(TaskKind::Sequential);
  }
  /// Shorthand for a parallel leaf descriptor (PAR, no inner).
  TaskDescriptor *parDescriptor() {
    return createDescriptor(TaskKind::Parallel);
  }

  /// Creates a parallel region over \p Tasks; the first is the master.
  ParDescriptor *createRegion(std::vector<Task *> Tasks);

  /// Creates a recursive task-tree region over the single task \p T
  /// (markTree applied with \p DefaultGrain).
  ParDescriptor *createTreeRegion(Task *T, unsigned DefaultGrain);

  size_t taskCount() const { return Tasks.size(); }
  Task *taskById(unsigned Id) const {
    assert(Id < Tasks.size() && "task id out of range");
    return Tasks[Id].get();
  }

private:
  std::vector<std::unique_ptr<Task>> Tasks;
  std::vector<std::unique_ptr<TaskDescriptor>> Descriptors;
  std::vector<std::unique_ptr<ParDescriptor>> Regions;
};

} // namespace dope

#endif // DOPE_CORE_TASK_H

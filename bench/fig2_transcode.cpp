//===- bench/fig2_transcode.cpp - Figure 2 reproduction ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 2 of the paper: the motivating video-transcoding
/// experiment on the (simulated) 24-core platform.
///
///   (a) per-video execution time vs. load factor for static
///       <DoP_outer, DoP_inner> configurations,
///   (b) system throughput vs. load factor,
///   (c) end-user response time vs. load factor, including the oracle
///       that picks the best static configuration at every load.
///
/// Expected shapes: inner parallelism cuts execution time ~6.3x but
/// saturates throughput earlier; the response-time curves of the two
/// static extremes cross near load 0.8; the oracle dominates both.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/NestApps.h"
#include "mechanisms/ServerNest.h"
#include "sim/NestServerSim.h"

#include <cstdio>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

struct ConfigPoint {
  unsigned Outer;
  unsigned Inner;
  std::string label() const {
    return "<(" + std::to_string(Outer) + ",DOALL),(" +
           std::to_string(Inner) + (Inner > 1 ? ",PIPE)>" : ",SEQ)>");
  }
};

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Figure 2: execution time, throughput, and response "
                       "time of video transcoding vs. load factor");
  addCommonOptions(Options);
  Options.addInt("transactions", 500, "videos per run (paper: 500)");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  uint64_t Transactions =
      static_cast<uint64_t>(Options.getInt("transactions"));
  if (Options.getFlag("quick"))
    Transactions = 150;

  NestAppBundle App = makeX264App();

  const std::vector<double> Loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9, 1.0};
  const std::vector<unsigned> InnerExtents = {1, 2, 4, 8};

  std::vector<ConfigPoint> Configs;
  for (unsigned M : InnerExtents)
    Configs.push_back({outerExtentFor(Contexts, M), M});

  std::vector<std::string> Header = {"load"};
  for (const ConfigPoint &C : Configs)
    Header.push_back(C.label());

  Table ExecTable(Header);
  Table TputTable(Header);
  std::vector<std::string> RespHeader = Header;
  RespHeader.push_back("oracle");
  Table RespTable(RespHeader);

  // Collected for the shape checks.
  double ExecSeq = 0.0, ExecPar8 = 0.0;
  double TputSeqHeavy = 0.0, TputPar8Heavy = 0.0;
  double CrossoverLoad = 0.0;
  bool OracleDominates = true;

  for (double Load : Loads) {
    NestSimOptions SimOpts;
    SimOpts.Contexts = Contexts;
    SimOpts.LoadFactor = Load;
    SimOpts.NumTransactions = Transactions;
    SimOpts.Seed = Seed;
    NestServerSim Sim(App.Model, SimOpts);

    std::vector<std::string> ExecRow = {Table::formatDouble(Load, 1)};
    std::vector<std::string> TputRow = ExecRow;
    std::vector<std::string> RespRow = ExecRow;

    double OracleResponse = 1e300;
    double SeqResponse = 0.0, Par8Response = 0.0;
    for (const ConfigPoint &C : Configs) {
      NestSimResult R = Sim.run(nullptr, C.Outer, C.Inner);
      ExecRow.push_back(Table::formatDouble(R.Stats.meanExecTime(), 2));
      TputRow.push_back(Table::formatDouble(R.Throughput, 3));
      const double Response = R.Stats.meanResponseTime();
      RespRow.push_back(Table::formatDouble(Response, 2));
      OracleResponse = std::min(OracleResponse, Response);

      if (C.Inner == 1) {
        SeqResponse = Response;
        if (Load == 0.2)
          ExecSeq = R.Stats.meanExecTime();
        if (Load == 1.0)
          TputSeqHeavy = R.Throughput;
      }
      if (C.Inner == 8) {
        Par8Response = Response;
        if (Load == 0.2)
          ExecPar8 = R.Stats.meanExecTime();
        if (Load == 1.0)
          TputPar8Heavy = R.Throughput;
      }
    }
    RespRow.push_back(Table::formatDouble(OracleResponse, 2));

    if (CrossoverLoad == 0.0 && SeqResponse < Par8Response)
      CrossoverLoad = Load;
    if (OracleResponse >
        std::min(SeqResponse, Par8Response) + 1e-9)
      OracleDominates = false;

    ExecTable.addRow(ExecRow);
    TputTable.addRow(TputRow);
    RespTable.addRow(RespRow);
  }

  emitTable("Fig. 2(a) per-video execution time (s) vs load", ExecTable,
            Csv);
  emitTable("Fig. 2(b) throughput (videos/s) vs load", TputTable, Csv);
  emitTable("Fig. 2(c) response time (s) vs load, with oracle", RespTable,
            Csv);

  std::printf("\n");
  bool Ok = true;
  const double ExecRatio = ExecPar8 > 0.0 ? ExecSeq / ExecPar8 : 0.0;
  Ok &= checkShape(ExecRatio > 5.0 && ExecRatio < 7.5,
                   "inner DoP 8 cuts exec time ~6.3x at light load "
                   "(measured " +
                       Table::formatDouble(ExecRatio, 2) + "x)");
  Ok &= checkShape(TputSeqHeavy > TputPar8Heavy,
                   "at load 1.0 sequential-inner sustains more throughput "
                   "than inner DoP 8");
  Ok &= checkShape(CrossoverLoad >= 0.6 && CrossoverLoad <= 1.0,
                   "static response-time curves cross at heavy load "
                   "(measured " +
                       Table::formatDouble(CrossoverLoad, 1) + ")");
  Ok &= checkShape(OracleDominates,
                   "oracle response time dominates both static extremes");
  return Ok ? 0 : 1;
}

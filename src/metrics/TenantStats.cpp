//===- metrics/TenantStats.cpp - Per-tenant colocation metrics -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "metrics/TenantStats.h"

#include <algorithm>

using namespace dope;

double TenantStats::goalAttainment() const {
  if (LatencySensitive) {
    if (Completed == 0)
      return Arrived == 0 ? 1.0 : 0.0;
    return static_cast<double>(SloHits) / static_cast<double>(Completed);
  }
  if (Arrived == 0)
    return 1.0;
  return static_cast<double>(Completed) / static_cast<double>(Arrived);
}

double TenantStats::meanThreads(double DurationSeconds) const {
  return DurationSeconds > 0.0 ? ThreadSeconds / DurationSeconds : 0.0;
}

FairnessSummary
dope::summarizeTenants(const std::vector<TenantStats> &Tenants) {
  FairnessSummary Summary;
  if (Tenants.empty())
    return Summary;

  double WeightSum = 0.0, Weighted = 0.0;
  double Sum = 0.0, SumSq = 0.0;
  Summary.MinAttainment = 1.0;
  for (const TenantStats &T : Tenants) {
    const double A = T.goalAttainment();
    WeightSum += T.Weight;
    Weighted += T.Weight * A;
    Sum += A;
    SumSq += A * A;
    Summary.MinAttainment = std::min(Summary.MinAttainment, A);
  }
  Summary.AggregateAttainment = WeightSum > 0.0 ? Weighted / WeightSum : 0.0;
  Summary.JainIndex =
      SumSq > 0.0
          ? (Sum * Sum) / (static_cast<double>(Tenants.size()) * SumSq)
          : 1.0;
  return Summary;
}

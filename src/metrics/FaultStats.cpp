//===- metrics/FaultStats.cpp - Failure and recovery counters --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "metrics/FaultStats.h"

#include <cstdio>

using namespace dope;

std::string dope::toString(const FaultStats &Stats) {
  char Buffer[160];
  if (Stats.TimeToRecoverSeconds >= 0.0)
    std::snprintf(Buffer, sizeof(Buffer),
                  "kills=%llu wedged=%llu incidents=%llu retries=%llu "
                  "shed=%llu dropped=%llu recover=%.1fs",
                  static_cast<unsigned long long>(Stats.ContextsKilled),
                  static_cast<unsigned long long>(Stats.ReplicasWedged),
                  static_cast<unsigned long long>(Stats.Incidents),
                  static_cast<unsigned long long>(Stats.Retries),
                  static_cast<unsigned long long>(Stats.ItemsShed),
                  static_cast<unsigned long long>(Stats.ItemsDropped),
                  Stats.TimeToRecoverSeconds);
  else
    std::snprintf(Buffer, sizeof(Buffer),
                  "kills=%llu wedged=%llu incidents=%llu retries=%llu "
                  "shed=%llu dropped=%llu recover=never",
                  static_cast<unsigned long long>(Stats.ContextsKilled),
                  static_cast<unsigned long long>(Stats.ReplicasWedged),
                  static_cast<unsigned long long>(Stats.Incidents),
                  static_cast<unsigned long long>(Stats.Retries),
                  static_cast<unsigned long long>(Stats.ItemsShed),
                  static_cast<unsigned long long>(Stats.ItemsDropped));
  return Buffer;
}

double dope::timeToRecover(const TimeSeries &Throughput, double FaultTime,
                           double TargetRate, double SustainSeconds) {
  const std::vector<TimeSeries::Point> &Points = Throughput.points();
  for (size_t I = 0; I != Points.size(); ++I) {
    if (Points[I].Time < FaultTime || Points[I].Value < TargetRate)
      continue;
    // Candidate window: every later window up to Time + SustainSeconds
    // must hold the rate too (0 accepts the single window).
    bool Sustained = true;
    for (size_t J = I + 1;
         SustainSeconds > 0.0 && J != Points.size(); ++J) {
      if (Points[J].Time > Points[I].Time + SustainSeconds)
        break;
      if (Points[J].Value < TargetRate) {
        Sustained = false;
        break;
      }
    }
    if (Sustained)
      return Points[I].Time - FaultTime;
  }
  return -1.0;
}

//===- tests/ThroughputMechanismsTest.cpp - TBF/FDP/SEDA tests --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Fdp.h"
#include "mechanisms/Seda.h"
#include "mechanisms/StaticMechanism.h"
#include "mechanisms/Tbf.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

PipelineGraph ferretLikeGraph(bool WithFused = true) {
  std::vector<StageSpec> Fused;
  if (WithFused)
    Fused = {{"load", false}, {"query", true}, {"out", false}};
  return makePipelineGraph({{"load", false},
                            {"segment", true},
                            {"extract", true},
                            {"rank", true},
                            {"out", false}},
                           Fused);
}

RegionConfig configWithExtents(std::vector<unsigned> Extents, int Alt = 0) {
  TaskConfig Driver;
  Driver.Extent = 1;
  Driver.AltIndex = Alt;
  for (unsigned E : Extents) {
    TaskConfig TC;
    TC.Extent = E;
    Driver.Inner.push_back(TC);
  }
  RegionConfig Config;
  Config.Tasks.push_back(Driver);
  return Config;
}

std::vector<unsigned> stageExtents(const RegionConfig &Config) {
  std::vector<unsigned> Out;
  for (const TaskConfig &TC : Config.Tasks.front().Inner)
    Out.push_back(TC.Extent);
  return Out;
}

MechanismContext makeCtx(unsigned Threads = 24) {
  MechanismContext Ctx;
  Ctx.MaxThreads = Threads;
  return Ctx;
}

// Balanced-ish stage metrics: load 0.1s | segment 0.8s | extract 8s |
// rank 2s | out 0.1s.
std::vector<StageMetricsSpec> ferretMetrics() {
  return {{0.1, 1, 10}, {0.8, 4, 10}, {8.0, 40, 10}, {2.0, 8, 10},
          {0.1, 0, 10}};
}

TEST(Tbf, WaitsForMeasurements) {
  PipelineGraph G = ferretLikeGraph();
  TbfMechanism M({0.5, /*EnableFusion=*/false});
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, C, {{0.1, 0, 0}, {0.0, 0, 0}, {0.0, 0, 0}, {0.0, 0, 0},
             {0.0, 0, 0}});
  EXPECT_FALSE(M.reconfigure(*G.Root, Snap, C, makeCtx()).has_value());
}

TEST(Tbf, BalancesInverselyToThroughput) {
  PipelineGraph G = ferretLikeGraph(/*WithFused=*/false);
  TbfMechanism M({0.5, false});
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  const std::vector<unsigned> E = stageExtents(*Next);
  // Sequential stages pinned; the 8 s stage dominates the assignment.
  EXPECT_EQ(E[0], 1u);
  EXPECT_EQ(E[4], 1u);
  EXPECT_GT(E[2], E[1]);
  EXPECT_GT(E[2], E[3]);
  unsigned Total = 0;
  for (unsigned X : E)
    Total += X;
  EXPECT_LE(Total, 24u);
  // Max-min balance: no parallel stage's capacity can be far below the
  // bottleneck of the ideal continuous split (22 / 11.8 ~ 1.86).
  EXPECT_GE(static_cast<double>(E[2]) / 8.0, 1.5);
}

TEST(Tbf, FusesWhenImbalanceExceedsThreshold) {
  PipelineGraph G = ferretLikeGraph();
  TbfMechanism M({0.5, /*EnableFusion=*/true, /*FusionWarmup=*/0});
  RegionConfig C = configWithExtents({1, 6, 6, 6, 1});
  // Sequential stages have tiny exec times, so the capacity spread
  // between them and the balanced parallel stages exceeds 0.5.
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks.front().AltIndex, 1);
  EXPECT_TRUE(M.fused());
  // The fused parallel stage receives the non-sequential budget.
  EXPECT_EQ(Next->Tasks.front().Inner[1].Extent, 22u);
}

TEST(Tbf, FusionWaitsForWarmup) {
  PipelineGraph G = ferretLikeGraph();
  TbfMechanism M({0.5, /*EnableFusion=*/true, /*FusionWarmup=*/2});
  RegionConfig C = configWithExtents({1, 6, 6, 6, 1});
  // Decisions 1 and 2 rebalance without fusing; decision 3 may fuse.
  for (int I = 0; I != 2; ++I) {
    RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
    std::optional<RegionConfig> Next =
        M.reconfigure(*G.Root, Snap, C, makeCtx());
    ASSERT_TRUE(Next.has_value());
    EXPECT_EQ(Next->Tasks.front().AltIndex, 0);
    C = *Next;
  }
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks.front().AltIndex, 1);
}

TEST(Tbf, NoFusionWithoutAlternative) {
  PipelineGraph G = ferretLikeGraph(/*WithFused=*/false);
  TbfMechanism M({0.5, true, 0});
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks.front().AltIndex, 0);
  EXPECT_FALSE(M.fused());
}

TEST(Tbf, TbVariantNeverFuses) {
  PipelineGraph G = ferretLikeGraph();
  TbfMechanism M({0.5, /*EnableFusion=*/false});
  EXPECT_EQ(M.name(), "TB");
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks.front().AltIndex, 0);
}

TEST(Tbf, ImbalanceMetric) {
  EXPECT_DOUBLE_EQ(TbfMechanism::imbalance({2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(TbfMechanism::imbalance({1.0, 4.0}), 0.75);
  EXPECT_DOUBLE_EQ(TbfMechanism::imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(TbfMechanism::imbalance({0.0, 3.0}), 0.0);
}

TEST(Fdp, ClimbsTowardBottleneck) {
  PipelineGraph G = ferretLikeGraph(false);
  FdpMechanism M;
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  const std::vector<unsigned> E = stageExtents(*Next);
  // First move: grow the slowest stage (extract, 8 s) using free budget.
  EXPECT_EQ(E[2], 2u);
}

TEST(Fdp, RevertsFailedMoves) {
  PipelineGraph G = ferretLikeGraph(false);
  FdpMechanism M;
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(G, C, ferretMetrics());
  // Apply the proposed move.
  RegionConfig Moved = *M.reconfigure(*G.Root, Snap, C, makeCtx());
  // Report *unchanged* throughput for the moved configuration: the
  // climber must revert (the extents it proposes next must not keep the
  // failed +1).
  RegionSnapshot SameTput = makePipelineSnapshot(
      G, Moved,
      {{0.1, 1, 20}, {0.8, 4, 20}, {16.0, 40, 20}, {2.0, 8, 20},
       {0.1, 0, 20}}); // extract now twice as slow: capacity unchanged
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, SameTput, Moved, makeCtx());
  ASSERT_TRUE(Next.has_value());
  const std::vector<unsigned> E = stageExtents(*Next);
  // The reverted base had extract at 1; the next proposal is a different
  // move, so extract is not grown twice.
  EXPECT_LE(E[2], 2u);
}

TEST(Fdp, ConvergesWhenNeighbourhoodExhausted) {
  PipelineGraph G = ferretLikeGraph(false);
  FdpMechanism M({/*AcceptEpsilon=*/0.02, /*ReexploreDrift=*/0.5});
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  // Keep reporting identical throughput: every move fails; eventually
  // the climber converges and stops proposing changes.
  bool Converged = false;
  for (int I = 0; I != 300 && !Converged; ++I) {
    RegionSnapshot Snap = makePipelineSnapshot(
        G, C,
        {{0.1, 1, 50}, {1.0, 4, 50}, {1.0, 40, 50}, {1.0, 8, 50},
         {0.1, 0, 50}});
    std::optional<RegionConfig> Next =
        M.reconfigure(*G.Root, Snap, C, makeCtx(6));
    if (Next)
      C = *Next;
    Converged = M.converged();
  }
  EXPECT_TRUE(Converged);
}

TEST(Seda, GrowsLoadedStagesLocally) {
  PipelineGraph G = ferretLikeGraph(false);
  SedaMechanism M({/*High=*/8.0, /*Low=*/1.0, /*Cap=*/0, false});
  RegionConfig C = configWithExtents({1, 1, 1, 1, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, C,
      {{0.1, 0, 10}, {0.8, 20, 10}, {8.0, 50, 10}, {2.0, 0.5, 10},
       {0.1, 0, 10}});
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, C, makeCtx());
  ASSERT_TRUE(Next.has_value());
  const std::vector<unsigned> E = stageExtents(*Next);
  EXPECT_EQ(E[1], 2u); // backed up
  EXPECT_EQ(E[2], 2u); // backed up
  EXPECT_EQ(E[3], 1u); // idle but already at minimum
  EXPECT_EQ(E[0], 1u); // sequential never grows
}

TEST(Seda, ShrinksIdleStages) {
  PipelineGraph G = ferretLikeGraph(false);
  SedaMechanism M({8.0, 1.0, 0, false});
  RegionConfig C = configWithExtents({1, 4, 4, 4, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, C,
      {{0.1, 0, 10}, {0.8, 0.2, 10}, {8.0, 50, 10}, {2.0, 0.0, 10},
       {0.1, 0, 10}});
  const std::vector<unsigned> E =
      stageExtents(*M.reconfigure(*G.Root, Snap, C, makeCtx()));
  EXPECT_EQ(E[1], 3u);
  EXPECT_EQ(E[2], 5u);
  EXPECT_EQ(E[3], 3u);
}

TEST(Seda, UncoordinatedAllocationsCanExceedBudget) {
  PipelineGraph G = ferretLikeGraph(false);
  SedaMechanism M({8.0, 1.0, /*PerStageCap=*/0, /*ClampTotal=*/false});
  RegionConfig C = configWithExtents({1, 23, 23, 23, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, C,
      {{0.1, 0, 10}, {0.8, 50, 10}, {8.0, 50, 10}, {2.0, 50, 10},
       {0.1, 0, 10}});
  const std::vector<unsigned> E =
      stageExtents(*M.reconfigure(*G.Root, Snap, C, makeCtx(24)));
  unsigned Total = 0;
  for (unsigned X : E)
    Total += X;
  // 24 per parallel stage plus sequential stages: oversubscribed.
  EXPECT_GT(Total, 24u);
}

TEST(Seda, ClampedVariantRespectsBudget) {
  PipelineGraph G = ferretLikeGraph(false);
  SedaMechanism M({8.0, 1.0, 0, /*ClampTotal=*/true});
  RegionConfig C = configWithExtents({1, 10, 10, 10, 1});
  RegionSnapshot Snap = makePipelineSnapshot(
      G, C,
      {{0.1, 0, 10}, {0.8, 50, 10}, {8.0, 50, 10}, {2.0, 50, 10},
       {0.1, 0, 10}});
  const std::vector<unsigned> E =
      stageExtents(*M.reconfigure(*G.Root, Snap, C, makeCtx(24)));
  unsigned Total = 0;
  for (unsigned X : E)
    Total += X;
  EXPECT_LE(Total, 24u);
}

TEST(StaticMech, AlwaysReturnsSameConfig) {
  PipelineGraph G = ferretLikeGraph(false);
  RegionConfig Fixed = configWithExtents({1, 7, 7, 7, 1});
  StaticMechanism M(Fixed, "Pthreads-Baseline");
  EXPECT_EQ(M.name(), "Pthreads-Baseline");
  RegionSnapshot Snap = makePipelineSnapshot(G, Fixed, ferretMetrics());
  std::optional<RegionConfig> Next =
      M.reconfigure(*G.Root, Snap, Fixed, makeCtx());
  ASSERT_TRUE(Next.has_value());
  EXPECT_TRUE(*Next == Fixed);
}

TEST(StaticMech, EvenPipelineConfigSplitsBudget) {
  PipelineGraph G = ferretLikeGraph(false);
  RegionConfig C = makeEvenPipelineConfig(*G.Root, 24);
  const std::vector<unsigned> E = stageExtents(C);
  ASSERT_EQ(E.size(), 5u);
  EXPECT_EQ(E[0], 1u);
  EXPECT_EQ(E[4], 1u);
  // 22 threads (24 minus the two sequential stages) split across the
  // three parallel stages: 8/7/7.
  EXPECT_EQ(E[1] + E[2] + E[3], 22u);
  EXPECT_LE(E[1], 8u);
  EXPECT_GE(E[3], 7u);
  std::string Error;
  EXPECT_TRUE(validateConfig(*G.Root, C, &Error)) << Error;
}

TEST(StaticMech, OversubscribedConfigGivesEveryParallelStageAll) {
  PipelineGraph G = ferretLikeGraph(false);
  RegionConfig C = makeOversubscribedConfig(*G.Root, 24);
  const std::vector<unsigned> E = stageExtents(C);
  EXPECT_EQ(E[0], 1u);
  EXPECT_EQ(E[1], 24u);
  EXPECT_EQ(E[2], 24u);
  EXPECT_EQ(E[3], 24u);
  EXPECT_EQ(E[4], 1u);
}

} // namespace


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_ferret_search.cpp" "bench/CMakeFiles/fig13_ferret_search.dir/fig13_ferret_search.cpp.o" "gcc" "bench/CMakeFiles/fig13_ferret_search.dir/fig13_ferret_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dope_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanisms/CMakeFiles/dope_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dope_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dope_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

//===- metrics/TimeSeries.cpp - Time series recording ----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "metrics/TimeSeries.h"

#include "support/Trace.h"

#include <cassert>

using namespace dope;

void TimeSeries::appendTo(Tracer &Trace) const {
  for (const Point &P : Points)
    Trace.recordAt(P.Time, TraceKind::Counter, Name, P.Value);
}

double TimeSeries::meanOver(double Lo, double Hi) const {
  assert(Lo <= Hi && "empty window");
  double Sum = 0.0;
  size_t Count = 0;
  for (const Point &P : Points) {
    if (P.Time < Lo || P.Time >= Hi)
      continue;
    Sum += P.Value;
    ++Count;
  }
  return Count == 0 ? 0.0 : Sum / static_cast<double>(Count);
}

TimeSeries TimeSeries::resample(double Start, double End, double Width) const {
  assert(Width > 0.0 && "window width must be positive");
  TimeSeries Out(Name);
  double Previous = 0.0;
  for (double Lo = Start; Lo < End; Lo += Width) {
    double Value = Previous;
    size_t Count = 0;
    double Sum = 0.0;
    for (const Point &P : Points) {
      if (P.Time < Lo || P.Time >= Lo + Width)
        continue;
      Sum += P.Value;
      ++Count;
    }
    if (Count > 0) {
      Value = Sum / static_cast<double>(Count);
      Previous = Value;
    }
    Out.addPoint(Lo + Width, Value);
  }
  return Out;
}

void RateTracker::recordEvent(double Time) {
  if (!Started) {
    Started = true;
    WindowStart = 0.0;
  }
  while (Time >= WindowStart + Window) {
    Series.addPoint(WindowStart + Window,
                    static_cast<double>(CountInWindow) / Window);
    WindowStart += Window;
    CountInWindow = 0;
  }
  ++CountInWindow;
}

void RateTracker::finish(double Time) {
  if (!Started)
    return;
  while (Time >= WindowStart + Window) {
    Series.addPoint(WindowStart + Window,
                    static_cast<double>(CountInWindow) / Window);
    WindowStart += Window;
    CountInWindow = 0;
  }
}

//===- core/Replay.h - Deterministic mechanism replay ----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic replay of recorded feature streams through Mechanism
/// implementations, in isolation from any executive or simulator.
///
/// A FeatureStream is a pure description of what a mechanism would have
/// observed over a run: the region shape (pipeline stages or a server
/// nest), the constraint envelope (thread budget, power budget), and a
/// time-ordered sequence of steps carrying platform features and per-stage
/// measurements. The ReplayMechanismHarness re-feeds the stream to any
/// Mechanism step by step, mimicking the executive's accept loop (a
/// decision is recorded only when the mechanism proposes a *valid change*
/// to the running configuration), and returns the full decision sequence.
///
/// Uses:
///   * golden-trace conformance tests — a committed stream replayed
///     through each mechanism must reproduce its committed decision
///     sequence exactly (tests/golden/, MechanismConformanceTest.cpp);
///   * property tests — randomized streams assert budget and power-cap
///     invariants on whatever decisions come out;
///   * differential tests — two mechanisms on one stream, compared.
///
/// Unlike the executive, the harness does NOT clamp proposals to the
/// thread budget: budget discipline is a property of the mechanisms
/// themselves and replay is where it is checked.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_REPLAY_H
#define DOPE_CORE_REPLAY_H

#include "core/Config.h"
#include "core/FeatureRegistry.h"
#include "core/Mechanism.h"
#include "core/Monitor.h"
#include "core/Task.h"

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dope {

class Tracer;

/// One stage of a replayed region description.
struct ReplayStageSpec {
  std::string Name;
  bool Parallel = true;
};

/// One observation step of a recorded stream.
struct ReplayStep {
  /// Virtual time of the step in seconds (MechanismContext::NowSeconds).
  double Time = 0.0;

  /// Thread envelope in force from this step on: the arbiter's lease as
  /// seen by the tenant's executive (Dope::setThreadEnvelope). 0 means
  /// "unchanged"; the stream starts at FeatureStream::MaxThreads. The
  /// harness clamps the value into [1, MaxThreads] and feeds it to the
  /// mechanism as its MaxThreads ceiling, so lease grant/revoke
  /// sequences replay deterministically.
  unsigned ThreadEnvelope = 0;

  /// Platform features visible at this step ("SystemPower",
  /// "LiveContexts", ...), in stable order for byte-identical files.
  std::vector<std::pair<std::string, double>> Features;

  /// Per-stage smoothed execution time in seconds, indexed like
  /// FeatureStream::Stages (for a server nest: one entry, the outer
  /// task). A stage with ExecTime <= 0 is *unmeasured*: its snapshot
  /// reports zero invocations, which gates mechanisms that require a
  /// fully measured region.
  std::vector<double> ExecTime;

  /// Per-stage load (queue occupancy), indexed like ExecTime.
  std::vector<double> Load;

  /// Measurements of the fused alternative's stages (pipeline streams
  /// with a fused alternative only), indexed like
  /// FeatureStream::FusedStages. Empty means unmeasured.
  std::vector<double> FusedExecTime;
  std::vector<double> FusedLoad;
};

/// A recorded feature stream: region shape + constraints + steps.
struct FeatureStream {
  enum class GraphKind {
    /// Driver-wrapped pipeline: root{ driver(SEQ, alt0 = Stages,
    /// alt1 = FusedStages when nonempty) }.
    Pipeline,
    /// Server nest: root{ outer(PAR, alt0 = { work(PAR) }) }.
    ServerNest,
    /// Recursive task tree: root = tree-marked region over one PAR task
    /// (Stages names it); the configuration carries a grain next to the
    /// extent, so grain-adaptation mechanisms replay through the same
    /// harness as everything else.
    TaskTree,
  };

  std::string Name;
  GraphKind Kind = GraphKind::Pipeline;
  unsigned MaxThreads = 8;
  double PowerBudgetWatts = 0.0;
  /// Grain seeding defaultConfig for TaskTree streams (ignored
  /// elsewhere).
  unsigned DefaultGrain = 64;
  std::vector<ReplayStageSpec> Stages;
  std::vector<ReplayStageSpec> FusedStages;
  std::vector<ReplayStep> Steps;
};

/// Writes \p Stream as JSONL: a header object, then one object per step.
void writeFeatureStream(const FeatureStream &Stream, std::ostream &OS);

/// Reads a stream written by writeFeatureStream; std::nullopt + \p Error
/// on malformed input. A malformed *final* record is tolerated as a torn
/// tail — the writer died mid-line — and the intact prefix is returned,
/// with \p TornTail (when provided) set so callers can report it;
/// corruption anywhere earlier still fails the whole read.
std::optional<FeatureStream> readFeatureStream(std::istream &IS,
                                               std::string *Error = nullptr,
                                               bool *TornTail = nullptr);

/// One accepted reconfiguration during a replay.
struct ReplayDecision {
  /// Index of the stream step that produced the decision.
  uint64_t Step = 0;
  /// The step's virtual time.
  double Time = 0.0;
  /// The new configuration rendered by toString (human-diffable).
  std::string Config;
  /// Threads the new configuration occupies.
  unsigned TotalThreads = 0;
  /// The budget in force (MechanismContext::effectiveThreads) when the
  /// decision was made.
  unsigned Budget = 0;
  /// Leaf extents of the new configuration in depth-first descriptor
  /// order (inactive alternatives excluded).
  std::vector<unsigned> Extents;

  bool operator==(const ReplayDecision &Other) const {
    return Step == Other.Step && Config == Other.Config &&
           TotalThreads == Other.TotalThreads && Extents == Other.Extents;
  }
};

/// Writes decisions as JSONL, one object per decision.
void writeDecisions(const std::vector<ReplayDecision> &Decisions,
                    std::ostream &OS);

/// Reads decisions written by writeDecisions. Like readFeatureStream, a
/// torn final line is tolerated (\p TornTail reports it); earlier
/// corruption fails the read.
std::optional<std::vector<ReplayDecision>>
readDecisions(std::istream &IS, std::string *Error = nullptr,
              bool *TornTail = nullptr);

/// Compares an actual decision sequence against an expected (golden) one.
/// Returns std::nullopt on an exact match, otherwise a readable report
/// pinpointing the first divergent decision (index, step, both renderings)
/// rather than a blob diff.
std::optional<std::string>
diffDecisions(const std::vector<ReplayDecision> &Expected,
              const std::vector<ReplayDecision> &Actual);

/// Result of replaying one stream through one mechanism.
struct ReplayResult {
  std::vector<ReplayDecision> Decisions;
  RegionConfig FinalConfig;
  /// Proposals the harness rejected as structurally invalid
  /// (validateConfig failures — a mechanism bug worth asserting on).
  unsigned InvalidProposals = 0;
};

/// Replays a FeatureStream through a Mechanism.
class ReplayMechanismHarness {
public:
  /// Called before each step with the step index and the configuration
  /// currently "running"; may override features for the step, closing
  /// the loop for features that respond to configuration (e.g. a power
  /// model feeding "SystemPower" back to TPC).
  using StepHook = std::function<void(size_t Step, const RegionConfig &Current,
                                      std::map<std::string, double> &Features)>;

  explicit ReplayMechanismHarness(FeatureStream Stream);
  ~ReplayMechanismHarness();
  ReplayMechanismHarness(const ReplayMechanismHarness &) = delete;
  ReplayMechanismHarness &operator=(const ReplayMechanismHarness &) = delete;

  void setStepHook(StepHook Hook) { Hook_ = std::move(Hook); }

  /// Replays the whole stream through \p M (which is reset() first).
  /// When \p Trace is non-null, every consult is recorded as a Decision
  /// record and every feature read as a FeatureRead, stamped with stream
  /// time.
  ReplayResult run(Mechanism &M, Tracer *Trace = nullptr);

  const FeatureStream &stream() const { return Stream; }
  const ParDescriptor &root() const { return *Root; }

private:
  RegionSnapshot buildSnapshot(const ReplayStep &Step,
                               const RegionConfig &Current,
                               uint64_t Invocations) const;

  FeatureStream Stream;
  std::unique_ptr<TaskGraph> Graph;
  ParDescriptor *Root = nullptr;
  // Pipeline shape.
  Task *Driver = nullptr;
  std::vector<Task *> StageTasks;
  std::vector<Task *> FusedTasks;
  // Server-nest shape.
  Task *Outer = nullptr;
  Task *InnerWork = nullptr;
  // Task-tree shape.
  Task *TreeTask = nullptr;

  StepHook Hook_;
  /// Feature values for the step being replayed; the registry's
  /// callbacks read through this map.
  std::map<std::string, double> CurrentFeatures;
  FeatureRegistry Registry;
};

/// Depth-first leaf extents of \p Config (active alternatives only) —
/// the flat form stored in ReplayDecision::Extents.
std::vector<unsigned> flattenExtents(const RegionConfig &Config);

} // namespace dope

#endif // DOPE_CORE_REPLAY_H

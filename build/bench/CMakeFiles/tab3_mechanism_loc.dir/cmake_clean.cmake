file(REMOVE_RECURSE
  "CMakeFiles/tab3_mechanism_loc.dir/tab3_mechanism_loc.cpp.o"
  "CMakeFiles/tab3_mechanism_loc.dir/tab3_mechanism_loc.cpp.o.d"
  "tab3_mechanism_loc"
  "tab3_mechanism_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_mechanism_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

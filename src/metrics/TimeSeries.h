//===- metrics/TimeSeries.h - Time series recording ------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple (time, value) series with windowed resampling, used by the
/// dynamic-behaviour harnesses (Fig. 13 throughput-over-time, Fig. 14
/// power/throughput traces).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_METRICS_TIMESERIES_H
#define DOPE_METRICS_TIMESERIES_H

#include <cstddef>
#include <string>
#include <vector>

namespace dope {

class Tracer;

/// An append-only (time, value) series.
class TimeSeries {
public:
  explicit TimeSeries(std::string Name = "") : Name(std::move(Name)) {}

  void addPoint(double Time, double Value) {
    Points.push_back({Time, Value});
  }

  struct Point {
    double Time;
    double Value;
  };

  const std::string &name() const { return Name; }
  size_t size() const { return Points.size(); }
  bool empty() const { return Points.empty(); }
  const Point &point(size_t Index) const { return Points[Index]; }
  const std::vector<Point> &points() const { return Points; }

  /// Mean value over points with Time in [Lo, Hi); 0 when none fall in.
  double meanOver(double Lo, double Hi) const;

  /// Resamples into fixed windows of \p Width seconds starting at
  /// \p Start; each output point is the mean of its window (windows with
  /// no samples repeat the previous value).
  TimeSeries resample(double Start, double End, double Width) const;

  /// Appends every point as a Counter record (at the point's own time)
  /// so harness-collected series land on the same timeline as decisions.
  void appendTo(Tracer &Trace) const;

private:
  std::string Name;
  std::vector<Point> Points;
};

/// Counts events per fixed window to produce a rate series — the
/// throughput-over-time traces of Figs. 13 and 14.
class RateTracker {
public:
  explicit RateTracker(double WindowSeconds) : Window(WindowSeconds) {}

  /// Records one completed item at \p Time (non-decreasing).
  void recordEvent(double Time);

  /// Closes the current window (call once at the end of the run).
  void finish(double Time);

  /// Rate series: one point per window at the window's end time, value in
  /// events/second.
  const TimeSeries &series() const { return Series; }

private:
  double Window;
  double WindowStart = 0.0;
  size_t CountInWindow = 0;
  bool Started = false;
  TimeSeries Series{"rate"};
};

} // namespace dope

#endif // DOPE_METRICS_TIMESERIES_H

//===- bench/fig13_ferret_search.cpp - Figure 13 reproduction --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 13: ferret's dynamic throughput characteristic
/// under DoPE. "DoPE searches the parallelism configuration space before
/// stabilizing on the one with the maximum throughput under the
/// constraint of 24 hardware threads."
///
/// The harness runs TBF from the naive all-ones start and prints the
/// windowed throughput time series; the expected shape is an initial
/// search/ramp phase followed by a stable plateau well above the
/// starting throughput.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/PipelineApps.h"
#include "mechanisms/Tbf.h"
#include "sim/PipelineSim.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace dope;
using namespace dope::bench;

int main(int Argc, char **Argv) {
  OptionParser Options("Figure 13: ferret throughput over time while DoPE "
                       "searches the configuration space (TBF)");
  addCommonOptions(Options);
  Options.addInt("items", 4000, "queries to process");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  uint64_t Items = static_cast<uint64_t>(Options.getInt("items"));
  if (Options.getFlag("quick"))
    Items = 1200;

  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions SimOpts;
  SimOpts.Contexts = Contexts;
  SimOpts.Seed = static_cast<uint64_t>(Options.getInt("seed"));
  SimOpts.NumItems = Items;
  // A deliberately coarse decision cadence makes the search phase
  // visible in the trace: all-ones start, balanced assignment, fusion,
  // stable plateau.
  SimOpts.DecisionIntervalSeconds = 25.0;
  SimOpts.TraceWindowSeconds = 12.5;
  PipelineSim Sim(App, SimOpts);

  TbfMechanism Tbf;
  PipelineSimResult R = Sim.run(&Tbf, {});

  Table T({"time (s)", "throughput (queries/s)"});
  for (size_t I = 0; I != R.ThroughputSeries.size(); ++I) {
    const TimeSeries::Point &P = R.ThroughputSeries.point(I);
    T.addRow({Table::formatDouble(P.Time, 0),
              Table::formatDouble(P.Value, 3)});
  }
  emitTable("Fig. 13 ferret throughput vs time (DoPE-TBF, 24 threads)", T,
            Csv);

  // Shape: the search phase spans the first few decision intervals
  // (all-ones start, then rebalance, then fusion); the steady tail
  // reflects the stabilized configuration.
  const double End = R.TotalSeconds;
  const double Early = R.ThroughputSeries.meanOver(
      0.0, SimOpts.DecisionIntervalSeconds);
  const double Late = R.ThroughputSeries.meanOver(End * 0.6, End);

  // Stability: coefficient of variation across the last 40% of windows
  // (per-window counts carry Poisson-ish sampling noise, so a min/max
  // range would be dominated by outlier windows).
  StreamingStats Tail;
  for (size_t I = 0; I != R.ThroughputSeries.size(); ++I) {
    const TimeSeries::Point &P = R.ThroughputSeries.point(I);
    if (P.Time > End * 0.6)
      Tail.addSample(P.Value);
  }
  const double TailCv =
      Tail.mean() > 0.0 ? Tail.stddev() / Tail.mean() : 1.0;

  std::printf("\nreconfigurations: %llu, final extents:",
              static_cast<unsigned long long>(R.Reconfigurations));
  for (unsigned E : R.FinalExtents)
    std::printf(" %u", E);
  std::printf(" (%s)\n", R.EndedFused ? "fused" : "unfused");

  bool Ok = true;
  Ok &= checkShape(Late > Early * 2.0,
                   "stabilized throughput well above the search phase (" +
                       Table::formatDouble(Early, 2) + " -> " +
                       Table::formatDouble(Late, 2) + " queries/s)");
  Ok &= checkShape(R.Reconfigurations >= 2,
                   "DoPE explored several configurations before settling");
  Ok &= checkShape(TailCv < 0.15,
                   "throughput is stable after the search converges "
                   "(tail cv " +
                       Table::formatDouble(TailCv, 3) + ")");
  return Ok ? 0 : 1;
}

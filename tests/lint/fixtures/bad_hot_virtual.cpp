// HP003 fixture: a DOPE_HOT function calling a non-hot virtual.
// Never compiled — scanned by dope_lint in the lint test suite.

struct LoadSource {
  virtual double sampleCost() = 0;
  virtual ~LoadSource() = default;
};

struct Monitor {
  LoadSource *Source = nullptr;

  DOPE_HOT double observe() { return Source->sampleCost(); }
};

// HP001/HP002 fixture shaped like the work-stealing runtime: a deque
// whose DOPE_HOT owner fast path grows storage inline, and a scheduler
// whose DOPE_HOT acquire path blocks on a condition variable instead of
// parking through a cold entry point.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

struct BadDeque {
  std::vector<uint64_t> Ring;
  size_t Bottom = 0;

  DOPE_HOT void push(uint64_t Item) {
    Ring.push_back(Item); // growth belongs in a cold grow() helper
    ++Bottom;
  }

  DOPE_HOT void reseat(size_t Cap) {
    Ring.resize(Cap); // ditto
  }
};

struct BadScheduler {
  std::mutex ParkMutex;
  std::condition_variable ParkCv;
  BadDeque Deque;

  DOPE_HOT bool tryAcquire(uint64_t &Out) {
    std::unique_lock<std::mutex> Lock(ParkMutex);
    ParkCv.wait(Lock); // blocking wait on the acquire fast path
    Out = Deque.Bottom;
    return true;
  }
};

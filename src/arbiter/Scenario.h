//===- arbiter/Scenario.h - Canonical arbiter scenarios --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic closed-loop arbiter exercise used twice: the
/// `dope_trace regen` tool renders its lease decisions into the golden
/// trace under tests/golden/, and ArbiterConformanceTest re-runs it and
/// diffs byte-identically. Each scenario tenant is a tiny synthetic
/// model — a speedup curve, a base rate, and a phased offered-load
/// schedule — so the feedback loop (grant -> throughput -> utility ->
/// regrant) closes without any simulator machinery or randomness.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ARBITER_SCENARIO_H
#define DOPE_ARBITER_SCENARIO_H

#include "arbiter/Arbiter.h"
#include "support/SpeedupCurve.h"

#include <string>
#include <utility>
#include <vector>

namespace dope {

/// Synthetic tenant model for scripted scenarios. Throughput at k
/// threads is min(offered, BaseRate * Curve.speedup(k)); p95 response
/// grows with the backlog the model accumulates when offered exceeds
/// capacity.
struct ScenarioTenantModel {
  TenantSpec Spec;

  /// Completions per second at one thread.
  double BaseRate = 1.0;

  /// Intrinsic service latency contributing to p95 even when drained.
  double ServiceSeconds = 0.1;

  SpeedupCurve Curve;

  /// (duration seconds, offered rate items/s) phases, cycled if the
  /// scenario outlives them.
  std::vector<std::pair<double, double>> OfferedPhases;
};

struct ArbiterScenario {
  std::string Name;
  ArbiterOptions Options; // Options.Trace is overridden by the runner
  std::vector<ScenarioTenantModel> Tenants;
  double EndSeconds = 60.0;
};

/// The scenario behind the golden lease trace: a 24-thread platform
/// hosting a latency-sensitive "search" tenant (bursty offered load,
/// 0.5 s p95 SLO), a throughput-hungry "encode" batch tenant, and an
/// "analytics" tenant that joins late and leaves early.
ArbiterScenario makeCanonicalColocationScenario();

/// Runs \p S to completion, reporting synthetic samples and rebalancing
/// each epoch. Lease/utility records go to \p Trace when non-null
/// (stamped with virtual time). Returns every applied lease change in
/// order.
std::vector<LeaseChange> runArbiterScenario(const ArbiterScenario &S,
                                            Tracer *Trace);

} // namespace dope

#endif // DOPE_ARBITER_SCENARIO_H


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mechanisms/Dpm.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Dpm.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Dpm.cpp.o.d"
  "/root/repo/src/mechanisms/Edp.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Edp.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Edp.cpp.o.d"
  "/root/repo/src/mechanisms/Fdp.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Fdp.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Fdp.cpp.o.d"
  "/root/repo/src/mechanisms/Goal.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Goal.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Goal.cpp.o.d"
  "/root/repo/src/mechanisms/PipelineView.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/PipelineView.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/PipelineView.cpp.o.d"
  "/root/repo/src/mechanisms/Proportional.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Proportional.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Proportional.cpp.o.d"
  "/root/repo/src/mechanisms/Seda.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Seda.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Seda.cpp.o.d"
  "/root/repo/src/mechanisms/ServerNest.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/ServerNest.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/ServerNest.cpp.o.d"
  "/root/repo/src/mechanisms/StaticMechanism.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/StaticMechanism.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/StaticMechanism.cpp.o.d"
  "/root/repo/src/mechanisms/Tbf.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Tbf.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Tbf.cpp.o.d"
  "/root/repo/src/mechanisms/Tpc.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Tpc.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/Tpc.cpp.o.d"
  "/root/repo/src/mechanisms/WqLinear.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/WqLinear.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/WqLinear.cpp.o.d"
  "/root/repo/src/mechanisms/WqtH.cpp" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/WqtH.cpp.o" "gcc" "src/mechanisms/CMakeFiles/dope_mechanisms.dir/WqtH.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

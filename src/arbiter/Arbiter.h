//===- arbiter/Arbiter.h - Platform parallelism arbiter --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The platform-level degree-of-parallelism arbiter. Where one DoPE
/// executive orchestrates parallelism *within* a region, the arbiter
/// orchestrates thread and power budget *across* regions: N tenants each
/// hold a revocable lease, and on a fixed epoch the arbiter re-divides
/// the platform by weighted max-min water-filling over marginal-utility
/// bids learned from each tenant's observed throughput-vs-threads
/// history (UtilityEstimator). Tenants with no history bid equal-share.
///
/// Design properties:
///  - Deterministic: same tenant set + same samples + same epoch times
///    produce the same lease sequence (ties break by tenant id; no
///    wall-clock or RNG anywhere).
///  - Hysteresis: a rebalance whose largest per-tenant delta is within
///    HysteresisThreads is suppressed entirely unless some
///    ResponseTime tenant is violating its SLO — small drifts never
///    thrash leases.
///  - Revoke-before-grant: returned LeaseChanges list shrinking tenants
///    first so a caller applying them in order never overcommits.
///  - Power budget: an optional linear power model caps the grantable
///    thread pool below the physical thread count.
///
/// The arbiter is passive — it owns no thread. Hosts call reportSample
/// as tenant telemetry arrives and rebalance(Now) on their epoch tick;
/// the simulator drives it from virtual time, a native host from a
/// monotonic clock.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ARBITER_ARBITER_H
#define DOPE_ARBITER_ARBITER_H

#include "arbiter/ComplianceMonitor.h"
#include "arbiter/Lease.h"
#include "arbiter/Tenant.h"
#include "arbiter/UtilityEstimator.h"
#include "support/Json.h"
#include "support/ThreadAnnotations.h"
#include "support/Trace.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace dope {

struct ArbiterOptions {
  /// Physical hardware threads the platform can hand out.
  unsigned TotalThreads = 24;

  /// Platform power cap in watts; <= 0 disables the power model.
  double PowerBudgetWatts = 0.0;

  /// Linear active-power model: watts consumed per granted thread.
  double WattsPerThread = 0.0;

  /// Static platform power drawn regardless of grants.
  double IdlePowerWatts = 0.0;

  /// Seconds between rebalances; rebalance() calls inside an epoch are
  /// no-ops (tenant join/leave forces an immediate re-split).
  double EpochSeconds = 2.0;

  /// Suppress a rebalance whose largest per-tenant delta is at most
  /// this many threads (unless an SLO is burning). 0 disables
  /// hysteresis.
  unsigned HysteresisThreads = 1;

  /// Bid multiplier applied to a ResponseTime tenant whose p95 exceeds
  /// its SLO, scaled further by the violation ratio.
  double SloUrgencyBoost = 8.0;

  /// A ResponseTime tenant with p95 below this fraction of its SLO and
  /// a drained queue is "comfortable" and bids at a discount.
  double SloComfortFraction = 0.5;

  /// Discount on the marginal bid of a tenant already serving its
  /// offered load — spare threads flow to tenants that can use them.
  double IdleBidDiscount = 0.05;

  /// Lease time-to-live in seconds; 0 disables expiry. When set, a
  /// tenant whose last heartbeat (sample report) is at least this old at
  /// a rebalance call has its lease expired deterministically: the
  /// threads return to the pool (traced as LeaseExpire, change reason
  /// "expire") and the pool is re-split immediately. A fresh heartbeat
  /// revives the tenant at the next rebalance. The TTL clock starts at
  /// admission, so a tenant that joins and never reports still expires.
  double LeaseTtlSeconds = 0.0;

  /// Misbehavior detection and escalation (see ComplianceMonitor).
  ComplianceOptions Compliance;

  /// Optional sink for LeaseGrant / LeaseRevoke / LeaseExpire /
  /// Heartbeat / ComplianceVerdict / TenantUtility records.
  Tracer *Trace = nullptr;
};

/// Stable tenant handle (not reused after removeTenant).
using TenantId = uint32_t;

class Arbiter {
public:
  explicit Arbiter(ArbiterOptions Opts);

  /// Admits a tenant and immediately re-splits the platform (every
  /// sitting tenant may shrink to make room; the join bypasses the
  /// epoch gate and hysteresis). Returned changes include the
  /// newcomer's initial grant.
  TenantId addTenant(TenantSpec Spec, double NowSeconds,
                     std::vector<LeaseChange> *Changes = nullptr);

  /// Evicts a tenant; its lease returns to the pool and is re-offered
  /// at the next rebalance (no immediate re-split: joining tenants need
  /// threads now, leaving tenants just create slack). The final
  /// revocation to zero is appended to \p Changes when provided.
  void removeTenant(TenantId Id, double NowSeconds,
                    std::vector<LeaseChange> *Changes = nullptr);

  /// Feeds one epoch of telemetry; throughput observations accumulate
  /// into the tenant's utility estimator.
  void reportSample(TenantId Id, const TenantSample &Sample);

  /// Re-divides the platform if an epoch has elapsed since the last
  /// applied rebalance. Returns the applied lease changes, revocations
  /// first; empty when inside the epoch, when hysteresis suppressed the
  /// move, or when the allocation is already optimal.
  std::vector<LeaseChange> rebalance(double NowSeconds);

  Lease leaseOf(TenantId Id) const;
  const TenantSpec &specOf(TenantId Id) const;
  size_t tenantCount() const;

  /// Threads the power budget allows the arbiter to hand out
  /// (min(TotalThreads, power-capped pool), never below the sum of
  /// tenant floors once tenants are seated).
  unsigned grantableThreads() const;

  /// The bid the named tenant made for one more thread at the last
  /// rebalance (diagnostic; 0 before any rebalance).
  double lastBidOf(TenantId Id) const;

  /// Liveness / containment diagnostics (tests and hosts).
  bool isExpired(TenantId Id) const;
  bool isEvicted(TenantId Id) const;
  double lastHeartbeatOf(TenantId Id) const;
  CompliancePenalty penaltyOf(TenantId Id) const;
  double complianceScoreOf(TenantId Id) const;

  /// Serializes the full arbiter state — tenant specs, grants, heartbeat
  /// and compliance ledgers, and every smoothed utility observation — as
  /// a JSON object (schema "dope-arbiter-snapshot-v1"). A restarted
  /// arbiter restored from a snapshot makes the same decisions the dead
  /// one would have.
  JsonValue snapshot() const;

  /// Rebuilds state from snapshot(); replaces all current tenants.
  /// Returns false (leaving the arbiter untouched) on schema mismatch or
  /// a malformed document.
  bool restore(const JsonValue &Snapshot);

  /// Cold-start alternative to restore(): replays a recorded trace
  /// journal into the current tenant set (matched by tenant name).
  /// Saturated Heartbeat records re-teach each tenant's utility curve;
  /// lease records re-align Granted with what tenants actually hold, so
  /// the first post-restart rebalance starts from the real allocation
  /// instead of an equal split. Records naming no seated tenant (e.g. a
  /// Dope executive's "envelope" lease events) are skipped. Returns the
  /// number of records applied.
  size_t warmStart(const std::vector<TraceRecord> &Journal);

private:
  struct TenantState {
    TenantId Id = 0;
    TenantSpec Spec;
    UtilityEstimator Estimator;
    ComplianceMonitor Monitor;
    unsigned Granted = 0;
    TenantSample LastSample;
    bool HasSample = false;
    double LastBid = 0.0;
    /// Last proof of liveness (sample report time; admission time until
    /// the first report).
    double LastHeartbeat = 0.0;
    /// Lease expired by TTL; excluded from the water-fill until a fresh
    /// heartbeat revives it.
    bool Expired = false;
    /// Evicted for repeated non-compliance; terminal.
    bool Evicted = false;
    /// When this tenant's grant last changed — compliance checks skip
    /// sample windows spanning a lease change (the tenant legitimately
    /// held different counts within one window).
    double LastLeaseChange = -1.0;
  };

  /// Marginal bid of tenant \p T for thread number \p Have + 1.
  double bid(const TenantState &T, unsigned Have) const DOPE_REQUIRES(Mutex);

  /// True when \p T is a ResponseTime tenant currently over its SLO.
  bool sloBurning(const TenantState &T) const DOPE_REQUIRES(Mutex);

  /// Weighted max-min water-filling over all tenants; returns the
  /// target allocation aligned with Tenants order.
  std::vector<unsigned> waterFill() const DOPE_REQUIRES(Mutex);

  /// Lock-held body of grantableThreads(); waterFill calls it while
  /// already inside the arbiter mutex.
  unsigned grantableThreadsLocked() const DOPE_REQUIRES(Mutex);

  /// Applies \p Target, emitting trace records and LeaseChanges.
  std::vector<LeaseChange> apply(const std::vector<unsigned> &Target,
                                 double Now, const char *Reason)
      DOPE_REQUIRES(Mutex);

  /// True when the tenant participates in the water-fill (not expired,
  /// not evicted).
  static bool seated(const TenantState &T) {
    return !T.Expired && !T.Evicted;
  }

  /// Flags a violation on \p T and traces the verdict.
  void flagViolation(TenantState &T, ComplianceViolation V, double Now)
      DOPE_REQUIRES(Mutex);

  /// TTL-expires dead leases and latches evictions; appends the zeroing
  /// changes to \p Changes and returns true when the pool must re-split
  /// immediately (bypassing the epoch gate and hysteresis).
  bool expireAndEvict(double Now, std::vector<LeaseChange> &Changes)
      DOPE_REQUIRES(Mutex);

  const TenantState &stateOf(TenantId Id) const DOPE_REQUIRES(Mutex);
  TenantState &stateOfMut(TenantId Id) DOPE_REQUIRES(Mutex);

  ArbiterOptions Opts;
  // Hosts drive the arbiter from several threads (each tenant's epoch
  // tick may live on its own thread); one mutex serializes the whole
  // lease state.
  mutable std::mutex Mutex;
  // Sorted by Id (append-only ids).
  std::vector<TenantState> Tenants DOPE_GUARDED_BY(Mutex);
  TenantId NextId DOPE_GUARDED_BY(Mutex) = 1;
  double LastRebalance DOPE_GUARDED_BY(Mutex) = 0.0;
  bool EverRebalanced DOPE_GUARDED_BY(Mutex) = false;
  /// The next rebalance() call must re-split regardless of the epoch
  /// gate (set by expiry, eviction, and revival).
  bool ForceRebalance DOPE_GUARDED_BY(Mutex) = false;
  /// Reason label for a forced re-split ("revive", "rebalance", ...).
  const char *ForceReason DOPE_GUARDED_BY(Mutex) = "rebalance";
};

} // namespace dope

#endif // DOPE_ARBITER_ARBITER_H

//===- tests/NestServerSimTest.cpp - Nest server simulation tests ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/NestServerSim.h"

#include "apps/NestApps.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

NestSimOptions quickOptions(double LoadFactor, uint64_t Seed = 7) {
  NestSimOptions Opts;
  Opts.Contexts = 24;
  Opts.LoadFactor = LoadFactor;
  Opts.NumTransactions = 400;
  Opts.Seed = Seed;
  return Opts;
}

TEST(NestServerSim, CompletesAllTransactions) {
  NestAppBundle App = makeX264App();
  NestServerSim Sim(App.Model, quickOptions(0.5));
  NestSimResult R = Sim.run(nullptr, 24, 1);
  EXPECT_EQ(R.Stats.count(), 400u);
  EXPECT_GT(R.TotalSeconds, 0.0);
}

TEST(NestServerSim, DeterministicForSeed) {
  NestAppBundle App = makeX264App();
  NestServerSim A(App.Model, quickOptions(0.5, 99));
  NestServerSim B(App.Model, quickOptions(0.5, 99));
  NestSimResult RA = A.run(nullptr, 3, 8);
  NestSimResult RB = B.run(nullptr, 3, 8);
  EXPECT_DOUBLE_EQ(RA.Stats.meanResponseTime(), RB.Stats.meanResponseTime());
  EXPECT_DOUBLE_EQ(RA.Throughput, RB.Throughput);
}

TEST(NestServerSim, InnerParallelismCutsExecTimeAtLightLoad) {
  // Fig. 2(a): exploiting intra-video parallelism gives much lower
  // per-video execution time — about 6.3x at extent 8.
  NestAppBundle App = makeX264App();
  NestServerSim Sim(App.Model, quickOptions(0.2));
  NestSimResult Seq = Sim.run(nullptr, 24, 1);
  NestSimResult Par = Sim.run(nullptr, 3, 8);
  const double Ratio = Seq.Stats.meanExecTime() / Par.Stats.meanExecTime();
  EXPECT_GT(Ratio, 5.0);
  EXPECT_LT(Ratio, 7.5);
}

TEST(NestServerSim, ThroughputSaturatesAtConfigCapacity) {
  // Fig. 2(b): at heavy load, inner parallelism degrades throughput
  // (speedup 6.3 on 8 threads is inefficient).
  NestAppBundle App = makeX264App();
  NestSimOptions Opts = quickOptions(1.0);
  Opts.NumTransactions = 600;
  NestServerSim Sim(App.Model, Opts);
  NestSimResult Seq = Sim.run(nullptr, 24, 1);
  NestSimResult Par = Sim.run(nullptr, 3, 8);
  EXPECT_GT(Seq.Throughput, Par.Throughput * 1.15);
}

TEST(NestServerSim, ResponseTimeCrossover) {
  // Fig. 2(c): inner-parallel wins at light load, sequential-inner wins
  // at heavy load.
  NestAppBundle App = makeX264App();
  NestServerSim Light(App.Model, quickOptions(0.3));
  NestSimResult LightSeq = Light.run(nullptr, 24, 1);
  NestSimResult LightPar = Light.run(nullptr, 3, 8);
  EXPECT_LT(LightPar.Stats.meanResponseTime(),
            LightSeq.Stats.meanResponseTime());

  NestSimOptions Heavy = quickOptions(0.95);
  Heavy.NumTransactions = 600;
  NestServerSim HeavySim(App.Model, Heavy);
  NestSimResult HeavySeq = HeavySim.run(nullptr, 24, 1);
  NestSimResult HeavyPar = HeavySim.run(nullptr, 3, 8);
  EXPECT_LT(HeavySeq.Stats.meanResponseTime(),
            HeavyPar.Stats.meanResponseTime());
}

TEST(NestServerSim, ArrivalRateMatchesLoadFactorDefinition) {
  NestAppBundle App = makeX264App();
  NestServerSim Sim(App.Model, quickOptions(0.5));
  // Max throughput = C / T1 (paper's N/T definition); arrival rate is
  // LF times that.
  EXPECT_NEAR(Sim.maxThroughput(), 24.0 / App.Model.SeqServiceSeconds,
              1e-12);
  EXPECT_NEAR(Sim.arrivalRate(), 0.5 * Sim.maxThroughput(), 1e-12);
}

TEST(NestServerSim, WqtHAdaptsBetweenModes) {
  NestAppBundle App = makeX264App();
  NestSimOptions Opts = quickOptions(0.5);
  Opts.NumTransactions = 500;
  NestServerSim Sim(App.Model, Opts);
  WqtHMechanism Mech(App.WqtH);
  NestSimResult R = Sim.run(&Mech, 24, 1);
  EXPECT_EQ(R.Stats.count(), 500u);
  EXPECT_GE(R.Reconfigurations, 1u);
}

TEST(NestServerSim, WqLinearBeatsStaticsAtModerateLoad) {
  // The headline claim of Fig. 11: the adaptive mechanism's response
  // time dominates both static configurations at mid loads.
  NestAppBundle App = makeX264App();
  NestSimOptions Opts = quickOptions(0.7);
  Opts.NumTransactions = 800;
  NestServerSim Sim(App.Model, Opts);

  NestSimResult StaticSeq = Sim.run(nullptr, 24, 1);
  NestSimResult StaticPar = Sim.run(nullptr, 3, 8);
  WqLinearMechanism Wq(App.WqLinear);
  NestSimResult Adaptive = Sim.run(&Wq, 24, 1);

  const double Best = std::min(StaticSeq.Stats.meanResponseTime(),
                               StaticPar.Stats.meanResponseTime());
  // Allow a small tolerance: at 0.7 the adaptive config should at least
  // match the better static and typically beat it.
  EXPECT_LT(Adaptive.Stats.meanResponseTime(), Best * 1.05);
}

TEST(NestServerSim, ReconfigurationTraceRecorded) {
  NestAppBundle App = makeX264App();
  NestServerSim Sim(App.Model, quickOptions(0.4));
  WqLinearMechanism Wq(App.WqLinear);
  NestSimResult R = Sim.run(&Wq, 24, 1);
  EXPECT_FALSE(R.InnerExtentTrace.empty());
}

TEST(NestServerSim, OversubscribedStaticIsPenalized) {
  // 24 outer x 8 inner = 192 demanded threads on 24 contexts. Under
  // heavy load the contexts are saturated and contention inflates
  // per-transaction execution time; at light load few transactions run
  // concurrently, so oversubscription costs little — both effects are
  // intentional in the model.
  NestAppBundle App = makeX264App();
  NestSimOptions Heavy = quickOptions(0.9);
  Heavy.NumTransactions = 600;
  NestServerSim Sim(App.Model, Heavy);
  NestSimResult Oversub = Sim.run(nullptr, 24, 8);
  NestSimResult Fitted = Sim.run(nullptr, 3, 8);
  EXPECT_GT(Oversub.Stats.meanExecTime(),
            Fitted.Stats.meanExecTime() * 1.5);

  NestAppBundle App2 = makeX264App();
  NestServerSim Light(App2.Model, quickOptions(0.1));
  NestSimResult OversubLight = Light.run(nullptr, 24, 8);
  NestSimResult FittedLight = Light.run(nullptr, 3, 8);
  EXPECT_LT(OversubLight.Stats.meanExecTime(),
            FittedLight.Stats.meanExecTime() * 1.5);
}

} // namespace

//===- mechanisms/WqLinear.h - Work Queue Linear ---------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// WQ-Linear (paper Sec. 7.1): a more graceful response-time mechanism
/// than WQT-H. Instead of toggling between two extents, the inner DoP
/// extent varies continuously with the instantaneous work-queue occupancy
/// WQo (paper Eqns. 2-3):
///
///   DoP_extent = max(Mmin, Mmax - k * WQo),   k = (Mmax - Mmin) / Qmax
///
/// Qmax is back-calculated by the administrator from the maximum
/// response-time degradation acceptable under the SLA.
///
/// An optional hysteresis band (the "variant of WQ-Linear" the paper
/// mentions) suppresses reconfigurations that would change the extent by
/// no more than the band, trading responsiveness for stability; the
/// ablation benchmark sweeps this knob.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_WQLINEAR_H
#define DOPE_MECHANISMS_WQLINEAR_H

#include "core/Mechanism.h"

namespace dope {

/// Tuning parameters of WQ-Linear.
struct WqLinearParams {
  /// Smallest inner extent the mechanism will select.
  unsigned MMin = 1;
  /// Largest inner extent (efficiency knee).
  unsigned MMax = 8;
  /// Queue occupancy at which the extent reaches Mmin.
  double QMax = 16.0;
  /// Minimum extent change that triggers a reconfiguration (0 = always
  /// follow the line exactly).
  unsigned HysteresisBand = 0;
  /// Inner alternative activated when the extent exceeds 1.
  int AltIndex = 0;
};

/// Work Queue Linear.
class WqLinearMechanism : public Mechanism {
public:
  explicit WqLinearMechanism(WqLinearParams Params);

  std::string name() const override { return "WQ-Linear"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  void reset() override;

  /// The slope k = (Mmax - Mmin) / Qmax (paper Eqn. 3).
  double slope() const;

  /// The extent Eqn. 2 yields for occupancy \p Occupancy.
  unsigned extentForOccupancy(double Occupancy) const;

private:
  WqLinearParams Params;
  unsigned LastExtent = 0; // 0 = no decision yet
};

} // namespace dope

#endif // DOPE_MECHANISMS_WQLINEAR_H

//===- mechanisms/Tbf.cpp - Throughput Balance with Fusion -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Tbf.h"

#include "mechanisms/PipelineView.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace dope;

TbfMechanism::TbfMechanism(TbfParams Params) : Params(Params) {
  assert(Params.FusionThreshold >= 0.0 && Params.FusionThreshold <= 1.0 &&
         "fusion threshold is a ratio in [0, 1]");
}

double TbfMechanism::imbalance(const std::vector<double> &StageCapacities) {
  double MinCapacity = 0.0, MaxCapacity = 0.0;
  bool Any = false;
  for (double Capacity : StageCapacities) {
    if (Capacity <= 0.0)
      continue;
    if (!Any) {
      MinCapacity = MaxCapacity = Capacity;
      Any = true;
      continue;
    }
    MinCapacity = std::min(MinCapacity, Capacity);
    MaxCapacity = std::max(MaxCapacity, Capacity);
  }
  if (!Any || MaxCapacity <= 0.0)
    return 0.0;
  return 1.0 - MinCapacity / MaxCapacity;
}

std::optional<RegionConfig>
TbfMechanism::reconfigure(const ParDescriptor &Region,
                          const RegionSnapshot &Root,
                          const RegionConfig &Current,
                          const MechanismContext &Ctx) {
  std::optional<PipelineView> View =
      PipelineView::resolve(Region, Root, Current);
  if (!View)
    return std::nullopt;

  // Propose a pending warm-start hint before any measurement exists, so
  // the run starts at the predicted optimum instead of the default
  // assignment. Balancing resumes at the next measured decision.
  if (HintPending) {
    HintPending = false;
    if (Params.EnableFusion && View->hasAlternatives() &&
        Hint->AltIndex >= 0 &&
        Hint->AltIndex < static_cast<int>(View->alternativeCount()) &&
        Hint->AltIndex != View->activeAlternative()) {
      Fused = true;
      return View->makeAlternativeConfig(Hint->AltIndex,
                                         Ctx.effectiveThreads());
    }
    if (Hint->Extents.size() == View->stages().size() &&
        Hint->totalExtent() <= Ctx.effectiveThreads())
      return View->makeConfig(Hint->Extents);
    // Infeasible for this pipeline: discard and balance cold.
  }

  // Wait for at least one measurement of each stage before balancing.
  if (!View->fullyMeasured())
    return std::nullopt;

  const std::vector<StageView> &Stages = View->stages();

  // Assign extents inversely proportional to per-replica throughput —
  // i.e. proportional to per-item execution time — with sequential
  // stages pinned at one thread. Integer max-min waterfilling realizes
  // the proportional intent exactly: each next thread goes to the stage
  // currently limiting throughput.
  std::vector<double> UnitCosts;
  for (const StageView &SV : Stages)
    UnitCosts.push_back(SV.IsParallel ? SV.ExecTime : 0.0);
  std::vector<unsigned> Extents =
      waterfillSplit(Ctx.effectiveThreads(), UnitCosts, /*PinnedUnits=*/1);

  // Evaluate imbalance at the balanced assignment: the remaining spread
  // between stage capacities after the proportional split.
  std::vector<double> Capacities;
  for (size_t I = 0; I != Stages.size(); ++I)
    if (Stages[I].ExecTime > 0.0)
      Capacities.push_back(static_cast<double>(Extents[I]) /
                           Stages[I].ExecTime);

  ++MeasuredDecisions;
  if (Params.EnableFusion && !Fused && View->hasAlternatives() &&
      MeasuredDecisions > Params.FusionWarmupDecisions &&
      imbalance(Capacities) > Params.FusionThreshold) {
    const int FusedAlt = View->smallestAlternative();
    if (FusedAlt != View->activeAlternative()) {
      Fused = true;
      return View->makeAlternativeConfig(FusedAlt, Ctx.effectiveThreads());
    }
  }

  return View->makeConfig(Extents);
}

void TbfMechanism::seedWarmStart(const WarmStartHint &TheHint) {
  if (!TheHint.appliesTo(name()))
    return;
  if (TheHint.Extents.empty() && TheHint.AltIndex == 0)
    return; // carries no proposal
  Hint = TheHint;
  HintPending = true;
}

# Empty dependencies file for mechanism_tests.
# This may be replaced when dependencies are built.

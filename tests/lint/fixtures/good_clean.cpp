// Clean fixture: exercises every check's trigger territory without
// violating any contract. dope_lint must report zero findings here.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <atomic>
#include <mutex>

struct Sampler {
  std::atomic<double> Mirror{0.0};
  std::mutex Mutex;
  double Guarded = 0.0;

  // Hot reader: relaxed atomic mirror, no lock, no allocation.
  DOPE_HOT double read() const {
    return Mirror.load(std::memory_order_relaxed);
  }

  // Cold writer may lock freely.
  void write(double V) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Guarded = V;
    Mirror.store(V, std::memory_order_relaxed);
  }
};

void balancedWorker(TaskRuntime &RT) {
  RT.begin();
  process();
  RT.end();
}

void host() {
  auto Executive = Dope::create(Config);
  Executive->run(Graph);
  Executive->wait();
}

//===- tools/dope_explore.cpp - Interactive experiment runner --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A general-purpose experiment runner over the simulated platform:
/// pick an application, a mechanism, and a workload, get the paper-style
/// metrics. Where the bench/ harnesses regenerate the paper's fixed
/// figures, this tool answers ad-hoc questions ("how does FDP do on
/// dedup at 16 contexts?", "what does WQT-H's extent trace look like at
/// load 0.85?") without writing code.
///
/// Examples:
///   dope_explore --app ferret --mechanism tbf --items 3000
///   dope_explore --app x264 --mechanism wq-linear --load 0.8 --trace
///   dope_explore --app dedup --mechanism tpc --power-budget 540
///   dope_explore --app swaptions --mechanism edp --load 0.4
///
//===----------------------------------------------------------------------===//

#include "apps/NestApps.h"
#include "apps/PipelineApps.h"
#include "mechanisms/Dpm.h"
#include "mechanisms/Edp.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/Seda.h"
#include "mechanisms/ServerNest.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/Tpc.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "support/OptionParser.h"
#include "support/Table.h"

#include <cstdio>
#include <memory>
#include <string>

using namespace dope;

namespace {

std::unique_ptr<Mechanism> makeMechanism(const std::string &Name,
                                         const NestAppBundle *Nest) {
  if (Name == "none" || Name == "static")
    return nullptr;
  if (Name == "wqt-h")
    return std::make_unique<WqtHMechanism>(Nest ? Nest->WqtH : WqtHParams());
  if (Name == "wq-linear")
    return std::make_unique<WqLinearMechanism>(Nest ? Nest->WqLinear
                                                    : WqLinearParams());
  if (Name == "tbf")
    return std::make_unique<TbfMechanism>();
  if (Name == "tb")
    return std::make_unique<TbfMechanism>(
        TbfParams{0.5, /*EnableFusion=*/false, 4});
  if (Name == "fdp")
    return std::make_unique<FdpMechanism>();
  if (Name == "seda")
    return std::make_unique<SedaMechanism>();
  if (Name == "dpm")
    return std::make_unique<DpmMechanism>();
  if (Name == "tpc")
    return std::make_unique<TpcMechanism>();
  if (Name == "edp" && Nest)
    return std::make_unique<EdpMechanism>(
        EdpParams{Nest->Model.Curve, Nest->MMax, 1.15, 0});
  std::fprintf(stderr, "error: unknown mechanism '%s'\n", Name.c_str());
  std::exit(1);
}

int runNest(const NestAppBundle &App, const OptionParser &Options) {
  NestSimOptions SimOpts;
  SimOpts.Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  SimOpts.LoadFactor = Options.getDouble("load");
  SimOpts.NumTransactions =
      static_cast<uint64_t>(Options.getInt("items"));
  SimOpts.Seed = static_cast<uint64_t>(Options.getInt("seed"));
  NestServerSim Sim(App.Model, SimOpts);

  std::unique_ptr<Mechanism> Mech =
      makeMechanism(Options.getString("mechanism"), &App);
  const unsigned InitInner =
      static_cast<unsigned>(Options.getInt("inner"));
  const unsigned InitOuter = outerExtentFor(SimOpts.Contexts, InitInner);
  NestSimResult R = Sim.run(Mech.get(), InitOuter, InitInner);

  Table T({"metric", "value"});
  T.addRow({"transactions", Table::formatInt(
                                static_cast<long long>(R.Stats.count()))});
  T.addRow({"mean response (s)",
            Table::formatDouble(R.Stats.meanResponseTime(), 3)});
  T.addRow({"p95 response (s)",
            Table::formatDouble(R.Stats.responsePercentile(0.95), 3)});
  T.addRow({"mean exec (s)",
            Table::formatDouble(R.Stats.meanExecTime(), 3)});
  T.addRow({"mean wait (s)",
            Table::formatDouble(R.Stats.meanWaitTime(), 3)});
  T.addRow({"throughput (/s)", Table::formatDouble(R.Throughput, 4)});
  T.addRow({"reconfigurations",
            Table::formatInt(static_cast<long long>(R.Reconfigurations))});
  std::printf("%s", T.renderText().c_str());

  if (Options.getFlag("trace")) {
    std::printf("\ninner-extent decisions (time, extent):\n");
    const TimeSeries &Trace = R.InnerExtentTrace;
    const size_t Step = std::max<size_t>(1, Trace.size() / 40);
    for (size_t I = 0; I < Trace.size(); I += Step)
      std::printf("  %8.1f  %g\n", Trace.point(I).Time,
                  Trace.point(I).Value);
  }
  return 0;
}

int runPipeline(const PipelineAppModel &App, const OptionParser &Options) {
  PipelineSimOptions SimOpts;
  SimOpts.Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  SimOpts.Seed = static_cast<uint64_t>(Options.getInt("seed"));
  SimOpts.NumItems = static_cast<uint64_t>(Options.getInt("items"));
  SimOpts.PowerBudgetWatts = Options.getDouble("power-budget");
  const double Load = Options.getDouble("load");
  PipelineSim Probe(App, SimOpts);
  if (Load > 0.0) {
    std::vector<unsigned> Even;
    for (const PipelineStageSpec &S : App.Stages)
      Even.push_back(S.Parallel
                         ? std::max(1u, (SimOpts.Contexts - 2) /
                                            static_cast<unsigned>(
                                                App.Stages.size() - 2))
                         : 1);
    SimOpts.OpenLoop = true;
    SimOpts.ArrivalRate = Load * Probe.analyticThroughput(Even);
  }
  PipelineSim Sim(App, SimOpts);

  std::unique_ptr<Mechanism> Mech =
      makeMechanism(Options.getString("mechanism"), nullptr);
  PipelineSimResult R = Sim.run(Mech.get(), {});

  Table T({"metric", "value"});
  T.addRow({"items", Table::formatInt(
                         static_cast<long long>(R.ItemsCompleted))});
  T.addRow({"throughput (/s)", Table::formatDouble(R.Throughput, 4)});
  if (SimOpts.OpenLoop) {
    T.addRow({"mean response (s)",
              Table::formatDouble(R.Stats.meanResponseTime(), 3)});
    T.addRow({"p95 response (s)",
              Table::formatDouble(R.Stats.responsePercentile(0.95), 3)});
  }
  T.addRow({"reconfigurations",
            Table::formatInt(static_cast<long long>(R.Reconfigurations))});
  std::string Extents;
  for (unsigned E : R.FinalExtents)
    Extents += (Extents.empty() ? "" : " ") + std::to_string(E);
  T.addRow({"final extents", Extents + (R.EndedFused ? " (fused)" : "")});
  std::printf("%s", T.renderText().c_str());

  if (Options.getFlag("trace")) {
    std::printf("\nthroughput windows (time, items/s):\n");
    const TimeSeries &Trace = R.ThroughputSeries;
    const size_t Step = std::max<size_t>(1, Trace.size() / 40);
    for (size_t I = 0; I < Trace.size(); I += Step)
      std::printf("  %8.1f  %.3f\n", Trace.point(I).Time,
                  Trace.point(I).Value);
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "dope_explore: run any application model under any mechanism on "
      "the simulated 24-context platform.\n"
      "apps: x264 swaptions bzip gimp (server nests) | ferret dedup "
      "(batch pipelines)\n"
      "mechanisms: none wqt-h wq-linear edp (nests) | tbf tb fdp seda "
      "dpm tpc (pipelines)");
  Options.addString("app", "ferret", "application model");
  Options.addString("mechanism", "tbf", "adaptation mechanism");
  Options.addInt("contexts", 24, "hardware contexts");
  Options.addInt("items", 2000, "transactions / items");
  Options.addDouble("load", 0.5,
                    "load factor (nests; >0 makes pipelines open-loop)");
  Options.addInt("inner", 1, "initial inner extent (nests)");
  Options.addDouble("power-budget", 0.0, "watts; 0 = unconstrained");
  Options.addInt("seed", 42, "workload seed");
  Options.addFlag("trace", "print the decision/throughput trace");
  if (!Options.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n%s", Options.error().c_str(),
                 Options.helpText().c_str());
    return 1;
  }
  if (Options.helpRequested()) {
    std::printf("%s", Options.helpText().c_str());
    return 0;
  }

  const std::string AppName = Options.getString("app");
  for (const NestAppBundle &App : allNestApps())
    if (App.Model.Name == AppName)
      return runNest(App, Options);
  for (const PipelineAppModel &App : allPipelineApps())
    if (App.Name == AppName)
      return runPipeline(App, Options);
  std::fprintf(stderr, "error: unknown application '%s'\n",
               AppName.c_str());
  return 1;
}

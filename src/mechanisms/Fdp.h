//===- mechanisms/Fdp.h - Feedback Directed Pipelining ---------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FDP [Suleman et al., PACT 2010], implemented as a DoPE throughput
/// mechanism (paper Sec. 7.2): task execution times feed a hill-climbing
/// search over thread assignments. Each step either grows the limiter
/// stage (when budget is free) or moves one thread from the stage with
/// the most slack to the limiter; a step that fails to improve measured
/// throughput is reverted and an alternative move is tried. The search
/// re-opens when throughput drifts from the accepted plateau, giving the
/// "constant monitoring" behaviour the paper relies on.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_FDP_H
#define DOPE_MECHANISMS_FDP_H

#include "core/Mechanism.h"

#include <set>
#include <utility>
#include <vector>

namespace dope {

/// Tuning parameters of the FDP hill climber.
struct FdpParams {
  /// Relative throughput improvement required to accept a move.
  double AcceptEpsilon = 0.02;
  /// Relative drift from the accepted plateau that re-opens the search.
  double ReexploreDrift = 0.15;
};

/// Feedback Directed Pipelining.
class FdpMechanism : public Mechanism {
public:
  explicit FdpMechanism(FdpParams Params = FdpParams());

  std::string name() const override { return "FDP"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  void reset() override;

  /// Accepts per-stage extent hints for the active pipeline: the next
  /// (re)start proposes the hinted assignment directly and enters
  /// Converged, skipping the hill climb; the first measured throughput
  /// becomes the plateau, so the ordinary drift test re-opens the search
  /// whenever the prediction was wrong. Infeasible hints (stage arity
  /// mismatch, over budget) fall back to the cold path at proposal time.
  void seedWarmStart(const WarmStartHint &Hint) override;

  /// True once the climber has settled on a plateau (test hook).
  bool converged() const { return State == SearchState::Converged; }

private:
  enum class SearchState { WarmUp, Climbing, Converged };

  /// A move: take one thread from stage From (npos = free budget) and
  /// give it to stage To.
  struct Move {
    size_t From;
    size_t To;
    bool operator<(const Move &Other) const {
      return std::pair(From, To) < std::pair(Other.From, Other.To);
    }
  };

  /// Picks the next untried move given current extents; nullopt when the
  /// neighbourhood is exhausted.
  std::optional<Move> pickMove(const std::vector<unsigned> &Extents,
                               const std::vector<double> &ExecTimes,
                               const std::vector<bool> &Parallel,
                               unsigned Budget) const;

  FdpParams Params;
  /// Warm-start hint; survives reset() like a tuning parameter.
  std::optional<WarmStartHint> Hint;
  /// True while the hinted configuration has not been proposed yet this
  /// run; rearmed by reset().
  bool HintPending = false;
  SearchState State = SearchState::WarmUp;
  std::vector<unsigned> BaseExtents; // extents before the pending move
  double BaseThroughput = 0.0;       // throughput of BaseExtents
  bool MovePending = false;
  Move PendingMove = {0, 0};
  std::set<Move> TriedMoves;
  double PlateauThroughput = 0.0;
  /// Thread budget (effectiveThreads) the plateau was reached under. The
  /// plateau test compares *configured* capacities, which never move when
  /// the platform loses contexts under the assignment — so a budget shift
  /// must re-open the search explicitly.
  unsigned PlateauBudget = 0;
};

} // namespace dope

#endif // DOPE_MECHANISMS_FDP_H

//===- core/ThreadPool.cpp - Growable cached thread pool -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ThreadPool.h"

#include "support/Logging.h"

#include <cassert>

using namespace dope;

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock, then join outside it:
  // joining under the pool mutex would deadlock workers still draining
  // their final wakeup, and Workers is guarded by Mutex.
  std::vector<std::thread> Joinable;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Jobs.empty() && "destroying pool with queued work");
    ShuttingDown = true;
    Joinable.swap(Workers);
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Joinable)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  assert(Job && "submitting empty job");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "submitting to a shut-down pool");
    Jobs.push_back(std::move(Job));
    // Every queued job must be matched by an idle-or-new worker: DoPE
    // jobs are long-running task loops, so two jobs queued behind one
    // idle worker would leave the second replica unstarted and deadlock
    // the region (a replica blocked on a queue can only be released by
    // another replica that never ran). Spawning is conservative — an
    // extra worker parks harmlessly.
    if (IdleCount < Jobs.size()) {
      Workers.emplace_back([this] { workerMain(); });
      SpawnedCount.store(Workers.size(), std::memory_order_relaxed);
    }
  }
  WorkAvailable.notify_one();
}

void ThreadPool::setErrorHook(ErrorHookFn Hook) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ErrorHook = std::move(Hook);
}

void ThreadPool::reportEscaped(const std::string &Description) {
  ErrorHookFn Hook;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    EscapedCount.fetch_add(1, std::memory_order_relaxed);
    Hook = ErrorHook;
  }
  if (Hook)
    Hook(Description);
  else
    DOPE_LOG_ERROR("exception escaped a thread-pool job: %s",
                   Description.c_str());
}

void ThreadPool::workerMain() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      ++IdleCount;
      IdleSnapshot.store(IdleCount, std::memory_order_relaxed);
      WorkAvailable.wait(Lock,
                         [this] { return !Jobs.empty() || ShuttingDown; });
      --IdleCount;
      IdleSnapshot.store(IdleCount, std::memory_order_relaxed);
      if (Jobs.empty())
        return; // shutting down
      Job = std::move(Jobs.front());
      Jobs.pop_front();
    }
    // The worker is a failure domain: a throwing job costs one error
    // report, not the process.
    try {
      Job();
    } catch (const std::exception &E) {
      reportEscaped(E.what());
    } catch (...) {
      reportEscaped("non-standard exception");
    }
  }
}

//===- sim/FaultInjector.h - Deterministic fault injection -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded fault injection for the simulated platform. A FaultPlan
/// describes *what* goes wrong and when:
///
///   * ContextKillEvent — permanently removes hardware contexts at a
///     point in time. Replicas running on the killed contexts wedge:
///     they hold their stage slot but make no progress until the next
///     reconfiguration respawns the stage (static baselines never
///     reconfigure, so they stay degraded — the point of the
///     experiment). The surviving context count is published through
///     the FeatureRegistry as "LiveContexts", the one signal adaptive
///     mechanisms need to re-plan around the shrunken machine.
///
///   * StallEvent — a transient straggler episode: a stage's service
///     time is inflated by a factor for a duration, then reverts.
///
///   * StragglerProbability / HandoffDropProbability — continuous
///     background noise: individual service instances randomly inflated,
///     individual inter-stage hand-offs randomly lost.
///
/// The FaultInjector owns the plan plus a dedicated Rng seeded from the
/// run seed, so fault placement is deterministic and independent of the
/// service-time stream.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_FAULTINJECTOR_H
#define DOPE_SIM_FAULTINJECTOR_H

#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace dope {

/// Permanently kill \p Count contexts at \p Time.
struct ContextKillEvent {
  double Time = 0.0;
  unsigned Count = 1;
  /// Wedge only replicas of parallel stages. A wedged sequential stage
  /// (extent pinned at 1) halts the pipeline in a way no DoP decision
  /// can repair, which tests a different property than graceful
  /// degradation; keep true unless that is the point.
  bool SpareSequentialStages = true;
};

/// Transiently inflate stage \p Stage's service time by \p Factor for
/// \p DurationSeconds starting at \p Time (negative stage = all stages).
struct StallEvent {
  double Time = 0.0;
  int Stage = -1;
  double Factor = 4.0;
  double DurationSeconds = 1.0;
};

/// What goes wrong during a simulated run.
struct FaultPlan {
  std::vector<ContextKillEvent> Kills;
  std::vector<StallEvent> Stalls;

  /// Per-service-instance probability of running \p StragglerFactor
  /// times slower (models interference stragglers).
  double StragglerProbability = 0.0;
  double StragglerFactor = 4.0;

  /// Per-hand-off probability of the item being lost between stages.
  double HandoffDropProbability = 0.0;

  /// Per-report probability of a tenant's heartbeat/sample being lost on
  /// its way to the arbiter (models a flaky control plane; the tenant
  /// keeps serving but looks increasingly dead).
  double HeartbeatDropProbability = 0.0;

  bool empty() const {
    return Kills.empty() && Stalls.empty() && StragglerProbability <= 0.0 &&
           HandoffDropProbability <= 0.0 && HeartbeatDropProbability <= 0.0;
  }
};

/// Applies a FaultPlan with a deterministic random stream.
class FaultInjector {
public:
  FaultInjector(FaultPlan Plan, uint64_t Seed)
      : Plan(std::move(Plan)), FaultRng(Seed ^ 0xfa17ed5eedULL) {}

  const FaultPlan &plan() const { return Plan; }

  /// True when the current hand-off should be dropped.
  bool dropHandoff() {
    return Plan.HandoffDropProbability > 0.0 &&
           FaultRng.uniform() < Plan.HandoffDropProbability;
  }

  /// True when the current heartbeat/sample report should be lost.
  bool dropHeartbeat() {
    return Plan.HeartbeatDropProbability > 0.0 &&
           FaultRng.uniform() < Plan.HeartbeatDropProbability;
  }

  /// Service-time scale for one instance: StragglerFactor with
  /// StragglerProbability, else 1.
  double stragglerScale() {
    if (Plan.StragglerProbability > 0.0 &&
        FaultRng.uniform() < Plan.StragglerProbability)
      return Plan.StragglerFactor;
    return 1.0;
  }

  /// Uniform integer in [0, N) for victim selection.
  uint64_t pickVictim(uint64_t N) { return FaultRng.uniformInt(N); }

private:
  FaultPlan Plan;
  Rng FaultRng;
};

} // namespace dope

#endif // DOPE_SIM_FAULTINJECTOR_H

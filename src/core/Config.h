//===- core/Config.h - Parallelism configurations -------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallelism *configuration* assigns a concrete degree of parallelism
/// to the (under-specified) parallelism *description*: for every task, how
/// many threads execute it, and which inner ParDescriptor alternative (if
/// any) is active for its nested loop. Mechanisms produce configurations;
/// the executive realizes them.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_CONFIG_H
#define DOPE_CORE_CONFIG_H

#include "core/Task.h"
#include "core/Types.h"

#include <string>
#include <vector>

namespace dope {

/// Configuration of a single task within its region.
struct TaskConfig {
  /// Number of threads concurrently invoking this task's functor. Must be
  /// 1 for sequential tasks; >= 1 for parallel tasks.
  unsigned Extent = 1;

  /// Index of the active inner ParDescriptor alternative, or -1 to run the
  /// task without exploiting inner parallelism. (A task with no inner
  /// descriptor always uses -1.)
  int AltIndex = -1;

  /// Grain size for tasks inside a *tree* region (ParKind::Tree): the
  /// number of leaf units below which the work-stealing runtime stops
  /// splitting and executes sequentially. Validated like the extent:
  /// must be >= 1 for tree tasks and exactly 0 (unused) elsewhere, so a
  /// grain can never silently leak into a stage-graph configuration.
  unsigned Grain = 0;

  /// Per-task configurations of the chosen inner alternative's tasks
  /// (empty when AltIndex is -1). Order matches
  /// descriptor->alternative(AltIndex)->tasks().
  std::vector<TaskConfig> Inner;

  bool operator==(const TaskConfig &Other) const = default;
};

/// Configuration of a parallel region: one TaskConfig per task, in
/// descriptor order.
struct RegionConfig {
  std::vector<TaskConfig> Tasks;

  bool operator==(const RegionConfig &Other) const = default;
};

/// Returns the total number of hardware threads the configuration of
/// \p Config occupies when executing \p Region.
///
/// Accounting: every replica of a task occupies one thread. When a task
/// instance executes an inner region via Task::wait, the parent thread
/// runs the inner *master* task itself, so an inner region with total
/// extent M costs M - 1 additional threads per parent replica.
unsigned totalThreads(const ParDescriptor &Region, const RegionConfig &Config);

/// Validates \p Config against \p Region: matching arity, extents >= 1,
/// sequential tasks at extent 1, alternative indices in range, recursive
/// inner validity. Returns true when well formed; on failure, fills
/// \p ErrorMessage when non-null.
bool validateConfig(const ParDescriptor &Region, const RegionConfig &Config,
                    std::string *ErrorMessage = nullptr);

/// Builds the canonical default configuration: every task at extent 1,
/// first alternative active at every nesting level.
RegionConfig defaultConfig(const ParDescriptor &Region);

/// Renders a configuration like "<(3, DOALL), (8, PIPE)>" for a two-level
/// nest or "(<1, 6, 6, 6, 6, 1>, PIPE)" for a single pipeline, matching
/// the notations used in the paper's figures.
std::string toString(const ParDescriptor &Region, const RegionConfig &Config);

} // namespace dope

#endif // DOPE_CORE_CONFIG_H

//===- metrics/FaultStats.h - Failure and recovery counters ----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters describing how a run weathered faults and overload: injected
/// incidents (context kills, wedged replicas), executive-side retries,
/// requests shed by admission control, items lost to dropped hand-offs,
/// and the time the system needed to recover its throughput after a
/// fault. Filled by the fault-injecting simulator and by the native
/// executive's failure log; consumed by bench/ext_faults and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_METRICS_FAULTSTATS_H
#define DOPE_METRICS_FAULTSTATS_H

#include "metrics/TimeSeries.h"

#include <cstdint>
#include <string>

namespace dope {

/// Failure/recovery counters of one run.
struct FaultStats {
  /// Hardware contexts permanently lost to injected kills.
  uint64_t ContextsKilled = 0;

  /// Stage replicas wedged by context kills (stuck until the next
  /// reconfiguration respawns the stage's replicas).
  uint64_t ReplicasWedged = 0;

  /// Failure incidents: injected kills/stalls in the simulator, watchdog
  /// abandonments in the native executive.
  uint64_t Incidents = 0;

  /// Functor invocations the executive retried after an exception.
  uint64_t Retries = 0;

  /// Requests rejected at the outer queue by admission control.
  uint64_t ItemsShed = 0;

  /// Items lost to dropped inter-stage hand-offs.
  uint64_t ItemsDropped = 0;

  /// Seconds from the first fault until throughput recovered (see
  /// timeToRecover); negative when the run never recovered or no fault
  /// was injected.
  double TimeToRecoverSeconds = -1.0;
};

/// Renders "kills=2 wedged=6 incidents=2 retries=0 shed=120 dropped=3
/// recover=14.0s".
std::string toString(const FaultStats &Stats);

/// Seconds between \p FaultTime and the start of the first window of
/// \p Throughput at or after the fault whose rate sustains at least
/// \p TargetRate (this window and every later one averaging >= the
/// target over \p SustainSeconds). Returns a negative value when the
/// series never recovers.
double timeToRecover(const TimeSeries &Throughput, double FaultTime,
                     double TargetRate, double SustainSeconds = 0.0);

} // namespace dope

#endif // DOPE_METRICS_FAULTSTATS_H

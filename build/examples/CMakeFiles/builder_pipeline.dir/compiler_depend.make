# Empty compiler generated dependencies file for builder_pipeline.
# This may be replaced when dependencies are built.

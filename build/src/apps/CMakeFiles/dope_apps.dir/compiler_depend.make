# Empty compiler generated dependencies file for dope_apps.
# This may be replaced when dependencies are built.

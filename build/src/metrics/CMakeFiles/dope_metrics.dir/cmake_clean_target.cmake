file(REMOVE_RECURSE
  "libdope_metrics.a"
)

//===- support/Logging.cpp - Leveled diagnostics --------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace dope;

Logger &Logger::instance() {
  static Logger TheLogger;
  return TheLogger;
}

Logger::Logger() : Level(LogLevel::Warn) {
  if (const char *Env = std::getenv("DOPE_LOG")) {
    if (!std::strcmp(Env, "quiet"))
      Level = LogLevel::Quiet;
    else if (!std::strcmp(Env, "error"))
      Level = LogLevel::Error;
    else if (!std::strcmp(Env, "warn"))
      Level = LogLevel::Warn;
    else if (!std::strcmp(Env, "info"))
      Level = LogLevel::Info;
    else if (!std::strcmp(Env, "debug"))
      Level = LogLevel::Debug;
  }
}

void Logger::log(LogLevel MsgLevel, const char *Format, ...) {
  if (!enabled(MsgLevel))
    return;
  static const char *Tags[] = {"", "error", "warn", "info", "debug"};
  char Message[1024];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Message, sizeof(Message), Format, Args);
  va_end(Args);

  // Mirror the line into the active tracer (when one exists) so log
  // lines and trace records share a single timestamp domain — sim runs
  // retarget the tracer clock to virtual time, and the mirrored record
  // is stamped by that same clock.
  if (Tracer *T = Tracer::active())
    T->record(TraceKind::Log, Tags[static_cast<int>(MsgLevel)], 0.0, 0.0,
              Message);

  static std::mutex EmitMutex;
  std::lock_guard<std::mutex> Lock(EmitMutex);
  std::fprintf(stderr, "[dope:%s] %s\n", Tags[static_cast<int>(MsgLevel)],
               Message);
}

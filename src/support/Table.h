//===- support/Table.h - Aligned text tables and CSV ----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned text table and CSV rendering used by every benchmark
/// harness to print the rows/series of the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_TABLE_H
#define DOPE_SUPPORT_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace dope {

/// A simple table: a header row plus data rows of strings, rendered either
/// as aligned monospace text or as CSV.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  size_t rowCount() const { return Rows.size(); }
  size_t columnCount() const { return Header.size(); }
  const std::vector<std::string> &row(size_t Index) const;

  /// Renders with columns padded to their widest cell.
  std::string renderText() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
  std::string renderCsv() const;

  /// Formats a double with \p Precision fractional digits.
  static std::string formatDouble(double X, int Precision = 3);

  /// Formats an integer.
  static std::string formatInt(long long X);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dope

#endif // DOPE_SUPPORT_TABLE_H

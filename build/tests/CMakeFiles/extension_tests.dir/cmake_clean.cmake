file(REMOVE_RECURSE
  "CMakeFiles/extension_tests.dir/EdpTest.cpp.o"
  "CMakeFiles/extension_tests.dir/EdpTest.cpp.o.d"
  "extension_tests"
  "extension_tests.pdb"
  "extension_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

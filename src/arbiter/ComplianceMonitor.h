//===- arbiter/ComplianceMonitor.h - Misbehaving-tenant containment -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant misbehavior accounting. The arbiter trusts tenant
/// telemetry by construction — samples drive the utility curves that
/// drive the water-fill — so one byzantine or greedy tenant could starve
/// everyone else. The monitor turns each detected violation (running
/// above the granted envelope, non-monotone or future-dated sample
/// clocks, throughput outside the fitted curve's confidence band) into a
/// score, decays the score while the tenant behaves, and maps the score
/// onto an escalation ladder:
///
///   None -> BidDiscount -> LeaseClamp -> Evict
///
/// The ladder is deliberately forgiving at the bottom (a single noisy
/// window decays away) and terminal at the top (eviction latches in the
/// arbiter; a tenant that earned it re-joins only through operator
/// action). The monitor itself is pure bookkeeping — deterministic,
/// no clock, no RNG — so arbiter decisions stay replayable.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ARBITER_COMPLIANCEMONITOR_H
#define DOPE_ARBITER_COMPLIANCEMONITOR_H

#include <cstdint>

namespace dope {

/// Tuning for misbehavior detection and escalation.
struct ComplianceOptions {
  /// Master switch; disabled monitors never flag and never penalize.
  bool Enabled = true;

  /// A saturated window is implausible when its throughput exceeds
  /// PlausibleRateFactor * predicted + 3 * fit RMSE. Factor 2 tolerates
  /// honest transients (bursty drains, curve lag) while catching a
  /// tenant inflating its rate to win bids.
  double PlausibleRateFactor = 2.0;

  /// Confidence bands need an established curve: plausibility is only
  /// checked once the estimator spans this many distinct thread counts.
  unsigned MinExtentsForBand = 3;

  /// Score at which the tenant's bids are discounted.
  double DiscountThreshold = 2.0;

  /// Score at which the tenant's lease is clamped to its floor.
  double ClampThreshold = 4.0;

  /// Score at which the tenant is evicted (latched by the arbiter).
  double EvictThreshold = 6.0;

  /// Multiplier applied to a penalized tenant's bids (including its
  /// defend bid): repeated non-compliance makes greed expensive.
  double BidDiscount = 0.25;

  /// Score subtracted per clean epoch — good behavior walks a tenant
  /// back down the ladder (eviction excepted).
  double ScoreDecayPerEpoch = 0.25;
};

/// Violation classes the arbiter can detect from telemetry alone.
enum class ComplianceViolation : uint8_t {
  /// Sample reports more threads in use than the lease grants.
  EnvelopeExceeded,
  /// Sample timestamp not after the previous sample's.
  NonMonotoneClock,
  /// Sample timestamp ahead of the arbiter's clock by more than an
  /// epoch — a forged heartbeat that would fake liveness forever.
  FutureClock,
  /// Saturated-window throughput outside the fitted curve's band.
  ImplausibleThroughput,
};

/// Escalation rungs, ordered by severity.
enum class CompliancePenalty : uint8_t {
  None = 0,
  BidDiscount = 1,
  LeaseClamp = 2,
  Evict = 3,
};

const char *toString(ComplianceViolation V);
const char *toString(CompliancePenalty P);

/// True when \p P is at least as severe as \p Rung.
inline bool penaltyAtLeast(CompliancePenalty P, CompliancePenalty Rung) {
  return static_cast<uint8_t>(P) >= static_cast<uint8_t>(Rung);
}

/// One tenant's misbehavior ledger.
class ComplianceMonitor {
public:
  ComplianceMonitor() = default;
  explicit ComplianceMonitor(const ComplianceOptions &Opts) : Opts(Opts) {}

  /// Records one violation; returns the updated score.
  double flag(ComplianceViolation V);

  /// Epoch boundary: decays the score when no violation landed since the
  /// previous tick (good behavior is forgiven; eviction is not — the
  /// arbiter latches it before ticking).
  void epochTick();

  /// Accumulated misbehavior score.
  double score() const { return Score; }

  /// Current rung for the accumulated score.
  CompliancePenalty penalty() const;

  /// Total violations ever flagged.
  uint64_t violationCount() const { return Violations; }

  /// Restores the ledger from a snapshot.
  void restoreScore(double NewScore, uint64_t NewViolations);

private:
  ComplianceOptions Opts;
  double Score = 0.0;
  uint64_t Violations = 0;
  bool ViolatedSinceTick = false;
};

} // namespace dope

#endif // DOPE_ARBITER_COMPLIANCEMONITOR_H

//===- support/Compiler.h - Portability helpers ---------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used across the DoPE libraries.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_COMPILER_H
#define DOPE_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

/// Marks a point in control flow that must never be reached. Prints the
/// message and aborts; mirrors llvm_unreachable semantics in a dependency
/// free form.
#define DOPE_UNREACHABLE(Msg)                                                  \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", __FILE__,      \
                 __LINE__, (Msg));                                             \
    std::abort();                                                              \
  } while (false)

#endif // DOPE_SUPPORT_COMPILER_H

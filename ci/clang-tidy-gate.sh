#!/usr/bin/env bash
# Gating clang-tidy run against the committed suppression baseline.
#
#   ci/clang-tidy-gate.sh <clang-tidy-binary> <build-dir> [--update]
#
# Runs the pinned clang-tidy (the CI job installs one exact major
# version; pass plain `clang-tidy` locally) over every first-party
# translation unit under src/ and tools/, using the repository's
# .clang-tidy configuration via the compilation database in <build-dir>.
#
# Diagnostics are normalised to `<repo-relative-file> [check] message`
# — line and column numbers are dropped so unrelated edits to the same
# file do not churn the baseline — deduplicated, and compared against
# ci/clang-tidy-baseline.txt:
#
#   * a finding absent from the baseline fails the gate (exit 1),
#   * a baseline entry no longer reproduced prints a notice so the
#     baseline can be tightened,
#   * `--update` rewrites the baseline with the current findings;
#     review the diff like any golden regeneration.
#
# The baseline is committed empty and should stay that way: it exists
# so a clang-tidy version bump that introduces new checks can land
# without blocking every PR while the new findings are triaged — not to
# park known defects indefinitely.
set -euo pipefail

TIDY="${1:?usage: clang-tidy-gate.sh <clang-tidy-binary> <build-dir> [--update]}"
BUILD="${2:?usage: clang-tidy-gate.sh <clang-tidy-binary> <build-dir> [--update]}"
MODE="${3:-check}"

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BASELINE="$ROOT/ci/clang-tidy-baseline.txt"

cd "$ROOT"
mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "clang-tidy-gate: no translation units found" >&2
  exit 2
fi

# clang-tidy exits non-zero when it emits warnings; the gate decides
# pass/fail itself, so tolerate that (but keep stderr visible for real
# crashes/config errors).
RAW="$("$TIDY" -p "$BUILD" --quiet "${FILES[@]}" || true)"

CURRENT="$(printf '%s\n' "$RAW" |
  grep -E '^[^ ].*:[0-9]+:[0-9]+: (warning|error): .*\[[A-Za-z0-9.,-]+\]$' |
  sed -E "s|^$ROOT/||" |
  sed -E 's|^([^:]+):[0-9]+:[0-9]+: (warning\|error): (.*) (\[[A-Za-z0-9.,-]+\])$|\1 \4 \3|' |
  sort -u || true)"

if [ "$MODE" = "--update" ]; then
  printf '%s\n' "$CURRENT" | sed '/^$/d' >"$BASELINE"
  echo "clang-tidy-gate: baseline rewritten ($(grep -c . "$BASELINE" || true) entries) — review the diff"
  exit 0
fi

NEW="$(comm -23 <(printf '%s\n' "$CURRENT" | sed '/^$/d') \
  <(sed '/^#/d;/^$/d' "$BASELINE" | sort -u))"
STALE="$(comm -13 <(printf '%s\n' "$CURRENT" | sed '/^$/d') \
  <(sed '/^#/d;/^$/d' "$BASELINE" | sort -u))"

if [ -n "$STALE" ]; then
  echo "clang-tidy-gate: baseline entries no longer reproduced (tighten the baseline):"
  printf '%s\n' "$STALE" | sed 's/^/  /'
fi

if [ -n "$NEW" ]; then
  echo "clang-tidy-gate: NEW findings not in ci/clang-tidy-baseline.txt:" >&2
  printf '%s\n' "$NEW" | sed 's/^/  /' >&2
  echo "clang-tidy-gate: fix them, or run with --update and justify the baseline diff" >&2
  exit 1
fi

echo "clang-tidy-gate: clean (no findings beyond the baseline)"

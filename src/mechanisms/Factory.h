//===- mechanisms/Factory.h - Canonical mechanism construction -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates mechanisms by their paper names with the canonical parameters
/// used by the golden-trace conformance suite. The `dope_trace regen`
/// tool and MechanismConformanceTest must construct byte-identical
/// controllers, so the construction lives here, in one place.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_FACTORY_H
#define DOPE_MECHANISMS_FACTORY_H

#include "core/Mechanism.h"

#include <memory>
#include <string>
#include <vector>

namespace dope {

/// Creates the canonical instance of the mechanism named \p Name
/// ("WQT-H", "WQ-Linear", "TBF", "TB", "FDP", "SEDA", "TPC"); null for
/// unknown names. Parameters are the defaults used throughout the
/// benchmarks, pinned here so golden traces stay stable.
std::unique_ptr<Mechanism> createMechanismByName(const std::string &Name);

/// Like createMechanismByName, but seeds the instance with \p Hint (when
/// non-null and applicable to \p Name) before returning it — the
/// trace -> dope_whatif -> warm-start loop's construction entry point.
/// Identical parameters to the unhinted factory, so a null or
/// inapplicable hint reproduces the canonical mechanism exactly.
std::unique_ptr<Mechanism>
createMechanismByName(const std::string &Name, const WarmStartHint *Hint);

/// One (mechanism, stream) pairing of the conformance suite: replaying
/// golden/<StreamName>.stream.jsonl through createMechanismByName(
/// MechanismName) must reproduce golden/<decisionsFile()>.decisions.jsonl.
struct ConformanceCase {
  const char *MechanismName;
  const char *StreamName;

  /// Basename of the golden decisions file; null defaults to
  /// MechanismName. Lets one mechanism appear in several cases (e.g.
  /// TB both free-running and under lease revocations).
  const char *DecisionsName = nullptr;

  const char *decisionsFile() const {
    return DecisionsName ? DecisionsName : MechanismName;
  }
};

/// All pairings covered by the golden suite — the paper's seven
/// mechanisms, each on a stream that exercises its decision logic.
const std::vector<ConformanceCase> &conformanceCases();

} // namespace dope

#endif // DOPE_MECHANISMS_FACTORY_H

# Empty compiler generated dependencies file for transcode_server.
# This may be replaced when dependencies are built.

//===- mechanisms/Seda.cpp - Staged Event-Driven Architecture --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Seda.h"

#include "mechanisms/PipelineView.h"

#include <cassert>

using namespace dope;

SedaMechanism::SedaMechanism(SedaParams Params) : Params(Params) {
  assert(Params.HighWatermark > Params.LowWatermark &&
         "watermarks must be ordered");
}

std::optional<RegionConfig>
SedaMechanism::reconfigure(const ParDescriptor &Region,
                           const RegionSnapshot &Root,
                           const RegionConfig &Current,
                           const MechanismContext &Ctx) {
  std::optional<PipelineView> View =
      PipelineView::resolve(Region, Root, Current);
  if (!View)
    return std::nullopt;

  const std::vector<StageView> &Stages = View->stages();
  const unsigned Cap =
      Params.PerStageCap > 0 ? Params.PerStageCap : Ctx.effectiveThreads();

  // Local, uncoordinated per-stage decisions.
  std::vector<unsigned> Extents;
  for (const StageView &SV : Stages) {
    unsigned Extent = SV.Extent;
    if (SV.IsParallel) {
      if (SV.LastLoad > Params.HighWatermark && Extent < Cap)
        ++Extent;
      else if (SV.LastLoad < Params.LowWatermark && Extent > 1)
        --Extent;
    }
    Extents.push_back(Extent);
  }

  if (Params.ClampTotal) {
    // Coordinated variant: shed threads from the least-loaded stages
    // until the total fits the budget.
    unsigned Total = 0;
    for (unsigned E : Extents)
      Total += E;
    while (Total > Ctx.effectiveThreads()) {
      size_t Victim = PipelineView::npos;
      double MinLoad = 0.0;
      for (size_t I = 0; I != Extents.size(); ++I) {
        if (!Stages[I].IsParallel || Extents[I] <= 1)
          continue;
        if (Victim == PipelineView::npos || Stages[I].LastLoad < MinLoad) {
          Victim = I;
          MinLoad = Stages[I].LastLoad;
        }
      }
      if (Victim == PipelineView::npos)
        break;
      --Extents[Victim];
      --Total;
    }
  }

  return View->makeConfig(Extents);
}

file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/MathUtilsTest.cpp.o"
  "CMakeFiles/support_tests.dir/MathUtilsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/MovingAverageTest.cpp.o"
  "CMakeFiles/support_tests.dir/MovingAverageTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/OptionParserTest.cpp.o"
  "CMakeFiles/support_tests.dir/OptionParserTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/RandomTest.cpp.o"
  "CMakeFiles/support_tests.dir/RandomTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/StatisticsTest.cpp.o"
  "CMakeFiles/support_tests.dir/StatisticsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/TableTest.cpp.o"
  "CMakeFiles/support_tests.dir/TableTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- bench/micro_overhead.cpp - Monitoring overhead (<1% claim) ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Sec. 8.2 claim: "The performance overhead (compared to
/// the Pthreads parallelizations) of run-time monitoring of workload and
/// platform characteristics is less than 1%, even for monitoring each
/// and every instance of all the parallel tasks."
///
/// Four native variants process the same work-item stream:
///   * pthreads   — a plain std::thread worker loop (no DoPE),
///   * unmonitored— the DoPE executive, functor without begin/end,
///   * monitored  — the DoPE executive, begin/end around every instance
///                  plus an active LoadCB,
///   * traced     — monitored plus a structured Tracer recording every
///                  begin/end/decision into per-thread rings.
///
/// The harness reports median wall times over several interleaved trials
/// and checks that full monitoring costs under 2% (the paper's <1% is
/// measured on idle dedicated hardware; per-replica batched exec windows
/// put this harness at ~0-1%, and the threshold allows CI noise) and
/// that tracing adds less than 5% on top of the monitored executive.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/NativeKernels.h"
#include "core/Clock.h"
#include "core/Dope.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

constexpr uint64_t WorkPerItem = 20000;

double runPthreadsBaseline(uint64_t Items, unsigned Threads) {
  std::atomic<uint64_t> Next{0};
  std::atomic<uint64_t> Sink{0};
  const double Start = monotonicSeconds();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      for (;;) {
        const uint64_t I = Next.fetch_add(1);
        if (I >= Items)
          return;
        Sink.fetch_add(hashWork(I, WorkPerItem), std::memory_order_relaxed);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  return monotonicSeconds() - Start;
}

double runDope(uint64_t Items, unsigned Threads, bool Monitored,
               bool Traced = false) {
  TaskGraph Graph;
  std::atomic<uint64_t> Next{0};
  std::atomic<uint64_t> Sink{0};

  TaskFn Fn = [&, Monitored](TaskRuntime &RT) {
    if (Monitored && RT.begin() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    const uint64_t I = Next.fetch_add(1);
    if (I >= Items)
      return TaskStatus::Finished;
    Sink.fetch_add(hashWork(I, WorkPerItem), std::memory_order_relaxed);
    if (Monitored && RT.end() == TaskStatus::Suspended)
      return TaskStatus::Suspended;
    return TaskStatus::Executing;
  };
  LoadFn Load;
  if (Monitored)
    Load = [&] {
      return static_cast<double>(Items - std::min(Items, Next.load()));
    };
  Task *Work = Graph.createTask("work", Fn, Load, Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({Work});

  DopeOptions Opts;
  Opts.MaxThreads = Threads;
  RegionConfig Config;
  TaskConfig TC;
  TC.Extent = Threads;
  Config.Tasks.push_back(TC);
  Opts.InitialConfig = Config;

  // The tracer outlives the executive; rings are sized so steady-state
  // appends overwrite (the worst case for the hot path).
  Tracer Trace(16384);
  if (Traced)
    Opts.Trace = &Trace;

  const double Start = monotonicSeconds();
  std::unique_ptr<Dope> D = Dope::create(Root, std::move(Opts));
  D->wait();
  const double Elapsed = monotonicSeconds() - Start;
  D.reset();
  return Elapsed;
}

double median(std::vector<double> Values) {
  std::sort(Values.begin(), Values.end());
  return Values[Values.size() / 2];
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Monitoring overhead of the native DoPE executive "
                       "(paper Sec. 8.2: < 1%)");
  addCommonOptions(Options);
  Options.addInt("items", 20000, "work items per trial");
  Options.addInt("threads", 2, "worker threads (native run)");
  Options.addInt("trials", 5, "trials per variant (median reported)");
  parseOrExit(Options, Argc, Argv);
  const bool Csv = Options.getFlag("csv");

  uint64_t Items = static_cast<uint64_t>(Options.getInt("items"));
  const unsigned Threads = static_cast<unsigned>(Options.getInt("threads"));
  int Trials = static_cast<int>(Options.getInt("trials"));
  if (Options.getFlag("quick")) {
    Items = 6000;
    Trials = 3;
  }

  std::vector<double> Pthreads, Unmonitored, Monitored, Traced;
  // Interleave trials so slow-machine noise hits all variants equally.
  for (int T = 0; T != Trials; ++T) {
    Pthreads.push_back(runPthreadsBaseline(Items, Threads));
    Unmonitored.push_back(runDope(Items, Threads, /*Monitored=*/false));
    Monitored.push_back(runDope(Items, Threads, /*Monitored=*/true));
    Traced.push_back(
        runDope(Items, Threads, /*Monitored=*/true, /*Traced=*/true));
  }

  const double P = median(Pthreads);
  const double U = median(Unmonitored);
  const double M = median(Monitored);
  const double R = median(Traced);

  Table T({"variant", "median seconds", "vs pthreads"});
  T.addRow({"pthreads", Table::formatDouble(P, 4), "1.000"});
  T.addRow({"dope (unmonitored)", Table::formatDouble(U, 4),
            Table::formatDouble(U / P, 3)});
  T.addRow({"dope (full monitoring)", Table::formatDouble(M, 4),
            Table::formatDouble(M / P, 3)});
  T.addRow({"dope (monitoring + tracing)", Table::formatDouble(R, 4),
            Table::formatDouble(R / P, 3)});
  emitTable("Monitoring overhead, " + std::to_string(Items) + " items x " +
                std::to_string(WorkPerItem) + " mix-iterations",
            T, Csv);

  const double MonitoringOverhead = (M - U) / U;
  const double TracingOverhead = (R - M) / M;
  std::printf("\nmonitoring overhead vs unmonitored executive: %.2f%%\n",
              MonitoringOverhead * 100.0);
  std::printf("tracing overhead vs monitored executive: %.2f%%\n",
              TracingOverhead * 100.0);
  bool Ok = true;
  Ok &= checkShape(MonitoringOverhead < 0.02,
                   "per-instance monitoring costs under 2% (paper: < 1% on "
                   "dedicated hardware; batched exec windows measure "
                   "~0-1% here)");
  Ok &= checkShape(M / P < 1.15,
                   "the full executive tracks the raw Pthreads loop");
  Ok &= checkShape(TracingOverhead < 0.05,
                   "structured tracing adds < 5% over the monitored "
                   "executive");
  return Ok ? 0 : 1;
}

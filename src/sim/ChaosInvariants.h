//===- sim/ChaosInvariants.h - Lease protocol invariant checker -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline checker for the arbiter lease protocol, run over a
/// ColocationSimResult::ProtocolJournal after a chaos schedule. It
/// asserts the safety properties the hardened protocol promises no
/// matter which party misbehaved or died:
///
///  1. Budget: after every journaled lease record, the sum of threads
///     held across tenants never exceeds the platform budget.
///  2. Revoke-before-grant: within one decision batch (records sharing
///     a timestamp and a reason other than "join"), no grant precedes a
///     revocation — a host applying the batch in order must never
///     transiently overcommit.
///  3. No zombie leases: a tenant that has been silent for a full TTL
///     holds no threads once any post-deadline decision lands.
///
/// Plus the recovery metrics the chaos bench gates on: how fast an
/// interrupted run's allocation re-converges to the uninterrupted one,
/// and what fraction of fault-free attainment the well-behaved tenants
/// kept while a chaos schedule ran.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_CHAOSINVARIANTS_H
#define DOPE_SIM_CHAOSINVARIANTS_H

#include "sim/ColocationSim.h"
#include "support/Trace.h"

#include <string>
#include <vector>

namespace dope {

struct ChaosInvariantOptions {
  /// Platform thread budget leases must stay within.
  unsigned PlatformThreads = 24;

  /// Lease TTL used by the run; <= 0 disables the zombie-lease check.
  double LeaseTtlSeconds = 0.0;
};

/// One invariant violation, tied to the journal record that exposed it.
struct ChaosViolation {
  std::string Invariant; // "budget", "revoke-order", "zombie-lease"
  double Time = 0.0;
  size_t RecordIndex = 0;
  std::string Message;
};

struct ChaosInvariantReport {
  std::vector<ChaosViolation> Violations;
  uint64_t LeaseRecords = 0;
  uint64_t HeartbeatRecords = 0;
  bool ok() const { return Violations.empty(); }
};

/// Checks the protocol invariants over a host journal (time-ordered, as
/// ColocationSim emits it).
ChaosInvariantReport
checkChaosInvariants(const std::vector<TraceRecord> &Journal,
                     const ChaosInvariantOptions &Opts);

/// How an interrupted run's allocation re-converged to the baseline's.
struct RecoveryMetrics {
  /// Epoch rounds after the restart until the summed per-tenant
  /// allocation distance first drops within tolerance; -1 if never.
  int RoundsToRecover = -1;

  /// Seconds from the restart to that epoch; -1 if never recovered.
  double TimeToRecoverSeconds = -1.0;

  /// Allocation distance sum |granted_i - baseline_i| at the final
  /// compared epoch.
  unsigned FinalDistance = 0;

  bool recovered() const { return RoundsToRecover >= 0; }
};

/// Diffs the chaos run's AllocationTimeline against the uninterrupted
/// baseline's, starting at the first epoch at or after \p RestartSeconds;
/// recovery means summed per-tenant distance <= \p ToleranceThreads and
/// staying there for the remainder of both timelines.
RecoveryMetrics allocationRecovery(const ColocationSimResult &Baseline,
                                   const ColocationSimResult &Chaos,
                                   double RestartSeconds,
                                   unsigned ToleranceThreads);

/// Sum of weight * SLO attainment over the named tenants — the
/// containment floor compares this between a fault-free and a chaos run
/// for the tenants that behaved.
double weightedAttainmentOf(const ColocationSimResult &Result,
                            const std::vector<std::string> &Tenants);

/// Fraction of pre-fault attainment retained after the fault, as a
/// well-formed metric: a run can attain *more* after a fault than
/// before it (perturbed allocations sometimes favor the honest tenants,
/// and two different runs' windows are not directly comparable), so the
/// raw ratio is clamped to [0, 1] — "retained" never exceeds whole. A
/// non-positive pre-fault attainment yields 1.0 (nothing was attained,
/// so nothing was lost).
double attainmentRetained(double PreFaultAttainment,
                          double PostFaultAttainment);

} // namespace dope

#endif // DOPE_SIM_CHAOSINVARIANTS_H

//===- core/ThreadPool.h - Growable cached thread pool --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executive's thread pool. Reconfiguration respawns task loops every
/// epoch and inner regions respawn per outer-loop iteration, so threads
/// are cached and reused rather than created per job: the paper attributes
/// parallel inefficiency partly to "overheads such as thread creation".
///
/// The pool grows on demand and never rejects work — the executive bounds
/// concurrency through configuration validation (total threads <= N), and
/// a pool that could refuse work would deadlock nested regions.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_THREADPOOL_H
#define DOPE_CORE_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dope {

/// Growable cached thread pool with fire-and-forget submission.
class ThreadPool {
public:
  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Job. An idle cached worker picks it up; if none is idle a
  /// new worker thread is created.
  void submit(std::function<void()> Job);

  /// Number of worker threads ever created (monitoring/test hook).
  size_t threadsCreated() const;

  /// Number of currently idle workers (monitoring/test hook).
  size_t idleThreads() const;

private:
  void workerMain();

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<std::function<void()>> Jobs;
  std::vector<std::thread> Workers;
  size_t IdleCount = 0;
  bool ShuttingDown = false;
};

} // namespace dope

#endif // DOPE_CORE_THREADPOOL_H

// TS002 fixture: defaultless switch over TraceKind missing enumerators
// — here the lease-protocol kinds a pre-hardening dispatcher never
// heard of. Never compiled — scanned by dope_lint.

enum class TraceKind : unsigned char {
  FeatureSample,
  Decision,
  Reconfig,
  Fault,
  LeaseExpire,
  Heartbeat,
  ComplianceVerdict,
};

int replayDispatch(TraceKind K) {
  switch (K) {
  case TraceKind::FeatureSample:
    return 1;
  case TraceKind::Decision:
    return 2;
  case TraceKind::Reconfig:
    return 3;
  case TraceKind::Fault:
    return 4;
  }
  return 0;
}

int coveredDispatch(TraceKind K) {
  switch (K) {
  case TraceKind::FeatureSample:
    return 1;
  default:
    return 0;
  }
}

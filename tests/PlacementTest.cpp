//===- tests/PlacementTest.cpp - Topology and placement tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Placement.h"
#include "core/Topology.h"

#include "apps/PipelineApps.h"
#include "sim/PipelineSim.h"

#include <gtest/gtest.h>

#include <set>

using namespace dope;

namespace {

TEST(Topology, PaperPlatformShape) {
  // 4 sockets x 6 cores = the Xeon X7460 evaluation machine.
  Topology T;
  EXPECT_EQ(T.sockets(), 4u);
  EXPECT_EQ(T.coresPerSocket(), 6u);
  EXPECT_EQ(T.totalCores(), 24u);
}

TEST(Topology, SocketMapping) {
  Topology T(4, 6);
  EXPECT_EQ(T.socketOf(0), 0u);
  EXPECT_EQ(T.socketOf(5), 0u);
  EXPECT_EQ(T.socketOf(6), 1u);
  EXPECT_EQ(T.socketOf(23), 3u);
  EXPECT_TRUE(T.sameSocket(0, 5));
  EXPECT_FALSE(T.sameSocket(5, 6));
}

TEST(Topology, CommCostTiers) {
  Topology T(2, 4, 3.0);
  EXPECT_DOUBLE_EQ(T.commCost(1, 1), 0.0); // same core
  EXPECT_DOUBLE_EQ(T.commCost(0, 3), 1.0); // same socket
  EXPECT_DOUBLE_EQ(T.commCost(0, 4), 3.0); // cross socket
  EXPECT_DOUBLE_EQ(T.commCost(4, 0), 3.0); // symmetric
}

TEST(Placement, PartitionedGivesEverySocketASliceOfEveryStage) {
  Topology T(4, 6);
  const Placement P = placePartitioned(T, {4, 8, 8, 4});
  EXPECT_EQ(P.totalReplicas(), 24u);
  for (const auto &Stage : P.Cores) {
    std::set<unsigned> Sockets;
    for (unsigned Core : Stage)
      Sockets.insert(T.socketOf(Core));
    EXPECT_EQ(Sockets.size(), 4u);
  }
}

TEST(Placement, StripedSpreadsAcrossSockets) {
  Topology T(4, 6);
  const Placement P = placeStriped(T, {4, 4});
  for (const auto &Stage : P.Cores) {
    std::set<unsigned> Sockets;
    for (unsigned Core : Stage)
      Sockets.insert(T.socketOf(Core));
    EXPECT_EQ(Sockets.size(), 4u);
  }
}

TEST(Placement, ContiguousFillsCoresInOrder) {
  Topology T(4, 6);
  const Placement P = placeContiguous(T, {1, 6, 6, 5, 5, 1});
  EXPECT_EQ(P.totalReplicas(), 24u);
  EXPECT_EQ(P.Cores[0][0], 0u);
  EXPECT_EQ(P.Cores[1].front(), 1u);
  for (const auto &Stage : P.Cores)
    for (unsigned Core : Stage)
      EXPECT_LT(Core, T.totalCores());
}

TEST(Placement, OversizedExtentsWrap) {
  Topology T(2, 2);
  for (const Placement &P :
       {placePartitioned(T, {3, 3}), placeStriped(T, {3, 3}),
        placeContiguous(T, {3, 3})}) {
    EXPECT_EQ(P.totalReplicas(), 6u);
    for (const auto &Stage : P.Cores)
      for (unsigned Core : Stage)
        EXPECT_LT(Core, 4u);
  }
}

TEST(Placement, HandoffCostUniformRouting) {
  Topology T(2, 2, 5.0);
  Placement P;
  P.Cores = {{0}, {1}};
  EXPECT_DOUBLE_EQ(stageHandoffCost(T, P, 0), 1.0);
  P.Cores = {{0}, {2}};
  EXPECT_DOUBLE_EQ(stageHandoffCost(T, P, 0), 5.0);
  P.Cores = {{0}, {0, 2}}; // mean of 0 and 5
  EXPECT_DOUBLE_EQ(stageHandoffCost(T, P, 0), 2.5);
}

TEST(Placement, HandoffCostLocalityRouting) {
  Topology T(2, 2, 5.0);
  Placement P;
  // Producers and consumers evenly split over both sockets: locality
  // routing keeps everything on-socket.
  P.Cores = {{0, 2}, {1, 3}};
  EXPECT_DOUBLE_EQ(
      stageHandoffCost(T, P, 0, RoutingPolicy::LocalityPreferring), 1.0);
  // All production on socket 0, all consumption on socket 1: every item
  // must cross.
  P.Cores = {{0, 1}, {2, 3}};
  EXPECT_DOUBLE_EQ(
      stageHandoffCost(T, P, 0, RoutingPolicy::LocalityPreferring), 5.0);
  // Half the items can stay local, and the local half is cheap: the
  // producer on core 2 can hand off to the consumer on the same core
  // (cost 0) or its socket peer (cost 1), mean 0.5. Total:
  // 0.5 * 0.5 + 0.5 * 5 = 2.75.
  P.Cores = {{0, 2}, {2, 3}};
  EXPECT_DOUBLE_EQ(
      stageHandoffCost(T, P, 0, RoutingPolicy::LocalityPreferring), 2.75);
}

TEST(Placement, PartitionedLocalityBeatsObliviousStriping) {
  Topology T(4, 6, 3.0);
  const std::vector<unsigned> Extents = {1, 6, 6, 5, 5, 1};
  const double Local =
      meanCommCost(T, placePartitioned(T, Extents),
                   RoutingPolicy::LocalityPreferring);
  const double Oblivious =
      meanCommCost(T, placeStriped(T, Extents), RoutingPolicy::Uniform);
  EXPECT_LT(Local, Oblivious * 0.8);
}

TEST(Placement, SimThroughputPrefersLocalityAwarePlacement) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 3;
  Opts.NumItems = 600;
  Opts.CommSecondsPerHop = 0.3; // hand-offs matter
  Opts.Place = PlacementPolicy::LocalityAware;
  PipelineSim Local(App, Opts);
  const double LocalTput =
      Local.run(nullptr, {1, 2, 14, 2, 4, 1}).Throughput;

  Opts.Place = PlacementPolicy::Oblivious;
  PipelineSim Striped(App, Opts);
  const double StripedTput =
      Striped.run(nullptr, {1, 2, 14, 2, 4, 1}).Throughput;
  EXPECT_GT(LocalTput, StripedTput * 1.02);
}

TEST(Placement, NonePolicyAddsNoOverhead) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Base;
  Base.Contexts = 24;
  Base.Seed = 3;
  Base.NumItems = 400;
  PipelineSim NoComm(App, Base);
  const double Plain = NoComm.run(nullptr, {1, 6, 6, 5, 5, 1}).Throughput;

  PipelineSimOptions WithPolicy = Base;
  WithPolicy.Place = PlacementPolicy::LocalityAware;
  WithPolicy.CommSecondsPerHop = 0.0; // disabled by zero cost
  PipelineSim ZeroCost(App, WithPolicy);
  EXPECT_DOUBLE_EQ(ZeroCost.run(nullptr, {1, 6, 6, 5, 5, 1}).Throughput,
                   Plain);
}

} // namespace

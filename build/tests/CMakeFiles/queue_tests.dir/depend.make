# Empty dependencies file for queue_tests.
# This may be replaced when dependencies are built.

//===- bench/ext_goals.cpp - Extension experiments --------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiments beyond the paper's figures, exercising claims
/// the paper makes in prose:
///
///   1. Time-varying load (Sec. 8.2.1: "there are periods of heavier and
///      lighter load"): a step pattern alternates light and heavy
///      phases; the adaptive mechanisms must beat both statics, and the
///      measured average inner DoP must sit strictly between the two
///      static extremes ("an average DoP somewhere in between").
///
///   2. The energy-delay-product goal (Sec. 4: administrators "may
///      invent more complex performance goals such as minimizing the
///      energy-delay product"): the EDP mechanism picks large extents
///      for scalable inner loops, small ones for overhead-dominated
///      loops, and degrades toward throughput mode under pressure.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/NestApps.h"
#include "apps/PipelineApps.h"
#include "core/Placement.h"
#include "mechanisms/Edp.h"
#include "mechanisms/ServerNest.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"
#include "workload/Arrivals.h"

#include <cstdio>

using namespace dope;
using namespace dope::bench;

int main(int Argc, char **Argv) {
  OptionParser Options("Extension experiments: time-varying load and the "
                       "energy-delay-product goal");
  addCommonOptions(Options);
  parseOrExit(Options, Argc, Argv);
  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));

  bool Ok = true;

  // --- 1: step-pattern load ----------------------------------------------
  {
    NestAppBundle App = makeX264App();
    NestSimOptions SimOpts;
    SimOpts.Contexts = Contexts;
    SimOpts.NumTransactions = Quick ? 400 : 1000;
    SimOpts.Seed = Seed;
    // Light 0.25 / heavy 0.95 phases, each long enough for several
    // transactions at the heavy rate.
    const double Phase = 40.0 * App.Model.SeqServiceSeconds / Contexts *
                         10.0; // ~10 heavy transactions per phase
    SimOpts.Trace = LoadTrace::makeStepPattern(0.25, 0.95, Phase, 50);

    NestServerSim Sim(App.Model, SimOpts);
    const double StaticSeq =
        Sim.run(nullptr, Contexts, 1).Stats.meanResponseTime();
    const double StaticPar =
        Sim.run(nullptr, outerExtentFor(Contexts, App.MMax), App.MMax)
            .Stats.meanResponseTime();
    WqtHMechanism WqtH(App.WqtH);
    NestSimResult HResult = Sim.run(&WqtH, Contexts, 1);
    WqLinearMechanism WqLin(App.WqLinear);
    NestSimResult LResult = Sim.run(&WqLin, Contexts, 1);

    // Average inner DoP across the run, from the decision trace.
    double DopSum = 0.0;
    for (size_t I = 0; I != LResult.InnerExtentTrace.size(); ++I)
      DopSum += LResult.InnerExtentTrace.point(I).Value;
    const double MeanDop =
        LResult.InnerExtentTrace.empty()
            ? 0.0
            : DopSum / static_cast<double>(LResult.InnerExtentTrace.size());

    Table T({"scheme", "mean response (s)"});
    T.addRow({"Static-Seq <24,1>", Table::formatDouble(StaticSeq, 2)});
    T.addRow({"Static-Par <3,8>", Table::formatDouble(StaticPar, 2)});
    T.addRow({"WQT-H", Table::formatDouble(
                           HResult.Stats.meanResponseTime(), 2)});
    T.addRow({"WQ-Linear",
              Table::formatDouble(LResult.Stats.meanResponseTime(), 2)});
    emitTable("Ext 1: x264 under a light/heavy step load (0.25 / 0.95)", T,
              Csv);
    std::printf("WQ-Linear mean inner DoP across the run: %.2f\n\n",
                MeanDop);

    const double BestStatic = std::min(StaticSeq, StaticPar);
    Ok &= checkShape(LResult.Stats.meanResponseTime() < BestStatic,
                     "WQ-Linear beats both statics under swinging load");
    Ok &= checkShape(HResult.Stats.meanResponseTime() < BestStatic * 1.1,
                     "WQT-H at least matches the best static under "
                     "swinging load");
    Ok &= checkShape(MeanDop > 1.3 &&
                         MeanDop < static_cast<double>(App.MMax) - 0.3,
                     "the average DoP sits strictly between the static "
                     "extremes (measured " +
                         Table::formatDouble(MeanDop, 2) + ")");
  }

  // --- 2: the EDP goal ------------------------------------------------------
  {
    Table T({"curve", "demand 0.1", "demand 0.5", "demand 0.9"});
    // Scalable Monte Carlo-ish loop vs. overhead-heavy compression loop.
    EdpMechanism Scalable({makeSwaptionsApp().Model.Curve, 8, 1.15, 0});
    EdpMechanism Overheady({makeBzipApp().Model.Curve, 8, 1.15, 0});
    auto Row = [&](const std::string &Name, EdpMechanism &M) {
      T.addRow({Name, Table::formatInt(M.extentForDemand(0.1, 24)),
                Table::formatInt(M.extentForDemand(0.5, 24)),
                Table::formatInt(M.extentForDemand(0.9, 24))});
    };
    Row("swaptions (near-linear)", Scalable);
    Row("bzip (fixed-cost)", Overheady);
    emitTable("Ext 2: EDP-optimal inner extent vs demand", T, Csv);

    Ok &= checkShape(Scalable.extentForDemand(0.1, 24) >
                         Overheady.extentForDemand(0.1, 24),
                     "scalable loops run wider under the EDP goal");
    Ok &= checkShape(Scalable.extentForDemand(0.95, 24) == 1,
                     "under saturation the EDP goal degrades to "
                     "throughput mode");

    // End to end: the EDP mechanism must keep the system stable (no
    // response blow-up) while saving energy-delay at light load.
    NestAppBundle App = makeSwaptionsApp();
    NestSimOptions SimOpts;
    SimOpts.Contexts = Contexts;
    SimOpts.LoadFactor = 0.3;
    SimOpts.NumTransactions = Quick ? 300 : 800;
    SimOpts.Seed = Seed;
    NestServerSim Sim(App.Model, SimOpts);
    EdpMechanism Edp({App.Model.Curve, 8, 1.15, 0});
    NestSimResult R = Sim.run(&Edp, Contexts, 1);
    const double StaticSeq =
        Sim.run(nullptr, Contexts, 1).Stats.meanResponseTime();
    Ok &= checkShape(R.Stats.meanResponseTime() < StaticSeq,
                     "EDP improves delay over sequential transactions at "
                     "light load");
  }

  // --- 3: placement locality ("on which hardware thread should each
  // stage be placed to maximize locality of communication", Sec. 1) ----
  {
    PipelineAppModel Ferret = makeFerretApp();
    PipelineSimOptions PipeOpts;
    PipeOpts.Contexts = Contexts;
    PipeOpts.Seed = Seed;
    PipeOpts.NumItems = Quick ? 600 : 1500;
    PipeOpts.CommSecondsPerHop = 0.25;

    Table T({"placement", "per-item comm cost", "throughput (q/s)"});
    const std::vector<unsigned> Extents = {1, 2, 14, 2, 4, 1};
    const Topology Topo; // the paper's 4 x 6 platform

    const double LocalCost =
        meanCommCost(Topo, placePartitioned(Topo, Extents),
                     RoutingPolicy::LocalityPreferring);
    const double ObliviousCost =
        meanCommCost(Topo, placeStriped(Topo, Extents),
                     RoutingPolicy::Uniform);

    PipeOpts.Place = PlacementPolicy::LocalityAware;
    PipelineSim LocalSim(Ferret, PipeOpts);
    const double LocalTput = LocalSim.run(nullptr, Extents).Throughput;
    PipeOpts.Place = PlacementPolicy::Oblivious;
    PipelineSim ObliviousSim(Ferret, PipeOpts);
    const double ObliviousTput =
        ObliviousSim.run(nullptr, Extents).Throughput;

    T.addRow({"locality-aware (partitioned)",
              Table::formatDouble(LocalCost, 2),
              Table::formatDouble(LocalTput, 3)});
    T.addRow({"oblivious (striped)", Table::formatDouble(ObliviousCost, 2),
              Table::formatDouble(ObliviousTput, 3)});
    emitTable("Ext 3: stage placement on the 4x6-socket platform "
              "(ferret, comm 0.25 s/hop)",
              T, Csv);

    Ok &= checkShape(LocalCost < ObliviousCost * 0.8,
                     "partitioned placement cuts per-item communication "
                     "cost");
    Ok &= checkShape(LocalTput > ObliviousTput,
                     "locality-aware placement yields higher throughput");
  }

  return Ok ? 0 : 1;
}

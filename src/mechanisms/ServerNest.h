//===- mechanisms/ServerNest.h - Two-level server nest helpers -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the canonical server-style loop nest of Sec. 2 of the
/// paper: an outer loop over user transactions (DOALL across requests)
/// whose single task optionally exploits inner parallelism (a pipeline or
/// DOALL over the items of one transaction):
///
///   <DoP_outer, DoP_inner> with DoP_outer * DoP_inner <= N.
///
/// The response-time mechanisms (WQT-H, WQ-Linear) and the benchmark
/// harnesses all speak in terms of a scalar inner extent M; these helpers
/// translate that scalar into a full RegionConfig for the descriptor tree
/// and back.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_SERVERNEST_H
#define DOPE_MECHANISMS_SERVERNEST_H

#include "core/Config.h"
#include "core/Task.h"

namespace dope {

/// True when \p Root has the server-nest shape: exactly one task, which
/// carries at least one inner alternative.
bool isServerNest(const ParDescriptor &Root);

/// Builds the configuration <(OuterExtent, DOALL), (InnerExtent, ...)> for
/// a server nest.
///
/// When InnerExtent <= 1 the inner alternative is disabled (sequential
/// transactions). Otherwise alternative \p AltIndex is activated and the
/// inner extent is distributed within it: sequential tasks get one thread
/// each and parallel tasks evenly split the remainder (at least one each).
/// The inner region's total extent equals max(InnerExtent, #inner tasks).
RegionConfig makeServerConfig(const ParDescriptor &Root, unsigned OuterExtent,
                              unsigned InnerExtent, int AltIndex = 0);

/// Extracts the scalar inner extent of a server-nest configuration: the
/// sum of inner extents when an alternative is active, 1 otherwise.
unsigned serverInnerExtent(const RegionConfig &Config);

/// Extracts the outer extent.
unsigned serverOuterExtent(const RegionConfig &Config);

/// Computes the outer extent that fills \p MaxThreads given an inner
/// extent M: floor(N / M), at least 1.
unsigned outerExtentFor(unsigned MaxThreads, unsigned InnerExtent);

} // namespace dope

#endif // DOPE_MECHANISMS_SERVERNEST_H

//===- support/Json.cpp - Minimal JSON value -------------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dope;

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[K, V] : Members)
    if (K == Key)
      return &V;
  return nullptr;
}

void JsonValue::set(std::string Key, JsonValue V) {
  TheKind = Kind::Object;
  for (auto &[K, Existing] : Members)
    if (K == Key) {
      Existing = std::move(V);
      return;
    }
  Members.emplace_back(std::move(Key), std::move(V));
}

double JsonValue::getNumber(std::string_view Key, double Fallback) const {
  const JsonValue *V = get(Key);
  return V && V->isNumber() ? V->NumberValue : Fallback;
}

std::string JsonValue::getString(std::string_view Key,
                                 const std::string &Fallback) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? V->StringValue : Fallback;
}

bool JsonValue::getBool(std::string_view Key, bool Fallback) const {
  const JsonValue *V = get(Key);
  return V && V->isBool() ? V->BoolValue : Fallback;
}

std::string JsonValue::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  escapeTo(Out, S);
  return Out;
}

void JsonValue::escapeTo(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void JsonValue::appendNumber(std::string &Out, double D) {
  if (std::isfinite(D) && D == std::floor(D) && std::abs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void JsonValue::dumpTo(std::string &Out) const {
  switch (TheKind) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolValue ? "true" : "false";
    break;
  case Kind::Number:
    appendNumber(Out, NumberValue);
    break;
  case Kind::String:
    Out += '"';
    Out += escape(StringValue);
    Out += '"';
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &V : Elements) {
      if (!First)
        Out += ',';
      First = false;
      V.dumpTo(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[K, V] : Members) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += escape(K);
      Out += "\":";
      V.dumpTo(Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump() const {
  std::string Out;
  dumpTo(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool parseValue(JsonValue &Out);

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("dangling escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        const std::string Hex(Text.substr(Pos, 4));
        Pos += 4;
        const long Code = std::strtol(Hex.c_str(), nullptr, 16);
        // Basic-plane code points only; enough for our own files.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }
};

bool Parser::parseValue(JsonValue &Out) {
  skipSpace();
  if (Pos >= Text.size())
    return fail("unexpected end of input");
  const char C = Text[Pos];
  if (C == '{') {
    ++Pos;
    Out = JsonValue::makeObject();
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipSpace();
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      Out.set(std::move(Key), std::move(Member));
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }
  if (C == '[') {
    ++Pos;
    Out = JsonValue::makeArray();
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue Element;
      if (!parseValue(Element))
        return false;
      Out.push(std::move(Element));
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }
  if (C == '"') {
    std::string S;
    if (!parseString(S))
      return false;
    Out = JsonValue(std::move(S));
    return true;
  }
  if (Text.compare(Pos, 4, "true") == 0) {
    Pos += 4;
    Out = JsonValue(true);
    return true;
  }
  if (Text.compare(Pos, 5, "false") == 0) {
    Pos += 5;
    Out = JsonValue(false);
    return true;
  }
  if (Text.compare(Pos, 4, "null") == 0) {
    Pos += 4;
    Out = JsonValue();
    return true;
  }
  // Number.
  const char *Begin = Text.data() + Pos;
  char *End = nullptr;
  const double D = std::strtod(Begin, &End);
  if (End == Begin)
    return fail("invalid value");
  Pos += static_cast<size_t>(End - Begin);
  Out = JsonValue(D);
  return true;
}

} // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view Text,
                                          std::string *Error) {
  Parser P;
  P.Text = Text;
  JsonValue V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipSpace();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = "trailing characters at offset " + std::to_string(P.Pos);
    return std::nullopt;
  }
  return V;
}

# Empty dependencies file for dope_metrics.
# This may be replaced when dependencies are built.

//===- analysis/CriticalPath.cpp - Work/span/wait attribution --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/CriticalPath.h"

#include <algorithm>
#include <map>

using namespace dope;

CriticalPathProfile dope::computeCriticalPath(const TaskDag &Dag) {
  CriticalPathProfile Profile;
  const std::vector<TaskInstance> &Instances = Dag.instances();
  if (Instances.empty())
    return Profile;

  std::map<std::string, StageProfile> ByTask;
  std::map<std::string, double> FirstBegin, LastEnd;
  // (time, +1/-1) per task for the concurrency sweep; at equal times the
  // -1 sorts first so a back-to-back handoff does not read as overlap.
  std::map<std::string, std::vector<std::pair<double, int>>> ConcEvents;

  double MinBegin = Instances.front().BeginTime;
  double MaxEnd = MinBegin;
  // Path length up to and including each instance; parents precede
  // children in canonical order, so one forward pass suffices.
  std::vector<double> PathSeconds(Instances.size(), 0.0);
  size_t SpanTail = TaskInstance::npos;

  for (size_t I = 0; I != Instances.size(); ++I) {
    const TaskInstance &Inst = Instances[I];
    StageProfile &SP = ByTask[Inst.Task];
    SP.Task = Inst.Task;

    MinBegin = std::min(MinBegin, Inst.BeginTime);
    auto FB = FirstBegin.find(Inst.Task);
    if (FB == FirstBegin.end())
      FirstBegin[Inst.Task] = Inst.BeginTime;
    else
      FB->second = std::min(FB->second, Inst.BeginTime);

    double Wait = 0.0;
    if (Inst.Parent != TaskInstance::npos) {
      const TaskInstance &Parent = Instances[Inst.Parent];
      if (Parent.completed())
        Wait = std::max(0.0, Inst.BeginTime - Parent.EndTime);
    }

    ConcEvents[Inst.Task].emplace_back(Inst.BeginTime, +1);
    if (Inst.completed())
      ConcEvents[Inst.Task].emplace_back(Inst.EndTime, -1);

    if (!Inst.completed()) {
      // Open instance: no work, no span contribution, but the wait it
      // already accumulated is real attribution.
      SP.WaitSeconds += Wait;
      continue;
    }

    MaxEnd = std::max(MaxEnd, Inst.EndTime);
    auto LE = LastEnd.find(Inst.Task);
    if (LE == LastEnd.end())
      LastEnd[Inst.Task] = Inst.EndTime;
    else
      LE->second = std::max(LE->second, Inst.EndTime);

    ++SP.Instances;
    SP.WorkSeconds += Inst.Elapsed;
    SP.WaitSeconds += Wait;
    Profile.TotalWorkSeconds += Inst.Elapsed;

    const double ParentPath = Inst.Parent != TaskInstance::npos
                                  ? PathSeconds[Inst.Parent]
                                  : 0.0;
    PathSeconds[I] = ParentPath + Wait + Inst.Elapsed;
    if (PathSeconds[I] > Profile.SpanSeconds ||
        SpanTail == TaskInstance::npos) {
      Profile.SpanSeconds = PathSeconds[I];
      SpanTail = I;
    }
  }

  Profile.WallSeconds = std::max(0.0, MaxEnd - MinBegin);
  if (Profile.WallSeconds > 0.0)
    Profile.AchievedParallelism =
        Profile.TotalWorkSeconds / Profile.WallSeconds;
  if (Profile.SpanSeconds > 0.0)
    Profile.InherentParallelism =
        Profile.TotalWorkSeconds / Profile.SpanSeconds;

  // Walk the winning chain back to its root.
  for (size_t I = SpanTail; I != TaskInstance::npos;
       I = Instances[I].Parent)
    Profile.CriticalTasks.push_back(Instances[I].Task);
  std::reverse(Profile.CriticalTasks.begin(), Profile.CriticalTasks.end());

  for (const std::string &Name : Dag.taskNames()) {
    StageProfile SP = ByTask[Name];
    if (SP.Instances > 0)
      SP.MeanExecSeconds = SP.WorkSeconds / static_cast<double>(SP.Instances);
    auto FB = FirstBegin.find(Name);
    auto LE = LastEnd.find(Name);
    if (FB != FirstBegin.end() && LE != LastEnd.end())
      SP.WindowSeconds = std::max(0.0, LE->second - FB->second);
    if (SP.WindowSeconds > 0.0)
      SP.AchievedParallelism = SP.WorkSeconds / SP.WindowSeconds;
    std::vector<std::pair<double, int>> &Events = ConcEvents[Name];
    std::sort(Events.begin(), Events.end());
    int Open = 0, Peak = 0;
    for (const auto &[Time, Delta] : Events) {
      (void)Time;
      Open += Delta;
      Peak = std::max(Peak, Open);
    }
    SP.MaxConcurrent = static_cast<unsigned>(Peak);
    Profile.Stages.push_back(std::move(SP));
  }
  return Profile;
}

//===- core/Replay.cpp - Deterministic mechanism replay --------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Replay.h"

#include "support/Json.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

using namespace dope;

//===----------------------------------------------------------------------===//
// Stream serialization
//===----------------------------------------------------------------------===//

static const char *graphKindName(FeatureStream::GraphKind Kind) {
  switch (Kind) {
  case FeatureStream::GraphKind::Pipeline:
    return "pipeline";
  case FeatureStream::GraphKind::ServerNest:
    return "server-nest";
  case FeatureStream::GraphKind::TaskTree:
    return "task-tree";
  }
  return "pipeline";
}

static JsonValue stagesToJson(const std::vector<ReplayStageSpec> &Stages) {
  JsonValue A = JsonValue::makeArray();
  for (const ReplayStageSpec &S : Stages) {
    JsonValue O = JsonValue::makeObject();
    O.set("name", JsonValue(S.Name));
    O.set("parallel", JsonValue(S.Parallel));
    A.push(std::move(O));
  }
  return A;
}

static JsonValue doublesToJson(const std::vector<double> &Values) {
  JsonValue A = JsonValue::makeArray();
  for (double V : Values)
    A.push(JsonValue(V));
  return A;
}

static std::vector<double> jsonToDoubles(const JsonValue *A) {
  std::vector<double> Out;
  if (A && A->isArray())
    for (size_t I = 0; I != A->size(); ++I)
      Out.push_back(A->at(I).asDouble());
  return Out;
}

void dope::writeFeatureStream(const FeatureStream &Stream, std::ostream &OS) {
  JsonValue Header = JsonValue::makeObject();
  Header.set("stream", JsonValue(Stream.Name));
  Header.set("kind", JsonValue(graphKindName(Stream.Kind)));
  Header.set("maxThreads", JsonValue(static_cast<double>(Stream.MaxThreads)));
  if (Stream.PowerBudgetWatts > 0.0)
    Header.set("powerBudget", JsonValue(Stream.PowerBudgetWatts));
  if (Stream.Kind == FeatureStream::GraphKind::TaskTree)
    Header.set("defaultGrain",
               JsonValue(static_cast<double>(Stream.DefaultGrain)));
  Header.set("stages", stagesToJson(Stream.Stages));
  if (!Stream.FusedStages.empty())
    Header.set("fusedStages", stagesToJson(Stream.FusedStages));
  OS << Header.dump() << '\n';

  for (const ReplayStep &Step : Stream.Steps) {
    JsonValue O = JsonValue::makeObject();
    O.set("t", JsonValue(Step.Time));
    if (Step.ThreadEnvelope != 0)
      O.set("envelope",
            JsonValue(static_cast<double>(Step.ThreadEnvelope)));
    if (!Step.Features.empty()) {
      JsonValue F = JsonValue::makeObject();
      for (const auto &[Name, Value] : Step.Features)
        F.set(Name, JsonValue(Value));
      O.set("features", std::move(F));
    }
    if (!Step.ExecTime.empty())
      O.set("exec", doublesToJson(Step.ExecTime));
    if (!Step.Load.empty())
      O.set("load", doublesToJson(Step.Load));
    if (!Step.FusedExecTime.empty())
      O.set("fusedExec", doublesToJson(Step.FusedExecTime));
    if (!Step.FusedLoad.empty())
      O.set("fusedLoad", doublesToJson(Step.FusedLoad));
    OS << O.dump() << '\n';
  }
}

/// True when no non-empty line remains in \p IS — a parse failure on the
/// previous line was the file's torn tail, not interior corruption.
static bool atTornTail(std::istream &IS) {
  std::string Rest;
  while (std::getline(IS, Rest))
    if (!Rest.empty())
      return false;
  return true;
}

static bool parseStages(const JsonValue *A,
                        std::vector<ReplayStageSpec> &Out) {
  if (!A)
    return true;
  if (!A->isArray())
    return false;
  for (size_t I = 0; I != A->size(); ++I) {
    const JsonValue &S = A->at(I);
    if (!S.isObject())
      return false;
    ReplayStageSpec Spec;
    Spec.Name = S.getString("name");
    Spec.Parallel = S.getBool("parallel", true);
    Out.push_back(std::move(Spec));
  }
  return true;
}

std::optional<FeatureStream> dope::readFeatureStream(std::istream &IS,
                                                     std::string *Error,
                                                     bool *TornTail) {
  auto Fail = [&](const std::string &Message) -> std::optional<FeatureStream> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };
  if (TornTail)
    *TornTail = false;

  FeatureStream Stream;
  std::string Line;
  size_t LineNo = 0;
  bool SawHeader = false;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string ParseError;
    std::optional<JsonValue> V = JsonValue::parse(Line, &ParseError);
    if (!V || !V->isObject()) {
      // A crash mid-write leaves a truncated last record; keep the
      // intact prefix rather than failing the whole stream. The header
      // must still parse — a torn header is an empty stream.
      if (SawHeader && atTornTail(IS)) {
        if (TornTail)
          *TornTail = true;
        break;
      }
      return Fail("line " + std::to_string(LineNo) + ": " +
                  (ParseError.empty() ? "not an object" : ParseError));
    }

    if (!SawHeader) {
      SawHeader = true;
      Stream.Name = V->getString("stream");
      const std::string Kind = V->getString("kind", "pipeline");
      if (Kind == "pipeline")
        Stream.Kind = FeatureStream::GraphKind::Pipeline;
      else if (Kind == "server-nest")
        Stream.Kind = FeatureStream::GraphKind::ServerNest;
      else if (Kind == "task-tree")
        Stream.Kind = FeatureStream::GraphKind::TaskTree;
      else
        return Fail("line " + std::to_string(LineNo) + ": unknown kind '" +
                    Kind + "'");
      Stream.MaxThreads = static_cast<unsigned>(V->getNumber("maxThreads", 8));
      Stream.DefaultGrain =
          static_cast<unsigned>(V->getNumber("defaultGrain", 64));
      Stream.PowerBudgetWatts = V->getNumber("powerBudget", 0.0);
      if (!parseStages(V->get("stages"), Stream.Stages) ||
          !parseStages(V->get("fusedStages"), Stream.FusedStages))
        return Fail("line " + std::to_string(LineNo) + ": malformed stages");
      if (Stream.Stages.empty())
        return Fail("line " + std::to_string(LineNo) + ": stream needs stages");
      continue;
    }

    ReplayStep Step;
    Step.Time = V->getNumber("t");
    Step.ThreadEnvelope =
        static_cast<unsigned>(V->getNumber("envelope", 0.0));
    if (const JsonValue *F = V->get("features")) {
      if (!F->isObject())
        return Fail("line " + std::to_string(LineNo) + ": malformed features");
      // JsonValue objects preserve order, so re-reading keeps the stable
      // feature order the writer chose.
      for (const auto &[Key, Value] : F->members())
        Step.Features.emplace_back(Key, Value.asDouble());
    }
    Step.ExecTime = jsonToDoubles(V->get("exec"));
    Step.Load = jsonToDoubles(V->get("load"));
    Step.FusedExecTime = jsonToDoubles(V->get("fusedExec"));
    Step.FusedLoad = jsonToDoubles(V->get("fusedLoad"));
    Stream.Steps.push_back(std::move(Step));
  }
  if (!SawHeader)
    return Fail("empty stream file");
  return Stream;
}

//===----------------------------------------------------------------------===//
// Decision serialization + diff
//===----------------------------------------------------------------------===//

void dope::writeDecisions(const std::vector<ReplayDecision> &Decisions,
                          std::ostream &OS) {
  for (const ReplayDecision &D : Decisions) {
    JsonValue O = JsonValue::makeObject();
    O.set("step", JsonValue(D.Step));
    O.set("t", JsonValue(D.Time));
    O.set("config", JsonValue(D.Config));
    O.set("threads", JsonValue(static_cast<double>(D.TotalThreads)));
    O.set("budget", JsonValue(static_cast<double>(D.Budget)));
    JsonValue Extents = JsonValue::makeArray();
    for (unsigned E : D.Extents)
      Extents.push(JsonValue(static_cast<double>(E)));
    O.set("extents", std::move(Extents));
    OS << O.dump() << '\n';
  }
}

std::optional<std::vector<ReplayDecision>>
dope::readDecisions(std::istream &IS, std::string *Error, bool *TornTail) {
  if (TornTail)
    *TornTail = false;
  std::vector<ReplayDecision> Out;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string ParseError;
    std::optional<JsonValue> V = JsonValue::parse(Line, &ParseError);
    if (!V || !V->isObject()) {
      if (atTornTail(IS)) {
        if (TornTail)
          *TornTail = true;
        break;
      }
      if (Error)
        *Error = "line " + std::to_string(LineNo) + ": " +
                 (ParseError.empty() ? "not an object" : ParseError);
      return std::nullopt;
    }
    ReplayDecision D;
    D.Step = static_cast<uint64_t>(V->getNumber("step"));
    D.Time = V->getNumber("t");
    D.Config = V->getString("config");
    D.TotalThreads = static_cast<unsigned>(V->getNumber("threads"));
    D.Budget = static_cast<unsigned>(V->getNumber("budget"));
    if (const JsonValue *Extents = V->get("extents"); Extents &&
                                                      Extents->isArray())
      for (size_t I = 0; I != Extents->size(); ++I)
        D.Extents.push_back(static_cast<unsigned>(Extents->at(I).asDouble()));
    Out.push_back(std::move(D));
  }
  return Out;
}

static std::string renderDecision(const ReplayDecision &D) {
  std::ostringstream OS;
  OS << "step " << D.Step << " t=" << D.Time << " threads=" << D.TotalThreads
     << " budget=" << D.Budget << " config=" << D.Config;
  return OS.str();
}

std::optional<std::string>
dope::diffDecisions(const std::vector<ReplayDecision> &Expected,
                    const std::vector<ReplayDecision> &Actual) {
  const size_t Common = std::min(Expected.size(), Actual.size());
  for (size_t I = 0; I != Common; ++I) {
    if (Expected[I] == Actual[I])
      continue;
    std::ostringstream OS;
    OS << "decision sequences diverge at decision " << I << ":\n"
       << "  expected: " << renderDecision(Expected[I]) << "\n"
       << "  actual:   " << renderDecision(Actual[I]);
    return OS.str();
  }
  if (Expected.size() != Actual.size()) {
    std::ostringstream OS;
    OS << "decision sequences diverge at decision " << Common << ":\n";
    if (Expected.size() > Actual.size())
      OS << "  expected: " << renderDecision(Expected[Common]) << "\n"
         << "  actual:   <end of sequence — " << Actual.size()
         << " decision(s)>";
    else
      OS << "  expected: <end of sequence — " << Expected.size()
         << " decision(s)>\n"
         << "  actual:   " << renderDecision(Actual[Common]);
    return OS.str();
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

std::vector<unsigned> dope::flattenExtents(const RegionConfig &Config) {
  std::vector<unsigned> Out;
  std::function<void(const std::vector<TaskConfig> &)> Walk =
      [&](const std::vector<TaskConfig> &Tasks) {
        for (const TaskConfig &TC : Tasks) {
          Out.push_back(TC.Extent);
          Walk(TC.Inner);
        }
      };
  Walk(Config.Tasks);
  return Out;
}

static TaskFn replayDummyFn() {
  return [](TaskRuntime &) { return TaskStatus::Finished; };
}

ReplayMechanismHarness::ReplayMechanismHarness(FeatureStream TheStream)
    : Stream(std::move(TheStream)), Graph(std::make_unique<TaskGraph>()) {
  assert(!Stream.Stages.empty() && "stream needs at least one stage");
  if (Stream.Kind == FeatureStream::GraphKind::TaskTree) {
    // Tree-marked single-task region: defaultConfig seeds the grain, so
    // grain-adaptation decisions replay exactly like extent decisions.
    TreeTask = Graph->createTask(Stream.Stages.front().Name.empty()
                                     ? "tree"
                                     : Stream.Stages.front().Name,
                                 replayDummyFn(), LoadFn(),
                                 Graph->parDescriptor());
    Root = Graph->createTreeRegion(
        TreeTask, Stream.DefaultGrain == 0 ? 64 : Stream.DefaultGrain);
    return;
  }
  if (Stream.Kind == FeatureStream::GraphKind::ServerNest) {
    // root{ outer(PAR, alt0 = { work(PAR) }) } — same shape the nest
    // simulator and the WQT mechanisms assume.
    InnerWork = Graph->createTask("work", replayDummyFn(), LoadFn(),
                                  Graph->parDescriptor());
    ParDescriptor *Inner = Graph->createRegion({InnerWork});
    Outer = Graph->createTask(
        Stream.Stages.front().Name.empty() ? "outer"
                                           : Stream.Stages.front().Name,
        replayDummyFn(), LoadFn(),
        Graph->createDescriptor(TaskKind::Parallel, {Inner}));
    Root = Graph->createRegion({Outer});
    return;
  }

  // Driver-wrapped pipeline: root{ driver(SEQ, alt0 = Stages,
  // alt1 = FusedStages) }.
  auto MakeRegion = [&](const std::vector<ReplayStageSpec> &Specs,
                        std::vector<Task *> &Out) {
    for (const ReplayStageSpec &Spec : Specs)
      Out.push_back(Graph->createTask(Spec.Name, replayDummyFn(), LoadFn(),
                                      Spec.Parallel ? Graph->parDescriptor()
                                                    : Graph->seqDescriptor()));
    return Graph->createRegion(Out);
  };
  std::vector<ParDescriptor *> Alts;
  Alts.push_back(MakeRegion(Stream.Stages, StageTasks));
  if (!Stream.FusedStages.empty())
    Alts.push_back(MakeRegion(Stream.FusedStages, FusedTasks));
  Driver = Graph->createTask("driver", replayDummyFn(), LoadFn(),
                             Graph->createDescriptor(TaskKind::Sequential,
                                                     Alts));
  Root = Graph->createRegion({Driver});
}

ReplayMechanismHarness::~ReplayMechanismHarness() = default;

namespace {

/// Per-step measurements looked up by task id while building snapshots.
struct StepMetrics {
  double ExecTime = 0.0;
  double Load = 0.0;
};

} // namespace

RegionSnapshot
ReplayMechanismHarness::buildSnapshot(const ReplayStep &Step,
                                      const RegionConfig &Current,
                                      uint64_t Invocations) const {
  // Index the step's measurements by task.
  std::map<unsigned, StepMetrics> ById;
  auto Fill = [&](const std::vector<Task *> &Tasks,
                  const std::vector<double> &Exec,
                  const std::vector<double> &Load) {
    for (size_t I = 0; I != Tasks.size(); ++I) {
      StepMetrics M;
      M.ExecTime = I < Exec.size() ? Exec[I] : 0.0;
      M.Load = I < Load.size() ? Load[I] : 0.0;
      ById[Tasks[I]->id()] = M;
    }
  };
  if (Stream.Kind == FeatureStream::GraphKind::TaskTree) {
    Fill({TreeTask}, Step.ExecTime, Step.Load);
  } else if (Stream.Kind == FeatureStream::GraphKind::ServerNest) {
    Fill({Outer, InnerWork}, Step.ExecTime, Step.Load);
  } else {
    Fill(StageTasks, Step.ExecTime, Step.Load);
    Fill(FusedTasks, Step.FusedExecTime, Step.FusedLoad);
  }

  // Mirror Dope::snapshotRegion: structure for every alternative, extents
  // only where the configuration is active, metrics wherever measured.
  std::function<RegionSnapshot(const ParDescriptor &,
                               const std::vector<TaskConfig> *)>
      Build = [&](const ParDescriptor &Region,
                  const std::vector<TaskConfig> *Active) {
        RegionSnapshot Snap;
        for (size_t I = 0; I != Region.size(); ++I) {
          const Task *T = Region.tasks()[I];
          const TaskConfig *Config =
              Active && I < Active->size() ? &(*Active)[I] : nullptr;

          TaskSnapshot TS;
          TS.TaskId = T->id();
          TS.Name = T->name();
          TS.Kind = T->kind();
          if (auto It = ById.find(T->id()); It != ById.end()) {
            TS.ExecTime = It->second.ExecTime;
            TS.Load = It->second.Load;
            TS.LastLoad = It->second.Load;
            // A stage with no execution-time measurement has not run;
            // zero invocations gates mechanisms that require a fully
            // measured region (PipelineView::fullyMeasured).
            TS.Invocations = TS.ExecTime > 0.0 ? Invocations : 0;
          }
          TS.CurrentExtent = Config ? Config->Extent : 0;
          TS.ActiveAlt = Config ? Config->AltIndex : -1;
          if (TS.ExecTime > 0.0)
            TS.Throughput =
                static_cast<double>(TS.CurrentExtent) / TS.ExecTime;

          const auto &Alts = T->descriptor()->alternatives();
          for (size_t A = 0; A != Alts.size(); ++A) {
            const std::vector<TaskConfig> *InnerActive = nullptr;
            if (Config && Config->AltIndex == static_cast<int>(A))
              InnerActive = &Config->Inner;
            TS.InnerAlternatives.push_back(Build(*Alts[A], InnerActive));
          }
          Snap.Tasks.push_back(std::move(TS));
        }
        return Snap;
      };
  return Build(*Root, &Current.Tasks);
}

ReplayResult ReplayMechanismHarness::run(Mechanism &M, Tracer *Trace) {
  M.reset();
  Registry.setTracer(Trace);

  RegionConfig Current = defaultConfig(*Root);
  ReplayResult Result;
  std::set<std::string> Registered;
  unsigned Envelope = Stream.MaxThreads;

  for (size_t I = 0; I != Stream.Steps.size(); ++I) {
    const ReplayStep &Step = Stream.Steps[I];
    if (Step.ThreadEnvelope != 0)
      Envelope = std::clamp(Step.ThreadEnvelope, 1u, Stream.MaxThreads);

    CurrentFeatures.clear();
    for (const auto &[Name, Value] : Step.Features)
      CurrentFeatures[Name] = Value;
    if (Hook_)
      Hook_(I, Current, CurrentFeatures);

    // The registry mirrors exactly this step's features: a feature absent
    // from the step is unregistered so mechanisms observe their declared
    // fallbacks, just as they would against a platform that never
    // registered it.
    for (auto It = Registered.begin(); It != Registered.end();) {
      if (CurrentFeatures.count(*It) == 0) {
        Registry.unregisterFeature(*It);
        It = Registered.erase(It);
      } else {
        ++It;
      }
    }
    for (const auto &[Name, Value] : CurrentFeatures)
      if (Registered.insert(Name).second)
        Registry.registerFeature(Name, [this, Key = Name] {
          auto It = CurrentFeatures.find(Key);
          return It == CurrentFeatures.end() ? 0.0 : It->second;
        });

    const RegionSnapshot Snap =
        buildSnapshot(Step, Current, /*Invocations=*/10 + I);

    MechanismContext Ctx;
    Ctx.MaxThreads = Envelope;
    Ctx.PowerBudgetWatts = Stream.PowerBudgetWatts;
    Ctx.Features = &Registry;
    Ctx.NowSeconds = Step.Time;
    Ctx.Trace = Trace;

    std::optional<RegionConfig> Next = M.reconfigure(*Root, Snap, Current, Ctx);
    bool Changed = Next && !(*Next == Current);
    if (Changed && !validateConfig(*Root, *Next)) {
      ++Result.InvalidProposals;
      Changed = false;
    }
    if (Trace) {
      const RegionConfig &Chosen = Changed ? *Next : Current;
      Trace->recordAt(Step.Time, TraceKind::Decision, M.name(),
                      totalThreads(*Root, Chosen), Changed ? 1.0 : 0.0,
                      toString(*Root, Chosen));
    }
    if (!Changed)
      continue;

    Current = *Next;
    ReplayDecision D;
    D.Step = I;
    D.Time = Step.Time;
    D.Config = toString(*Root, Current);
    D.TotalThreads = totalThreads(*Root, Current);
    D.Budget = Ctx.effectiveThreads();
    D.Extents = flattenExtents(Current);
    Result.Decisions.push_back(std::move(D));
  }

  Registry.setTracer(nullptr);
  Result.FinalConfig = std::move(Current);
  return Result;
}

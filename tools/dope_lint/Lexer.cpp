//===- tools/dope_lint/Lexer.cpp - C++ token stream for dope_lint ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Lexer.h"

#include <cctype>
#include <cstring>

using namespace dopelint;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Multi-character punctuation, longest first so maximal munch wins.
/// Mirrors clang's token set: "<<=" must not lex as "<" "<=".
constexpr const char *MultiPunct[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",  "##"};

/// Parses a `dope-lint: <verb>(...)` marker out of comment text. Two
/// verbs exist: `allow(A,B)` fills \p Ids with the listed check IDs
/// (possibly "all"); `mo-proof(anchor)` fills \p MoProof with the cited
/// DESIGN.md anchor. Both stay empty when no marker is present.
void parseMarkers(const std::string &Comment, std::set<std::string> &Ids,
                  std::string &MoProof) {
  const char *Marker = "dope-lint:";
  size_t Pos = Comment.find(Marker);
  if (Pos == std::string::npos)
    return;
  Pos += std::strlen(Marker);
  while (Pos < Comment.size() && std::isspace((unsigned char)Comment[Pos]))
    ++Pos;
  const char *Allow = "allow(";
  const char *Proof = "mo-proof(";
  if (Comment.compare(Pos, std::strlen(Proof), Proof) == 0) {
    Pos += std::strlen(Proof);
    for (; Pos < Comment.size() && Comment[Pos] != ')'; ++Pos)
      if (!std::isspace((unsigned char)Comment[Pos]))
        MoProof += Comment[Pos];
    return;
  }
  if (Comment.compare(Pos, std::strlen(Allow), Allow) != 0)
    return;
  Pos += std::strlen(Allow);
  std::string Cur;
  for (; Pos < Comment.size(); ++Pos) {
    char C = Comment[Pos];
    if (C == ')' || C == ',') {
      if (!Cur.empty())
        Ids.insert(Cur);
      Cur.clear();
      if (C == ')')
        break;
    } else if (!std::isspace((unsigned char)C)) {
      Cur += C;
    }
  }
}

class LexerImpl {
public:
  explicit LexerImpl(const std::string &Source) : Src(Source) {}

  LexOutput run() {
    while (Pos < Src.size())
      step();
    return std::move(Out);
  }

private:
  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  bool InPP = false; ///< Inside a preprocessor directive (until EOL).
  LexOutput Out;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  void advance(size_t N = 1) {
    for (size_t I = 0; I != N && Pos < Src.size(); ++I, ++Pos) {
      if (Src[Pos] == '\n') {
        ++Line;
        Col = 1;
        InPP = false;
      } else {
        ++Col;
      }
    }
  }

  void emit(TokKind Kind, std::string Text, unsigned L, unsigned C) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = L;
    T.Col = C;
    T.InPP = InPP;
    Out.Tokens.push_back(std::move(T));
  }

  void noteSuppression(const std::string &Comment, unsigned AtLine) {
    std::set<std::string> Ids;
    std::string MoProof;
    parseMarkers(Comment, Ids, MoProof);
    if (!Ids.empty())
      Out.Suppressions[AtLine].insert(Ids.begin(), Ids.end());
    if (!MoProof.empty())
      Out.MoProofs[AtLine] = MoProof;
  }

  void step() {
    char C = peek();

    if (C == '\\' && peek(1) == '\n') { // line continuation: keep InPP
      bool WasPP = InPP;
      advance(2);
      InPP = WasPP;
      return;
    }
    if (std::isspace((unsigned char)C)) {
      advance();
      return;
    }
    if (C == '/' && peek(1) == '/')
      return lexLineComment();
    if (C == '/' && peek(1) == '*')
      return lexBlockComment();
    if (C == '#' && !InPP) {
      InPP = true;
      emit(TokKind::Punct, "#", Line, Col);
      advance();
      return;
    }
    if (isIdentStart(C))
      return lexIdentOrPrefixedLiteral();
    if (std::isdigit((unsigned char)C) ||
        (C == '.' && std::isdigit((unsigned char)peek(1))))
      return lexNumber();
    if (C == '"')
      return lexString(/*Raw=*/false, "");
    if (C == '\'')
      return lexCharLit();
    lexPunct();
  }

  void lexLineComment() {
    unsigned L = Line;
    std::string Text;
    while (Pos < Src.size() && peek() != '\n') {
      Text += peek();
      advance();
    }
    noteSuppression(Text, L);
  }

  void lexBlockComment() {
    unsigned L = Line;
    std::string Text;
    advance(2);
    while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/')) {
      Text += peek();
      advance();
    }
    advance(2);
    noteSuppression(Text, L);
  }

  /// Identifiers, keywords, and literal prefixes (R"...", u8"...", L'x').
  void lexIdentOrPrefixedLiteral() {
    unsigned L = Line, C = Col;
    std::string Text;
    while (isIdentChar(peek())) {
      Text += peek();
      advance();
    }
    // Raw string: prefix ends in R and a quote follows.
    if (!Text.empty() && Text.back() == 'R' && peek() == '"' &&
        (Text == "R" || Text == "u8R" || Text == "uR" || Text == "UR" ||
         Text == "LR"))
      return lexRawString(L, C);
    // Encoded string/char prefix (u8"...", L'x', ...).
    if ((Text == "u8" || Text == "u" || Text == "U" || Text == "L")) {
      if (peek() == '"')
        return lexString(false, Text);
      if (peek() == '\'')
        return lexCharLit();
    }
    emit(TokKind::Ident, std::move(Text), L, C);
  }

  void lexNumber() {
    unsigned L = Line, C = Col;
    std::string Text;
    // pp-number: digits, idents, dots, digit separators, exponent signs.
    while (isIdentChar(peek()) || peek() == '.' ||
           (peek() == '\'' &&
            std::isalnum(static_cast<unsigned char>(peek(1)))) ||
           ((peek() == '+' || peek() == '-') && !Text.empty() &&
            (Text.back() == 'e' || Text.back() == 'E' ||
             Text.back() == 'p' || Text.back() == 'P'))) {
      Text += peek();
      advance();
    }
    emit(TokKind::Number, std::move(Text), L, C);
  }

  void lexString(bool, const std::string &) {
    unsigned L = Line, C = Col;
    std::string Text;
    advance(); // opening quote
    while (Pos < Src.size() && peek() != '"') {
      if (peek() == '\\' && Pos + 1 < Src.size()) {
        Text += peek();
        Text += peek(1);
        advance(2);
        continue;
      }
      if (peek() == '\n')
        break; // unterminated; recover at EOL
      Text += peek();
      advance();
    }
    advance(); // closing quote
    emit(TokKind::String, std::move(Text), L, C);
  }

  void lexRawString(unsigned L, unsigned C) {
    advance(); // opening quote
    std::string Delim;
    while (Pos < Src.size() && peek() != '(') {
      Delim += peek();
      advance();
    }
    advance(); // '('
    std::string Close = ")" + Delim + "\"";
    std::string Text;
    while (Pos < Src.size() && Src.compare(Pos, Close.size(), Close) != 0) {
      Text += peek();
      advance();
    }
    advance(Close.size());
    emit(TokKind::String, std::move(Text), L, C);
  }

  void lexCharLit() {
    unsigned L = Line, C = Col;
    std::string Text;
    advance(); // opening quote
    while (Pos < Src.size() && peek() != '\'') {
      if (peek() == '\\' && Pos + 1 < Src.size()) {
        Text += peek();
        Text += peek(1);
        advance(2);
        continue;
      }
      if (peek() == '\n')
        break;
      Text += peek();
      advance();
    }
    advance(); // closing quote
    emit(TokKind::CharLit, std::move(Text), L, C);
  }

  void lexPunct() {
    unsigned L = Line, C = Col;
    for (const char *P : MultiPunct) {
      size_t N = std::strlen(P);
      if (Src.compare(Pos, N, P) == 0) {
        emit(TokKind::Punct, P, L, C);
        advance(N);
        return;
      }
    }
    emit(TokKind::Punct, std::string(1, peek()), L, C);
    advance();
  }
};

} // namespace

LexOutput dopelint::lex(const std::string &Source) {
  return LexerImpl(Source).run();
}

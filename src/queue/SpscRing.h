//===- queue/SpscRing.h - Lock-free single-producer ring ------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A wait-free single-producer single-consumer ring buffer. Used on the
/// hot path between adjacent sequential pipeline stages (e.g. the
/// Read -> Transform hand-off of the transcoding example) where exactly
/// one thread sits on each side.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_QUEUE_SPSCRING_H
#define DOPE_QUEUE_SPSCRING_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace dope {

/// Fixed-capacity SPSC ring. Capacity is rounded up to a power of two.
/// push/pop are wait-free; there is no blocking API by design — callers
/// that need blocking semantics should use BoundedQueue.
template <typename T> class SpscRing {
public:
  explicit SpscRing(size_t MinCapacity) {
    size_t Cap = 1;
    while (Cap < MinCapacity)
      Cap <<= 1;
    Slots.resize(Cap);
    Mask = Cap - 1;
  }
  SpscRing(const SpscRing &) = delete;
  SpscRing &operator=(const SpscRing &) = delete;

  /// Producer side. Returns false when full.
  bool push(T Item) {
    const size_t Tail = TailIndex.load(std::memory_order_relaxed); // dope-lint: mo-proof(design-16-spsc)
    const size_t Head = HeadIndex.load(std::memory_order_acquire);
    if (Tail - Head > Mask)
      return false;
    Slots[Tail & Mask] = std::move(Item);
    TailIndex.store(Tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> pop() {
    const size_t Head = HeadIndex.load(std::memory_order_relaxed); // dope-lint: mo-proof(design-16-spsc)
    const size_t Tail = TailIndex.load(std::memory_order_acquire);
    if (Head == Tail)
      return std::nullopt;
    T Item = std::move(Slots[Head & Mask]);
    HeadIndex.store(Head + 1, std::memory_order_release);
    return Item;
  }

  size_t size() const {
    const size_t Tail = TailIndex.load(std::memory_order_acquire);
    const size_t Head = HeadIndex.load(std::memory_order_acquire);
    return Tail - Head;
  }

  size_t capacity() const { return Mask + 1; }
  bool empty() const { return size() == 0; }

private:
  std::vector<T> Slots;
  size_t Mask = 0;
  // Separate cache lines for the two indices to avoid false sharing.
  alignas(64) std::atomic<size_t> HeadIndex{0};
  alignas(64) std::atomic<size_t> TailIndex{0};
};

} // namespace dope

#endif // DOPE_QUEUE_SPSCRING_H

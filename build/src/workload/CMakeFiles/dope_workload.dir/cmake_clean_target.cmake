file(REMOVE_RECURSE
  "libdope_workload.a"
)

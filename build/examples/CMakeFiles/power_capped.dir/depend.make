# Empty dependencies file for power_capped.
# This may be replaced when dependencies are built.

//===- tools/dope_lint/LockGraph.cpp - Static lock-order analysis ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "LockGraph.h"

#include <algorithm>
#include <cstdint>
#include <functional>

using namespace dopelint;

namespace {

//===----------------------------------------------------------------------===//
// Vocabulary
//===----------------------------------------------------------------------===//

const std::set<std::string> &guardTypes() {
  static const std::set<std::string> S = {"lock_guard", "unique_lock",
                                          "scoped_lock", "shared_lock"};
  return S;
}

const std::set<std::string> &mutexTypes() {
  static const std::set<std::string> S = {
      "mutex",       "shared_mutex",          "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
  return S;
}

/// Tag arguments to guard constructors that are not mutex expressions.
const std::set<std::string> &lockTags() {
  static const std::set<std::string> S = {"adopt_lock", "defer_lock",
                                          "try_to_lock"};
  return S;
}

/// Calls that park the calling thread. `.wait*` mirrors the HP002
/// blocking set; join / sleep_* matter here because holding a lock
/// across them stalls every contender, hot or not.
const std::set<std::string> &blockingNames() {
  static const std::set<std::string> S = {
      "wait",       "wait_for", "wait_until", "waitAndPop",
      "join",       "sleep_for", "sleep_until"};
  return S;
}

bool memberPrefixed(const std::vector<Token> &T, size_t I) {
  return I > 0 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->") ||
                   isPunct(T[I - 1], "::"));
}

/// Human name for a key: `Class::Member`, or the text before '@' for
/// opaque per-site keys.
std::string displayOf(const std::string &Key) {
  size_t At = Key.find('@');
  return At == std::string::npos ? Key : Key.substr(0, At);
}

//===----------------------------------------------------------------------===//
// Mutex declaration index
//===----------------------------------------------------------------------===//

/// `std::mutex Name` (and friends) declarations, whole-program, keyed
/// by bare member name -> set of class-qualified keys.
std::map<std::string, std::set<std::string>>
indexMutexDecls(const std::vector<FileTokens> &Files) {
  std::map<std::string, std::set<std::string>> Decls;
  for (const FileTokens &File : Files) {
    const std::vector<Token> &T = File.Lex.Tokens;
    ClassRegions Classes(T);
    std::string Stem = fileStem(File.Path);
    for (size_t I = 0; I + 2 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident || T[I].InPP ||
          !mutexTypes().count(T[I].Text))
        continue;
      if (T[I + 1].Kind != TokKind::Ident)
        continue;
      // `;` / `{` / `=` / `,` end a declarator; a following identifier
      // is an annotation macro (DOPE_ACQUIRED_BEFORE etc.). `(` would
      // be a function returning a mutex — not a declaration.
      const Token &After = T[I + 2];
      bool DeclTail = isPunct(After, ";") || isPunct(After, "{") ||
                      isPunct(After, "=") || isPunct(After, ",") ||
                      After.Kind == TokKind::Ident;
      if (!DeclTail)
        continue;
      std::string Qual = Classes.enclosing(I);
      if (Qual.empty())
        Qual = Stem;
      Decls[T[I + 1].Text].insert(Qual + "::" + T[I + 1].Text);
    }
  }
  return Decls;
}

//===----------------------------------------------------------------------===//
// Per-function lock walk
//===----------------------------------------------------------------------===//

struct Acq {
  std::string Key;
  unsigned Line = 0;
};

struct HeldLock {
  std::string Key;
  std::string Var; ///< Guard variable / receiver; empty for capabilities.
  unsigned Line = 0;
  int Depth = 0;      ///< Brace depth at acquisition; -1 = held on entry.
  size_t Group = 0;   ///< Token index of the declaring guard; edges are
                      ///< not drawn between locks of one scoped_lock.
};

struct HeldCall {
  std::string Callee;
  unsigned Line = 0;
  std::vector<HeldLock> Held; ///< Snapshot at the call site.
};

struct LockEdge {
  std::string From, To;
  std::string File;     ///< Witness file (basename'd by the caller).
  unsigned Line = 0;
  std::string Holder;   ///< Function holding From when To was acquired.
  std::string Via;      ///< Callee name for interprocedural edges.
};

/// Everything analyzeLocks learns about one function body.
struct NodeLockInfo {
  std::vector<Acq> Direct;       ///< Locks this body acquires itself.
  bool Blocks = false;           ///< Direct blocking call in the body.
  unsigned BlockLine = 0;
  std::string BlockDetail;       ///< ".wait_for()" etc., first site.
  std::vector<HeldCall> HeldCalls;
};

class LockAnalysis {
public:
  LockAnalysis(const std::vector<FileTokens> &Files, const CallGraph &CG)
      : CG(CG), Decls(indexMutexDecls(Files)) {
    for (const FnNode &N : CG.nodes())
      walk(N);
    closeOverCalls();
    findCycles();
  }

  std::vector<Finding> take() { return std::move(Findings); }

private:
  const CallGraph &CG;
  std::map<std::string, std::set<std::string>> Decls;
  std::map<const FnNode *, NodeLockInfo> Info;
  std::vector<LockEdge> Edges;
  std::vector<Finding> Findings;

  /// Resolves a bare-identifier mutex expression from inside \p Qual.
  std::string resolveBareKey(const std::string &Member,
                             const std::string &Qual) {
    std::string Qualified = Qual + "::" + Member;
    auto It = Decls.find(Member);
    if (It != Decls.end()) {
      if (It->second.count(Qualified))
        return Qualified;
      if (It->second.size() == 1)
        return *It->second.begin();
    }
    // Undeclared (local mutex, reference parameter): synthesize a
    // caller-scoped key so intra-function ordering is still tracked.
    return Qualified;
  }

  /// Resolves `Expr.Member` / `Expr->Member`: a unique declaration of
  /// that member name wins; otherwise an opaque per-site key that can
  /// participate in LK002 but never fabricates a cross-function cycle.
  std::string resolveMemberKey(const std::string &Member,
                               const std::string &Path, unsigned Line) {
    auto It = Decls.find(Member);
    if (It != Decls.end() && It->second.size() == 1)
      return *It->second.begin();
    return Member + "@" + fileStem(Path) + ":" + std::to_string(Line);
  }

  void noteAcquire(const FnNode &N, std::vector<HeldLock> &Held,
                   const std::string &Key, const std::string &Var,
                   unsigned Line, int Depth, size_t Group) {
    const std::string &Path = N.File->Path;
    for (const HeldLock &H : Held) {
      if (H.Group == Group && Group != 0)
        continue; // one scoped_lock acquires its args atomically
      if (H.Key == Key) {
        Finding F;
        F.CheckId = "LK001";
        F.File = Path;
        F.Line = Line;
        F.Message = "function '" + N.Def->Name + "' re-acquires '" +
                    displayOf(Key) + "' already held since line " +
                    std::to_string(H.Line) +
                    "; a non-recursive mutex self-deadlocks here";
        F.Chain.push_back({N.Def->Name, Path, H.Line});
        F.Chain.push_back({N.Def->Name, Path, Line});
        Findings.push_back(std::move(F));
        continue;
      }
      Edges.push_back({H.Key, Key, Path, Line, N.Def->Name, ""});
    }
    Info[&N].Direct.push_back({Key, Line});
    Held.push_back({Key, Var, Line, Depth, Group});
  }

  /// Splits a guard-constructor argument list into top-level argument
  /// token ranges.
  std::vector<std::pair<size_t, size_t>>
  splitArgs(const std::vector<Token> &T, size_t Open, size_t Close) {
    std::vector<std::pair<size_t, size_t>> Args;
    size_t Start = Open + 1;
    int Depth = 0;
    for (size_t I = Open + 1; I < Close; ++I) {
      if (isPunct(T[I], "(") || isPunct(T[I], "{") || isPunct(T[I], "[") ||
          isPunct(T[I], "<"))
        ++Depth;
      else if (isPunct(T[I], ")") || isPunct(T[I], "}") ||
               isPunct(T[I], "]") || isPunct(T[I], ">"))
        --Depth;
      else if (isPunct(T[I], ",") && Depth == 0) {
        Args.push_back({Start, I});
        Start = I + 1;
      }
    }
    if (Start < Close)
      Args.push_back({Start, Close});
    return Args;
  }

  /// The mutex key named by one guard-constructor argument, or empty
  /// for tag arguments (std::defer_lock and friends).
  std::string argKey(const FnNode &N, const std::vector<Token> &T,
                     size_t Begin, size_t End) {
    size_t Last = SIZE_MAX;
    for (size_t I = Begin; I < End; ++I)
      if (T[I].Kind == TokKind::Ident)
        Last = I;
    if (Last == SIZE_MAX || lockTags().count(T[Last].Text))
      return "";
    bool MemberAccess =
        Last > Begin &&
        (isPunct(T[Last - 1], ".") || isPunct(T[Last - 1], "->")) &&
        !(Last >= 2 && isIdent(T[Last - 2], "this"));
    if (MemberAccess)
      return resolveMemberKey(T[Last].Text, N.File->Path, T[Last].Line);
    return resolveBareKey(T[Last].Text, N.Def->Qual);
  }

  void walk(const FnNode &N) {
    const Scope &S = *N.Def;
    if (S.Name == "<lambda>")
      return; // lambdas run under their enclosing function's analysis
    const std::vector<Token> &T = N.File->Lex.Tokens;
    NodeLockInfo &NI = Info[&N];
    std::vector<HeldLock> Held;
    for (const std::string &Cap : S.RequiresCaps)
      Held.push_back({resolveBareKey(Cap, S.Qual), "", S.Line, -1, 0});

    int Depth = 0;
    size_t SkipUntil = 0; // guard-decl argument tokens, already consumed
    for (size_t P = 0; P < S.OwnToks.size(); ++P) {
      size_t I = S.OwnToks[P];
      const Token &Tok = T[I];
      if (isPunct(Tok, "{")) {
        ++Depth;
        continue;
      }
      if (isPunct(Tok, "}")) {
        --Depth;
        Held.erase(std::remove_if(Held.begin(), Held.end(),
                                  [&](const HeldLock &H) {
                                    return H.Depth > Depth;
                                  }),
                   Held.end());
        continue;
      }
      if (I < SkipUntil || Tok.Kind != TokKind::Ident || Tok.InPP)
        continue;

      // Guard declaration: lock_guard<...> Var(Mu [, Mu2...]);
      if (guardTypes().count(Tok.Text)) {
        size_t J = I + 1;
        if (J < T.size() && isPunct(T[J], "<"))
          J = matchForward(T, J, "<", ">") + 1;
        if (J + 1 >= T.size() || T[J].Kind != TokKind::Ident)
          continue;
        std::string Var = T[J].Text;
        const char *Open = isPunct(T[J + 1], "(")   ? "("
                           : isPunct(T[J + 1], "{") ? "{"
                                                    : nullptr;
        if (!Open)
          continue; // deferred guard with no mutex
        size_t Close =
            matchForward(T, J + 1, Open, Open[0] == '(' ? ")" : "}");
        bool Defer = false;
        for (size_t K = J + 2; K < Close && K < T.size(); ++K)
          if (isIdent(T[K], "defer_lock"))
            Defer = true;
        if (!Defer)
          for (auto [B, E] : splitArgs(T, J + 1, Close)) {
            std::string Key = argKey(N, T, B, E);
            if (!Key.empty())
              noteAcquire(N, Held, Key, Var, Tok.Line, Depth, I);
          }
        SkipUntil = Close + 1;
        continue;
      }

      // Explicit Mu.lock() / Guard.unlock().
      if ((Tok.Text == "lock" || Tok.Text == "unlock") && I > 1 &&
          (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")) &&
          I + 1 < T.size() && isPunct(T[I + 1], "(") &&
          T[I - 2].Kind == TokKind::Ident) {
        std::string Recv = T[I - 2].Text;
        if (Tok.Text == "unlock") {
          for (size_t K = Held.size(); K-- > 0;)
            if (Held[K].Var == Recv) {
              Held.erase(Held.begin() + static_cast<long>(K));
              break;
            }
        } else {
          bool Rearm = false;
          for (const HeldLock &H : Held)
            if (!H.Var.empty() && H.Var == Recv)
              Rearm = true; // a deferred/unlocked guard re-locking
          if (!Rearm) {
            bool MemberAccess = I > 3 &&
                                (isPunct(T[I - 3], ".") ||
                                 isPunct(T[I - 3], "->")) &&
                                !isIdent(T[I - 4], "this");
            std::string Key =
                MemberAccess
                    ? resolveMemberKey(Recv, N.File->Path, Tok.Line)
                    : resolveBareKey(Recv, S.Qual);
            noteAcquire(N, Held, Key, Recv, Tok.Line, Depth, 0);
          }
        }
        SkipUntil = I + 2;
        continue;
      }

      // Blocking call.
      if (blockingNames().count(Tok.Text) && memberPrefixed(T, I) &&
          I + 1 < T.size() && isPunct(T[I + 1], "(")) {
        std::string Detail = (isPunct(T[I - 1], "::") ? "" : ".") +
                             Tok.Text + "()";
        if (!NI.Blocks) {
          NI.Blocks = true;
          NI.BlockLine = Tok.Line;
          NI.BlockDetail = Detail;
        }
        // Condition-variable waits release the unique_lock they are
        // handed: exempt every guard named in the argument list.
        std::set<std::string> Exempt;
        if (Tok.Text == "wait" || Tok.Text == "wait_for" ||
            Tok.Text == "wait_until") {
          size_t Close = matchForward(T, I + 1, "(", ")");
          for (size_t K = I + 2; K < Close && K < T.size(); ++K)
            if (T[K].Kind == TokKind::Ident)
              for (const HeldLock &H : Held)
                if (!H.Var.empty() && H.Var == T[K].Text)
                  Exempt.insert(H.Key);
        }
        for (const HeldLock &H : Held) {
          if (Exempt.count(H.Key))
            continue;
          Finding F;
          F.CheckId = "LK002";
          F.File = N.File->Path;
          F.Line = Tok.Line;
          F.Message =
              "function '" + S.Name + "' holds '" + displayOf(H.Key) +
              "' (acquired at line " + std::to_string(H.Line) +
              ") across blocking '" + Detail +
              "'; every contender stalls behind the parked holder — "
              "release the lock first (condition-variable waits are "
              "exempt only when passed the owning unique_lock)";
          F.Chain.push_back({S.Name, N.File->Path, H.Line});
          F.Chain.push_back({S.Name, N.File->Path, Tok.Line});
          Findings.push_back(std::move(F));
        }
        continue;
      }

      // Call site while holding locks (same candidate rules as the
      // call graph, so closures and snapshots line up).
      if (!Held.empty() && !isKeywordNoCall(Tok.Text) && I + 1 < T.size() &&
          isPunct(T[I + 1], "(")) {
        if (I > 0 && isPunct(T[I - 1], "~"))
          continue;
        if (I > 0 && T[I - 1].Kind == TokKind::Ident &&
            !isKeywordNoCall(T[I - 1].Text))
          continue; // `Type name(` declaration
        if (I > 0 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")) &&
            isPrimitiveMemberOp(Tok.Text))
          continue; // atomic/condvar primitive, not project code
        NI.HeldCalls.push_back({Tok.Text, Tok.Line, Held});
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Interprocedural closure
  //===--------------------------------------------------------------------===//

  /// Transitive acquisition set of a node (memoized; in-progress nodes
  /// contribute nothing, which terminates recursion).
  std::map<const FnNode *, std::set<std::string>> AcqMemo;
  std::set<const FnNode *> AcqInProgress;

  const std::set<std::string> &transAcq(const FnNode *N) {
    auto It = AcqMemo.find(N);
    if (It != AcqMemo.end())
      return It->second;
    static const std::set<std::string> Empty;
    if (!AcqInProgress.insert(N).second)
      return Empty;
    std::set<std::string> Out;
    for (const Acq &A : Info[N].Direct)
      Out.insert(A.Key);
    for (const CallSite &C : N->Calls)
      if (const FnNode *Target = CG.resolve(C.Callee, N->Def->Qual, N))
        if (!AcqInProgress.count(Target)) {
          const std::set<std::string> &Sub = transAcq(Target);
          Out.insert(Sub.begin(), Sub.end());
        }
    AcqInProgress.erase(N);
    return AcqMemo[N] = std::move(Out);
  }

  struct BlockPath {
    std::vector<ChainFrame> Frames;
    std::string Detail;
  };
  std::map<const FnNode *, std::optional<BlockPath>> BlockMemo;
  std::set<const FnNode *> BlockInProgress;

  /// Does \p N (transitively) block? Returns the witness chain.
  const std::optional<BlockPath> &transBlock(const FnNode *N) {
    auto It = BlockMemo.find(N);
    if (It != BlockMemo.end())
      return It->second;
    static const std::optional<BlockPath> None;
    if (!BlockInProgress.insert(N).second)
      return None;
    std::optional<BlockPath> Out;
    const NodeLockInfo &NI = Info[N];
    if (NI.Blocks) {
      BlockPath P;
      P.Frames.push_back({N->Def->Name, N->File->Path, NI.BlockLine});
      P.Detail = NI.BlockDetail;
      Out = std::move(P);
    } else {
      for (const CallSite &C : N->Calls) {
        const FnNode *Target = CG.resolve(C.Callee, N->Def->Qual, N);
        if (!Target || BlockInProgress.count(Target))
          continue;
        const std::optional<BlockPath> &Sub = transBlock(Target);
        if (Sub) {
          BlockPath P;
          P.Frames.push_back({N->Def->Name, N->File->Path, C.Line});
          P.Frames.insert(P.Frames.end(), Sub->Frames.begin(),
                          Sub->Frames.end());
          P.Detail = Sub->Detail;
          Out = std::move(P);
          break;
        }
      }
    }
    BlockInProgress.erase(N);
    return BlockMemo[N] = std::move(Out);
  }

  void closeOverCalls() {
    for (const FnNode &N : CG.nodes()) {
      auto InfoIt = Info.find(&N);
      if (InfoIt == Info.end())
        continue;
      for (const HeldCall &HC : InfoIt->second.HeldCalls) {
        const FnNode *Target = CG.resolve(HC.Callee, N.Def->Qual, &N);
        if (!Target)
          continue;
        // Edges: held -> everything the callee transitively acquires.
        // A same-key interprocedural edge is skipped: "helper locks the
        // same mutex" is usually a different instance (per-shard locks)
        // and flagging it as self-deadlock would be a guess.
        for (const std::string &Key : transAcq(Target))
          for (const HeldLock &H : HC.Held)
            if (H.Key != Key)
              Edges.push_back(
                  {H.Key, Key, N.File->Path, HC.Line, N.Def->Name, HC.Callee});
        // LK002 through the call chain.
        const std::optional<BlockPath> &BP = transBlock(Target);
        if (!BP)
          continue;
        for (const HeldLock &H : HC.Held) {
          Finding F;
          F.CheckId = "LK002";
          F.File = N.File->Path;
          F.Line = HC.Line;
          F.Message = "function '" + N.Def->Name + "' holds '" +
                      displayOf(H.Key) + "' (acquired at line " +
                      std::to_string(H.Line) + ") across a call to '" +
                      HC.Callee + "', which blocks in '" + BP->Detail +
                      "'; release the lock before calling into a "
                      "blocking path (--explain shows the chain)";
          F.Chain.push_back({N.Def->Name, N.File->Path, HC.Line});
          F.Chain.insert(F.Chain.end(), BP->Frames.begin(),
                         BP->Frames.end());
          Findings.push_back(std::move(F));
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Cycle detection (LK001)
  //===--------------------------------------------------------------------===//

  void findCycles() {
    // First witness per directed pair, deterministic.
    std::map<std::pair<std::string, std::string>, const LockEdge *> Witness;
    for (const LockEdge &E : Edges)
      Witness.emplace(std::make_pair(E.From, E.To), &E);

    std::map<std::string, std::vector<std::string>> Succ;
    for (const auto &[Pair, E] : Witness)
      Succ[Pair.first].push_back(Pair.second);

    // Iterative Tarjan SCC over the (sorted, deterministic) key set.
    std::map<std::string, int> Index, Low;
    std::map<std::string, bool> OnStack;
    std::vector<std::string> Stack;
    int Next = 0;
    std::vector<std::vector<std::string>> Cycles;

    std::function<void(const std::string &)> Strong =
        [&](const std::string &V) {
          Index[V] = Low[V] = Next++;
          Stack.push_back(V);
          OnStack[V] = true;
          for (const std::string &W : Succ[V]) {
            if (!Index.count(W)) {
              Strong(W);
              Low[V] = std::min(Low[V], Low[W]);
            } else if (OnStack[W]) {
              Low[V] = std::min(Low[V], Index[W]);
            }
          }
          if (Low[V] == Index[V]) {
            std::vector<std::string> SCC;
            while (true) {
              std::string W = Stack.back();
              Stack.pop_back();
              OnStack[W] = false;
              SCC.push_back(W);
              if (W == V)
                break;
            }
            if (SCC.size() >= 2) {
              std::sort(SCC.begin(), SCC.end());
              Cycles.push_back(std::move(SCC));
            }
          }
        };
    std::set<std::string> AllKeys;
    for (const auto &[Pair, E] : Witness) {
      AllKeys.insert(Pair.first);
      AllKeys.insert(Pair.second);
    }
    for (const std::string &K : AllKeys)
      if (!Index.count(K))
        Strong(K);

    std::sort(Cycles.begin(), Cycles.end());
    for (const std::vector<std::string> &SCC : Cycles) {
      std::set<std::string> InSCC(SCC.begin(), SCC.end());
      std::vector<const LockEdge *> WitnessEdges;
      for (const auto &[Pair, E] : Witness)
        if (InSCC.count(Pair.first) && InSCC.count(Pair.second))
          WitnessEdges.push_back(E);
      if (WitnessEdges.empty())
        continue;
      std::string Names;
      for (const std::string &K : SCC)
        Names += (Names.empty() ? "'" : ", '") + displayOf(K) + "'";
      std::string Msg = "lock-order cycle among " + Names + ":";
      size_t Shown = 0;
      for (const LockEdge *E : WitnessEdges) {
        if (Shown++ == 2) {
          Msg += " ...;";
          break;
        }
        Msg += " '" + E->Holder + "' acquires '" + displayOf(E->To) +
               "' while holding '" + displayOf(E->From) + "'" +
               (E->Via.empty() ? "" : " via '" + E->Via + "'") + " (line " +
               std::to_string(E->Line) + ");";
      }
      Msg += " impose one global acquisition order";
      Finding F;
      F.CheckId = "LK001";
      F.File = WitnessEdges.front()->File;
      F.Line = WitnessEdges.front()->Line;
      F.Message = std::move(Msg);
      for (const LockEdge *E : WitnessEdges)
        F.Chain.push_back({displayOf(E->From) + " -> " + displayOf(E->To),
                           E->File, E->Line});
      Findings.push_back(std::move(F));
    }
  }
};

} // namespace

std::vector<Finding> dopelint::analyzeLocks(const std::vector<FileTokens> &Files,
                                            const CallGraph &CG) {
  LockAnalysis LA(Files, CG);
  return LA.take();
}

//===- support/Json.h - Minimal JSON value ---------------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value with a recursive-descent parser and
/// a compact writer. It exists for the observability subsystem: trace
/// records, recorded feature streams, and golden decision logs are all
/// JSONL (one object per line), written and read by this class. Objects
/// preserve insertion order so emitted lines are stable and diffable.
///
/// Deliberately minimal: doubles for all numbers, no \uXXXX escapes
/// beyond pass-through, no streaming. Adequate for files this repository
/// writes itself.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_JSON_H
#define DOPE_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dope {

/// A JSON value: null, bool, number, string, array, or object.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : TheKind(Kind::Null) {}
  JsonValue(bool B) : TheKind(Kind::Bool), BoolValue(B) {}
  JsonValue(double D) : TheKind(Kind::Number), NumberValue(D) {}
  JsonValue(int I) : TheKind(Kind::Number), NumberValue(I) {}
  JsonValue(uint64_t U)
      : TheKind(Kind::Number), NumberValue(static_cast<double>(U)) {}
  JsonValue(const char *S) : TheKind(Kind::String), StringValue(S) {}
  JsonValue(std::string S) : TheKind(Kind::String), StringValue(std::move(S)) {}

  static JsonValue makeArray() {
    JsonValue V;
    V.TheKind = Kind::Array;
    return V;
  }
  static JsonValue makeObject() {
    JsonValue V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool asBool(bool Fallback = false) const {
    return isBool() ? BoolValue : Fallback;
  }
  double asDouble(double Fallback = 0.0) const {
    return isNumber() ? NumberValue : Fallback;
  }
  const std::string &asString() const { return StringValue; }

  /// Array access.
  size_t size() const {
    return isArray() ? Elements.size() : (isObject() ? Members.size() : 0);
  }
  const JsonValue &at(size_t Index) const { return Elements[Index]; }
  void push(JsonValue V) { Elements.push_back(std::move(V)); }

  /// Object access: pointer to the member value, null when absent.
  const JsonValue *get(std::string_view Key) const;
  /// Object members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  /// Sets (or replaces) an object member, preserving insertion order.
  void set(std::string Key, JsonValue V);

  /// Convenience typed object lookups with fallbacks.
  double getNumber(std::string_view Key, double Fallback = 0.0) const;
  std::string getString(std::string_view Key,
                        const std::string &Fallback = {}) const;
  bool getBool(std::string_view Key, bool Fallback = false) const;

  /// Serializes compactly (no whitespace); numbers use shortest
  /// round-trip formatting, integers print without a decimal point.
  std::string dump() const;

  /// Parses \p Text; on failure returns std::nullopt and fills \p Error
  /// (when non-null) with a message carrying the byte offset.
  static std::optional<JsonValue> parse(std::string_view Text,
                                        std::string *Error = nullptr);

  /// Escapes \p S for embedding in a JSON string literal (no quotes).
  static std::string escape(std::string_view S);

  /// Appends the escaped form of \p S to \p Out (no quotes); same bytes
  /// as escape() without the intermediate string. For serializers that
  /// build output directly (e.g. batched trace emission).
  static void escapeTo(std::string &Out, std::string_view S);

  /// Appends \p D formatted exactly as dump() formats numbers: integral
  /// magnitudes below 1e15 as integers, everything else as %.17g.
  /// Byte-for-byte compatibility here is what keeps hand-built JSON
  /// (trace exporters) identical to JsonValue-built JSON (goldens).
  static void appendNumber(std::string &Out, double D);

private:
  Kind TheKind;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string StringValue;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Members;

  void dumpTo(std::string &Out) const;
};

} // namespace dope

#endif // DOPE_SUPPORT_JSON_H

//===- bench/ext_colocation.cpp - Multi-tenant arbitration experiments -----===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Platform-arbitration extension: several DoPE regions co-scheduled
/// under one thread budget. The paper ends at one application per
/// executive; this experiment raises the executive's argument one level:
/// just as tasks should not pick their own DoP, applications should not
/// pick their own thread counts. A latency-sensitive frontend (bursty
/// nested-parallel server) and a throughput-hungry batch pipeline share
/// 24 contexts under three division policies:
///
///   - arbiter: the platform arbiter re-leases threads each epoch from
///     marginal-utility bids fitted to observed speedup samples.
///   - static-split: provisioned silos, half the machine each — the
///     "peak-provisioned" baseline that strands the frontend's idle
///     threads.
///   - oversubscribed: both tenants spawn machine-wide and the OS
///     time-slices — the paper's Pthreads-OS baseline lifted to
///     multi-tenancy.
///
/// Shape checks (the acceptance criteria): the arbiter beats the static
/// half-split on weighted aggregate goal attainment, keeps the frontend
/// inside its SLO through a 3x arrival burst, and is deterministic under
/// the logged seed.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "metrics/TenantStats.h"
#include "sim/ColocationSim.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

/// Latency-sensitive nested-parallel frontend: needs a sliver of the
/// machine at cruise, triple load during the mid-run burst.
ColocationTenantSpec frontendTenant() {
  ColocationTenantSpec T;
  T.Tenant.Name = "frontend";
  T.Tenant.Goal = TenantGoal::ResponseTime;
  T.Tenant.Weight = 2.0;
  T.Tenant.MinThreads = 2;
  T.Tenant.SloSeconds = 0.5;
  T.Kind = ColocationTenantSpec::AppKind::NestServer;
  T.Nest.Name = "frontend";
  T.Nest.SeqServiceSeconds = 0.05;
  T.Nest.Curve = SpeedupCurve(0.1, 0.2);
  T.ArrivalRate = 40.0;
  return T;
}

/// Throughput-hungry batch pipeline: oversubscribed at any grant the
/// platform can give it, so every spare thread converts to attainment.
ColocationTenantSpec batchTenant() {
  ColocationTenantSpec T;
  T.Tenant.Name = "batch";
  T.Tenant.Goal = TenantGoal::Throughput;
  T.Tenant.Weight = 1.0;
  T.Kind = ColocationTenantSpec::AppKind::Pipeline;
  T.Pipeline.Name = "batch";
  T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                       {"work", true, 0.1, 0.15},
                       {"sink", true, 0.03, 0.15}};
  T.ArrivalRate = 200.0;
  return T;
}

ColocationSimResult runPolicy(ColocationPolicy Policy, unsigned Contexts,
                              uint64_t Seed, double Duration,
                              double BurstStart, double BurstSeconds) {
  ColocationTenantSpec Front = frontendTenant();
  Front.ArrivalSchedule.addPhase(1.0, BurstStart);
  Front.ArrivalSchedule.addPhase(3.0, BurstSeconds);
  Front.ArrivalSchedule.addPhase(1.0, 1e9);

  ColocationSimOptions Opts;
  Opts.Contexts = Contexts;
  Opts.Seed = Seed;
  Opts.DurationSeconds = Duration;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Policy = Policy;

  ColocationSim Sim({Front, batchTenant()}, Opts);
  return Sim.run();
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Multi-tenant arbitration: a bursty latency frontend and a "
      "throughput batch pipeline sharing one thread budget under the "
      "platform arbiter vs. static silos vs. OS oversubscription");
  addCommonOptions(Options);
  Options.addInt("duration", 240, "simulated seconds per run");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  double Duration = static_cast<double>(Options.getInt("duration"));
  if (Quick)
    Duration = 80.0;
  // Burst in the middle: late enough that the arbiter has ceded the
  // frontend's idle threads to the batch tenant, long enough that a slow
  // snap-back would show up as SLO misses.
  const double BurstStart = 0.375 * Duration;
  const double BurstSeconds = 0.25 * Duration;

  std::printf("seed=%llu (override with --seed)\n",
              static_cast<unsigned long long>(Seed));

  struct Row {
    ColocationPolicy Policy;
    ColocationSimResult R;
  };
  std::vector<Row> Rows;
  for (ColocationPolicy P :
       {ColocationPolicy::Arbiter, ColocationPolicy::StaticSplit,
        ColocationPolicy::Oversubscribed})
    Rows.push_back({P, runPolicy(P, Contexts, Seed, Duration, BurstStart,
                                 BurstSeconds)});

  Table T({"policy", "aggregate", "min-tenant", "jain", "frontend",
           "batch", "frontend p95 (s)", "lease changes"});
  for (const Row &Row : Rows) {
    const TenantStats &Front = Row.R.Tenants[0];
    const TenantStats &Batch = Row.R.Tenants[1];
    T.addRow({toString(Row.Policy),
              Table::formatDouble(Row.R.Fairness.AggregateAttainment, 3),
              Table::formatDouble(Row.R.Fairness.MinAttainment, 3),
              Table::formatDouble(Row.R.Fairness.JainIndex, 3),
              Table::formatDouble(Front.goalAttainment(), 3),
              Table::formatDouble(Batch.goalAttainment(), 3),
              Table::formatDouble(Front.Responses.responsePercentile(0.95), 3),
              std::to_string(Row.R.LeaseChanges)});
  }
  emitTable("Ext. D: weighted goal attainment under three division "
                "policies (" +
                std::to_string(Contexts) + " contexts, 3x frontend burst at t=" +
                Table::formatDouble(BurstStart, 0) + "s)",
            T, Csv);

  const ColocationSimResult &Arb = Rows[0].R;
  const ColocationSimResult &Split = Rows[1].R;
  const ColocationSimResult &Os = Rows[2].R;
  const TenantStats &ArbFront = Arb.Tenants[0];
  const TenantStats &ArbBatch = Arb.Tenants[1];

  bool Ok = true;
  Ok &= checkShape(
      Arb.Fairness.AggregateAttainment > Split.Fairness.AggregateAttainment,
      "arbiter beats the static half-split on aggregate goal attainment (" +
          Table::formatDouble(Arb.Fairness.AggregateAttainment, 3) + " > " +
          Table::formatDouble(Split.Fairness.AggregateAttainment, 3) + ")");
  Ok &= checkShape(
      Arb.Fairness.AggregateAttainment > Os.Fairness.AggregateAttainment,
      "arbiter beats OS oversubscription on aggregate goal attainment");
  Ok &= checkShape(ArbFront.goalAttainment() > 0.9,
                   "frontend stays inside its SLO through the burst "
                   "(attainment " +
                       Table::formatDouble(ArbFront.goalAttainment(), 3) +
                       " > 0.9)");
  Ok &= checkShape(ArbFront.Responses.responsePercentile(0.95) <
                       ArbFront.SloSeconds,
                   "frontend p95 response under the arbiter is within the " +
                       Table::formatDouble(ArbFront.SloSeconds, 1) + "s SLO");
  Ok &= checkShape(ArbBatch.goalAttainment() >
                       Split.Tenants[1].goalAttainment(),
                   "the batch tenant absorbs the frontend's idle threads "
                   "(attainment above its static silo)");
  Ok &= checkShape(Arb.LeaseChanges > 0 && Split.LeaseChanges == 0 &&
                       Os.LeaseChanges == 0,
                   "only the arbiter re-leases threads");

  // Determinism: the whole arbitration path is driven by the run seed.
  {
    const ColocationSimResult A = runPolicy(
        ColocationPolicy::Arbiter, Contexts, Seed, Duration, BurstStart,
        BurstSeconds);
    bool Same = A.LeaseChanges == Arb.LeaseChanges &&
                A.Fairness.AggregateAttainment ==
                    Arb.Fairness.AggregateAttainment;
    for (size_t I = 0; I != A.Tenants.size(); ++I)
      Same &= A.Tenants[I].Arrived == Arb.Tenants[I].Arrived &&
              A.Tenants[I].Completed == Arb.Tenants[I].Completed &&
              A.Tenants[I].SloHits == Arb.Tenants[I].SloHits;
    Ok &= checkShape(Same, "arbitration is deterministic under the seed");
  }

  return Ok ? 0 : 1;
}

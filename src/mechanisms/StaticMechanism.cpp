//===- mechanisms/StaticMechanism.cpp - Fixed configurations ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/StaticMechanism.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace dope;

StaticMechanism::StaticMechanism(RegionConfig Config, std::string Label)
    : Config(std::move(Config)), Label(std::move(Label)) {}

std::optional<RegionConfig>
StaticMechanism::reconfigure(const ParDescriptor &Region,
                             const RegionSnapshot &Root,
                             const RegionConfig &Current,
                             const MechanismContext &Ctx) {
  (void)Region;
  (void)Root;
  (void)Current;
  (void)Ctx;
  return Config;
}

/// Fills extents for the tasks of \p Pipeline: sequential tasks get one
/// thread, parallel tasks share the remainder per \p PerParallel (or an
/// even split of MaxThreads when PerParallel is 0).
static std::vector<TaskConfig> configurePipeline(const ParDescriptor &Pipeline,
                                                 unsigned MaxThreads,
                                                 unsigned PerParallel) {
  std::vector<double> Weights;
  unsigned SeqCount = 0;
  for (const Task *T : Pipeline.tasks()) {
    const bool IsSeq = T->kind() == TaskKind::Sequential;
    SeqCount += IsSeq ? 1 : 0;
    Weights.push_back(IsSeq ? 0.0 : 1.0);
  }

  std::vector<unsigned> Extents(Pipeline.size(), 1);
  if (SeqCount < Pipeline.size()) {
    if (PerParallel > 0) {
      for (size_t I = 0; I != Pipeline.size(); ++I)
        if (Weights[I] > 0.0)
          Extents[I] = PerParallel;
    } else {
      const unsigned Budget =
          MaxThreads > SeqCount ? MaxThreads - SeqCount : 0;
      std::vector<unsigned> Split = proportionalSplit(Budget, Weights, 0);
      for (size_t I = 0; I != Pipeline.size(); ++I)
        if (Weights[I] > 0.0)
          Extents[I] = std::max(1u, Split[I]);
    }
  }

  std::vector<TaskConfig> Configs;
  for (unsigned Extent : Extents) {
    TaskConfig TC;
    TC.Extent = Extent;
    Configs.push_back(TC);
  }
  return Configs;
}

/// Applies \p Fill to the pipeline region of \p Root, handling both the
/// direct shape (root region is the pipeline) and the driver shape (root
/// has a single task whose alternative 0 is the pipeline).
static RegionConfig buildPipelineConfig(const ParDescriptor &Root,
                                        unsigned MaxThreads,
                                        unsigned PerParallel) {
  RegionConfig Config;
  if (Root.size() > 1 || !Root.masterTask()->hasInner()) {
    Config.Tasks = configurePipeline(Root, MaxThreads, PerParallel);
    return Config;
  }
  const Task *Driver = Root.masterTask();
  const ParDescriptor *Pipeline = Driver->descriptor()->alternative(0);
  TaskConfig DriverConfig;
  DriverConfig.Extent = 1;
  DriverConfig.AltIndex = 0;
  DriverConfig.Inner = configurePipeline(*Pipeline, MaxThreads, PerParallel);
  Config.Tasks.push_back(std::move(DriverConfig));
  return Config;
}

RegionConfig dope::makeEvenPipelineConfig(const ParDescriptor &Root,
                                          unsigned MaxThreads) {
  return buildPipelineConfig(Root, MaxThreads, /*PerParallel=*/0);
}

RegionConfig dope::makeOversubscribedConfig(const ParDescriptor &Root,
                                            unsigned MaxThreads) {
  assert(MaxThreads >= 1 && "thread budget must be positive");
  return buildPipelineConfig(Root, MaxThreads, /*PerParallel=*/MaxThreads);
}

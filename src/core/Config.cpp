//===- core/Config.cpp - Parallelism configurations ------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Config.h"

#include <cassert>

using namespace dope;

static unsigned threadsForTask(const Task &T, const TaskConfig &Config) {
  unsigned PerReplica = 1;
  if (Config.AltIndex >= 0) {
    const ParDescriptor *Inner =
        T.descriptor()->alternative(static_cast<size_t>(Config.AltIndex));
    unsigned InnerTotal = 0;
    assert(Config.Inner.size() == Inner->size() &&
           "inner config arity mismatch");
    for (size_t I = 0; I != Inner->size(); ++I)
      InnerTotal += threadsForTask(*Inner->tasks()[I], Config.Inner[I]);
    // The parent replica runs the inner master task itself.
    PerReplica += InnerTotal > 0 ? InnerTotal - 1 : 0;
  }
  return Config.Extent * PerReplica;
}

unsigned dope::totalThreads(const ParDescriptor &Region,
                            const RegionConfig &Config) {
  assert(Config.Tasks.size() == Region.size() && "config arity mismatch");
  unsigned Total = 0;
  for (size_t I = 0; I != Region.size(); ++I)
    Total += threadsForTask(*Region.tasks()[I], Config.Tasks[I]);
  return Total;
}

static bool validateTask(const Task &T, const TaskConfig &Config,
                         bool InTreeRegion, std::string *ErrorMessage) {
  auto Fail = [&](const std::string &Message) {
    if (ErrorMessage)
      *ErrorMessage = "task '" + T.name() + "': " + Message;
    return false;
  };

  if (Config.Extent < 1)
    return Fail("extent must be at least 1");
  if (T.kind() == TaskKind::Sequential && Config.Extent != 1)
    return Fail("sequential task must have extent 1");
  // The grain knob is validated exactly like the extent: meaningful (and
  // mandatory) inside a tree region, forbidden everywhere else.
  if (InTreeRegion && Config.Grain < 1)
    return Fail("tree task must have grain at least 1");
  if (!InTreeRegion && Config.Grain != 0)
    return Fail("grain set on a non-tree task");
  if (Config.AltIndex < 0) {
    if (!Config.Inner.empty())
      return Fail("inner configs present without an active alternative");
    return true;
  }
  if (!T.hasInner())
    return Fail("alternative selected but task has no inner descriptor");
  if (static_cast<size_t>(Config.AltIndex) >= T.descriptor()->alternativeCount())
    return Fail("alternative index out of range");
  const ParDescriptor *Inner =
      T.descriptor()->alternative(static_cast<size_t>(Config.AltIndex));
  if (Config.Inner.size() != Inner->size())
    return Fail("inner config arity mismatch");
  for (size_t I = 0; I != Inner->size(); ++I)
    if (!validateTask(*Inner->tasks()[I], Config.Inner[I], Inner->isTree(),
                      ErrorMessage))
      return false;
  return true;
}

bool dope::validateConfig(const ParDescriptor &Region,
                          const RegionConfig &Config,
                          std::string *ErrorMessage) {
  if (Config.Tasks.size() != Region.size()) {
    if (ErrorMessage)
      *ErrorMessage = "region config arity mismatch";
    return false;
  }
  for (size_t I = 0; I != Region.size(); ++I)
    if (!validateTask(*Region.tasks()[I], Config.Tasks[I], Region.isTree(),
                      ErrorMessage))
      return false;
  return true;
}

static TaskConfig defaultTaskConfig(const Task &T, unsigned Grain) {
  TaskConfig Config;
  Config.Extent = 1;
  Config.Grain = Grain;
  if (!T.hasInner())
    return Config;
  Config.AltIndex = 0;
  const ParDescriptor *Inner = T.descriptor()->alternative(0);
  for (Task *Child : Inner->tasks())
    Config.Inner.push_back(defaultTaskConfig(*Child, Inner->defaultGrain()));
  return Config;
}

RegionConfig dope::defaultConfig(const ParDescriptor &Region) {
  RegionConfig Config;
  for (Task *T : Region.tasks())
    Config.Tasks.push_back(defaultTaskConfig(*T, Region.defaultGrain()));
  return Config;
}

static std::string renderRegion(const ParDescriptor &Region,
                                const RegionConfig &Config);

static std::string renderTask(const Task &T, const TaskConfig &Config) {
  std::string Out = "(" + std::to_string(Config.Extent) + ", ";
  if (Config.Grain != 0) {
    // Tree task: "(8, TREE, g=64)" — extent and grain are the two knobs.
    Out += "TREE, g=" + std::to_string(Config.Grain);
    return Out + ")";
  }
  if (Config.AltIndex < 0) {
    Out += T.kind() == TaskKind::Parallel ? "PAR" : "SEQ";
    return Out + ")";
  }
  const ParDescriptor *Inner =
      T.descriptor()->alternative(static_cast<size_t>(Config.AltIndex));
  Out += toString(Inner->parKind());
  RegionConfig InnerConfig;
  InnerConfig.Tasks = Config.Inner;
  Out += " " + renderRegion(*Inner, InnerConfig);
  return Out + ")";
}

static std::string renderRegion(const ParDescriptor &Region,
                                const RegionConfig &Config) {
  std::string Out = "<";
  for (size_t I = 0; I != Region.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += renderTask(*Region.tasks()[I], Config.Tasks[I]);
  }
  return Out + ">";
}

std::string dope::toString(const ParDescriptor &Region,
                           const RegionConfig &Config) {
  assert(Config.Tasks.size() == Region.size() && "config arity mismatch");
  return renderRegion(Region, Config);
}

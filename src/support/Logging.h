//===- support/Logging.h - Leveled diagnostics ----------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal leveled logger for the run-time system and experiment
/// harnesses. Output goes to stderr; the level can be raised at run time
/// (the DOPE_LOG environment variable or Logger::setLevel).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_LOGGING_H
#define DOPE_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace dope {

enum class LogLevel : int {
  Quiet = 0,
  Error = 1,
  Warn = 2,
  Info = 3,
  Debug = 4,
};

/// Process-wide logger. Thread safe: each message is emitted with a single
/// write.
class Logger {
public:
  /// Returns the process-wide logger instance.
  static Logger &instance();

  void setLevel(LogLevel NewLevel) { Level = NewLevel; }
  LogLevel level() const { return Level; }
  bool enabled(LogLevel Query) const {
    return static_cast<int>(Query) <= static_cast<int>(Level);
  }

  /// printf-style emission; prepends the level tag.
  void log(LogLevel MsgLevel, const char *Format, ...)
      __attribute__((format(printf, 3, 4)));

private:
  Logger();
  LogLevel Level;
};

#define DOPE_LOG_ERROR(...)                                                    \
  ::dope::Logger::instance().log(::dope::LogLevel::Error, __VA_ARGS__)
#define DOPE_LOG_WARN(...)                                                     \
  ::dope::Logger::instance().log(::dope::LogLevel::Warn, __VA_ARGS__)
#define DOPE_LOG_INFO(...)                                                     \
  ::dope::Logger::instance().log(::dope::LogLevel::Info, __VA_ARGS__)
#define DOPE_LOG_DEBUG(...)                                                    \
  ::dope::Logger::instance().log(::dope::LogLevel::Debug, __VA_ARGS__)

} // namespace dope

#endif // DOPE_SUPPORT_LOGGING_H

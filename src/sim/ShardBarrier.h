//===- sim/ShardBarrier.h - Epoch barrier for sharded simulation *- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronization point of the conservative sharded simulator
/// (sim/ShardedSim.h): a reusable N-party barrier whose last arriver
/// runs a serial section while every other party stays blocked.
///
/// The serial section is where all cross-shard state moves — mailbox
/// collection, arbiter decisions, control-plane publication — so shard
/// workers only ever observe it quiescent: writes made inside the
/// section happen-before every post-barrier read through the barrier's
/// own mutex, and no shard executes concurrently with it.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SIM_SHARDBARRIER_H
#define DOPE_SIM_SHARDBARRIER_H

#include "support/ThreadAnnotations.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace dope {

/// A sense-counting barrier for lockstep epochs. Reusable: generations
/// advance monotonically, so a party can re-arrive immediately after
/// release without racing stragglers from the previous epoch.
class ShardBarrier {
public:
  /// \p Parties is the number of arriveAndWait() calls per epoch; must
  /// be at least 1 (a 1-party barrier degenerates to calling the serial
  /// section inline).
  explicit ShardBarrier(unsigned Parties);

  /// Blocks until all parties have arrived. The last arrival runs
  /// \p Serial (may be null) while the others remain blocked, then all
  /// are released together. Returns true on the party that ran the
  /// serial section. \p Serial must not throw and must not re-enter the
  /// barrier.
  bool arriveAndWait(const std::function<void()> &Serial);

  unsigned parties() const { return NumParties; }

private:
  const unsigned NumParties;
  std::mutex Mutex;
  std::condition_variable Released;
  unsigned Arrived DOPE_GUARDED_BY(Mutex) = 0;
  uint64_t Generation DOPE_GUARDED_BY(Mutex) = 0;
};

} // namespace dope

#endif // DOPE_SIM_SHARDBARRIER_H

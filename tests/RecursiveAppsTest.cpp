//===- tests/RecursiveAppsTest.cpp - Recursive app-split examples ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The native app-split examples on the work-stealing tree runtime:
// quicksort sorts exactly (no element lost or duplicated by stealing)
// and tree search matches its sequential oracle, across worker counts
// and grains — including degenerate grains.
//
//===----------------------------------------------------------------------===//

#include "apps/RecursiveApps.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

void checkSorts(size_t N, unsigned Workers, unsigned Grain, uint64_t Seed) {
  std::vector<uint32_t> Data = makeSortInput(N, Seed);
  std::vector<uint32_t> Expected = Data;
  std::sort(Expected.begin(), Expected.end());

  parallelQuicksort(Data, Workers, Grain, Seed);
  ASSERT_EQ(Data.size(), Expected.size());
  // Element-wise equality against the oracle proves sortedness AND that
  // the runtime ran every partition exactly once (same multiset).
  EXPECT_TRUE(Data == Expected)
      << "N=" << N << " workers=" << Workers << " grain=" << Grain;
}

TEST(RecursiveQuicksort, SortsSingleWorker) {
  checkSorts(20000, 1, 64, loggedSeed(42));
}

TEST(RecursiveQuicksort, SortsManyWorkers) {
  checkSorts(50000, 4, 256, loggedSeed(42));
}

TEST(RecursiveQuicksort, GrainOneDegradesGracefully) {
  checkSorts(3000, 2, 1, loggedSeed(42));
}

TEST(RecursiveQuicksort, GrainLargerThanInputRunsSequentially) {
  checkSorts(1000, 4, 1u << 20, loggedSeed(42));
}

TEST(RecursiveQuicksort, HandlesDuplicateHeavyInput) {
  std::vector<uint32_t> Data(20000);
  SplitMix64 Rng(loggedSeed(7));
  for (uint32_t &V : Data)
    V = static_cast<uint32_t>(Rng.next() & 7); // 8 distinct values
  std::vector<uint32_t> Expected = Data;
  std::sort(Expected.begin(), Expected.end());
  parallelQuicksort(Data, 4, 32);
  EXPECT_TRUE(Data == Expected);
}

TEST(RecursiveQuicksort, TinyInputsAreNoOps) {
  std::vector<uint32_t> Empty;
  parallelQuicksort(Empty, 4, 16);
  EXPECT_TRUE(Empty.empty());
  std::vector<uint32_t> One = {9};
  parallelQuicksort(One, 4, 16);
  EXPECT_EQ(One, std::vector<uint32_t>({9}));
}

TEST(RecursiveTreeSearch, MatchesSequentialOracle) {
  const uint64_t Seed = loggedSeed(42);
  const TreeSearchResult Oracle = sequentialTreeSearch(14, Seed);
  EXPECT_GT(Oracle.Matches, 0u);

  for (unsigned Workers : {1u, 2u, 4u}) {
    for (unsigned Grain : {1u, 15u, 127u, 1u << 16}) {
      const TreeSearchResult R = parallelTreeSearch(14, Seed, Workers, Grain);
      EXPECT_EQ(R.Matches, Oracle.Matches)
          << "workers=" << Workers << " grain=" << Grain;
      EXPECT_EQ(R.BestScore, Oracle.BestScore);
      EXPECT_EQ(R.BestNode, Oracle.BestNode);
    }
  }
}

TEST(RecursiveTreeSearch, ResultIsScheduleIndependent) {
  const uint64_t Seed = loggedSeed(42);
  const TreeSearchResult A = parallelTreeSearch(12, Seed, 4, 7);
  const TreeSearchResult B = parallelTreeSearch(12, Seed, 3, 63);
  EXPECT_EQ(A.Matches, B.Matches);
  EXPECT_EQ(A.BestScore, B.BestScore);
  EXPECT_EQ(A.BestNode, B.BestNode);
}

TEST(RecursiveTreeSearch, DegenerateDepthsAreEmpty) {
  const TreeSearchResult Zero = parallelTreeSearch(0, 1, 4, 8);
  EXPECT_EQ(Zero.Matches, 0u);
  const TreeSearchResult One = parallelTreeSearch(1, 1, 4, 8);
  const TreeSearchResult OneSeq = sequentialTreeSearch(1, 1);
  EXPECT_EQ(One.BestNode, OneSeq.BestNode); // just the root
}

} // namespace

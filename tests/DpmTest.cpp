//===- tests/DpmTest.cpp - Dynamic Pipeline Mapping tests --------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Dpm.h"

#include "apps/PipelineApps.h"
#include "sim/PipelineSim.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

PipelineGraph twoStageGraph() {
  return makePipelineGraph({{"fast", true}, {"slow", true}});
}

RegionConfig configOf(std::vector<unsigned> Extents) {
  TaskConfig Driver;
  Driver.Extent = 1;
  Driver.AltIndex = 0;
  for (unsigned E : Extents) {
    TaskConfig TC;
    TC.Extent = E;
    Driver.Inner.push_back(TC);
  }
  RegionConfig Config;
  Config.Tasks.push_back(Driver);
  return Config;
}

MechanismContext ctx(unsigned Threads) {
  MechanismContext Ctx;
  Ctx.MaxThreads = Threads;
  return Ctx;
}

TEST(Dpm, GrowsBusiestStageWithFreeBudget) {
  PipelineGraph G = twoStageGraph();
  DpmMechanism M;
  RegionConfig C = configOf({1, 1});
  // slow (4 s) saturates; fast (1 s) mostly idles.
  RegionSnapshot Snap =
      makePipelineSnapshot(G, C, {{1.0, 2, 10}, {4.0, 20, 10}});
  std::optional<RegionConfig> Next = M.reconfigure(*G.Root, Snap, C, ctx(8));
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks.front().Inner[1].Extent, 2u);
  EXPECT_EQ(Next->Tasks.front().Inner[0].Extent, 1u);
}

TEST(Dpm, MovesThreadWhenBudgetExhausted) {
  PipelineGraph G = twoStageGraph();
  DpmMechanism M;
  RegionConfig C = configOf({4, 4});
  // Throughput limited by slow: t = 1; utilizations 0.25 vs 1.0.
  RegionSnapshot Snap =
      makePipelineSnapshot(G, C, {{1.0, 0, 10}, {4.0, 30, 10}});
  std::optional<RegionConfig> Next = M.reconfigure(*G.Root, Snap, C, ctx(8));
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Tasks.front().Inner[0].Extent, 3u);
  EXPECT_EQ(Next->Tasks.front().Inner[1].Extent, 5u);
}

TEST(Dpm, DeadbandStopsChurnWhenBalanced) {
  PipelineGraph G = twoStageGraph();
  DpmMechanism M({/*Deadband=*/0.15});
  RegionConfig C = configOf({2, 6});
  // Balanced: both utilizations within the deadband.
  RegionSnapshot Snap =
      makePipelineSnapshot(G, C, {{1.0, 2, 10}, {3.0, 2, 10}});
  EXPECT_FALSE(M.reconfigure(*G.Root, Snap, C, ctx(8)).has_value());
}

TEST(Dpm, WaitsForMeasurements) {
  PipelineGraph G = twoStageGraph();
  DpmMechanism M;
  RegionConfig C = configOf({1, 1});
  RegionSnapshot Snap =
      makePipelineSnapshot(G, C, {{1.0, 2, 10}, {0.0, 0, 0}});
  EXPECT_FALSE(M.reconfigure(*G.Root, Snap, C, ctx(8)).has_value());
}

TEST(Dpm, ConvergesOnFerretSimulation) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 77;
  Opts.NumItems = 1500;
  PipelineSim Sim(App, Opts);

  DpmMechanism Dpm;
  PipelineSimResult R = Sim.run(&Dpm, {});
  EXPECT_EQ(R.ItemsCompleted, 1500u);
  EXPECT_GE(R.Reconfigurations, 3u);
  // The extract stage ends with the largest allocation.
  size_t Best = 0;
  for (size_t I = 1; I != R.FinalExtents.size(); ++I)
    if (R.FinalExtents[I] > R.FinalExtents[Best])
      Best = I;
  EXPECT_EQ(Best, 2u);
  // And DPM lands in the same ballpark as the static even split or
  // better (it is a weaker policy than TBF but far better than naive).
  const double Even = Sim.run(nullptr, {1, 6, 6, 5, 5, 1}).Throughput;
  EXPECT_GT(R.Throughput, Even);
}

} // namespace

//===- core/TaskTree.h - Recursive task-tree engine -----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine behind ParKind::Tree regions: a recursive
/// divide-and-conquer runtime over the work-stealing StealScheduler.
///
/// Work items are half-open index ranges [Lo, Hi) packed into one
/// uint64_t (two uint32 halves), so they flow through the lock-free
/// ChaseLevDeque without allocation. The engine distinguishes two
/// recursion styles:
///
///   * auto-split (the default): the engine halves every acquired range
///     until it is at most the configured grain, spawning the upper half
///     each time, then runs the body once on the remaining leaf — the
///     body is a pure leaf function and never recurses itself;
///   * app-split (AutoSplit off): the body receives the full range and
///     forks subranges explicitly through TreeContext::spawn, consulting
///     TreeContext::grain() as its own stop threshold (quicksort-style
///     recursion where split points are data-dependent).
///
/// External roots enter through a central WorkQueue (injection stays
/// central, per the queue subsystem's contract); everything spawned from
/// inside tasks goes through the deques. Termination uses a single
/// outstanding-task counter: incremented before any push, decremented
/// after the body runs, so "injection closed and zero outstanding" is a
/// race-free done() — no task can be lost across reconfiguration epochs
/// because the scheduler is sized once (MaxWorkers) and thieves sweep
/// every deque, including those of retired workers.
///
/// The engine is deliberately executive-agnostic: DoPE replicas drive it
/// through a generated functor (core/Builders.h, TaskTreeBuilder), and
/// benchmarks drive it with raw threads. Successful steals are traced as
/// TraceKind::Steal; windowed steal counters feed the StealRate feature
/// that the GrainAdapt mechanism consumes.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_TASKTREE_H
#define DOPE_CORE_TASKTREE_H

#include "queue/StealScheduler.h"
#include "queue/WorkQueue.h"
#include "support/Clock.h"
#include "support/Compiler.h"
#include "support/ThreadAnnotations.h"
#include "support/Trace.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace dope {

class TreeEngine;

/// Per-invocation view handed to a tree body: the worker identity, the
/// grain in force, and the fork primitive.
class TreeContext {
public:
  /// Forks the half-open range [Lo, Hi) as a new task on this worker's
  /// deque (thieves may take it). Empty ranges are ignored.
  void spawn(uint64_t Lo, uint64_t Hi);

  /// The grain size the region currently runs at — the split-stop
  /// threshold below which work should execute sequentially.
  unsigned grain() const { return Grain; }

  /// The worker index executing this body, in [0, maxWorkers()).
  unsigned worker() const { return Worker; }

private:
  friend class TreeEngine;
  TreeContext(TreeEngine &Engine, unsigned Worker, unsigned Grain)
      : Engine(Engine), Worker(Worker), Grain(Grain) {}

  TreeEngine &Engine;
  unsigned Worker;
  unsigned Grain;
};

/// The body of a tree region: processes the half-open range [Lo, Hi),
/// optionally forking subranges through the context.
using TreeBodyFn = std::function<void(TreeContext &, uint64_t Lo, uint64_t Hi)>;

/// What TreeEngine::runOne did for the calling worker.
enum class TreeStep : uint8_t {
  /// A task was acquired and executed.
  Ran,
  /// Nothing was runnable, but the computation is still open — the
  /// caller should park (parkIdle) or poll again.
  Idle,
  /// Injection is closed and every task has executed: the computation
  /// is complete.
  Done,
};

/// The engine. Create once (shared_ptr, sized MaxWorkers) and keep it
/// across reconfiguration epochs: extent changes only alter how many
/// workers *drive* it, never its structure, so work stranded in a
/// retired worker's deque drains through steals.
class TreeEngine : public std::enable_shared_from_this<TreeEngine> {
public:
  struct Options {
    /// Worker-index space (and deque count). Size to the executive's
    /// MaxThreads: a region extent may never exceed it.
    unsigned MaxWorkers = 1;
    /// Seed for the scheduler's victim-selection RNGs.
    uint64_t Seed = 0x9e3779b9ull;
    /// Engine-side range splitting (see file comment). Off for bodies
    /// that fork explicitly via TreeContext::spawn.
    bool AutoSplit = true;
    /// Name stamped on this engine's trace records.
    std::string Name = "tree";
  };

  explicit TreeEngine(Options Opts)
      : Opts(std::move(Opts)),
        Sched(this->Opts.MaxWorkers, this->Opts.Seed) {}

  TreeEngine(const TreeEngine &) = delete;
  TreeEngine &operator=(const TreeEngine &) = delete;

  /// Installs the body every task runs. Must be set before any work is
  /// submitted; not thread-safe against running workers.
  void setBody(TreeBodyFn Fn) { Body = std::move(Fn); }

  /// Points trace emission at \p T (null disables). Safe to flip while
  /// workers run.
  void setTracer(Tracer *T) { Trace.store(T, std::memory_order_release); }

  unsigned maxWorkers() const { return Sched.maxWorkers(); }
  const std::string &name() const { return Opts.Name; }

  /// Submits a root range through the central injection queue. Returns
  /// false when injection is already closed (the range is dropped).
  bool submit(uint64_t Lo, uint64_t Hi) {
    if (Lo >= Hi)
      return true;
    Outstanding.fetch_add(1, std::memory_order_relaxed); // dope-lint: mo-proof(design-16-termination)
    if (!Injection.push(pack(Lo, Hi))) {
      Outstanding.fetch_sub(1, std::memory_order_relaxed); // dope-lint: mo-proof(design-16-termination)
      return false;
    }
    Sched.wakeAll();
    return true;
  }

  /// Closes injection: once outstanding work drains, done() turns true
  /// and idle workers see TreeStep::Done.
  void close() {
    Injection.close();
    Sched.wakeAll();
  }

  /// Reopens injection for another wave of roots (InitCB path).
  void reopen() { Injection.reopen(); }

  /// True when injection is closed and every submitted or spawned task
  /// has finished executing.
  DOPE_HOT bool done() const {
    return Injection.closed() &&
           Outstanding.load(std::memory_order_acquire) == 0;
  }

  /// Tasks submitted or spawned but not yet finished (includes tasks
  /// currently executing) — the region's load signal.
  DOPE_HOT size_t outstandingTasks() const {
    const int64_t N = Outstanding.load(std::memory_order_relaxed); // dope-lint: mo-proof(design-16-termination)
    return N > 0 ? static_cast<size_t>(N) : 0;
  }

  /// Acquires one task for worker \p W without executing it: own deque,
  /// then steals, then the injection queue. \p StolenFrom reports where
  /// a deque item came from (== W when popped locally). Exposed so
  /// callers can interleave an executive suspend check between acquire
  /// and execute.
  DOPE_HOT bool acquire(unsigned W, uint64_t &Item, unsigned &StolenFrom) {
    if (Sched.tryAcquire(W, Item, &StolenFrom))
      return true;
    if (std::optional<uint64_t> Root = Injection.tryPop()) {
      Item = *Root;
      StolenFrom = W;
      return true;
    }
    return false;
  }

  /// Returns an acquired-but-unexecuted task to worker \p W's deque
  /// (suspension path). The outstanding count still covers it, so no
  /// task is lost across the reconfiguration.
  void giveBack(unsigned W, uint64_t Item) { Sched.spawn(W, Item); }

  /// Executes one acquired task on worker \p W at grain \p Grain:
  /// auto-splits if configured, runs the body, settles the outstanding
  /// count, and traces the steal when \p StolenFrom differs from \p W.
  DOPE_HOT void execute(unsigned W, unsigned Grain, uint64_t Item,
                        unsigned StolenFrom) {
    assert(Body && "tree engine needs a body before execution");
    if (StolenFrom != W) {
      if (Tracer *Tr = Trace.load(std::memory_order_acquire))
        Tr->record(TraceKind::Steal, Opts.Name, W, StolenFrom);
    }
    uint64_t Lo = unpackLo(Item);
    uint64_t Hi = unpackHi(Item);
    const uint64_t G = Grain == 0 ? 1 : Grain;
    if (Opts.AutoSplit) {
      // Halve until at most one grain remains; spawned upper halves are
      // the biggest subtrees, which is exactly what thieves want.
      while (Hi - Lo > G) {
        const uint64_t Mid = Lo + (Hi - Lo) / 2;
        spawnRange(W, Mid, Hi);
        Hi = Mid;
      }
    }
    TreeContext Ctx(*this, W, Grain);
    Body(Ctx, Lo, Hi);
    Sched.noteTaskRun(W);
    finishTask();
  }

  /// Convenience: acquire + execute. Returns what happened so callers
  /// can park on Idle and exit on Done.
  DOPE_HOT TreeStep runOne(unsigned W, unsigned Grain) {
    uint64_t Item;
    unsigned From;
    if (!acquire(W, Item, From))
      return done() ? TreeStep::Done : TreeStep::Idle;
    execute(W, Grain, Item, From);
    return TreeStep::Ran;
  }

  /// Parks worker \p W until work appears, \p Predicate turns true, or
  /// \p MaxWait elapses. The bounded wait keeps DoPE replicas responsive
  /// to suspend flags.
  template <typename Pred>
  void parkIdle(Pred Predicate, std::chrono::microseconds MaxWait) {
    Sched.parkUntilWork(
        [&] { return Predicate() || done() || !Injection.empty(); }, MaxWait);
  }

  /// Wakes every parked worker (suspension, shutdown).
  void wakeAll() { Sched.wakeAll(); }

  /// Drives worker \p W until the computation completes: the benchmark /
  /// raw-thread entry point (DoPE replicas use the generated functor
  /// instead, which interleaves begin/end).
  void runWorker(unsigned W, unsigned Grain) {
    for (;;) {
      switch (runOne(W, Grain)) {
      case TreeStep::Ran:
        break;
      case TreeStep::Idle:
        parkIdle([] { return false; }, std::chrono::microseconds(200));
        break;
      case TreeStep::Done:
        return;
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Monitoring features
  //===------------------------------------------------------------------===//

  /// Successful steals per second since the previous sample — the
  /// StealRate feature. Cold path (one small mutex), called from the
  /// executive's monitoring loop, never from workers.
  double stealRateSample() {
    std::lock_guard<std::mutex> Lock(SampleMutex);
    const double Now = monotonicSeconds();
    const uint64_t Steals = Sched.stealsSucceeded();
    double Rate = 0.0;
    if (LastSampleTime > 0.0 && Now > LastSampleTime)
      Rate = static_cast<double>(Steals - LastSampleSteals) /
             (Now - LastSampleTime);
    LastSampleTime = Now;
    LastSampleSteals = Steals;
    return Rate;
  }

  uint64_t tasksExecuted() const { return Sched.tasksRun(); }
  uint64_t stealsAttempted() const { return Sched.stealsAttempted(); }
  uint64_t stealsSucceeded() const { return Sched.stealsSucceeded(); }

  /// The underlying scheduler (tests, benchmarks).
  StealScheduler<uint64_t> &scheduler() { return Sched; }

  //===------------------------------------------------------------------===//
  // Range packing
  //===------------------------------------------------------------------===//

  /// Ranges are [Lo, Hi) with both bounds < 2^32, packed Hi:Lo so they
  /// fit the deque's 8-byte cell.
  static constexpr uint64_t MaxIndex = (uint64_t(1) << 32) - 1;
  static uint64_t pack(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && Hi <= MaxIndex && "range out of packable bounds");
    return (Hi << 32) | Lo;
  }
  static uint64_t unpackLo(uint64_t Item) { return Item & 0xffffffffull; }
  static uint64_t unpackHi(uint64_t Item) { return Item >> 32; }

private:
  friend class TreeContext;

  /// Fork from inside a task: count first, then publish.
  DOPE_HOT void spawnRange(unsigned W, uint64_t Lo, uint64_t Hi) {
    if (Lo >= Hi)
      return;
    Outstanding.fetch_add(1, std::memory_order_relaxed); // dope-lint: mo-proof(design-16-termination)
    Sched.spawn(W, pack(Lo, Hi));
  }

  /// One task's body finished: release its outstanding count, and wake
  /// sleepers when that was the last one (they must observe Done).
  DOPE_HOT void finishTask() {
    if (Outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        Injection.closed())
      Sched.wakeAll();
  }

  Options Opts;
  TreeBodyFn Body;
  StealScheduler<uint64_t> Sched;
  WorkQueue<uint64_t> Injection;
  std::atomic<int64_t> Outstanding{0};
  std::atomic<Tracer *> Trace{nullptr};

  std::mutex SampleMutex;
  double LastSampleTime DOPE_GUARDED_BY(SampleMutex) = 0.0;
  uint64_t LastSampleSteals DOPE_GUARDED_BY(SampleMutex) = 0;
};

inline void TreeContext::spawn(uint64_t Lo, uint64_t Hi) {
  Engine.spawnRange(Worker, Lo, Hi);
}

} // namespace dope

#endif // DOPE_CORE_TASKTREE_H

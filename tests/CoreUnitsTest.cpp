//===- tests/CoreUnitsTest.cpp - FeatureRegistry/ThreadPool/Metrics tests --===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/FeatureRegistry.h"
#include "core/Monitor.h"
#include "core/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace dope;

namespace {

TEST(FeatureRegistry, RegisterAndQuery) {
  FeatureRegistry R;
  R.registerFeature("SystemPower", [] { return 540.0; });
  EXPECT_TRUE(R.hasFeature("SystemPower"));
  auto Value = R.getValue("SystemPower", 0.0);
  ASSERT_TRUE(Value.has_value());
  EXPECT_DOUBLE_EQ(*Value, 540.0);
}

TEST(FeatureRegistry, UnknownFeatureIsNullopt) {
  FeatureRegistry R;
  EXPECT_FALSE(R.getValue("nope", 0.0).has_value());
  EXPECT_FALSE(R.hasFeature("nope"));
}

TEST(FeatureRegistry, RateLimitCachesValue) {
  FeatureRegistry R;
  int Calls = 0;
  // 13 samples/minute, like the paper's PDU.
  R.registerFeature(
      "SystemPower",
      [&] {
        ++Calls;
        return 100.0 + Calls;
      },
      60.0 / 13.0);
  EXPECT_DOUBLE_EQ(*R.getValue("SystemPower", 0.0), 101.0);
  // Within the sampling interval: cached.
  EXPECT_DOUBLE_EQ(*R.getValue("SystemPower", 1.0), 101.0);
  EXPECT_EQ(Calls, 1);
  // After the interval: fresh sample.
  EXPECT_DOUBLE_EQ(*R.getValue("SystemPower", 5.0), 102.0);
  EXPECT_EQ(Calls, 2);
}

TEST(FeatureRegistry, ReregisterReplacesCallback) {
  FeatureRegistry R;
  R.registerFeature("f", [] { return 1.0; });
  R.registerFeature("f", [] { return 2.0; });
  EXPECT_DOUBLE_EQ(*R.getValue("f", 0.0), 2.0);
}

TEST(FeatureRegistry, Unregister) {
  FeatureRegistry R;
  R.registerFeature("f", [] { return 1.0; });
  R.unregisterFeature("f");
  EXPECT_FALSE(R.hasFeature("f"));
  R.unregisterFeature("f"); // idempotent
}

TEST(ThreadPool, RunsSubmittedJobs) {
  std::atomic<int> Count{0};
  std::mutex M;
  std::condition_variable Cv;
  ThreadPool Pool;
  // Notify under the mutex: the waiter can then only observe the final
  // count after the notifier released it, so the condition variable is
  // never destroyed mid-notify and the wakeup cannot be lost.
  for (int I = 0; I != 20; ++I)
    Pool.submit([&] {
      std::lock_guard<std::mutex> Lock(M);
      if (Count.fetch_add(1) + 1 == 20)
        Cv.notify_one();
    });
  std::unique_lock<std::mutex> Lock(M);
  Cv.wait(Lock, [&] { return Count.load() == 20; });
  EXPECT_EQ(Count.load(), 20);
}

TEST(ThreadPool, ReusesIdleThreads) {
  ThreadPool Pool;
  std::atomic<int> Count{0};
  auto RunBatch = [&](int N) {
    std::mutex M;
    std::condition_variable Cv;
    std::atomic<int> Batch{0};
    for (int I = 0; I != N; ++I)
      Pool.submit([&] {
        Count.fetch_add(1);
        std::lock_guard<std::mutex> Lock(M);
        if (Batch.fetch_add(1) + 1 == N)
          Cv.notify_one();
      });
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Batch.load() == N; });
  };
  RunBatch(4);
  const size_t AfterFirst = Pool.threadsCreated();
  // Give workers a moment to park.
  while (Pool.idleThreads() < AfterFirst)
    std::this_thread::yield();
  RunBatch(4);
  // Sequential batches reuse parked workers instead of spawning anew.
  EXPECT_LE(Pool.threadsCreated(), AfterFirst + 1);
  EXPECT_EQ(Count.load(), 8);
}

TEST(ThreadPool, BurstOfBlockingJobsAllStart) {
  // Regression test: DoPE jobs are long-running task loops, so every
  // submitted job must get its own thread even when several jobs are
  // submitted in a burst while a worker is idle. The old spawn condition
  // (spawn only when no worker is idle) parked a burst behind a single
  // idle worker and deadlocked the region.
  //
  // The burst jobs block on AllStarted past the main thread's wait, so
  // their shared state must outlive the pool: declare it first and let
  // the pool's joining destructor run before it is torn down.
  constexpr int Burst = 4;
  std::atomic<int> Started{0};
  std::mutex M;
  std::condition_variable AllStarted;
  ThreadPool Pool;

  // Park one idle worker.
  {
    std::mutex ParkM;
    std::condition_variable ParkCv;
    std::atomic<bool> Ran{false};
    Pool.submit([&] {
      std::lock_guard<std::mutex> Lock(ParkM);
      Ran.store(true);
      ParkCv.notify_one();
    });
    std::unique_lock<std::mutex> Lock(ParkM);
    ParkCv.wait(Lock, [&] { return Ran.load(); });
    while (Pool.idleThreads() == 0)
      std::this_thread::yield();
  }

  // Burst-submit 4 jobs that all block until every one of them started.
  for (int I = 0; I != Burst; ++I)
    Pool.submit([&] {
      std::unique_lock<std::mutex> Lock(M);
      if (Started.fetch_add(1) + 1 == Burst)
        AllStarted.notify_all();
      AllStarted.wait(Lock, [&] { return Started.load() == Burst; });
    });

  std::unique_lock<std::mutex> Lock(M);
  const bool Ok = AllStarted.wait_for(
      Lock, std::chrono::seconds(30), [&] { return Started.load() == Burst; });
  EXPECT_TRUE(Ok) << "only " << Started.load() << "/" << Burst
                  << " burst jobs started";
  AllStarted.notify_all();
}

TEST(ThreadPool, EscapedExceptionsHitErrorHookNotTerminate) {
  // Failure domain: a job that lets an exception escape must not take the
  // process down (an escaped exception in a std::thread calls
  // std::terminate). The pool catches it, counts it, and reports it
  // through the error hook; the worker survives to run later jobs.
  ThreadPool Pool;
  std::mutex M;
  std::condition_variable Cv;
  std::vector<std::string> Reports;
  Pool.setErrorHook([&](const std::string &What) {
    std::lock_guard<std::mutex> Lock(M);
    Reports.push_back(What);
    Cv.notify_one();
  });

  Pool.submit([] { throw std::runtime_error("job exploded"); });
  Pool.submit([] { throw 42; }); // non-standard exception
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Reports.size() == 2; });
  }
  EXPECT_EQ(Pool.escapedExceptions(), 2u);
  {
    std::lock_guard<std::mutex> Lock(M);
    EXPECT_NE(std::find(Reports.begin(), Reports.end(), "job exploded"),
              Reports.end());
  }

  // The surviving workers still run jobs.
  std::atomic<bool> Ran{false};
  Pool.submit([&] {
    std::lock_guard<std::mutex> Lock(M);
    Ran.store(true);
    Cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Ran.load(); });
  }
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPool, NestedSubmission) {
  std::atomic<int> Count{0};
  std::mutex M;
  std::condition_variable Cv;
  ThreadPool Pool;
  Pool.submit([&] {
    for (int I = 0; I != 5; ++I)
      Pool.submit([&] {
        std::lock_guard<std::mutex> Lock(M);
        if (Count.fetch_add(1) + 1 == 5)
          Cv.notify_one();
      });
  });
  std::unique_lock<std::mutex> Lock(M);
  Cv.wait(Lock, [&] { return Count.load() == 5; });
  EXPECT_EQ(Count.load(), 5);
}

TEST(TaskMetrics, RecordsExecTimeEma) {
  TaskMetrics M(0.5);
  M.recordExecTime(1.0);
  EXPECT_DOUBLE_EQ(M.execTime(), 1.0);
  M.recordExecTime(3.0);
  EXPECT_DOUBLE_EQ(M.execTime(), 2.0);
  EXPECT_EQ(M.invocations(), 2u);
  EXPECT_DOUBLE_EQ(M.totalBusySeconds(), 4.0);
}

TEST(TaskMetrics, RecordsLoad) {
  TaskMetrics M;
  M.recordLoad(10.0);
  M.recordLoad(20.0);
  EXPECT_DOUBLE_EQ(M.lastLoad(), 20.0);
  EXPECT_GT(M.load(), 10.0);
  EXPECT_LT(M.load(), 20.0);
}

TEST(TaskMetrics, ResetClears) {
  TaskMetrics M;
  M.recordExecTime(1.0);
  M.recordLoad(5.0);
  M.reset();
  EXPECT_DOUBLE_EQ(M.execTime(), 0.0);
  EXPECT_DOUBLE_EQ(M.load(), 0.0);
  EXPECT_EQ(M.invocations(), 0u);
}

} // namespace

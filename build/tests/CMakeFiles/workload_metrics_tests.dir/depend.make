# Empty dependencies file for workload_metrics_tests.
# This may be replaced when dependencies are built.

//===- analysis/TaskDag.h - Spawn DAG reconstruction -----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline reconstruction of the task-instance spawn DAG from a decision
/// trace. TaskBegin records carry their spawner's identity (B = spawner
/// instance id, Detail = spawner task name; see support/Trace.h), so the
/// DAG — who spawned whom, when each instance ran, how long it took — is
/// recoverable from the JSONL trace alone, with no access to the run
/// that produced it. This is the substrate of the causal what-if
/// profiler: CriticalPath walks it for work/span/wait attribution and
/// WhatIf projects hypothetical DoP changes over it.
///
/// Inputs are deliberately forgiving: traces are read through the
/// lenient JSONL reader (a crash mid-write leaves a torn final line),
/// and construction works on the canonical record order, so a sharded
/// run's post-merge trace and a single-threaded run's trace yield the
/// same DAG.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ANALYSIS_TASKDAG_H
#define DOPE_ANALYSIS_TASKDAG_H

#include "support/Trace.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dope {

/// One task instance recovered from a TaskBegin (and, when the run ended
/// cleanly, its matching TaskEnd).
struct TaskInstance {
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Task name (TaskBegin Name).
  std::string Task;
  /// Instance id (TaskBegin A): replica index for native regions, the
  /// item/transaction id for simulators.
  uint64_t Id = 0;
  double BeginTime = 0.0;
  /// Negative while no TaskEnd matched (instance still open when the
  /// trace ended — e.g. a torn tail).
  double EndTime = -1.0;
  /// Busy seconds reported by TaskEnd (B); 0 while open.
  double Elapsed = 0.0;
  /// Index of the spawning instance in TaskDag::instances(); npos for
  /// roots (empty Detail) and for spawners the trace never recorded.
  size_t Parent = npos;
  /// Indices of instances this one spawned.
  std::vector<size_t> Children;

  bool completed() const { return EndTime >= BeginTime; }
};

/// The reconstructed spawn DAG (a forest: every instance has at most one
/// spawner).
class TaskDag {
public:
  /// Builds the DAG from trace records. The records are canonicalized
  /// internally (sorted into the thread-independent total order), so any
  /// permutation of the same multiset — a different shard count, a
  /// merge, a re-serialization — builds the same DAG. Non-task records
  /// are ignored.
  static TaskDag build(std::vector<TraceRecord> Records);

  /// Reads a JSONL trace leniently (torn/corrupt lines are skipped, not
  /// fatal) and builds the DAG. \p Stats, when non-null, reports how
  /// many lines were parsed and skipped.
  static TaskDag fromJsonl(std::istream &IS, TraceReadStats *Stats = nullptr);

  /// All instances, in canonical trace order (parents precede children).
  const std::vector<TaskInstance> &instances() const { return Instances; }

  /// Indices of instances with no recorded spawner.
  const std::vector<size_t> &roots() const { return Roots; }

  /// Distinct task names in first-appearance order — the stage order for
  /// pipeline traces, since stage 0 begins first.
  const std::vector<std::string> &taskNames() const { return Names; }

  size_t size() const { return Instances.size(); }
  bool empty() const { return Instances.empty(); }

  /// Instances with a matched TaskEnd.
  size_t completedCount() const { return Completed; }
  /// Instances still open when the trace ended.
  size_t openCount() const { return Instances.size() - Completed; }

private:
  std::vector<TaskInstance> Instances;
  std::vector<size_t> Roots;
  std::vector<std::string> Names;
  size_t Completed = 0;
};

} // namespace dope

#endif // DOPE_ANALYSIS_TASKDAG_H

//===- sim/ColocationSim.cpp - Multi-tenant platform simulator -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ColocationSim.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include "support/RingDeque.h"

using namespace dope;

const char *dope::toString(ColocationPolicy Policy) {
  switch (Policy) {
  case ColocationPolicy::Arbiter:
    return "arbiter";
  case ColocationPolicy::StaticSplit:
    return "static-split";
  case ColocationPolicy::Oversubscribed:
    return "oversubscribed";
  }
  return "?";
}

namespace {

/// Pipeline throughput at \p K threads: greedy replication — grow the
/// bottleneck parallel stage until threads run out; below one thread
/// per stage the pipeline time-multiplexes and throughput is
/// CPU-bound at K / sum(s_i).
double pipelineCapacity(const PipelineAppModel &M, unsigned K) {
  if (K == 0 || M.Stages.empty())
    return 0.0;
  double TotalService = 0.0;
  for (const PipelineStageSpec &S : M.Stages)
    TotalService += S.ServiceSeconds;
  if (TotalService <= 0.0)
    return 0.0;
  const unsigned NumStages = static_cast<unsigned>(M.Stages.size());
  if (K < NumStages) {
    // Time-multiplexed: CPU-bound at K / sum(s_i), but never above what
    // the one-replica-per-stage pipeline sustains — keeps capacity
    // monotone across the K == NumStages boundary.
    double MinStageRate = std::numeric_limits<double>::infinity();
    for (const PipelineStageSpec &S : M.Stages)
      MinStageRate = std::min(MinStageRate, 1.0 / S.ServiceSeconds);
    return std::min(static_cast<double>(K) / TotalService, MinStageRate);
  }

  std::vector<unsigned> Extent(M.Stages.size(), 1);
  for (unsigned Spare = K - NumStages; Spare != 0; --Spare) {
    size_t Bottleneck = M.Stages.size();
    double WorstRate = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I != M.Stages.size(); ++I) {
      if (!M.Stages[I].Parallel)
        continue;
      const double Rate = Extent[I] / M.Stages[I].ServiceSeconds;
      if (Rate < WorstRate) {
        WorstRate = Rate;
        Bottleneck = I;
      }
    }
    if (Bottleneck == M.Stages.size())
      break; // all stages sequential; extra threads are useless
    ++Extent[Bottleneck];
  }
  double Rate = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I != M.Stages.size(); ++I)
    Rate = std::min(Rate, Extent[I] / M.Stages[I].ServiceSeconds);
  return Rate;
}

/// Nested-parallel server throughput at \p K threads: pick the inner
/// extent m maximizing (K / m) * S(m) concurrent streams of 1/T1 each.
double nestCapacity(const NestAppModel &M, unsigned K, unsigned *BestM) {
  if (K == 0 || M.SeqServiceSeconds <= 0.0)
    return 0.0;
  double Best = 0.0;
  unsigned BestExtent = 1;
  for (unsigned Mi = 1; Mi <= K; ++Mi) {
    const double Streams = static_cast<double>(K) / Mi;
    const double Rate =
        Streams * M.Curve.speedup(Mi) / M.SeqServiceSeconds;
    if (Rate > Best) {
      Best = Rate;
      BestExtent = Mi;
    }
  }
  if (BestM)
    *BestM = BestExtent;
  return Best;
}

struct TenantRuntime {
  const ColocationTenantSpec *Spec = nullptr;
  TenantId Id = 0;
  unsigned Granted = 0;
  double ServiceCredit = 0.0;
  double PausedUntil = 0.0;
  RingDeque<double> Queue; // arrival timestamps
  Rng Arrivals{1};

  // Per-epoch telemetry window.
  uint64_t WindowArrived = 0;
  uint64_t WindowCompleted = 0;
  std::vector<double> WindowResponses;

  TenantStats Stats;

  // Cached per-(policy, lease) capacity/latency.
  double Capacity = 0.0;
  double Latency = 0.0;
};

double percentileOf(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  const double Pos = Q * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(Pos);
  const size_t Hi = std::min(Lo + 1, Values.size() - 1);
  const double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

} // namespace

double ColocationSim::capacity(const ColocationTenantSpec &Spec,
                               unsigned Threads) {
  if (Spec.Kind == ColocationTenantSpec::AppKind::Pipeline)
    return pipelineCapacity(Spec.Pipeline, Threads);
  return nestCapacity(Spec.Nest, Threads, nullptr);
}

double ColocationSim::serviceLatency(const ColocationTenantSpec &Spec,
                                     unsigned Threads) {
  if (Spec.Kind == ColocationTenantSpec::AppKind::Pipeline) {
    double Total = 0.0;
    for (const PipelineStageSpec &S : Spec.Pipeline.Stages)
      Total += S.ServiceSeconds;
    return Total;
  }
  unsigned BestM = 1;
  nestCapacity(Spec.Nest, std::max(1u, Threads), &BestM);
  return Spec.Nest.SeqServiceSeconds / Spec.Nest.Curve.speedup(BestM);
}

ColocationSim::ColocationSim(std::vector<ColocationTenantSpec> Tenants,
                             ColocationSimOptions Options)
    : Specs(std::move(Tenants)), Opts(std::move(Options)) {
  assert(!Specs.empty() && "colocation needs at least one tenant");
  assert(Opts.Contexts >= Specs.size() && "a thread per tenant, minimum");
  assert(Opts.StepSeconds > 0.0 && Opts.DurationSeconds > 0.0);
}

ColocationSimResult ColocationSim::run() {
  const size_t N = Specs.size();
  Tracer *Trace = Opts.TraceSink;

  ArbiterOptions ArbOpts = Opts.Arbiter;
  ArbOpts.TotalThreads = Opts.Contexts;
  ArbOpts.Trace = Trace;
  Arbiter Arb(ArbOpts);

  // Contention model for the oversubscribed baseline: every tenant
  // spawns for the whole machine, so N * Contexts runnable threads
  // compete for Contexts.
  const double OversubFactor =
      1.0 + Opts.OversubPenalty * (static_cast<double>(N) - 1.0);

  std::vector<TenantRuntime> Run(N);
  for (size_t I = 0; I != N; ++I) {
    TenantRuntime &T = Run[I];
    T.Spec = &Specs[I];
    T.Arrivals = Rng(Opts.Seed + 0x9e37 * (I + 1));
    T.Stats.Name = Specs[I].Tenant.Name;
    T.Stats.LatencySensitive =
        Specs[I].Tenant.Goal == TenantGoal::ResponseTime;
    T.Stats.Weight = Specs[I].Tenant.Weight;
    T.Stats.SloSeconds = Specs[I].Tenant.SloSeconds;

    switch (Opts.Policy) {
    case ColocationPolicy::Arbiter:
      T.Id = Arb.addTenant(Specs[I].Tenant, 0.0);
      T.Granted = Arb.leaseOf(T.Id).Threads;
      break;
    case ColocationPolicy::StaticSplit: {
      const unsigned Equal =
          std::max(1u, Opts.Contexts / static_cast<unsigned>(N));
      T.Granted = I < Opts.StaticShares.size() && Opts.StaticShares[I] > 0
                      ? Opts.StaticShares[I]
                      : Equal;
      break;
    }
    case ColocationPolicy::Oversubscribed:
      // Fair-share slice of the thrashing machine.
      T.Granted = std::max(1u, Opts.Contexts / static_cast<unsigned>(N));
      break;
    }

    T.Capacity = capacity(Specs[I], T.Granted);
    T.Latency = serviceLatency(Specs[I], T.Granted);
    if (Opts.Policy == ColocationPolicy::Oversubscribed) {
      T.Capacity /= OversubFactor;
      T.Latency *= static_cast<double>(N) * OversubFactor;
    }
  }

  const double Dt = Opts.StepSeconds;
  const double Epoch = ArbOpts.EpochSeconds;
  double NextEpoch = Epoch;
  uint64_t TotalLeaseChanges = 0;

  for (double Now = 0.0; Now < Opts.DurationSeconds - 1e-12; Now += Dt) {
    const double StepEnd = Now + Dt;
    const bool Measured = StepEnd > Opts.WarmupSeconds;

    for (TenantRuntime &T : Run) {
      const ColocationTenantSpec &S = *T.Spec;

      // Arrivals over this step.
      const double Load = S.ArrivalSchedule.phaseCount() == 0
                              ? 1.0
                              : S.ArrivalSchedule.loadFactorAt(Now);
      const double Rate = S.ArrivalRate * Load;
      const uint64_t Arrived =
          Rate > 0.0 ? T.Arrivals.poisson(Rate * Dt) : 0;
      for (uint64_t A = 0; A != Arrived; ++A) {
        ++T.WindowArrived;
        if (Measured)
          ++T.Stats.Arrived;
        if (S.AdmissionLimit != 0 && T.Queue.size() >= S.AdmissionLimit) {
          if (Measured)
            ++T.Stats.Shed;
          continue;
        }
        T.Queue.push_back(Now);
      }

      // Service: fluid capacity accrues credit; whole items complete.
      const double Cap = StepEnd <= T.PausedUntil ? 0.0 : T.Capacity;
      T.ServiceCredit += Cap * Dt;
      while (T.ServiceCredit >= 1.0 && !T.Queue.empty()) {
        T.ServiceCredit -= 1.0;
        const double Arrival = T.Queue.front();
        T.Queue.pop_front();
        const double Completion = StepEnd + T.Latency;
        const double Response = Completion - Arrival;
        ++T.WindowCompleted;
        T.WindowResponses.push_back(Response);
        if (Measured) {
          ++T.Stats.Completed;
          T.Stats.Responses.recordTransaction(Arrival, StepEnd, Completion);
          if (T.Stats.SloSeconds > 0.0 && Response <= T.Stats.SloSeconds)
            ++T.Stats.SloHits;
          else if (T.Stats.SloSeconds <= 0.0)
            ++T.Stats.SloHits; // no SLO: every completion counts
        }
      }
      if (T.Queue.empty())
        T.ServiceCredit = std::min(T.ServiceCredit, 1.0);

      T.Stats.ThreadSeconds += T.Granted * Dt;
    }

    // Epoch boundary: telemetry in, leases out.
    if (StepEnd + 1e-12 >= NextEpoch) {
      for (TenantRuntime &T : Run) {
        if (Opts.Policy == ColocationPolicy::Arbiter) {
          TenantSample Sample;
          Sample.Time = NextEpoch;
          Sample.GrantedThreads = T.Granted;
          Sample.Throughput =
              static_cast<double>(T.WindowCompleted) / Epoch;
          Sample.OfferedRate = static_cast<double>(T.WindowArrived) / Epoch;
          Sample.P95ResponseSeconds = percentileOf(T.WindowResponses, 0.95);
          Sample.QueueDepth = static_cast<double>(T.Queue.size());
          Arb.reportSample(T.Id, Sample);
        }
        if (Trace) {
          Trace->recordAt(NextEpoch, TraceKind::Counter,
                          "threads:" + T.Stats.Name,
                          static_cast<double>(T.Granted));
          Trace->recordAt(NextEpoch, TraceKind::Counter,
                          "queue:" + T.Stats.Name,
                          static_cast<double>(T.Queue.size()));
        }
        T.WindowArrived = 0;
        T.WindowCompleted = 0;
        T.WindowResponses.clear();
      }

      if (Opts.Policy == ColocationPolicy::Arbiter) {
        const std::vector<LeaseChange> Changes = Arb.rebalance(NextEpoch);
        TotalLeaseChanges += Changes.size();
        for (const LeaseChange &C : Changes) {
          for (TenantRuntime &T : Run) {
            if (T.Stats.Name != C.Tenant)
              continue;
            T.Granted = C.NewThreads;
            T.PausedUntil = NextEpoch + Opts.ReconfigPauseSeconds;
            ++T.Stats.LeaseChanges;
            T.Capacity = capacity(*T.Spec, T.Granted);
            T.Latency = serviceLatency(*T.Spec, T.Granted);
          }
        }
      }
      NextEpoch += Epoch;
    }
  }

  ColocationSimResult Result;
  Result.DurationSeconds = Opts.DurationSeconds;
  Result.LeaseChanges = TotalLeaseChanges;
  for (TenantRuntime &T : Run)
    Result.Tenants.push_back(std::move(T.Stats));
  Result.Fairness = summarizeTenants(Result.Tenants);
  return Result;
}

file(REMOVE_RECURSE
  "libdope_core.a"
)

//===- arbiter/ComplianceMonitor.cpp - Misbehaving-tenant containment -----===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arbiter/ComplianceMonitor.h"

#include <algorithm>

using namespace dope;

const char *dope::toString(ComplianceViolation V) {
  switch (V) {
  case ComplianceViolation::EnvelopeExceeded:
    return "envelope-exceeded";
  case ComplianceViolation::NonMonotoneClock:
    return "non-monotone-clock";
  case ComplianceViolation::FutureClock:
    return "future-clock";
  case ComplianceViolation::ImplausibleThroughput:
    return "implausible-throughput";
  }
  return "unknown";
}

const char *dope::toString(CompliancePenalty P) {
  switch (P) {
  case CompliancePenalty::None:
    return "none";
  case CompliancePenalty::BidDiscount:
    return "bid-discount";
  case CompliancePenalty::LeaseClamp:
    return "lease-clamp";
  case CompliancePenalty::Evict:
    return "evict";
  }
  return "unknown";
}

double ComplianceMonitor::flag(ComplianceViolation V) {
  (void)V; // all classes weigh the same; severity lives in the ladder
  Score += 1.0;
  ++Violations;
  ViolatedSinceTick = true;
  return Score;
}

void ComplianceMonitor::epochTick() {
  if (!ViolatedSinceTick)
    Score = std::max(0.0, Score - Opts.ScoreDecayPerEpoch);
  ViolatedSinceTick = false;
}

CompliancePenalty ComplianceMonitor::penalty() const {
  if (!Opts.Enabled)
    return CompliancePenalty::None;
  if (Score >= Opts.EvictThreshold)
    return CompliancePenalty::Evict;
  if (Score >= Opts.ClampThreshold)
    return CompliancePenalty::LeaseClamp;
  if (Score >= Opts.DiscountThreshold)
    return CompliancePenalty::BidDiscount;
  return CompliancePenalty::None;
}

void ComplianceMonitor::restoreScore(double NewScore, uint64_t NewViolations) {
  Score = std::max(0.0, NewScore);
  Violations = NewViolations;
  ViolatedSinceTick = false;
}

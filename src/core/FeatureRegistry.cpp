//===- core/FeatureRegistry.cpp - Platform feature monitoring --------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/FeatureRegistry.h"

#include "support/Trace.h"

#include <cassert>

using namespace dope;

void FeatureRegistry::registerFeature(const std::string &Name,
                                      FeatureFn Callback,
                                      double MinSampleIntervalSeconds) {
  assert(Callback && "feature callback must be callable");
  assert(MinSampleIntervalSeconds >= 0.0 && "negative sampling interval");
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Features[Name];
  E.Callback = std::move(Callback);
  E.MinInterval = MinSampleIntervalSeconds;
  E.LastSampleTime = -1e300;
  E.CachedValue = 0.0;
}

void FeatureRegistry::unregisterFeature(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Features.find(Name);
  if (It != Features.end())
    Features.erase(It);
}

bool FeatureRegistry::hasFeature(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Features.find(Name) != Features.end();
}

std::optional<double> FeatureRegistry::getValue(std::string_view Name,
                                                double NowSeconds) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Features.find(Name);
  if (It == Features.end())
    return std::nullopt;
  const Entry &E = It->second;
  if (NowSeconds - E.LastSampleTime < E.MinInterval)
    return E.CachedValue;
  E.CachedValue = E.Callback();
  E.LastSampleTime = NowSeconds;
  if (Trace)
    Trace->recordAt(NowSeconds, TraceKind::FeatureSample, Name, E.CachedValue);
  return E.CachedValue;
}

//===- tests/GrainAdaptTest.cpp - Grain-walking mechanism tests ------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Unit coverage of GrainAdaptMechanism: thrash coarsening, starvation
// refinement, clamping at both grain bounds, the plateau hold with its
// drift and budget re-open conditions, and bit-identical decisions when
// the same tree stream replays twice through the harness.
//
//===----------------------------------------------------------------------===//

#include "mechanisms/GrainAdapt.h"

#include "core/Config.h"
#include "core/FeatureRegistry.h"
#include "core/Replay.h"
#include "core/Task.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

/// A tree-marked region over one PAR task — the shape buildTaskTree and
/// the TaskTree replay harness both produce.
struct TreeGraph {
  std::unique_ptr<TaskGraph> Graph;
  Task *T = nullptr;
  ParDescriptor *Root = nullptr;
};

TreeGraph makeTreeGraph(unsigned DefaultGrain = 64) {
  TreeGraph G;
  G.Graph = std::make_unique<TaskGraph>();
  G.T = G.Graph->createTask("descend", dummyFn(), LoadFn(),
                            G.Graph->parDescriptor());
  G.Root = G.Graph->createTreeRegion(G.T, DefaultGrain);
  return G;
}

RegionSnapshot makeTreeSnapshot(const TreeGraph &G, double ExecTime,
                                double Load, uint64_t Invocations = 100) {
  RegionSnapshot Snap;
  TaskSnapshot TS;
  TS.TaskId = G.T->id();
  TS.Name = G.T->name();
  TS.Kind = G.T->kind();
  TS.ExecTime = ExecTime;
  TS.Load = Load;
  TS.LastLoad = Load;
  TS.Invocations = Invocations;
  Snap.Tasks.push_back(std::move(TS));
  return Snap;
}

/// One consult with explicit runtime signals. The features mirror what
/// TreeRegionHandle::registerFeatures wires up on the real engine.
struct TreeSignals {
  double StealRate = 0.0;
  double MeanTaskSeconds = 400e-6;
  double Load = 100.0;
  uint64_t Invocations = 100;
  unsigned MaxThreads = 8;
};

std::optional<RegionConfig> consult(GrainAdaptMechanism &M,
                                    const TreeGraph &G,
                                    const RegionConfig &Current,
                                    const TreeSignals &Sig) {
  FeatureRegistry Features;
  Features.registerFeature("StealRate",
                           [&Sig] { return Sig.StealRate; });
  Features.registerFeature("MeanTaskSeconds",
                           [&Sig] { return Sig.MeanTaskSeconds; });
  MechanismContext Ctx;
  Ctx.MaxThreads = Sig.MaxThreads;
  Ctx.Features = &Features;
  RegionSnapshot Snap =
      makeTreeSnapshot(G, Sig.MeanTaskSeconds, Sig.Load, Sig.Invocations);
  return M.reconfigure(*G.Root, Snap, Current, Ctx);
}

unsigned grainOf(const RegionConfig &C) { return C.Tasks.front().Grain; }
unsigned extentOf(const RegionConfig &C) { return C.Tasks.front().Extent; }

TreeSignals thrashing() {
  TreeSignals Sig;
  Sig.StealRate = 4000.0;       // > ThrashStealsPerSec
  Sig.MeanTaskSeconds = 40e-6;  // < MinTaskSeconds
  Sig.Load = 500.0;
  return Sig;
}

TreeSignals starving() {
  TreeSignals Sig;
  Sig.StealRate = 40.0;
  Sig.MeanTaskSeconds = 900e-6;
  Sig.Load = 3.0; // < StarveLoadFactor * extent(8)
  return Sig;
}

TreeSignals inBand() {
  TreeSignals Sig;
  Sig.StealRate = 60.0;
  Sig.MeanTaskSeconds = 400e-6;
  Sig.Load = 100.0;
  return Sig;
}

/// In-band consult that pins the extent to the budget; subsequent
/// in-band consults then converge on the plateau.
RegionConfig settled(GrainAdaptMechanism &M, const TreeGraph &G) {
  RegionConfig C = defaultConfig(*G.Root);
  if (std::optional<RegionConfig> Next = consult(M, G, C, inBand()))
    C = *Next;
  EXPECT_FALSE(consult(M, G, C, inBand()).has_value());
  EXPECT_TRUE(M.converged());
  return C;
}

TEST(GrainAdapt, NonTreeRegionIsLeftUntouched) {
  TaskGraph Graph;
  Task *T = Graph.createTask("flat", dummyFn(), LoadFn(),
                             Graph.parDescriptor());
  ParDescriptor *Root = Graph.createRegion({T});
  GrainAdaptMechanism M;
  RegionConfig C = defaultConfig(*Root);
  RegionSnapshot Snap;
  TaskSnapshot TS;
  TS.TaskId = T->id();
  TS.ExecTime = 0.1;
  TS.Invocations = 100;
  Snap.Tasks.push_back(std::move(TS));
  MechanismContext Ctx;
  Ctx.MaxThreads = 8;
  EXPECT_FALSE(M.reconfigure(*Root, Snap, C, Ctx).has_value());
}

TEST(GrainAdapt, UnmeasuredRegionHolds) {
  TreeGraph G = makeTreeGraph();
  GrainAdaptMechanism M;
  TreeSignals Sig = thrashing();
  Sig.Invocations = 0;
  EXPECT_FALSE(consult(M, G, defaultConfig(*G.Root), Sig).has_value());
  EXPECT_FALSE(M.converged()); // gated, not converged
}

TEST(GrainAdapt, ThrashDoublesGrainAndPinsExtentToBudget) {
  TreeGraph G = makeTreeGraph(64);
  GrainAdaptMechanism M;
  RegionConfig C = defaultConfig(*G.Root);
  ASSERT_EQ(grainOf(C), 64u);
  ASSERT_EQ(extentOf(C), 1u);

  std::optional<RegionConfig> Next = consult(M, G, C, thrashing());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(grainOf(*Next), 128u);
  EXPECT_EQ(extentOf(*Next), 8u);

  Next = consult(M, G, *Next, thrashing());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(grainOf(*Next), 256u);
}

TEST(GrainAdapt, ThrashClampsAtMaxGrain) {
  GrainAdaptParams P;
  P.MaxGrain = 256;
  TreeGraph G = makeTreeGraph(256);
  GrainAdaptMechanism M(P);
  RegionConfig C = defaultConfig(*G.Root);
  C.Tasks.front().Extent = 8; // already at budget

  // Still thrashing but the grain cannot grow: the proposal equals the
  // current configuration, so the walker settles instead of spinning.
  EXPECT_FALSE(consult(M, G, C, thrashing()).has_value());
  EXPECT_TRUE(M.converged());
}

TEST(GrainAdapt, StarvationHalvesGrain) {
  TreeGraph G = makeTreeGraph(64);
  GrainAdaptMechanism M;
  RegionConfig C = defaultConfig(*G.Root);
  C.Tasks.front().Extent = 8;

  std::optional<RegionConfig> Next = consult(M, G, C, starving());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(grainOf(*Next), 32u);
  EXPECT_EQ(extentOf(*Next), 8u);
}

TEST(GrainAdapt, StarvationStopsAtMinGrain) {
  TreeGraph G = makeTreeGraph(1);
  GrainAdaptMechanism M;
  RegionConfig C = defaultConfig(*G.Root);
  C.Tasks.front().Extent = 8;

  EXPECT_FALSE(consult(M, G, C, starving()).has_value());
  EXPECT_TRUE(M.converged());
}

TEST(GrainAdapt, PlateauHoldsUnderSmallDrift) {
  TreeGraph G = makeTreeGraph(64);
  GrainAdaptMechanism M;
  RegionConfig C = settled(M, G);

  // 25% drift is within ReexploreDrift (50%): the plateau holds even
  // though the load momentarily looks starved.
  TreeSignals Sig = inBand();
  Sig.MeanTaskSeconds = 500e-6;
  Sig.Load = 3.0;
  EXPECT_FALSE(consult(M, G, C, Sig).has_value());
  EXPECT_TRUE(M.converged());
}

TEST(GrainAdapt, DriftReopensTheWalk) {
  TreeGraph G = makeTreeGraph(64);
  GrainAdaptMechanism M;
  RegionConfig C = settled(M, G);

  // Task cost drifts far beyond the plateau while the region starves:
  // the walk re-opens and refines.
  std::optional<RegionConfig> Next = consult(M, G, C, starving());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(grainOf(*Next), 32u);
  EXPECT_FALSE(M.converged());
}

TEST(GrainAdapt, BudgetMoveReopensTheWalk) {
  TreeGraph G = makeTreeGraph(64);
  GrainAdaptMechanism M;
  RegionConfig C = settled(M, G);

  // Lease revocation: same in-band signals, smaller budget. The grain
  // stays put but the extent must follow the envelope down.
  TreeSignals Sig = inBand();
  Sig.MaxThreads = 3;
  std::optional<RegionConfig> Next = consult(M, G, C, Sig);
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(grainOf(*Next), 64u);
  EXPECT_EQ(extentOf(*Next), 3u);

  // And re-converges under the new budget.
  EXPECT_FALSE(consult(M, G, *Next, Sig).has_value());
  EXPECT_TRUE(M.converged());

  // Re-grant re-opens again and restores the extent.
  Next = consult(M, G, *Next, inBand());
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(extentOf(*Next), 8u);
}

TEST(GrainAdapt, ResetForgetsThePlateau) {
  TreeGraph G = makeTreeGraph(64);
  GrainAdaptMechanism M;
  RegionConfig C = settled(M, G);
  M.reset();
  EXPECT_FALSE(M.converged());
  // Walking again: the same in-band signals converge afresh.
  EXPECT_FALSE(consult(M, G, C, inBand()).has_value());
  EXPECT_TRUE(M.converged());
}

/// The full policy through the replay harness, twice: a thrash phase, a
/// plateau, a starved phase, a second plateau — decisions (including the
/// rendered "g=" configs) must be bit-identical across runs.
TEST(GrainAdapt, HarnessReplayIsDeterministic) {
  FeatureStream S;
  S.Name = "tree-walk-unit";
  S.Kind = FeatureStream::GraphKind::TaskTree;
  S.MaxThreads = 8;
  S.DefaultGrain = 64;
  S.Stages = {{"descend", true}};
  struct Obs {
    double Steal, Mean, Load;
  };
  const Obs Phases[] = {
      {4000, 40e-6, 500}, {4000, 40e-6, 500}, {60, 350e-6, 64},
      {60, 350e-6, 64},   {40, 900e-6, 9},    {70, 450e-6, 80},
      {70, 450e-6, 80},
  };
  for (size_t I = 0; I != std::size(Phases); ++I) {
    ReplayStep Step;
    Step.Time = 0.5 * static_cast<double>(I + 1);
    Step.Features = {{"StealRate", Phases[I].Steal},
                     {"MeanTaskSeconds", Phases[I].Mean}};
    Step.ExecTime = {Phases[I].Mean};
    Step.Load = {Phases[I].Load};
    S.Steps.push_back(std::move(Step));
  }

  auto RunOnce = [&S] {
    GrainAdaptMechanism M;
    ReplayMechanismHarness Harness(S);
    return Harness.run(M);
  };
  const ReplayResult A = RunOnce();
  const ReplayResult B = RunOnce();

  EXPECT_EQ(A.InvalidProposals, 0u);
  ASSERT_EQ(A.Decisions.size(), 3u); // double, double, halve
  EXPECT_NE(A.Decisions[0].Config.find("g=128"), std::string::npos);
  EXPECT_NE(A.Decisions[1].Config.find("g=256"), std::string::npos);
  EXPECT_NE(A.Decisions[2].Config.find("g=128"), std::string::npos);
  ASSERT_EQ(A.Decisions.size(), B.Decisions.size());
  for (size_t I = 0; I != A.Decisions.size(); ++I)
    EXPECT_EQ(A.Decisions[I], B.Decisions[I]) << "decision " << I;
}

} // namespace

# Empty dependencies file for fig14_power_throughput.
# This may be replaced when dependencies are built.

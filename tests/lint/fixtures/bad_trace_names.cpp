// TS001 fixture: TraceKind enumerators vs KindNames serializer drift.
// Mirrors the lease-protocol schema growth: the enum gained
// LeaseExpire/Heartbeat/ComplianceVerdict but the serializer table was
// only partially extended. Never compiled — scanned by dope_lint.

enum class TraceKind : unsigned char {
  FeatureSample,
  Decision,
  Reconfig,
  Fault,
  LeaseExpire,
  Heartbeat,
  ComplianceVerdict,
};

static constexpr const char *KindNames[] = {"feature",      "decision",
                                            "reconfig",     "fault",
                                            "lease-expire", "heartbeat"};

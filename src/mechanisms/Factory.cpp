//===- mechanisms/Factory.cpp - Canonical mechanism construction -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Factory.h"

#include "mechanisms/Fdp.h"
#include "mechanisms/GrainAdapt.h"
#include "mechanisms/Seda.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/Tpc.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"

using namespace dope;

std::unique_ptr<Mechanism>
dope::createMechanismByName(const std::string &Name) {
  if (Name == "WQT-H") {
    WqtHParams P;
    P.QueueThreshold = 8.0;
    P.NOff = 3;
    P.NOn = 3;
    P.MMax = 8;
    return std::make_unique<WqtHMechanism>(P);
  }
  if (Name == "WQ-Linear") {
    WqLinearParams P;
    P.MMin = 1;
    P.MMax = 8;
    P.QMax = 16.0;
    return std::make_unique<WqLinearMechanism>(P);
  }
  if (Name == "TBF") {
    TbfParams P;
    P.EnableFusion = true;
    return std::make_unique<TbfMechanism>(P);
  }
  if (Name == "TB") {
    TbfParams P;
    P.EnableFusion = false;
    return std::make_unique<TbfMechanism>(P);
  }
  if (Name == "FDP")
    return std::make_unique<FdpMechanism>(FdpParams());
  if (Name == "SEDA") {
    SedaParams P;
    P.HighWatermark = 6.0;
    P.LowWatermark = 1.0;
    P.PerStageCap = 8;
    return std::make_unique<SedaMechanism>(P);
  }
  if (Name == "TPC")
    return std::make_unique<TpcMechanism>(TpcParams());
  if (Name == "GrainAdapt")
    return std::make_unique<GrainAdaptMechanism>(GrainAdaptParams());
  return nullptr;
}

std::unique_ptr<Mechanism>
dope::createMechanismByName(const std::string &Name,
                            const WarmStartHint *Hint) {
  std::unique_ptr<Mechanism> Mech = createMechanismByName(Name);
  if (Mech && Hint && Hint->appliesTo(Name))
    Mech->seedWarmStart(*Hint);
  return Mech;
}

const std::vector<ConformanceCase> &dope::conformanceCases() {
  static const std::vector<ConformanceCase> Cases = {
      {"WQT-H", "nest-load-swing"},
      {"WQ-Linear", "nest-load-swing"},
      {"TBF", "pipeline-imbalance"},
      {"TB", "pipeline-imbalance"},
      {"FDP", "pipeline-steady"},
      {"SEDA", "pipeline-bursts"},
      {"TPC", "pipeline-power-ramp"},
      // Arbiter coverage: the same mechanisms under mid-stream thread
      // envelope (lease) steps — grants widen, revocations force the
      // planned configuration back under the new ceiling.
      {"TB", "pipeline-lease-steps", "TB-lease"},
      {"WQT-H", "nest-lease-steps", "WQT-H-lease"},
      // Work-stealing tree region: the grain walker coarsening out of
      // thrash, refining out of starvation, and re-opening its plateau
      // on a mid-stream lease revocation.
      {"GrainAdapt", "tree-grain-walk"},
      {"GrainAdapt", "tree-grain-lease-steps", "GrainAdapt-lease"},
  };
  return Cases;
}

//===- tests/PipelineSimTest.cpp - Pipeline simulation tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/PipelineSim.h"

#include "apps/PipelineApps.h"
#include "mechanisms/Seda.h"
#include "mechanisms/StaticMechanism.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/Tpc.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

PipelineSimOptions quickOptions(uint64_t Items = 600, uint64_t Seed = 5) {
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.NumItems = Items;
  Opts.Seed = Seed;
  return Opts;
}

/// A small balanced pipeline for focused tests.
PipelineAppModel tinyApp() {
  PipelineAppModel App;
  App.Name = "tiny";
  App.Stages = {{"in", false, 0.05, 0.0},
                {"work", true, 1.0, 0.0},
                {"out", false, 0.05, 0.0}};
  App.OversubPenalty = 0.1;
  App.ThreadOverheadPenalty = 0.1;
  return App;
}

TEST(PipelineSim, CompletesAllItems) {
  PipelineSim Sim(tinyApp(), quickOptions(200));
  PipelineSimResult R = Sim.run(nullptr, {1, 4, 1});
  EXPECT_EQ(R.ItemsCompleted, 200u);
  EXPECT_GT(R.Throughput, 0.0);
}

TEST(PipelineSim, DeterministicForSeed) {
  PipelineSim A(tinyApp(), quickOptions(200, 42));
  PipelineSim B(tinyApp(), quickOptions(200, 42));
  PipelineSimResult RA = A.run(nullptr, {1, 4, 1});
  PipelineSimResult RB = B.run(nullptr, {1, 4, 1});
  EXPECT_DOUBLE_EQ(RA.Throughput, RB.Throughput);
  EXPECT_DOUBLE_EQ(RA.TotalSeconds, RB.TotalSeconds);
}

TEST(PipelineSim, ThroughputMatchesAnalyticBound) {
  // Deterministic service times: measured throughput approaches the
  // bottleneck capacity min_i(n_i / s_i) = 4 / 1.0.
  PipelineSim Sim(tinyApp(), quickOptions(800));
  PipelineSimResult R = Sim.run(nullptr, {1, 4, 1});
  const double Analytic = Sim.analyticThroughput({1, 4, 1});
  EXPECT_NEAR(Analytic, 4.0, 1e-9);
  EXPECT_NEAR(R.Throughput, Analytic, Analytic * 0.1);
}

TEST(PipelineSim, MoreThreadsMoreThroughputUntilCpuBound) {
  PipelineSim Sim(tinyApp(), quickOptions(800));
  const double T4 = Sim.run(nullptr, {1, 4, 1}).Throughput;
  const double T12 = Sim.run(nullptr, {1, 12, 1}).Throughput;
  EXPECT_GT(T12, T4 * 2.0);
  // Beyond the contexts, the pool bound kicks in: 48 worker threads on
  // 24 contexts cannot triple 12-thread throughput.
  const double T48 = Sim.run(nullptr, {1, 48, 1}).Throughput;
  EXPECT_LT(T48, T12 * 2.5);
}

TEST(PipelineSim, AnalyticOversubscriptionPenalty) {
  PipelineAppModel App = tinyApp();
  App.ThreadOverheadPenalty = 1.0;
  PipelineSim Sim(App, quickOptions());
  // 50 threads on 24 contexts: footprint factor 1/(1 + 26/24) ~ 0.48.
  const double Fitted = Sim.analyticThroughput({1, 22, 1});
  const double Oversub = Sim.analyticThroughput({1, 48, 1});
  EXPECT_LT(Oversub, Fitted);
}

TEST(PipelineSim, ImbalancedStagesBottleneckThroughput) {
  PipelineAppModel App;
  App.Name = "imbalanced";
  App.Stages = {{"a", true, 1.0, 0.0}, {"b", true, 4.0, 0.0}};
  PipelineSim Sim(App, quickOptions(400));
  // Even split 2/2: bottleneck 2/4 = 0.5. Skewed 1/3: 3/4 = 0.75.
  const double Even = Sim.run(nullptr, {2, 2}).Throughput;
  const double Skewed = Sim.run(nullptr, {1, 3}).Throughput;
  EXPECT_GT(Skewed, Even * 1.3);
}

TEST(PipelineSim, OpenLoopResponseTimesRecorded) {
  PipelineSimOptions Opts = quickOptions(300);
  Opts.OpenLoop = true;
  Opts.ArrivalRate = 2.0; // capacity is 4/s at {1,4,1}
  PipelineSim Sim(tinyApp(), Opts);
  PipelineSimResult R = Sim.run(nullptr, {1, 4, 1});
  EXPECT_EQ(R.ItemsCompleted, 300u);
  EXPECT_EQ(R.Stats.count(), 300u);
  // Light load: response ~ pipeline latency (1.1 s) with little queueing.
  EXPECT_GT(R.Stats.meanResponseTime(), 1.0);
  EXPECT_LT(R.Stats.meanResponseTime(), 3.0);
}

TEST(PipelineSim, OpenLoopSaturationGrowsResponseTime) {
  PipelineSimOptions Light = quickOptions(300);
  Light.OpenLoop = true;
  Light.ArrivalRate = 2.0;
  PipelineSim LightSim(tinyApp(), Light);
  const double LightResponse =
      LightSim.run(nullptr, {1, 4, 1}).Stats.meanResponseTime();

  PipelineSimOptions Heavy = quickOptions(300);
  Heavy.OpenLoop = true;
  Heavy.ArrivalRate = 6.0; // above the 4/s capacity
  PipelineSim HeavySim(tinyApp(), Heavy);
  const double HeavyResponse =
      HeavySim.run(nullptr, {1, 4, 1}).Stats.meanResponseTime();
  EXPECT_GT(HeavyResponse, LightResponse * 3.0);
}

TEST(PipelineSim, TbfConvergesToBalancedAssignment) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts = quickOptions(1500);
  PipelineSim Sim(App, Opts);
  TbfMechanism Tbf({0.5, /*EnableFusion=*/false});
  PipelineSimResult R = Sim.run(&Tbf, {});
  EXPECT_EQ(R.ItemsCompleted, 1500u);
  EXPECT_GE(R.Reconfigurations, 1u);
  // The extract stage (8 s) ends with the lion's share of threads.
  ASSERT_EQ(R.FinalExtents.size(), 6u);
  EXPECT_GT(R.FinalExtents[2], R.FinalExtents[1]);
  EXPECT_GT(R.FinalExtents[2], R.FinalExtents[3]);
}

TEST(PipelineSim, TbfFusionSwitchesAlternative) {
  PipelineAppModel App = makeFerretApp();
  PipelineSim Sim(App, quickOptions(1500));
  TbfMechanism Tbf({0.5, /*EnableFusion=*/true});
  PipelineSimResult R = Sim.run(&Tbf, {});
  EXPECT_EQ(R.ItemsCompleted, 1500u);
  EXPECT_TRUE(R.EndedFused);
}

TEST(PipelineSim, TbfBeatsEvenStaticOnFerret) {
  // The core Table 15 shape: DoPE-TBF > Pthreads-Baseline (even split).
  PipelineAppModel App = makeFerretApp();
  PipelineSim Sim(App, quickOptions(1500));

  std::vector<unsigned> Even = {1, 8, 7, 7, 7, 1};
  // makeEvenPipelineConfig equivalent for the 4 parallel stages of
  // ferret: 22 over 4 -> 6/6/5/5.
  Even = {1, 6, 6, 5, 5, 1};
  const double Baseline = Sim.run(nullptr, Even).Throughput;

  TbfMechanism Tbf;
  const double Adaptive = Sim.run(&Tbf, Even).Throughput;
  EXPECT_GT(Adaptive, Baseline * 1.5);
}

TEST(PipelineSim, SedaRunsAndAdapts) {
  PipelineAppModel App = makeFerretApp();
  PipelineSim Sim(App, quickOptions(1000));
  SedaMechanism Seda;
  PipelineSimResult R = Sim.run(&Seda, {});
  EXPECT_EQ(R.ItemsCompleted, 1000u);
  EXPECT_GE(R.Reconfigurations, 1u);
}

TEST(PipelineSim, PowerSeriesSampled) {
  PipelineSim Sim(tinyApp(), quickOptions(400));
  PipelineSimResult R = Sim.run(nullptr, {1, 8, 1});
  EXPECT_FALSE(R.PowerSeries.empty());
  // Power stays within the model's range.
  for (size_t I = 0; I != R.PowerSeries.size(); ++I) {
    EXPECT_GE(R.PowerSeries.point(I).Value, 450.0);
    EXPECT_LE(R.PowerSeries.point(I).Value, 600.0);
  }
}

TEST(PipelineSim, TpcRespectsPowerBudget) {
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts = quickOptions(2500);
  Opts.PowerBudgetWatts = 540.0; // 90% of peak
  Opts.DecisionIntervalSeconds = 1.0;
  PipelineSim Sim(App, Opts);
  TpcMechanism Tpc;
  PipelineSimResult R = Sim.run(&Tpc, {});
  EXPECT_EQ(R.ItemsCompleted, 2500u);
  // After the controller stabilizes, sampled power must hover at or
  // below the budget (allow the ramp/overshoot prefix).
  double LatePowerMax = 0.0;
  const double Cutoff = R.TotalSeconds * 0.6;
  for (size_t I = 0; I != R.PowerSeries.size(); ++I)
    if (R.PowerSeries.point(I).Time > Cutoff)
      LatePowerMax = std::max(LatePowerMax, R.PowerSeries.point(I).Value);
  EXPECT_LE(LatePowerMax, 540.0 + 6.25 + 1e-9); // within one core
}

TEST(PipelineSim, DisturbanceSlowsAStage) {
  PipelineSim Sim(tinyApp(), quickOptions(400));
  Disturbance D;
  D.Time = 0.0;
  D.Stage = 1;
  D.Factor = 2.0;
  Sim.addDisturbance(D);
  const double Slowed = Sim.run(nullptr, {1, 4, 1}).Throughput;
  Sim.clearDisturbances();
  const double Normal = Sim.run(nullptr, {1, 4, 1}).Throughput;
  EXPECT_GT(Normal, Slowed * 1.6);
}

TEST(PipelineSim, SequentialStagePinnedEvenIfConfigSaysOtherwise) {
  PipelineSim Sim(tinyApp(), quickOptions(100));
  PipelineSimResult R = Sim.run(nullptr, {5, 4, 5});
  ASSERT_EQ(R.FinalExtents.size(), 3u);
  EXPECT_EQ(R.FinalExtents[0], 1u);
  EXPECT_EQ(R.FinalExtents[2], 1u);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(PipelineSimFaults, ContextKillsWedgeStaticRun) {
  // A static assignment never reconfigures, so replicas wedged by the
  // kill hold their items forever and the batch cannot resolve: the run
  // ends only at the safety bound, with the lost capacity visible in
  // the live-context accounting.
  PipelineSimOptions Opts = quickOptions(300);
  Opts.MaxSimSeconds = 200.0;
  PipelineSim Sim(tinyApp(), Opts);
  FaultPlan Plan;
  Plan.Kills.push_back({/*Time=*/5.0, /*Count=*/4});
  Sim.setFaultPlan(Plan);
  PipelineSimResult R = Sim.run(nullptr, {1, 8, 1});
  EXPECT_EQ(R.Faults.ContextsKilled, 4u);
  EXPECT_GE(R.Faults.ReplicasWedged, 1u);
  EXPECT_LE(R.Faults.ReplicasWedged, 4u);
  EXPECT_EQ(R.LiveContextsAtEnd, 20u);
  EXPECT_NEAR(R.FirstFaultTime, 5.0, 1e-9);
  EXPECT_LT(R.ItemsCompleted, 300u);
  EXPECT_DOUBLE_EQ(R.TotalSeconds, 200.0);
}

TEST(PipelineSimFaults, AdaptiveMechanismRecoversFromContextKills) {
  // Same kill under SEDA: the wedged stage's queue grows, SEDA widens
  // it, and the reconfiguration respawns the replicas on live contexts,
  // salvaging the stuck items — the batch completes well before the
  // safety bound.
  PipelineSimOptions Opts = quickOptions(300);
  Opts.MaxSimSeconds = 200.0;
  PipelineSim Sim(tinyApp(), Opts);
  FaultPlan Plan;
  Plan.Kills.push_back({/*Time=*/5.0, /*Count=*/4});
  Sim.setFaultPlan(Plan);
  SedaMechanism Seda;
  PipelineSimResult R = Sim.run(&Seda, {1, 8, 1});
  EXPECT_EQ(R.ItemsCompleted, 300u);
  EXPECT_GE(R.Reconfigurations, 1u);
  EXPECT_GE(R.Faults.ReplicasWedged, 1u);
  EXPECT_LT(R.TotalSeconds, 200.0);
}

TEST(PipelineSimFaults, AdmissionControlBoundsOuterQueueAndCountsShed) {
  PipelineAppModel App = tinyApp();
  PipelineSimOptions Opts = quickOptions(400);
  Opts.OpenLoop = true;
  Opts.ArrivalRate = 3.0; // capacity 4/s at {1,4,1}
  Opts.ArrivalTrace = LoadTrace::makeBurstPattern(1.0, 4.0, 30.0, 30.0);
  Opts.AdmissionLimit = 16;
  PipelineSim Sim(App, Opts);
  PipelineSimResult R = Sim.run(nullptr, {1, 4, 1});
  EXPECT_LE(R.PeakOuterQueue, 16u);
  EXPECT_GT(R.Faults.ItemsShed, 0u);
  // Every arrival is accounted for: completed or shed, nothing vanishes.
  EXPECT_EQ(R.ItemsCompleted + R.Faults.ItemsShed, 400u);

  Opts.AdmissionLimit = 0;
  PipelineSim NoAc(App, Opts);
  PipelineSimResult RN = NoAc.run(nullptr, {1, 4, 1});
  EXPECT_GT(RN.PeakOuterQueue, 16u);
  EXPECT_EQ(RN.Faults.ItemsShed, 0u);
  EXPECT_EQ(RN.ItemsCompleted, 400u);
}

TEST(PipelineSimFaults, HandoffDropsAccounted) {
  PipelineSimOptions Opts = quickOptions(400);
  Opts.MaxSimSeconds = 500.0;
  PipelineSim Sim(tinyApp(), Opts);
  FaultPlan Plan;
  Plan.HandoffDropProbability = 0.05;
  Sim.setFaultPlan(Plan);
  PipelineSimResult R = Sim.run(nullptr, {1, 4, 1});
  EXPECT_GT(R.Faults.ItemsDropped, 0u);
  EXPECT_EQ(R.ItemsCompleted + R.Faults.ItemsDropped, 400u);
  // Lost items must not stall batch termination.
  EXPECT_LT(R.TotalSeconds, 500.0);
}

TEST(PipelineSimFaults, StallEventRecordedAsIncidentAndReverts) {
  PipelineSimOptions Opts = quickOptions(300);
  PipelineSim Sim(tinyApp(), Opts);
  FaultPlan Plan;
  Plan.Stalls.push_back(
      {/*Time=*/5.0, /*Stage=*/1, /*Factor=*/4.0, /*DurationSeconds=*/10.0});
  Sim.setFaultPlan(Plan);
  PipelineSimResult Stalled = Sim.run(nullptr, {1, 4, 1});
  EXPECT_GE(Stalled.Faults.Incidents, 1u);
  EXPECT_EQ(Stalled.ItemsCompleted, 300u);

  Sim.setFaultPlan(FaultPlan());
  PipelineSimResult Clean = Sim.run(nullptr, {1, 4, 1});
  // The stall costs time but reverts, so the run finishes — slower than
  // the fault-free baseline, faster than a permanent 4x degradation.
  EXPECT_GT(Stalled.TotalSeconds, Clean.TotalSeconds);
  EXPECT_LT(Stalled.TotalSeconds, Clean.TotalSeconds * 4.0);
}

TEST(PipelineSimFaults, FaultInjectionDeterministicForSeed) {
  FaultPlan Plan;
  Plan.Kills.push_back({/*Time=*/4.0, /*Count=*/3});
  Plan.StragglerProbability = 0.05;
  Plan.StragglerFactor = 3.0;
  Plan.HandoffDropProbability = 0.02;

  auto RunOnce = [&Plan] {
    PipelineSimOptions Opts = quickOptions(300, 11);
    Opts.MaxSimSeconds = 400.0;
    PipelineSim Sim(tinyApp(), Opts);
    Sim.setFaultPlan(Plan);
    SedaMechanism Seda;
    return Sim.run(&Seda, {1, 6, 1});
  };
  PipelineSimResult A = RunOnce();
  PipelineSimResult B = RunOnce();
  EXPECT_DOUBLE_EQ(A.Throughput, B.Throughput);
  EXPECT_EQ(A.ItemsCompleted, B.ItemsCompleted);
  EXPECT_EQ(A.Faults.ReplicasWedged, B.Faults.ReplicasWedged);
  EXPECT_EQ(A.Faults.ItemsDropped, B.Faults.ItemsDropped);
  EXPECT_EQ(A.Reconfigurations, B.Reconfigurations);
}

} // namespace

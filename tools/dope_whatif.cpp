//===- tools/dope_whatif.cpp - Causal what-if profiler CLI -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The causal what-if profiler:
///
///   dope_whatif profile <trace.jsonl> [--out <file>]
///       Reconstructs the spawn DAG from a task-instance trace and
///       prints the causal profile (work, span, wall clock, per-stage
///       wait attribution and achieved parallelism) as JSON.
///
///   dope_whatif whatif <trace.jsonl> --stage <name> --dop <n>
///              [--contexts <C>]
///       Projects completion throughput if the named stage ran at DoP n,
///       everything else as measured.
///
///   dope_whatif recommend <trace.jsonl> [--budget <N>] [--top <K>]
///              [--contexts <C>] [--out <file>]
///              [--hint-out <file>] [--mechanism <name>]
///       Ranked DoP recommendations from the trace-calibrated model,
///       best first; --hint-out additionally writes the top
///       recommendation as a warm-start hint (core/WarmStart.h JSON)
///       addressed to --mechanism (default: any mechanism).
///
///   dope_whatif validate [--scenario pipeline|colocation|all]
///              [--bound <rel-error>]
///       The accountability loop: runs the canonical scenario, profiles
///       its trace, recommends, re-simulates under the recommendation,
///       and fails (exit 4) when prediction and measurement disagree by
///       more than the bound (default 0.15).
///
///   dope_whatif regen --dir <dir>
///       Regenerates the committed what-if goldens: the pipeline
///       scenario's task-instance trace, the recommendations computed
///       from it, the derived warm-start hint, and the colocation share
///       split. Review diffs like any other code change.
///
/// Exit codes: 0 ok, 1 I/O or argument error, 2 usage, 3 trace had
/// skipped (torn/corrupt) lines, 4 validation failed.
///
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"
#include "analysis/TaskDag.h"
#include "analysis/WhatIf.h"
#include "core/WarmStart.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace dope;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dope_whatif profile <trace.jsonl> [--out <file>]\n"
      "  dope_whatif whatif <trace.jsonl> --stage <name> --dop <n> "
      "[--contexts <C>]\n"
      "  dope_whatif recommend <trace.jsonl> [--budget <N>] [--top <K>] "
      "[--contexts <C>]\n"
      "              [--out <file>] [--hint-out <file>] "
      "[--mechanism <name>]\n"
      "  dope_whatif validate [--scenario pipeline|colocation|all] "
      "[--bound <e>]\n"
      "  dope_whatif regen --dir <dir>\n");
  return 2;
}

/// Loads a trace leniently and reconstructs the DAG; reports skips the
/// way dope_trace does (kept records are used, exit code 3 signals the
/// gap to scripts).
std::optional<TaskDag> loadDag(const std::string &Path,
                               TraceReadStats &Stats) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "dope_whatif: cannot open '%s'\n", Path.c_str());
    return std::nullopt;
  }
  TaskDag Dag = TaskDag::fromJsonl(IS, &Stats);
  if (Stats.Skipped != 0)
    std::fprintf(stderr,
                 "dope_whatif: %s: skipped %llu malformed line(s), first at "
                 "line %llu (%s); kept %llu\n",
                 Path.c_str(), static_cast<unsigned long long>(Stats.Skipped),
                 static_cast<unsigned long long>(Stats.FirstSkippedLine),
                 Stats.FirstError.c_str(),
                 static_cast<unsigned long long>(Stats.Parsed));
  if (Dag.empty()) {
    std::fprintf(stderr,
                 "dope_whatif: %s: no task instances — was the trace "
                 "recorded with task instances on (TraceTaskInstances / "
                 "the executive tracer)?\n",
                 Path.c_str());
    return std::nullopt;
  }
  return Dag;
}

int traceExit(const TraceReadStats &Stats) {
  return Stats.Skipped != 0 ? 3 : 0;
}

bool writeText(const std::string &Path, const std::string &Text) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "dope_whatif: cannot open '%s'\n", Path.c_str());
    return false;
  }
  OS << Text << "\n";
  return true;
}

int emit(const JsonValue &V, const std::string &OutPath) {
  if (OutPath.empty()) {
    std::printf("%s\n", V.dump().c_str());
    return 0;
  }
  return writeText(OutPath, V.dump()) ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// profile / whatif / recommend
//===----------------------------------------------------------------------===//

int cmdProfile(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  std::string OutPath;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--out" && I + 1 < Args.size())
      OutPath = Args[++I];
    else
      return usage();
  }
  TraceReadStats Stats;
  std::optional<TaskDag> Dag = loadDag(Args[0], Stats);
  if (!Dag)
    return 1;
  const CriticalPathProfile Profile = computeCriticalPath(*Dag);
  if (int Rc = emit(toJson(Profile), OutPath))
    return Rc;
  return traceExit(Stats);
}

int cmdWhatIf(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  std::string Stage;
  unsigned Dop = 0, Contexts = 24;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--stage" && I + 1 < Args.size())
      Stage = Args[++I];
    else if (Args[I] == "--dop" && I + 1 < Args.size())
      Dop = static_cast<unsigned>(std::strtoul(Args[++I].c_str(), nullptr, 10));
    else if (Args[I] == "--contexts" && I + 1 < Args.size())
      Contexts =
          static_cast<unsigned>(std::strtoul(Args[++I].c_str(), nullptr, 10));
    else
      return usage();
  }
  if (Stage.empty() || Dop == 0)
    return usage();

  TraceReadStats Stats;
  std::optional<TaskDag> Dag = loadDag(Args[0], Stats);
  if (!Dag)
    return 1;
  const CriticalPathProfile Profile = computeCriticalPath(*Dag);
  const WhatIfModel Model = WhatIfModel::fromProfile(Profile, Contexts);

  size_t StageIndex = Model.Stages.size();
  for (size_t I = 0; I != Model.Stages.size(); ++I)
    if (Model.Stages[I] == Stage)
      StageIndex = I;
  if (StageIndex == Model.Stages.size()) {
    std::fprintf(stderr, "dope_whatif: trace has no task named '%s'\n",
                 Stage.c_str());
    return 1;
  }

  std::vector<unsigned> Extents = Model.BaselineExtents;
  Extents[StageIndex] = Dop;
  const double Baseline = Model.baselineThroughput();
  const double Projected = Model.projectThroughput(Extents);

  JsonValue V = JsonValue::makeObject();
  V.set("schema", "dope-whatif-projection-v1");
  V.set("stage", Stage);
  V.set("dop", static_cast<double>(Dop));
  V.set("baseline_throughput", Baseline);
  V.set("projected_throughput", Projected);
  V.set("projected_speedup", Baseline > 0.0 ? Projected / Baseline : 0.0);
  if (int Rc = emit(V, ""))
    return Rc;
  return traceExit(Stats);
}

int cmdRecommend(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  std::string OutPath, HintPath, Mechanism;
  unsigned Budget = 0, Contexts = 24;
  size_t TopK = 5;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--budget" && I + 1 < Args.size())
      Budget =
          static_cast<unsigned>(std::strtoul(Args[++I].c_str(), nullptr, 10));
    else if (Args[I] == "--top" && I + 1 < Args.size())
      TopK = std::strtoul(Args[++I].c_str(), nullptr, 10);
    else if (Args[I] == "--contexts" && I + 1 < Args.size())
      Contexts =
          static_cast<unsigned>(std::strtoul(Args[++I].c_str(), nullptr, 10));
    else if (Args[I] == "--out" && I + 1 < Args.size())
      OutPath = Args[++I];
    else if (Args[I] == "--hint-out" && I + 1 < Args.size())
      HintPath = Args[++I];
    else if (Args[I] == "--mechanism" && I + 1 < Args.size())
      Mechanism = Args[++I];
    else
      return usage();
  }
  if (Budget == 0)
    Budget = Contexts;

  TraceReadStats Stats;
  std::optional<TaskDag> Dag = loadDag(Args[0], Stats);
  if (!Dag)
    return 1;
  const CriticalPathProfile Profile = computeCriticalPath(*Dag);
  const WhatIfModel Model = WhatIfModel::fromProfile(Profile, Contexts);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Budget, TopK);
  if (Recs.empty()) {
    std::fprintf(stderr, "dope_whatif: nothing to recommend\n");
    return 1;
  }
  if (!HintPath.empty()) {
    const WarmStartHint Hint = makeWarmStartHint(Mechanism, Recs.front());
    if (!writeText(HintPath, writeWarmStartHint(Hint)))
      return 1;
  }
  if (int Rc = emit(toJson(Recs), OutPath))
    return Rc;
  return traceExit(Stats);
}

//===----------------------------------------------------------------------===//
// validate / regen
//===----------------------------------------------------------------------===//

/// Profile -> recommend -> re-simulate for the canonical pipeline
/// scenario; fills \p Out with the report.
ValidationReport validatePipelineScenario(double Bound,
                                          Recommendation *TopOut = nullptr) {
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  auto [Result, Records] = runWhatifPipelineScenario(Scenario);
  (void)Result;
  const TaskDag Dag = TaskDag::build(std::move(Records));
  const CriticalPathProfile Profile = computeCriticalPath(Dag);
  const WhatIfModel Model = WhatIfModel::fromProfile(
      Profile, Scenario.Opts.Contexts, Scenario.App.OversubPenalty,
      Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 1);
  if (Recs.empty())
    return {};
  if (TopOut)
    *TopOut = Recs.front();
  PipelineSim Sim(Scenario.App, Scenario.Opts);
  return validateRecommendation(Sim, Recs.front(), Bound);
}

ValidationReport validateColocationScenario(double Bound) {
  const WhatIfColocationScenario Scenario = whatifColocationScenario();
  const ShareRecommendation Rec =
      recommendShares(Scenario.Tenants, Scenario.Opts.Contexts);
  return validateShares(Scenario.Tenants, Scenario.Opts, Rec, Bound);
}

int cmdValidate(const std::vector<std::string> &Args) {
  std::string Which = "all";
  double Bound = 0.15;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--scenario" && I + 1 < Args.size())
      Which = Args[++I];
    else if (Args[I] == "--bound" && I + 1 < Args.size())
      Bound = std::strtod(Args[++I].c_str(), nullptr);
    else
      return usage();
  }
  if (Which != "pipeline" && Which != "colocation" && Which != "all")
    return usage();

  JsonValue V = JsonValue::makeObject();
  V.set("schema", "dope-whatif-validation-v1");
  V.set("bound", Bound);
  bool AllOk = true;
  if (Which == "pipeline" || Which == "all") {
    const ValidationReport Report = validatePipelineScenario(Bound);
    V.set("pipeline", toJson(Report));
    AllOk &= Report.Ok;
  }
  if (Which == "colocation" || Which == "all") {
    const ValidationReport Report = validateColocationScenario(Bound);
    V.set("colocation", toJson(Report));
    AllOk &= Report.Ok;
  }
  std::printf("%s\n", V.dump().c_str());
  if (!AllOk) {
    std::fprintf(stderr,
                 "dope_whatif: validation FAILED (prediction off by more "
                 "than %.0f%%)\n",
                 Bound * 100.0);
    return 4;
  }
  return 0;
}

int cmdRegen(const std::vector<std::string> &Args) {
  std::string Dir;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--dir" && I + 1 < Args.size())
      Dir = Args[++I];
    else
      return usage();
  }
  if (Dir.empty())
    return usage();

  // The pipeline scenario's task-instance trace.
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  auto [Result, Records] = runWhatifPipelineScenario(Scenario);
  (void)Result;
  {
    const std::string Path = Dir + "/whatif-pipeline.trace.jsonl";
    std::ofstream OS(Path);
    if (!OS) {
      std::fprintf(stderr, "dope_whatif: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    writeTraceJsonl(Records, OS);
    std::printf("trace    whatif-pipeline %6zu records -> %s\n",
                Records.size(), Path.c_str());
  }

  // The recommendations and warm-start hint derived from that trace.
  const TaskDag Dag = TaskDag::build(std::move(Records));
  const CriticalPathProfile Profile = computeCriticalPath(Dag);
  const WhatIfModel Model = WhatIfModel::fromProfile(
      Profile, Scenario.Opts.Contexts, Scenario.App.OversubPenalty,
      Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 5);
  if (Recs.empty()) {
    std::fprintf(stderr, "dope_whatif: scenario produced no recommendation\n");
    return 1;
  }
  if (!writeText(Dir + "/whatif-pipeline.recommend.json",
                 toJson(Recs).dump()))
    return 1;
  std::printf("recs     whatif-pipeline %6zu ranked  -> %s\n", Recs.size(),
              (Dir + "/whatif-pipeline.recommend.json").c_str());
  const WarmStartHint Hint = makeWarmStartHint("FDP", Recs.front());
  if (!writeText(Dir + "/whatif-pipeline.hint.json", writeWarmStartHint(Hint)))
    return 1;
  std::printf("hint     whatif-pipeline (FDP)          -> %s\n",
              (Dir + "/whatif-pipeline.hint.json").c_str());

  // The colocation share split.
  const WhatIfColocationScenario Colo = whatifColocationScenario();
  const ShareRecommendation Shares =
      recommendShares(Colo.Tenants, Colo.Opts.Contexts);
  if (!writeText(Dir + "/whatif-colocation.shares.json",
                 toJson(Shares).dump()))
    return 1;
  std::printf("shares   whatif-colocation              -> %s\n",
              (Dir + "/whatif-colocation.shares.json").c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const std::string Command = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  if (Command == "profile")
    return cmdProfile(Args);
  if (Command == "whatif")
    return cmdWhatIf(Args);
  if (Command == "recommend")
    return cmdRecommend(Args);
  if (Command == "validate")
    return cmdValidate(Args);
  if (Command == "regen")
    return cmdRegen(Args);
  return usage();
}

file(REMOVE_RECURSE
  "CMakeFiles/workload_metrics_tests.dir/WorkloadMetricsTest.cpp.o"
  "CMakeFiles/workload_metrics_tests.dir/WorkloadMetricsTest.cpp.o.d"
  "workload_metrics_tests"
  "workload_metrics_tests.pdb"
  "workload_metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

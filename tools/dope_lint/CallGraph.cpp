//===- tools/dope_lint/CallGraph.cpp - Whole-program symbol graph ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "CallGraph.h"

#include "Checks.h"

#include <algorithm>
#include <cstdint>

using namespace dopelint;

//===----------------------------------------------------------------------===//
// Token helpers
//===----------------------------------------------------------------------===//

size_t dopelint::matchForward(const std::vector<Token> &T, size_t Open,
                              const char *OpenP, const char *CloseP) {
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    if (T[I].Kind == TokKind::Punct) {
      if (T[I].Text == OpenP)
        ++Depth;
      else if (T[I].Text == CloseP && --Depth == 0)
        return I;
    }
  }
  return T.size();
}

bool dopelint::isKeywordNoCall(const std::string &S) {
  static const std::set<std::string> K = {
      "if",       "while",    "for",      "switch",   "catch",
      "return",   "sizeof",   "alignof",  "decltype", "alignas",
      "assert",   "new",      "delete",   "static_assert",
      "noexcept", "defined",  "throw",    "co_return","co_await",
      "co_yield", "requires", "typeid",   "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast"};
  return K.count(S) != 0;
}

std::string dopelint::fileStem(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path
                                                : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  return Dot == std::string::npos ? Base : Base.substr(0, Dot);
}

dopelint::ClassRegions::ClassRegions(const std::vector<Token> &T) {
  for (size_t I = 0; I + 1 < T.size(); ++I) {
    if (T[I].InPP)
      continue;
    if (!isIdent(T[I], "class") && !isIdent(T[I], "struct") &&
        !isIdent(T[I], "union"))
      continue;
    if (I > 0 && (isIdent(T[I - 1], "enum") || isPunct(T[I - 1], "<")))
      continue; // enum class / template-template parameter
    // Name: first identifier past attributes / alignas.
    size_t J = I + 1;
    std::string Name;
    while (J + 1 < T.size()) {
      if (isPunct(T[J], "[")) {
        J = matchForward(T, J, "[", "]") + 1;
        continue;
      }
      if (isIdent(T[J], "alignas") && isPunct(T[J + 1], "(")) {
        J = matchForward(T, J + 1, "(", ")") + 1;
        continue;
      }
      if (T[J].Kind == TokKind::Ident) {
        Name = T[J].Text;
        ++J;
        break;
      }
      break;
    }
    if (Name.empty())
      continue;
    // Walk to the body brace; a `;` first means forward declaration.
    while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";") &&
           !isPunct(T[J], "=") && !isPunct(T[J], ")"))
      ++J;
    if (J >= T.size() || !isPunct(T[J], "{"))
      continue;
    size_t End = matchForward(T, J, "{", "}");
    Regions.push_back({Name, J, End});
  }
}

std::string dopelint::ClassRegions::enclosing(size_t Idx) const {
  std::string Best;
  size_t BestSpan = SIZE_MAX;
  for (const Region &R : Regions)
    if (R.Begin < Idx && Idx < R.End && R.End - R.Begin < BestSpan) {
      Best = R.Name;
      BestSpan = R.End - R.Begin;
    }
  return Best;
}

namespace {

/// Index of the balanced opening token for the closer at \p Close, or
/// SIZE_MAX when unbalanced.
size_t matchBackward(const std::vector<Token> &T, size_t Close,
                     const char *OpenP, const char *CloseP) {
  int Depth = 0;
  for (size_t I = Close + 1; I-- > 0;) {
    if (T[I].Kind == TokKind::Punct) {
      if (T[I].Text == CloseP)
        ++Depth;
      else if (T[I].Text == OpenP && --Depth == 0)
        return I;
    }
    if (I == 0)
      break;
  }
  return SIZE_MAX;
}

/// Token index -> innermost enclosing Scope (by direct-body
/// attribution; header tokens and ctor-init lists map to null).
class ScopeIndex {
public:
  ScopeIndex(const std::vector<Scope> &Scopes, size_t NumToks)
      : Map(NumToks, nullptr) {
    for (const Scope &S : Scopes)
      for (size_t Idx : S.OwnToks)
        if (Idx < Map.size())
          Map[Idx] = &S;
  }
  const Scope *at(size_t Idx) const {
    return Idx < Map.size() ? Map[Idx] : nullptr;
  }

private:
  std::vector<const Scope *> Map;
};

//===----------------------------------------------------------------------===//
// Scope detection
//===----------------------------------------------------------------------===//

/// Walks a constructor initializer list starting at the `:` token;
/// returns the index of the body `{` or SIZE_MAX on reject.
size_t skipCtorInit(const std::vector<Token> &T, size_t I) {
  ++I; // past ':'
  while (I < T.size()) {
    // Member (possibly qualified / templated) name.
    while (I < T.size() && !isPunct(T[I], "(") && !isPunct(T[I], "{") &&
           !isPunct(T[I], ";") && !isPunct(T[I], "}"))
      ++I;
    if (I >= T.size() || isPunct(T[I], ";") || isPunct(T[I], "}"))
      return SIZE_MAX;
    // `{` directly after the member name is a brace init; a `{` at the
    // start of an initializer position could only be the body when the
    // list has ended (handled after the group + comma logic).
    if (isPunct(T[I], "("))
      I = matchForward(T, I, "(", ")") + 1;
    else
      I = matchForward(T, I, "{", "}") + 1;
    if (I < T.size() && isPunct(T[I], "..."))
      ++I;
    if (I < T.size() && isPunct(T[I], ",")) {
      ++I;
      continue;
    }
    if (I < T.size() && isPunct(T[I], "{"))
      return I;
    return SIZE_MAX;
  }
  return SIZE_MAX;
}

/// After a candidate's closing paren at \p CloseParen, walks the
/// specifier tail (const, noexcept, override, trailing return, ctor
/// inits, annotation macros like DOPE_REQUIRES(...), ...) looking for a
/// function body. Returns the body `{` index or SIZE_MAX when the
/// construct is not a definition. Sets \p SawOverride when the tail
/// marks the function virtual and collects DOPE_REQUIRES capability
/// names into \p RequiresCaps.
size_t findBody(const std::vector<Token> &T, size_t CloseParen,
                bool &SawOverride, std::vector<std::string> &RequiresCaps) {
  size_t I = CloseParen + 1;
  while (I < T.size()) {
    const Token &Tok = T[I];
    if (isPunct(Tok, "{"))
      return I;
    if (isPunct(Tok, ";") || isPunct(Tok, "}") || isPunct(Tok, "=") ||
        isPunct(Tok, ",") || isPunct(Tok, ")"))
      return SIZE_MAX;
    if (isPunct(Tok, ":"))
      return skipCtorInit(T, I);
    if (isIdent(Tok, "override") || isIdent(Tok, "final")) {
      SawOverride = true;
      ++I;
      continue;
    }
    if (isIdent(Tok, "noexcept") || isIdent(Tok, "throw")) {
      ++I;
      if (I < T.size() && isPunct(T[I], "("))
        I = matchForward(T, I, "(", ")") + 1;
      continue;
    }
    if (isPunct(Tok, "->")) {
      // Trailing return type: anything up to the body brace.
      ++I;
      while (I < T.size() && !isPunct(T[I], "{") && !isPunct(T[I], ";") &&
             !isPunct(T[I], "}"))
        ++I;
      continue;
    }
    if (isPunct(Tok, "[")) { // attribute [[...]]
      I = matchForward(T, I, "[", "]") + 1;
      continue;
    }
    if (Tok.Kind == TokKind::Ident && I + 1 < T.size() &&
        isPunct(T[I + 1], "(")) {
      // Parenthesized specifier macro: the clang thread-safety
      // annotations (DOPE_REQUIRES(Mu), DOPE_ACQUIRE(Mu), ...) and
      // __attribute__((...)) land here. Capture REQUIRES capabilities
      // — the lock-order analysis treats them as held on entry.
      size_t MacroClose = matchForward(T, I + 1, "(", ")");
      if (MacroClose >= T.size())
        return SIZE_MAX;
      if (Tok.Text == "DOPE_REQUIRES" || Tok.Text == "DOPE_REQUIRES_SHARED")
        for (size_t K = I + 2; K < MacroClose; ++K)
          if (T[K].Kind == TokKind::Ident && T[K].Text != "this")
            RequiresCaps.push_back(T[K].Text);
      I = MacroClose + 1;
      continue;
    }
    if (Tok.Kind == TokKind::Ident || isPunct(Tok, "&") ||
        isPunct(Tok, "&&") || isPunct(Tok, "...")) {
      ++I; // const / mutable / try / ref-qualifier / macro specifier
      continue;
    }
    return SIZE_MAX;
  }
  return SIZE_MAX;
}

/// Scans backward from the candidate name for DOPE_HOT / DOPE_COLD /
/// virtual in the same declaration (bounded; stops at statement/body
/// boundaries).
void scanHeaderPrefix(const std::vector<Token> &T, size_t NameIdx, bool &Hot,
                      bool &Cold, bool &Virtual) {
  size_t Steps = 0;
  for (size_t K = NameIdx; K-- > 0 && Steps < 64; ++Steps) {
    const Token &Tok = T[K];
    if (isPunct(Tok, ";") || isPunct(Tok, "{") || isPunct(Tok, "}"))
      return;
    if (isPunct(Tok, ":") && K > 0 &&
        (isIdent(T[K - 1], "public") || isIdent(T[K - 1], "private") ||
         isIdent(T[K - 1], "protected")))
      return;
    if (isIdent(Tok, "DOPE_HOT"))
      Hot = true;
    if (isIdent(Tok, "DOPE_COLD"))
      Cold = true;
    if (isIdent(Tok, "virtual"))
      Virtual = true;
  }
}

} // namespace

std::vector<Scope> dopelint::collectScopes(const std::vector<Token> &T) {
  ClassRegions Classes(T);

  // Pass A: find every function header and remember its body brace.
  std::map<size_t, Scope> BodyStart;
  for (size_t I = 0; I + 1 < T.size(); ++I) {
    if (T[I].InPP)
      continue;
    Scope S;
    size_t Body = SIZE_MAX;
    size_t HeaderOpen = SIZE_MAX;
    if (T[I].Kind == TokKind::Ident && isPunct(T[I + 1], "(") &&
        !isKeywordNoCall(T[I].Text)) {
      size_t Close = matchForward(T, I + 1, "(", ")");
      if (Close >= T.size())
        continue;
      bool SawOverride = false;
      Body = findBody(T, Close, SawOverride, S.RequiresCaps);
      if (Body == SIZE_MAX)
        continue;
      S.Name = T[I].Text;
      S.Line = T[I].Line;
      S.Virtual = SawOverride;
      // Out-of-line `X::name` (or `X::~name`) qualifier, else the
      // innermost enclosing class.
      if (I >= 2 && isPunct(T[I - 1], "::") && T[I - 2].Kind == TokKind::Ident)
        S.Qual = T[I - 2].Text;
      else if (I >= 3 && isPunct(T[I - 1], "~") && isPunct(T[I - 2], "::") &&
               T[I - 3].Kind == TokKind::Ident)
        S.Qual = T[I - 3].Text;
      else
        S.Qual = Classes.enclosing(I);
      HeaderOpen = I + 1;
      scanHeaderPrefix(T, I, S.Hot, S.Cold, S.Virtual);
      for (size_t H = HeaderOpen + 1; H < Close; ++H)
        S.HeaderToks.push_back(H);
    } else if (isPunct(T[I], "]") && isPunct(T[I + 1], "(")) {
      size_t Close = matchForward(T, I + 1, "(", ")");
      if (Close >= T.size())
        continue;
      bool SawOverride = false;
      Body = findBody(T, Close, SawOverride, S.RequiresCaps);
      if (Body == SIZE_MAX)
        continue;
      S.Name = "<lambda>";
      S.Line = T[I].Line;
      S.Qual = Classes.enclosing(I);
      for (size_t H = I + 2; H < Close; ++H)
        S.HeaderToks.push_back(H);
    } else if (isPunct(T[I], "]") && isPunct(T[I + 1], "{")) {
      Body = I + 1;
      S.Name = "<lambda>";
      S.Line = T[I].Line;
      S.Qual = Classes.enclosing(I);
    } else {
      continue;
    }
    if (Body != SIZE_MAX && !BodyStart.count(Body))
      BodyStart.emplace(Body, std::move(S));
  }

  // Pass B: attribute each token to the innermost enclosing scope.
  std::vector<Scope> Done;
  struct Active {
    Scope S;
    int BodyDepth;
  };
  std::vector<Active> Stack;
  int Depth = 0;
  for (size_t I = 0; I < T.size(); ++I) {
    if (isPunct(T[I], "{")) {
      ++Depth;
      auto It = BodyStart.find(I);
      if (It != BodyStart.end()) {
        Stack.push_back({std::move(It->second), Depth});
        continue;
      }
    } else if (isPunct(T[I], "}")) {
      if (!Stack.empty() && Stack.back().BodyDepth == Depth) {
        Done.push_back(std::move(Stack.back().S));
        Stack.pop_back();
        --Depth;
        continue;
      }
      --Depth;
    }
    if (!Stack.empty())
      Stack.back().S.OwnToks.push_back(I);
  }
  while (!Stack.empty()) { // unterminated at EOF: keep what we saw
    Done.push_back(std::move(Stack.back().S));
    Stack.pop_back();
  }
  return Done;
}

//===----------------------------------------------------------------------===//
// Hot-path impurities
//===----------------------------------------------------------------------===//

const char *dopelint::impurityNoun(ImpurityKind K) {
  switch (K) {
  case ImpurityKind::Lock:
    return "a lock";
  case ImpurityKind::Alloc:
    return "an allocation";
  case ImpurityKind::Blocking:
    return "a blocking wait";
  case ImpurityKind::Growth:
    return "container growth";
  }
  return "an impurity";
}

std::optional<Impurity> dopelint::classifyImpurity(const std::vector<Token> &T,
                                                   size_t Idx) {
  static const std::set<std::string> LockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  static const std::set<std::string> LockCalls = {
      "lock", "try_lock", "lock_shared", "try_lock_shared"};
  static const std::set<std::string> PthreadLocks = {
      "pthread_mutex_lock", "pthread_spin_lock", "pthread_rwlock_rdlock",
      "pthread_rwlock_wrlock"};
  static const std::set<std::string> Allocs = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc"};
  // Blocking waits: a DOPE_HOT scheduler body (deque push/pop/steal,
  // spawn/tryAcquire sweeps) must stay wait-free — parking belongs in
  // a dedicated cold entry point (e.g. StealScheduler::parkUntilWork).
  static const std::set<std::string> BlockingCalls = {
      "wait", "wait_for", "wait_until", "waitAndPop"};
  // Amortized-growth members: owner-side fast paths may not grow
  // containers inline; ring growth must live in a cold helper (see
  // ChaseLevDeque::grow).
  static const std::set<std::string> GrowthCalls = {
      "push_back", "emplace_back", "resize", "reserve"};

  const Token &Tok = T[Idx];
  if (Tok.Kind != TokKind::Ident)
    return std::nullopt;
  Impurity Imp;
  Imp.Detail = Tok.Text;
  Imp.Line = Tok.Line;
  if (LockTypes.count(Tok.Text) || PthreadLocks.count(Tok.Text)) {
    Imp.Kind = ImpurityKind::Lock;
    return Imp;
  }
  const bool MemberCall =
      Idx > 0 && Idx + 1 < T.size() &&
      (isPunct(T[Idx - 1], ".") || isPunct(T[Idx - 1], "->")) &&
      isPunct(T[Idx + 1], "(");
  if (MemberCall && LockCalls.count(Tok.Text)) {
    Imp.Kind = ImpurityKind::Lock;
    Imp.Detail = "." + Tok.Text + "()";
    return Imp;
  }
  if (MemberCall && BlockingCalls.count(Tok.Text)) {
    Imp.Kind = ImpurityKind::Blocking;
    Imp.Detail = "." + Tok.Text + "()";
    return Imp;
  }
  if (MemberCall && GrowthCalls.count(Tok.Text)) {
    Imp.Kind = ImpurityKind::Growth;
    Imp.Detail = "." + Tok.Text + "()";
    return Imp;
  }
  if (Tok.Text == "new" || Allocs.count(Tok.Text)) {
    Imp.Kind = ImpurityKind::Alloc;
    return Imp;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

namespace {

/// Statement-introducing identifiers that may directly precede a call:
/// `return foo(x)` is a call, `Widget foo(x)` is a declaration.
bool precedesCall(const std::string &S) {
  static const std::set<std::string> K = {
      "return", "co_return", "co_yield", "else", "do",
      "throw",  "case",      "new",      "delete"};
  return K.count(S) != 0;
}

} // namespace

bool dopelint::isPrimitiveMemberOp(const std::string &S) {
  static const std::set<std::string> Ops = {
      "load",          "store",       "exchange",     "fetch_add",
      "fetch_sub",     "fetch_and",   "fetch_or",     "fetch_xor",
      "compare_exchange_strong",      "compare_exchange_weak",
      "test_and_set",  "clear",       "notify_one",   "notify_all",
      "count_down",    "test"};
  return Ops.count(S) != 0;
}

CallGraph::CallGraph(const std::vector<FileTokens> &Files) {
  for (const FileTokens &File : Files)
    ScopeCache.emplace(&File, collectScopes(File.Lex.Tokens));
  for (const FileTokens &File : Files) {
    const std::vector<Token> &T = File.Lex.Tokens;
    for (const Scope &S : ScopeCache.at(&File)) {
      if (S.Name == "<lambda>")
        continue;
      FnNode N;
      N.File = &File;
      N.Def = &S;
      for (size_t Idx : S.OwnToks) {
        if (std::optional<Impurity> Imp = classifyImpurity(T, Idx)) {
          N.Impurities.push_back(std::move(*Imp));
          continue;
        }
        const Token &Tok = T[Idx];
        if (Tok.Kind != TokKind::Ident || Tok.InPP ||
            isKeywordNoCall(Tok.Text) || Idx + 1 >= T.size() ||
            !isPunct(T[Idx + 1], "("))
          continue;
        if (Idx > 0) {
          const Token &Prev = T[Idx - 1];
          // `Type name(args)` is a declaration, `~X(` a destructor call
          // on a name the graph resolves by class anyway.
          if (Prev.Kind == TokKind::Ident && !precedesCall(Prev.Text))
            continue;
          if (isPunct(Prev, "~"))
            continue;
          if ((isPunct(Prev, ".") || isPunct(Prev, "->")) &&
              isPrimitiveMemberOp(Tok.Text))
            continue;
        }
        N.Calls.push_back({Tok.Text, Tok.Line});
      }
      Nodes.push_back(std::move(N));
    }
  }
  for (size_t I = 0; I != Nodes.size(); ++I)
    ByName[Nodes[I].Def->Name].push_back(I);
}

const std::vector<Scope> &CallGraph::scopesOf(const FileTokens &File) const {
  static const std::vector<Scope> Empty;
  auto It = ScopeCache.find(&File);
  return It == ScopeCache.end() ? Empty : It->second;
}

const FnNode *CallGraph::resolve(const std::string &Callee,
                                 const std::string &FromQual,
                                 const FnNode *Self) const {
  auto It = ByName.find(Callee);
  if (It == ByName.end())
    return nullptr;
  std::vector<const FnNode *> Cands;
  for (size_t I : It->second) {
    const FnNode *N = &Nodes[I];
    if (N == Self)
      continue;
    Cands.push_back(N);
  }
  if (Cands.empty())
    return nullptr;
  if (!FromQual.empty()) {
    std::vector<const FnNode *> Same;
    for (const FnNode *N : Cands)
      if (N->Def->Qual == FromQual)
        Same.push_back(N);
    if (Same.size() == 1)
      return Same.front();
    if (Same.size() > 1)
      return nullptr; // overload set in the caller's class: ambiguous
  }
  if (Cands.size() == 1)
    return Cands.front();
  // Multiple definitions across classes: resolvable only when they all
  // live in one class (an overload set) — pick the first, matching the
  // HP003 never-guess rule for genuinely cross-class ambiguity.
  for (size_t I = 1; I < Cands.size(); ++I)
    if (Cands[I]->Def->Qual != Cands[0]->Def->Qual)
      return nullptr;
  return Cands.front();
}

//===----------------------------------------------------------------------===//
// Atomics index
//===----------------------------------------------------------------------===//

namespace {

/// Canonical order name for an identifier appearing in an atomic-op
/// argument list, or empty. Exact std names first, then the alias
/// suffix convention (detail::ChaseLevRelaxed -> "relaxed").
std::string orderOf(const std::string &S) {
  static const std::map<std::string, std::string> Exact = {
      {"memory_order_relaxed", "relaxed"},
      {"memory_order_consume", "consume"},
      {"memory_order_acquire", "acquire"},
      {"memory_order_release", "release"},
      {"memory_order_acq_rel", "acq_rel"},
      {"memory_order_seq_cst", "seq_cst"},
      {"relaxed", "relaxed"},
      {"consume", "consume"},
      {"acquire", "acquire"},
      {"release", "release"},
      {"acq_rel", "acq_rel"},
      {"seq_cst", "seq_cst"}};
  auto It = Exact.find(S);
  if (It != Exact.end())
    return It->second;
  auto EndsWith = [&](const char *Suffix) {
    size_t N = std::string(Suffix).size();
    return S.size() > N && S.compare(S.size() - N, N, Suffix) == 0;
  };
  if (EndsWith("Relaxed"))
    return "relaxed";
  if (EndsWith("Acquire"))
    return "acquire";
  if (EndsWith("Release"))
    return "release";
  if (EndsWith("AcqRel"))
    return "acq_rel";
  if (EndsWith("SeqCst"))
    return "seq_cst";
  return "";
}

bool isAtomicOpName(const std::string &S) {
  static const std::set<std::string> Ops = {
      "load",          "store",         "exchange",
      "fetch_add",     "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",     "compare_exchange_strong",
      "compare_exchange_weak"};
  return Ops.count(S) != 0;
}

} // namespace

std::vector<AtomicOp>
dopelint::collectAtomicOps(const std::vector<FileTokens> &Files,
                           const CallGraph &CG) {
  // Pass 1: declarations. Member name -> set of class-qualified keys.
  std::map<std::string, std::set<std::string>> DeclKeys;
  for (const FileTokens &File : Files) {
    const std::vector<Token> &T = File.Lex.Tokens;
    ClassRegions Classes(T);
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "atomic") || !isPunct(T[I + 1], "<") || T[I].InPP)
        continue;
      size_t Close = matchForward(T, I + 1, "<", ">");
      if (Close + 1 >= T.size() || T[Close + 1].Kind != TokKind::Ident)
        continue;
      const std::string &Member = T[Close + 1].Text;
      if (Close + 2 < T.size() &&
          !(isPunct(T[Close + 2], ";") || isPunct(T[Close + 2], "{") ||
            isPunct(T[Close + 2], "=") || isPunct(T[Close + 2], ",")))
        continue; // parameter, cast, or template argument — not a decl
      std::string Qual = Classes.enclosing(I);
      if (Qual.empty())
        Qual = fileStem(File.Path);
      DeclKeys[Member].insert(Qual + "::" + Member);
    }
  }

  // Pass 2: member operations, resolved against the declarations.
  std::vector<AtomicOp> Ops;
  for (const FileTokens &File : Files) {
    const std::vector<Token> &T = File.Lex.Tokens;
    ClassRegions Classes(T);
    ScopeIndex ScopeAt(CG.scopesOf(File), T.size());
    for (size_t I = 1; I + 1 < T.size(); ++I) {
      if (T[I].Kind != TokKind::Ident || !isAtomicOpName(T[I].Text) ||
          T[I].InPP)
        continue;
      if (!isPunct(T[I - 1], ".") && !isPunct(T[I - 1], "->"))
        continue;
      if (!isPunct(T[I + 1], "("))
        continue;
      // Receiver: hop backward over index/call groups to the base name
      // (`Run->Remaining[TaskIndex].fetch_sub` resolves to Remaining).
      size_t R = I - 1;
      std::string Member;
      while (R-- > 0) {
        if (isPunct(T[R], "]")) {
          size_t Open = matchBackward(T, R, "[", "]");
          if (Open == SIZE_MAX || Open == 0)
            break;
          R = Open;
          continue;
        }
        if (isPunct(T[R], ")")) {
          size_t Open = matchBackward(T, R, "(", ")");
          if (Open == SIZE_MAX || Open == 0)
            break;
          R = Open;
          continue;
        }
        if (T[R].Kind == TokKind::Ident)
          Member = T[R].Text;
        break;
      }
      if (Member.empty())
        continue;
      auto DeclIt = DeclKeys.find(Member);
      if (DeclIt == DeclKeys.end())
        continue;
      const Scope *Enclosing = ScopeAt.at(I);
      std::string SiteQual =
          Enclosing && !Enclosing->Qual.empty() ? Enclosing->Qual
                                                : Classes.enclosing(I);
      if (SiteQual.empty())
        SiteQual = fileStem(File.Path);
      std::string Key;
      if (DeclIt->second.size() == 1) {
        Key = *DeclIt->second.begin();
      } else {
        std::string Qualified = SiteQual + "::" + Member;
        if (DeclIt->second.count(Qualified))
          Key = Qualified;
        else
          continue; // ambiguous receiver: never guess
      }
      AtomicOp Op;
      Op.Key = Key;
      Op.Member = Member;
      Op.Op = T[I].Text;
      Op.File = &File;
      Op.Line = T[I].Line;
      Op.Enclosing = Enclosing;
      size_t ArgClose = matchForward(T, I + 1, "(", ")");
      std::vector<std::string> Orders;
      for (size_t K = I + 2; K < ArgClose && K < T.size(); ++K) {
        if (T[K].Kind != TokKind::Ident)
          continue;
        std::string O = orderOf(T[K].Text);
        if (!O.empty())
          Orders.push_back(std::move(O));
      }
      Op.Order = Orders.empty() ? "seq_cst" : Orders.front();
      if (Orders.size() > 1 &&
          Op.Op.rfind("compare_exchange", 0) == 0)
        Op.FailOrder = Orders[1];
      Ops.push_back(std::move(Op));
    }
  }
  return Ops;
}

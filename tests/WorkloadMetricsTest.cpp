//===- tests/WorkloadMetricsTest.cpp - Workload and metrics tests -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "metrics/FaultStats.h"
#include "metrics/ResponseStats.h"
#include "metrics/TimeSeries.h"
#include "workload/Arrivals.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TEST(PoissonProcess, ArrivalsMonotonic) {
  PoissonProcess P(5.0, 1);
  double Last = 0.0;
  for (int I = 0; I != 1000; ++I) {
    const double T = P.nextArrival();
    EXPECT_GT(T, Last);
    Last = T;
  }
  EXPECT_DOUBLE_EQ(P.lastArrival(), Last);
}

TEST(PoissonProcess, MeanRateMatches) {
  PoissonProcess P(4.0, 7);
  const int N = 40000;
  double Last = 0.0;
  for (int I = 0; I != N; ++I)
    Last = P.nextArrival();
  EXPECT_NEAR(static_cast<double>(N) / Last, 4.0, 0.1);
}

TEST(PoissonProcess, DeterministicForSeed) {
  PoissonProcess A(2.0, 99), B(2.0, 99);
  for (int I = 0; I != 100; ++I)
    EXPECT_DOUBLE_EQ(A.nextArrival(), B.nextArrival());
}

TEST(PoissonProcess, SetRateChangesGapScale) {
  PoissonProcess P(1.0, 3);
  P.setRate(100.0);
  double Last = 0.0;
  const int N = 5000;
  for (int I = 0; I != N; ++I)
    Last = P.nextArrival();
  EXPECT_NEAR(static_cast<double>(N) / Last, 100.0, 5.0);
}

TEST(LoadTrace, PhasesAndLookup) {
  LoadTrace Trace;
  Trace.addPhase(0.2, 10.0);
  Trace.addPhase(0.9, 5.0);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(0.0), 0.2);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(9.99), 0.2);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(10.0), 0.9);
  // The last phase extends forever.
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(1000.0), 0.9);
  EXPECT_DOUBLE_EQ(Trace.totalDuration(), 15.0);
  EXPECT_EQ(Trace.phaseCount(), 2u);
}

TEST(LoadTrace, EmptyIsZero) {
  LoadTrace Trace;
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(5.0), 0.0);
  EXPECT_DOUBLE_EQ(Trace.totalDuration(), 0.0);
}

TEST(LoadTrace, StepPattern) {
  LoadTrace Trace = LoadTrace::makeStepPattern(0.2, 0.9, 10.0, 3);
  EXPECT_EQ(Trace.phaseCount(), 6u);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(5.0), 0.2);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(15.0), 0.9);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(25.0), 0.2);
  EXPECT_DOUBLE_EQ(Trace.totalDuration(), 60.0);
}

TEST(ResponseStats, DecomposesWaitAndExec) {
  ResponseStats S;
  S.recordTransaction(0.0, 2.0, 5.0);
  S.recordTransaction(1.0, 1.0, 4.0);
  EXPECT_EQ(S.count(), 2u);
  EXPECT_DOUBLE_EQ(S.meanResponseTime(), 4.0); // (5 + 3) / 2
  EXPECT_DOUBLE_EQ(S.meanWaitTime(), 1.0);     // (2 + 0) / 2
  EXPECT_DOUBLE_EQ(S.meanExecTime(), 3.0);     // (3 + 3) / 2
  EXPECT_DOUBLE_EQ(S.maxResponseTime(), 5.0);
}

TEST(ResponseStats, ThroughputOverSpan) {
  ResponseStats S;
  S.recordTransaction(0.0, 0.0, 1.0);
  S.recordTransaction(1.0, 1.0, 2.0);
  S.recordTransaction(2.0, 2.0, 4.0);
  // 3 transactions over [0, 4].
  EXPECT_DOUBLE_EQ(S.throughput(), 0.75);
}

TEST(ResponseStats, PercentilesAndReset) {
  ResponseStats S;
  for (int I = 1; I <= 100; ++I)
    S.recordTransaction(0.0, 0.0, static_cast<double>(I));
  EXPECT_NEAR(S.responsePercentile(0.5), 50.5, 0.01);
  S.reset();
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.throughput(), 0.0);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries S("test");
  S.addPoint(0.0, 1.0);
  S.addPoint(1.0, 3.0);
  S.addPoint(2.0, 5.0);
  EXPECT_DOUBLE_EQ(S.meanOver(0.0, 2.0), 2.0); // excludes t=2
  EXPECT_DOUBLE_EQ(S.meanOver(0.5, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(S.meanOver(10.0, 20.0), 0.0);
}

TEST(TimeSeries, ResampleFillsGapsWithPrevious) {
  TimeSeries S;
  S.addPoint(0.5, 2.0);
  S.addPoint(3.5, 6.0);
  TimeSeries R = S.resample(0.0, 4.0, 1.0);
  ASSERT_EQ(R.size(), 4u);
  EXPECT_DOUBLE_EQ(R.point(0).Value, 2.0);
  EXPECT_DOUBLE_EQ(R.point(1).Value, 2.0); // gap repeats previous
  EXPECT_DOUBLE_EQ(R.point(2).Value, 2.0);
  EXPECT_DOUBLE_EQ(R.point(3).Value, 6.0);
}

TEST(RateTracker, CountsPerWindow) {
  RateTracker R(1.0);
  R.recordEvent(0.1);
  R.recordEvent(0.2);
  R.recordEvent(1.5);
  R.finish(3.0);
  const TimeSeries &S = R.series();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_DOUBLE_EQ(S.point(0).Value, 2.0); // [0,1): two events
  EXPECT_DOUBLE_EQ(S.point(1).Value, 1.0); // [1,2): one
  EXPECT_DOUBLE_EQ(S.point(2).Value, 0.0); // [2,3): none
}

TEST(RateTracker, EmptyFinishIsSafe) {
  RateTracker R(1.0);
  R.finish(10.0);
  EXPECT_TRUE(R.series().empty());
}

TEST(LoadTrace, BurstPattern) {
  LoadTrace Trace = LoadTrace::makeBurstPattern(0.5, 3.0, 10.0, 5.0);
  EXPECT_EQ(Trace.phaseCount(), 3u);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(0.0), 0.5);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(10.0), 3.0);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(14.9), 3.0);
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(15.0), 0.5);
  // The trailing baseline phase covers the drain tail forever.
  EXPECT_DOUBLE_EQ(Trace.loadFactorAt(1000.0), 0.5);
  EXPECT_DOUBLE_EQ(Trace.totalDuration(), 25.0);
}

TEST(FaultStats, ToStringRendersCounters) {
  FaultStats S;
  S.ContextsKilled = 2;
  S.ReplicasWedged = 6;
  S.Incidents = 2;
  S.Retries = 1;
  S.ItemsShed = 120;
  S.ItemsDropped = 3;
  S.TimeToRecoverSeconds = 14.0;
  EXPECT_EQ(toString(S), "kills=2 wedged=6 incidents=2 retries=1 "
                         "shed=120 dropped=3 recover=14.0s");
  S.TimeToRecoverSeconds = -1.0;
  EXPECT_EQ(toString(S), "kills=2 wedged=6 incidents=2 retries=1 "
                         "shed=120 dropped=3 recover=never");
}

TEST(TimeToRecover, FindsFirstWindowAtTarget) {
  TimeSeries S("tput");
  for (int T = 0; T != 10; ++T)
    S.addPoint(T, 4.0); // pre-fault
  for (int T = 10; T != 20; ++T)
    S.addPoint(T, 1.0); // degraded
  for (int T = 20; T != 30; ++T)
    S.addPoint(T, 4.0); // recovered
  EXPECT_DOUBLE_EQ(timeToRecover(S, 10.0, 3.5), 10.0);
  // Windows before the fault don't count even though they hit the rate.
  EXPECT_DOUBLE_EQ(timeToRecover(S, 0.0, 3.5), 0.0);
}

TEST(TimeToRecover, SustainRejectsBlips) {
  TimeSeries S("tput");
  for (int T = 0; T != 5; ++T)
    S.addPoint(T, 1.0);
  S.addPoint(5.0, 4.0); // one-window blip
  for (int T = 6; T != 10; ++T)
    S.addPoint(T, 1.0);
  for (int T = 10; T != 20; ++T)
    S.addPoint(T, 4.0); // real recovery
  // Without a sustain requirement the blip counts...
  EXPECT_DOUBLE_EQ(timeToRecover(S, 0.0, 3.5), 5.0);
  // ...with one it does not.
  EXPECT_DOUBLE_EQ(timeToRecover(S, 0.0, 3.5, 3.0), 10.0);
}

TEST(TimeToRecover, NegativeWhenNeverRecovered) {
  TimeSeries S("tput");
  for (int T = 0; T != 20; ++T)
    S.addPoint(T, 1.0);
  EXPECT_LT(timeToRecover(S, 5.0, 3.5), 0.0);
  EXPECT_LT(timeToRecover(TimeSeries("empty"), 0.0, 1.0), 0.0);
}

TEST(RateTracker, WindowWidthScalesRate) {
  RateTracker R(0.5);
  R.recordEvent(0.1);
  R.recordEvent(0.2);
  R.finish(0.5);
  ASSERT_EQ(R.series().size(), 1u);
  EXPECT_DOUBLE_EQ(R.series().point(0).Value, 4.0); // 2 events / 0.5 s
}

} // namespace

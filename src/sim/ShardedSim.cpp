//===- sim/ShardedSim.cpp - Conservative sharded simulation core ---------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedSim.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

using namespace dope;

namespace {

/// Independent per-shard seed stream: SplitMix64-style mixing keeps
/// neighbouring shard indices statistically unrelated while staying a
/// pure function of (Seed, Index) — shard count does not perturb the
/// streams of lower-indexed shards.
uint64_t shardSeed(uint64_t Seed, unsigned Index) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Resolves the thread-team size: explicit when given, else bounded by
/// the host's concurrency, always within [1, Shards].
unsigned resolveTeam(const ShardedSimOptions &Opts) {
  const unsigned Shards = Opts.Shards == 0 ? 1 : Opts.Shards;
  unsigned T = Opts.Threads;
  if (T == 0) {
    T = std::thread::hardware_concurrency();
    if (T == 0)
      T = Shards;
  }
  return std::min(std::max(1u, T), Shards);
}

} // namespace

ShardedSim::ShardedSim(ShardedSimOptions Options, EpochFn EpochCb,
                       BarrierFn BarrierCb)
    : Opts(Options), Epoch(std::move(EpochCb)), Barrier(std::move(BarrierCb)),
      Team(resolveTeam(Options)), Sync(Team) {
  if (Opts.Shards == 0)
    throw std::invalid_argument("ShardedSim: shard count must be >= 1");
  if (!(Opts.LookaheadSeconds > 0.0))
    throw std::invalid_argument(
        "ShardedSim: lookahead must be strictly positive (zero lookahead "
        "would deliver cross-shard effects inside the producing epoch)");
  Contexts.reserve(Opts.Shards);
  for (unsigned I = 0; I != Opts.Shards; ++I)
    Contexts.emplace_back(std::unique_ptr<ShardContext>(
        new ShardContext(I, Opts.Shards, shardSeed(Opts.Seed, I))));
  EpochBegin = 0.0;
  EpochEnd = Opts.LookaheadSeconds;
  for (auto &Ctx : Contexts) {
    Ctx->Begin = EpochBegin;
    Ctx->End = EpochEnd;
  }
}

void ShardedSim::coordinate() {
  if (Failed.load(std::memory_order_acquire)) {
    KeepGoing = false;
    return;
  }
  bool More = false;
  try {
    More = Barrier ? Barrier(EpochEnd) : false;
  } catch (...) {
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    if (!FirstError)
      FirstError = std::current_exception();
    More = false;
  }
  KeepGoing = More;
  if (!More)
    return;
  EpochBegin = EpochEnd;
  EpochEnd += Opts.LookaheadSeconds;
  for (auto &Ctx : Contexts) {
    Ctx->Begin = EpochBegin;
    Ctx->End = EpochEnd;
  }
}

void ShardedSim::runOwnedShards(unsigned Tid) {
  if (Failed.load(std::memory_order_acquire))
    return;
  // Static round-robin ownership: shard order within an epoch is
  // immaterial (shard-local state only), and the fixed assignment keeps
  // scheduling pressure even across epochs.
  for (unsigned I = Tid; I < Opts.Shards; I += Team) {
    try {
      Epoch(*Contexts[I]);
    } catch (...) {
      {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
      Failed.store(true, std::memory_order_release);
      return;
    }
  }
}

void ShardedSim::workerLoop(unsigned Tid) {
  for (;;) {
    runOwnedShards(Tid);
    Sync.arriveAndWait([this] { coordinate(); });
    // KeepGoing was written inside the serial section; the barrier's
    // mutex hand-off makes this read safe.
    if (!KeepGoing)
      break;
  }
}

void ShardedSim::run() {
  if (Team == 1) {
    // Inline path (single shard, or a multiplexed team of one): same
    // epoch/barrier cadence, caller's thread, no synchronization —
    // byte-identical to the threaded runs and, at one shard, to the
    // pre-sharding loops.
    for (;;) {
      runOwnedShards(0);
      coordinate();
      if (!KeepGoing)
        break;
    }
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Team);
    for (unsigned T = 0; T != Team; ++T)
      Workers.emplace_back([this, T] { workerLoop(T); });
    for (std::thread &W : Workers)
      W.join();
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}

uint64_t ShardedSim::totalDispatched() const {
  uint64_t Total = 0;
  for (const auto &Ctx : Contexts)
    Total += Ctx->Dispatched;
  return Total;
}

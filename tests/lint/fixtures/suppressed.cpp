// Suppression fixture: real violations silenced by dope-lint markers.
// dope_lint must report zero findings here.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <chrono>
#include <cstdlib>

double calibrationOnly() {
  // Calibration harness, deliberately outside the Clock abstraction.
  // dope-lint: allow(DL001)
  auto Now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(Now.time_since_epoch()).count();
}

int chaosRoll() {
  return rand() % 6; // dope-lint: allow(DL002)
}

int chaosRollBlanket() {
  return rand() % 6; // dope-lint: allow(all)
}

//===- bench/ext_scale.cpp - Sharded engine scaling acceptance -------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling acceptance for the sharded simulation core: a platform-sized
/// colocation scenario (120 tenants, millions of simulated events) run
/// on the conservative time-barrier engine at 1/2/4/8 shards, plus a
/// pipeline replica fleet sweep. Two claims are checked:
///
///   1. Determinism — every sharded run must be *bit-identical* to the
///      single-shard oracle: per-tenant stats, fairness, allocation
///      timeline, protocol journal, and the work-proportional simulated
///      event count. This is a hard gate; a miss fails the binary.
///
///   2. Scaling — events per wall second at each shard count. On a
///      multi-core runner the 8-shard rate should clearly beat the
///      1-shard rate; the rates are reported here and gated
///      directionally against the committed baseline by the perf suite
///      (a 1-core CI runner legitimately sees no speedup, so raw
///      speedup is informational, not a local pass/fail).
///
/// --shards N restricts the sweep to one shard count (plus the oracle
/// for the determinism diff); --quick shrinks the scenario for smoke
/// runs (24 tenants).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/PipelineApps.h"
#include "sim/ColocationSim.h"
#include "sim/ShardedPipeline.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace dope;
using namespace dope::bench;

namespace {

using SteadyClock = std::chrono::steady_clock;

double secondsSince(SteadyClock::time_point Start) {
  return std::chrono::duration<double>(SteadyClock::now() - Start).count();
}

/// A platform-sized mixed fleet: every third tenant is a
/// latency-sensitive nested-parallel frontend, the rest are
/// throughput-goal batch pipelines with staggered arrival rates so no
/// two shards own identical work.
std::vector<ColocationTenantSpec> fleetTenants(unsigned Count) {
  std::vector<ColocationTenantSpec> Specs;
  Specs.reserve(Count);
  for (unsigned I = 0; I != Count; ++I) {
    ColocationTenantSpec T;
    if (I % 3 == 0) {
      T.Tenant.Name = "svc" + std::to_string(I);
      T.Tenant.Goal = TenantGoal::ResponseTime;
      T.Tenant.Weight = 2.0;
      T.Tenant.MinThreads = 1;
      T.Tenant.SloSeconds = 0.5;
      T.Kind = ColocationTenantSpec::AppKind::NestServer;
      T.Nest.Name = T.Tenant.Name;
      T.Nest.SeqServiceSeconds = 0.05;
      T.Nest.Curve = SpeedupCurve(0.1, 0.2);
      T.ArrivalRate = 20.0 + (I % 7);
    } else {
      T.Tenant.Name = "job" + std::to_string(I);
      T.Tenant.Goal = TenantGoal::Throughput;
      T.Tenant.Weight = 1.0;
      T.Kind = ColocationTenantSpec::AppKind::Pipeline;
      T.Pipeline.Name = T.Tenant.Name;
      T.Pipeline.Stages = {{"decode", true, 0.02, 0.15},
                           {"work", true, 0.1, 0.15},
                           {"sink", true, 0.03, 0.15}};
      T.ArrivalRate = 40.0 + 5.0 * (I % 13);
    }
    Specs.push_back(std::move(T));
  }
  return Specs;
}

ColocationSimResult runFleet(unsigned Tenants, double Duration,
                             unsigned Shards, uint64_t Seed,
                             double &WallSeconds) {
  ColocationSimOptions Opts;
  Opts.Contexts = 2 * Tenants;
  Opts.Seed = Seed;
  Opts.DurationSeconds = Duration;
  Opts.StepSeconds = 0.05;
  Opts.WarmupSeconds = 4.0;
  Opts.Shards = Shards;
  Opts.Policy = ColocationPolicy::Arbiter;
  Opts.Arbiter.EpochSeconds = 2.0;
  Opts.Arbiter.LeaseTtlSeconds = 5.0;

  ColocationSim Sim(fleetTenants(Tenants), Opts);
  const auto Start = SteadyClock::now();
  ColocationSimResult R = Sim.run();
  WallSeconds = secondsSince(Start);
  return R;
}

bool sameStats(const TenantStats &A, const TenantStats &B) {
  return A.Name == B.Name && A.Arrived == B.Arrived &&
         A.Completed == B.Completed && A.Shed == B.Shed &&
         A.SloHits == B.SloHits && A.ThreadSeconds == B.ThreadSeconds &&
         A.LeaseChanges == B.LeaseChanges &&
         A.Responses.count() == B.Responses.count() &&
         A.Responses.meanResponseTime() == B.Responses.meanResponseTime() &&
         A.goalAttainment() == B.goalAttainment();
}

bool sameRecord(const TraceRecord &A, const TraceRecord &B) {
  return A.Time == B.Time && A.Kind == B.Kind && A.Name == B.Name &&
         A.A == B.A && A.B == B.B && A.Detail == B.Detail;
}

/// Bit-exact comparison of everything the colocation sim reports. Any
/// difference means the sharded engine let thread interleaving leak
/// into simulation state.
bool identicalResults(const ColocationSimResult &Oracle,
                      const ColocationSimResult &Sharded) {
  if (Oracle.Tenants.size() != Sharded.Tenants.size() ||
      Oracle.LeaseChanges != Sharded.LeaseChanges ||
      Oracle.SimulatedEvents != Sharded.SimulatedEvents ||
      Oracle.Fairness.AggregateAttainment !=
          Sharded.Fairness.AggregateAttainment ||
      Oracle.Fairness.MinAttainment != Sharded.Fairness.MinAttainment ||
      Oracle.Fairness.JainIndex != Sharded.Fairness.JainIndex)
    return false;
  for (size_t I = 0; I != Oracle.Tenants.size(); ++I)
    if (!sameStats(Oracle.Tenants[I], Sharded.Tenants[I]))
      return false;
  if (Oracle.AllocationTimeline.size() != Sharded.AllocationTimeline.size())
    return false;
  for (size_t I = 0; I != Oracle.AllocationTimeline.size(); ++I) {
    const AllocationSample &A = Oracle.AllocationTimeline[I];
    const AllocationSample &B = Sharded.AllocationTimeline[I];
    if (A.Time != B.Time || A.Granted != B.Granted)
      return false;
  }
  if (Oracle.ProtocolJournal.size() != Sharded.ProtocolJournal.size())
    return false;
  for (size_t I = 0; I != Oracle.ProtocolJournal.size(); ++I)
    if (!sameRecord(Oracle.ProtocolJournal[I], Sharded.ProtocolJournal[I]))
      return false;
  return true;
}

PipelineFleetResult runPipelines(unsigned Shards, uint64_t Items,
                                 uint64_t Seed, double &WallSeconds) {
  PipelineFleetOptions Opts;
  Opts.Shards = Shards;
  Opts.App = makeFerretApp();
  Opts.Base.Seed = Seed;
  Opts.Base.NumItems = Items;
  Opts.Base.Contexts = 24;
  Opts.InitialExtents = {1, 2, 8, 2, 4, 1};
  const auto Start = SteadyClock::now();
  PipelineFleetResult R = runPipelineFleet(Opts);
  WallSeconds = secondsSince(Start);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options(
      "Sharded-engine scaling acceptance: a 120-tenant colocation "
      "platform and a pipeline replica fleet swept over shard counts, "
      "with every sharded run checked bit-identical to the single-shard "
      "oracle");
  addCommonOptions(Options);
  Options.addInt("shards", 0,
                 "run only this shard count against the oracle "
                 "(0 = full 1/2/4/8 sweep)");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));
  const unsigned Only = static_cast<unsigned>(Options.getInt("shards"));

  const unsigned Tenants = Quick ? 40 : 120;
  const double Duration = Quick ? 80.0 : 120.0;
  const uint64_t FleetItems = Quick ? 4000 : 40000;

  std::vector<unsigned> Sweep;
  if (Only > 0)
    Sweep = {Only};
  else if (Quick)
    Sweep = {2, 4};
  else
    Sweep = {2, 4, 8};

  bool Ok = true;

  // Colocation platform: oracle first, then the sharded sweep.
  double OracleWall = 0.0;
  const ColocationSimResult Oracle =
      runFleet(Tenants, Duration, 1, Seed, OracleWall);
  const double OracleRate =
      OracleWall > 0.0
          ? static_cast<double>(Oracle.SimulatedEvents) / OracleWall
          : 0.0;

  Table T({"shards", "events", "wall_s", "events_per_s", "identical"});
  T.addRow({"1", std::to_string(Oracle.SimulatedEvents),
            Table::formatDouble(OracleWall, 3),
            Table::formatDouble(OracleRate, 0), "oracle"});
  double BestRate = OracleRate;
  for (unsigned Shards : Sweep) {
    double Wall = 0.0;
    const ColocationSimResult R =
        runFleet(Tenants, Duration, Shards, Seed, Wall);
    const bool Same = identicalResults(Oracle, R);
    Ok &= checkShape(Same, "shards=" + std::to_string(Shards) +
                               " colocation run is bit-identical to the "
                               "single-shard oracle");
    const double Rate =
        Wall > 0.0 ? static_cast<double>(R.SimulatedEvents) / Wall : 0.0;
    BestRate = std::max(BestRate, Rate);
    T.addRow({std::to_string(Shards), std::to_string(R.SimulatedEvents),
              Table::formatDouble(Wall, 3), Table::formatDouble(Rate, 0),
              Same ? "yes" : "NO"});
  }
  emitTable("Colocation platform shard sweep (" + std::to_string(Tenants) +
                " tenants, " + Table::formatDouble(Duration, 0) + " sim s)",
            T, Csv);

  const uint64_t EventFloor = Quick ? 200000 : 1000000;
  Ok &= checkShape(Oracle.SimulatedEvents >= EventFloor,
                   "platform scenario simulates >= " +
                       std::to_string(EventFloor) + " events (got " +
                       std::to_string(Oracle.SimulatedEvents) + ")");
  std::printf("[info] peak colocation rate %.0f events/s (oracle %.0f)\n",
              BestRate, OracleRate);

  // Pipeline replica fleet: load split across replicas, items conserved,
  // repeat runs identical.
  Table F({"shards", "items", "wall_s", "items_per_s", "fleet_p95_s"});
  for (unsigned Shards : Sweep) {
    double Wall = 0.0, Wall2 = 0.0;
    const PipelineFleetResult R = runPipelines(Shards, FleetItems, Seed, Wall);
    const PipelineFleetResult Again =
        runPipelines(Shards, FleetItems, Seed, Wall2);
    bool Same = R.ItemsCompleted == Again.ItemsCompleted &&
                R.Replicas.size() == Again.Replicas.size();
    for (size_t I = 0; Same && I != R.Replicas.size(); ++I)
      Same = R.Replicas[I].ItemsCompleted == Again.Replicas[I].ItemsCompleted &&
             R.Replicas[I].TotalSeconds == Again.Replicas[I].TotalSeconds &&
             R.Replicas[I].Throughput == Again.Replicas[I].Throughput;
    Ok &= checkShape(Same, "fleet of " + std::to_string(Shards) +
                               " is deterministic across repeat runs");
    Ok &= checkShape(R.ItemsCompleted == FleetItems,
                     "fleet of " + std::to_string(Shards) +
                         " conserves the batch (" +
                         std::to_string(R.ItemsCompleted) + "/" +
                         std::to_string(FleetItems) + " items)");
    F.addRow({std::to_string(Shards), std::to_string(R.ItemsCompleted),
              Table::formatDouble(Wall, 3),
              Table::formatDouble(Wall > 0.0 ? R.ItemsCompleted / Wall : 0.0,
                                  0),
              Table::formatDouble(R.P95ResponseSeconds, 3)});
  }
  emitTable("Pipeline replica fleet (ferret, " +
                std::to_string(FleetItems) + " items)",
            F, Csv);

  if (!Ok)
    std::printf("RESULT: FAIL\n");
  else
    std::printf("RESULT: OK\n");
  return Ok ? 0 : 1;
}

// HP001 fixture: a DOPE_HOT function body acquiring locks.
// Never compiled — scanned by dope_lint in the lint test suite.
#include <mutex>

struct Sampler {
  std::mutex Mutex;
  double Value = 0.0;

  DOPE_HOT double read() {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Value;
  }

  DOPE_HOT double readExplicit() {
    Mutex.lock();
    double V = Value;
    Mutex.unlock();
    return V;
  }
};

//===- workload/Arrivals.h - Request arrival processes ---------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrival processes for the online-service experiments. The paper
/// simulates user requests "using a task queuing thread that enqueues
/// tasks to a work queue according to a Poisson distribution"; the
/// average arrival rate determines the load factor, normalized so 1.0
/// equals the platform's maximum sustainable throughput.
///
/// PoissonProcess generates a deterministic (seeded) stream of arrival
/// instants; LoadTrace describes a piecewise-constant load-factor
/// schedule (steps, bursts, ramps) for the time-varying-load experiments.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_WORKLOAD_ARRIVALS_H
#define DOPE_WORKLOAD_ARRIVALS_H

#include "support/Random.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace dope {

/// Seeded Poisson arrival stream.
class PoissonProcess {
public:
  /// \p RatePerSecond is the mean arrival rate (> 0).
  PoissonProcess(double RatePerSecond, uint64_t Seed);

  /// Returns the next arrival instant (monotonically increasing).
  double nextArrival();

  /// The instant of the most recent arrival (0 before the first).
  double lastArrival() const { return Last; }

  double rate() const { return Rate; }

  /// Changes the rate; subsequent gaps use the new rate.
  void setRate(double RatePerSecond);

private:
  double Rate;
  double Last = 0.0;
  Rng Gen;
};

/// Piecewise-constant load-factor schedule.
class LoadTrace {
public:
  /// Appends a phase: \p LoadFactor holds for \p DurationSeconds.
  void addPhase(double LoadFactor, double DurationSeconds);

  /// Load factor at time \p T; the final phase extends to infinity, and
  /// an empty trace reports 0.
  double loadFactorAt(double T) const;

  /// Total duration of all phases.
  double totalDuration() const;

  size_t phaseCount() const { return Phases.size(); }

  /// A standard step pattern: alternating light/heavy phases — the kind
  /// of load swing WQT-H's hysteresis is designed to ride out.
  static LoadTrace makeStepPattern(double LightLoad, double HeavyLoad,
                                   double PhaseSeconds, unsigned Cycles);

  /// An overload burst: baseline load, then a burst well past capacity
  /// (BurstLoad > 1), then baseline again for the drain/recovery phase.
  /// Used by the admission-control experiments.
  static LoadTrace makeBurstPattern(double BaseLoad, double BurstLoad,
                                    double BaseSeconds, double BurstSeconds);

private:
  struct Phase {
    double LoadFactor;
    double Duration;
  };
  std::vector<Phase> Phases;
};

} // namespace dope

#endif // DOPE_WORKLOAD_ARRIVALS_H

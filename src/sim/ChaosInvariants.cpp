//===- sim/ChaosInvariants.cpp - Lease protocol invariant checker --------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ChaosInvariants.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

using namespace dope;

namespace {

bool isLeaseKind(TraceKind K) {
  return K == TraceKind::LeaseGrant || K == TraceKind::LeaseRevoke ||
         K == TraceKind::LeaseExpire;
}

std::string describeHolders(const std::map<std::string, unsigned> &Held) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Name, Threads] : Held) {
    if (Threads == 0)
      continue;
    if (!First)
      OS << " ";
    OS << Name << "=" << Threads;
    First = false;
  }
  return OS.str();
}

} // namespace

ChaosInvariantReport
dope::checkChaosInvariants(const std::vector<TraceRecord> &Journal,
                           const ChaosInvariantOptions &Opts) {
  ChaosInvariantReport Report;

  // Threads each tenant holds per the journal, and its last proof of
  // liveness (a heartbeat, or presence at a registration grant).
  std::map<std::string, unsigned> Held;
  std::map<std::string, double> LastAlive;

  auto violate = [&](const char *Invariant, double Time, size_t Index,
                     std::string Message) {
    ChaosViolation V;
    V.Invariant = Invariant;
    V.Time = Time;
    V.RecordIndex = Index;
    V.Message = std::move(Message);
    Report.Violations.push_back(std::move(V));
  };

  // End-of-decision-batch hook: once the batch of lease decisions at
  // one timestamp has fully landed, no tenant silent for a whole TTL
  // may still hold threads. (Checked only at batches that contain a
  // lease record — while the arbiter is down nobody *can* revoke, and
  // the protocol only promises expiry at the next decision.)
  auto checkZombies = [&](double BatchTime, size_t Index) {
    if (Opts.LeaseTtlSeconds <= 0.0)
      return;
    for (const auto &[Name, Threads] : Held) {
      if (Threads == 0)
        continue;
      auto It = LastAlive.find(Name);
      const double Alive = It == LastAlive.end() ? 0.0 : It->second;
      if (BatchTime >= Alive + Opts.LeaseTtlSeconds + 1e-9) {
        std::ostringstream OS;
        OS << Name << " still holds " << Threads << " threads at t="
           << BatchTime << " though last alive at t=" << Alive << " (ttl "
           << Opts.LeaseTtlSeconds << ")";
        violate("zombie-lease", BatchTime, Index, OS.str());
      }
    }
  };

  double BatchTime = 0.0;
  bool BatchHasLease = false;
  bool BatchSawGrant = false;
  size_t BatchEndIndex = 0;

  auto closeBatch = [&]() {
    if (BatchHasLease)
      checkZombies(BatchTime, BatchEndIndex);
    BatchHasLease = false;
    BatchSawGrant = false;
  };

  bool InBatch = false;
  for (size_t I = 0; I != Journal.size(); ++I) {
    const TraceRecord &R = Journal[I];
    if (!InBatch || std::abs(R.Time - BatchTime) > 1e-9) {
      closeBatch();
      BatchTime = R.Time;
      InBatch = true;
    }
    BatchEndIndex = I;

    if (R.Kind == TraceKind::Heartbeat) {
      ++Report.HeartbeatRecords;
      auto &Alive = LastAlive[R.Name];
      Alive = std::max(Alive, R.Time);
      continue;
    }
    if (!isLeaseKind(R.Kind))
      continue;

    ++Report.LeaseRecords;
    BatchHasLease = true;
    const unsigned New = static_cast<unsigned>(std::lround(std::max(0.0, R.A)));
    const unsigned Old = Held[R.Name];
    Held[R.Name] = New;
    if (R.Detail == "join" && New > 0) {
      // Registering is a control-plane action only a live tenant takes.
      auto &Alive = LastAlive[R.Name];
      Alive = std::max(Alive, R.Time);
    }

    // Revoke-before-grant within one decision batch: a host applying
    // the batch in order must never transiently overcommit. Initial
    // seating ("join") is grants-only by construction and exempt.
    if (R.Detail != "join") {
      if (New > Old) {
        BatchSawGrant = true;
      } else if (New < Old && BatchSawGrant) {
        std::ostringstream OS;
        OS << "revocation of " << R.Name << " (" << Old << " -> " << New
           << ") ordered after a grant in the t=" << R.Time << " batch";
        violate("revoke-order", R.Time, I, OS.str());
      }
    }

    unsigned Total = 0;
    for (const auto &[Name, Threads] : Held)
      Total += Threads;
    if (Total > Opts.PlatformThreads) {
      std::ostringstream OS;
      OS << "leases sum to " << Total << " > budget " << Opts.PlatformThreads
         << " after record " << I << " (" << describeHolders(Held) << ")";
      violate("budget", R.Time, I, OS.str());
    }
  }
  closeBatch();

  return Report;
}

RecoveryMetrics dope::allocationRecovery(const ColocationSimResult &Baseline,
                                         const ColocationSimResult &Chaos,
                                         double RestartSeconds,
                                         unsigned ToleranceThreads) {
  RecoveryMetrics R;
  const auto &B = Baseline.AllocationTimeline;
  const auto &C = Chaos.AllocationTimeline;
  size_t I = 0, J = 0;
  while (I < B.size() && B[I].Time < RestartSeconds - 1e-9)
    ++I;
  while (J < C.size() && C[J].Time < RestartSeconds - 1e-9)
    ++J;

  int Round = 0;
  int FirstOk = -1;
  double FirstOkTime = -1.0;
  for (; I < B.size() && J < C.size(); ++I, ++J) {
    ++Round; // the restart epoch's own allocation is round 1
    unsigned Dist = 0;
    const size_t K = std::min(B[I].Granted.size(), C[J].Granted.size());
    for (size_t T = 0; T != K; ++T) {
      const unsigned A = B[I].Granted[T];
      const unsigned Z = C[J].Granted[T];
      Dist += A > Z ? A - Z : Z - A;
    }
    R.FinalDistance = Dist;
    if (Dist <= ToleranceThreads) {
      if (FirstOk < 0) {
        FirstOk = Round;
        FirstOkTime = C[J].Time;
      }
    } else {
      // Recovery must be sticky: diverging again resets the clock.
      FirstOk = -1;
    }
  }
  if (FirstOk >= 0) {
    R.RoundsToRecover = FirstOk;
    R.TimeToRecoverSeconds = FirstOkTime - RestartSeconds;
  }
  return R;
}

double
dope::weightedAttainmentOf(const ColocationSimResult &Result,
                           const std::vector<std::string> &Tenants) {
  double Sum = 0.0;
  for (const TenantStats &T : Result.Tenants) {
    if (std::find(Tenants.begin(), Tenants.end(), T.Name) == Tenants.end())
      continue;
    Sum += T.Weight * T.goalAttainment();
  }
  return Sum;
}

double dope::attainmentRetained(double PreFaultAttainment,
                                double PostFaultAttainment) {
  if (PreFaultAttainment <= 0.0)
    return 1.0;
  const double Ratio = PostFaultAttainment / PreFaultAttainment;
  return std::min(1.0, std::max(0.0, Ratio));
}

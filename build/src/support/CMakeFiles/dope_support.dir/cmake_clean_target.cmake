file(REMOVE_RECURSE
  "libdope_support.a"
)

//===- tests/NativeKernelsTest.cpp - CPU kernel tests ------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/NativeKernels.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

TEST(HashWork, DeterministicAndSeedSensitive) {
  EXPECT_EQ(hashWork(1, 100), hashWork(1, 100));
  EXPECT_NE(hashWork(1, 100), hashWork(2, 100));
  EXPECT_NE(hashWork(1, 100), hashWork(1, 101));
}

TEST(HashWork, ZeroIterationsIsIdentity) {
  EXPECT_EQ(hashWork(42, 0), 42u);
}

TEST(Frames, MakeFrameDeterministic) {
  const Frame A = makeFrame(3, 256, 7);
  const Frame B = makeFrame(3, 256, 7);
  EXPECT_EQ(A.Pixels, B.Pixels);
  EXPECT_EQ(A.Index, 3u);
  EXPECT_EQ(A.Pixels.size(), 256u);
  const Frame C = makeFrame(4, 256, 7);
  EXPECT_NE(A.Pixels, C.Pixels);
}

TEST(Frames, TransformDeterministicAndContentSensitive) {
  const Frame In = makeFrame(0, 512, 1);
  const Frame Out1 = transformFrame(In, 5);
  const Frame Out2 = transformFrame(In, 5);
  EXPECT_EQ(Out1.Pixels, Out2.Pixels);
  EXPECT_NE(Out1.Pixels, In.Pixels);
  // Different pass counts give different results.
  EXPECT_NE(transformFrame(In, 4).Pixels, Out1.Pixels);
}

TEST(Frames, TransformQuantizes) {
  const Frame Out = transformFrame(makeFrame(0, 512, 1), 1);
  // Interior pixels are quantized to multiples of 4.
  for (size_t I = 1; I + 1 < Out.Pixels.size(); ++I)
    EXPECT_EQ(Out.Pixels[I] % 4, 0u);
}

TEST(Frames, TinyFramesPassThrough) {
  const Frame In = makeFrame(0, 2, 1);
  EXPECT_EQ(transformFrame(In, 3).Pixels, In.Pixels);
}

TEST(Frames, ChecksumSensitive) {
  const Frame A = makeFrame(0, 128, 1);
  Frame B = A;
  B.Pixels[64] ^= 1;
  EXPECT_NE(frameChecksum(A), frameChecksum(B));
  Frame C = A;
  C.Index = 1;
  EXPECT_NE(frameChecksum(A), frameChecksum(C));
}

TEST(MonteCarlo, ConvergesToPi) {
  EXPECT_NEAR(monteCarloPi(200000, 9), 3.14159, 0.02);
}

TEST(MonteCarlo, Deterministic) {
  EXPECT_DOUBLE_EQ(monteCarloPi(1000, 5), monteCarloPi(1000, 5));
  EXPECT_NE(monteCarloPi(1000, 5), monteCarloPi(1000, 6));
}

TEST(Rle, RoundTrip) {
  const std::vector<uint8_t> Input = {1, 1, 1, 2, 3, 3, 0, 0, 0, 0};
  EXPECT_EQ(rleDecompress(rleCompress(Input)), Input);
}

TEST(Rle, EmptyInput) {
  EXPECT_TRUE(rleCompress({}).empty());
  EXPECT_TRUE(rleDecompress({}).empty());
}

TEST(Rle, LongRunsSplitAt255) {
  const std::vector<uint8_t> Input(600, 7);
  const std::vector<uint8_t> Encoded = rleCompress(Input);
  // 600 = 255 + 255 + 90: three (run, value) pairs.
  ASSERT_EQ(Encoded.size(), 6u);
  EXPECT_EQ(Encoded[0], 255u);
  EXPECT_EQ(Encoded[4], 90u);
  EXPECT_EQ(rleDecompress(Encoded), Input);
}

TEST(Rle, CompressesRuns) {
  const std::vector<uint8_t> Runs(100, 42);
  EXPECT_LT(rleCompress(Runs).size(), Runs.size() / 10);
  // Alternating input is incompressible (2 bytes per input byte).
  std::vector<uint8_t> Alternating;
  for (int I = 0; I != 50; ++I)
    Alternating.push_back(static_cast<uint8_t>(I % 2));
  EXPECT_EQ(rleCompress(Alternating).size(), 100u);
}

TEST(Rle, RandomRoundTripSweep) {
  Rng R(13);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::vector<uint8_t> Input;
    const size_t Length = R.uniformInt(400);
    for (size_t I = 0; I != Length; ++I)
      Input.push_back(static_cast<uint8_t>(R.uniformInt(4)));
    EXPECT_EQ(rleDecompress(rleCompress(Input)), Input);
  }
}

} // namespace

//===- tests/RandomTest.cpp - RNG unit tests --------------------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dope;

namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I) {
    const double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng R(11);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng R(5);
  for (int I = 0; I != 1000; ++I) {
    const double U = R.uniform(-3.0, 9.0);
    EXPECT_GE(U, -3.0);
    EXPECT_LT(U, 9.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng R(13);
  int Counts[10] = {};
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    ++Counts[R.uniformInt(10)];
  for (int C : Counts)
    EXPECT_NEAR(static_cast<double>(C), N / 10.0, N / 10.0 * 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng R(17);
  const double Rate = 4.0;
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I) {
    const double X = R.exponential(Rate);
    EXPECT_GE(X, 0.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / N, 1.0 / Rate, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng R(19);
  const int N = 100000;
  double Sum = 0.0, Sq = 0.0;
  for (int I = 0; I != N; ++I) {
    const double X = R.normal(5.0, 2.0);
    Sum += X;
    Sq += X * X;
  }
  const double Mean = Sum / N;
  const double Var = Sq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(Var), 2.0, 0.05);
}

TEST(Rng, LogNormalMeanAndCv) {
  Rng R(23);
  const int N = 200000;
  double Sum = 0.0, Sq = 0.0;
  for (int I = 0; I != N; ++I) {
    const double X = R.logNormal(3.0, 0.25);
    EXPECT_GT(X, 0.0);
    Sum += X;
    Sq += X * X;
  }
  const double Mean = Sum / N;
  const double Var = Sq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(Var) / Mean, 0.25, 0.02);
}

TEST(Rng, LogNormalZeroCvIsDeterministic) {
  Rng R(29);
  EXPECT_DOUBLE_EQ(R.logNormal(7.5, 0.0), 7.5);
}

TEST(Rng, PoissonMean) {
  Rng R(31);
  for (double Mean : {0.5, 4.0, 20.0, 100.0}) {
    double Sum = 0.0;
    const int N = 50000;
    for (int I = 0; I != N; ++I)
      Sum += static_cast<double>(R.poisson(Mean));
    EXPECT_NEAR(Sum / N, Mean, Mean * 0.05 + 0.05);
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng R(37);
  EXPECT_EQ(R.poisson(0.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng A(41);
  Rng B = A.split();
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 4);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 SM(0);
  const uint64_t First = SM.next();
  SplitMix64 SM2(0);
  EXPECT_EQ(SM2.next(), First);
  EXPECT_NE(SM.next(), First);
}

} // namespace

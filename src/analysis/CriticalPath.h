//===- analysis/CriticalPath.h - Work/span/wait attribution ----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Causal profile of a reconstructed TaskDag: total work, critical-path
/// span, achieved parallelism, and per-task (per-stage) attribution of
/// execution and wait time. The span walks spawn edges — an instance's
/// path length is its spawner's path length, plus the gap it waited
/// between the spawner finishing and itself starting, plus its own busy
/// time — so "what limits this run" is answered structurally, not by
/// sampling.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ANALYSIS_CRITICALPATH_H
#define DOPE_ANALYSIS_CRITICALPATH_H

#include "analysis/TaskDag.h"

#include <string>
#include <vector>

namespace dope {

/// Per-task (per-stage) slice of the causal profile.
struct StageProfile {
  std::string Task;
  /// Completed instances.
  uint64_t Instances = 0;
  /// Sum of instance busy seconds.
  double WorkSeconds = 0.0;
  /// Mean instance busy seconds.
  double MeanExecSeconds = 0.0;
  /// Sum over instances of the gap between the spawner finishing and the
  /// instance starting — queueing/hand-off delay attributable to this
  /// task being under-provisioned.
  double WaitSeconds = 0.0;
  /// Wall-clock window [first begin, last end] of the task's instances.
  double WindowSeconds = 0.0;
  /// Achieved parallelism: WorkSeconds / WindowSeconds.
  double AchievedParallelism = 0.0;
  /// Peak number of simultaneously-open instances of this task. 1 means
  /// the trace never shows the task running twice at once — either the
  /// stage is sequential or it was provisioned a single context; a
  /// trace-driven what-if cannot tell the difference and must not
  /// promise speedup from growing it.
  unsigned MaxConcurrent = 0;
};

/// Whole-run causal profile.
struct CriticalPathProfile {
  /// Sum of busy seconds over all completed instances.
  double TotalWorkSeconds = 0.0;
  /// Wall clock of the traced run: last end minus first begin.
  double WallSeconds = 0.0;
  /// Critical-path length: the longest spawn chain, counting each
  /// instance's busy time plus the wait gap to its spawner.
  double SpanSeconds = 0.0;
  /// TotalWork / Wall — parallelism the run actually achieved.
  double AchievedParallelism = 0.0;
  /// TotalWork / Span — parallelism the DAG structurally admits; the
  /// headroom a what-if reconfiguration can exploit.
  double InherentParallelism = 0.0;
  /// Task-name sequence of one longest path (root first).
  std::vector<std::string> CriticalTasks;
  /// Per-task attribution, in TaskDag::taskNames() order.
  std::vector<StageProfile> Stages;
};

/// Computes the causal profile of \p Dag. Open (never-ended) instances
/// contribute nothing to work or span; their begins still widen windows.
CriticalPathProfile computeCriticalPath(const TaskDag &Dag);

} // namespace dope

#endif // DOPE_ANALYSIS_CRITICALPATH_H

//===- tests/BuildersTest.cpp - High-level builder tests ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Builders.h"

#include "mechanisms/Tbf.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <set>
#include <string>

using namespace dope;

namespace {

TEST(Builders, QueueDoAllProcessesEverything) {
  TaskGraph Graph;
  WorkQueue<int> Input;
  for (int I = 0; I != 200; ++I)
    Input.push(I);
  Input.close();

  std::atomic<long long> Sum{0};
  Task *Work = buildQueueDoAll<int>(Graph, "sum", Input,
                                    [&](int &X) { Sum.fetch_add(X); });
  EXPECT_EQ(Work->kind(), TaskKind::Parallel);
  EXPECT_TRUE(Work->hasLoadCallback());
  ParDescriptor *Root = Graph.createRegion({Work});

  DopeOptions Opts;
  Opts.MaxThreads = 3;
  RegionConfig Config;
  TaskConfig TC;
  TC.Extent = 3;
  Config.Tasks.push_back(TC);
  Opts.InitialConfig = Config;
  Dope::destroy(Dope::create(Root, std::move(Opts)));
  EXPECT_EQ(Sum.load(), 199LL * 200 / 2);
}

TEST(Builders, TypedPipelineEndToEnd) {
  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::mutex OutMutex;
  std::set<std::string> Outputs;

  PipelineBuilder B(Graph);
  B.source<int>("gen", [&]() -> std::optional<int> {
    const int I = Next.fetch_add(1);
    if (I >= 100)
      return std::nullopt;
    return I;
  });
  B.stage<int, long>("square",
                     [](int X) { return static_cast<long>(X) * X; });
  B.stage<long, std::string>(
      "render", [](long X) { return std::to_string(X); },
      /*Parallel=*/true);
  B.sink<std::string>("collect", [&](std::string S) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    Outputs.insert(std::move(S));
  });
  ParDescriptor *Pipe = B.build();
  ASSERT_EQ(Pipe->size(), 4u);
  EXPECT_EQ(Pipe->tasks()[0]->kind(), TaskKind::Sequential);
  EXPECT_EQ(Pipe->tasks()[1]->kind(), TaskKind::Parallel);
  EXPECT_EQ(Pipe->tasks()[3]->kind(), TaskKind::Sequential);

  DopeOptions Opts;
  Opts.MaxThreads = 4;
  RegionConfig Config = defaultConfig(*Pipe);
  Config.Tasks[1].Extent = 2;
  Opts.InitialConfig = Config;
  Dope::destroy(Dope::create(Pipe, std::move(Opts)));

  EXPECT_EQ(Outputs.size(), 100u);
  EXPECT_TRUE(Outputs.count("0"));
  EXPECT_TRUE(Outputs.count("9801")); // 99^2
}

TEST(Builders, DriverWrapsAlternatives) {
  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};

  auto MakePipe = [&](const std::string &Suffix) {
    PipelineBuilder B(Graph);
    B.source<int>("gen" + Suffix, [&]() -> std::optional<int> {
      const int I = Next.fetch_add(1);
      if (I >= 50)
        return std::nullopt;
      return I;
    });
    B.sink<int>("add" + Suffix, [&](int X) { Sum.fetch_add(X); });
    return B.build();
  };
  ParDescriptor *A = MakePipe("A");
  ParDescriptor *Fused = MakePipe("B");

  Task *Driver = buildDriver(Graph, "driver", {A, Fused});
  EXPECT_EQ(Driver->descriptor()->alternativeCount(), 2u);
  ParDescriptor *Root = Graph.createRegion({Driver});

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  Dope::destroy(Dope::create(Root, std::move(Opts)));
  EXPECT_EQ(Sum.load(), 49LL * 50 / 2);
}

TEST(Builders, PipelineSurvivesReconfiguration) {
  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};

  PipelineBuilder B(Graph);
  B.source<int>("gen", [&]() -> std::optional<int> {
    const int I = Next.load();
    if (I >= 3000)
      return std::nullopt;
    Next.store(I + 1);
    return I;
  });
  B.stage<int, int>("work", [](int X) {
    for (volatile int Spin = 0; Spin < 500; ++Spin) {
    }
    return X;
  });
  B.sink<int>("add", [&](int X) { Sum.fetch_add(X); });
  ParDescriptor *Pipe = B.build();

  DopeOptions Opts;
  Opts.MaxThreads = 4; // waterfill grows the parallel stage -> reconfig
  Opts.MonitorIntervalSeconds = 0.002;
  Opts.MinReconfigIntervalSeconds = 0.002;
  Opts.Mech = std::make_unique<TbfMechanism>();
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));
  D->wait();
  // Reconfiguration must never lose or duplicate an item.
  EXPECT_EQ(Sum.load(), 2999LL * 3000 / 2);
}

TEST(Builders, BoundedQueuesGiveBackpressure) {
  // With queueCapacity(k), a fast source cannot race more than k items
  // ahead of the consumer: the peak observed queue occupancy is bounded.
  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};
  std::atomic<int> PeakLoad{0};

  PipelineBuilder B(Graph);
  B.queueCapacity(8);
  B.source<int>("gen", [&]() -> std::optional<int> {
    const int I = Next.fetch_add(1);
    if (I >= 500)
      return std::nullopt;
    return I;
  });
  B.sink<int>("add", [&](int X) {
    for (volatile int Spin = 0; Spin < 2000; ++Spin) {
    }
    Sum.fetch_add(X);
  });
  ParDescriptor *Pipe = B.build();

  // Sample the sink's load callback (its input queue occupancy) from a
  // monitor-style thread while the pipeline runs.
  const Task *Sink = Pipe->tasks()[1];
  std::atomic<bool> Done{false};
  std::thread Sampler([&] {
    while (!Done.load()) {
      PeakLoad.store(std::max(PeakLoad.load(),
                              static_cast<int>(Sink->sampleLoad())));
      std::this_thread::yield();
    }
  });

  DopeOptions Opts;
  Opts.MaxThreads = 2;
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));
  D->wait();
  Done.store(true);
  Sampler.join();

  EXPECT_EQ(Sum.load(), 499LL * 500 / 2);
  EXPECT_LE(PeakLoad.load(), 8);
}

/// Alternates between two configurations every decision, maximizing
/// suspend/drain churn.
class ThrashMechanism : public Mechanism {
public:
  ThrashMechanism(RegionConfig A, RegionConfig B)
      : A(std::move(A)), B(std::move(B)) {}
  std::string name() const override { return "Thrash"; }
  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &, const RegionSnapshot &,
              const RegionConfig &Current, const MechanismContext &)
      override {
    return Current == A ? B : A;
  }

private:
  RegionConfig A, B;
};

TEST(Builders, NoItemLossUnderReconfigurationChurn) {
  // Regression test: with stage extent > 1, the first replica to see
  // end-of-input must not close the output queue while a sibling still
  // holds an in-flight item. The FiniCB-based drain protocol guarantees
  // this; this test thrashes configurations to hunt for the race.
  //
  // Conservation must hold on every attempt; whether a reconfiguration
  // actually lands within one short run depends on scheduler timing, so
  // the churn requirement is satisfied across a few attempts.
  uint64_t TotalReconfigs = 0;
  for (int Attempt = 0; Attempt != 5 && TotalReconfigs < 2; ++Attempt) {
  TaskGraph Graph;
  std::atomic<int> Next{0};
  std::atomic<long long> Sum{0};
  constexpr int N = 4000;

  PipelineBuilder B(Graph);
  // The source burns comparable CPU to the stage so it stays alive long
  // enough for suspensions to land on it (an unthrottled source would
  // race through the unbounded queue and finish before the first
  // decision).
  B.source<int>("gen", [&]() -> std::optional<int> {
    const int I = Next.load();
    if (I >= N)
      return std::nullopt;
    for (volatile int Spin = 0; Spin < 3000; ++Spin) {
    }
    Next.store(I + 1);
    return I;
  });
  B.stage<int, int>("work", [](int X) {
    for (volatile int Spin = 0; Spin < 3000; ++Spin) {
    }
    return X;
  });
  B.sink<int>("add", [&](int X) { Sum.fetch_add(X); });
  ParDescriptor *Pipe = B.build();

  RegionConfig Narrow = defaultConfig(*Pipe);
  RegionConfig Wide = Narrow;
  Wide.Tasks[1].Extent = 3;

  DopeOptions Opts;
  Opts.MaxThreads = 5;
  Opts.MonitorIntervalSeconds = 0.001;
  Opts.MinReconfigIntervalSeconds = 0.001;
  Opts.InitialConfig = Narrow;
  Opts.Mech = std::make_unique<ThrashMechanism>(Narrow, Wide);
  std::unique_ptr<Dope> D = Dope::create(Pipe, std::move(Opts));
  D->wait();
  ASSERT_EQ(Sum.load(), static_cast<long long>(N - 1) * N / 2);
  TotalReconfigs += D->reconfigurationCount();
  }
  EXPECT_GE(TotalReconfigs, 2u);
}

} // namespace

//===- mechanisms/Edp.cpp - Energy-delay-product goal -----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/Edp.h"

#include "mechanisms/ServerNest.h"

#include <cassert>

using namespace dope;

EdpMechanism::EdpMechanism(EdpParams Params) : Params(Params) {
  assert(Params.MMax >= 1 && "Mmax must be positive");
  assert(Params.StabilityMargin >= 1.0 && "margin must be >= 1");
}

double EdpMechanism::edpScore(unsigned M) const {
  const double S = Params.Curve.speedup(M);
  return static_cast<double>(M) / (S * S);
}

unsigned EdpMechanism::extentForDemand(double DemandFraction,
                                       unsigned Contexts) const {
  assert(Contexts >= 1 && "platform needs contexts");
  unsigned Best = 1;
  double BestScore = edpScore(1);
  bool BestFeasible = true; // m = 1 has the platform's full capacity

  for (unsigned M = 2; M <= Params.MMax; ++M) {
    // Capacity of <C/m outer, m inner> relative to the m = 1 capacity:
    // (C/m) * S(m) / C = S(m) / m (the parallel efficiency).
    const double RelativeCapacity =
        Params.Curve.speedup(M) / static_cast<double>(M);
    const bool Feasible =
        RelativeCapacity >= DemandFraction * Params.StabilityMargin;
    const double Score = edpScore(M);
    if (Feasible && (!BestFeasible || Score < BestScore)) {
      Best = M;
      BestScore = Score;
      BestFeasible = true;
    }
  }
  return Best;
}

std::optional<RegionConfig>
EdpMechanism::reconfigure(const ParDescriptor &Region,
                          const RegionSnapshot &Root,
                          const RegionConfig &Current,
                          const MechanismContext &Ctx) {
  (void)Current;
  if (!isServerNest(Region))
    return std::nullopt;
  assert(!Root.Tasks.empty() && "snapshot is empty");
  const TaskSnapshot &Outer = Root.Tasks.front();

  // Demand estimate as a fraction of the m = 1 maximum throughput:
  // the observed completion rate plus queue pressure. An occupied work
  // queue means the system is at (or beyond) its current capacity.
  const unsigned CurrentInner = serverInnerExtent(Current);
  double DemandFraction = 0.0;
  if (Outer.ExecTime > 0.0 && Outer.Invocations > 0) {
    // Completions per second at the current configuration, relative to
    // the m = 1 capacity C / T1 with T1 = ExecTime * S(m_current).
    const double T1Estimate =
        Outer.ExecTime * Params.Curve.speedup(CurrentInner);
    const double MaxThroughput =
        static_cast<double>(Ctx.effectiveThreads()) / T1Estimate;
    if (MaxThroughput > 0.0)
      DemandFraction = Outer.Throughput / MaxThroughput;
  }
  // Queue pressure: a standing backlog of Q transactions pushes the
  // demand estimate up; half a context's worth of backlog per context
  // saturates it.
  DemandFraction +=
      Outer.LastLoad / (0.5 * static_cast<double>(Ctx.effectiveThreads()));
  if (DemandFraction > 1.0)
    DemandFraction = 1.0;

  const unsigned Inner = extentForDemand(DemandFraction, Ctx.effectiveThreads());
  const unsigned Outer_ = outerExtentFor(Ctx.effectiveThreads(), Inner);
  return makeServerConfig(Region, Outer_, Inner, Params.AltIndex);
}

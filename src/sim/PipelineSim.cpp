//===- sim/PipelineSim.cpp - Pipeline application simulation ---------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/PipelineSim.h"

#include "support/Logging.h"
#include "support/RingDeque.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

using namespace dope;

PipelineSim::PipelineSim(PipelineAppModel App, PipelineSimOptions Opts)
    : App(std::move(App)), Opts(Opts) {
  assert(!this->App.Stages.empty() && "pipeline needs stages");
  assert(Opts.Contexts >= 1 && "platform needs contexts");
  buildGraph();
}

void PipelineSim::buildGraph() {
  TaskFn Dummy = [](TaskRuntime &) { return TaskStatus::Finished; };
  auto MakeStageTasks = [&](const std::vector<PipelineStageSpec> &Specs,
                            std::vector<Task *> &Out) -> ParDescriptor * {
    Out.clear();
    for (const PipelineStageSpec &Spec : Specs)
      Out.push_back(Graph.createTask(Spec.Name, Dummy, LoadFn(),
                                     Spec.Parallel ? Graph.parDescriptor()
                                                   : Graph.seqDescriptor()));
    return Graph.createRegion(Out);
  };

  std::vector<ParDescriptor *> Alternatives;
  Alternatives.push_back(MakeStageTasks(App.Stages, StageTasks));
  if (!App.FusedStages.empty())
    Alternatives.push_back(MakeStageTasks(App.FusedStages, FusedTasks));

  Driver = Graph.createTask(
      App.Name, Dummy, LoadFn(),
      Graph.createDescriptor(TaskKind::Sequential, Alternatives));
  Root = Graph.createRegion({Driver});
}

double PipelineSim::analyticThroughput(const std::vector<unsigned> &Extents,
                                       bool Fused) const {
  const std::vector<PipelineStageSpec> &Specs =
      Fused ? App.FusedStages : App.Stages;
  assert(Extents.size() == Specs.size() && "extent arity mismatch");
  const double C = static_cast<double>(Opts.Contexts);

  // The thread-footprint penalty depends on *created* threads; the CPU
  // contention penalty depends on *busy* threads, which self-regulate in
  // steady state: stages upstream of the bottleneck block on full
  // queues, stages downstream starve, so only the bottleneck keeps all
  // its threads busy. Solve the fixed point
  //
  //   t = (n_b / s_b) * r,  B = sum_i min(n_i, t * s_i / r),
  //   r = Footprint * min(1, C_eff(B) / B)
  //
  // where b is the bottleneck stage (max s_i / n_i).
  double TotalThreads = 0.0;
  for (unsigned E : Extents)
    TotalThreads += E;
  const double Footprint =
      1.0 / (1.0 + App.ThreadOverheadPenalty *
                       std::max(0.0, TotalThreads / C - 1.0));

  size_t Bottleneck = 0;
  for (size_t I = 1; I != Specs.size(); ++I) {
    if (Specs[I].ServiceSeconds / Extents[I] >
        Specs[Bottleneck].ServiceSeconds / Extents[Bottleneck])
      Bottleneck = I;
  }

  double Rate = Footprint;
  for (int Iteration = 0; Iteration != 100; ++Iteration) {
    const double T =
        static_cast<double>(Extents[Bottleneck]) /
        Specs[Bottleneck].ServiceSeconds * Rate;
    double Busy = 0.0;
    for (size_t I = 0; I != Specs.size(); ++I)
      Busy += std::min(static_cast<double>(Extents[I]),
                       T * Specs[I].ServiceSeconds /
                           std::max(Rate, 1e-12));
    const double CEff =
        C / (1.0 + App.OversubPenalty * std::max(0.0, Busy / C - 1.0));
    const double Next = Footprint * std::min(1.0, CEff / Busy);
    Rate = 0.5 * Rate + 0.5 * Next; // damped fixed-point iteration
  }
  return static_cast<double>(Extents[Bottleneck]) /
         Specs[Bottleneck].ServiceSeconds * Rate;
}

namespace {

/// Run-local simulation engine.
class Engine {
public:
  Engine(const PipelineAppModel &App, const PipelineSimOptions &Opts,
         const std::vector<Disturbance> &Disturbances,
         const ParDescriptor &Root, const Task &Driver, Mechanism *Mech,
         std::vector<unsigned> InitialExtents, FaultInjector *Faults)
      : App(App), Opts(Opts), Disturbances(Disturbances), Root(Root),
        Driver(Driver), Mech(Mech), Faults(Faults),
        ServiceRng(Opts.Seed ^ 0xabcdefULL), ArrivalRng(Opts.Seed),
        Completions(Opts.TraceWindowSeconds) {
    activateAlternative(0, std::move(InitialExtents));
    Features.registerFeature(
        "SystemPower", [this] { return currentPower(); },
        Opts.PowerSampleIntervalSeconds);
    // The one signal mechanisms need to re-plan around core loss
    // (MechanismContext::effectiveThreads reads it).
    Features.registerFeature("LiveContexts", [this] {
      return static_cast<double>(liveContexts());
    });
    Trace = Opts.TraceSink;
    Features.setTracer(Trace);
  }

  PipelineSimResult run();

private:
  struct Item {
    uint64_t Id = 0;
    double ArrivalTime = 0.0;
    double FirstStart = -1.0;
  };
  struct Service {
    size_t Stage = 0;
    Item It;
    double Remaining = 0.0;
    double StartTime = 0.0;
  };
  struct BlockedProducer {
    size_t Stage = 0;
    Item It;
  };
  struct StageMetrics {
    Ema ExecTime{0.3};
    Ema Load{0.3};
    double LastLoad = 0.0;
    uint64_t Invocations = 0;
  };

  const std::vector<PipelineStageSpec> &activeSpecs() const {
    return ActiveAlt == 1 ? App.FusedStages : App.Stages;
  }

  double currentPower() const {
    return Opts.Power.watts(static_cast<double>(Running.size()));
  }

  unsigned liveContexts() const {
    return DeadContexts >= Opts.Contexts ? 1u : Opts.Contexts - DeadContexts;
  }

  /// All items awaiting completion (batch-mode termination must account
  /// for items that can never complete: shed at admission or lost to a
  /// dropped hand-off).
  uint64_t itemsResolved() const { return ItemsDone + ItemsLost + ItemsShed; }

  double totalExtent() const {
    double Total = 0.0;
    for (unsigned E : Extents)
      Total += E;
    return Total;
  }

  /// Per-thread progress rate under the processor-sharing model. Killed
  /// contexts are gone: the sharing pool is the *live* context count.
  double rate() const {
    if (Paused)
      return 0.0;
    const double Busy = static_cast<double>(Running.size());
    if (Busy == 0.0)
      return 1.0;
    const double C = static_cast<double>(liveContexts());
    const double Footprint =
        1.0 / (1.0 + App.ThreadOverheadPenalty *
                         std::max(0.0, totalExtent() / C - 1.0));
    const double CEff =
        C / (1.0 + App.OversubPenalty * std::max(0.0, Busy / C - 1.0));
    return Footprint * std::min(1.0, CEff / Busy);
  }

  /// Applies elapsed virtual time to all running services.
  void advance() {
    const double Now = Events.now();
    const double Dt = Now - LastUpdate;
    if (Dt <= 0.0)
      return;
    const double Work = CurrentRate * Dt;
    for (Service &S : Running)
      S.Remaining = std::max(0.0, S.Remaining - Work);
    LastUpdate = Now;
  }

  void refreshRate() { CurrentRate = rate(); }

  /// (Re)schedules the single completion-horizon event.
  void rescheduleHorizon() {
    if (HorizonEvent != 0) {
      Events.cancel(HorizonEvent);
      HorizonEvent = 0;
    }
    if (Running.empty() || CurrentRate <= 0.0)
      return;
    double MinRemaining = Running.front().Remaining;
    for (const Service &S : Running)
      MinRemaining = std::min(MinRemaining, S.Remaining);
    HorizonEvent = Events.scheduleAfter(
        std::max(0.0, MinRemaining / CurrentRate) + 1e-12,
        [this] {
          HorizonEvent = 0;
          onHorizon();
        });
  }

  void onHorizon() {
    advance();
    // Complete every service that ran out of work (FIFO among ties).
    for (size_t I = 0; I < Running.size();) {
      if (Running[I].Remaining <= 1e-9) {
        Service Done = Running[I];
        Running.erase(Running.begin() + static_cast<long>(I));
        completeService(Done);
      } else {
        ++I;
      }
    }
    startServices();
    refreshRate();
    rescheduleHorizon();
  }

  void completeService(const Service &Done) {
    StageMetrics &M = Metrics[Done.Stage];
    M.ExecTime.addSample(Events.now() - Done.StartTime);
    ++M.Invocations;
    if (Trace && Opts.TraceTaskInstances)
      Trace->recordAt(Events.now(), TraceKind::TaskEnd,
                      activeSpecs()[Done.Stage].Name,
                      static_cast<double>(Done.It.Id),
                      Events.now() - Done.StartTime);

    const size_t Last = activeSpecs().size() - 1;
    if (Done.Stage == Last) {
      finishItem(Done.It);
      assert(InUse[Done.Stage] > 0 && "stage accounting underflow");
      --InUse[Done.Stage];
      return;
    }
    // Injected hand-off loss: the item vanishes between stages.
    if (Faults && Faults->dropHandoff()) {
      ++ItemsLost;
      assert(InUse[Done.Stage] > 0 && "stage accounting underflow");
      --InUse[Done.Stage];
      return;
    }
    // Hand off to the next stage's queue; block when full.
    if (Queues[Done.Stage + 1].size() < Opts.QueueCapacity) {
      Queues[Done.Stage + 1].push_back(Done.It);
      assert(InUse[Done.Stage] > 0 && "stage accounting underflow");
      --InUse[Done.Stage];
    } else {
      Blocked[Done.Stage].push_back({Done.Stage, Done.It});
    }
  }

  void finishItem(const Item &It) {
    ++ItemsDone;
    Completions.recordEvent(Events.now());
    if (ItemsDone > Opts.WarmupItems)
      Stats.recordTransaction(It.ArrivalTime,
                              It.FirstStart < 0.0 ? It.ArrivalTime
                                                  : It.FirstStart,
                              Events.now());
  }

  /// Pops the head of stage \p S's input queue, cascading unblocks.
  Item popInput(size_t S) {
    assert(!Queues[S].empty() && "pop from empty queue");
    Item It = Queues[S].front();
    Queues[S].pop_front();
    // A slot opened: an upstream blocked producer can push now.
    if (S > 0 && !Blocked[S - 1].empty()) {
      BlockedProducer P = Blocked[S - 1].front();
      Blocked[S - 1].pop_front();
      Queues[S].push_back(P.It);
      assert(InUse[S - 1] > 0 && "stage accounting underflow");
      --InUse[S - 1];
    } else if (S == 0) {
      feed();
    }
    return It;
  }

  /// Keeps the first stage's queue topped up (batch feeder + migration
  /// backlog).
  void feed() {
    while (Queues[0].size() < Opts.QueueCapacity) {
      if (!MigrationBacklog.empty()) {
        Queues[0].push_back(MigrationBacklog.front());
        MigrationBacklog.pop_front();
        continue;
      }
      if (Opts.OpenLoop || Fed >= Opts.NumItems)
        return;
      Queues[0].push_back({Fed, Events.now(), -1.0});
      ++Fed;
    }
  }

  void startServices() {
    if (Paused)
      return;
    const std::vector<PipelineStageSpec> &Specs = activeSpecs();
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t S = 0; S != Specs.size(); ++S) {
        while (InUse[S] < Extents[S] && !Queues[S].empty()) {
          Item It = popInput(S);
          if (It.FirstStart < 0.0)
            It.FirstStart = Events.now();
          Service Svc;
          Svc.Stage = S;
          Svc.It = It;
          Svc.StartTime = Events.now();
          // Instance record with parentage: stage S's instance for item
          // Id descends from stage S-1's instance for the same item (the
          // first stage's instances are roots). A = B = item id because
          // the per-stage instance id *is* the item id here.
          if (Trace && Opts.TraceTaskInstances)
            Trace->recordAt(Events.now(), TraceKind::TaskBegin, Specs[S].Name,
                            static_cast<double>(It.Id),
                            static_cast<double>(It.Id),
                            S == 0 ? std::string() : Specs[S - 1].Name);
          double Scale = DisturbFactor[S];
          if (Faults) {
            Scale *= stallFactor(S);
            Scale *= Faults->stragglerScale();
          }
          Svc.Remaining =
              ServiceRng.logNormal(Specs[S].ServiceSeconds * Scale,
                                   Specs[S].Cv) +
              CommOverhead[S];
          Running.push_back(Svc);
          ++InUse[S];
          Progress = true;
        }
      }
    }
  }

  /// Installs stage structures for alternative \p Alt with \p NewExtents
  /// (empty = all ones). Items still in the machine restart at stage 0.
  void activateAlternative(int Alt, std::vector<unsigned> NewExtents) {
    const std::vector<PipelineStageSpec> &Specs =
        Alt == 1 ? App.FusedStages : App.Stages;
    assert(!Specs.empty() && "activating an absent alternative");

    // Salvage in-flight items in rough pipeline order. Wedged replicas
    // are released here too: reconfiguration respawns stage replicas on
    // live contexts, so their items re-enter at the head of the pipeline.
    RingDeque<Item> Salvaged;
    if (!Queues.empty()) {
      for (size_t S = Queues.size(); S-- > 0;) {
        for (const Service &Svc : Running)
          if (Svc.Stage == S)
            Salvaged.push_back(Svc.It);
        for (const Service &Svc : Wedged)
          if (Svc.Stage == S)
            Salvaged.push_back(Svc.It);
        for (const BlockedProducer &P : Blocked[S])
          Salvaged.push_back(P.It);
        for (const Item &It : Queues[S])
          Salvaged.push_back(It);
      }
    }
    Running.clear();
    Wedged.clear();

    ActiveAlt = Alt;
    Queues.assign(Specs.size(), {});
    Blocked.assign(Specs.size(), {});
    InUse.assign(Specs.size(), 0);
    Metrics.assign(Specs.size(), StageMetrics());
    DisturbFactor.assign(Specs.size(), 1.0);
    if (NewExtents.empty())
      NewExtents.assign(Specs.size(), 1);
    assert(NewExtents.size() == Specs.size() && "extent arity mismatch");
    for (size_t I = 0; I != Specs.size(); ++I)
      if (!Specs[I].Parallel)
        NewExtents[I] = 1;
    Extents = std::move(NewExtents);
    recomputeCommOverhead();

    for (const Item &It : Salvaged)
      MigrationBacklog.push_back(It);
    feed();
  }

  /// Recomputes the per-item communication overhead each stage pays for
  /// its *input* hand-off, from the current placement.
  void recomputeCommOverhead() {
    CommOverhead.assign(Extents.size(), 0.0);
    if (Opts.Place == PlacementPolicy::None ||
        Opts.CommSecondsPerHop <= 0.0 || Extents.size() < 2)
      return;
    const bool Local = Opts.Place == PlacementPolicy::LocalityAware;
    const Placement P = Local ? placePartitioned(Opts.Topo, Extents)
                              : placeStriped(Opts.Topo, Extents);
    const RoutingPolicy Routing = Local
                                      ? RoutingPolicy::LocalityPreferring
                                      : RoutingPolicy::Uniform;
    for (size_t S = 1; S != Extents.size(); ++S)
      CommOverhead[S] = Opts.CommSecondsPerHop *
                        stageHandoffCost(Opts.Topo, P, S - 1, Routing);
  }

  /// Builds the snapshot handed to the mechanism.
  RegionSnapshot buildSnapshot() const {
    RegionSnapshot Snap;
    TaskSnapshot DriverTs;
    DriverTs.TaskId = Driver.id();
    DriverTs.Name = Driver.name();
    DriverTs.Kind = TaskKind::Sequential;
    DriverTs.CurrentExtent = 1;
    DriverTs.ActiveAlt = ActiveAlt;
    DriverTs.Invocations = ItemsDone;

    const size_t AltCount = Driver.descriptor()->alternativeCount();
    for (size_t A = 0; A != AltCount; ++A) {
      RegionSnapshot AltSnap;
      const ParDescriptor *AltRegion = Driver.descriptor()->alternative(A);
      for (size_t S = 0; S != AltRegion->size(); ++S) {
        TaskSnapshot TS;
        const Task *T = AltRegion->tasks()[S];
        TS.TaskId = T->id();
        TS.Name = T->name();
        TS.Kind = T->kind();
        if (static_cast<int>(A) == ActiveAlt && S < Metrics.size()) {
          const StageMetrics &M = Metrics[S];
          TS.ExecTime = M.ExecTime.value();
          TS.Load = M.Load.value();
          TS.LastLoad = M.LastLoad;
          TS.Invocations = M.Invocations;
          TS.CurrentExtent = Extents[S];
          if (TS.ExecTime > 0.0)
            TS.Throughput = TS.CurrentExtent / TS.ExecTime;
        }
        AltSnap.Tasks.push_back(std::move(TS));
      }
      DriverTs.InnerAlternatives.push_back(std::move(AltSnap));
    }
    Snap.Tasks.push_back(std::move(DriverTs));
    return Snap;
  }

  RegionConfig currentConfig() const {
    TaskConfig DriverConfig;
    DriverConfig.Extent = 1;
    DriverConfig.AltIndex = ActiveAlt;
    for (unsigned E : Extents) {
      TaskConfig TC;
      TC.Extent = E;
      DriverConfig.Inner.push_back(TC);
    }
    RegionConfig Config;
    Config.Tasks.push_back(std::move(DriverConfig));
    return Config;
  }

  void applyConfig(const RegionConfig &Config) {
    assert(Config.Tasks.size() == 1 && "driver-shaped config expected");
    const TaskConfig &DriverConfig = Config.Tasks.front();
    const int Alt = DriverConfig.AltIndex >= 0 ? DriverConfig.AltIndex : 0;
    std::vector<unsigned> NewExtents;
    for (const TaskConfig &TC : DriverConfig.Inner)
      NewExtents.push_back(TC.Extent);

    advance();
    if (Alt != ActiveAlt) {
      activateAlternative(Alt, std::move(NewExtents));
    } else {
      assert(NewExtents.size() == Extents.size() && "extent arity mismatch");
      const std::vector<PipelineStageSpec> &Specs = activeSpecs();
      for (size_t I = 0; I != Extents.size(); ++I)
        Extents[I] = Specs[I].Parallel ? std::max(1u, NewExtents[I]) : 1;
      recomputeCommOverhead();
      // Reconfiguration respawns the stages' task loops, which unwedges
      // replicas stuck on killed contexts: fresh replicas start on live
      // contexts and the stuck items restart at the head.
      for (const Service &Svc : Wedged) {
        assert(InUse[Svc.Stage] > 0 && "stage accounting underflow");
        --InUse[Svc.Stage];
        MigrationBacklog.push_back(Svc.It);
      }
      Wedged.clear();
      feed();
    }
    ++Reconfigs;
    if (Trace)
      Trace->recordAt(Events.now(), TraceKind::Reconfig, "sim",
                      totalThreads(Root, Config), 0.0,
                      toString(Root, Config));

    // Suspend/quiesce/respawn cost: nothing progresses for the pause.
    Paused = true;
    refreshRate();
    rescheduleHorizon();
    Events.scheduleAfter(Opts.ReconfigPauseSeconds, [this] {
      advance();
      Paused = false;
      startServices();
      refreshRate();
      rescheduleHorizon();
    });
  }

  void decisionTick() {
    if (itemsResolved() >= Opts.NumItems)
      return;
    advance();
    // Sample queue occupancies (the LoadCB signal).
    const std::vector<PipelineStageSpec> &Specs = activeSpecs();
    for (size_t S = 0; S != Queues.size(); ++S) {
      Metrics[S].LastLoad = static_cast<double>(Queues[S].size());
      Metrics[S].Load.addSample(Metrics[S].LastLoad);
      if (Trace)
        Trace->recordAt(Events.now(), TraceKind::QueueDepth, Specs[S].Name,
                        Metrics[S].LastLoad);
    }
    ThreadsTrace.addPoint(Events.now(), totalExtent());

    if (Mech) {
      MechanismContext Ctx;
      Ctx.MaxThreads = Opts.Contexts;
      Ctx.PowerBudgetWatts = Opts.PowerBudgetWatts;
      Ctx.Features = &Features;
      Ctx.NowSeconds = Events.now();
      Ctx.Trace = Trace;
      RegionConfig Config = currentConfig();
      std::optional<RegionConfig> Next =
          Mech->reconfigure(Root, buildSnapshot(), Config, Ctx);
      const bool Changed = Next && !(*Next == Config);
      if (Trace) {
        const RegionConfig &Chosen = Changed ? *Next : Config;
        Trace->recordAt(Events.now(), TraceKind::Decision, Mech->name(),
                        totalThreads(Root, Chosen), Changed ? 1.0 : 0.0,
                        toString(Root, Chosen));
      }
      if (Changed)
        applyConfig(*Next);
    }
    Events.scheduleAfter(Opts.DecisionIntervalSeconds,
                         [this] { decisionTick(); });
  }

  void powerTick() {
    advance();
    PowerTrace.addPoint(Events.now(), currentPower());
    if (itemsResolved() >= Opts.NumItems)
      return;
    Events.scheduleAfter(Opts.PowerSampleIntervalSeconds,
                         [this] { powerTick(); });
  }

  void scheduleArrival() {
    if (Fed >= Opts.NumItems)
      return;
    // Burst/overload traces modulate the Poisson rate; an empty trace is
    // a constant load factor of 1.
    double LoadFactor = Opts.ArrivalTrace.phaseCount() > 0
                            ? Opts.ArrivalTrace.loadFactorAt(Events.now())
                            : 1.0;
    LoadFactor = std::max(LoadFactor, 1e-3);
    const double Gap = ArrivalRng.exponential(Opts.ArrivalRate * LoadFactor);
    Events.scheduleAfter(Gap, [this] {
      advance();
      PeakOuterQueue = std::max(PeakOuterQueue, Queues[0].size());
      // Admission control: shedding at the outer queue keeps occupancy
      // (and therefore response time) bounded under overload.
      if (Opts.AdmissionLimit > 0 &&
          Queues[0].size() >= Opts.AdmissionLimit) {
        ++ItemsShed;
        ++Fed;
      } else {
        Queues[0].push_back({Fed, Events.now(), -1.0});
        ++Fed;
        startServices();
        refreshRate();
        rescheduleHorizon();
      }
      scheduleArrival();
    });
  }

  void scheduleDisturbances() {
    for (const Disturbance &D : Disturbances) {
      Events.scheduleAt(D.Time, [this, D] {
        if (D.Stage < DisturbFactor.size())
          DisturbFactor[D.Stage] = D.Factor;
      });
      if (D.Duration > 0.0)
        Events.scheduleAt(D.Time + D.Duration, [this, D] {
          if (D.Stage < DisturbFactor.size())
            DisturbFactor[D.Stage] = 1.0;
        });
    }
  }

  void noteFault() {
    ++Incidents;
    if (FirstFaultTime < 0.0)
      FirstFaultTime = Events.now();
  }

  /// Removes \p Kill.Count contexts from the platform. A replica running
  /// on a killed context wedges: it keeps its stage slot (InUse) but
  /// leaves the processor-sharing pool, so the stage runs short-handed
  /// until a reconfiguration respawns it.
  void applyContextKill(const ContextKillEvent &Kill) {
    advance();
    noteFault();
    if (Trace)
      Trace->recordAt(Events.now(), TraceKind::Fault, "context-kill",
                      Kill.Count, liveContexts());
    const std::vector<PipelineStageSpec> &Specs = activeSpecs();
    for (unsigned K = 0; K != Kill.Count && DeadContexts + 1 < Opts.Contexts;
         ++K) {
      ++DeadContexts;
      // The victim is whichever replica ran on the killed context: a
      // random running service (sequential stages spared by default —
      // see ContextKillEvent::SpareSequentialStages).
      std::vector<size_t> Candidates;
      for (size_t I = 0; I != Running.size(); ++I)
        if (!Kill.SpareSequentialStages || Specs[Running[I].Stage].Parallel)
          Candidates.push_back(I);
      if (Candidates.empty())
        continue; // the killed context was idle
      const size_t Victim =
          Candidates[Faults->pickVictim(Candidates.size())];
      Wedged.push_back(Running[Victim]);
      Running.erase(Running.begin() + static_cast<long>(Victim));
      ++WedgedCount;
    }
    startServices();
    refreshRate();
    rescheduleHorizon();
  }

  void scheduleFaults() {
    if (!Faults)
      return;
    const FaultPlan &Plan = Faults->plan();
    for (const ContextKillEvent &Kill : Plan.Kills)
      Events.scheduleAt(Kill.Time,
                        [this, Kill] { applyContextKill(Kill); });
    for (size_t I = 0; I != Plan.Stalls.size(); ++I) {
      const StallEvent Stall = Plan.Stalls[I];
      // Active stalls are kept apart from DisturbFactor, which
      // activateAlternative resets on a mid-stall alternative switch.
      Events.scheduleAt(Stall.Time, [this, Stall, I] {
        noteFault();
        if (Trace)
          Trace->recordAt(Events.now(), TraceKind::Fault, "stall",
                          Stall.Factor, Stall.DurationSeconds);
        ActiveStalls.emplace_back(I, Stall);
      });
      Events.scheduleAt(Stall.Time + Stall.DurationSeconds, [this, I] {
        for (auto It = ActiveStalls.begin(); It != ActiveStalls.end(); ++It)
          if (It->first == I) {
            ActiveStalls.erase(It);
            break;
          }
      });
    }
  }

  /// Service-time inflation stage \p S currently suffers from transient
  /// stall episodes.
  double stallFactor(size_t S) const {
    double Factor = 1.0;
    for (const auto &[Id, Stall] : ActiveStalls)
      if (Stall.Stage < 0 || static_cast<size_t>(Stall.Stage) == S)
        Factor *= Stall.Factor;
    return Factor;
  }

  const PipelineAppModel &App;
  const PipelineSimOptions &Opts;
  const std::vector<Disturbance> &Disturbances;
  const ParDescriptor &Root;
  const Task &Driver;
  Mechanism *Mech;
  /// Fault injection; null when the run has no fault plan.
  FaultInjector *Faults;

  /// Structured trace sink (Opts.TraceSink), null when tracing is off.
  Tracer *Trace = nullptr;

  EventQueue Events;
  Rng ServiceRng;
  Rng ArrivalRng;
  FeatureRegistry Features;

  int ActiveAlt = 0;
  std::vector<unsigned> Extents;
  std::vector<RingDeque<Item>> Queues;
  std::vector<RingDeque<BlockedProducer>> Blocked;
  std::vector<unsigned> InUse;
  std::vector<StageMetrics> Metrics;
  std::vector<double> DisturbFactor;
  std::vector<double> CommOverhead;
  std::vector<Service> Running;
  RingDeque<Item> MigrationBacklog;

  uint64_t Fed = 0;
  uint64_t ItemsDone = 0;
  uint64_t Reconfigs = 0;
  bool Paused = false;
  double LastUpdate = 0.0;
  double CurrentRate = 1.0;
  EventId HorizonEvent = 0;

  // Fault state. Wedged replicas hold a stage slot (InUse) but are not in
  // Running, so they consume no CPU; a reconfiguration releases their
  // items into MigrationBacklog.
  unsigned DeadContexts = 0;
  std::vector<Service> Wedged;
  std::vector<std::pair<size_t, StallEvent>> ActiveStalls;
  uint64_t ItemsLost = 0;
  uint64_t ItemsShed = 0;
  uint64_t WedgedCount = 0;
  uint64_t Incidents = 0;
  double FirstFaultTime = -1.0;
  size_t PeakOuterQueue = 0;

  ResponseStats Stats;
  RateTracker Completions;
  TimeSeries PowerTrace{"power"};
  TimeSeries ThreadsTrace{"threads"};
};

PipelineSimResult Engine::run() {
  // Tracing runs in virtual time: retarget the tracer clock for the
  // duration of the run so mirrored log lines land in the same domain,
  // and restore it before this engine (captured by the clock) dies.
  Tracer *PrevActive = nullptr;
  if (Trace) {
    PrevActive = Tracer::active();
    Trace->setClock([this] { return Events.now(); });
    Tracer::setActive(Trace);
  }

  scheduleDisturbances();
  scheduleFaults();
  if (Opts.OpenLoop) {
    assert(Opts.ArrivalRate > 0.0 && "open loop needs an arrival rate");
    scheduleArrival();
  } else {
    feed();
  }
  startServices();
  refreshRate();
  rescheduleHorizon();
  Events.scheduleAfter(Opts.DecisionIntervalSeconds,
                       [this] { decisionTick(); });
  Events.scheduleAfter(Opts.PowerSampleIntervalSeconds,
                       [this] { powerTick(); });

  while (itemsResolved() < Opts.NumItems && Events.now() < Opts.MaxSimSeconds) {
    if (!Events.step(Opts.MaxSimSeconds))
      break;
  }
  if (itemsResolved() < Opts.NumItems)
    DOPE_LOG_WARN("pipeline sim ended early: %llu/%llu items (t=%.1fs)",
                  static_cast<unsigned long long>(ItemsDone),
                  static_cast<unsigned long long>(Opts.NumItems),
                  Events.now());

  Completions.finish(Events.now());

  PipelineSimResult Result;
  Result.ItemsCompleted = ItemsDone;
  Result.TotalSeconds = Events.now();
  Result.Throughput = Result.TotalSeconds > 0.0
                          ? static_cast<double>(ItemsDone) /
                                Result.TotalSeconds
                          : 0.0;
  Result.Stats = Stats;
  Result.ThroughputSeries = Completions.series();
  Result.PowerSeries = PowerTrace;
  Result.ThreadsSeries = ThreadsTrace;
  Result.Reconfigurations = Reconfigs;
  Result.FinalExtents = Extents;
  Result.EndedFused = ActiveAlt == 1;
  Result.Faults.ContextsKilled = DeadContexts;
  Result.Faults.ReplicasWedged = WedgedCount;
  Result.Faults.Incidents = Incidents;
  Result.Faults.ItemsShed = ItemsShed;
  Result.Faults.ItemsDropped = ItemsLost;
  Result.FirstFaultTime = FirstFaultTime;
  Result.LiveContextsAtEnd = liveContexts();
  Result.PeakOuterQueue = PeakOuterQueue;

  if (Trace) {
    Trace->setClock({});
    if (Tracer::active() == Trace)
      Tracer::setActive(PrevActive);
  }
  return Result;
}

} // namespace

PipelineSimResult PipelineSim::run(Mechanism *Mech,
                                   std::vector<unsigned> InitialExtents) {
  if (Mech)
    Mech->reset();
  FaultInjector Injector(Faults, Opts.Seed);
  Engine E(App, Opts, Disturbances, *Root, *Driver, Mech,
           std::move(InitialExtents),
           Faults.empty() ? nullptr : &Injector);
  return E.run();
}

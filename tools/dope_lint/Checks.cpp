//===- tools/dope_lint/Checks.cpp - DoPE contract checks -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Checks.h"
#include "CallGraph.h"
#include "LockGraph.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace dopelint;

//===----------------------------------------------------------------------===//
// Check table
//===----------------------------------------------------------------------===//

const std::vector<CheckInfo> &dopelint::allChecks() {
  static const std::vector<CheckInfo> Checks = {
      {"DL001", "error", "determinism-clock",
       "raw std::chrono clock read outside support/Clock.h"},
      {"DL002", "error", "determinism-random",
       "raw RNG primitive outside support/Random"},
      {"HP001", "error", "hot-path-lock",
       "DOPE_HOT function body acquires a lock"},
      {"HP002", "error", "hot-path-alloc",
       "DOPE_HOT function body allocates"},
      {"HP003", "warning", "hot-path-virtual-call",
       "DOPE_HOT function body calls a non-DOPE_HOT virtual"},
      {"AP001", "error", "begin-end-pairing",
       "Task::begin / Task::end imbalance on one TaskRuntime"},
      {"AP002", "warning", "wait-before-destroy",
       "Dope::create without wait/waitFor/destroy in the same function"},
      {"AP003", "warning", "fini-once",
       "FiniCB registered more than once for one descriptor"},
      {"TS001", "error", "trace-kind-names",
       "TraceKind enumerators and KindNames serializer table disagree"},
      {"TS002", "error", "trace-kind-switch",
       "defaultless switch over TraceKind misses enumerators"},
      {"HP004", "error", "hot-path-transitive",
       "DOPE_HOT body reaches a lock/allocation/blocking wait/growth "
       "through a call chain"},
      {"LK001", "error", "lock-order-cycle",
       "cycle in the static lock-acquisition graph (potential deadlock)"},
      {"LK002", "warning", "lock-across-blocking",
       "lock held across a blocking call"},
      {"MO001", "warning", "atomic-order-mix",
       "relaxed operation on an atomic that elsewhere uses stronger "
       "orders, with no fence or mo-proof"},
      {"MO002", "warning", "cas-order-split",
       "compare_exchange success/failure orders differ without mo-proof"},
  };
  return Checks;
}

static const char *severityOf(const std::string &Id) {
  for (const CheckInfo &C : allChecks())
    if (Id == C.Id)
      return C.Severity;
  return "error";
}

bool dopelint::isDeterminismWhitelisted(const std::string &Path) {
  auto EndsWith = [&](const char *Suffix) {
    size_t N = std::string(Suffix).size();
    return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
  };
  return EndsWith("support/Clock.h") || EndsWith("core/Clock.h") ||
         EndsWith("support/Random.h") || EndsWith("support/Random.cpp");
}

//===----------------------------------------------------------------------===//
// Pass 1: global index
//===----------------------------------------------------------------------===//

static void indexTraceSchema(const FileTokens &File, GlobalIndex &Index) {
  const std::vector<Token> &T = File.Lex.Tokens;
  for (size_t I = 0; I + 2 < T.size(); ++I) {
    if (isIdent(T[I], "enum") && isIdent(T[I + 1], "class") &&
        isIdent(T[I + 2], "TraceKind")) {
      size_t J = I + 3;
      while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";"))
        ++J; // skip the underlying-type clause
      if (J >= T.size() || !isPunct(T[J], "{"))
        continue;
      size_t End = matchForward(T, J, "{", "}");
      int Depth = 0;
      bool AtName = true; // next ident at depth 1 is an enumerator name
      for (size_t K = J; K < End; ++K) {
        if (isPunct(T[K], "{") || isPunct(T[K], "("))
          ++Depth;
        else if (isPunct(T[K], "}") || isPunct(T[K], ")"))
          --Depth;
        else if (Depth == 1 && isPunct(T[K], ","))
          AtName = true;
        else if (Depth == 1 && T[K].Kind == TokKind::Ident && AtName) {
          Index.TraceKindEnumerators.push_back(T[K].Text);
          AtName = false;
        }
      }
    }
    if (isIdent(T[I], "KindNames")) {
      size_t J = I + 1;
      while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";"))
        ++J;
      if (J >= T.size() || !isPunct(T[J], "{"))
        continue;
      size_t End = matchForward(T, J, "{", "}");
      int Count = 0;
      for (size_t K = J + 1; K < End; ++K)
        if (T[K].Kind == TokKind::String)
          ++Count;
      Index.KindNamesStrings = Count;
      Index.KindNamesFile = File.Path;
      Index.KindNamesLine = T[I].Line;
    }
  }
}

GlobalIndex dopelint::buildIndex(const std::vector<FileTokens> &Files) {
  GlobalIndex Index;
  for (const FileTokens &File : Files) {
    const std::vector<Token> &T = File.Lex.Tokens;
    for (size_t I = 0; I < T.size(); ++I) {
      // DOPE_HOT <ret-type...> name( — take the first ident directly
      // before a '(' within the declaration.
      if (isIdent(T[I], "DOPE_HOT")) {
        for (size_t J = I + 1; J + 1 < T.size() && J < I + 24; ++J) {
          if (isPunct(T[J], ";") || isPunct(T[J], "{"))
            break;
          if (T[J].Kind == TokKind::Ident && isPunct(T[J + 1], "(") &&
              !(J > 0 && isPunct(T[J - 1], "~"))) {
            Index.HotFunctions.insert(T[J].Text);
            break;
          }
        }
      }
      if (isIdent(T[I], "virtual")) {
        for (size_t J = I + 1; J + 1 < T.size() && J < I + 24; ++J) {
          if (isPunct(T[J], ";") || isPunct(T[J], "{") ||
              isPunct(T[J], "}"))
            break;
          if (T[J].Kind == TokKind::Ident && isPunct(T[J + 1], "(") &&
              !(J > 0 && isPunct(T[J - 1], "~"))) {
            Index.VirtualFunctions.insert(T[J].Text);
            break;
          }
        }
      }
    }
    for (const Scope &S : collectScopes(T)) {
      if (S.Name == "<lambda>")
        continue;
      if (S.Hot)
        Index.HotFunctions.insert(S.Name);
      if (S.Virtual)
        Index.VirtualFunctions.insert(S.Name);
      else
        Index.NonVirtualDefs.insert(S.Name);
    }
    indexTraceSchema(File, Index);
  }
  return Index;
}

//===----------------------------------------------------------------------===//
// Pass 2: per-file checks
//===----------------------------------------------------------------------===//

namespace {

class FileChecker {
public:
  FileChecker(const FileTokens &File, const GlobalIndex &Index,
              const CheckOptions &Opts)
      : File(File), T(File.Lex.Tokens), Index(Index), Opts(Opts) {}

  std::vector<Finding> run() {
    if (!isDeterminismWhitelisted(File.Path))
      checkDeterminism();
    Scopes = collectScopes(T);
    for (const Scope &S : Scopes) {
      if (S.Hot)
        checkHotPurity(S);
      checkPairing(S);
      checkWaitBeforeDestroy(S);
      checkFiniOnce(S);
    }
    checkTraceSchema();
    checkTraceSwitches();
    std::stable_sort(Findings.begin(), Findings.end(),
                     [](const Finding &A, const Finding &B) {
                       return A.Line < B.Line;
                     });
    return std::move(Findings);
  }

private:
  const FileTokens &File;
  const std::vector<Token> &T;
  const GlobalIndex &Index;
  const CheckOptions &Opts;
  std::vector<Scope> Scopes;
  std::vector<Finding> Findings;

  void report(const char *Id, unsigned Line, std::string Message) {
    if (Opts.Disabled.count(Id) || isSuppressed(File, Id, Line))
      return;
    Finding F;
    F.CheckId = Id;
    F.Severity = severityOf(Id);
    F.File = File.Path;
    F.Line = Line;
    F.Message = std::move(Message);
    Findings.push_back(std::move(F));
  }

  //===--------------------------------------------------------------===//
  // DL001 / DL002
  //===--------------------------------------------------------------===//

  void checkDeterminism() {
    static const std::set<std::string> Clocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static const std::set<std::string> Rng = {
        "rand",          "srand",      "random_device",
        "mt19937",       "mt19937_64", "default_random_engine",
        "minstd_rand",   "minstd_rand0"};
    for (const Token &Tok : T) {
      if (Tok.Kind != TokKind::Ident || Tok.InPP)
        continue;
      if (Clocks.count(Tok.Text))
        report("DL001", Tok.Line,
               "raw std::chrono::" + Tok.Text +
                   " outside support/Clock.h; route time through "
                   "dope::monotonicSeconds()/secondsDuration() so runs "
                   "stay replayable");
      else if (Rng.count(Tok.Text))
        report("DL002", Tok.Line,
               "raw RNG primitive '" + Tok.Text +
                   "' outside support/Random; use dope::Rng with a "
                   "logged seed so runs stay reproducible");
    }
  }

  //===--------------------------------------------------------------===//
  // HP001 / HP002 / HP003
  //===--------------------------------------------------------------===//

  /// Renders one direct-body impurity as its HP001/HP002 finding. The
  /// detectors (and message wording) are shared with HP004's
  /// transitive walk via classifyImpurity.
  void reportImpurity(const std::string &FnName, const Impurity &Imp) {
    const bool MemberCall = !Imp.Detail.empty() && Imp.Detail[0] == '.';
    switch (Imp.Kind) {
    case ImpurityKind::Lock:
      if (MemberCall)
        report("HP001", Imp.Line,
               "hot path '" + FnName + "' calls " + Imp.Detail +
                   "; DOPE_HOT monitoring paths must stay lock-free");
      else
        report("HP001", Imp.Line,
               "hot path '" + FnName + "' acquires a lock via '" +
                   Imp.Detail +
                   "'; DOPE_HOT monitoring paths must stay lock-free "
                   "(mirror state into relaxed atomics instead)");
      break;
    case ImpurityKind::Blocking:
      report("HP001", Imp.Line,
             "hot path '" + FnName + "' blocks in " + Imp.Detail +
                 "; DOPE_HOT scheduler paths must stay wait-free "
                 "(park in a dedicated cold entry point instead)");
      break;
    case ImpurityKind::Growth:
      report("HP002", Imp.Line,
             "hot path '" + FnName + "' grows a container via " +
                 Imp.Detail +
                 "; DOPE_HOT paths must pre-size storage and keep "
                 "growth in a cold helper");
      break;
    case ImpurityKind::Alloc:
      report("HP002", Imp.Line,
             "hot path '" + FnName + "' allocates via '" + Imp.Detail +
                 "'; DOPE_HOT paths run per task instance and must "
                 "not hit the allocator");
      break;
    }
  }

  void checkHotPurity(const Scope &S) {
    for (size_t Idx : S.OwnToks) {
      const Token &Tok = T[Idx];
      if (Tok.Kind != TokKind::Ident)
        continue;
      if (std::optional<Impurity> Imp = classifyImpurity(T, Idx)) {
        reportImpurity(S.Name, *Imp);
        continue;
      }
      // Call to a known virtual that is neither DOPE_HOT nor shadowed
      // by a non-virtual definition of the same name.
      if (Idx + 1 < T.size() && isPunct(T[Idx + 1], "(") &&
          !isKeywordNoCall(Tok.Text) && Tok.Text != S.Name &&
          !(Idx > 0 && isPunct(T[Idx - 1], "::")) &&
          Index.VirtualFunctions.count(Tok.Text) &&
          !Index.HotFunctions.count(Tok.Text) &&
          !Index.NonVirtualDefs.count(Tok.Text)) {
        report("HP003", Tok.Line,
               "hot path '" + S.Name + "' calls virtual '" + Tok.Text +
                   "()' which is not DOPE_HOT; annotate the callee or "
                   "devirtualize the hot path");
      }
    }
  }

  //===--------------------------------------------------------------===//
  // AP001
  //===--------------------------------------------------------------===//

  void checkPairing(const Scope &S) {
    // TaskRuntime &V declarations in the header or body.
    std::vector<std::string> Vars;
    auto ScanDecls = [&](const std::vector<size_t> &Toks) {
      for (size_t Idx : Toks) {
        if (isIdent(T[Idx], "TaskRuntime") && Idx + 2 < T.size() &&
            isPunct(T[Idx + 1], "&") &&
            T[Idx + 2].Kind == TokKind::Ident)
          Vars.push_back(T[Idx + 2].Text);
      }
    };
    ScanDecls(S.HeaderToks);
    ScanDecls(S.OwnToks);
    for (const std::string &V : Vars) {
      unsigned Begins = 0, Ends = 0;
      for (size_t Idx : S.OwnToks) {
        if (!isIdent(T[Idx], V.c_str()) || Idx + 3 >= T.size())
          continue;
        if (!isPunct(T[Idx + 1], ".") || !isPunct(T[Idx + 3], "("))
          continue;
        if (isIdent(T[Idx + 2], "begin"))
          ++Begins;
        else if (isIdent(T[Idx + 2], "end"))
          ++Ends;
      }
      if (Begins != Ends && (Begins || Ends))
        report("AP001", S.Line,
               "function '" + S.Name + "' calls " + V + ".begin() " +
                   std::to_string(Begins) + " time(s) but " + V +
                   ".end() " + std::to_string(Ends) +
                   " time(s); every begin must pair with an end on "
                   "all paths");
    }
  }

  //===--------------------------------------------------------------===//
  // AP002
  //===--------------------------------------------------------------===//

  void checkWaitBeforeDestroy(const Scope &S) {
    size_t CreateAt = SIZE_MAX;
    unsigned CreateLine = 0;
    for (size_t Idx : S.OwnToks) {
      if (isIdent(T[Idx], "Dope") && Idx + 2 < T.size() &&
          isPunct(T[Idx + 1], "::") && isIdent(T[Idx + 2], "create")) {
        CreateAt = Idx;
        CreateLine = T[Idx].Line;
        break;
      }
    }
    if (CreateAt == SIZE_MAX)
      return;
    for (size_t Idx : S.OwnToks) {
      if (Idx <= CreateAt)
        continue;
      if (isIdent(T[Idx], "wait") || isIdent(T[Idx], "waitFor") ||
          isIdent(T[Idx], "destroy"))
        return;
    }
    report("AP002", CreateLine,
           "function '" + S.Name +
               "' calls Dope::create but never wait()/waitFor()/"
               "destroy(); destroying a live region skips the FiniCB "
               "quiesce protocol");
  }

  //===--------------------------------------------------------------===//
  // AP003
  //===--------------------------------------------------------------===//

  void checkFiniOnce(const Scope &S) {
    // createTask(Name, Fn, Load, Desc, Init, Fini): two calls binding a
    // non-empty FiniCB to the same descriptor expression register the
    // finalizer twice — it must run exactly once per region drain.
    std::map<std::string, unsigned> FiniByDesc;
    for (size_t Idx : S.OwnToks) {
      if (!isIdent(T[Idx], "createTask") || Idx + 1 >= T.size() ||
          !isPunct(T[Idx + 1], "("))
        continue;
      size_t Close = matchForward(T, Idx + 1, "(", ")");
      if (Close >= T.size())
        continue;
      // Split top-level arguments.
      std::vector<std::pair<size_t, size_t>> Args; // [begin, end)
      int Paren = 0, Brace = 0, Square = 0;
      size_t ArgBegin = Idx + 2;
      for (size_t K = Idx + 2; K <= Close; ++K) {
        const Token &Tok = T[K];
        if (K == Close || (isPunct(Tok, ",") && Paren == 0 && Brace == 0 &&
                           Square == 0)) {
          if (K > ArgBegin)
            Args.push_back({ArgBegin, K});
          ArgBegin = K + 1;
          continue;
        }
        if (isPunct(Tok, "("))
          ++Paren;
        else if (isPunct(Tok, ")"))
          --Paren;
        else if (isPunct(Tok, "{"))
          ++Brace;
        else if (isPunct(Tok, "}"))
          --Brace;
        else if (isPunct(Tok, "["))
          ++Square;
        else if (isPunct(Tok, "]"))
          --Square;
      }
      if (Args.size() < 6)
        continue;
      auto ArgText = [&](size_t N) {
        std::string Out;
        for (size_t K = Args[N].first; K < Args[N].second; ++K) {
          if (!Out.empty())
            Out += ' ';
          Out += T[K].Text;
        }
        return Out;
      };
      std::string Fini = ArgText(5);
      if (Fini.empty() || Fini == "{ }" || Fini == "nullptr")
        continue;
      std::string Desc = ArgText(3);
      auto It = FiniByDesc.find(Desc);
      if (It != FiniByDesc.end())
        report("AP003", T[Idx].Line,
               "function '" + S.Name +
                   "' registers a FiniCB for descriptor '" + Desc +
                   "' again (first at line " + std::to_string(It->second) +
                   "); FiniCB must be registered at most once per "
                   "descriptor");
      else
        FiniByDesc.emplace(std::move(Desc), T[Idx].Line);
    }
  }

  //===--------------------------------------------------------------===//
  // TS001
  //===--------------------------------------------------------------===//

  void checkTraceSchema() {
    if (File.Path != Index.KindNamesFile || Index.KindNamesStrings < 0 ||
        Index.TraceKindEnumerators.empty())
      return;
    int Enums = static_cast<int>(Index.TraceKindEnumerators.size());
    if (Enums != Index.KindNamesStrings)
      report("TS001", Index.KindNamesLine,
             "TraceKind has " + std::to_string(Enums) +
                 " enumerators but KindNames serializes " +
                 std::to_string(Index.KindNamesStrings) +
                 "; every TraceKind needs a serializer entry (and a "
                 "replay case) or drained traces will not round-trip");
  }

  //===--------------------------------------------------------------===//
  // TS002
  //===--------------------------------------------------------------===//

  void checkTraceSwitches() {
    if (Index.TraceKindEnumerators.empty())
      return;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "switch") || !isPunct(T[I + 1], "("))
        continue;
      size_t CondClose = matchForward(T, I + 1, "(", ")");
      if (CondClose + 1 >= T.size() || !isPunct(T[CondClose + 1], "{"))
        continue;
      size_t BodyClose = matchForward(T, CondClose + 1, "{", "}");
      std::set<std::string> Cases;
      bool HasDefault = false;
      for (size_t K = CondClose + 2; K < BodyClose; ++K) {
        if (isIdent(T[K], "case") && K + 3 < T.size() &&
            isIdent(T[K + 1], "TraceKind") && isPunct(T[K + 2], "::") &&
            T[K + 3].Kind == TokKind::Ident)
          Cases.insert(T[K + 3].Text);
        if (isIdent(T[K], "default") && K + 1 < T.size() &&
            isPunct(T[K + 1], ":"))
          HasDefault = true;
      }
      if (Cases.empty() || HasDefault)
        continue;
      std::string Missing;
      for (const std::string &E : Index.TraceKindEnumerators)
        if (!Cases.count(E)) {
          if (!Missing.empty())
            Missing += ", ";
          Missing += E;
        }
      if (!Missing.empty())
        report("TS002", T[I].Line,
               "defaultless switch over TraceKind misses enumerator(s) " +
                   Missing +
                   "; cover every kind or add a default so trace-schema "
                   "growth cannot silently skip records");
    }
  }
};

} // namespace

std::vector<Finding> dopelint::runChecks(const FileTokens &File,
                                         const GlobalIndex &Index,
                                         const CheckOptions &Opts) {
  return FileChecker(File, Index, Opts).run();
}

//===----------------------------------------------------------------------===//
// Shared suppression lookup
//===----------------------------------------------------------------------===//

bool dopelint::isSuppressed(const FileTokens &File, const std::string &Id,
                            unsigned Line) {
  // A suppression comment covers its own line and the next one, so
  // both trailing (`code; // dope-lint: allow(X)`) and leading
  // (comment-above) placements work.
  for (unsigned L : {Line, Line ? Line - 1 : 0}) {
    auto It = File.Lex.Suppressions.find(L);
    if (It != File.Lex.Suppressions.end() &&
        (It->second.count(Id) || It->second.count("all")))
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Pass 3: whole-program checks (HP004, LK001/LK002, MO001/MO002)
//===----------------------------------------------------------------------===//

namespace {

std::string baseOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

/// `// dope-lint: mo-proof(anchor)` on the op's line or the line above.
bool hasMoProof(const FileTokens &File, unsigned Line) {
  for (unsigned L : {Line, Line ? Line - 1 : 0})
    if (File.Lex.MoProofs.count(L))
      return true;
  return false;
}

/// HP004: depth-first walk from every DOPE_HOT root through resolvable
/// calls. DOPE_HOT callees are skipped (they are checked as their own
/// roots) and DOPE_COLD callees terminate the walk — that is the
/// sanctioned way to hang a slow path off a hot one. The finding is
/// anchored at the root's call site so `// dope-lint: allow(HP004)`
/// placed there documents a reviewed exception.
void runHotTransitive(const CallGraph &CG, std::vector<Finding> &Out) {
  for (const FnNode &Root : CG.nodes()) {
    if (!Root.Def->Hot || Root.Def->Name == "<lambda>")
      continue;
    std::set<const FnNode *> Visited;
    std::function<void(const FnNode &, const std::vector<ChainFrame> &,
                       unsigned)>
        Walk = [&](const FnNode &N, const std::vector<ChainFrame> &Chain,
                   unsigned RootSite) {
          for (const CallSite &C : N.Calls) {
            const FnNode *Target = CG.resolve(C.Callee, N.Def->Qual, &N);
            if (!Target || Target->Def->Hot || Target->Def->Cold)
              continue;
            if (!Visited.insert(Target).second)
              continue;
            std::vector<ChainFrame> Next = Chain;
            Next.push_back({N.Def->Name, N.File->Path, C.Line});
            unsigned Anchor = RootSite ? RootSite : C.Line;
            if (!Target->Impurities.empty()) {
              const Impurity &Imp = Target->Impurities.front();
              std::string Path;
              for (const ChainFrame &F : Next)
                Path += F.Symbol + " -> ";
              Path += Target->Def->Name;
              Finding F;
              F.CheckId = "HP004";
              F.File = Root.File->Path;
              F.Line = Anchor;
              F.Message =
                  "hot path '" + Root.Def->Name + "' reaches " +
                  impurityNoun(Imp.Kind) + " via " + Path + " ('" +
                  Imp.Detail + "' at " + baseOf(Target->File->Path) + ":" +
                  std::to_string(Imp.Line) +
                  "); DOPE_HOT paths must stay pure through every callee "
                  "— mark a reviewed slow path DOPE_COLD or hoist the "
                  "impurity out (--explain shows the chain)";
              F.Chain = Next;
              F.Chain.push_back(
                  {Target->Def->Name, Target->File->Path, Imp.Line});
              Out.push_back(std::move(F));
            }
            Walk(*Target, Next, Anchor);
          }
        };
    Walk(Root, {}, 0);
  }
}

/// MO001 / MO002 over the whole-program atomics index.
void runMemoryOrderChecks(const std::vector<FileTokens> &Files,
                          const CallGraph &CG, std::vector<Finding> &Out) {
  std::vector<AtomicOp> Ops = collectAtomicOps(Files, CG);
  std::map<std::string, std::set<std::string>> OrdersByKey;
  for (const AtomicOp &Op : Ops)
    OrdersByKey[Op.Key].insert(Op.Order);
  static const std::set<std::string> Strong = {"acquire", "release",
                                               "acq_rel", "seq_cst",
                                               "consume"};
  for (const AtomicOp &Op : Ops) {
    if (Op.Op.rfind("compare_exchange", 0) == 0 && !Op.FailOrder.empty() &&
        Op.FailOrder != Op.Order && !hasMoProof(*Op.File, Op.Line)) {
      Finding F;
      F.CheckId = "MO002";
      F.File = Op.File->Path;
      F.Line = Op.Line;
      F.Message =
          "atomic '" + Op.Member + "' " + Op.Op + " uses " + Op.Order +
          " on success but " + Op.FailOrder +
          " on failure; split CAS orders need a written argument — "
          "annotate '// dope-lint: mo-proof(<DESIGN.md anchor>)' after "
          "review, or use one order";
      Out.push_back(std::move(F));
    }
    if (Op.Order != "relaxed")
      continue;
    std::string Stronger;
    for (const std::string &O : OrdersByKey[Op.Key])
      if (Strong.count(O))
        Stronger += (Stronger.empty() ? "" : "/") + O;
    if (Stronger.empty())
      continue;
    // A fence anywhere in the enclosing body is the classic
    // fence-then-relaxed idiom (Chase-Lev): exempt.
    if (Op.Enclosing) {
      bool Fenced = false;
      for (size_t Idx : Op.Enclosing->OwnToks)
        if (isIdent(Op.File->Lex.Tokens[Idx], "atomic_thread_fence"))
          Fenced = true;
      if (Fenced)
        continue;
    }
    if (hasMoProof(*Op.File, Op.Line))
      continue;
    Finding F;
    F.CheckId = "MO001";
    F.File = Op.File->Path;
    F.Line = Op.Line;
    F.Message =
        "relaxed " + Op.Op + " on atomic '" + Op.Member + "' ('" + Op.Key +
        "'), which elsewhere uses " + Stronger +
        "; mixed orders without an adjacent fence need a written "
        "argument — annotate '// dope-lint: mo-proof(<DESIGN.md "
        "anchor>)' after review, or align the orders";
    Out.push_back(std::move(F));
  }
}

} // namespace

std::vector<Finding>
dopelint::runGlobalChecks(const std::vector<FileTokens> &Files,
                          const GlobalIndex &Index,
                          const CheckOptions &Opts) {
  (void)Index;
  CallGraph CG(Files);
  std::vector<Finding> All;
  runHotTransitive(CG, All);
  for (Finding &F : analyzeLocks(Files, CG))
    All.push_back(std::move(F));
  runMemoryOrderChecks(Files, CG, All);

  std::map<std::string, const FileTokens *> ByPath;
  for (const FileTokens &F : Files)
    ByPath[F.Path] = &F;
  std::vector<Finding> Out;
  for (Finding &F : All) {
    F.Severity = severityOf(F.CheckId);
    if (Opts.Disabled.count(F.CheckId))
      continue;
    auto It = ByPath.find(F.File);
    if (It != ByPath.end() && isSuppressed(*It->second, F.CheckId, F.Line))
      continue;
    Out.push_back(std::move(F));
  }
  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    if (A.File != B.File)
      return A.File < B.File;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    if (A.CheckId != B.CheckId)
      return A.CheckId < B.CheckId;
    return A.Message < B.Message;
  });
  return Out;
}

# Empty compiler generated dependencies file for dope_workload.
# This may be replaced when dependencies are built.

//===- tools/dope_lint/Checks.cpp - DoPE contract checks -------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Checks.h"

#include <algorithm>
#include <map>

using namespace dopelint;

//===----------------------------------------------------------------------===//
// Check table
//===----------------------------------------------------------------------===//

const std::vector<CheckInfo> &dopelint::allChecks() {
  static const std::vector<CheckInfo> Checks = {
      {"DL001", "error", "determinism-clock",
       "raw std::chrono clock read outside support/Clock.h"},
      {"DL002", "error", "determinism-random",
       "raw RNG primitive outside support/Random"},
      {"HP001", "error", "hot-path-lock",
       "DOPE_HOT function body acquires a lock"},
      {"HP002", "error", "hot-path-alloc",
       "DOPE_HOT function body allocates"},
      {"HP003", "warning", "hot-path-virtual-call",
       "DOPE_HOT function body calls a non-DOPE_HOT virtual"},
      {"AP001", "error", "begin-end-pairing",
       "Task::begin / Task::end imbalance on one TaskRuntime"},
      {"AP002", "warning", "wait-before-destroy",
       "Dope::create without wait/waitFor/destroy in the same function"},
      {"AP003", "warning", "fini-once",
       "FiniCB registered more than once for one descriptor"},
      {"TS001", "error", "trace-kind-names",
       "TraceKind enumerators and KindNames serializer table disagree"},
      {"TS002", "error", "trace-kind-switch",
       "defaultless switch over TraceKind misses enumerators"},
  };
  return Checks;
}

static const char *severityOf(const std::string &Id) {
  for (const CheckInfo &C : allChecks())
    if (Id == C.Id)
      return C.Severity;
  return "error";
}

bool dopelint::isDeterminismWhitelisted(const std::string &Path) {
  auto EndsWith = [&](const char *Suffix) {
    size_t N = std::string(Suffix).size();
    return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
  };
  return EndsWith("support/Clock.h") || EndsWith("core/Clock.h") ||
         EndsWith("support/Random.h") || EndsWith("support/Random.cpp");
}

//===----------------------------------------------------------------------===//
// Scope detection
//===----------------------------------------------------------------------===//

namespace {

/// One function (or lambda) body found in a file.
struct Scope {
  std::string Name; ///< Bare name; "<lambda>" for lambdas.
  bool Hot = false;
  bool Virtual = false; ///< `virtual` or `override`/`final` in the header.
  unsigned Line = 0;
  /// Token indices of the header parameter list (between the header's
  /// parens) — AP001 finds `TaskRuntime &RT` parameters here.
  std::vector<size_t> HeaderToks;
  /// Token indices of the direct body, excluding nested scopes'
  /// bodies. The HP/AP checks are *direct-body* checks by design: a
  /// nested lambda is its own scope with its own annotations.
  std::vector<size_t> OwnToks;
};

bool isKeywordNoCall(const std::string &S) {
  static const std::set<std::string> K = {
      "if",       "while",    "for",      "switch",   "catch",
      "return",   "sizeof",   "alignof",  "decltype", "alignas",
      "assert",   "new",      "delete",   "static_assert",
      "noexcept", "defined",  "throw",    "co_return","co_await",
      "co_yield", "requires", "typeid",   "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast"};
  return K.count(S) != 0;
}

size_t matchForward(const std::vector<Token> &T, size_t Open,
                    const char *OpenP, const char *CloseP) {
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    if (T[I].Kind == TokKind::Punct) {
      if (T[I].Text == OpenP)
        ++Depth;
      else if (T[I].Text == CloseP && --Depth == 0)
        return I;
    }
  }
  return T.size();
}

bool isPunct(const Token &T, const char *P) {
  return T.Kind == TokKind::Punct && T.Text == P;
}
bool isIdent(const Token &T, const char *S) {
  return T.Kind == TokKind::Ident && T.Text == S;
}

/// Walks a constructor initializer list starting at the `:` token;
/// returns the index of the body `{` or SIZE_MAX on reject.
size_t skipCtorInit(const std::vector<Token> &T, size_t I) {
  ++I; // past ':'
  while (I < T.size()) {
    // Member (possibly qualified / templated) name.
    while (I < T.size() && !isPunct(T[I], "(") && !isPunct(T[I], "{") &&
           !isPunct(T[I], ";") && !isPunct(T[I], "}"))
      ++I;
    if (I >= T.size() || isPunct(T[I], ";") || isPunct(T[I], "}"))
      return SIZE_MAX;
    // `{` directly after the member name is a brace init; a `{` at the
    // start of an initializer position could only be the body when the
    // list has ended (handled after the group + comma logic).
    if (isPunct(T[I], "("))
      I = matchForward(T, I, "(", ")") + 1;
    else
      I = matchForward(T, I, "{", "}") + 1;
    if (I < T.size() && isPunct(T[I], "..."))
      ++I;
    if (I < T.size() && isPunct(T[I], ",")) {
      ++I;
      continue;
    }
    if (I < T.size() && isPunct(T[I], "{"))
      return I;
    return SIZE_MAX;
  }
  return SIZE_MAX;
}

/// After a candidate's closing paren at \p CloseParen, walks the
/// specifier tail (const, noexcept, override, trailing return, ctor
/// inits, ...) looking for a function body. Returns the body `{` index
/// or SIZE_MAX when the construct is not a definition. Sets
/// \p SawOverride when the tail marks the function virtual.
size_t findBody(const std::vector<Token> &T, size_t CloseParen,
                bool &SawOverride) {
  size_t I = CloseParen + 1;
  while (I < T.size()) {
    const Token &Tok = T[I];
    if (isPunct(Tok, "{"))
      return I;
    if (isPunct(Tok, ";") || isPunct(Tok, "}") || isPunct(Tok, "=") ||
        isPunct(Tok, ",") || isPunct(Tok, ")"))
      return SIZE_MAX;
    if (isPunct(Tok, ":"))
      return skipCtorInit(T, I);
    if (isIdent(Tok, "override") || isIdent(Tok, "final")) {
      SawOverride = true;
      ++I;
      continue;
    }
    if (isIdent(Tok, "noexcept") || isIdent(Tok, "throw")) {
      ++I;
      if (I < T.size() && isPunct(T[I], "("))
        I = matchForward(T, I, "(", ")") + 1;
      continue;
    }
    if (isPunct(Tok, "->")) {
      // Trailing return type: anything up to the body brace.
      ++I;
      while (I < T.size() && !isPunct(T[I], "{") && !isPunct(T[I], ";") &&
             !isPunct(T[I], "}"))
        ++I;
      continue;
    }
    if (isPunct(Tok, "[")) { // attribute [[...]]
      I = matchForward(T, I, "[", "]") + 1;
      continue;
    }
    if (Tok.Kind == TokKind::Ident || isPunct(Tok, "&") ||
        isPunct(Tok, "&&") || isPunct(Tok, "...")) {
      ++I; // const / mutable / try / ref-qualifier / macro specifier
      continue;
    }
    return SIZE_MAX;
  }
  return SIZE_MAX;
}

/// Scans backward from the candidate name for DOPE_HOT / virtual in the
/// same declaration (bounded; stops at statement/body boundaries).
void scanHeaderPrefix(const std::vector<Token> &T, size_t NameIdx, bool &Hot,
                      bool &Virtual) {
  size_t Steps = 0;
  for (size_t K = NameIdx; K-- > 0 && Steps < 64; ++Steps) {
    const Token &Tok = T[K];
    if (isPunct(Tok, ";") || isPunct(Tok, "{") || isPunct(Tok, "}"))
      return;
    if (isPunct(Tok, ":") && K > 0 &&
        (isIdent(T[K - 1], "public") || isIdent(T[K - 1], "private") ||
         isIdent(T[K - 1], "protected")))
      return;
    if (isIdent(Tok, "DOPE_HOT"))
      Hot = true;
    if (isIdent(Tok, "virtual"))
      Virtual = true;
  }
}

std::vector<Scope> collectScopes(const std::vector<Token> &T) {
  // Pass A: find every function header and remember its body brace.
  std::map<size_t, Scope> BodyStart;
  for (size_t I = 0; I + 1 < T.size(); ++I) {
    if (T[I].InPP)
      continue;
    Scope S;
    size_t Body = SIZE_MAX;
    size_t HeaderOpen = SIZE_MAX;
    if (T[I].Kind == TokKind::Ident && isPunct(T[I + 1], "(") &&
        !isKeywordNoCall(T[I].Text)) {
      size_t Close = matchForward(T, I + 1, "(", ")");
      if (Close >= T.size())
        continue;
      bool SawOverride = false;
      Body = findBody(T, Close, SawOverride);
      if (Body == SIZE_MAX)
        continue;
      S.Name = T[I].Text;
      S.Line = T[I].Line;
      S.Virtual = SawOverride;
      HeaderOpen = I + 1;
      scanHeaderPrefix(T, I, S.Hot, S.Virtual);
      for (size_t H = HeaderOpen + 1; H < Close; ++H)
        S.HeaderToks.push_back(H);
    } else if (isPunct(T[I], "]") && isPunct(T[I + 1], "(")) {
      size_t Close = matchForward(T, I + 1, "(", ")");
      if (Close >= T.size())
        continue;
      bool SawOverride = false;
      Body = findBody(T, Close, SawOverride);
      if (Body == SIZE_MAX)
        continue;
      S.Name = "<lambda>";
      S.Line = T[I].Line;
      for (size_t H = I + 2; H < Close; ++H)
        S.HeaderToks.push_back(H);
    } else if (isPunct(T[I], "]") && isPunct(T[I + 1], "{")) {
      Body = I + 1;
      S.Name = "<lambda>";
      S.Line = T[I].Line;
    } else {
      continue;
    }
    if (Body != SIZE_MAX && !BodyStart.count(Body))
      BodyStart.emplace(Body, std::move(S));
  }

  // Pass B: attribute each token to the innermost enclosing scope.
  std::vector<Scope> Done;
  struct Active {
    Scope S;
    int BodyDepth;
  };
  std::vector<Active> Stack;
  int Depth = 0;
  for (size_t I = 0; I < T.size(); ++I) {
    if (isPunct(T[I], "{")) {
      ++Depth;
      auto It = BodyStart.find(I);
      if (It != BodyStart.end()) {
        Stack.push_back({std::move(It->second), Depth});
        continue;
      }
    } else if (isPunct(T[I], "}")) {
      if (!Stack.empty() && Stack.back().BodyDepth == Depth) {
        Done.push_back(std::move(Stack.back().S));
        Stack.pop_back();
        --Depth;
        continue;
      }
      --Depth;
    }
    if (!Stack.empty())
      Stack.back().S.OwnToks.push_back(I);
  }
  while (!Stack.empty()) { // unterminated at EOF: keep what we saw
    Done.push_back(std::move(Stack.back().S));
    Stack.pop_back();
  }
  return Done;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pass 1: global index
//===----------------------------------------------------------------------===//

static void indexTraceSchema(const FileTokens &File, GlobalIndex &Index) {
  const std::vector<Token> &T = File.Lex.Tokens;
  for (size_t I = 0; I + 2 < T.size(); ++I) {
    if (isIdent(T[I], "enum") && isIdent(T[I + 1], "class") &&
        isIdent(T[I + 2], "TraceKind")) {
      size_t J = I + 3;
      while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";"))
        ++J; // skip the underlying-type clause
      if (J >= T.size() || !isPunct(T[J], "{"))
        continue;
      size_t End = matchForward(T, J, "{", "}");
      int Depth = 0;
      bool AtName = true; // next ident at depth 1 is an enumerator name
      for (size_t K = J; K < End; ++K) {
        if (isPunct(T[K], "{") || isPunct(T[K], "("))
          ++Depth;
        else if (isPunct(T[K], "}") || isPunct(T[K], ")"))
          --Depth;
        else if (Depth == 1 && isPunct(T[K], ","))
          AtName = true;
        else if (Depth == 1 && T[K].Kind == TokKind::Ident && AtName) {
          Index.TraceKindEnumerators.push_back(T[K].Text);
          AtName = false;
        }
      }
    }
    if (isIdent(T[I], "KindNames")) {
      size_t J = I + 1;
      while (J < T.size() && !isPunct(T[J], "{") && !isPunct(T[J], ";"))
        ++J;
      if (J >= T.size() || !isPunct(T[J], "{"))
        continue;
      size_t End = matchForward(T, J, "{", "}");
      int Count = 0;
      for (size_t K = J + 1; K < End; ++K)
        if (T[K].Kind == TokKind::String)
          ++Count;
      Index.KindNamesStrings = Count;
      Index.KindNamesFile = File.Path;
      Index.KindNamesLine = T[I].Line;
    }
  }
}

GlobalIndex dopelint::buildIndex(const std::vector<FileTokens> &Files) {
  GlobalIndex Index;
  for (const FileTokens &File : Files) {
    const std::vector<Token> &T = File.Lex.Tokens;
    for (size_t I = 0; I < T.size(); ++I) {
      // DOPE_HOT <ret-type...> name( — take the first ident directly
      // before a '(' within the declaration.
      if (isIdent(T[I], "DOPE_HOT")) {
        for (size_t J = I + 1; J + 1 < T.size() && J < I + 24; ++J) {
          if (isPunct(T[J], ";") || isPunct(T[J], "{"))
            break;
          if (T[J].Kind == TokKind::Ident && isPunct(T[J + 1], "(") &&
              !(J > 0 && isPunct(T[J - 1], "~"))) {
            Index.HotFunctions.insert(T[J].Text);
            break;
          }
        }
      }
      if (isIdent(T[I], "virtual")) {
        for (size_t J = I + 1; J + 1 < T.size() && J < I + 24; ++J) {
          if (isPunct(T[J], ";") || isPunct(T[J], "{") ||
              isPunct(T[J], "}"))
            break;
          if (T[J].Kind == TokKind::Ident && isPunct(T[J + 1], "(") &&
              !(J > 0 && isPunct(T[J - 1], "~"))) {
            Index.VirtualFunctions.insert(T[J].Text);
            break;
          }
        }
      }
    }
    for (const Scope &S : collectScopes(T)) {
      if (S.Name == "<lambda>")
        continue;
      if (S.Hot)
        Index.HotFunctions.insert(S.Name);
      if (S.Virtual)
        Index.VirtualFunctions.insert(S.Name);
      else
        Index.NonVirtualDefs.insert(S.Name);
    }
    indexTraceSchema(File, Index);
  }
  return Index;
}

//===----------------------------------------------------------------------===//
// Pass 2: per-file checks
//===----------------------------------------------------------------------===//

namespace {

class FileChecker {
public:
  FileChecker(const FileTokens &File, const GlobalIndex &Index,
              const CheckOptions &Opts)
      : File(File), T(File.Lex.Tokens), Index(Index), Opts(Opts) {}

  std::vector<Finding> run() {
    if (!isDeterminismWhitelisted(File.Path))
      checkDeterminism();
    Scopes = collectScopes(T);
    for (const Scope &S : Scopes) {
      if (S.Hot)
        checkHotPurity(S);
      checkPairing(S);
      checkWaitBeforeDestroy(S);
      checkFiniOnce(S);
    }
    checkTraceSchema();
    checkTraceSwitches();
    std::stable_sort(Findings.begin(), Findings.end(),
                     [](const Finding &A, const Finding &B) {
                       return A.Line < B.Line;
                     });
    return std::move(Findings);
  }

private:
  const FileTokens &File;
  const std::vector<Token> &T;
  const GlobalIndex &Index;
  const CheckOptions &Opts;
  std::vector<Scope> Scopes;
  std::vector<Finding> Findings;

  bool suppressed(const std::string &Id, unsigned Line) const {
    // A suppression comment covers its own line and the next one, so
    // both trailing (`code; // dope-lint: allow(X)`) and leading
    // (comment-above) placements work.
    for (unsigned L : {Line, Line ? Line - 1 : 0}) {
      auto It = File.Lex.Suppressions.find(L);
      if (It != File.Lex.Suppressions.end() &&
          (It->second.count(Id) || It->second.count("all")))
        return true;
    }
    return false;
  }

  void report(const char *Id, unsigned Line, std::string Message) {
    if (Opts.Disabled.count(Id) || suppressed(Id, Line))
      return;
    Findings.push_back({Id, severityOf(Id), File.Path, Line,
                        std::move(Message)});
  }

  //===--------------------------------------------------------------===//
  // DL001 / DL002
  //===--------------------------------------------------------------===//

  void checkDeterminism() {
    static const std::set<std::string> Clocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static const std::set<std::string> Rng = {
        "rand",          "srand",      "random_device",
        "mt19937",       "mt19937_64", "default_random_engine",
        "minstd_rand",   "minstd_rand0"};
    for (const Token &Tok : T) {
      if (Tok.Kind != TokKind::Ident || Tok.InPP)
        continue;
      if (Clocks.count(Tok.Text))
        report("DL001", Tok.Line,
               "raw std::chrono::" + Tok.Text +
                   " outside support/Clock.h; route time through "
                   "dope::monotonicSeconds()/secondsDuration() so runs "
                   "stay replayable");
      else if (Rng.count(Tok.Text))
        report("DL002", Tok.Line,
               "raw RNG primitive '" + Tok.Text +
                   "' outside support/Random; use dope::Rng with a "
                   "logged seed so runs stay reproducible");
    }
  }

  //===--------------------------------------------------------------===//
  // HP001 / HP002 / HP003
  //===--------------------------------------------------------------===//

  void checkHotPurity(const Scope &S) {
    static const std::set<std::string> LockTypes = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
    static const std::set<std::string> LockCalls = {
        "lock", "try_lock", "lock_shared", "try_lock_shared"};
    static const std::set<std::string> PthreadLocks = {
        "pthread_mutex_lock", "pthread_spin_lock", "pthread_rwlock_rdlock",
        "pthread_rwlock_wrlock"};
    static const std::set<std::string> Allocs = {
        "make_unique", "make_shared", "malloc", "calloc", "realloc"};
    // Blocking waits: a DOPE_HOT scheduler body (deque push/pop/steal,
    // spawn/tryAcquire sweeps) must stay wait-free — parking belongs in
    // a dedicated cold entry point (e.g. StealScheduler::parkUntilWork).
    static const std::set<std::string> BlockingCalls = {
        "wait", "wait_for", "wait_until", "waitAndPop"};
    // Amortized-growth members: owner-side fast paths may not grow
    // containers inline; ring growth must live in a cold helper (see
    // ChaseLevDeque::grow).
    static const std::set<std::string> GrowthCalls = {
        "push_back", "emplace_back", "resize", "reserve"};

    for (size_t Idx : S.OwnToks) {
      const Token &Tok = T[Idx];
      if (Tok.Kind != TokKind::Ident)
        continue;
      if (LockTypes.count(Tok.Text) || PthreadLocks.count(Tok.Text)) {
        report("HP001", Tok.Line,
               "hot path '" + S.Name + "' acquires a lock via '" +
                   Tok.Text +
                   "'; DOPE_HOT monitoring paths must stay lock-free "
                   "(mirror state into relaxed atomics instead)");
        continue;
      }
      if (LockCalls.count(Tok.Text) && Idx > 0 && Idx + 1 < T.size() &&
          (isPunct(T[Idx - 1], ".") || isPunct(T[Idx - 1], "->")) &&
          isPunct(T[Idx + 1], "(")) {
        report("HP001", Tok.Line,
               "hot path '" + S.Name + "' calls ." + Tok.Text +
                   "(); DOPE_HOT monitoring paths must stay lock-free");
        continue;
      }
      if (BlockingCalls.count(Tok.Text) && Idx > 0 && Idx + 1 < T.size() &&
          (isPunct(T[Idx - 1], ".") || isPunct(T[Idx - 1], "->")) &&
          isPunct(T[Idx + 1], "(")) {
        report("HP001", Tok.Line,
               "hot path '" + S.Name + "' blocks in ." + Tok.Text +
                   "(); DOPE_HOT scheduler paths must stay wait-free "
                   "(park in a dedicated cold entry point instead)");
        continue;
      }
      if (GrowthCalls.count(Tok.Text) && Idx > 0 && Idx + 1 < T.size() &&
          (isPunct(T[Idx - 1], ".") || isPunct(T[Idx - 1], "->")) &&
          isPunct(T[Idx + 1], "(")) {
        report("HP002", Tok.Line,
               "hot path '" + S.Name + "' grows a container via ." +
                   Tok.Text +
                   "(); DOPE_HOT paths must pre-size storage and keep "
                   "growth in a cold helper");
        continue;
      }
      if (Tok.Text == "new" || Allocs.count(Tok.Text)) {
        report("HP002", Tok.Line,
               "hot path '" + S.Name + "' allocates via '" + Tok.Text +
                   "'; DOPE_HOT paths run per task instance and must "
                   "not hit the allocator");
        continue;
      }
      // Call to a known virtual that is neither DOPE_HOT nor shadowed
      // by a non-virtual definition of the same name.
      if (Idx + 1 < T.size() && isPunct(T[Idx + 1], "(") &&
          !isKeywordNoCall(Tok.Text) && Tok.Text != S.Name &&
          !(Idx > 0 && isPunct(T[Idx - 1], "::")) &&
          Index.VirtualFunctions.count(Tok.Text) &&
          !Index.HotFunctions.count(Tok.Text) &&
          !Index.NonVirtualDefs.count(Tok.Text)) {
        report("HP003", Tok.Line,
               "hot path '" + S.Name + "' calls virtual '" + Tok.Text +
                   "()' which is not DOPE_HOT; annotate the callee or "
                   "devirtualize the hot path");
      }
    }
  }

  //===--------------------------------------------------------------===//
  // AP001
  //===--------------------------------------------------------------===//

  void checkPairing(const Scope &S) {
    // TaskRuntime &V declarations in the header or body.
    std::vector<std::string> Vars;
    auto ScanDecls = [&](const std::vector<size_t> &Toks) {
      for (size_t Idx : Toks) {
        if (isIdent(T[Idx], "TaskRuntime") && Idx + 2 < T.size() &&
            isPunct(T[Idx + 1], "&") &&
            T[Idx + 2].Kind == TokKind::Ident)
          Vars.push_back(T[Idx + 2].Text);
      }
    };
    ScanDecls(S.HeaderToks);
    ScanDecls(S.OwnToks);
    for (const std::string &V : Vars) {
      unsigned Begins = 0, Ends = 0;
      for (size_t Idx : S.OwnToks) {
        if (!isIdent(T[Idx], V.c_str()) || Idx + 3 >= T.size())
          continue;
        if (!isPunct(T[Idx + 1], ".") || !isPunct(T[Idx + 3], "("))
          continue;
        if (isIdent(T[Idx + 2], "begin"))
          ++Begins;
        else if (isIdent(T[Idx + 2], "end"))
          ++Ends;
      }
      if (Begins != Ends && (Begins || Ends))
        report("AP001", S.Line,
               "function '" + S.Name + "' calls " + V + ".begin() " +
                   std::to_string(Begins) + " time(s) but " + V +
                   ".end() " + std::to_string(Ends) +
                   " time(s); every begin must pair with an end on "
                   "all paths");
    }
  }

  //===--------------------------------------------------------------===//
  // AP002
  //===--------------------------------------------------------------===//

  void checkWaitBeforeDestroy(const Scope &S) {
    size_t CreateAt = SIZE_MAX;
    unsigned CreateLine = 0;
    for (size_t Idx : S.OwnToks) {
      if (isIdent(T[Idx], "Dope") && Idx + 2 < T.size() &&
          isPunct(T[Idx + 1], "::") && isIdent(T[Idx + 2], "create")) {
        CreateAt = Idx;
        CreateLine = T[Idx].Line;
        break;
      }
    }
    if (CreateAt == SIZE_MAX)
      return;
    for (size_t Idx : S.OwnToks) {
      if (Idx <= CreateAt)
        continue;
      if (isIdent(T[Idx], "wait") || isIdent(T[Idx], "waitFor") ||
          isIdent(T[Idx], "destroy"))
        return;
    }
    report("AP002", CreateLine,
           "function '" + S.Name +
               "' calls Dope::create but never wait()/waitFor()/"
               "destroy(); destroying a live region skips the FiniCB "
               "quiesce protocol");
  }

  //===--------------------------------------------------------------===//
  // AP003
  //===--------------------------------------------------------------===//

  void checkFiniOnce(const Scope &S) {
    // createTask(Name, Fn, Load, Desc, Init, Fini): two calls binding a
    // non-empty FiniCB to the same descriptor expression register the
    // finalizer twice — it must run exactly once per region drain.
    std::map<std::string, unsigned> FiniByDesc;
    for (size_t Idx : S.OwnToks) {
      if (!isIdent(T[Idx], "createTask") || Idx + 1 >= T.size() ||
          !isPunct(T[Idx + 1], "("))
        continue;
      size_t Close = matchForward(T, Idx + 1, "(", ")");
      if (Close >= T.size())
        continue;
      // Split top-level arguments.
      std::vector<std::pair<size_t, size_t>> Args; // [begin, end)
      int Paren = 0, Brace = 0, Square = 0;
      size_t ArgBegin = Idx + 2;
      for (size_t K = Idx + 2; K <= Close; ++K) {
        const Token &Tok = T[K];
        if (K == Close || (isPunct(Tok, ",") && Paren == 0 && Brace == 0 &&
                           Square == 0)) {
          if (K > ArgBegin)
            Args.push_back({ArgBegin, K});
          ArgBegin = K + 1;
          continue;
        }
        if (isPunct(Tok, "("))
          ++Paren;
        else if (isPunct(Tok, ")"))
          --Paren;
        else if (isPunct(Tok, "{"))
          ++Brace;
        else if (isPunct(Tok, "}"))
          --Brace;
        else if (isPunct(Tok, "["))
          ++Square;
        else if (isPunct(Tok, "]"))
          --Square;
      }
      if (Args.size() < 6)
        continue;
      auto ArgText = [&](size_t N) {
        std::string Out;
        for (size_t K = Args[N].first; K < Args[N].second; ++K) {
          if (!Out.empty())
            Out += ' ';
          Out += T[K].Text;
        }
        return Out;
      };
      std::string Fini = ArgText(5);
      if (Fini.empty() || Fini == "{ }" || Fini == "nullptr")
        continue;
      std::string Desc = ArgText(3);
      auto It = FiniByDesc.find(Desc);
      if (It != FiniByDesc.end())
        report("AP003", T[Idx].Line,
               "function '" + S.Name +
                   "' registers a FiniCB for descriptor '" + Desc +
                   "' again (first at line " + std::to_string(It->second) +
                   "); FiniCB must be registered at most once per "
                   "descriptor");
      else
        FiniByDesc.emplace(std::move(Desc), T[Idx].Line);
    }
  }

  //===--------------------------------------------------------------===//
  // TS001
  //===--------------------------------------------------------------===//

  void checkTraceSchema() {
    if (File.Path != Index.KindNamesFile || Index.KindNamesStrings < 0 ||
        Index.TraceKindEnumerators.empty())
      return;
    int Enums = static_cast<int>(Index.TraceKindEnumerators.size());
    if (Enums != Index.KindNamesStrings)
      report("TS001", Index.KindNamesLine,
             "TraceKind has " + std::to_string(Enums) +
                 " enumerators but KindNames serializes " +
                 std::to_string(Index.KindNamesStrings) +
                 "; every TraceKind needs a serializer entry (and a "
                 "replay case) or drained traces will not round-trip");
  }

  //===--------------------------------------------------------------===//
  // TS002
  //===--------------------------------------------------------------===//

  void checkTraceSwitches() {
    if (Index.TraceKindEnumerators.empty())
      return;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "switch") || !isPunct(T[I + 1], "("))
        continue;
      size_t CondClose = matchForward(T, I + 1, "(", ")");
      if (CondClose + 1 >= T.size() || !isPunct(T[CondClose + 1], "{"))
        continue;
      size_t BodyClose = matchForward(T, CondClose + 1, "{", "}");
      std::set<std::string> Cases;
      bool HasDefault = false;
      for (size_t K = CondClose + 2; K < BodyClose; ++K) {
        if (isIdent(T[K], "case") && K + 3 < T.size() &&
            isIdent(T[K + 1], "TraceKind") && isPunct(T[K + 2], "::") &&
            T[K + 3].Kind == TokKind::Ident)
          Cases.insert(T[K + 3].Text);
        if (isIdent(T[K], "default") && K + 1 < T.size() &&
            isPunct(T[K + 1], ":"))
          HasDefault = true;
      }
      if (Cases.empty() || HasDefault)
        continue;
      std::string Missing;
      for (const std::string &E : Index.TraceKindEnumerators)
        if (!Cases.count(E)) {
          if (!Missing.empty())
            Missing += ", ";
          Missing += E;
        }
      if (!Missing.empty())
        report("TS002", T[I].Line,
               "defaultless switch over TraceKind misses enumerator(s) " +
                   Missing +
                   "; cover every kind or add a default so trace-schema "
                   "growth cannot silently skip records");
    }
  }
};

} // namespace

std::vector<Finding> dopelint::runChecks(const FileTokens &File,
                                         const GlobalIndex &Index,
                                         const CheckOptions &Opts) {
  return FileChecker(File, Index, Opts).run();
}

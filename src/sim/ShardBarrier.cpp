//===- sim/ShardBarrier.cpp - Epoch barrier for sharded simulation -------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ShardBarrier.h"

#include <cassert>

using namespace dope;

ShardBarrier::ShardBarrier(unsigned Parties) : NumParties(Parties) {
  assert(Parties >= 1 && "a barrier needs at least one party");
}

bool ShardBarrier::arriveAndWait(const std::function<void()> &Serial) {
  std::unique_lock<std::mutex> Lock(Mutex);
  const uint64_t Gen = Generation;
  if (++Arrived == NumParties) {
    // Run the serial section under the barrier mutex: every peer is
    // blocked waiting for the generation to advance, so the section is
    // exclusive, and the mutex hand-off publishes its writes to every
    // waiter before release.
    if (Serial)
      Serial();
    Arrived = 0;
    ++Generation;
    Lock.unlock();
    Released.notify_all();
    return true;
  }
  Released.wait(Lock, [&]() DOPE_REQUIRES(Mutex) { return Generation != Gen; });
  return false;
}

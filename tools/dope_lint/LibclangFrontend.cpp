//===- tools/dope_lint/LibclangFrontend.cpp - libclang tokenizer -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "LibclangFrontend.h"

#ifdef DOPE_LINT_HAVE_LIBCLANG

#include <clang-c/Index.h>

#include <cstring>

using namespace dopelint;

bool dopelint::libclangAvailable() { return true; }

namespace {

/// Maps a CXToken to the built-in lexer's token shape so the checks see
/// one stream regardless of frontend.
void appendToken(CXTranslationUnit TU, CXToken CTok, LexOutput &Out) {
  CXString Spelling = clang_getTokenSpelling(TU, CTok);
  const char *Text = clang_getCString(Spelling);
  CXSourceLocation Loc = clang_getTokenLocation(TU, CTok);
  unsigned Line = 0, Col = 0;
  clang_getSpellingLocation(Loc, nullptr, &Line, &Col, nullptr);

  switch (clang_getTokenKind(CTok)) {
  case CXToken_Comment: {
    // Comments carry only suppression markers, exactly like the
    // built-in lexer.
    std::string C = Text ? Text : "";
    size_t Pos = C.find("dope-lint:");
    if (Pos != std::string::npos) {
      // Reuse the built-in parser by lexing the comment as a line
      // comment.
      LexOutput Tmp = lex("// " + C.substr(Pos) + "\n");
      for (const auto &Entry : Tmp.Suppressions)
        Out.Suppressions[Line].insert(Entry.second.begin(),
                                      Entry.second.end());
      for (const auto &Entry : Tmp.MoProofs)
        Out.MoProofs[Line] = Entry.second;
    }
    break;
  }
  case CXToken_Punctuation: {
    Token T;
    T.Kind = TokKind::Punct;
    T.Text = Text ? Text : "";
    T.Line = Line;
    T.Col = Col;
    Out.Tokens.push_back(std::move(T));
    break;
  }
  case CXToken_Keyword:
  case CXToken_Identifier: {
    Token T;
    T.Kind = TokKind::Ident;
    T.Text = Text ? Text : "";
    T.Line = Line;
    T.Col = Col;
    Out.Tokens.push_back(std::move(T));
    break;
  }
  case CXToken_Literal: {
    Token T;
    T.Line = Line;
    T.Col = Col;
    std::string S = Text ? Text : "";
    if (!S.empty() && (S.front() == '"' || (S.front() == 'R' &&
                                            S.find('"') != std::string::npos))) {
      T.Kind = TokKind::String;
      size_t Open = S.find('"');
      size_t CloseQ = S.rfind('"');
      T.Text = CloseQ > Open ? S.substr(Open + 1, CloseQ - Open - 1) : S;
    } else if (!S.empty() && S.front() == '\'') {
      T.Kind = TokKind::CharLit;
      T.Text = S.size() >= 2 ? S.substr(1, S.size() - 2) : S;
    } else {
      T.Kind = TokKind::Number;
      T.Text = std::move(S);
    }
    Out.Tokens.push_back(std::move(T));
    break;
  }
  }
  clang_disposeString(Spelling);
}

} // namespace

bool dopelint::lexWithLibclang(const std::string &Path,
                               const std::vector<std::string> &Args,
                               LexOutput &Out, std::string &Error) {
  CXIndex Index = clang_createIndex(/*excludeDeclsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);
  std::vector<const char *> Argv;
  for (const std::string &A : Args) {
    // The argv from compile_commands.json includes the compiler and the
    // source file; libclang wants only the flags.
    if (A == Path || A.rfind("-o", 0) == 0)
      continue;
    Argv.push_back(A.c_str());
  }
  if (!Argv.empty())
    Argv.erase(Argv.begin()); // drop the compiler executable

  CXTranslationUnit TU = nullptr;
  CXErrorCode EC = clang_parseTranslationUnit2(
      Index, Path.c_str(), Argv.data(), static_cast<int>(Argv.size()),
      nullptr, 0, CXTranslationUnit_DetailedPreprocessingRecord, &TU);
  if (EC != CXError_Success || !TU) {
    clang_disposeIndex(Index);
    Error = "libclang failed to parse '" + Path + "'";
    return false;
  }

  CXFile File = clang_getFile(TU, Path.c_str());
  CXSourceLocation Begin = clang_getLocationForOffset(TU, File, 0);
  size_t Size = 0;
  clang_getFileContents(TU, File, &Size);
  CXSourceLocation End =
      clang_getLocationForOffset(TU, File, static_cast<unsigned>(Size));
  CXSourceRange Range = clang_getRange(Begin, End);

  CXToken *Tokens = nullptr;
  unsigned NumTokens = 0;
  clang_tokenize(TU, Range, &Tokens, &NumTokens);
  for (unsigned I = 0; I != NumTokens; ++I)
    appendToken(TU, Tokens[I], Out);
  clang_disposeTokens(TU, Tokens, NumTokens);
  clang_disposeTranslationUnit(TU);
  clang_disposeIndex(Index);
  return true;
}

#else // !DOPE_LINT_HAVE_LIBCLANG

using namespace dopelint;

bool dopelint::libclangAvailable() { return false; }

bool dopelint::lexWithLibclang(const std::string &,
                               const std::vector<std::string> &, LexOutput &,
                               std::string &Error) {
  Error = "dope_lint was built without libclang (clang-c/Index.h not "
          "found at configure time); using the built-in lexer frontend";
  return false;
}

#endif // DOPE_LINT_HAVE_LIBCLANG

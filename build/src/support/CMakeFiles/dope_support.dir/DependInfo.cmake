
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Logging.cpp" "src/support/CMakeFiles/dope_support.dir/Logging.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/Logging.cpp.o.d"
  "/root/repo/src/support/MathUtils.cpp" "src/support/CMakeFiles/dope_support.dir/MathUtils.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/MathUtils.cpp.o.d"
  "/root/repo/src/support/OptionParser.cpp" "src/support/CMakeFiles/dope_support.dir/OptionParser.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/OptionParser.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/support/CMakeFiles/dope_support.dir/Random.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/Random.cpp.o.d"
  "/root/repo/src/support/SpeedupCurve.cpp" "src/support/CMakeFiles/dope_support.dir/SpeedupCurve.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/SpeedupCurve.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/support/CMakeFiles/dope_support.dir/Statistics.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/Statistics.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/support/CMakeFiles/dope_support.dir/Table.cpp.o" "gcc" "src/support/CMakeFiles/dope_support.dir/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for dope_mechanisms.
# This may be replaced when dependencies are built.

//===- sim/RecursiveSim.cpp - Recursive task-tree workload model -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/RecursiveSim.h"

#include "core/Config.h"
#include "core/FeatureRegistry.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace dope;

RecursiveSim::RecursiveSim(RecursiveWorkModel TheModel,
                           RecursiveSimOptions TheOpts)
    : Model(std::move(TheModel)), Opts(TheOpts) {
  // The region the mechanism navigates: one PAR task under a
  // tree-marked descriptor — the same shape buildTaskTree produces.
  TreeTask = Graph.createTask(Model.Name, [](TaskRuntime &) {
    return TaskStatus::Finished;
  }, LoadFn(), Graph.parDescriptor());
  Root = Graph.createTreeRegion(TreeTask, /*DefaultGrain=*/64);
}

namespace {

/// One epoch of the round-based model, at jitter factor \p J.
struct EpochModel {
  uint64_t Tasks = 0;
  double PerTaskSeconds = 0.0;
  double MakespanSeconds = 0.0;
  double StealRate = 0.0;
  double MeanOutstanding = 0.0;
};

EpochModel modelEpoch(const RecursiveWorkModel &M, uint64_t Leaves,
                      unsigned Grain, unsigned Workers, double J) {
  EpochModel E;
  const uint64_t G = std::max<uint64_t>(1, Grain);
  const unsigned W = std::max(1u, Workers);
  E.Tasks = (Leaves + G - 1) / G;
  E.PerTaskSeconds =
      static_cast<double>(G) * M.LeafSeconds * J + M.TaskOverheadSeconds;
  const uint64_t Rounds = (E.Tasks + W - 1) / W;
  // Round quantization (idle contexts once tasks run short) plus the
  // imbalance tail: coarse tasks' jitter no longer averages out, so
  // the epoch stretches by a W/T-proportional factor.
  const double Imbalance =
      1.0 + M.ImbalanceWeight * static_cast<double>(W) /
                static_cast<double>(E.Tasks);
  E.MakespanSeconds =
      static_cast<double>(Rounds) * E.PerTaskSeconds * Imbalance;
  E.StealRate =
      M.StealFraction * static_cast<double>(E.Tasks) / E.MakespanSeconds;
  // Auto-split materializes the whole epoch's task set up front, so
  // outstanding work decays T -> 0 over the epoch; its mean is T/2.
  E.MeanOutstanding = static_cast<double>(E.Tasks) / 2.0;
  return E;
}

} // namespace

double RecursiveSim::epochSeconds(unsigned Grain, unsigned Extent) const {
  return modelEpoch(Model, Opts.LeavesPerEpoch, Grain, Extent, 1.0)
      .MakespanSeconds;
}

RecursiveSimResult RecursiveSim::run(Mechanism *Mech, unsigned InitialGrain,
                                     unsigned InitialExtent) {
  if (Mech)
    Mech->reset();

  RegionConfig Current = defaultConfig(*Root);
  Current.Tasks.front().Grain = std::max(1u, InitialGrain);
  Current.Tasks.front().Extent =
      std::clamp(InitialExtent, 1u, std::max(1u, Opts.Workers));

  RecursiveSimResult Result;
  SplitMix64 Rng(Opts.Seed);
  double Clock = 0.0;
  uint64_t Done = 0;
  uint64_t Epoch = 0;

  while (Done < Opts.Leaves) {
    const uint64_t L = std::min<uint64_t>(Opts.LeavesPerEpoch,
                                          Opts.Leaves - Done);
    const unsigned Grain = Current.Tasks.front().Grain;
    const unsigned Extent = Current.Tasks.front().Extent;

    // Per-epoch service jitter in [1 - Cv, 1 + Cv], seeded.
    const double U =
        static_cast<double>(Rng.next() >> 11) * 0x1.0p-53; // [0, 1)
    const double J = 1.0 + Model.JitterCv * (2.0 * U - 1.0);

    const EpochModel E = modelEpoch(Model, L, Grain, Extent, J);
    Clock += E.MakespanSeconds;
    Done += L;
    ++Epoch;

    if (!Mech || Done >= Opts.Leaves)
      continue;

    // Snapshot + features, exactly as the native TreeEngine exports
    // them, then one consult at the epoch boundary.
    RegionSnapshot Snap;
    TaskSnapshot TS;
    TS.TaskId = TreeTask->id();
    TS.Name = TreeTask->name();
    TS.Kind = TreeTask->kind();
    TS.ExecTime = E.PerTaskSeconds;
    TS.Load = E.MeanOutstanding;
    TS.LastLoad = E.MeanOutstanding;
    TS.Invocations = E.Tasks;
    TS.CurrentExtent = Extent;
    Snap.Tasks.push_back(std::move(TS));

    FeatureRegistry Features;
    const double StealRate = E.StealRate;
    const double MeanTask = E.PerTaskSeconds;
    Features.registerFeature("StealRate", [StealRate] { return StealRate; });
    Features.registerFeature("MeanTaskSeconds",
                             [MeanTask] { return MeanTask; });

    MechanismContext Ctx;
    Ctx.MaxThreads = Opts.Workers;
    Ctx.Features = &Features;
    Ctx.NowSeconds = Clock;

    std::optional<RegionConfig> Next =
        Mech->reconfigure(*Root, Snap, Current, Ctx);
    if (!Next || *Next == Current)
      continue;
    if (!validateConfig(*Root, *Next)) {
      ++Result.InvalidProposals;
      continue;
    }
    Current = *Next;
    ++Result.Reconfigurations;
    Clock += Opts.ReconfigPauseSeconds;
    Result.DecisionLog.push_back(std::to_string(Epoch) + ": " +
                                 toString(*Root, Current));
  }

  Result.TotalSeconds = Clock;
  Result.Throughput =
      Clock > 0.0 ? static_cast<double>(Opts.Leaves) / Clock : 0.0;
  Result.FinalGrain = Current.Tasks.front().Grain;
  Result.FinalExtent = Current.Tasks.front().Extent;
  return Result;
}

//===- tests/RecursiveSimTest.cpp - Recursive workload model tests ---------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The seeded recursive-tree workload: the analytic model is unimodal in
// the grain, GrainAdapt walks to within 10% of the best fixed grain from
// both faulty starts (too fine, too coarse), and runs replay
// bit-identically under the DOPE_TEST_SEED convention.
//
//===----------------------------------------------------------------------===//

#include "sim/RecursiveSim.h"

#include "mechanisms/GrainAdapt.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dope;
using namespace dope::testing_helpers;

namespace {

const unsigned SweepGrains[] = {16,  32,   64,   128,  256,
                                512, 1024, 2048, 4096, 8192};

RecursiveSim makeSim(uint64_t Seed) {
  RecursiveWorkModel Model;
  RecursiveSimOptions Opts;
  Opts.Workers = 8;
  Opts.Leaves = 1ull << 22;
  Opts.LeavesPerEpoch = 1ull << 16; // 64 epochs
  Opts.Seed = Seed;
  return RecursiveSim(std::move(Model), Opts);
}

/// Best fixed-grain throughput over the sweep, under the same seed.
double bestFixedThroughput(RecursiveSim &Sim, unsigned *BestGrain = nullptr) {
  double Best = 0.0;
  for (unsigned G : SweepGrains) {
    const RecursiveSimResult R = Sim.run(nullptr, G, 8);
    if (R.Throughput > Best) {
      Best = R.Throughput;
      if (BestGrain)
        *BestGrain = G;
    }
  }
  return Best;
}

TEST(RecursiveSim, EpochTimeIsUnimodalInGrain) {
  RecursiveSim Sim = makeSim(42);
  std::vector<double> Times;
  for (unsigned G : SweepGrains)
    Times.push_back(Sim.epochSeconds(G, 8));

  // Interior optimum: both endpoints (fine-grain overhead, coarse-grain
  // starvation) are strictly worse than the best grain.
  const size_t BestIdx =
      std::min_element(Times.begin(), Times.end()) - Times.begin();
  EXPECT_GT(BestIdx, 0u);
  EXPECT_LT(BestIdx, Times.size() - 1);
  EXPECT_GT(Times.front(), Times[BestIdx] * 1.05);
  EXPECT_GT(Times.back(), Times[BestIdx] * 1.05);
  // And the shape is a single valley: monotone down to the optimum,
  // monotone up after it.
  for (size_t I = 0; I < BestIdx; ++I)
    EXPECT_GE(Times[I], Times[I + 1]) << "descending flank at " << I;
  for (size_t I = BestIdx; I + 1 < Times.size(); ++I)
    EXPECT_LE(Times[I], Times[I + 1]) << "ascending flank at " << I;
}

TEST(RecursiveSim, FixedRunsAreDeterministicAndPauseFree) {
  RecursiveSim Sim = makeSim(loggedSeed(42));
  const RecursiveSimResult A = Sim.run(nullptr, 256, 8);
  const RecursiveSimResult B = Sim.run(nullptr, 256, 8);
  EXPECT_EQ(A.Throughput, B.Throughput); // bit-identical
  EXPECT_EQ(A.Reconfigurations, 0u);
  EXPECT_TRUE(A.DecisionLog.empty());
  EXPECT_EQ(A.FinalGrain, 256u);
}

TEST(RecursiveSim, GrainAdaptFromTooFineConvergesWithinTenPercent) {
  RecursiveSim Sim = makeSim(loggedSeed(42));
  unsigned BestGrain = 0;
  const double Best = bestFixedThroughput(Sim, &BestGrain);

  GrainAdaptMechanism M;
  const RecursiveSimResult R = Sim.run(&M, /*InitialGrain=*/16, 8);
  EXPECT_EQ(R.InvalidProposals, 0u);
  EXPECT_GT(R.Reconfigurations, 0u); // it walked
  EXPECT_GT(R.FinalGrain, 16u);      // coarsened out of thrash
  EXPECT_EQ(R.FinalExtent, 8u);
  // Whole-run throughput (transient + pauses included) within 10% of
  // the best fixed grain of the sweep.
  EXPECT_GE(R.Throughput, 0.9 * Best)
      << "converged at g=" << R.FinalGrain << ", best fixed g=" << BestGrain;
  // And the grain it settled on is itself near-optimal in steady state.
  EXPECT_LE(Sim.epochSeconds(R.FinalGrain, 8),
            1.1 * Sim.epochSeconds(BestGrain, 8));
}

TEST(RecursiveSim, GrainAdaptFromTooCoarseConvergesWithinTenPercent) {
  RecursiveSim Sim = makeSim(loggedSeed(42));
  unsigned BestGrain = 0;
  const double Best = bestFixedThroughput(Sim, &BestGrain);

  GrainAdaptMechanism M;
  const RecursiveSimResult R = Sim.run(&M, /*InitialGrain=*/8192, 8);
  EXPECT_EQ(R.InvalidProposals, 0u);
  EXPECT_GT(R.Reconfigurations, 0u);
  EXPECT_LT(R.FinalGrain, 8192u); // refined out of starvation
  EXPECT_GE(R.Throughput, 0.9 * Best)
      << "converged at g=" << R.FinalGrain << ", best fixed g=" << BestGrain;
  EXPECT_LE(Sim.epochSeconds(R.FinalGrain, 8),
            1.1 * Sim.epochSeconds(BestGrain, 8));
}

TEST(RecursiveSim, AdaptiveRunReplaysBitIdentically) {
  const uint64_t Seed = loggedSeed(42);
  auto RunOnce = [Seed] {
    RecursiveSim Sim = makeSim(Seed);
    GrainAdaptMechanism M;
    return Sim.run(&M, 16, 1); // extent walk included
  };
  const RecursiveSimResult A = RunOnce();
  const RecursiveSimResult B = RunOnce();

  EXPECT_EQ(A.Throughput, B.Throughput); // exact, not approximate
  EXPECT_EQ(A.TotalSeconds, B.TotalSeconds);
  EXPECT_EQ(A.FinalGrain, B.FinalGrain);
  EXPECT_EQ(A.FinalExtent, B.FinalExtent);
  ASSERT_EQ(A.DecisionLog.size(), B.DecisionLog.size());
  for (size_t I = 0; I != A.DecisionLog.size(); ++I)
    EXPECT_EQ(A.DecisionLog[I], B.DecisionLog[I]) << "decision " << I;
  // The extent was pinned to the budget by the first applied decision.
  EXPECT_EQ(A.FinalExtent, 8u);
}

TEST(RecursiveSim, DistinctSeedsChangeTheClockButNotTheWalk) {
  RecursiveSim SimA = makeSim(1);
  RecursiveSim SimB = makeSim(2);
  GrainAdaptMechanism MA, MB;
  const RecursiveSimResult A = SimA.run(&MA, 16, 8);
  const RecursiveSimResult B = SimB.run(&MB, 16, 8);
  // Jitter shifts virtual time...
  EXPECT_NE(A.TotalSeconds, B.TotalSeconds);
  // ...but the adaptation policy is robust to it: same final grain.
  EXPECT_EQ(A.FinalGrain, B.FinalGrain);
}

} // namespace

file(REMOVE_RECURSE
  "libdope_sim.a"
)

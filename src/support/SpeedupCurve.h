//===- support/SpeedupCurve.h - Parallel scalability models --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalability curves S(m): the speedup of one transaction's inner
/// parallelization at DoP extent m. The paper characterizes applications
/// by (a) the observed speedup (x264: 6.3x on 8 threads), (b) the extent
/// Mmax above which parallel efficiency S(m)/m drops below 0.5, and
/// (c) DoPmin, the minimum inner extent at which any speedup over
/// sequential execution is obtained (Table 4; 4 for data compression).
///
/// The model used everywhere is the fixed-cost linear-overhead curve
///
///   S(1) = 1
///   S(m) = min(Cap, m / (1 + FixedCost + Alpha * (m - 1)))     (m > 1)
///
/// FixedCost captures the one-time cost of going parallel at all (thread
/// hand-off, pipeline fill) — it produces DoPmin > 2 behaviour; Alpha
/// captures per-thread communication/synchronization overhead; Cap models
/// structural limits (pipeline depth).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_SPEEDUPCURVE_H
#define DOPE_SUPPORT_SPEEDUPCURVE_H

#include <limits>

namespace dope {

/// Fixed-cost, linear-overhead, capped speedup curve.
class SpeedupCurve {
public:
  SpeedupCurve() = default;

  /// \p Alpha per-thread overhead (>= 0), \p FixedCost one-time
  /// parallelization cost (>= 0), \p Cap structural speedup ceiling
  /// (> 0, may be infinity).
  SpeedupCurve(double Alpha, double FixedCost,
               double Cap = std::numeric_limits<double>::infinity());

  /// Speedup at extent \p M; S(1) == 1, S(m) > 0.
  double speedup(unsigned M) const;

  /// Parallel efficiency S(m)/m.
  double efficiency(unsigned M) const;

  /// Largest extent (searching up to \p Limit) whose efficiency is at
  /// least \p Threshold — the paper's Mmax with Threshold = 0.5. Returns
  /// 1 when no extent > 1 qualifies.
  unsigned mmax(double Threshold = 0.5, unsigned Limit = 64) const;

  /// Smallest extent with S(m) > 1 — the paper's DoPmin. Returns 0 when
  /// no extent up to \p Limit achieves speedup.
  unsigned dopMin(unsigned Limit = 64) const;

  /// Extent maximizing S(m) for m in [1, Limit] (smallest maximizer).
  unsigned bestExtent(unsigned Limit = 64) const;

  double alpha() const { return Alpha; }
  double fixedCost() const { return FixedCost; }
  double cap() const { return Cap; }

private:
  double Alpha = 0.05;
  double FixedCost = 0.0;
  double Cap = std::numeric_limits<double>::infinity();
};

} // namespace dope

#endif // DOPE_SUPPORT_SPEEDUPCURVE_H

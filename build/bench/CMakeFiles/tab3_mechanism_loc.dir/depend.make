# Empty dependencies file for tab3_mechanism_loc.
# This may be replaced when dependencies are built.

// AP003 fixture: FiniCB registered twice for one descriptor.
// Never compiled — scanned by dope_lint in the lint test suite.

void buildGraph(TaskGraph &G, TaskDescriptor &Desc) {
  G.createTask("stage-a", stageA, loadA, Desc, InitCB{}, FiniCB{closeA});
  G.createTask("stage-b", stageB, loadB, Desc, InitCB{}, FiniCB{closeB});
}

void buildGraphOk(TaskGraph &G, TaskDescriptor &DescA,
                  TaskDescriptor &DescB) {
  G.createTask("stage-a", stageA, loadA, DescA, InitCB{}, FiniCB{closeA});
  G.createTask("stage-b", stageB, loadB, DescB, InitCB{}, FiniCB{closeB});
}

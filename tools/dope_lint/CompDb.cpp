//===- tools/dope_lint/CompDb.cpp - compile_commands.json loader -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "CompDb.h"

#include "support/Json.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace dopelint;
namespace fs = std::filesystem;

bool dopelint::loadCompDb(const std::string &Path,
                          std::vector<CompileCommand> &Out,
                          std::string &Error) {
  std::ifstream IS(Path);
  if (!IS) {
    Error = "cannot open compilation database '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  std::string ParseError;
  std::optional<dope::JsonValue> V =
      dope::JsonValue::parse(SS.str(), &ParseError);
  if (!V || !V->isArray()) {
    Error = "malformed compilation database '" + Path + "': " +
            (ParseError.empty() ? "not a JSON array" : ParseError);
    return false;
  }
  for (size_t I = 0; I != V->size(); ++I) {
    const dope::JsonValue &Entry = V->at(I);
    if (!Entry.isObject())
      continue;
    CompileCommand CC;
    CC.Directory = Entry.getString("directory");
    std::string File = Entry.getString("file");
    if (File.empty())
      continue;
    fs::path P(File);
    if (P.is_relative() && !CC.Directory.empty())
      P = fs::path(CC.Directory) / P;
    std::error_code EC;
    fs::path Canon = fs::weakly_canonical(P, EC);
    CC.File = EC ? P.string() : Canon.string();
    // "arguments" (array form) — "command" (one string) is left to the
    // libclang frontend, which can re-tokenize it.
    if (const dope::JsonValue *Args = Entry.get("arguments"))
      if (Args->isArray())
        for (size_t A = 0; A != Args->size(); ++A)
          if (Args->at(A).isString())
            CC.Args.push_back(Args->at(A).asString());
    Out.push_back(std::move(CC));
  }
  return true;
}

std::vector<std::string>
dopelint::collectHeadersUnder(const std::string &Root) {
  std::vector<std::string> Headers;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    std::string Ext = It->path().extension().string();
    if (Ext == ".h" || Ext == ".hpp") {
      std::error_code CanonEC;
      fs::path Canon = fs::weakly_canonical(It->path(), CanonEC);
      Headers.push_back(CanonEC ? It->path().string() : Canon.string());
    }
  }
  std::sort(Headers.begin(), Headers.end());
  return Headers;
}

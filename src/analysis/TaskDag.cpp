//===- analysis/TaskDag.cpp - Spawn DAG reconstruction ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/TaskDag.h"

#include <cmath>
#include <map>
#include <utility>

using namespace dope;

static uint64_t asInstanceId(double Value) {
  return Value < 0.0 ? 0 : static_cast<uint64_t>(std::llround(Value));
}

TaskDag TaskDag::build(std::vector<TraceRecord> Records) {
  // Canonical order makes the build independent of which thread (or
  // shard) recorded what, and sorts a TaskBegin before the TaskEnd that
  // shares its timestamp (Kind breaks the tie).
  canonicalizeTrace(Records);

  TaskDag Dag;
  // (task name, instance id) -> index of the latest begun instance with
  // that key. Instance ids recur across epochs in native traces (replica
  // indices restart every epoch), so latest-wins is the correct match
  // for both TaskEnd pairing and spawner lookup: a spawner necessarily
  // began before its child, and an ended instance is superseded by the
  // next epoch's begin before it can be referenced again.
  std::map<std::pair<std::string, uint64_t>, size_t> Latest;

  for (TraceRecord &R : Records) {
    if (R.Kind == TraceKind::TaskBegin) {
      TaskInstance Inst;
      Inst.Task = R.Name;
      Inst.Id = asInstanceId(R.A);
      Inst.BeginTime = R.Time;
      if (!R.Detail.empty()) {
        auto Spawner = Latest.find({R.Detail, asInstanceId(R.B)});
        if (Spawner != Latest.end())
          Inst.Parent = Spawner->second;
        // An unmatched spawner (trimmed trace head) degrades the
        // instance to a root instead of failing the build.
      }
      const size_t Index = Dag.Instances.size();
      if (Inst.Parent == TaskInstance::npos)
        Dag.Roots.push_back(Index);
      else
        Dag.Instances[Inst.Parent].Children.push_back(Index);
      Latest[{Inst.Task, Inst.Id}] = Index;
      bool Known = false;
      for (const std::string &N : Dag.Names)
        Known |= N == Inst.Task;
      if (!Known)
        Dag.Names.push_back(Inst.Task);
      Dag.Instances.push_back(std::move(Inst));
      continue;
    }
    if (R.Kind == TraceKind::TaskEnd) {
      auto It = Latest.find({R.Name, asInstanceId(R.A)});
      if (It == Latest.end())
        continue; // end without a surviving begin (trimmed head)
      TaskInstance &Inst = Dag.Instances[It->second];
      if (Inst.completed())
        continue; // already ended; a duplicate end is noise
      Inst.EndTime = R.Time;
      Inst.Elapsed = R.B;
      ++Dag.Completed;
    }
  }
  return Dag;
}

TaskDag TaskDag::fromJsonl(std::istream &IS, TraceReadStats *Stats) {
  return build(readTraceJsonlLenient(IS, Stats));
}

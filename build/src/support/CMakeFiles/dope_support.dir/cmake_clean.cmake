file(REMOVE_RECURSE
  "CMakeFiles/dope_support.dir/Logging.cpp.o"
  "CMakeFiles/dope_support.dir/Logging.cpp.o.d"
  "CMakeFiles/dope_support.dir/MathUtils.cpp.o"
  "CMakeFiles/dope_support.dir/MathUtils.cpp.o.d"
  "CMakeFiles/dope_support.dir/OptionParser.cpp.o"
  "CMakeFiles/dope_support.dir/OptionParser.cpp.o.d"
  "CMakeFiles/dope_support.dir/Random.cpp.o"
  "CMakeFiles/dope_support.dir/Random.cpp.o.d"
  "CMakeFiles/dope_support.dir/SpeedupCurve.cpp.o"
  "CMakeFiles/dope_support.dir/SpeedupCurve.cpp.o.d"
  "CMakeFiles/dope_support.dir/Statistics.cpp.o"
  "CMakeFiles/dope_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/dope_support.dir/Table.cpp.o"
  "CMakeFiles/dope_support.dir/Table.cpp.o.d"
  "libdope_support.a"
  "libdope_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dope_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- examples/builder_pipeline.cpp - The builder API in ~40 lines --------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The same class of application as batch_search.cpp, written against
/// the high-level builder API instead of raw functors. The paper notes
/// that functor creation "is mechanical — it can be simplified with
/// compiler support" (Sec. 3.1); PipelineBuilder plays that role as a
/// library: queues, monitoring, load callbacks, and the suspend/drain
/// protocol are all generated.
///
/// A compression pipeline: generate blocks -> RLE-compress (parallel)
/// -> verify round-trip (parallel) -> account. TBF balances the two
/// parallel stages.
///
//===----------------------------------------------------------------------===//

#include "apps/NativeKernels.h"
#include "core/Builders.h"
#include "mechanisms/Tbf.h"

#include <atomic>
#include <cstdio>

using namespace dope;

namespace {

struct Block {
  uint32_t Id = 0;
  std::vector<uint8_t> Bytes;
};
struct Compressed {
  uint32_t Id = 0;
  std::vector<uint8_t> Original;
  std::vector<uint8_t> Encoded;
};

} // namespace

int main() {
  constexpr uint32_t NumBlocks = 6000;
  TaskGraph Graph;
  std::atomic<uint32_t> Next{0};
  std::atomic<uint64_t> CompressedBytes{0};
  std::atomic<uint32_t> Verified{0};

  PipelineBuilder B(Graph);
  B.source<Block>("generate", [&]() -> std::optional<Block> {
    const uint32_t Id = Next.fetch_add(1);
    if (Id >= NumBlocks)
      return std::nullopt;
    Block Blk;
    Blk.Id = Id;
    // Runs of repeated bytes: compressible, deterministic.
    Blk.Bytes.resize(2048);
    const size_t RunLength = 24 + Id % 40;
    for (size_t I = 0; I != Blk.Bytes.size(); ++I)
      Blk.Bytes[I] =
          static_cast<uint8_t>(hashWork(Id, 1 + I / RunLength) & 0xff);
    return Blk;
  });
  B.stage<Block, Compressed>("compress", [](Block Blk) {
    Compressed C;
    C.Id = Blk.Id;
    // A Huffman-strength entropy pass would go here; stand in for it
    // with a fixed amount of CPU work so stage balance matters.
    (void)hashWork(Blk.Id, 60000);
    C.Encoded = rleCompress(Blk.Bytes);
    C.Original = std::move(Blk.Bytes);
    return C;
  });
  B.stage<Compressed, uint32_t>(
      "verify", [&](Compressed C) -> uint32_t {
        CompressedBytes.fetch_add(C.Encoded.size());
        return rleDecompress(C.Encoded) == C.Original ? C.Id : ~0u;
      });
  B.sink<uint32_t>("account", [&](uint32_t Id) {
    if (Id != ~0u)
      Verified.fetch_add(1);
  });
  ParDescriptor *Pipe = B.build();

  DopeOptions Opts;
  Opts.MaxThreads = 6; // spare budget for TBF to hand to the heavy stage
  Opts.Mech = std::make_unique<TbfMechanism>();
  std::unique_ptr<Dope> Executive = Dope::create(Pipe, std::move(Opts));
  Executive->wait();

  std::printf("builder_pipeline: %u/%u blocks verified, %.1f%% "
              "compression, %llu reconfigurations\n",
              Verified.load(), NumBlocks,
              100.0 * static_cast<double>(CompressedBytes.load()) /
                  (static_cast<double>(NumBlocks) * 2048.0),
              static_cast<unsigned long long>(
                  Executive->reconfigurationCount()));
  return Verified.load() == NumBlocks ? 0 : 1;
}

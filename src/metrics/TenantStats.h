//===- metrics/TenantStats.h - Per-tenant colocation metrics ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant accounting for colocation experiments plus the fairness /
/// isolation summary the bench reports: weighted aggregate goal
/// attainment and a Jain index over per-tenant attainment. Goal
/// attainment normalizes both goal kinds to [0, 1] so tenants with
/// different goals can be aggregated: a throughput tenant attains the
/// fraction of its offered work it served; a latency tenant attains the
/// fraction of its completions inside its SLO.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_METRICS_TENANTSTATS_H
#define DOPE_METRICS_TENANTSTATS_H

#include "metrics/ResponseStats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dope {

struct TenantStats {
  std::string Name;

  /// True for response-time-goal tenants (attainment = SLO hit rate).
  bool LatencySensitive = false;

  /// Arbitration weight, echoed into the weighted aggregate.
  double Weight = 1.0;

  /// p95-style per-item SLO in seconds (latency tenants).
  double SloSeconds = 0.0;

  uint64_t Arrived = 0;
  uint64_t Completed = 0;
  uint64_t Shed = 0;

  /// Completions whose response time was within SloSeconds.
  uint64_t SloHits = 0;

  ResponseStats Responses;

  /// Integral of granted threads over time (thread-seconds actually
  /// leased to this tenant).
  double ThreadSeconds = 0.0;

  /// Lease transitions this tenant experienced.
  uint64_t LeaseChanges = 0;

  /// Normalized goal attainment in [0, 1]; 1.0 for a tenant that was
  /// never offered work.
  double goalAttainment() const;

  /// Mean threads held over \p DurationSeconds.
  double meanThreads(double DurationSeconds) const;
};

/// Cross-tenant fairness / isolation summary.
struct FairnessSummary {
  /// Weight-weighted mean of per-tenant goal attainment.
  double AggregateAttainment = 0.0;

  /// Worst single tenant — the isolation number.
  double MinAttainment = 0.0;

  /// Jain fairness index over per-tenant attainment: 1.0 when all
  /// tenants attain equally, toward 1/N as one tenant monopolizes.
  double JainIndex = 1.0;
};

FairnessSummary summarizeTenants(const std::vector<TenantStats> &Tenants);

} // namespace dope

#endif // DOPE_METRICS_TENANTSTATS_H

//===- core/FeatureRegistry.h - Platform feature monitoring ---*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of named platform features (paper Fig. 9):
///
///   void  DoPE::registerCB(string feature, Functor *getValueOfFeatureCB);
///   void *DoPE::getValue(string feature);
///
/// A mechanism developer registers e.g. "SystemPower" with a callback that
/// queries the power distribution unit; mechanisms then read the feature
/// by name. Values are doubles; sampling may be rate-limited to model
/// slow measurement hardware (the paper's PDU supported 13 samples/min).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_FEATUREREGISTRY_H
#define DOPE_CORE_FEATUREREGISTRY_H

#include "support/ThreadAnnotations.h"

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace dope {

class Tracer;

/// Callback returning the current value of a platform feature.
using FeatureFn = std::function<double()>;

/// Thread-safe name -> callback registry with optional per-feature
/// sampling rate limits.
class FeatureRegistry {
public:
  /// Registers (or replaces) a feature callback.
  ///
  /// \p MinSampleIntervalSeconds rate-limits the callback: queries arriving
  /// sooner than the interval return the cached value, modelling slow
  /// measurement paths. Zero disables the limit.
  void registerFeature(const std::string &Name, FeatureFn Callback,
                       double MinSampleIntervalSeconds = 0.0);

  /// Removes a feature; no-op when absent.
  void unregisterFeature(std::string_view Name);

  bool hasFeature(std::string_view Name) const;

  /// Returns the feature value, or std::nullopt when the feature is not
  /// registered. \p NowSeconds is the caller's clock, used for rate
  /// limiting (pass monotonic seconds; the simulator passes virtual time).
  ///
  /// Lookups are heterogeneous (string_view), so reading a feature by
  /// literal name on the monitoring path allocates nothing.
  std::optional<double> getValue(std::string_view Name,
                                 double NowSeconds) const;

  /// Attaches a tracer: every *fresh* sample (one that actually invoked
  /// the callback, as opposed to a rate-limited cached read) is recorded
  /// as a FeatureSample stamped with the caller's clock. Null detaches.
  void setTracer(Tracer *T) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Trace = T;
  }

private:
  struct Entry {
    FeatureFn Callback;
    double MinInterval = 0.0;
    mutable double LastSampleTime = -1e300;
    mutable double CachedValue = 0.0;
  };

  mutable std::mutex Mutex;
  // std::less<> enables find(string_view) without a temporary string.
  std::map<std::string, Entry, std::less<>> Features DOPE_GUARDED_BY(Mutex);
  Tracer *Trace DOPE_GUARDED_BY(Mutex) = nullptr;
};

} // namespace dope

#endif // DOPE_CORE_FEATUREREGISTRY_H

//===- tests/WarmStartTest.cpp - Mechanism warm-start tests ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feedback half of the what-if loop: hint JSON round-trips, the
/// Factory routes hints to addressed mechanisms only, and — the ablation
/// the subsystem exists for — a hinted mechanism starts at the predicted
/// optimum and converges measurably faster than its cold twin while
/// ending at a steady state no worse. Infeasible or misaddressed hints
/// must leave behaviour bit-identical to a cold start.
///
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"
#include "analysis/TaskDag.h"
#include "analysis/CriticalPath.h"
#include "analysis/WhatIf.h"
#include "core/WarmStart.h"
#include "mechanisms/Factory.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/WqtH.h"
#include "apps/PipelineApps.h"
#include "sim/PipelineSim.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

/// The scenario app with a longer item stream, so a cold mechanism has
/// enough decisions to climb and the convergence gap is measurable.
WhatIfPipelineScenario longScenario(uint64_t NumItems = 2000) {
  WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  Scenario.Opts.NumItems = NumItems;
  return Scenario;
}

/// One run of the long scenario under \p Mech.
PipelineSimResult runScenario(Mechanism *Mech, uint64_t NumItems = 2000) {
  const WhatIfPipelineScenario Scenario = longScenario(NumItems);
  PipelineSim Sim(Scenario.App, Scenario.Opts);
  return Sim.run(Mech, {});
}

/// The hint the offline analysis derives for the scenario (recomputed,
/// not hard-coded, so these tests track the analysis).
WarmStartHint scenarioHint(std::string Mechanism = "FDP") {
  const WhatIfPipelineScenario Scenario = whatifPipelineScenario();
  const auto [Result, Records] = runWhatifPipelineScenario(Scenario);
  (void)Result;
  const WhatIfModel Model = WhatIfModel::fromProfile(
      computeCriticalPath(TaskDag::build(Records)), Scenario.Opts.Contexts,
      Scenario.App.OversubPenalty, Scenario.App.ThreadOverheadPenalty);
  const std::vector<Recommendation> Recs =
      recommendExtents(Model, Scenario.Opts.Contexts, 1);
  EXPECT_FALSE(Recs.empty());
  return makeWarmStartHint(std::move(Mechanism), Recs.front());
}

/// First time the windowed throughput reaches \p Fraction of the run's
/// steady state (the mean over the final quarter of the series).
double timeToConverge(const PipelineSimResult &R, double Fraction = 0.9) {
  const TimeSeries &S = R.ThroughputSeries;
  if (S.empty())
    return R.TotalSeconds;
  const double Steady =
      S.meanOver(0.75 * R.TotalSeconds, R.TotalSeconds + 1.0);
  for (const TimeSeries::Point &P : S.points())
    if (P.Value >= Fraction * Steady)
      return P.Time;
  return R.TotalSeconds;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hint JSON
//===----------------------------------------------------------------------===//

TEST(WarmStartHintJson, RoundTrips) {
  WarmStartHint Hint;
  Hint.Mechanism = "FDP";
  Hint.Source = "tests";
  Hint.PredictedThroughput = 42.5;
  Hint.AltIndex = 1;
  Hint.Extents = {1, 12, 5, 1};

  const std::string Text = writeWarmStartHint(Hint);
  std::string Error;
  const std::optional<WarmStartHint> Back = readWarmStartHint(Text, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Mechanism, "FDP");
  EXPECT_EQ(Back->Source, "tests");
  EXPECT_DOUBLE_EQ(Back->PredictedThroughput, 42.5);
  EXPECT_EQ(Back->AltIndex, 1);
  EXPECT_EQ(Back->Extents, Hint.Extents);
  EXPECT_EQ(Back->totalExtent(), 19u);
}

TEST(WarmStartHintJson, RejectsMalformedAndWrongSchema) {
  std::string Error;
  EXPECT_FALSE(readWarmStartHint("{torn", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(readWarmStartHint("[1,2]", &Error).has_value());
  EXPECT_FALSE(
      readWarmStartHint("{\"schema\":\"dope-warmstart-v99\",\"extents\":[1]}",
                        &Error)
          .has_value());
}

TEST(WarmStartHint, AddressingRules) {
  WarmStartHint Hint;
  Hint.Mechanism = "FDP";
  EXPECT_TRUE(Hint.appliesTo("FDP"));
  EXPECT_FALSE(Hint.appliesTo("WQT-H"));
  Hint.Mechanism.clear();
  EXPECT_TRUE(Hint.appliesTo("FDP"));
  EXPECT_TRUE(Hint.appliesTo("TBF"));
}

//===----------------------------------------------------------------------===//
// FDP: the headline ablation
//===----------------------------------------------------------------------===//

TEST(WarmStart, FdpHintedConvergesFasterAtNoWorseSteadyState) {
  const WarmStartHint Hint = scenarioHint("FDP");
  ASSERT_EQ(Hint.Extents.size(), 4u);

  FdpMechanism Cold;
  const PipelineSimResult ColdR = runScenario(&Cold);

  FdpMechanism Hinted;
  Hinted.seedWarmStart(Hint);
  const PipelineSimResult HintedR = runScenario(&Hinted);

  // Same work completed either way.
  EXPECT_EQ(ColdR.ItemsCompleted, HintedR.ItemsCompleted);

  // The hinted run starts at the predicted optimum: it finishes the same
  // item stream sooner and reaches its steady throughput earlier.
  EXPECT_LT(HintedR.TotalSeconds, ColdR.TotalSeconds);
  EXPECT_LT(timeToConverge(HintedR), timeToConverge(ColdR));

  // No worse at steady state: the hint accelerates the approach without
  // changing where adaptation lands.
  const double ColdSteady = ColdR.ThroughputSeries.meanOver(
      0.75 * ColdR.TotalSeconds, ColdR.TotalSeconds + 1.0);
  const double HintedSteady = HintedR.ThroughputSeries.meanOver(
      0.75 * HintedR.TotalSeconds, HintedR.TotalSeconds + 1.0);
  EXPECT_GE(HintedSteady, 0.95 * ColdSteady);
}

TEST(WarmStart, FdpHintedDeterministicUnderSeed) {
  const WarmStartHint Hint = scenarioHint("FDP");
  auto RunOnce = [&] {
    FdpMechanism Mech;
    Mech.seedWarmStart(Hint);
    return runScenario(&Mech);
  };
  const PipelineSimResult A = RunOnce();
  const PipelineSimResult B = RunOnce();
  EXPECT_EQ(A.ItemsCompleted, B.ItemsCompleted);
  EXPECT_DOUBLE_EQ(A.TotalSeconds, B.TotalSeconds);
  EXPECT_EQ(A.FinalExtents, B.FinalExtents);
  EXPECT_EQ(A.Reconfigurations, B.Reconfigurations);
}

TEST(WarmStart, FdpInfeasibleHintFallsBackCold) {
  // Wrong arity: three extents for a four-stage pipeline. The mechanism
  // must discard it and behave exactly like a cold start.
  WarmStartHint Bad;
  Bad.Mechanism = "FDP";
  Bad.Extents = {4, 4, 4};

  FdpMechanism Cold;
  const PipelineSimResult ColdR = runScenario(&Cold, 600);

  FdpMechanism Seeded;
  Seeded.seedWarmStart(Bad);
  const PipelineSimResult SeededR = runScenario(&Seeded, 600);

  EXPECT_DOUBLE_EQ(ColdR.TotalSeconds, SeededR.TotalSeconds);
  EXPECT_EQ(ColdR.FinalExtents, SeededR.FinalExtents);
  EXPECT_EQ(ColdR.Reconfigurations, SeededR.Reconfigurations);

  // Over budget is equally infeasible.
  WarmStartHint Huge;
  Huge.Mechanism = "FDP";
  Huge.Extents = {64, 64, 64, 64};
  FdpMechanism SeededHuge;
  SeededHuge.seedWarmStart(Huge);
  const PipelineSimResult HugeR = runScenario(&SeededHuge, 600);
  EXPECT_DOUBLE_EQ(ColdR.TotalSeconds, HugeR.TotalSeconds);
  EXPECT_EQ(ColdR.FinalExtents, HugeR.FinalExtents);
}

//===----------------------------------------------------------------------===//
// Factory routing
//===----------------------------------------------------------------------===//

TEST(WarmStart, FactorySeedsOnlyAddressedMechanisms) {
  const WarmStartHint Hint = scenarioHint("FDP");

  // Addressed: the Factory-built FDP behaves like the directly-seeded
  // one (faster finish than cold on the same stream).
  std::unique_ptr<Mechanism> Cold = createMechanismByName("FDP");
  ASSERT_NE(Cold, nullptr);
  const PipelineSimResult ColdR = runScenario(Cold.get());

  std::unique_ptr<Mechanism> Seeded = createMechanismByName("FDP", &Hint);
  ASSERT_NE(Seeded, nullptr);
  const PipelineSimResult SeededR = runScenario(Seeded.get());
  EXPECT_LT(SeededR.TotalSeconds, ColdR.TotalSeconds);

  // Misaddressed: an FDP built with a hint addressed to WQT-H must not
  // be seeded — the run is bit-identical to a cold FDP.
  WarmStartHint ForWqt = Hint;
  ForWqt.Mechanism = "WQT-H";
  std::unique_ptr<Mechanism> Misaddressed =
      createMechanismByName("FDP", &ForWqt);
  ASSERT_NE(Misaddressed, nullptr);
  const PipelineSimResult MisR = runScenario(Misaddressed.get());
  EXPECT_DOUBLE_EQ(MisR.TotalSeconds, ColdR.TotalSeconds);
  EXPECT_EQ(MisR.FinalExtents, ColdR.FinalExtents);
}

//===----------------------------------------------------------------------===//
// TBF and WQT-H seeding
//===----------------------------------------------------------------------===//

TEST(WarmStart, TbfHintedExtentsProposedAtFirstDecision) {
  // Address the same recommendation to TB (fusion off: pure extent
  // seeding). The hinted extents must be the mechanism's very first
  // proposal — before its own measurements would have driven one.
  WarmStartHint Hint = scenarioHint("TB");
  Hint.AltIndex = -1;
  ASSERT_EQ(Hint.totalExtent(), 19u);

  WhatIfPipelineScenario Scenario = longScenario(600);
  Tracer Trace;
  Scenario.Opts.TraceSink = &Trace;

  TbfMechanism Hinted({0.5, /*EnableFusion=*/false});
  Hinted.seedWarmStart(Hint);
  PipelineSim Sim(Scenario.App, Scenario.Opts);
  const PipelineSimResult R = Sim.run(&Hinted, {});
  EXPECT_GE(R.Reconfigurations, 1u);

  std::vector<TraceRecord> Records = Trace.drain();
  canonicalizeTrace(Records);
  const TraceRecord *First = nullptr;
  for (const TraceRecord &Rec : Records)
    if (Rec.Kind == TraceKind::Reconfig) {
      First = &Rec;
      break;
    }
  ASSERT_NE(First, nullptr);
  // Reconfig records carry the configured thread total in A.
  EXPECT_EQ(static_cast<unsigned>(First->A), Hint.totalExtent());
}

TEST(WarmStart, TbfHintedAlternativeFusesImmediately) {
  // On ferret (which has a fused alternative) a hint naming the fused
  // driver makes TBF jump there before the moving averages would have
  // warmed up. With the fusion warmup pushed past the run length, the
  // cold twin cannot reach fusion on its own — only the hint gets there.
  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions Opts;
  Opts.Contexts = 24;
  Opts.Seed = 42;
  Opts.NumItems = 40;
  Opts.DecisionIntervalSeconds = 0.5;
  const TbfParams Params{0.5, /*EnableFusion=*/true,
                         /*FusionWarmupDecisions=*/1000};

  TbfMechanism Cold(Params);
  PipelineSim ColdSim(App, Opts);
  const PipelineSimResult ColdR = ColdSim.run(&Cold, {});
  EXPECT_FALSE(ColdR.EndedFused);

  WarmStartHint Hint;
  Hint.Mechanism = "TBF";
  Hint.AltIndex = 1;
  TbfMechanism Hinted(Params);
  Hinted.seedWarmStart(Hint);
  PipelineSim HintedSim(App, Opts);
  const PipelineSimResult HintedR = HintedSim.run(&Hinted, {});
  EXPECT_TRUE(HintedR.EndedFused);
}

TEST(WarmStart, WqtHHintStartsParallel) {
  // A {outer, inner} hint with inner > 1 flips WQT-H's start mode to
  // PAR. At light load PAR cuts execution time, so the early
  // transactions of the hinted server finish faster than the cold
  // server's — before hysteresis would have switched modes.
  NestAppModel App;
  App.Name = "warm-nest";
  App.SeqServiceSeconds = 0.5;
  App.Curve = SpeedupCurve(/*Alpha=*/0.08, /*FixedCost=*/0.02);

  NestSimOptions Opts;
  Opts.Contexts = 16;
  Opts.Seed = 42;
  Opts.NumTransactions = 60;
  Opts.LoadFactor = 0.1; // light load: PAR is the right mode

  WqtHMechanism Cold(WqtHParams{});
  NestServerSim ColdSim(App, Opts);
  const NestSimResult ColdR = ColdSim.run(&Cold, 1, 1);

  WarmStartHint Hint;
  Hint.Mechanism = "WQT-H";
  Hint.Extents = {1, 8};
  WqtHMechanism Hinted(WqtHParams{});
  Hinted.seedWarmStart(Hint);
  NestServerSim HintedSim(App, Opts);
  const NestSimResult HintedR = HintedSim.run(&Hinted, 1, 1);

  EXPECT_LT(HintedR.Stats.meanExecTime(), ColdR.Stats.meanExecTime());
}

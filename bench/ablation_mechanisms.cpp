//===- bench/ablation_mechanisms.cpp - Design-choice ablations -------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations of the design choices DESIGN.md calls out:
///
///   A. WQ-Linear hysteresis band (the paper's "variant of WQ-Linear
///      [that] incorporates the hysteresis component of WQT-H"):
///      stability (fewer reconfigurations) vs. responsiveness.
///   B. WQT-H hysteresis lengths Non/Noff: thrash vs. sluggishness.
///   C. TBF fusion threshold (paper value 0.5): when does fusing help?
///   D. Reconfiguration pause cost: how expensive may the suspend /
///      quiesce / respawn protocol be before adaptation stops paying?
///   E. FDP accept epsilon: noise tolerance of the hill climber.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/NestApps.h"
#include "apps/PipelineApps.h"
#include "mechanisms/Fdp.h"
#include "mechanisms/ServerNest.h"
#include "mechanisms/Tbf.h"
#include "mechanisms/WqLinear.h"
#include "mechanisms/WqtH.h"
#include "sim/NestServerSim.h"
#include "sim/PipelineSim.h"

#include <cstdio>

using namespace dope;
using namespace dope::bench;

int main(int Argc, char **Argv) {
  OptionParser Options("Ablations of DoPE design choices");
  addCommonOptions(Options);
  parseOrExit(Options, Argc, Argv);
  const bool Csv = Options.getFlag("csv");
  const bool Quick = Options.getFlag("quick");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  const uint64_t Seed = static_cast<uint64_t>(Options.getInt("seed"));

  const uint64_t NestTransactions = Quick ? 250 : 700;
  const uint64_t PipelineItems = Quick ? 800 : 2000;
  bool Ok = true;

  NestAppBundle X264 = makeX264App();
  NestSimOptions NestOpts;
  NestOpts.Contexts = Contexts;
  NestOpts.LoadFactor = 0.7;
  NestOpts.NumTransactions = NestTransactions;
  NestOpts.Seed = Seed;

  // --- A: WQ-Linear hysteresis band ------------------------------------
  {
    Table T({"band", "mean response (s)", "reconfigurations"});
    uint64_t ReconfigsAtZero = 0, ReconfigsAtThree = 0;
    for (unsigned Band : {0u, 1u, 2u, 3u}) {
      NestServerSim Sim(X264.Model, NestOpts);
      WqLinearParams P = X264.WqLinear;
      P.HysteresisBand = Band;
      WqLinearMechanism M(P);
      NestSimResult R = Sim.run(&M, Contexts, 1);
      T.addRow({Table::formatInt(Band),
                Table::formatDouble(R.Stats.meanResponseTime(), 2),
                Table::formatInt(static_cast<long long>(
                    R.Reconfigurations))});
      if (Band == 0)
        ReconfigsAtZero = R.Reconfigurations;
      if (Band == 3)
        ReconfigsAtThree = R.Reconfigurations;
    }
    emitTable("Ablation A: WQ-Linear hysteresis band (x264, load 0.7)", T,
              Csv);
    Ok &= checkShape(ReconfigsAtThree < ReconfigsAtZero,
                     "a hysteresis band damps reconfiguration churn");
  }

  // --- B: WQT-H hysteresis lengths --------------------------------------
  {
    Table T({"Non=Noff", "mean response (s)", "reconfigurations"});
    uint64_t ReconfigsShort = 0, ReconfigsLong = 0;
    for (unsigned N : {1u, 3u, 8u, 20u}) {
      NestServerSim Sim(X264.Model, NestOpts);
      WqtHParams P = X264.WqtH;
      P.NOn = P.NOff = N;
      WqtHMechanism M(P);
      NestSimResult R = Sim.run(&M, Contexts, 1);
      T.addRow({Table::formatInt(N),
                Table::formatDouble(R.Stats.meanResponseTime(), 2),
                Table::formatInt(static_cast<long long>(
                    R.Reconfigurations))});
      if (N == 1)
        ReconfigsShort = R.Reconfigurations;
      if (N == 20)
        ReconfigsLong = R.Reconfigurations;
    }
    emitTable("Ablation B: WQT-H hysteresis lengths (x264, load 0.7)", T,
              Csv);
    Ok &= checkShape(ReconfigsLong <= ReconfigsShort,
                     "longer hysteresis infers the load pattern instead "
                     "of toggling");
  }

  // --- C: TBF fusion threshold ------------------------------------------
  {
    PipelineAppModel Ferret = makeFerretApp();
    PipelineSimOptions PipeOpts;
    PipeOpts.Contexts = Contexts;
    PipeOpts.Seed = Seed;
    PipeOpts.NumItems = PipelineItems;
    PipelineSim Sim(Ferret, PipeOpts);

    Table T({"threshold", "throughput (q/s)", "fused?"});
    double TputLow = 0.0, TputHigh = 0.0;
    for (double Threshold : {0.1, 0.3, 0.5, 0.7, 0.95}) {
      TbfMechanism M({Threshold, /*EnableFusion=*/true});
      PipelineSimResult R = Sim.run(&M, {});
      T.addRow({Table::formatDouble(Threshold, 2),
                Table::formatDouble(R.Throughput, 3),
                R.EndedFused ? "yes" : "no"});
      if (Threshold == 0.5)
        TputLow = R.Throughput;
      if (Threshold == 0.95)
        TputHigh = R.Throughput;
    }
    emitTable("Ablation C: TBF fusion threshold (ferret, batch)", T, Csv);
    Ok &= checkShape(TputLow >= TputHigh,
                     "the paper's 0.5 threshold fuses ferret and is at "
                     "least as good as never fusing");
  }

  // --- D: reconfiguration pause cost ------------------------------------
  {
    Table T({"pause (s)", "WQ-Linear response (s)", "static-best (s)"});
    double RespCheap = 0.0, RespExpensive = 0.0, StaticBest = 0.0;
    {
      NestServerSim Sim(X264.Model, NestOpts);
      const double Seq =
          Sim.run(nullptr, Contexts, 1).Stats.meanResponseTime();
      const double Par =
          Sim.run(nullptr, outerExtentFor(Contexts, X264.MMax), X264.MMax)
              .Stats.meanResponseTime();
      StaticBest = std::min(Seq, Par);
    }
    for (double Pause : {0.01, 0.05, 0.5, 2.0, 8.0}) {
      NestSimOptions Opts = NestOpts;
      Opts.ReconfigPauseSeconds = Pause;
      NestServerSim Sim(X264.Model, Opts);
      WqLinearMechanism M(X264.WqLinear);
      NestSimResult R = Sim.run(&M, Contexts, 1);
      T.addRow({Table::formatDouble(Pause, 2),
                Table::formatDouble(R.Stats.meanResponseTime(), 2),
                Table::formatDouble(StaticBest, 2)});
      if (Pause == 0.01)
        RespCheap = R.Stats.meanResponseTime();
      if (Pause == 8.0)
        RespExpensive = R.Stats.meanResponseTime();
    }
    emitTable("Ablation D: reconfiguration pause cost (x264, load 0.7)", T,
              Csv);
    Ok &= checkShape(RespCheap < RespExpensive,
                     "cheap reconfiguration is what makes adaptation "
                     "profitable");
  }

  // --- E: FDP accept epsilon ---------------------------------------------
  {
    PipelineAppModel Ferret = makeFerretApp();
    PipelineSimOptions PipeOpts;
    PipeOpts.Contexts = Contexts;
    PipeOpts.Seed = Seed;
    PipeOpts.NumItems = PipelineItems;
    PipelineSim Sim(Ferret, PipeOpts);

    Table T({"epsilon", "throughput (q/s)", "reconfigurations"});
    double BestTput = 0.0;
    for (double Eps : {0.0, 0.02, 0.1, 0.3}) {
      FdpMechanism M({Eps, 0.15});
      PipelineSimResult R = Sim.run(&M, {});
      T.addRow({Table::formatDouble(Eps, 2),
                Table::formatDouble(R.Throughput, 3),
                Table::formatInt(static_cast<long long>(
                    R.Reconfigurations))});
      BestTput = std::max(BestTput, R.Throughput);
    }
    emitTable("Ablation E: FDP accept epsilon (ferret, batch)", T, Csv);
    Ok &= checkShape(BestTput > 0.0, "FDP completes under every epsilon");
  }

  return Ok ? 0 : 1;
}

//===- mechanisms/WqtH.h - Work Queue Threshold with Hysteresis -*- C++ -*-==//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// WQT-H (paper Sec. 7.1), a response-time mechanism for server nests.
///
/// A 2-state machine toggles between
///
///   * PAR state ("latency mode"): inner DoP extent Mmax, outer extent
///     N / Mmax — minimizes per-transaction execution time; and
///   * SEQ state ("throughput mode"): inner DoP extent 1, outer extent
///     N — maximizes sustainable throughput.
///
/// Transitions depend on work-queue occupancy relative to a threshold T
/// with hysteresis: the machine must observe the condition for Noff
/// (toward PAR) or Non (toward SEQ) consecutive decision points before
/// toggling, which lets the system infer a load pattern and avoid
/// thrashing.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_WQTH_H
#define DOPE_MECHANISMS_WQTH_H

#include "core/Mechanism.h"

namespace dope {

/// Tuning parameters of WQT-H. The threshold T is back-calculated by the
/// administrator from the acceptable response-time degradation (SLA).
struct WqtHParams {
  /// Work-queue occupancy threshold T.
  double QueueThreshold = 8.0;
  /// Consecutive below-threshold observations required to enter PAR.
  unsigned NOff = 3;
  /// Consecutive above-threshold observations required to enter SEQ.
  unsigned NOn = 3;
  /// Inner DoP extent used in the PAR state (extent above which parallel
  /// efficiency drops below 0.5).
  unsigned MMax = 8;
  /// Inner alternative to activate in the PAR state.
  int AltIndex = 0;
};

/// Work Queue Threshold with Hysteresis.
class WqtHMechanism : public Mechanism {
public:
  explicit WqtHMechanism(WqtHParams Params);

  std::string name() const override { return "WQT-H"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  void reset() override;

  /// Accepts {outer, inner} hints: an inner extent > 1 makes the machine
  /// start (and restart) in the PAR state instead of the cold SEQ
  /// default. The hysteresis loop takes over from there unchanged.
  void seedWarmStart(const WarmStartHint &Hint) override;

  /// Current state, for tests: true when in the PAR (latency) state.
  bool inParState() const { return InPar; }

private:
  /// Initial state of the 2-state machine; flipped by a warm-start hint.
  /// The paper's cold default is SEQ ("Initially, WQT-H is in the SEQ
  /// state").
  bool StartInPar = false;

  WqtHParams Params;
  bool InPar = false;
  unsigned BelowCount = 0;
  unsigned AboveCount = 0;
};

} // namespace dope

#endif // DOPE_MECHANISMS_WQTH_H

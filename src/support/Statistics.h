//===- support/Statistics.h - Streaming statistics ------------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming summary statistics, percentile estimation and histograms used
/// by the experiment harnesses (response time distributions, throughput
/// windows, power traces).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_STATISTICS_H
#define DOPE_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dope {

/// Single-pass summary statistics (Welford's algorithm for variance).
class StreamingStats {
public:
  void addSample(double X);

  size_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
  /// Unbiased sample variance; zero with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return N == 0 ? 0.0 : Min; }
  double max() const { return N == 0 ? 0.0 : Max; }
  double sum() const { return Total; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const StreamingStats &Other);

  void reset();

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
  double Total = 0.0;
};

/// Exact percentile estimation by retaining all samples.
///
/// Experiment scales here are modest (tens of thousands of samples), so
/// exact retention is simpler and more trustworthy than a sketch.
class PercentileTracker {
public:
  void addSample(double X);

  /// Returns the q-quantile with linear interpolation, q in [0, 1].
  /// Returns 0 when empty.
  double percentile(double Q) const;

  double median() const { return percentile(0.5); }
  size_t count() const { return Samples.size(); }
  void reset();

private:
  mutable std::vector<double> Samples;
  mutable bool Sorted = true;
};

/// Fixed-boundary linear histogram with overflow/underflow buckets.
class Histogram {
public:
  /// Buckets span [Lo, Hi) split into \p NumBuckets equal cells, plus an
  /// underflow and an overflow cell.
  Histogram(double Lo, double Hi, size_t NumBuckets);

  void addSample(double X);

  size_t bucketCount() const { return Counts.size(); }
  uint64_t bucketValue(size_t Index) const { return Counts[Index]; }
  /// Lower edge of bucket \p Index (the underflow bucket reports -inf).
  double bucketLowerEdge(size_t Index) const;
  uint64_t underflow() const { return Under; }
  uint64_t overflow() const { return Over; }
  uint64_t totalCount() const;

  /// Renders a compact textual sparkline, useful in logs.
  std::string render(size_t MaxWidth = 40) const;

private:
  double Lo, Hi;
  std::vector<uint64_t> Counts;
  uint64_t Under = 0;
  uint64_t Over = 0;
};

/// Geometric mean of a sequence of positive values; returns 0 for an empty
/// sequence. The paper reports "136% (geomean)" throughput improvements.
double geomean(const std::vector<double> &Values);

} // namespace dope

#endif // DOPE_SUPPORT_STATISTICS_H

//===- core/Failure.h - Failure domains and retry policies -----*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executive's failure model. DoPE owns the parallelism of the
/// application, so it must also own the *failure domain* of every task
/// replica it spawns: a throwing stage functor is a per-replica event
/// that the executive records, optionally retries (per-TaskDescriptor
/// RetryPolicy), and surfaces as TaskStatus::Failed from Task::wait /
/// Dope::wait — never as std::terminate.
///
/// Three kinds of records accumulate in a FailureLog:
///
///   * retries    — a functor threw and the policy re-invoked it;
///   * failures   — a replica exhausted its retry budget (the first
///                  failure is kept in full as the run's cause);
///   * incidents  — the quiesce watchdog abandoned a stuck replica and
///                  degraded the region's DoP instead of deadlocking.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_CORE_FAILURE_H
#define DOPE_CORE_FAILURE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace dope {

/// Bounded-retry policy attached to a TaskDescriptor. The executive
/// re-invokes a throwing functor up to MaxAttempts times in total,
/// sleeping an exponentially growing backoff between attempts.
struct RetryPolicy {
  /// Total invocation attempts per failure (1 = no retry).
  unsigned MaxAttempts = 1;

  /// Backoff before the first retry, in seconds (0 = immediate retry).
  double BackoffSeconds = 0.0;

  /// Multiplier applied to the backoff after every retry.
  double BackoffMultiplier = 2.0;

  bool operator==(const RetryPolicy &Other) const = default;
};

/// A replica-level failure: which task/replica failed, why, when, and
/// after how many attempts.
struct TaskFailure {
  unsigned TaskId = 0;
  std::string TaskName;
  unsigned Replica = 0;
  /// exception::what(), or a synthesized description for non-standard
  /// exceptions and functor-reported failures.
  std::string Message;
  /// Executive clock (monotonic seconds) at the time of the failure.
  double TimeSeconds = 0.0;
  /// Attempts consumed (== the policy's MaxAttempts on exhaustion).
  unsigned Attempts = 1;
};

/// Thread-safe accumulator of one executive's failure events. The first
/// recorded failure is preserved in full — it is the cause reported by
/// Dope::failure(); later failures only bump the counter (they are
/// almost always secondary to the first).
class FailureLog {
public:
  /// Records one retried invocation.
  void recordRetry() {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Retries;
  }

  /// Records a watchdog incident (stuck replica abandoned, DoP degraded).
  void recordIncident() {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Incidents;
  }

  /// Records a replica failure; returns true when this is the first
  /// (i.e. the caller's failure becomes the run's cause).
  bool recordFailure(TaskFailure Failure) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Failures;
    if (First)
      return false;
    First = std::move(Failure);
    return true;
  }

  std::optional<TaskFailure> firstFailure() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return First;
  }

  uint64_t retries() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Retries;
  }

  uint64_t failures() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Failures;
  }

  uint64_t incidents() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Incidents;
  }

  void reset() {
    std::lock_guard<std::mutex> Lock(Mutex);
    First.reset();
    Retries = Failures = Incidents = 0;
  }

private:
  mutable std::mutex Mutex;
  std::optional<TaskFailure> First;
  uint64_t Retries = 0;
  uint64_t Failures = 0;
  uint64_t Incidents = 0;
};

/// Renders "task 'rank' replica 2 failed after 3 attempts: <message>".
std::string toString(const TaskFailure &Failure);

} // namespace dope

#endif // DOPE_CORE_FAILURE_H

//===- bench/fig14_power_throughput.cpp - Figure 14 reproduction -----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 14: DoPE's Throughput Power Controller (TPC) on
/// ferret with a peak power target of 90% (540 W on the 600 W-peak
/// model platform, which corresponds to 60% of the dynamic CPU range).
///
/// Expected shape: DoPE first ramps the DoP extent until the power
/// budget is fully used, explores configurations, then stabilizes on the
/// best throughput without exceeding the budget. A mid-run disturbance
/// (a stage transiently slowing down) shows the controller reacting —
/// the "transient in the Stable region" of the paper's figure.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "apps/PipelineApps.h"
#include "mechanisms/Tpc.h"
#include "sim/PipelineSim.h"

#include <cstdio>

using namespace dope;
using namespace dope::bench;

int main(int Argc, char **Argv) {
  OptionParser Options("Figure 14: ferret power and throughput over time "
                       "under the TPC power controller (90% peak budget)");
  addCommonOptions(Options);
  Options.addInt("items", 6000, "queries to process");
  Options.addDouble("budget-fraction", 0.9,
                    "power budget as a fraction of peak");
  parseOrExit(Options, Argc, Argv);

  const bool Csv = Options.getFlag("csv");
  const unsigned Contexts = static_cast<unsigned>(Options.getInt("contexts"));
  uint64_t Items = static_cast<uint64_t>(Options.getInt("items"));
  if (Options.getFlag("quick"))
    Items = 2000;

  PipelineAppModel App = makeFerretApp();
  PipelineSimOptions SimOpts;
  SimOpts.Contexts = Contexts;
  SimOpts.Seed = static_cast<uint64_t>(Options.getInt("seed"));
  SimOpts.NumItems = Items;
  SimOpts.DecisionIntervalSeconds = 5.0;
  SimOpts.TraceWindowSeconds = 10.0;
  SimOpts.Power = PowerModel(Contexts, 450.0, 6.25);
  SimOpts.PowerBudgetWatts =
      Options.getDouble("budget-fraction") * SimOpts.Power.peakWatts();
  // The paper's PDU samples 13 times per minute; the registry rate-limits
  // the controller's power reads accordingly.
  SimOpts.PowerSampleIntervalSeconds = 60.0 / 13.0;

  PipelineSim Sim(App, SimOpts);

  // Estimate the budget-limited run length to place the disturbance and
  // the measurement windows: the budget admits coresForWatts(budget)
  // busy cores, i.e. roughly that many core-seconds per second over the
  // per-item work sum.
  double WorkPerItem = 0.0;
  for (const PipelineStageSpec &S : App.Stages)
    WorkPerItem += S.ServiceSeconds;
  const double BudgetCores =
      SimOpts.Power.coresForWatts(SimOpts.PowerBudgetWatts);
  const double CapTput = BudgetCores / WorkPerItem;
  const double EndEstimate = static_cast<double>(Items) / CapTput;

  // The paper's figure shows a transient in the Stable region caused by a
  // system event; model it as the extract stage slowing 1.6x for a while
  // late in the run.
  Disturbance D;
  D.Time = 0.7 * EndEstimate;
  D.Stage = 2;
  D.Factor = 1.6;
  D.Duration = 0.08 * EndEstimate;
  Sim.addDisturbance(D);

  TpcMechanism Tpc;
  PipelineSimResult R = Sim.run(&Tpc, {});

  Table T({"time (s)", "power (W)", "throughput (queries/s)"});
  for (size_t I = 0; I != R.PowerSeries.size(); ++I) {
    const TimeSeries::Point &P = R.PowerSeries.point(I);
    const double Tput =
        R.ThroughputSeries.meanOver(P.Time - 10.0, P.Time + 1e-9);
    T.addRow({Table::formatDouble(P.Time, 0),
              Table::formatDouble(P.Value, 1),
              Table::formatDouble(Tput, 3)});
  }
  emitTable("Fig. 14 ferret power-throughput under TPC (budget " +
                Table::formatDouble(SimOpts.PowerBudgetWatts, 0) + " W)",
            T, Csv);

  const double Budget = SimOpts.PowerBudgetWatts;
  // Windows: "early" covers the start of the ramp; "stable" sits between
  // the end of exploration and the injected disturbance.
  const double EarlyEnd = 60.0;
  const double StableLo = 0.45 * EndEstimate;
  const double StableHi = D.Time - 20.0;
  const double EarlyPower = R.PowerSeries.meanOver(0.0, EarlyEnd);
  const double StablePower = R.PowerSeries.meanOver(StableLo, StableHi);
  double StableMaxPower = 0.0;
  for (size_t I = 0; I != R.PowerSeries.size(); ++I) {
    const TimeSeries::Point &P = R.PowerSeries.point(I);
    if (P.Time > StableLo && P.Time < StableHi)
      StableMaxPower = std::max(StableMaxPower, P.Value);
  }
  const double EarlyTput = R.ThroughputSeries.meanOver(0.0, EarlyEnd);
  const double StableTput =
      R.ThroughputSeries.meanOver(StableLo, StableHi);

  std::printf("\n(disturbance at t=%.0f s for %.0f s; budget-limited "
              "throughput estimate %.2f queries/s)\n",
              D.Time, D.Duration, CapTput);
  bool Ok = true;
  Ok &= checkShape(EarlyPower < StablePower,
                   "power ramps up from near idle toward the budget");
  Ok &= checkShape(StablePower > Budget - 40.0,
                   "the budget is substantially used when stable (" +
                       Table::formatDouble(StablePower, 1) + " W)");
  Ok &= checkShape(StableMaxPower <= Budget + 2.0 * 6.25 + 1e-9,
                   "stable-phase power stays at the target (max " +
                       Table::formatDouble(StableMaxPower, 1) + " W)");
  Ok &= checkShape(StableTput > EarlyTput * 1.5 &&
                       StableTput > 0.75 * CapTput,
                   "stabilized throughput approaches the budget-limited "
                   "maximum (" +
                       Table::formatDouble(EarlyTput, 2) + " -> " +
                       Table::formatDouble(StableTput, 2) + ")");
  return Ok ? 0 : 1;
}

//===- support/SpeedupCurve.h - Parallel scalability models --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalability curves S(m): the speedup of one transaction's inner
/// parallelization at DoP extent m. The paper characterizes applications
/// by (a) the observed speedup (x264: 6.3x on 8 threads), (b) the extent
/// Mmax above which parallel efficiency S(m)/m drops below 0.5, and
/// (c) DoPmin, the minimum inner extent at which any speedup over
/// sequential execution is obtained (Table 4; 4 for data compression).
///
/// The model used everywhere is the fixed-cost linear-overhead curve
///
///   S(1) = 1
///   S(m) = min(Cap, m / (1 + FixedCost + Alpha * (m - 1)))     (m > 1)
///
/// FixedCost captures the one-time cost of going parallel at all (thread
/// hand-off, pipeline fill) — it produces DoPmin > 2 behaviour; Alpha
/// captures per-thread communication/synchronization overhead; Cap models
/// structural limits (pipeline depth).
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_SUPPORT_SPEEDUPCURVE_H
#define DOPE_SUPPORT_SPEEDUPCURVE_H

#include <cstddef>
#include <limits>
#include <vector>

namespace dope {

/// Fixed-cost, linear-overhead, capped speedup curve.
class SpeedupCurve {
public:
  SpeedupCurve() = default;

  /// \p Alpha per-thread overhead (>= 0), \p FixedCost one-time
  /// parallelization cost (>= 0), \p Cap structural speedup ceiling
  /// (> 0, may be infinity).
  SpeedupCurve(double Alpha, double FixedCost,
               double Cap = std::numeric_limits<double>::infinity());

  /// Speedup at extent \p M; S(1) == 1, S(m) > 0.
  double speedup(unsigned M) const;

  /// Parallel efficiency S(m)/m.
  double efficiency(unsigned M) const;

  /// Largest extent (searching up to \p Limit) whose efficiency is at
  /// least \p Threshold — the paper's Mmax with Threshold = 0.5. Returns
  /// 1 when no extent > 1 qualifies.
  unsigned mmax(double Threshold = 0.5, unsigned Limit = 64) const;

  /// Smallest extent with S(m) > 1 — the paper's DoPmin. Returns 0 when
  /// no extent up to \p Limit achieves speedup.
  unsigned dopMin(unsigned Limit = 64) const;

  /// Extent maximizing S(m) for m in [1, Limit] (smallest maximizer).
  unsigned bestExtent(unsigned Limit = 64) const;

  double alpha() const { return Alpha; }
  double fixedCost() const { return FixedCost; }
  double cap() const { return Cap; }

private:
  double Alpha = 0.05;
  double FixedCost = 0.0;
  double Cap = std::numeric_limits<double>::infinity();
};

/// One observation of a scalability experiment: the measured rate (e.g.
/// throughput in items/second — any consistent unit) achieved at extent
/// \p Extent. Rates need not be normalized: the fit estimates the
/// sequential base rate alongside the curve.
struct SpeedupSample {
  unsigned Extent = 1;
  double Rate = 0.0;
};

/// Result of fitting a SpeedupCurve to observed (extent, rate) samples.
struct SpeedupCurveFit {
  /// The fitted curve; predicted rate at extent m is
  /// BaseRate * Curve.speedup(m).
  SpeedupCurve Curve;

  /// Estimated sequential rate (rate at extent 1).
  double BaseRate = 0.0;

  /// Root-mean-square residual of the fit in rate units.
  double Rmse = 0.0;

  /// Samples the fit was computed from.
  size_t SampleCount = 0;

  /// Predicted rate at extent \p M.
  double predictRate(unsigned M) const {
    return BaseRate * Curve.speedup(M);
  }
};

/// Least-squares fit of the fixed-cost linear-overhead curve to noisy
/// (extent, rate) samples: a coarse-to-fine grid search over
/// (Alpha, FixedCost) with the base rate solved in closed form per
/// candidate. Deterministic — identical samples produce an identical
/// fit. Requires at least two samples at distinct extents; with fewer
/// (or with non-positive rates only) the fallback is a default curve
/// with BaseRate = 0, which callers treat as "no history".
SpeedupCurveFit fitSpeedupCurve(const std::vector<SpeedupSample> &Samples);

} // namespace dope

#endif // DOPE_SUPPORT_SPEEDUPCURVE_H

//===- tests/ShardBarrierTest.cpp - Sharded-engine primitive tests -------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The sharded engine's building blocks in isolation: the epoch barrier
// (serial-section exclusivity and reuse across generations, including a
// thread-sanitizer-targeted stress loop — this file runs under the
// `unit` label, which CI executes with tsan), the cross-shard mailbox's
// canonical delivery order under adversarial posting interleavings, and
// the engine's epoch-edge semantics: an event scheduled exactly at the
// lookahead boundary belongs to the epoch it closes, shards with no
// work still participate in every barrier, and degenerate configs
// (zero shards, zero lookahead) are rejected at construction.
//
//===----------------------------------------------------------------------===//

#include "sim/CrossShardMailbox.h"
#include "sim/ShardBarrier.h"
#include "sim/ShardedSim.h"

#include "gtest/gtest.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace dope;

namespace {

TEST(ShardBarrierTest, SerialSectionRunsOncePerEpoch) {
  constexpr unsigned Parties = 8;
  constexpr int Epochs = 200;
  ShardBarrier Barrier(Parties);
  EXPECT_EQ(Barrier.parties(), Parties);

  // Plain ints mutated from many threads: only the barrier's ordering
  // makes this safe, which is exactly what tsan checks on this test.
  int SerialRuns = 0;
  std::vector<int> Observed(Parties, 0);
  std::atomic<int> SerialWinners{0};

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P != Parties; ++P)
    Threads.emplace_back([&, P] {
      for (int E = 0; E != Epochs; ++E) {
        const bool Ran = Barrier.arriveAndWait([&] { ++SerialRuns; });
        if (Ran)
          SerialWinners.fetch_add(1, std::memory_order_relaxed);
        // Every party must observe the serial section of its own epoch
        // already applied (the barrier publishes it).
        Observed[P] = SerialRuns;
        EXPECT_GE(Observed[P], E + 1);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(SerialRuns, Epochs);
  EXPECT_EQ(SerialWinners.load(), Epochs);
  for (unsigned P = 0; P != Parties; ++P)
    EXPECT_EQ(Observed[P], Epochs);
}

TEST(ShardBarrierTest, SinglePartyRunsSerialInline) {
  ShardBarrier Barrier(1);
  int Runs = 0;
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(Barrier.arriveAndWait([&] { ++Runs; }));
  EXPECT_EQ(Runs, 5);
}

TEST(ShardBarrierTest, NullSerialSectionIsAllowed) {
  ShardBarrier Barrier(2);
  std::atomic<int> TrueCount{0};
  std::thread Other([&] {
    if (Barrier.arriveAndWait(nullptr))
      TrueCount.fetch_add(1);
  });
  if (Barrier.arriveAndWait(nullptr))
    TrueCount.fetch_add(1);
  Other.join();
  EXPECT_EQ(TrueCount.load(), 1) << "exactly one party owns each epoch";
}

TEST(CrossShardMailboxTest, CanonicalOrderUnderReversedDelivery) {
  // Shards post in descending shard order and descending time order —
  // the worst case for any implementation that leans on arrival order.
  CrossShardMailbox<int> Box(4);
  for (int S = 3; S >= 0; --S)
    for (int T = 2; T >= 0; --T)
      Box.post(static_cast<uint32_t>(S), static_cast<double>(T),
               S * 100 + T);
  EXPECT_EQ(Box.pending(), 12u);

  const auto Out = Box.collect();
  ASSERT_EQ(Out.size(), 12u);
  EXPECT_EQ(Box.pending(), 0u) << "collect drains";
  for (size_t I = 1; I != Out.size(); ++I) {
    const auto &L = Out[I - 1], &R = Out[I];
    EXPECT_TRUE(L.Time < R.Time ||
                (L.Time == R.Time && L.SrcShard < R.SrcShard) ||
                (L.Time == R.Time && L.SrcShard == R.SrcShard &&
                 L.Seq < R.Seq))
        << "strictly ascending (Time, SrcShard, Seq) at index " << I;
  }
  // First message: earliest time, lowest shard. Last: the reverse.
  EXPECT_EQ(Out.front().Payload, 0);
  EXPECT_EQ(Out.back().Payload, 302);
}

TEST(CrossShardMailboxTest, SeqBreaksEqualTimeTiesInPostingOrder) {
  CrossShardMailbox<int> Box(2);
  // Same (Time, SrcShard) key repeatedly: posting order must survive.
  Box.post(1, 5.0, 10);
  Box.post(0, 5.0, 20);
  Box.post(1, 5.0, 11);
  Box.post(0, 5.0, 21);
  Box.post(1, 5.0, 12);
  const auto Out = Box.collect();
  ASSERT_EQ(Out.size(), 5u);
  EXPECT_EQ(Out[0].Payload, 20); // shard 0 before shard 1 at equal time
  EXPECT_EQ(Out[1].Payload, 21);
  EXPECT_EQ(Out[2].Payload, 10); // then shard 1 in posting order
  EXPECT_EQ(Out[3].Payload, 11);
  EXPECT_EQ(Out[4].Payload, 12);
}

TEST(CrossShardMailboxTest, ConcurrentPostsCollectDeterministically) {
  constexpr unsigned Sources = 6;
  constexpr int PerSource = 500;
  CrossShardMailbox<int> Box(Sources);
  std::vector<std::thread> Threads;
  for (unsigned S = 0; S != Sources; ++S)
    Threads.emplace_back([&, S] {
      for (int I = 0; I != PerSource; ++I)
        Box.post(S, 1.0, static_cast<int>(S) * PerSource + I);
    });
  for (std::thread &T : Threads)
    T.join();

  const auto Out = Box.collect();
  ASSERT_EQ(Out.size(), static_cast<size_t>(Sources) * PerSource);
  // Equal times: delivery is (SrcShard, Seq) — i.e. payloads ascend
  // 0..N-1 regardless of how the producer threads interleaved.
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(Out[I].Payload, static_cast<int>(I));
}

TEST(ShardedSimTest, RejectsZeroShards) {
  ShardedSimOptions Opts;
  Opts.Shards = 0;
  EXPECT_THROW(ShardedSim(Opts, [](ShardContext &) {},
                          [](double) { return false; }),
               std::invalid_argument);
}

TEST(ShardedSimTest, RejectsZeroLookahead) {
  ShardedSimOptions Opts;
  Opts.Shards = 2;
  Opts.LookaheadSeconds = 0.0;
  EXPECT_THROW(ShardedSim(Opts, [](ShardContext &) {},
                          [](double) { return false; }),
               std::invalid_argument);
  Opts.LookaheadSeconds = -1.0;
  EXPECT_THROW(ShardedSim(Opts, [](ShardContext &) {},
                          [](double) { return false; }),
               std::invalid_argument);
}

TEST(ShardedSimTest, EventExactlyAtEpochEdgeFiresInClosingEpoch) {
  // An event at t == epochEnd must dispatch inside the epoch it closes,
  // not leak into the next window (EventQueue::runUntil is inclusive).
  ShardedSimOptions Opts;
  Opts.Shards = 1;
  Opts.LookaheadSeconds = 1.0;
  std::vector<std::pair<double, double>> Fired; // (event time, epoch end)
  int Epochs = 0;
  ShardedSim Engine(
      Opts,
      [&](ShardContext &Ctx) {
        const double Edge = Ctx.epochEnd();
        Ctx.events().scheduleAt(Edge, [&Fired, Edge] {
          Fired.emplace_back(Edge, Edge);
        });
        Ctx.runEventsUntil(Edge);
      },
      [&](double) { return ++Epochs < 3; });
  Engine.run();
  ASSERT_EQ(Fired.size(), 3u);
  for (const auto &[At, Edge] : Fired)
    EXPECT_DOUBLE_EQ(At, Edge);
  EXPECT_EQ(Engine.totalDispatched(), 3u);
}

TEST(ShardedSimTest, EmptyShardsStillMeetEveryBarrier) {
  // Shard 0 does all the work; shards 1..3 have no events at all. The
  // engine must still run every shard's epoch function each window and
  // the empty shards must not stall or skip barriers.
  ShardedSimOptions Opts;
  Opts.Shards = 4;
  Opts.LookaheadSeconds = 2.0;
  std::vector<std::atomic<int>> EpochsRun(4);
  int Barriers = 0;
  ShardedSim Engine(
      Opts,
      [&](ShardContext &Ctx) {
        EpochsRun[Ctx.shard()].fetch_add(1, std::memory_order_relaxed);
        if (Ctx.shard() == 0)
          Ctx.events().scheduleAt(Ctx.epochBegin() + 1.0, [] {});
        Ctx.runEventsUntil(Ctx.epochEnd());
      },
      [&](double) { return ++Barriers < 5; });
  Engine.run();
  for (unsigned S = 0; S != 4; ++S)
    EXPECT_EQ(EpochsRun[S].load(), 5) << "shard " << S;
  EXPECT_EQ(Engine.totalDispatched(), 5u) << "only shard 0 had events";
}

TEST(ShardedSimTest, EpochBoundsAdvanceByLookahead) {
  ShardedSimOptions Opts;
  Opts.Shards = 2;
  Opts.LookaheadSeconds = 0.5;
  std::vector<std::pair<double, double>> Bounds[2];
  int Barriers = 0;
  ShardedSim Engine(
      Opts,
      [&](ShardContext &Ctx) {
        Bounds[Ctx.shard()].emplace_back(Ctx.epochBegin(), Ctx.epochEnd());
      },
      [&](double End) {
        EXPECT_DOUBLE_EQ(End, 0.5 * (Barriers + 1));
        return ++Barriers < 4;
      });
  Engine.run();
  for (unsigned S = 0; S != 2; ++S) {
    ASSERT_EQ(Bounds[S].size(), 4u);
    for (int E = 0; E != 4; ++E) {
      EXPECT_DOUBLE_EQ(Bounds[S][E].first, 0.5 * E);
      EXPECT_DOUBLE_EQ(Bounds[S][E].second, 0.5 * (E + 1));
    }
  }
}

TEST(ShardedSimTest, WorkerExceptionStopsRunAndRethrows) {
  ShardedSimOptions Opts;
  Opts.Shards = 3;
  Opts.Threads = 3; // pin the threaded path (auto could run inline)
  Opts.LookaheadSeconds = 1.0;
  ShardedSim Engine(
      Opts,
      [&](ShardContext &Ctx) {
        if (Ctx.shard() == 1 && Ctx.epochBegin() >= 2.0)
          throw std::runtime_error("shard 1 exploded");
      },
      [](double) { return true; }); // never stops voluntarily
  EXPECT_THROW(Engine.run(), std::runtime_error);
}

TEST(ShardedSimTest, BarrierStressManyEpochsManyShards) {
  // tsan-targeted: 8 workers hammer the barrier/mailbox path for many
  // short epochs; any missing happens-before edge in the engine shows
  // up here as a data race on the plain counters. The team is pinned to
  // one thread per shard — auto sizing would multiplex on small hosts
  // and dodge the contention this test exists to create.
  ShardedSimOptions Opts;
  Opts.Shards = 8;
  Opts.Threads = 8;
  Opts.LookaheadSeconds = 1.0;
  CrossShardMailbox<uint64_t> Box(8);
  uint64_t Collected = 0; // coordinator-only, barrier-published
  int Barriers = 0;
  ShardedSim Engine(
      Opts,
      [&](ShardContext &Ctx) {
        Box.post(Ctx.shard(), Ctx.epochEnd(), Ctx.shard() + 1);
      },
      [&](double) {
        for (const auto &E : Box.collect())
          Collected += E.Payload;
        return ++Barriers < 100;
      });
  Engine.run();
  // 100 epochs x sum(1..8).
  EXPECT_EQ(Collected, 100u * 36u);
}

TEST(ShardedSimTest, TeamSizeResolvesAndClamps) {
  auto MakeWith = [](unsigned Shards, unsigned Threads) {
    ShardedSimOptions Opts;
    Opts.Shards = Shards;
    Opts.Threads = Threads;
    Opts.LookaheadSeconds = 1.0;
    return ShardedSim(Opts, [](ShardContext &) {}, [](double) { return false; });
  };
  EXPECT_EQ(MakeWith(4, 1).teamSize(), 1u);
  EXPECT_EQ(MakeWith(4, 3).teamSize(), 3u);
  EXPECT_EQ(MakeWith(4, 16).teamSize(), 4u); // clamped to shard count
  EXPECT_EQ(MakeWith(1, 8).teamSize(), 1u);
  EXPECT_GE(MakeWith(8, 0).teamSize(), 1u); // auto resolves in range
  EXPECT_LE(MakeWith(8, 0).teamSize(), 8u);
}

TEST(ShardedSimTest, EveryTeamSizeProducesIdenticalResults) {
  // 8 shards multiplexed on teams of 1 (inline), 2, 3 (uneven), and 8:
  // dispatch counts and the coordinator's collected payload must be
  // identical — team size is an execution resource, not model state.
  auto RunWith = [](unsigned Threads) {
    ShardedSimOptions Opts;
    Opts.Shards = 8;
    Opts.Threads = Threads;
    Opts.LookaheadSeconds = 1.0;
    CrossShardMailbox<uint64_t> Box(8);
    uint64_t Collected = 0;
    int Barriers = 0;
    ShardedSim Engine(
        Opts,
        [&](ShardContext &Ctx) {
          const uint64_t Draw = Ctx.rng().uniformInt(100);
          Ctx.events().scheduleAt(Ctx.epochBegin() + 0.5, [] {});
          Ctx.runEventsUntil(Ctx.epochEnd());
          Box.post(Ctx.shard(), Ctx.epochEnd(), Draw + Ctx.shard());
        },
        [&](double) {
          for (const auto &E : Box.collect())
            Collected = Collected * 31 + E.Payload; // order-sensitive mix
          return ++Barriers < 20;
        });
    EXPECT_EQ(Engine.teamSize(), Threads);
    Engine.run();
    return std::pair<uint64_t, uint64_t>(Collected, Engine.totalDispatched());
  };
  const auto Inline = RunWith(1);
  EXPECT_EQ(Inline, RunWith(2));
  EXPECT_EQ(Inline, RunWith(3));
  EXPECT_EQ(Inline, RunWith(8));
}

TEST(ShardedSimTest, InlineTeamExceptionStillRethrows) {
  ShardedSimOptions Opts;
  Opts.Shards = 3;
  Opts.Threads = 1; // multiplexed inline path
  Opts.LookaheadSeconds = 1.0;
  ShardedSim Engine(
      Opts,
      [&](ShardContext &Ctx) {
        if (Ctx.shard() == 2 && Ctx.epochBegin() >= 1.0)
          throw std::runtime_error("shard 2 exploded inline");
      },
      [](double) { return true; });
  EXPECT_THROW(Engine.run(), std::runtime_error);
}

} // namespace

//===- mechanisms/GrainAdapt.h - Adaptive grain control --------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunking mechanism for recursive task-tree regions: walks the
/// grain size (TaskConfig::Grain) from the work-stealing runtime's
/// monitored signals, the way the extent mechanisms walk thread counts.
///
///   * thrash — the StealRate feature is high while MeanTaskSeconds is
///     tiny: tasks are too fine, scheduling overhead dominates, so the
///     grain doubles (fewer, bigger leaves);
///   * starvation — the region's load (outstanding tasks) has fallen
///     below a multiple of the extent while work remains: tasks are too
///     coarse to feed the workers, so the grain halves;
///   * otherwise the mechanism converges on a plateau and holds, FDP's
///     idiom: it records the accepted cost signal and the thread budget
///     it was reached under, and re-opens the walk when the signal
///     drifts beyond ReexploreDrift or the budget changes.
///
/// The extent is kept pinned to the effective thread budget (a tree
/// region has exactly one knob besides the grain), so a lease grant or
/// revocation re-sizes the worker set on the next consult.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_MECHANISMS_GRAINADAPT_H
#define DOPE_MECHANISMS_GRAINADAPT_H

#include "core/Mechanism.h"

namespace dope {

/// Tuning parameters of the grain walker.
struct GrainAdaptParams {
  /// Successful steals per second above which the region is thrashing
  /// (combined with the cost test below).
  double ThrashStealsPerSec = 200.0;
  /// Mean task cost below which tasks count as "tiny" for the thrash
  /// test: doubling the grain roughly doubles this.
  double MinTaskSeconds = 200e-6;
  /// Starvation test: outstanding tasks < StarveLoadFactor * extent
  /// while the region is measured means workers cannot all be fed.
  double StarveLoadFactor = 2.0;
  /// Grain bounds the walk never leaves.
  unsigned MinGrain = 1;
  unsigned MaxGrain = 1u << 20;
  /// Relative drift of MeanTaskSeconds from the accepted plateau that
  /// re-opens the walk (FDP's re-explore idiom).
  double ReexploreDrift = 0.5;
};

/// Adaptive grain control for ParKind::Tree regions. Non-tree regions
/// are left untouched (nullopt on every consult).
class GrainAdaptMechanism : public Mechanism {
public:
  explicit GrainAdaptMechanism(GrainAdaptParams Params = GrainAdaptParams());

  std::string name() const override { return "GrainAdapt"; }

  std::optional<RegionConfig>
  reconfigure(const ParDescriptor &Region, const RegionSnapshot &Root,
              const RegionConfig &Current, const MechanismContext &Ctx)
      override;

  void reset() override;

  /// True once the walker holds a plateau (test hook).
  bool converged() const { return State == WalkState::Converged; }

private:
  enum class WalkState { Walking, Converged };

  GrainAdaptParams Params;
  WalkState State = WalkState::Walking;
  /// Accepted MeanTaskSeconds at convergence; the drift test compares
  /// against it.
  double PlateauTaskSeconds = 0.0;
  /// Thread budget the plateau was reached under; a budget shift
  /// re-opens the walk explicitly (configured grains never move on
  /// their own when the platform loses contexts).
  unsigned PlateauBudget = 0;
};

} // namespace dope

#endif // DOPE_MECHANISMS_GRAINADAPT_H

//===- tests/OptionParserTest.cpp - CLI parsing tests ----------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/OptionParser.h"

#include <gtest/gtest.h>

using namespace dope;

namespace {

bool parse(OptionParser &P, std::vector<const char *> Args) {
  Args.insert(Args.begin(), "prog");
  return P.parse(static_cast<int>(Args.size()), Args.data());
}

TEST(OptionParser, DefaultsApply) {
  OptionParser P;
  P.addInt("threads", 24, "thread budget");
  P.addDouble("load", 0.5, "load factor");
  P.addString("app", "x264", "application");
  P.addFlag("csv", "emit CSV");
  EXPECT_TRUE(parse(P, {}));
  EXPECT_EQ(P.getInt("threads"), 24);
  EXPECT_DOUBLE_EQ(P.getDouble("load"), 0.5);
  EXPECT_EQ(P.getString("app"), "x264");
  EXPECT_FALSE(P.getFlag("csv"));
}

TEST(OptionParser, EqualsAndSpaceForms) {
  OptionParser P;
  P.addInt("n", 1, "count");
  P.addString("name", "", "name");
  EXPECT_TRUE(parse(P, {"--n=7", "--name", "ferret"}));
  EXPECT_EQ(P.getInt("n"), 7);
  EXPECT_EQ(P.getString("name"), "ferret");
}

TEST(OptionParser, FlagsToggle) {
  OptionParser P;
  P.addFlag("verbose", "talk more");
  EXPECT_TRUE(parse(P, {"--verbose"}));
  EXPECT_TRUE(P.getFlag("verbose"));
}

TEST(OptionParser, FlagRejectsValue) {
  OptionParser P;
  P.addFlag("verbose", "talk more");
  EXPECT_FALSE(parse(P, {"--verbose=yes"}));
  EXPECT_NE(P.error().find("does not take a value"), std::string::npos);
}

TEST(OptionParser, UnknownOptionFails) {
  OptionParser P;
  EXPECT_FALSE(parse(P, {"--nope"}));
  EXPECT_NE(P.error().find("unknown option"), std::string::npos);
}

TEST(OptionParser, TypeValidation) {
  OptionParser P;
  P.addInt("n", 1, "count");
  EXPECT_FALSE(parse(P, {"--n=abc"}));
  OptionParser P2;
  P2.addDouble("x", 1.0, "value");
  EXPECT_FALSE(parse(P2, {"--x=12z"}));
}

TEST(OptionParser, MissingValueFails) {
  OptionParser P;
  P.addInt("n", 1, "count");
  EXPECT_FALSE(parse(P, {"--n"}));
  EXPECT_NE(P.error().find("expects a value"), std::string::npos);
}

TEST(OptionParser, PositionalCollected) {
  OptionParser P;
  P.addFlag("v", "verbose");
  EXPECT_TRUE(parse(P, {"alpha", "--v", "beta"}));
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "alpha");
  EXPECT_EQ(P.positional()[1], "beta");
}

TEST(OptionParser, HelpRequested) {
  OptionParser P("demo tool");
  P.addInt("n", 3, "count of things");
  EXPECT_TRUE(parse(P, {"--help"}));
  EXPECT_TRUE(P.helpRequested());
  const std::string Help = P.helpText();
  EXPECT_NE(Help.find("demo tool"), std::string::npos);
  EXPECT_NE(Help.find("--n"), std::string::npos);
  EXPECT_NE(Help.find("count of things"), std::string::npos);
}

TEST(OptionParser, IntReadableAsDouble) {
  OptionParser P;
  P.addInt("n", 2, "count");
  EXPECT_TRUE(parse(P, {"--n=5"}));
  EXPECT_DOUBLE_EQ(P.getDouble("n"), 5.0);
}

TEST(OptionParser, NegativeNumbers) {
  OptionParser P;
  P.addInt("n", 0, "count");
  P.addDouble("x", 0.0, "value");
  EXPECT_TRUE(parse(P, {"--n=-3", "--x=-2.5"}));
  EXPECT_EQ(P.getInt("n"), -3);
  EXPECT_DOUBLE_EQ(P.getDouble("x"), -2.5);
}

TEST(OptionParser, RepeatedOptionLastWins) {
  // Scripts commonly layer a base command line with overrides appended
  // at the end; the last occurrence must win for every option type.
  OptionParser P;
  P.addInt("n", 0, "count");
  P.addDouble("x", 0.0, "value");
  P.addString("app", "", "application");
  EXPECT_TRUE(parse(P, {"--n=3", "--x=1.5", "--app=x264", "--n", "9",
                        "--x=2.25", "--app=ferret"}));
  EXPECT_EQ(P.getInt("n"), 9);
  EXPECT_DOUBLE_EQ(P.getDouble("x"), 2.25);
  EXPECT_EQ(P.getString("app"), "ferret");
}

TEST(OptionParser, RepeatedFlagStaysSet) {
  OptionParser P;
  P.addFlag("verbose", "talk more");
  EXPECT_TRUE(parse(P, {"--verbose", "--verbose"}));
  EXPECT_TRUE(P.getFlag("verbose"));
}

TEST(OptionParser, RepeatedOptionLastTypoStillFails) {
  // A repeat does not launder a malformed value: the second occurrence
  // is parsed with full validation.
  OptionParser P;
  P.addInt("n", 1, "count");
  EXPECT_FALSE(parse(P, {"--n=3", "--n=oops"}));
}

TEST(OptionParser, UnknownOptionNamesTheOffender) {
  OptionParser P;
  P.addInt("n", 1, "count");
  EXPECT_FALSE(parse(P, {"--n=2", "--bogus=7"}));
  EXPECT_NE(P.error().find("bogus"), std::string::npos)
      << "error should name the unknown option: " << P.error();
}

TEST(OptionParser, UnknownOptionAfterPositionals) {
  OptionParser P;
  EXPECT_FALSE(parse(P, {"input.dat", "--nope"}));
  EXPECT_NE(P.error().find("unknown option"), std::string::npos);
}

} // namespace

//===- core/Dope.cpp - The Degree of Parallelism Executive -----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Dope.h"

#include "support/Clock.h"
#include "support/Compiler.h"
#include "support/Logging.h"

#include <algorithm>
#include <cassert>

using namespace dope;

Mechanism::~Mechanism() = default;

namespace dope {

/// Shared state of one region epoch. Replicas reach it through a
/// shared_ptr captured by their pool job, so a replica the quiesce
/// watchdog abandoned can still count down after the spawning runRegion
/// frame returned.
struct RegionRunState {
  /// Countdown latch used to join the epoch's replicas.
  class Latch {
  public:
    explicit Latch(unsigned Count) : Count(Count) {}

    void countDown() {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(Count > 0 && "latch underflow");
      if (--Count == 0)
        Cond.notify_all();
    }

    void wait() {
      std::unique_lock<std::mutex> Lock(Mutex);
      Cond.wait(Lock, [this] { return Count == 0; });
    }

    /// Returns true when the latch reached zero within \p Seconds.
    bool waitFor(double Seconds) {
      std::unique_lock<std::mutex> Lock(Mutex);
      return Cond.wait_for(Lock, secondsDuration(Seconds),
                           [this] { return Count == 0; });
    }

  private:
    std::mutex Mutex;
    std::condition_variable Cond;
    unsigned Count;
  };

  RegionRunState(const ParDescriptor &TheRegion, RegionConfig TheConfig,
                 void *UserContext, unsigned TotalReplicas,
                 const RegionRunState *Parent, std::string SpawnerName,
                 unsigned SpawnerReplica)
      : Region(&TheRegion), Config(std::move(TheConfig)),
        UserContext(UserContext), Parent(Parent),
        SpawnerName(std::move(SpawnerName)), SpawnerReplica(SpawnerReplica),
        Done(TotalReplicas), Remaining(Config.Tasks.size()),
        FiniDone(Config.Tasks.size()) {
    for (size_t I = 0; I != Config.Tasks.size(); ++I)
      Remaining[I].store(Config.Tasks[I].Extent, std::memory_order_relaxed);
  }

  /// Runs task \p TaskIndex's FiniCB exactly once per epoch, whether the
  /// last replica triggers it naturally, the watchdog forces it early, or
  /// a permanent failure aborts the epoch. Const because abort paths only
  /// hold const pointers to ancestor epochs.
  void finiOnce(size_t TaskIndex) const {
    if (!FiniDone[TaskIndex].exchange(true, std::memory_order_acq_rel))
      Region->tasks()[TaskIndex]->runFini();
  }

  bool abandoned() const {
    return Abandoned.load(std::memory_order_acquire) ||
           (Parent && Parent->abandoned());
  }

  const ParDescriptor *Region;
  const RegionConfig Config;
  void *UserContext;
  const RegionRunState *Parent;
  /// Task name and replica index of the parent replica whose Task::wait
  /// opened this region; empty name for the root region. Stamped into
  /// every replica's TaskBegin record (B = replica, Detail = name) so
  /// offline analysis can rebuild the spawn DAG.
  const std::string SpawnerName;
  const unsigned SpawnerReplica;
  Latch Done;
  std::vector<std::atomic<unsigned>> Remaining;
  mutable std::vector<std::atomic<bool>> FiniDone;
  std::atomic<unsigned> MasterFinished{0};
  std::atomic<bool> Failed{false};
  std::atomic<bool> Abandoned{false};
};

} // namespace dope

//===----------------------------------------------------------------------===//
// TaskRuntime
//===----------------------------------------------------------------------===//

bool TaskRuntime::abandoned() const { return Run && Run->abandoned(); }

DOPE_HOT TaskStatus TaskRuntime::begin() {
  BeginTime = monotonicSeconds();
  if (Tracer *Tr = Executive.Trace) {
    if (Run && !Run->SpawnerName.empty())
      Tr->recordAt(BeginTime, TraceKind::TaskBegin, TheTask.name(), Replica,
                   Run->SpawnerReplica, Run->SpawnerName);
    else
      Tr->recordAt(BeginTime, TraceKind::TaskBegin, TheTask.name(), Replica);
  }
  if (Executive.StopFlag.load(std::memory_order_acquire) ||
      Executive.suspendRequested() || abandoned())
    return TaskStatus::Suspended;
  return TaskStatus::Executing;
}

DOPE_COLD void TaskRuntime::flushWindow() {
  if (Window.Count == 0)
    return;
  Executive.metricsFor(TheTask).recordExecTimeBatch(Window.Count,
                                                    Window.TotalSeconds);
  Window.Count = 0;
  Window.TotalSeconds = 0.0;
}

DOPE_HOT TaskStatus TaskRuntime::end() {
  if (BeginTime >= 0.0) {
    const double Now = monotonicSeconds();
    const double Elapsed = Now - BeginTime;
    // Accumulate locally; flush to the shared TaskMetrics in batches so
    // monitoring "each and every instance" costs two loads and two adds
    // per instance, not a mutex round-trip.
    if (Window.Count == 0)
      Window.FirstSampleTime = Now;
    ++Window.Count;
    Window.TotalSeconds += Elapsed;
    if (Window.Count >= WindowMaxSamples ||
        Now - Window.FirstSampleTime >= WindowMaxSeconds)
      flushWindow();
    BeginTime = -1.0;
    if (Tracer *Tr = Executive.Trace)
      Tr->recordAt(Now, TraceKind::TaskEnd, TheTask.name(), Replica, Elapsed);
  }
  if (Executive.StopFlag.load(std::memory_order_acquire) ||
      Executive.suspendRequested() || abandoned())
    return TaskStatus::Suspended;
  return TaskStatus::Executing;
}

TaskStatus TaskRuntime::wait(void *InnerContext) {
  if (Tracer *Tr = Executive.Trace)
    Tr->record(TraceKind::TaskWait, TheTask.name(), Replica);
  return Executive.runInnerRegion(TheTask, Replica, Config, InnerContext, Run);
}

double TaskRuntime::nowSeconds() const { return monotonicSeconds(); }

//===----------------------------------------------------------------------===//
// Construction / lifecycle
//===----------------------------------------------------------------------===//

static void collectTasks(const ParDescriptor &Region,
                         std::vector<const Task *> &Out) {
  for (Task *T : Region.tasks()) {
    Out.push_back(T);
    for (ParDescriptor *Alt : T->descriptor()->alternatives())
      collectTasks(*Alt, Out);
  }
}

Dope::Dope(ParDescriptor *Root, DopeOptions Opts)
    : Root(Root), Options(std::move(Opts)) {
  assert(Root && "root region required");
  assert(Options.MaxThreads >= 1 && "need at least one thread");
  Envelope.store(Options.MaxThreads, std::memory_order_release);
  // The full-machine envelope an executive starts with counts as
  // granted now; the TTL clock (when enabled) starts here.
  EnvelopeRenewedAt.store(monotonicSeconds(), std::memory_order_release);

  if (Options.InitialConfig.Tasks.empty())
    ActiveConfig = defaultConfig(*Root);
  else
    ActiveConfig = Options.InitialConfig;

  std::string Error;
  if (!validateConfig(*Root, ActiveConfig, &Error)) {
    DOPE_LOG_ERROR("invalid initial configuration: %s", Error.c_str());
    assert(false && "invalid initial configuration");
    ActiveConfig = defaultConfig(*Root);
  }

  std::vector<const Task *> AllTasks;
  collectTasks(*Root, AllTasks);
  for (const Task *T : AllTasks) {
    if (T->id() >= Metrics.size())
      Metrics.resize(T->id() + 1);
    Metrics[T->id()] = std::make_unique<TaskMetrics>();
  }

  // Mechanisms size configurations against the live budget
  // (MechanismContext::effectiveThreads); the native platform loses
  // contexts when the watchdog writes off wedged replicas.
  Features.registerFeature(
      "LiveContexts", [this] { return static_cast<double>(liveThreads()); });

  if (Options.Trace) {
    Trace = Options.Trace;
  } else if (!Options.TraceFile.empty()) {
    OwnedTrace = std::make_unique<Tracer>(Options.TraceCapacityPerThread);
    Trace = OwnedTrace.get();
  }
  if (Trace) {
    Features.setTracer(Trace);
    // All executive records are stamped with monotonicSeconds (seconds
    // since process-local origin); retarget the tracer's clock so
    // records it stamps itself (waits, decisions, faults, mirrored log
    // lines) share that domain instead of raw steady_clock time.
    Trace->setClock([] { return monotonicSeconds(); });
    // Route log lines into the trace (shared timestamp domain). Only an
    // owned tracer claims the process-wide slot; external tracers are
    // activated by their owner.
    if (OwnedTrace && !Tracer::active())
      Tracer::setActive(Trace);
  }
}

unsigned Dope::liveThreads() const {
  const unsigned Env = Envelope.load(std::memory_order_acquire);
  const unsigned Lost = LostThreads.load(std::memory_order_acquire);
  return Lost >= Env ? 1u : Env - Lost;
}

void Dope::renewThreadEnvelope() {
  EnvelopeRenewedAt.store(monotonicSeconds(), std::memory_order_release);
}

void Dope::setThreadEnvelope(unsigned Threads) {
  const unsigned New = std::clamp(Threads, 1u, Options.MaxThreads);
  // Any envelope message from the arbiter — including a re-grant of the
  // current value — proves the arbiter is alive and renews the lease.
  renewThreadEnvelope();
  const unsigned Old = Envelope.exchange(New, std::memory_order_acq_rel);
  if (New == Old)
    return;
  if (Trace)
    Trace->record(New < Old ? TraceKind::LeaseRevoke : TraceKind::LeaseGrant,
                  "envelope", New, Old);
  DOPE_LOG_DEBUG("thread envelope %u -> %u", Old, New);
  // A shrink below the running footprint must be realized through the
  // quiesce path: request a suspend so runMain re-enters the region with
  // the configuration degraded to the new live budget. Growth needs no
  // interruption — the next mechanism consult sees the wider ceiling.
  bool ShrinkBelowActive = false;
  {
    std::lock_guard<std::mutex> Lock(ConfigMutex);
    ShrinkBelowActive =
        New < Old && totalThreads(*Root, ActiveConfig) > liveThreads();
  }
  if (ShrinkBelowActive)
    SuspendFlag.store(true, std::memory_order_release);
}

std::unique_ptr<Dope> Dope::create(ParDescriptor *Root, DopeOptions Opts) {
  // Cannot use std::make_unique with a private constructor.
  std::unique_ptr<Dope> D(new Dope(Root, std::move(Opts)));
  D->MainThread = std::thread([Raw = D.get()] { Raw->runMain(); });
  D->ControllerThread = std::thread([Raw = D.get()] { Raw->runController(); });
  return D;
}

void Dope::destroy(std::unique_ptr<Dope> D) {
  assert(D && "destroying a null executive");
  D->wait();
  D.reset();
}

Dope::~Dope() {
  // An executive destroyed before natural completion stops the
  // application in an orderly fashion.
  if (!Finished.load(std::memory_order_acquire))
    requestStop();
  if (MainThread.joinable())
    MainThread.join();
  if (ControllerThread.joinable())
    ControllerThread.join();

  if (Trace) {
    if (!Options.TraceFile.empty()) {
      std::string Error;
      if (!writeTraceFile(Trace->drain(), Options.TraceFile, &Error))
        DOPE_LOG_WARN("trace: %s", Error.c_str());
    }
    // Hand an external tracer back on its default clock.
    Trace->setClock({});
  }
}

TaskStatus Dope::wait() {
  std::unique_lock<std::mutex> Lock(DoneMutex);
  DoneCond.wait(Lock,
                [this] { return Finished.load(std::memory_order_acquire); });
  return FailFlag.load(std::memory_order_acquire) ? TaskStatus::Failed
                                                  : TaskStatus::Finished;
}

bool Dope::waitFor(double Seconds) {
  std::unique_lock<std::mutex> Lock(DoneMutex);
  return DoneCond.wait_for(
      Lock, secondsDuration(Seconds),
      [this] { return Finished.load(std::memory_order_acquire); });
}

TaskStatus Dope::status() const {
  if (!Finished.load(std::memory_order_acquire))
    return TaskStatus::Executing;
  return FailFlag.load(std::memory_order_acquire) ? TaskStatus::Failed
                                                  : TaskStatus::Finished;
}

bool Dope::finished() const {
  return Finished.load(std::memory_order_acquire);
}

void Dope::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  SuspendFlag.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Mechanism-developer API
//===----------------------------------------------------------------------===//

double Dope::getExecTime(const Task *T) const {
  const TaskMetrics *M = metricsForIfPresent(*T);
  return M ? M->execTime() : 0.0;
}

double Dope::getLoad(const Task *T) const {
  const TaskMetrics *M = metricsForIfPresent(*T);
  return M ? M->load() : 0.0;
}

void Dope::registerCB(const std::string &Feature, FeatureFn Callback,
                      double MinSampleIntervalSeconds) {
  Features.registerFeature(Feature, std::move(Callback),
                           MinSampleIntervalSeconds);
}

std::optional<double> Dope::getValue(const std::string &Feature) const {
  return Features.getValue(Feature, monotonicSeconds());
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

RegionConfig Dope::currentConfig() const {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  return ActiveConfig;
}

uint64_t Dope::reconfigurationCount() const {
  return ReconfigCount.load(std::memory_order_acquire);
}

TaskMetrics &Dope::metricsFor(const Task &T) {
  assert(T.id() < Metrics.size() && Metrics[T.id()] &&
         "task not registered with this executive");
  return *Metrics[T.id()];
}

const TaskMetrics *Dope::metricsForIfPresent(const Task &T) const {
  return T.id() < Metrics.size() ? Metrics[T.id()].get() : nullptr;
}

RegionSnapshot
Dope::snapshotRegion(const ParDescriptor &Region,
                     const std::vector<TaskConfig> *Active) const {
  RegionSnapshot Snap;
  for (size_t I = 0; I != Region.size(); ++I) {
    const Task *T = Region.tasks()[I];
    const TaskConfig *Config =
        Active && I < Active->size() ? &(*Active)[I] : nullptr;

    TaskSnapshot TS;
    TS.TaskId = T->id();
    TS.Name = T->name();
    TS.Kind = T->kind();
    if (const TaskMetrics *M = metricsForIfPresent(*T)) {
      TS.ExecTime = M->execTime();
      TS.Load = M->load();
      TS.LastLoad = M->lastLoad();
      TS.Invocations = M->invocations();
    }
    TS.CurrentExtent = Config ? Config->Extent : 0;
    TS.ActiveAlt = Config ? Config->AltIndex : -1;
    if (TS.ExecTime > 0.0)
      TS.Throughput = static_cast<double>(TS.CurrentExtent) / TS.ExecTime;

    const auto &Alts = T->descriptor()->alternatives();
    for (size_t A = 0; A != Alts.size(); ++A) {
      const std::vector<TaskConfig> *InnerActive = nullptr;
      if (Config && Config->AltIndex == static_cast<int>(A))
        InnerActive = &Config->Inner;
      TS.InnerAlternatives.push_back(snapshotRegion(*Alts[A], InnerActive));
    }
    Snap.Tasks.push_back(std::move(TS));
  }
  return Snap;
}

RegionSnapshot Dope::snapshot() const {
  RegionConfig Config = currentConfig();
  return snapshotRegion(*Root, &Config.Tasks);
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

/// Collects pointers to every TaskConfig in the tree, inner levels
/// included.
static void collectTaskConfigs(std::vector<TaskConfig> &Tasks,
                               std::vector<TaskConfig *> &Out) {
  for (TaskConfig &TC : Tasks) {
    Out.push_back(&TC);
    collectTaskConfigs(TC.Inner, Out);
  }
}

/// Shrinks \p Config until it occupies at most \p Budget threads by
/// repeatedly decrementing the widest extent (> 1). Returns true when the
/// configuration changed. May stop above budget when every extent is
/// already 1 (the minimal configuration).
static bool degradeConfigToBudget(const ParDescriptor &Region,
                                  RegionConfig &Config, unsigned Budget) {
  bool Changed = false;
  while (totalThreads(Region, Config) > Budget) {
    std::vector<TaskConfig *> All;
    collectTaskConfigs(Config.Tasks, All);
    TaskConfig *Widest = nullptr;
    for (TaskConfig *TC : All)
      if (TC->Extent > 1 && (!Widest || TC->Extent > Widest->Extent))
        Widest = TC;
    if (!Widest)
      break;
    --Widest->Extent;
    Changed = true;
  }
  return Changed;
}

void Dope::runMain() {
  for (;;) {
    RegionConfig Config;
    {
      std::lock_guard<std::mutex> Lock(ConfigMutex);
      if (HasPendingConfig) {
        ActiveConfig = PendingConfig;
        HasPendingConfig = false;
        ReconfigCount.fetch_add(1, std::memory_order_acq_rel);
        if (Trace)
          Trace->record(TraceKind::Reconfig, "apply",
                        totalThreads(*Root, ActiveConfig), 0.0,
                        toString(*Root, ActiveConfig));
      }
      // Contexts wedged inside abandoned replicas shrink the budget;
      // clamp the next epoch so it does not overcommit what is left.
      const unsigned Live = liveThreads();
      if (totalThreads(*Root, ActiveConfig) > Live &&
          degradeConfigToBudget(*Root, ActiveConfig, Live)) {
        DOPE_LOG_WARN("degraded configuration to %s (%u live contexts)",
                      toString(*Root, ActiveConfig).c_str(), Live);
        if (Trace)
          Trace->record(TraceKind::Reconfig, "degrade",
                        totalThreads(*Root, ActiveConfig), Live,
                        toString(*Root, ActiveConfig));
      }
      Config = ActiveConfig;
    }
    if (StopFlag.load(std::memory_order_acquire))
      break;

    // A fresh epoch starts with the suspend request cleared.
    SuspendFlag.store(false, std::memory_order_release);

    const TaskStatus Status = runRegion(*Root, Config, nullptr, /*IsRoot=*/true);
    if (Status == TaskStatus::Finished)
      break;
    if (Status == TaskStatus::Failed) {
      FailFlag.store(true, std::memory_order_release);
      break;
    }
    assert(Status == TaskStatus::Suspended && "unexpected region status");
    if (StopFlag.load(std::memory_order_acquire))
      break;
    // Loop: apply any pending configuration and re-enter the region.
  }

  {
    std::lock_guard<std::mutex> Lock(DoneMutex);
    Finished.store(true, std::memory_order_release);
  }
  DoneCond.notify_all();
}

TaskStatus Dope::runRegion(const ParDescriptor &Region,
                           const RegionConfig &Config, void *UserContext,
                           bool IsRoot, const RegionRunState *Parent,
                           const std::string &SpawnerName,
                           unsigned SpawnerReplica) {
  assert(Config.Tasks.size() == Region.size() && "config arity mismatch");
  const std::vector<Task *> &Tasks = Region.tasks();

  // InitCBs restore consistency before the parallel region is (re)entered.
  for (Task *T : Tasks)
    T->runInit();

  unsigned TotalReplicas = 0;
  for (const TaskConfig &TC : Config.Tasks)
    TotalReplicas += TC.Extent;

  auto Run =
      std::make_shared<RegionRunState>(Region, Config, UserContext,
                                       TotalReplicas, Parent, SpawnerName,
                                       SpawnerReplica);

  const unsigned MasterExtent = Config.Tasks[0].Extent;

  // Captures the shared epoch state by value: a replica abandoned by the
  // watchdog outlives this frame and must not touch its locals.
  auto RunReplica = [this](const std::shared_ptr<RegionRunState> &R,
                           size_t TaskIndex, unsigned Replica) {
    const Task &T = *R->Region->tasks()[TaskIndex];
    const TaskStatus Status =
        taskLoop(T, R->Config.Tasks[TaskIndex], Replica, R->UserContext, *R);
    if (TaskIndex == 0 && Status == TaskStatus::Finished)
      R->MasterFinished.fetch_add(1, std::memory_order_acq_rel);
    // The last replica of a task to stop runs the task's FiniCB, which
    // lets downstream tasks drain to a consistent state (sentinels,
    // queue closure). finiOnce keeps that exactly-once even when the
    // watchdog forced the FiniCB ahead of a stuck replica.
    if (R->Remaining[TaskIndex].fetch_sub(1, std::memory_order_acq_rel) == 1)
      R->finiOnce(TaskIndex);
    R->Done.countDown();
  };

  // Spawn all replicas except the master's replica 0, which runs on the
  // calling thread (the paper's master-task role).
  for (size_t I = 0; I != Tasks.size(); ++I) {
    const unsigned Extent = Config.Tasks[I].Extent;
    for (unsigned R = 0; R != Extent; ++R) {
      if (I == 0 && R == 0)
        continue;
      Pool.submit([RunReplica, Run, I, R] { RunReplica(Run, I, R); });
    }
  }
  RunReplica(Run, 0, 0);

  // Quiesce watchdog (root epochs only): once the master replica stopped
  // on this thread, the remaining replicas get QuiesceDeadlineSeconds to
  // stop. A stuck replica must not deadlock the executive.
  const double Deadline = IsRoot ? Options.QuiesceDeadlineSeconds : 0.0;
  if (Deadline <= 0.0) {
    Run->Done.wait();
  } else if (!Run->Done.waitFor(Deadline)) {
    Run->Abandoned.store(true, std::memory_order_release);
    for (size_t I = 0; I != Tasks.size(); ++I) {
      if (Run->Remaining[I].load(std::memory_order_acquire) == 0)
        continue;
      Log.recordIncident();
      if (Trace)
        Trace->record(TraceKind::Fault, "watchdog", Deadline, 0.0,
                      Tasks[I]->name() + " missed quiesce deadline");
      DOPE_LOG_WARN("watchdog: task '%s' missed the %.3fs quiesce deadline; "
                    "forcing its FiniCB",
                    Tasks[I]->name().c_str(), Deadline);
      // Forcing the FiniCB closes the task's downstream queues, which is
      // what replicas blocked on a starved hand-off are waiting for.
      Run->finiOnce(I);
    }
    // Grace window: stragglers unblocked by the forced closes drain out;
    // whoever is still running is written off as lost capacity.
    if (!Run->Done.waitFor(Deadline)) {
      unsigned Lost = 0;
      for (std::atomic<unsigned> &Rem : Run->Remaining)
        Lost += Rem.load(std::memory_order_acquire);
      if (Lost != 0) {
        LostThreads.fetch_add(Lost, std::memory_order_acq_rel);
        if (Trace)
          Trace->record(TraceKind::Fault, "lost-contexts", Lost,
                        liveThreads());
        DOPE_LOG_WARN("watchdog: abandoned %u stuck replica(s); "
                      "%u live context(s) remain",
                      Lost, liveThreads());
      }
    }
  }

  if (Run->Failed.load(std::memory_order_acquire))
    return TaskStatus::Failed;
  return Run->MasterFinished.load(std::memory_order_acquire) == MasterExtent
             ? TaskStatus::Finished
             : TaskStatus::Suspended;
}

void Dope::recordReplicaFailure(const Task &T, unsigned Replica,
                                std::string Message, unsigned Attempts,
                                RegionRunState &Run) {
  TaskFailure F;
  F.TaskId = T.id();
  F.TaskName = T.name();
  F.Replica = Replica;
  F.Message = std::move(Message);
  F.TimeSeconds = monotonicSeconds();
  F.Attempts = Attempts;
  const std::string Description = toString(F);
  if (Trace)
    Trace->record(TraceKind::Fault, "task-failure", Replica, Attempts,
                  Description);
  if (Log.recordFailure(std::move(F)))
    DOPE_LOG_ERROR("%s", Description.c_str());
  Run.Failed.store(true, std::memory_order_release);
  // Ask the rest of the application to quiesce; the epoch resolves FAILED
  // once its replicas stop.
  SuspendFlag.store(true, std::memory_order_release);
  // A permanent failure aborts the run, so force every FiniCB in the
  // failing epoch and its ancestors (exactly once each — finiOnce). The
  // closes unblock replicas wedged on full or empty queues: a producer
  // blocked pushing toward the dead task can never be drained by it, and
  // without the forced close it would never observe the suspend.
  for (const RegionRunState *R = &Run; R; R = R->Parent)
    for (size_t I = 0; I != R->Region->tasks().size(); ++I)
      R->finiOnce(I);
}

TaskStatus Dope::taskLoop(const Task &T, const TaskConfig &Config,
                          unsigned Replica, void *UserContext,
                          RegionRunState &Run) {
  TaskRuntime RT(*this, T, Config, Replica, UserContext, &Run);
  const RetryPolicy &Policy = T.descriptor()->retryPolicy();
  const unsigned MaxAttempts = std::max(1u, Policy.MaxAttempts);
  unsigned Attempts = 0;
  double Backoff = Policy.BackoffSeconds;
  for (;;) {
    if (Run.abandoned())
      return TaskStatus::Suspended;

    TaskStatus Status = TaskStatus::Executing;
    std::string Error;
    bool Threw = false;
    try {
      Status = T.invoke(RT);
    } catch (const std::exception &E) {
      Threw = true;
      Error = E.what();
    } catch (...) {
      Threw = true;
      Error = "non-standard exception";
    }

    if (!Threw) {
      if (Status == TaskStatus::Executing) {
        // A clean instance ends the failure streak.
        Attempts = 0;
        Backoff = Policy.BackoffSeconds;
        continue;
      }
      if (Status == TaskStatus::Failed)
        recordReplicaFailure(T, Replica, "functor reported failure", 1, Run);
      return Status;
    }

    ++Attempts;
    if (Attempts < MaxAttempts &&
        !StopFlag.load(std::memory_order_acquire) && !Run.abandoned()) {
      Log.recordRetry();
      if (Trace)
        Trace->record(TraceKind::Fault, "retry", Replica, Attempts,
                      T.name() + ": " + Error);
      DOPE_LOG_DEBUG("task '%s' replica %u threw (%s); retry %u/%u",
                     T.name().c_str(), Replica, Error.c_str(), Attempts,
                     MaxAttempts - 1);
      if (Backoff > 0.0) {
        sleepSeconds(Backoff);
        Backoff *= Policy.BackoffMultiplier;
      }
      continue;
    }
    recordReplicaFailure(T, Replica, std::move(Error), Attempts, Run);
    return TaskStatus::Failed;
  }
}

TaskStatus Dope::runInnerRegion(const Task &Parent, unsigned ParentReplica,
                                const TaskConfig &Config, void *UserContext,
                                const RegionRunState *ParentRun) {
  if (Config.AltIndex < 0)
    return TaskStatus::Finished;
  const ParDescriptor *Inner =
      Parent.descriptor()->alternative(static_cast<size_t>(Config.AltIndex));
  RegionConfig InnerConfig;
  InnerConfig.Tasks = Config.Inner;
  return runRegion(*Inner, InnerConfig, UserContext, /*IsRoot=*/false,
                   ParentRun, Parent.name(), ParentReplica);
}

//===----------------------------------------------------------------------===//
// Controller
//===----------------------------------------------------------------------===//

void Dope::runController() {
  while (!Finished.load(std::memory_order_acquire) &&
         !StopFlag.load(std::memory_order_acquire)) {
    sleepSeconds(Options.MonitorIntervalSeconds);
    if (Finished.load(std::memory_order_acquire))
      break;

    // Envelope lease TTL: an arbiter that stopped renewing may be dead
    // or partitioned — treat the unrenewed envelope as expired and
    // shrink gracefully to the self-preservation floor through the
    // ordinary quiesce path (setThreadEnvelope suspends the epoch if the
    // active footprint exceeds the floor; nothing is killed). The shrink
    // itself renews the lease timestamp, so expiry fires once; a later
    // renewal or re-grant restores the wider ceiling.
    if (Options.EnvelopeTtlSeconds > 0.0) {
      const unsigned Floor =
          std::clamp(Options.EnvelopeExpireFloor, 1u, Options.MaxThreads);
      const double Renewed =
          EnvelopeRenewedAt.load(std::memory_order_acquire);
      if (threadEnvelope() > Floor &&
          monotonicSeconds() >= Renewed + Options.EnvelopeTtlSeconds) {
        if (Trace)
          Trace->record(TraceKind::LeaseExpire, "envelope",
                        static_cast<double>(Floor),
                        static_cast<double>(threadEnvelope()), "ttl");
        DOPE_LOG_WARN("thread envelope lease expired (no renewal in %.3fs); "
                      "shrinking %u -> %u",
                      Options.EnvelopeTtlSeconds, threadEnvelope(), Floor);
        setThreadEnvelope(Floor);
      }
    }

    // Sample application load features.
    std::vector<const Task *> AllTasks;
    collectTasks(*Root, AllTasks);
    for (const Task *T : AllTasks)
      if (T->hasLoadCallback()) {
        const double Load = T->sampleLoad();
        metricsFor(*T).recordLoad(Load);
        if (Trace)
          Trace->record(TraceKind::QueueDepth, T->name(), Load);
      }

    if (!Options.Mech)
      continue;

    const double Now = monotonicSeconds();
    if (Now - LastReconfigTime < Options.MinReconfigIntervalSeconds)
      continue;

    MechanismContext Ctx;
    Ctx.MaxThreads = Options.MaxThreads;
    Ctx.PowerBudgetWatts = Options.PowerBudgetWatts;
    Ctx.Features = &Features;
    Ctx.NowSeconds = Now;
    Ctx.Trace = Trace;

    RegionConfig Current = currentConfig();
    RegionSnapshot Snap = snapshot();
    std::optional<RegionConfig> Next =
        Options.Mech->reconfigure(*Root, Snap, Current, Ctx);
    const bool Changed = Next && !(*Next == Current);
    bool Accepted = Changed;
    if (Changed) {
      std::string Error;
      if (!validateConfig(*Root, *Next, &Error)) {
        DOPE_LOG_WARN("mechanism '%s' produced invalid config: %s",
                      Options.Mech->name().c_str(), Error.c_str());
        Accepted = false;
      } else if (totalThreads(*Root, *Next) > threadEnvelope()) {
        DOPE_LOG_WARN("mechanism '%s' exceeded thread envelope (%u > %u)",
                      Options.Mech->name().c_str(), totalThreads(*Root, *Next),
                      threadEnvelope());
        Accepted = false;
      }
    }
    if (Trace) {
      // Every consult is recorded; B marks the ones that actually changed
      // the running configuration (rejected proposals trace the config
      // that keeps running).
      const RegionConfig &Chosen = Accepted ? *Next : Current;
      Trace->recordAt(Now, TraceKind::Decision, Options.Mech->name(),
                      totalThreads(*Root, Chosen), Accepted ? 1.0 : 0.0,
                      toString(*Root, Chosen));
    }
    if (!Accepted)
      continue;

    {
      std::lock_guard<std::mutex> Lock(ConfigMutex);
      PendingConfig = *Next;
      HasPendingConfig = true;
    }
    SuspendFlag.store(true, std::memory_order_release);
    LastReconfigTime = Now;
    DOPE_LOG_DEBUG("reconfiguring to %s",
                   toString(*Root, *Next).c_str());
  }
}

//===- core/WarmStart.cpp - Mechanism warm-start hints ---------------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/WarmStart.h"

#include "support/Json.h"

using namespace dope;

std::string dope::writeWarmStartHint(const WarmStartHint &Hint) {
  JsonValue V = JsonValue::makeObject();
  V.set("schema", WarmStartSchema);
  if (!Hint.Mechanism.empty())
    V.set("mechanism", Hint.Mechanism);
  if (!Hint.Source.empty())
    V.set("source", Hint.Source);
  if (Hint.PredictedThroughput != 0.0)
    V.set("predicted_throughput", Hint.PredictedThroughput);
  V.set("alt_index", Hint.AltIndex);
  JsonValue Extents = JsonValue::makeArray();
  for (unsigned E : Hint.Extents)
    Extents.push(static_cast<double>(E));
  V.set("extents", std::move(Extents));
  return V.dump();
}

std::optional<WarmStartHint> dope::readWarmStartHint(std::string_view Text,
                                                     std::string *Error) {
  std::optional<JsonValue> V = JsonValue::parse(Text, Error);
  if (!V)
    return std::nullopt;
  if (!V->isObject()) {
    if (Error)
      *Error = "warm-start hint is not a JSON object";
    return std::nullopt;
  }
  const std::string Schema = V->getString("schema");
  if (Schema != WarmStartSchema) {
    if (Error)
      *Error = "unknown warm-start schema '" + Schema + "' (expected " +
               std::string(WarmStartSchema) + ")";
    return std::nullopt;
  }
  WarmStartHint Hint;
  Hint.Mechanism = V->getString("mechanism");
  Hint.Source = V->getString("source");
  Hint.PredictedThroughput = V->getNumber("predicted_throughput");
  Hint.AltIndex = static_cast<int>(V->getNumber("alt_index"));
  if (const JsonValue *Extents = V->get("extents")) {
    if (!Extents->isArray()) {
      if (Error)
        *Error = "warm-start 'extents' is not an array";
      return std::nullopt;
    }
    for (size_t I = 0; I != Extents->size(); ++I) {
      const double E = Extents->at(I).asDouble(-1.0);
      if (E < 1.0) {
        if (Error)
          *Error = "warm-start extent must be a number >= 1";
        return std::nullopt;
      }
      Hint.Extents.push_back(static_cast<unsigned>(E));
    }
  }
  return Hint;
}

file(REMOVE_RECURSE
  "CMakeFiles/fig13_ferret_search.dir/fig13_ferret_search.cpp.o"
  "CMakeFiles/fig13_ferret_search.dir/fig13_ferret_search.cpp.o.d"
  "fig13_ferret_search"
  "fig13_ferret_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ferret_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

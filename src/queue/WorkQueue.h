//===- queue/WorkQueue.h - Unbounded MPMC work queue ----------*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-producer multi-consumer work queue used between pipeline
/// stages and as the front-of-system request queue. Its occupancy is the
/// load signal consumed by LoadCB callbacks (Sec. 3.2 of the paper: "The
/// callback returns the current occupancy of the work queue").
///
/// The queue supports a close() operation used to propagate the sentinel
/// semantics from the paper's FiniCB protocol: consumers blocked in
/// waitAndPop are released with std::nullopt once the queue is closed and
/// drained.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_QUEUE_WORKQUEUE_H
#define DOPE_QUEUE_WORKQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dope {

/// Unbounded blocking MPMC queue with occupancy sampling and close
/// semantics.
template <typename T> class WorkQueue {
public:
  WorkQueue() = default;
  WorkQueue(const WorkQueue &) = delete;
  WorkQueue &operator=(const WorkQueue &) = delete;

  /// Enqueues an item. Returns false (item dropped) if the queue was
  /// already closed.
  bool push(T Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed)
        return false;
      Items.push_back(std::move(Item));
      ++TotalPushed;
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when empty (even if not closed).
  std::optional<T> tryPop() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    ++TotalPopped;
    return Item;
  }

  /// Blocking pop; nullopt only when the queue is closed and drained.
  std::optional<T> waitAndPop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [this] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    ++TotalPopped;
    return Item;
  }

  /// Closes the queue: no further pushes are accepted and blocked
  /// consumers are released once the backlog drains.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  /// Reopens a closed (and typically drained) queue, e.g. when re-entering
  /// a parallel region after reconfiguration (InitCB path).
  void reopen() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  /// Instantaneous occupancy — the LoadCB signal.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  bool empty() const { return size() == 0; }

  /// Lifetime counters, useful for tests and throughput accounting.
  size_t totalPushed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return TotalPushed;
  }
  size_t totalPopped() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return TotalPopped;
  }

private:
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
  size_t TotalPushed = 0;
  size_t TotalPopped = 0;
};

} // namespace dope

#endif // DOPE_QUEUE_WORKQUEUE_H

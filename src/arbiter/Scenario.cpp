//===- arbiter/Scenario.cpp - Canonical arbiter scenarios ----------------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "arbiter/Scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dope;

ArbiterScenario dope::makeCanonicalColocationScenario() {
  ArbiterScenario S;
  S.Name = "arbiter-colocation";
  S.EndSeconds = 120.0;

  S.Options.TotalThreads = 24;
  S.Options.EpochSeconds = 2.0;
  S.Options.HysteresisThreads = 1;
  S.Options.PowerBudgetWatts = 260.0;
  S.Options.WattsPerThread = 10.0;
  S.Options.IdlePowerWatts = 40.0; // power cap => 22 grantable threads

  // Latency-sensitive interactive tenant: scales modestly, light load
  // with a mid-run burst that pushes it past its SLO unless the
  // arbiter reinforces it.
  ScenarioTenantModel Search;
  Search.Spec.Name = "search";
  Search.Spec.Goal = TenantGoal::ResponseTime;
  Search.Spec.Weight = 2.0;
  Search.Spec.MinThreads = 2;
  Search.Spec.SloSeconds = 0.5;
  Search.BaseRate = 8.0;
  Search.ServiceSeconds = 0.08;
  Search.Curve = SpeedupCurve(0.08, 0.1);
  Search.OfferedPhases = {{40.0, 10.0}, {30.0, 60.0}, {50.0, 12.0}};
  S.Tenants.push_back(Search);

  // Throughput-hungry batch tenant: scales well, always oversubscribed
  // — it happily absorbs every spare thread.
  ScenarioTenantModel Encode;
  Encode.Spec.Name = "encode";
  Encode.Spec.Goal = TenantGoal::Throughput;
  Encode.Spec.Weight = 1.0;
  Encode.Spec.MinThreads = 1;
  Encode.BaseRate = 3.0;
  Encode.ServiceSeconds = 0.4;
  Encode.Curve = SpeedupCurve(0.03, 0.05);
  Encode.OfferedPhases = {{120.0, 1000.0}};
  S.Tenants.push_back(Encode);

  // Poorly-scaling analytics tenant that joins at t=30 and leaves at
  // t=90 (handled by the runner via JoinSeconds/LeaveSeconds derived
  // from phase 0 having zero offered load before t=30).
  ScenarioTenantModel Analytics;
  Analytics.Spec.Name = "analytics";
  Analytics.Spec.Goal = TenantGoal::Throughput;
  Analytics.Spec.Weight = 1.0;
  Analytics.Spec.MinThreads = 1;
  Analytics.Spec.MaxThreads = 6;
  Analytics.BaseRate = 2.0;
  Analytics.ServiceSeconds = 0.6;
  Analytics.Curve = SpeedupCurve(0.25, 0.3, 4.0);
  Analytics.OfferedPhases = {{120.0, 400.0}};
  S.Tenants.push_back(Analytics);

  return S;
}

namespace {

double offeredAt(const ScenarioTenantModel &M, double T) {
  if (M.OfferedPhases.empty())
    return 0.0;
  double Total = 0.0;
  for (const auto &[Dur, Rate] : M.OfferedPhases)
    Total += Dur;
  double Pos = Total > 0.0 ? std::fmod(T, Total) : 0.0;
  for (const auto &[Dur, Rate] : M.OfferedPhases) {
    if (Pos < Dur)
      return Rate;
    Pos -= Dur;
  }
  return M.OfferedPhases.back().second;
}

struct TenantRun {
  const ScenarioTenantModel *Model = nullptr;
  TenantId Id = 0;
  bool Joined = false;
  double Backlog = 0.0; // items queued beyond capacity
};

} // namespace

std::vector<LeaseChange> dope::runArbiterScenario(const ArbiterScenario &S,
                                                  Tracer *Trace) {
  ArbiterOptions Opts = S.Options;
  Opts.Trace = Trace;
  Arbiter Arb(Opts);

  // The third tenant (when present) joins at 1/4 of the run and leaves
  // at 3/4 — the canonical scenario exercises join re-splits and
  // leave slack reclamation.
  const double JoinAt = S.EndSeconds * 0.25;
  const double LeaveAt = S.EndSeconds * 0.75;

  std::vector<TenantRun> Runs;
  Runs.reserve(S.Tenants.size());
  std::vector<LeaseChange> All;

  for (size_t I = 0; I != S.Tenants.size(); ++I) {
    TenantRun R;
    R.Model = &S.Tenants[I];
    if (I < 2) {
      R.Id = Arb.addTenant(R.Model->Spec, 0.0, &All);
      R.Joined = true;
    }
    Runs.push_back(R);
  }

  const double Epoch = Opts.EpochSeconds;
  for (double Now = Epoch; Now <= S.EndSeconds + 1e-9; Now += Epoch) {
    // Membership changes happen before telemetry at the epoch tick.
    for (size_t I = 2; I < Runs.size(); ++I) {
      TenantRun &R = Runs[I];
      if (!R.Joined && Now >= JoinAt && Now < LeaveAt) {
        R.Id = Arb.addTenant(R.Model->Spec, Now, &All);
        R.Joined = true;
      } else if (R.Joined && Now >= LeaveAt) {
        Arb.removeTenant(R.Id, Now, &All);
        R.Joined = false;
        R.Backlog = 0.0;
      }
    }

    // Close the loop: each joined tenant reports what it "achieved"
    // over the past epoch given its current lease.
    for (TenantRun &R : Runs) {
      if (!R.Joined)
        continue;
      const ScenarioTenantModel &M = *R.Model;
      const unsigned K = std::max(1u, Arb.leaseOf(R.Id).Threads);
      const double Offered = offeredAt(M, Now - Epoch);
      const double Capacity = M.BaseRate * M.Curve.speedup(K);
      const double Served = std::min(Offered + R.Backlog / Epoch, Capacity);
      R.Backlog = std::max(0.0, R.Backlog + (Offered - Served) * Epoch);
      // p95 = intrinsic service time plus the queueing delay an item at
      // the back of the backlog would see.
      const double Wait = Capacity > 0.0 ? R.Backlog / Capacity : 0.0;
      TenantSample Sample;
      Sample.Time = Now;
      Sample.GrantedThreads = K;
      Sample.Throughput = Served;
      Sample.OfferedRate = Offered;
      Sample.P95ResponseSeconds = M.ServiceSeconds + Wait;
      Sample.QueueDepth = R.Backlog;
      Arb.reportSample(R.Id, Sample);
    }

    std::vector<LeaseChange> Applied = Arb.rebalance(Now);
    All.insert(All.end(), Applied.begin(), Applied.end());
  }

  return All;
}

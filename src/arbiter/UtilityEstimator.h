//===- arbiter/UtilityEstimator.h - Marginal utility of threads -*- C++ -*-===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant scalability learning. The estimator maintains a smoothed
/// observation of achieved throughput at each granted thread count it has
/// seen, fits the standard fixed-cost/linear-overhead SpeedupCurve over
/// those observations, and answers marginal-utility queries: how much
/// more work per second would one more thread buy this tenant? The
/// arbiter bids tenants against each other on exactly that quantity.
///
/// With no usable history (fewer than two distinct thread counts
/// observed) the estimator reports hasHistory() == false and the arbiter
/// falls back to equal-share bidding.
///
//===----------------------------------------------------------------------===//

#ifndef DOPE_ARBITER_UTILITYESTIMATOR_H
#define DOPE_ARBITER_UTILITYESTIMATOR_H

#include "support/SpeedupCurve.h"

#include <map>

namespace dope {

class UtilityEstimator {
public:
  /// \p Smoothing is the EMA factor applied to repeated observations at
  /// the same thread count (1.0 = keep only the newest).
  explicit UtilityEstimator(double Smoothing = 0.4)
      : Smoothing(Smoothing) {}

  /// Record one windowed observation: the tenant achieved \p Rate
  /// completions/second while holding \p Threads threads. Observations
  /// with zero threads or non-positive rate are ignored (an idle window
  /// says nothing about scalability).
  void observe(unsigned Threads, double Rate);

  /// True once observations span at least two distinct thread counts —
  /// the minimum for a meaningful curve fit.
  bool hasHistory() const { return Observed.size() >= 2; }

  /// The current curve fit (refit lazily after new observations).
  /// BaseRate == 0 when hasHistory() is false.
  const SpeedupCurveFit &fit() const;

  /// Predicted throughput at \p Threads threads; 0 without history.
  double predictRate(unsigned Threads) const;

  /// Predicted throughput gain of thread \p Threads + 1 over \p Threads;
  /// never negative. 0 without history.
  double marginalRate(unsigned Threads) const;

  /// Distinct thread counts observed so far.
  size_t distinctExtents() const { return Observed.size(); }

  /// The smoothed (threads -> rate) table itself — what a snapshot
  /// persists and a warm restart restores.
  const std::map<unsigned, double> &observations() const { return Observed; }

  /// Restores one smoothed observation verbatim (no EMA blending), as
  /// read back from a snapshot. Zero threads / non-positive rates are
  /// ignored, mirroring observe().
  void setObservation(unsigned Threads, double Rate);

  /// Drop all history (e.g. after a phase change the caller detects).
  void reset();

private:
  double Smoothing;
  /// Smoothed rate per observed thread count. Ordered map: iteration
  /// order (and therefore the fit) is deterministic.
  std::map<unsigned, double> Observed;
  mutable SpeedupCurveFit Fit;
  mutable bool Dirty = true;
};

} // namespace dope

#endif // DOPE_ARBITER_UTILITYESTIMATOR_H

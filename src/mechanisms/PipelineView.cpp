//===- mechanisms/PipelineView.cpp - Locating the active pipeline ----------===//
//
// Part of the DoPE reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mechanisms/PipelineView.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace dope;

static StageView makeStageView(const Task *T, const TaskSnapshot *Snap,
                               unsigned Extent) {
  StageView SV;
  SV.Stage = T;
  SV.IsParallel = T->kind() == TaskKind::Parallel;
  SV.Extent = Extent;
  if (Snap) {
    SV.ExecTime = Snap->ExecTime;
    SV.Load = Snap->Load;
    SV.LastLoad = Snap->LastLoad;
    SV.Invocations = Snap->Invocations;
  }
  return SV;
}

std::optional<PipelineView> PipelineView::resolve(const ParDescriptor &Region,
                                                  const RegionSnapshot &Snap,
                                                  const RegionConfig &Config) {
  assert(Config.Tasks.size() == Region.size() && "config arity mismatch");
  PipelineView View;
  View.Root = &Region;

  if (Region.size() > 1) {
    // Direct pipeline: the root region's tasks are the stages.
    View.Pipeline = &Region;
    for (size_t I = 0; I != Region.size(); ++I) {
      const TaskSnapshot *TS =
          I < Snap.Tasks.size() ? &Snap.Tasks[I] : nullptr;
      View.Stages.push_back(makeStageView(Region.tasks()[I], TS,
                                          Config.Tasks[I].Extent));
    }
    return View;
  }

  // Driver shape: single task whose active alternative is the pipeline.
  const Task *Driver = Region.masterTask();
  if (!Driver->hasInner())
    return std::nullopt;
  const TaskConfig &DriverConfig = Config.Tasks.front();
  const int Alt = DriverConfig.AltIndex >= 0 ? DriverConfig.AltIndex : 0;
  const ParDescriptor *Pipeline =
      Driver->descriptor()->alternative(static_cast<size_t>(Alt));

  View.Driver = Driver;
  View.AltIndex = Alt;
  View.DriverExtent = DriverConfig.Extent;
  View.Pipeline = Pipeline;

  const RegionSnapshot *InnerSnap = nullptr;
  if (!Snap.Tasks.empty() &&
      static_cast<size_t>(Alt) < Snap.Tasks.front().InnerAlternatives.size())
    InnerSnap = &Snap.Tasks.front().InnerAlternatives[Alt];

  for (size_t I = 0; I != Pipeline->size(); ++I) {
    const TaskSnapshot *TS =
        InnerSnap && I < InnerSnap->Tasks.size() ? &InnerSnap->Tasks[I]
                                                 : nullptr;
    unsigned Extent = 1;
    if (DriverConfig.AltIndex == Alt && I < DriverConfig.Inner.size())
      Extent = DriverConfig.Inner[I].Extent;
    View.Stages.push_back(makeStageView(Pipeline->tasks()[I], TS, Extent));
  }
  return View;
}

bool PipelineView::fullyMeasured() const {
  for (const StageView &SV : Stages)
    if (SV.Invocations == 0 || SV.ExecTime <= 0.0)
      return false;
  return !Stages.empty();
}

unsigned PipelineView::sequentialCount() const {
  unsigned Count = 0;
  for (const StageView &SV : Stages)
    Count += SV.IsParallel ? 0 : 1;
  return Count;
}

size_t PipelineView::bottleneckStage() const {
  size_t Best = npos;
  double BestCapacity = 0.0;
  for (size_t I = 0; I != Stages.size(); ++I) {
    const double Capacity = Stages[I].capacity();
    if (Capacity <= 0.0)
      continue;
    if (Best == npos || Capacity < BestCapacity) {
      Best = I;
      BestCapacity = Capacity;
    }
  }
  return Best;
}

double PipelineView::systemThroughput() const {
  const size_t Bottleneck = bottleneckStage();
  return Bottleneck == npos ? 0.0 : Stages[Bottleneck].capacity();
}

bool PipelineView::hasAlternatives() const {
  return Driver && Driver->descriptor()->alternativeCount() > 1;
}

size_t PipelineView::alternativeCount() const {
  return Driver ? Driver->descriptor()->alternativeCount() : 0;
}

int PipelineView::smallestAlternative() const {
  if (!Driver)
    return AltIndex;
  int Best = AltIndex;
  size_t BestSize = Pipeline->size();
  const auto &Alts = Driver->descriptor()->alternatives();
  for (size_t A = 0; A != Alts.size(); ++A) {
    if (Alts[A]->size() < BestSize) {
      Best = static_cast<int>(A);
      BestSize = Alts[A]->size();
    }
  }
  return Best;
}

RegionConfig
PipelineView::makeConfig(const std::vector<unsigned> &Extents) const {
  assert(Extents.size() == Stages.size() && "stage extent arity mismatch");

  std::vector<TaskConfig> StageConfigs;
  for (size_t I = 0; I != Stages.size(); ++I) {
    TaskConfig TC;
    TC.Extent = Stages[I].IsParallel ? std::max(1u, Extents[I]) : 1;
    StageConfigs.push_back(TC);
  }

  RegionConfig Config;
  if (!Driver) {
    Config.Tasks = std::move(StageConfigs);
    return Config;
  }
  TaskConfig DriverConfig;
  DriverConfig.Extent = DriverExtent;
  DriverConfig.AltIndex = AltIndex;
  DriverConfig.Inner = std::move(StageConfigs);
  Config.Tasks.push_back(std::move(DriverConfig));
  return Config;
}

RegionConfig PipelineView::makeAlternativeConfig(int NewAlt,
                                                 unsigned MaxThreads) const {
  assert(Driver && "alternative configs require a driver task");
  assert(NewAlt >= 0 && static_cast<size_t>(NewAlt) <
                            Driver->descriptor()->alternativeCount() &&
         "alternative index out of range");
  const ParDescriptor *NewPipeline =
      Driver->descriptor()->alternative(static_cast<size_t>(NewAlt));

  unsigned SeqCount = 0;
  std::vector<double> Weights;
  for (const Task *T : NewPipeline->tasks()) {
    const bool IsSeq = T->kind() == TaskKind::Sequential;
    SeqCount += IsSeq ? 1 : 0;
    Weights.push_back(IsSeq ? 0.0 : 1.0);
  }
  const unsigned Budget = MaxThreads > SeqCount ? MaxThreads - SeqCount : 0;
  std::vector<unsigned> Split = proportionalSplit(Budget, Weights, 0);

  TaskConfig DriverConfig;
  DriverConfig.Extent = DriverExtent;
  DriverConfig.AltIndex = NewAlt;
  for (size_t I = 0; I != NewPipeline->size(); ++I) {
    TaskConfig TC;
    const bool IsSeq =
        NewPipeline->tasks()[I]->kind() == TaskKind::Sequential;
    TC.Extent = IsSeq ? 1 : std::max(1u, Split[I]);
    DriverConfig.Inner.push_back(TC);
  }

  RegionConfig Config;
  Config.Tasks.push_back(std::move(DriverConfig));
  return Config;
}
